// Service-load mode: a seeded closed-loop load generator against the
// consensus-as-a-service node, in-process by default or over HTTP with
// -service-addr, emitting the rsm-service/v1 record.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/rsm"
	"github.com/oblivious-consensus/conciliator/internal/service"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// serviceFlags carries the -service-* flag group.
type serviceFlags struct {
	load     bool
	shards   string // comma-separated shard counts to sweep, e.g. "1,4"
	pipeline int
	batchMax int
	queue    int
	clients  int
	duration time.Duration
	readFrac float64
	keys     int
	skew     string
	protocol string
	addr     string // drive a remote node over HTTP instead of in-process
	jsonOut  string
	baseline string
}

func (sf *serviceFlags) active() bool {
	return sf.load || sf.jsonOut != "" || sf.baseline != "" || sf.addr != ""
}

// serviceRecord is the machine-readable load record written by
// -service-json: one entry per shard count swept, same host-shape fields
// as the bench records so the baseline gate can apply its cross-host
// skip rule.
type serviceRecord struct {
	Schema          string         `json:"schema"` // "rsm-service/v1"
	Seed            uint64         `json:"seed"`
	Clients         int            `json:"clients"`
	DurationSeconds float64        `json:"duration_seconds"`
	ReadFrac        float64        `json:"read_frac"`
	Keys            int            `json:"keys"`
	Skew            string         `json:"skew"`
	Protocol        string         `json:"protocol"`
	Pipeline        int            `json:"pipeline"`
	BatchMax        int            `json:"batch_max"`
	GOOS            string         `json:"goos"`
	GOARCH          string         `json:"goarch"`
	NumCPU          int            `json:"num_cpu"`
	GOMAXPROCS      int            `json:"gomaxprocs"`
	Entries         []serviceEntry `json:"entries"`
}

// serviceEntry is one swept configuration's end-to-end results. All
// latency quantiles are microseconds, exact nearest-rank over every op.
type serviceEntry struct {
	ID              string  `json:"id"` // "service-load/s=<shards>"
	Shards          int     `json:"shards"`
	WallSeconds     float64 `json:"wall_seconds"`
	Reads           int64   `json:"reads"`
	Writes          int64   `json:"writes"`
	Errors          int64   `json:"errors"`
	Throughput      float64 `json:"ops_per_sec"`
	WriteThroughput float64 `json:"writes_per_sec"`
	WriteP50us      int64   `json:"write_p50_us"`
	WriteP90us      int64   `json:"write_p90_us"`
	WriteP99us      int64   `json:"write_p99_us"`
	WriteP999us     int64   `json:"write_p999_us"`
	ReadP50us       int64   `json:"read_p50_us"`
	ReadP99us       int64   `json:"read_p99_us"`
	Batches         int64   `json:"batches"`
	BatchMean       float64 `json:"batch_mean"`
	BatchP50        int64   `json:"batch_p50"`
	BatchP99        int64   `json:"batch_p99"`
	BatchMaxSeen    int64   `json:"batch_max_seen"`
}

// Validate checks the structural invariants CI's smoke job gates on: a
// versioned schema, at least one entry, and live latency/throughput
// figures in every entry.
func (r *serviceRecord) Validate() error {
	if r.Schema != "rsm-service/v1" {
		return fmt.Errorf("service record schema %q, want rsm-service/v1", r.Schema)
	}
	if len(r.Entries) == 0 {
		return fmt.Errorf("service record has no entries")
	}
	for _, e := range r.Entries {
		if e.Writes <= 0 || e.WriteP99us <= 0 {
			return fmt.Errorf("%s: write p99 %dus over %d writes — record is not live", e.ID, e.WriteP99us, e.Writes)
		}
		if e.Throughput <= 0 || e.WriteThroughput <= 0 {
			return fmt.Errorf("%s: throughput %.1f/%.1f ops/s, want > 0", e.ID, e.Throughput, e.WriteThroughput)
		}
		// Remote entries (Shards == 0) can't observe the node's batch
		// occupancy; in-process entries must carry it.
		if e.Shards > 0 && (e.Batches <= 0 || e.BatchMean <= 0) {
			return fmt.Errorf("%s: batch stats empty (%d batches, mean %.2f)", e.ID, e.Batches, e.BatchMean)
		}
	}
	return nil
}

// runServiceLoad is the -service-load run shape.
func runServiceLoad(out io.Writer, sf *serviceFlags, seed uint64, quick bool, format, debugAddr string) error {
	if sf.addr != "" && sf.shards != "" {
		return fmt.Errorf("-service-addr drives one remote node; -service-shards only applies to in-process sweeps")
	}
	if seed == 0 {
		seed = 20120716 // the documented default master seed
	}
	if quick {
		if sf.duration == 0 {
			sf.duration = 500 * time.Millisecond
		}
		if sf.clients == 0 {
			sf.clients = 8
		}
	}
	if sf.duration == 0 {
		sf.duration = 2 * time.Second
	}
	if sf.clients == 0 {
		sf.clients = 16
	}
	if sf.keys == 0 {
		sf.keys = 1024
	}
	if sf.skew == "" {
		sf.skew = service.SkewUniform
	}
	if sf.readFrac == 0 {
		sf.readFrac = 0.25
	}
	if sf.readFrac < 0 || sf.readFrac >= 1 {
		return fmt.Errorf("-service-read-frac %v out of range [0, 1)", sf.readFrac)
	}

	// The service's instruments (batch occupancy, queue depth, shard op
	// counts) live in the metrics registry; service mode always installs
	// one so -debug-addr exposes them mid-run.
	metrics.SetDefault(metrics.New())
	if debugAddr != "" {
		addr, shutdown, err := startDebugServer(debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer shutdown()
		fmt.Fprintf(out, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}

	shardCounts, err := parseShardCounts(sf.shards)
	if err != nil {
		return err
	}

	rec := serviceRecord{
		Schema:          "rsm-service/v1",
		Seed:            seed,
		Clients:         sf.clients,
		DurationSeconds: sf.duration.Seconds(),
		ReadFrac:        sf.readFrac,
		Keys:            sf.keys,
		Skew:            sf.skew,
		Protocol:        protoOrDefault(sf.protocol),
		Pipeline:        sf.pipeline,
		BatchMax:        sf.batchMax,
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
	}
	lc := service.LoadConfig{
		Clients:  sf.clients,
		Duration: sf.duration,
		ReadFrac: sf.readFrac,
		Keys:     sf.keys,
		Skew:     sf.skew,
		Seed:     seed,
	}

	if sf.addr != "" {
		rep, err := service.RunLoad(&httpBackend{base: "http://" + strings.TrimPrefix(sf.addr, "http://")}, lc)
		if err != nil {
			return err
		}
		// A remote node keeps its batch occupancy; only latency and
		// throughput are observable from here.
		rec.Entries = append(rec.Entries, buildServiceEntry("service-load/remote", 0, rep, nil))
	} else {
		for _, s := range shardCounts {
			node, err := service.Start(service.Config{
				Shards:     s,
				Pipeline:   sf.pipeline,
				BatchMax:   sf.batchMax,
				QueueDepth: sf.queue,
				Seed:       seed,
				Protocol:   sf.protocol,
			})
			if err != nil {
				return err
			}
			rep, err := service.RunLoad(service.NodeBackend{Node: node}, lc)
			occ := node.BatchOccupancy()
			if cerr := node.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			rec.Entries = append(rec.Entries,
				buildServiceEntry(fmt.Sprintf("service-load/s=%d", s), s, rep, occ))
			// Collect the closed node's garbage (decided logs, KV state)
			// now, between measurements, so it isn't collected during the
			// next configuration's run and charged to its latencies.
			runtime.GC()
		}
	}

	printServiceTable(out, &rec, format)

	if sf.jsonOut != "" {
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("refusing to write invalid record: %w", err)
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding service record: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(sf.jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("writing service record: %w", err)
		}
	}
	if sf.baseline != "" {
		return compareServiceBaseline(out, &rec, sf.baseline)
	}
	return nil
}

func protoOrDefault(p string) string {
	if p == "" {
		return "register"
	}
	return p
}

func parseShardCounts(spec string) ([]int, error) {
	if spec == "" {
		spec = "1,4"
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.Atoi(f)
		if err != nil || s <= 0 {
			return nil, fmt.Errorf("bad shard count %q in -service-shards (want positive integers)", f)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-service-shards %q names no shard counts", spec)
	}
	return out, nil
}

func buildServiceEntry(id string, shards int, rep service.LoadReport, occ *stats.IntHist) serviceEntry {
	e := serviceEntry{
		ID:              id,
		Shards:          shards,
		WallSeconds:     rep.Wall.Seconds(),
		Reads:           rep.Reads,
		Writes:          rep.Writes,
		Errors:          rep.Errors,
		Throughput:      rep.Throughput(),
		WriteThroughput: rep.WriteThroughput(),
		WriteP50us:      rep.WriteLat.Quantile(0.50),
		WriteP90us:      rep.WriteLat.Quantile(0.90),
		WriteP99us:      rep.WriteLat.Quantile(0.99),
		WriteP999us:     rep.WriteLat.Quantile(0.999),
		ReadP50us:       rep.ReadLat.Quantile(0.50),
		ReadP99us:       rep.ReadLat.Quantile(0.99),
	}
	if occ != nil {
		e.Batches = occ.N()
		e.BatchMean = occ.Mean()
		e.BatchP50 = occ.Quantile(0.50)
		e.BatchP99 = occ.Quantile(0.99)
		e.BatchMaxSeen = occ.Max()
	}
	return e
}

func printServiceTable(out io.Writer, rec *serviceRecord, format string) {
	head := []string{"config", "writes/s", "ops/s", "w_p50us", "w_p99us", "r_p99us", "batch_mean", "errors"}
	rows := make([][]string, 0, len(rec.Entries))
	for _, e := range rec.Entries {
		rows = append(rows, []string{
			e.ID,
			fmt.Sprintf("%.0f", e.WriteThroughput),
			fmt.Sprintf("%.0f", e.Throughput),
			strconv.FormatInt(e.WriteP50us, 10),
			strconv.FormatInt(e.WriteP99us, 10),
			strconv.FormatInt(e.ReadP99us, 10),
			fmt.Sprintf("%.1f", e.BatchMean),
			strconv.FormatInt(e.Errors, 10),
		})
	}
	switch format {
	case "tsv":
		fmt.Fprintln(out, strings.Join(head, "\t"))
		for _, r := range rows {
			fmt.Fprintln(out, strings.Join(r, "\t"))
		}
	case "markdown":
		fmt.Fprintf(out, "| %s |\n", strings.Join(head, " | "))
		fmt.Fprintf(out, "|%s\n", strings.Repeat(" --- |", len(head)))
		for _, r := range rows {
			fmt.Fprintf(out, "| %s |\n", strings.Join(r, " | "))
		}
	default:
		fmt.Fprintf(out, "service load: %d clients, %.1fs, read-frac %.2f, skew %s, protocol %s\n",
			rec.Clients, rec.DurationSeconds, rec.ReadFrac, rec.Skew, rec.Protocol)
		for _, r := range rows {
			fmt.Fprintf(out, "  %-22s %8s writes/s %8s ops/s  w_p50 %sus w_p99 %sus r_p99 %sus  batch %s  errors %s\n",
				r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7])
		}
	}
}

// serviceTolerance mirrors the bench gate: a configuration may fall to
// 90% of its baseline write throughput before the comparison fails.
const serviceTolerance = 0.9

// compareServiceBaseline gates this run's write throughput against a
// committed rsm-service/v1 record, with the same cross-host skip rule as
// the bench baselines: throughput measured on a different host shape is
// not comparable, so a NumCPU/GOMAXPROCS mismatch skips loudly instead
// of failing meaninglessly.
func compareServiceBaseline(out io.Writer, rec *serviceRecord, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading service baseline: %w", err)
	}
	var base serviceRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing service baseline %s: %w", path, err)
	}
	if err := base.Validate(); err != nil {
		return fmt.Errorf("service baseline %s: %w", path, err)
	}
	if (base.NumCPU != 0 && base.NumCPU != runtime.NumCPU()) ||
		(base.GOMAXPROCS != 0 && base.GOMAXPROCS != runtime.GOMAXPROCS(0)) {
		fmt.Fprintf(out, "service-baseline: skipping %s: baseline host (num_cpu=%d, gomaxprocs=%d) does not match this host (num_cpu=%d, gomaxprocs=%d); throughput is not comparable across hosts\n",
			path, base.NumCPU, base.GOMAXPROCS, runtime.NumCPU(), runtime.GOMAXPROCS(0))
		return nil
	}
	baseline := make(map[string]serviceEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseline[e.ID] = e
	}
	var failures []string
	compared := 0
	for _, e := range rec.Entries {
		b, ok := baseline[e.ID]
		if !ok || b.WriteThroughput <= 0 {
			fmt.Fprintf(out, "service-baseline: %-22s no baseline entry, skipped\n", e.ID)
			continue
		}
		compared++
		ratio := e.WriteThroughput / b.WriteThroughput
		fmt.Fprintf(out, "service-baseline: %-22s %9.0f writes/s vs %9.0f baseline (%+.1f%%)\n",
			e.ID, e.WriteThroughput, b.WriteThroughput, (ratio-1)*100)
		if ratio < serviceTolerance {
			failures = append(failures, fmt.Sprintf("%s (%.1f%% of baseline)", e.ID, ratio*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("service-baseline: %s shares no entry ids with this run", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("service-baseline: write throughput regressed more than %d%%: %s",
			int((1-serviceTolerance)*100), strings.Join(failures, ", "))
	}
	return nil
}

// httpBackend drives a remote consensusd node through its client API.
type httpBackend struct {
	base   string
	client http.Client
}

func (b *httpBackend) Read(key string) (string, bool, error) {
	resp, err := b.client.Get(b.base + "/v1/kv/" + key)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return "", false, nil
	case http.StatusOK:
		var kr struct {
			Value string `json:"value"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
			return "", false, err
		}
		return kr.Value, true, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return "", false, fmt.Errorf("GET %s: status %d", key, resp.StatusCode)
	}
}

func (b *httpBackend) Write(client uint32, op rsm.Op) error {
	var req *http.Request
	var err error
	switch op.Kind {
	case rsm.OpSet:
		req, err = http.NewRequest("PUT", b.base+"/v1/kv/"+op.Key, strings.NewReader(op.Value))
	case rsm.OpDel:
		req, err = http.NewRequest("DELETE", b.base+"/v1/kv/"+op.Key, nil)
	case rsm.OpInc:
		req, err = http.NewRequest("POST", b.base+"/v1/kv/"+op.Key+"/inc", nil)
	default:
		return fmt.Errorf("op kind %v not writable over HTTP", op.Kind)
	}
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, op.Key, resp.StatusCode)
	}
	return nil
}
