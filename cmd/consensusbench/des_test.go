package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDESFlagValidation: every contradictory or malformed -des*
// combination must fail fast with a descriptive error — a full DES sweep
// runs for minutes at n=100k, so a typo must not burn that budget first.
func TestDESFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bench-json conflict", []string{"-des", "-bench-json", "b.json"}, "cannot be combined"},
		{"bench-baseline conflict", []string{"-des", "-bench-baseline", "b.json"}, "cannot be combined"},
		{"bench-concurrent-json conflict", []string{"-des", "-bench-concurrent-json", "b.json"}, "cannot be combined"},
		{"bench-concurrent-baseline conflict", []string{"-des", "-bench-concurrent-baseline", "b.json"}, "cannot be combined"},
		{"experiment conflict", []string{"-des", "-experiment", "E18"}, "cannot be combined"},
		{"all conflict", []string{"-des", "-all"}, "cannot be combined"},
		{"list conflict", []string{"-des", "-list"}, "cannot be combined"},
		{"fault conflict", []string{"-des", "-fault", "all"}, "cannot be combined"},
		{"fault-trials conflict", []string{"-des", "-fault-trials", "3"}, "cannot be combined"},
		{"orphan des-json", []string{"-des-json", "d.json"}, "require -des"},
		{"orphan des-n", []string{"-des-n", "1000"}, "require -des"},
		{"orphan des-loss", []string{"-des-loss", "0.5"}, "require -des"},
		{"bad n", []string{"-des", "-des-n", "0"}, "bad process count"},
		{"junk n", []string{"-des", "-des-n", "many"}, "bad process count"},
		{"empty n", []string{"-des", "-des-n", " , "}, "no process counts"},
		{"unknown protocol", []string{"-des", "-des-protocols", "paxos"}, "unknown protocol"},
		{"negative trials", []string{"-des", "-des-trials", "-2"}, "des-trials"},
		{"loss too big", []string{"-des", "-des-loss", "1.5"}, "out of range"},
		{"bad latency kind", []string{"-des", "-des-latency", "normal:1ms"}, "latency"},
		{"bad latency mean", []string{"-des", "-des-latency", "exp:zzz"}, "latency"},
		{"bad partition", []string{"-des", "-des-partition", "5ms+25ms+0.3"}, "partition"},
		{"partition never heals", []string{"-des", "-des-partition", "25ms:5ms:0.3"}, "heal"},
		{"partition frac zero", []string{"-des", "-des-partition", "5ms:25ms:0"}, "fraction"},
		{"bad format", []string{"-des", "-format", "xml"}, "unknown format"},
		{"orphan des-crash", []string{"-des-crash", "proc:0.2"}, "require -des"},
		{"orphan des-restart", []string{"-des-restart", "durable"}, "require -des"},
		{"orphan des-fault-repros", []string{"-des-fault-repros", "out"}, "require -des"},
		{"restart without crash", []string{"-des", "-des-restart", "amnesiac"}, "requires -des-crash"},
		{"repros without crash", []string{"-des", "-des-fault-repros", "out"}, "requires -des-crash"},
		{"crash rate too big", []string{"-des", "-des-crash", "proc:1.5"}, "crash rate"},
		{"crash rate NaN", []string{"-des", "-des-crash", "proc:NaN"}, "crash rate"},
		{"bad crash windows", []string{"-des", "-des-crash", "server:0"}, "window count"},
		{"bad crash target", []string{"-des", "-des-crash", "router:1"}, "unknown crash target"},
		{"bad crash horizon", []string{"-des", "-des-crash", "server:1,horizon:-3ms"}, "horizon"},
		{"bad crash downtime", []string{"-des", "-des-crash", "server:1,down:zzz"}, "downtime"},
		{"empty crash spec", []string{"-des", "-des-crash", " , "}, "empty crash spec"},
		{"bad restart variant", []string{"-des", "-des-crash", "proc:0.2", "-des-restart", "reincarnate"}, "unknown variant"},
		{"loss NaN", []string{"-des", "-des-loss", "NaN"}, "out of range"},
		{"replay with sweep flag", []string{"-des", "-des-fault-replay", "r.json"}, "cannot be combined"},
		{"replay with crash flag", []string{"-des-fault-replay", "r.json", "-des-crash", "proc:0.2"}, "cannot be combined"},
		{"replay missing file", []string{"-des-fault-replay", "no-such-repro.json"}, "no-such-repro"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tt.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestDESSweepSmokeAndRecord(t *testing.T) {
	recPath := filepath.Join(t.TempDir(), "des.json")
	var b strings.Builder
	err := run([]string{
		"-des",
		"-des-n", "64,128",
		"-des-protocols", "sifter,priority-max",
		"-des-trials", "2",
		"-des-json", recPath,
	}, &b)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"message-passing sweep", "sifter", "priority-max", "steps/proc"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatalf("record not written: %v", err)
	}
	var rec desRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Schema != "conciliator-des/v1" {
		t.Errorf("schema = %q, want conciliator-des/v1", rec.Schema)
	}
	if len(rec.Rows) != 4 { // 2 ns x 2 protocols
		t.Fatalf("got %d rows, want 4", len(rec.Rows))
	}
	for _, row := range rec.Rows {
		if !row.AllDecided || row.Violations != 0 {
			t.Errorf("row %+v: expected a clean decided run", row)
		}
		if row.StepsMean <= 0 || row.StepsMax <= 0 || row.Events <= 0 {
			t.Errorf("row %+v: implausible accounting", row)
		}
	}
}

// TestDESChaosSweepSmoke runs a small crash-recovery sweep under atomic
// semantics (durable server) and checks the chaos accounting columns
// land in the JSON record with zero violations.
func TestDESChaosSweepSmoke(t *testing.T) {
	recPath := filepath.Join(t.TempDir(), "chaos.json")
	var b strings.Builder
	err := run([]string{
		"-des",
		"-des-n", "32",
		"-des-protocols", "sifter",
		"-des-trials", "3",
		"-des-crash", "proc:0.25,server:1",
		"-des-restart", "amnesiac",
		"-des-json", recPath,
	}, &b)
	if err != nil {
		t.Fatalf("chaos sweep failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"chaos sweep", "crashes", "restarts", "resyncs", "gave up"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatalf("record not written: %v", err)
	}
	var rec desRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Crash != "proc:0.25,server:1" || rec.Restart != "amnesiac" {
		t.Errorf("record crash/restart = %q/%q", rec.Crash, rec.Restart)
	}
	if len(rec.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rec.Rows))
	}
	row := rec.Rows[0]
	if row.Crashes == 0 || row.Restarts == 0 {
		t.Errorf("row %+v: chaos schedule did not crash anything", row)
	}
	if row.Resyncs == 0 {
		t.Errorf("row %+v: amnesiac process restarts must resync", row)
	}
	// Durable server: the shared objects stay atomic, so safety holds.
	if row.Violations != 0 || row.RunErrors != 0 {
		t.Errorf("row %+v: atomic-semantics chaos run must be clean", row)
	}
}

// TestDESFaultReproSaveAndReplay drives the whole artifact loop through
// the CLI: a weakened amnesiac-server sweep positioned in the violating
// regime saves a shrunk des-fault-repro/v1 artifact, and -des-fault-replay
// reproduces its recorded violations byte-for-byte.
func TestDESFaultReproSaveAndReplay(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run([]string{
		"-des",
		"-des-n", "16",
		"-des-protocols", "sifter",
		"-des-trials", "20",
		"-des-crash", "server:2,horizon:48ms,down:2ms",
		"-des-restart", "amnesiac-server",
		"-des-fault-repros", dir,
	}, &b)
	if err != nil {
		t.Fatalf("weakened sweep failed: %v\n%s", err, b.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "des_fault_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fault repro saved (err=%v); sweep output:\n%s", err, b.String())
	}
	var r strings.Builder
	if err := run([]string{"-des-fault-replay", matches[0]}, &r); err != nil {
		t.Fatalf("replay of %s failed: %v\n%s", matches[0], err, r.String())
	}
	if !strings.Contains(r.String(), "byte-identically") {
		t.Errorf("replay output missing confirmation:\n%s", r.String())
	}

	// Tampering with the artifact must break the replay: the violations
	// are part of the recorded contract.
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"seed": `, `"seed": 1`, 1)
	badPath := filepath.Join(dir, "tampered.json")
	if err := os.WriteFile(badPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-des-fault-replay", badPath}, io.Discard); err == nil {
		t.Error("tampered artifact replayed cleanly")
	}
}

// TestDESSweepReplaysByteIdentically is the CLI-level determinism
// contract: the same seed and flags must render the same bytes.
func TestDESSweepReplaysByteIdentically(t *testing.T) {
	args := []string{"-des", "-des-n", "96", "-des-trials", "2", "-des-loss", "0.1", "-seed", "7"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed and flags rendered different tables:\n%s\nvs\n%s", a.String(), b.String())
	}
}
