package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDESFlagValidation: every contradictory or malformed -des*
// combination must fail fast with a descriptive error — a full DES sweep
// runs for minutes at n=100k, so a typo must not burn that budget first.
func TestDESFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bench-json conflict", []string{"-des", "-bench-json", "b.json"}, "cannot be combined"},
		{"bench-baseline conflict", []string{"-des", "-bench-baseline", "b.json"}, "cannot be combined"},
		{"bench-concurrent-json conflict", []string{"-des", "-bench-concurrent-json", "b.json"}, "cannot be combined"},
		{"bench-concurrent-baseline conflict", []string{"-des", "-bench-concurrent-baseline", "b.json"}, "cannot be combined"},
		{"experiment conflict", []string{"-des", "-experiment", "E18"}, "cannot be combined"},
		{"all conflict", []string{"-des", "-all"}, "cannot be combined"},
		{"list conflict", []string{"-des", "-list"}, "cannot be combined"},
		{"fault conflict", []string{"-des", "-fault", "all"}, "cannot be combined"},
		{"fault-trials conflict", []string{"-des", "-fault-trials", "3"}, "cannot be combined"},
		{"orphan des-json", []string{"-des-json", "d.json"}, "require -des"},
		{"orphan des-n", []string{"-des-n", "1000"}, "require -des"},
		{"orphan des-loss", []string{"-des-loss", "0.5"}, "require -des"},
		{"bad n", []string{"-des", "-des-n", "0"}, "bad process count"},
		{"junk n", []string{"-des", "-des-n", "many"}, "bad process count"},
		{"empty n", []string{"-des", "-des-n", " , "}, "no process counts"},
		{"unknown protocol", []string{"-des", "-des-protocols", "paxos"}, "unknown protocol"},
		{"negative trials", []string{"-des", "-des-trials", "-2"}, "des-trials"},
		{"loss too big", []string{"-des", "-des-loss", "1.5"}, "out of range"},
		{"bad latency kind", []string{"-des", "-des-latency", "normal:1ms"}, "latency"},
		{"bad latency mean", []string{"-des", "-des-latency", "exp:zzz"}, "latency"},
		{"bad partition", []string{"-des", "-des-partition", "5ms+25ms+0.3"}, "partition"},
		{"partition never heals", []string{"-des", "-des-partition", "25ms:5ms:0.3"}, "heal"},
		{"partition frac zero", []string{"-des", "-des-partition", "5ms:25ms:0"}, "fraction"},
		{"bad format", []string{"-des", "-format", "xml"}, "unknown format"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tt.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestDESSweepSmokeAndRecord(t *testing.T) {
	recPath := filepath.Join(t.TempDir(), "des.json")
	var b strings.Builder
	err := run([]string{
		"-des",
		"-des-n", "64,128",
		"-des-protocols", "sifter,priority-max",
		"-des-trials", "2",
		"-des-json", recPath,
	}, &b)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"message-passing sweep", "sifter", "priority-max", "steps/proc"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatalf("record not written: %v", err)
	}
	var rec desRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Schema != "conciliator-des/v1" {
		t.Errorf("schema = %q, want conciliator-des/v1", rec.Schema)
	}
	if len(rec.Rows) != 4 { // 2 ns x 2 protocols
		t.Fatalf("got %d rows, want 4", len(rec.Rows))
	}
	for _, row := range rec.Rows {
		if !row.AllDecided || row.Violations != 0 {
			t.Errorf("row %+v: expected a clean decided run", row)
		}
		if row.StepsMean <= 0 || row.StepsMax <= 0 || row.Events <= 0 {
			t.Errorf("row %+v: implausible accounting", row)
		}
	}
}

// TestDESSweepReplaysByteIdentically is the CLI-level determinism
// contract: the same seed and flags must render the same bytes.
func TestDESSweepReplaysByteIdentically(t *testing.T) {
	args := []string{"-des", "-des-n", "96", "-des-trials", "2", "-des-loss", "0.1", "-seed", "7"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed and flags rendered different tables:\n%s\nvs\n%s", a.String(), b.String())
	}
}
