package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/oblivious-consensus/conciliator/internal/des"
	"github.com/oblivious-consensus/conciliator/internal/experiment"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// desFlags is the -des* flag surface, collected so run() can validate
// the combination up front — the same shape as faultFlags: any flag set
// makes the mode active, and an active mode rejects every conflicting
// run shape before a single trial executes.
type desFlags struct {
	run        bool
	jsonOut    string
	ns         string
	protocols  string
	trials     int
	latency    string
	loss       float64
	partitions string
}

func (f *desFlags) active() bool {
	return f.run || f.jsonOut != "" || f.ns != "" || f.protocols != "" ||
		f.trials != 0 || f.latency != "" || f.loss != 0 || f.partitions != ""
}

// desDefaultNs is the committed E18 sweep: the regime where log log n
// visibly separates from log n.
var desDefaultNs = []int{1000, 10000, 100000}

const desDefaultTrials = 5

// validate parses and checks every -des-* value, returning the resolved
// sweep inputs.
func (f *desFlags) validate() (ns []int, protocols []string, net des.NetConfig, trials int, err error) {
	if !f.run {
		return nil, nil, net, 0, fmt.Errorf("-des-json/-des-n/-des-protocols/-des-trials/-des-latency/-des-loss/-des-partition require -des")
	}
	ns = desDefaultNs
	if f.ns != "" {
		ns = nil
		for _, s := range strings.Split(f.ns, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, perr := strconv.Atoi(s)
			if perr != nil || n < 1 {
				return nil, nil, net, 0, fmt.Errorf("-des-n: bad process count %q", s)
			}
			ns = append(ns, n)
		}
		if len(ns) == 0 {
			return nil, nil, net, 0, fmt.Errorf("-des-n: no process counts in %q", f.ns)
		}
	}
	protocols = des.Protocols()
	if f.protocols != "" {
		protocols = nil
		known := make(map[string]bool)
		for _, p := range des.Protocols() {
			known[p] = true
		}
		for _, s := range strings.Split(f.protocols, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if !known[s] {
				return nil, nil, net, 0, fmt.Errorf("-des-protocols: unknown protocol %q (want %s)", s, strings.Join(des.Protocols(), ", "))
			}
			protocols = append(protocols, s)
		}
		if len(protocols) == 0 {
			return nil, nil, net, 0, fmt.Errorf("-des-protocols: no protocols in %q", f.protocols)
		}
	}
	if f.latency != "" {
		net.Latency, err = des.ParseLatency(f.latency)
		if err != nil {
			return nil, nil, net, 0, fmt.Errorf("-des-latency: %w", err)
		}
	}
	if f.loss < 0 || f.loss > 0.99 {
		return nil, nil, net, 0, fmt.Errorf("-des-loss: %g out of range [0, 0.99]", f.loss)
	}
	net.Loss = f.loss
	if f.partitions != "" {
		for _, s := range strings.Split(f.partitions, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			p, perr := des.ParsePartition(s)
			if perr != nil {
				return nil, nil, net, 0, fmt.Errorf("-des-partition: %w", perr)
			}
			net.Partitions = append(net.Partitions, p)
		}
	}
	trials = f.trials
	if trials < 0 {
		return nil, nil, net, 0, fmt.Errorf("-des-trials: %d must be positive", trials)
	}
	if trials == 0 {
		trials = desDefaultTrials
	}
	// One throwaway validation run catches config-level errors (e.g. a
	// partition that never heals) before the sweep starts.
	probe := des.Config{N: 1, Protocol: protocols[0], Net: net, Seed: 1}
	if _, perr := des.Run(probe); perr != nil {
		return nil, nil, net, 0, fmt.Errorf("-des: %w", perr)
	}
	return ns, protocols, net, trials, nil
}

// desRecord is the machine-readable record written by -des-json.
type desRecord struct {
	Schema     string   `json:"schema"` // "conciliator-des/v1"
	Seed       uint64   `json:"seed"`
	Trials     int      `json:"trials"`
	Latency    string   `json:"latency"`
	Loss       float64  `json:"loss"`
	Partitions []string `json:"partitions,omitempty"`
	Rows       []desRow `json:"rows"`
}

type desRow struct {
	N             int     `json:"n"`
	Protocol      string  `json:"protocol"`
	Rounds        int     `json:"rounds_per_phase"`
	Phases        int     `json:"phases"`
	StepsMean     float64 `json:"steps_per_proc_mean"`
	StepsCI95     float64 `json:"steps_per_proc_ci95"`
	StepsP50      float64 `json:"steps_p50"`
	StepsP90      float64 `json:"steps_p90"`
	StepsP99      float64 `json:"steps_p99"`
	StepsMax      int64   `json:"steps_max"`
	MsgsSent      int64   `json:"msgs_sent"`
	MsgsDropped   int64   `json:"msgs_dropped"`
	MsgsBlocked   int64   `json:"msgs_blocked"`
	Retransmits   int64   `json:"retransmits"`
	Events        int64   `json:"events"`
	VirtualMsMean float64 `json:"virtual_ms_mean"`
	AllDecided    bool    `json:"all_decided"`
	Violations    int     `json:"violations"`
}

// runDESSweep executes the flag-driven DES sweep: for each (n, protocol)
// cell it runs `trials` seeds derived from the master seed, prints one
// table row, and optionally writes the JSON record. Deterministic in
// (seed, flags).
func runDESSweep(out io.Writer, df *desFlags, seed uint64, format string) error {
	ns, protocols, net, trials, err := df.validate()
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = 20120716 // the documented default master seed
	}

	rec := desRecord{
		Schema:  "conciliator-des/v1",
		Seed:    seed,
		Trials:  trials,
		Latency: net.Latency.String(),
		Loss:    net.Loss,
	}
	if net.Latency.Mean <= 0 {
		rec.Latency = "exp:1ms" // the engine default, applied per run
	}
	for _, p := range net.Partitions {
		rec.Partitions = append(rec.Partitions, p.String())
	}

	tbl := experiment.Table{
		ID:      "DES",
		Title:   fmt.Sprintf("message-passing sweep (latency %s, loss %g, %d partitions, %d trials)", rec.Latency, net.Loss, len(net.Partitions), trials),
		Columns: []string{"n", "protocol", "rounds/phase", "phases", "steps/proc", "p99", "max", "retransmits", "virtual ms", "all decided", "violations"},
	}

	// Per-trial seeds come from a named fork of the master seed, so the
	// sweep composition (which cells run, in what order) cannot change
	// any cell's results.
	seedRng := xrand.New(seed).ForkNamed(0xde5)
	for _, n := range ns {
		for _, protocol := range protocols {
			cellSeeds := make([]uint64, trials)
			for t := range cellSeeds {
				cellSeeds[t] = seedRng.Uint64()
			}
			var (
				steps  []float64
				vtimes []float64
				row    = desRow{N: n, Protocol: protocol, AllDecided: true}
			)
			for _, s := range cellSeeds {
				res, rerr := des.Run(des.Config{N: n, Protocol: protocol, Net: net, Seed: s})
				if rerr != nil {
					return fmt.Errorf("des n=%d %s: %w", n, protocol, rerr)
				}
				row.Rounds = res.Rounds
				if res.Phases > row.Phases {
					row.Phases = res.Phases
				}
				for _, st := range res.Steps {
					steps = append(steps, float64(st))
				}
				vtimes = append(vtimes, float64(res.VirtualTime.Microseconds())/1000)
				row.MsgsSent += res.MsgsSent
				row.MsgsDropped += res.MsgsDropped
				row.MsgsBlocked += res.MsgsBlocked
				row.Retransmits += res.Retransmits
				row.Events += res.Events
				row.AllDecided = row.AllDecided && res.AllDecided
				row.Violations += len(res.Violations)
				if m := res.MaxSteps(); m > row.StepsMax {
					row.StepsMax = m
				}
			}
			sum := stats.Summarize(steps)
			qs := stats.Quantiles(steps, 0.5, 0.9, 0.99)
			row.StepsMean, row.StepsCI95 = sum.Mean, sum.CI95()
			row.StepsP50, row.StepsP90, row.StepsP99 = qs[0], qs[1], qs[2]
			vsum := stats.Summarize(vtimes)
			row.VirtualMsMean = vsum.Mean
			rec.Rows = append(rec.Rows, row)
			tbl.AddRow(n, protocol, row.Rounds, row.Phases, sum.String(), qs[2], row.StepsMax,
				row.Retransmits, vsum.String(), fmt.Sprintf("%v", row.AllDecided), row.Violations)
		}
	}

	switch format {
	case "markdown":
		fmt.Fprintln(out, tbl.Markdown())
	case "tsv":
		fmt.Fprintf(out, "# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.TSV())
	default:
		fmt.Fprintln(out, tbl.Text())
	}

	if df.jsonOut != "" {
		data, merr := json.MarshalIndent(rec, "", "  ")
		if merr != nil {
			return fmt.Errorf("encoding DES record: %w", merr)
		}
		data = append(data, '\n')
		if werr := os.WriteFile(df.jsonOut, data, 0o644); werr != nil {
			return fmt.Errorf("writing DES record: %w", werr)
		}
	}
	return nil
}
