package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/oblivious-consensus/conciliator/internal/des"
	"github.com/oblivious-consensus/conciliator/internal/experiment"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// desFlags is the -des* flag surface, collected so run() can validate
// the combination up front — the same shape as faultFlags: any flag set
// makes the mode active, and an active mode rejects every conflicting
// run shape before a single trial executes.
type desFlags struct {
	run        bool
	jsonOut    string
	ns         string
	protocols  string
	trials     int
	latency    string
	loss       float64
	partitions string
	crash      string
	restart    string
	repros     string
	replay     string
}

func (f *desFlags) active() bool {
	return f.run || f.jsonOut != "" || f.ns != "" || f.protocols != "" ||
		f.trials != 0 || f.latency != "" || f.loss != 0 || f.partitions != "" ||
		f.crash != "" || f.restart != "" || f.repros != "" || f.replay != ""
}

// desDefaultNs is the committed E18 sweep: the regime where log log n
// visibly separates from log n.
var desDefaultNs = []int{1000, 10000, 100000}

const desDefaultTrials = 5

// desSweep is the resolved, validated input set of one flag-driven sweep.
type desSweep struct {
	ns        []int
	protocols []string
	net       des.NetConfig
	chaos     des.ChaosConfig
	// weakened marks the amnesiac-server restart variant: the memory
	// server wipes its registers on restart, which leaves the atomic
	// model — run errors and violations become findings, not failures.
	weakened bool
	trials   int
}

// validate parses and checks every -des-* value, returning the resolved
// sweep inputs.
func (f *desFlags) validate() (sw desSweep, err error) {
	if !f.run {
		return sw, fmt.Errorf("-des-json/-des-n/-des-protocols/-des-trials/-des-latency/-des-loss/-des-partition/-des-crash/-des-restart/-des-fault-repros require -des")
	}
	sw.ns = desDefaultNs
	if f.ns != "" {
		sw.ns = nil
		for _, s := range strings.Split(f.ns, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, perr := strconv.Atoi(s)
			if perr != nil || n < 1 {
				return sw, fmt.Errorf("-des-n: bad process count %q", s)
			}
			sw.ns = append(sw.ns, n)
		}
		if len(sw.ns) == 0 {
			return sw, fmt.Errorf("-des-n: no process counts in %q", f.ns)
		}
	}
	sw.protocols = des.Protocols()
	if f.protocols != "" {
		sw.protocols = nil
		known := make(map[string]bool)
		for _, p := range des.Protocols() {
			known[p] = true
		}
		for _, s := range strings.Split(f.protocols, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if !known[s] {
				return sw, fmt.Errorf("-des-protocols: unknown protocol %q (want %s)", s, strings.Join(des.Protocols(), ", "))
			}
			sw.protocols = append(sw.protocols, s)
		}
		if len(sw.protocols) == 0 {
			return sw, fmt.Errorf("-des-protocols: no protocols in %q", f.protocols)
		}
	}
	if f.latency != "" {
		sw.net.Latency, err = des.ParseLatency(f.latency)
		if err != nil {
			return sw, fmt.Errorf("-des-latency: %w", err)
		}
	}
	// The >=/<= shape rejects NaN too: `loss < 0 || loss > 0.99` silently
	// accepts NaN (every comparison is false), which would then corrupt
	// every Bernoulli draw of the sweep.
	if !(f.loss >= 0 && f.loss <= 0.99) {
		return sw, fmt.Errorf("-des-loss: %g out of range [0, 0.99]", f.loss)
	}
	sw.net.Loss = f.loss
	if f.partitions != "" {
		for _, s := range strings.Split(f.partitions, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			p, perr := des.ParsePartition(s)
			if perr != nil {
				return sw, fmt.Errorf("-des-partition: %w", perr)
			}
			sw.net.Partitions = append(sw.net.Partitions, p)
		}
	}
	if f.crash == "" {
		if f.restart != "" {
			return sw, fmt.Errorf("-des-restart requires -des-crash: a restart variant without a crash schedule does nothing")
		}
		if f.repros != "" {
			return sw, fmt.Errorf("-des-fault-repros requires -des-crash: repro artifacts record crash schedules")
		}
	} else {
		sw.chaos, err = des.ParseChaosSpec(f.crash)
		if err != nil {
			return sw, fmt.Errorf("-des-crash: %w", err)
		}
		switch f.restart {
		case "", "durable":
			sw.chaos.ProcRestart, sw.chaos.ServerRestart = des.RestartDurable, des.RestartDurable
		case "amnesiac":
			// Processes lose their state; the server stays durable, so
			// the shared objects remain atomic and safety must hold.
			sw.chaos.ProcRestart, sw.chaos.ServerRestart = des.RestartAmnesiac, des.RestartDurable
		case "amnesiac-server":
			sw.chaos.ProcRestart, sw.chaos.ServerRestart = des.RestartAmnesiac, des.RestartAmnesiac
			sw.weakened = true
		default:
			return sw, fmt.Errorf("-des-restart: unknown variant %q (want durable, amnesiac, or amnesiac-server)", f.restart)
		}
	}
	sw.trials = f.trials
	if sw.trials < 0 {
		return sw, fmt.Errorf("-des-trials: %d must be positive", sw.trials)
	}
	if sw.trials == 0 {
		sw.trials = desDefaultTrials
	}
	// One throwaway validation run catches config-level errors (e.g. a
	// partition that never heals) before the sweep starts; the chaos plan
	// is validated statically (a weakened probe run may legitimately
	// fail, which is a finding, not a flag error).
	probe := des.Config{N: 1, Protocol: sw.protocols[0], Net: sw.net, Seed: 1}
	if _, perr := des.Run(probe); perr != nil {
		return sw, fmt.Errorf("-des: %w", perr)
	}
	if sw.chaos.Active() {
		chk := des.Config{N: 2, Protocol: sw.protocols[0], Net: sw.net, Chaos: sw.chaos, Seed: 1}
		if _, perr := chk.ChaosSchedule(); perr != nil {
			return sw, fmt.Errorf("-des-crash: %w", perr)
		}
	}
	return sw, nil
}

// desRecord is the machine-readable record written by -des-json.
type desRecord struct {
	Schema     string   `json:"schema"` // "conciliator-des/v1"
	Seed       uint64   `json:"seed"`
	Trials     int      `json:"trials"`
	Latency    string   `json:"latency"`
	Loss       float64  `json:"loss"`
	Partitions []string `json:"partitions,omitempty"`
	Crash      string   `json:"crash,omitempty"`
	Restart    string   `json:"restart,omitempty"`
	Rows       []desRow `json:"rows"`
}

type desRow struct {
	N             int     `json:"n"`
	Protocol      string  `json:"protocol"`
	Rounds        int     `json:"rounds_per_phase"`
	Phases        int     `json:"phases"`
	StepsMean     float64 `json:"steps_per_proc_mean"`
	StepsCI95     float64 `json:"steps_per_proc_ci95"`
	StepsP50      float64 `json:"steps_p50"`
	StepsP90      float64 `json:"steps_p90"`
	StepsP99      float64 `json:"steps_p99"`
	StepsMax      int64   `json:"steps_max"`
	MsgsSent      int64   `json:"msgs_sent"`
	MsgsDropped   int64   `json:"msgs_dropped"`
	MsgsBlocked   int64   `json:"msgs_blocked"`
	Retransmits   int64   `json:"retransmits"`
	Events        int64   `json:"events"`
	VirtualMsMean float64 `json:"virtual_ms_mean"`
	AllDecided    bool    `json:"all_decided"`
	Violations    int     `json:"violations"`
	Crashes       int64   `json:"crashes,omitempty"`
	Restarts      int64   `json:"restarts,omitempty"`
	Wipes         int64   `json:"wipes,omitempty"`
	Resyncs       int64   `json:"resyncs,omitempty"`
	GaveUp        int     `json:"gave_up,omitempty"`
	RunErrors     int     `json:"run_errors,omitempty"`
}

// runDESSweep executes the flag-driven DES sweep: for each (n, protocol)
// cell it runs `trials` seeds derived from the master seed, prints one
// table row, and optionally writes the JSON record. Deterministic in
// (seed, flags).
//
// Under a chaos schedule with atomic semantics (durable server) any
// safety violation fails the sweep; under the weakened amnesiac-server
// variant violations and run errors are findings, reported in the table
// and — with -des-fault-repros — shrunk into replayable artifacts.
func runDESSweep(out io.Writer, df *desFlags, seed uint64, format string) error {
	sw, err := df.validate()
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = 20120716 // the documented default master seed
	}

	rec := desRecord{
		Schema:  "conciliator-des/v1",
		Seed:    seed,
		Trials:  sw.trials,
		Latency: sw.net.Latency.String(),
		Loss:    sw.net.Loss,
		Crash:   df.crash,
		Restart: df.restart,
	}
	if sw.net.Latency.Mean <= 0 {
		rec.Latency = "exp:1ms" // the engine default, applied per run
	}
	for _, p := range sw.net.Partitions {
		rec.Partitions = append(rec.Partitions, p.String())
	}

	chaotic := sw.chaos.Active()
	title := fmt.Sprintf("message-passing sweep (latency %s, loss %g, %d partitions, %d trials)", rec.Latency, sw.net.Loss, len(sw.net.Partitions), sw.trials)
	columns := []string{"n", "protocol", "rounds/phase", "phases", "steps/proc", "p99", "max", "retransmits", "virtual ms", "all decided", "violations"}
	if chaotic {
		title = fmt.Sprintf("chaos sweep (latency %s, loss %g, crash %s, restart %s, %d trials)", rec.Latency, sw.net.Loss, df.crash, restartLabel(df.restart), sw.trials)
		columns = append(columns, "crashes", "restarts", "wipes", "resyncs", "gave up", "run errors")
	}
	tbl := experiment.Table{ID: "DES", Title: title, Columns: columns}

	var (
		atomicViolations int
		reprosSaved      int
	)
	// Per-trial seeds come from a named fork of the master seed, so the
	// sweep composition (which cells run, in what order) cannot change
	// any cell's results.
	seedRng := xrand.New(seed).ForkNamed(0xde5)
	for _, n := range sw.ns {
		for _, protocol := range sw.protocols {
			cellSeeds := make([]uint64, sw.trials)
			for t := range cellSeeds {
				cellSeeds[t] = seedRng.Uint64()
			}
			var (
				steps      []float64
				vtimes     []float64
				row        = desRow{N: n, Protocol: protocol, AllDecided: true}
				cellRepros int
			)
			for _, s := range cellSeeds {
				cfg := des.Config{N: n, Protocol: protocol, Net: sw.net, Chaos: sw.chaos, Seed: s}
				res, rerr := des.Run(cfg)
				if rerr != nil {
					if !sw.weakened {
						return fmt.Errorf("des n=%d %s: %w", n, protocol, rerr)
					}
					// Weakened regime: the run itself may wedge (e.g. a
					// process blocked on state the server forgot). That is
					// a measured outcome of leaving the atomic model.
					row.RunErrors++
					continue
				}
				row.Rounds = res.Rounds
				if res.Phases > row.Phases {
					row.Phases = res.Phases
				}
				for _, st := range res.Steps {
					steps = append(steps, float64(st))
				}
				vtimes = append(vtimes, float64(res.VirtualTime.Microseconds())/1000)
				row.MsgsSent += res.MsgsSent
				row.MsgsDropped += res.MsgsDropped
				row.MsgsBlocked += res.MsgsBlocked
				row.Retransmits += res.Retransmits
				row.Events += res.Events
				row.AllDecided = row.AllDecided && res.AllDecided
				row.Violations += len(res.Violations)
				row.Crashes += res.Crashes
				row.Restarts += res.Restarts
				row.Wipes += res.Wipes
				row.Resyncs += res.Resyncs
				row.GaveUp += res.GaveUp
				if m := res.MaxSteps(); m > row.StepsMax {
					row.StepsMax = m
				}
				if len(res.Violations) > 0 {
					if !sw.weakened {
						atomicViolations += len(res.Violations)
					}
					if df.repros != "" && cellRepros < desMaxReprosPerCell {
						path, serr := shrinkAndSaveRepro(cfg, df.repros, cellRepros)
						if serr != nil {
							return fmt.Errorf("des n=%d %s seed %d: shrinking repro: %w", n, protocol, s, serr)
						}
						fmt.Fprintf(out, "saved fault repro: %s\n", path)
						cellRepros++
						reprosSaved++
					}
				}
			}
			sum := stats.Summarize(steps)
			qs := stats.Quantiles(steps, 0.5, 0.9, 0.99)
			row.StepsMean, row.StepsCI95 = sum.Mean, sum.CI95()
			row.StepsP50, row.StepsP90, row.StepsP99 = qs[0], qs[1], qs[2]
			vsum := stats.Summarize(vtimes)
			row.VirtualMsMean = vsum.Mean
			rec.Rows = append(rec.Rows, row)
			cells := []any{n, protocol, row.Rounds, row.Phases, sum.String(), qs[2], row.StepsMax,
				row.Retransmits, vsum.String(), fmt.Sprintf("%v", row.AllDecided), row.Violations}
			if chaotic {
				cells = append(cells, row.Crashes, row.Restarts, row.Wipes, row.Resyncs, row.GaveUp, row.RunErrors)
			}
			tbl.AddRow(cells...)
		}
	}

	switch format {
	case "markdown":
		fmt.Fprintln(out, tbl.Markdown())
	case "tsv":
		fmt.Fprintf(out, "# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.TSV())
	default:
		fmt.Fprintln(out, tbl.Text())
	}

	if df.jsonOut != "" {
		data, merr := json.MarshalIndent(rec, "", "  ")
		if merr != nil {
			return fmt.Errorf("encoding DES record: %w", merr)
		}
		data = append(data, '\n')
		if werr := os.WriteFile(df.jsonOut, data, 0o644); werr != nil {
			return fmt.Errorf("writing DES record: %w", werr)
		}
	}
	if atomicViolations > 0 {
		return fmt.Errorf("des: %d safety violations under atomic semantics — the shared objects are durable, so this is a protocol or simulator bug", atomicViolations)
	}
	return nil
}

// desMaxReprosPerCell caps artifact output per (n, protocol) cell: the
// first failures are the interesting ones; hundreds of near-identical
// artifacts are noise.
const desMaxReprosPerCell = 2

// restartLabel names the restart variant for table titles.
func restartLabel(v string) string {
	if v == "" {
		return "durable"
	}
	return v
}

// shrinkAndSaveRepro takes a violating chaos config, ddmin-shrinks its
// materialized schedule against "still violates", and writes the
// des-fault-repro/v1 artifact into dir.
func shrinkAndSaveRepro(cfg des.Config, dir string, idx int) (string, error) {
	events, err := cfg.ChaosSchedule()
	if err != nil {
		return "", err
	}
	reproduces := func(cand []des.ChaosEvent) bool {
		c := cfg
		c.Chaos = des.ChaosConfig{Events: cand, ProcRestart: cfg.Chaos.ProcRestart, ServerRestart: cfg.Chaos.ServerRestart}
		res, rerr := des.Run(c)
		return rerr == nil && len(res.Violations) > 0
	}
	shrunk := des.ShrinkChaos(events, 256, reproduces)
	final := cfg
	final.Chaos = des.ChaosConfig{Events: shrunk, ProcRestart: cfg.Chaos.ProcRestart, ServerRestart: cfg.Chaos.ServerRestart}
	res, rerr := des.Run(final)
	if rerr != nil || len(res.Violations) == 0 {
		// The shrunk schedule must still violate — ShrinkChaos guarantees
		// this when the input violates, so reaching here is a bug.
		return "", fmt.Errorf("shrunk schedule no longer reproduces the violation (err=%v)", rerr)
	}
	repro := des.BuildRepro(final, shrunk, res.Violations)
	path := filepath.Join(dir, fmt.Sprintf("des_fault_n%d_%s_%d.json", cfg.N, cfg.Protocol, idx))
	if err := repro.Save(path); err != nil {
		return "", err
	}
	return path, nil
}

// runDESFaultReplay loads a committed des-fault-repro/v1 artifact and
// replays it, verifying the recorded violations reproduce byte-for-byte.
func runDESFaultReplay(out io.Writer, path string) error {
	repro, err := des.LoadFaultRepro(path)
	if err != nil {
		return err
	}
	res, err := repro.Replay()
	if err != nil {
		return fmt.Errorf("replaying %s: %w", path, err)
	}
	fmt.Fprintf(out, "replayed %s: schema %s, n=%d protocol=%s seed=%d\n", path, repro.Schema, repro.N, repro.Protocol, repro.Seed)
	fmt.Fprintf(out, "  %d chaos events reproduced %d violation(s) byte-identically:\n", len(repro.Chaos), len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(out, "  - %s: %s\n", v.Monitor, v.Detail)
	}
	return nil
}
