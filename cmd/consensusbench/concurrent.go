package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// concurrentRecord is the machine-readable record written by
// -bench-concurrent-json. Its entry list uses the same shape and JSON key
// as benchRecord so -bench-concurrent-baseline can parse a committed
// record with the ordinary benchRecord decoder.
type concurrentRecord struct {
	Schema           string             `json:"schema"` // "conciliator-concurrent-bench/v1"
	GOOS             string             `json:"goos"`
	GOARCH           string             `json:"goarch"`
	NumCPU           int                `json:"num_cpu"`
	GOMAXPROCS       int                `json:"gomaxprocs"`
	OpsPerProc       int                `json:"ops_per_proc"`
	Runs             int                `json:"runs"`
	TotalWallSeconds float64            `json:"total_wall_seconds"`
	Experiments      []benchEntry       `json:"experiments"`
	SpeedupVsLocked  map[string]float64 `json:"speedup_vs_locked"`
	Note             string             `json:"note,omitempty"`
}

const (
	// concurrentOpsPerProc is the fixed shared-memory operations each
	// process performs per run (4 object ops per loop iteration), chosen
	// so a run is long enough to amortize trial startup but short enough
	// that the full sweep stays in CI budget.
	concurrentOpsPerProc = 512
	// concurrentStepsRuns fixes the per-workload run count, keeping the
	// total modeled work deterministic so steps/s varies only with
	// machine speed — the same contract as controlledStepsRuns.
	concurrentStepsRuns = 16
)

// concurrentSizes are the process counts the concurrent sweep measures.
var concurrentSizes = []int{2, 8, 64}

// concurrentStepsEntries measures real multi-core throughput of the
// concurrent substrate: for each n, n goroutines hammer a shared
// register, max register, and snapshot through one reused
// ConcurrentRunner, once over the lock-free representation and once over
// the mutex-backed one. Entries are keyed
// "concurrent-steps/<substrate>/n=<n>".
func concurrentStepsEntries() []benchEntry {
	var entries []benchEntry
	for _, substrate := range []struct {
		name   string
		locked bool
	}{
		{name: "lock-free", locked: false},
		{name: "locked", locked: true},
	} {
		for _, n := range concurrentSizes {
			r := sim.NewConcurrentRunner(n, 0)
			var totalSteps int64
			start := time.Now()
			for i := 0; i < concurrentStepsRuns; i++ {
				reg := memory.NewRegister[int]()
				maxr := memory.NewMaxRegister[int]()
				snap := memory.NewSnapshot[int](n)
				res, err := r.Run(func(p *sim.Proc) {
					for k := 0; k < concurrentOpsPerProc; k++ {
						reg.Write(p, p.ID())
						reg.Read(p)
						maxr.WriteMax(p, uint64(k), p.ID())
						snap.Update(p, p.ID(), k)
					}
				}, sim.Config{AlgSeed: uint64(i) + 1, LockedMemory: substrate.locked})
				if err != nil {
					// The body is panic-free and fault-free; an error here is
					// a runner bug, not a measurement artifact.
					panic(err)
				}
				totalSteps += res.TotalSteps
			}
			r.Close()
			secs := time.Since(start).Seconds()
			entry := benchEntry{
				ID:          fmt.Sprintf("concurrent-steps/%s/n=%d", substrate.name, n),
				WallSeconds: secs,
				Steps:       totalSteps,
			}
			if secs > 0 {
				entry.StepsPerSec = float64(totalSteps) / secs
			}
			entries = append(entries, entry)
		}
	}
	return entries
}

// buildConcurrentRecord runs the concurrent sweep and derives the
// per-n lock-free/locked speedup ratios the acceptance gate reads.
func buildConcurrentRecord(out io.Writer) concurrentRecord {
	start := time.Now()
	rec := concurrentRecord{
		Schema:          "conciliator-concurrent-bench/v1",
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		OpsPerProc:      concurrentOpsPerProc,
		Runs:            concurrentStepsRuns,
		Experiments:     concurrentStepsEntries(),
		SpeedupVsLocked: make(map[string]float64, len(concurrentSizes)),
	}
	rec.TotalWallSeconds = time.Since(start).Seconds()
	byID := make(map[string]benchEntry, len(rec.Experiments))
	for _, e := range rec.Experiments {
		byID[e.ID] = e
	}
	for _, n := range concurrentSizes {
		lf := byID[fmt.Sprintf("concurrent-steps/lock-free/n=%d", n)]
		lk := byID[fmt.Sprintf("concurrent-steps/locked/n=%d", n)]
		if lk.StepsPerSec > 0 {
			rec.SpeedupVsLocked[fmt.Sprintf("n=%d", n)] = lf.StepsPerSec / lk.StepsPerSec
		}
	}
	if rec.GOMAXPROCS < 2 {
		rec.Note = "single-core host: goroutines never run in parallel, so mutexes are uncontended and the lock-free representation pays its publication allocations without any contention win; the lock-free-vs-locked speedup is only meaningful on a multi-core host"
	}
	for _, e := range rec.Experiments {
		fmt.Fprintf(out, "bench-concurrent: %-34s %12.0f steps/s\n", e.ID, e.StepsPerSec)
	}
	for _, n := range concurrentSizes {
		key := fmt.Sprintf("n=%d", n)
		if s, ok := rec.SpeedupVsLocked[key]; ok {
			fmt.Fprintf(out, "bench-concurrent: lock-free speedup vs locked at %s: %.2fx\n", key, s)
		}
	}
	return rec
}
