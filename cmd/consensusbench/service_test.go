package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/service"
)

// runServiceQuick drives the service-load mode with a tiny workload and
// returns the parsed record from path.
func runServiceQuick(t *testing.T, extra ...string) serviceRecord {
	t.Helper()
	path := filepath.Join(t.TempDir(), "svc.json")
	args := append([]string{
		"-service-load", "-quick", "-seed", "7",
		"-service-duration", "150ms", "-service-clients", "4",
		"-service-json", path,
	}, extra...)
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%q): %v\noutput:\n%s", args, err, sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec serviceRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record does not parse: %v\n%s", err, data)
	}
	return rec
}

func TestServiceLoadRecord(t *testing.T) {
	rec := runServiceQuick(t, "-service-shards", "1,2")
	if err := rec.Validate(); err != nil {
		t.Fatalf("emitted record does not validate: %v", err)
	}
	if rec.Schema != "rsm-service/v1" {
		t.Fatalf("schema %q", rec.Schema)
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("swept 2 shard counts, got %d entries", len(rec.Entries))
	}
	if rec.Entries[0].ID != "service-load/s=1" || rec.Entries[1].ID != "service-load/s=2" {
		t.Fatalf("entry ids: %q, %q", rec.Entries[0].ID, rec.Entries[1].ID)
	}
	for _, e := range rec.Entries {
		if e.Errors != 0 {
			t.Fatalf("%s: %d errors against an in-process node", e.ID, e.Errors)
		}
		if e.WriteP50us > e.WriteP99us || e.WriteP99us > e.WriteP999us {
			t.Fatalf("%s: quantiles not monotone: p50 %d p99 %d p999 %d",
				e.ID, e.WriteP50us, e.WriteP99us, e.WriteP999us)
		}
	}
	if rec.NumCPU <= 0 || rec.GOMAXPROCS <= 0 || rec.GOOS == "" {
		t.Fatalf("host shape fields missing: %+v", rec)
	}
}

func TestServiceLoadZipfAndProtocol(t *testing.T) {
	rec := runServiceQuick(t, "-service-shards", "1", "-service-skew", "zipf", "-service-protocol", "snapshot")
	if rec.Skew != "zipf" || rec.Protocol != "snapshot" {
		t.Fatalf("record skew %q protocol %q", rec.Skew, rec.Protocol)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"mode mix mc", []string{"-service-load", "-mc", "all"}},
		{"mode mix attack", []string{"-service-load", "-attack", "all"}},
		{"mode mix des", []string{"-service-load", "-des"}},
		{"mode mix fault", []string{"-service-load", "-fault", "all"}},
		{"mode mix bench", []string{"-service-load", "-bench-json", "x.json"}},
		{"mode mix experiment", []string{"-service-load", "-experiment", "E1"}},
		{"mode mix list", []string{"-service-load", "-list"}},
		{"json without load", []string{"-service-json", "x.json"}},
		{"addr with shards", []string{"-service-load", "-service-addr", "localhost:1", "-service-shards", "1,4"}},
		{"bad format", []string{"-service-load", "-format", "yaml"}},
		{"bad shards", []string{"-service-load", "-service-shards", "1,zero"}},
		{"zero shards", []string{"-service-load", "-service-shards", "0"}},
		{"bad skew", []string{"-service-load", "-service-skew", "pareto"}},
		{"bad read frac", []string{"-service-load", "-service-read-frac", "1.5"}},
		{"bad protocol", []string{"-service-load", "-service-protocol", "paxos"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Fatalf("run(%q) succeeded, want error", tc.args)
			}
		})
	}
}

func TestServiceBaselineGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	args := []string{
		"-service-load", "-quick", "-seed", "7",
		"-service-duration", "150ms", "-service-clients", "4",
		"-service-shards", "1", "-service-json", path,
	}
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}

	t.Run("generous baseline passes", func(t *testing.T) {
		// Run-to-run throughput on a small host is far noisier than the
		// 10% gate, so a literal self-comparison flakes; a baseline at a
		// tenth of the measured throughput must always pass while still
		// exercising the whole comparison path.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rec serviceRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		for i := range rec.Entries {
			rec.Entries[i].WriteThroughput /= 10
		}
		generous, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		genPath := filepath.Join(t.TempDir(), "generous.json")
		if err := os.WriteFile(genPath, generous, 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		err = run([]string{
			"-service-load", "-quick", "-seed", "7",
			"-service-duration", "150ms", "-service-clients", "4",
			"-service-shards", "1", "-service-baseline", genPath,
		}, &out)
		if err != nil {
			t.Fatalf("10x-generous baseline failed the gate: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "service-baseline:") {
			t.Fatalf("no baseline output:\n%s", out.String())
		}
	})

	t.Run("cross host skips", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rec serviceRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		rec.NumCPU += 64 // a record from a very different machine
		alien, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		alienPath := filepath.Join(t.TempDir(), "alien.json")
		if err := os.WriteFile(alienPath, alien, 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		err = run([]string{
			"-service-load", "-quick", "-seed", "7",
			"-service-duration", "150ms", "-service-clients", "4",
			"-service-shards", "1", "-service-baseline", alienPath,
		}, &out)
		if err != nil {
			t.Fatalf("cross-host comparison must skip, not fail: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "skipping") {
			t.Fatalf("no loud skip line:\n%s", out.String())
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rec serviceRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		for i := range rec.Entries {
			rec.Entries[i].WriteThroughput *= 1000 // impossible baseline
		}
		inflated, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		infPath := filepath.Join(t.TempDir(), "inflated.json")
		if err := os.WriteFile(infPath, inflated, 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		err = run([]string{
			"-service-load", "-quick", "-seed", "7",
			"-service-duration", "150ms", "-service-clients", "4",
			"-service-shards", "1", "-service-baseline", infPath,
		}, &out)
		if err == nil {
			t.Fatalf("1000x regression passed the gate:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "regressed") {
			t.Fatalf("unexpected gate error: %v", err)
		}
	})
}

// TestServiceLoadOverHTTP drives a live node through the -service-addr
// path: the same load generator, but every op crossing a real HTTP hop.
func TestServiceLoadOverHTTP(t *testing.T) {
	node, err := service.Start(service.Config{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv := httptest.NewServer(service.NewHandler(node))
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "remote.json")
	var sb strings.Builder
	err = run([]string{
		"-service-load", "-seed", "7",
		"-service-duration", "150ms", "-service-clients", "4",
		"-service-addr", strings.TrimPrefix(srv.URL, "http://"),
		"-service-json", path,
	}, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec serviceRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 || rec.Entries[0].ID != "service-load/remote" {
		t.Fatalf("remote entries: %+v", rec.Entries)
	}
	e := rec.Entries[0]
	if e.Errors != 0 || e.Writes == 0 || e.WriteP99us == 0 {
		t.Fatalf("remote load: %+v", e)
	}
	// The remote ops really went through the node's consensus groups.
	var applied int64
	for _, gs := range node.Status().Groups {
		applied += gs.AppliedOps
	}
	if applied != e.Writes {
		t.Fatalf("node applied %d, load reported %d writes", applied, e.Writes)
	}
}

func TestServiceRecordValidate(t *testing.T) {
	good := serviceRecord{
		Schema: "rsm-service/v1",
		Entries: []serviceEntry{{
			ID: "service-load/s=1", Writes: 10, WriteP99us: 100,
			Throughput: 50, WriteThroughput: 40, Batches: 5, BatchMean: 2,
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := good
	bad.Schema = "rsm-service/v2"
	if bad.Validate() == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = good
	bad.Entries = nil
	if bad.Validate() == nil {
		t.Fatal("empty record accepted")
	}
	bad = good
	bad.Entries = []serviceEntry{good.Entries[0]}
	bad.Entries[0].WriteP99us = 0
	if bad.Validate() == nil {
		t.Fatal("zero p99 accepted")
	}
}
