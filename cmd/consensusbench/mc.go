package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/experiment"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// mcFlags is the flat-engine Monte Carlo mode: millions of full consensus
// trials on the flat state-machine interpreter, aggregated by streaming
// integer histograms.
type mcFlags struct {
	spec    string
	n       int
	trials  int64
	schedK  string
	jsonOut string
}

func (f *mcFlags) active() bool {
	return f.spec != "" || f.jsonOut != "" || f.n != 0 || f.trials != 0 || f.schedK != ""
}

// mcProtocols maps the -mc spec to flat configurations. "all" expands to
// the three corollary protocols the flat engine supports.
func (f *mcFlags) protocols() ([]consensus.FlatConfig, error) {
	spec := f.spec
	if spec == "" || spec == "all" {
		spec = "sifter:register,sifter-half:register,priority-max:snapshot"
	}
	var cfgs []consensus.FlatConfig
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		conc, ac, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("-mc entry %q: want conciliator:adopt-commit (e.g. sifter:register)", tok)
		}
		cfgs = append(cfgs, consensus.FlatConfig{Conciliator: conc, AC: ac})
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("-mc %q selects no protocols", f.spec)
	}
	return cfgs, nil
}

func (f *mcFlags) validate(quick bool) (kind sched.Kind, err error) {
	if _, err := f.protocols(); err != nil {
		return 0, err
	}
	if f.n < 0 || f.trials < 0 {
		return 0, fmt.Errorf("-mc-n and -mc-trials must be positive")
	}
	if f.n == 0 {
		f.n = 16
	}
	if f.trials == 0 {
		if quick {
			f.trials = 20_000
		} else {
			f.trials = 1_000_000
		}
	}
	name := f.schedK
	if name == "" {
		name = "random"
	}
	kind, ok := sched.KindByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown -mc-sched %q", name)
	}
	return kind, nil
}

// mcRecord is the machine-readable Monte Carlo record written by -mc-json.
type mcRecord struct {
	Schema      string    `json:"schema"` // "conciliator-mc/v1"
	Seed        uint64    `json:"seed"`
	N           int       `json:"n"`
	Trials      int64     `json:"trials"`
	Sched       string    `json:"sched"`
	Parallelism int       `json:"parallelism"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	WallSeconds float64   `json:"total_wall_seconds"`
	Entries     []mcEntry `json:"entries"`
}

type mcEntry struct {
	ID          string  `json:"id"` // "mc/<conciliator>+<ac>"
	Trials      int64   `json:"trials"`
	Agreed      int64   `json:"agreed"`
	MeanSteps   float64 `json:"mean_steps"`
	P50         int64   `json:"p50"`
	P90         int64   `json:"p90"`
	P99         int64   `json:"p99"`
	P99Lo       int64   `json:"p99_lo"`
	P99Hi       int64   `json:"p99_hi"`
	P999        int64   `json:"p999"`
	MaxSteps    int64   `json:"max_steps"`
	PhasesMax   int64   `json:"phases_max"`
	TotalSteps  int64   `json:"total_steps"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// runMCSweep runs the Monte Carlo mode: one RunMonteCarlo sweep per
// selected protocol, a rendered table, and optionally the JSON record.
func runMCSweep(out io.Writer, f *mcFlags, seed uint64, quick bool, parallel int, format string) error {
	kind, err := f.validate(quick)
	if err != nil {
		return err
	}
	cfgs, err := f.protocols()
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = 20120716
	}
	if parallel < 1 {
		parallel = runtime.NumCPU()
	}
	rec := mcRecord{
		Schema:      "conciliator-mc/v1",
		Seed:        seed,
		N:           f.n,
		Trials:      f.trials,
		Sched:       kind.String(),
		Parallelism: parallel,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	tbl := experiment.Table{
		ID:    "MC",
		Title: fmt.Sprintf("flat-engine Monte Carlo, n=%d, %d trials, %s schedule", f.n, f.trials, kind),
		Columns: []string{"protocol", "agree", "mean", "p50", "p90", "p99 [95% CI]", "p999", "max",
			"phases max", "Msteps/s"},
		Notes: []string{
			"Exact nearest-rank quantiles of per-process steps to decide over all trials;",
			"[lo, hi] is the distribution-free order-statistic ~95% CI (stats.IntHist).",
		},
	}
	start := time.Now()
	for i, cfg := range cfgs {
		res, err := consensus.RunMonteCarlo(consensus.MCConfig{
			N:       f.n,
			Trials:  f.trials,
			Flat:    cfg,
			Sched:   kind,
			Seed:    seed + uint64(i),
			Workers: parallel,
		})
		if err != nil {
			return fmt.Errorf("-mc %s:%s: %w", cfg.Conciliator, cfg.AC, err)
		}
		p99, p99lo, p99hi := res.Steps.QuantileCI(0.99)
		agree, _ := stats.Proportion(int(res.Agreed), int(res.Trials))
		tbl.AddRow(cfg.Conciliator+"+"+cfg.AC, agree,
			res.Steps.Mean(), res.Steps.Quantile(0.5), res.Steps.Quantile(0.9),
			fmt.Sprintf("%d [%d, %d]", p99, p99lo, p99hi),
			res.Steps.Quantile(0.999), res.Steps.Max(), res.Phases.Max(),
			res.StepsPerSec/1e6)
		rec.Entries = append(rec.Entries, mcEntry{
			ID:          "mc/" + cfg.Conciliator + "+" + cfg.AC,
			Trials:      res.Trials,
			Agreed:      res.Agreed,
			MeanSteps:   res.Steps.Mean(),
			P50:         res.Steps.Quantile(0.5),
			P90:         res.Steps.Quantile(0.9),
			P99:         p99,
			P99Lo:       p99lo,
			P99Hi:       p99hi,
			P999:        res.Steps.Quantile(0.999),
			MaxSteps:    res.Steps.Max(),
			PhasesMax:   res.Phases.Max(),
			TotalSteps:  res.TotalSteps,
			WallSeconds: res.Elapsed.Seconds(),
			StepsPerSec: res.StepsPerSec,
		})
	}
	switch format {
	case "markdown":
		fmt.Fprintln(out, tbl.Markdown())
	case "tsv":
		fmt.Fprintf(out, "# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.TSV())
	default:
		fmt.Fprintln(out, tbl.Text())
	}
	if f.jsonOut != "" {
		rec.WallSeconds = time.Since(start).Seconds()
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding mc record: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(f.jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("writing mc record: %w", err)
		}
	}
	return nil
}

// benchCountdown is the flat-engine image of the controlled-steps
// microbenchmark bodies: process pid performs a fixed number of trivial
// operations.
type benchCountdown struct {
	steps func(pid int) int
	left  []int
}

func (m *benchCountdown) Init(pid int, _ *xrand.Rand) { m.left[pid] = m.steps(pid) }

func (m *benchCountdown) Step(pid int, _ *xrand.Rand) bool {
	m.left[pid]--
	return m.left[pid] == 0
}

// flatStepsRuns is the fixed run count of the flat-steps workloads. The
// flat engine clears each workload in microseconds, so it takes more
// runs than the coroutine engine to integrate a stable steps/s figure;
// since steps/s is time-normalized, flat-steps/X vs controlled-steps/X
// in one record is still the engine speedup on identical modeled work.
const flatStepsRuns = 16 * controlledStepsRuns

// flatStepsEntries runs the controlled-steps microbenchmark workloads on
// the flat state-machine engine and returns one bench entry per workload
// under the "flat-steps/" id prefix.
func flatStepsEntries() []benchEntry {
	cases := []struct {
		name  string
		n     int
		steps func(pid int) int
		mk    func(n int, seed uint64) sched.Source
	}{
		{
			name:  "round-robin/n=8",
			n:     8,
			steps: func(int) int { return 2048 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "round-robin/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "random/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, seed uint64) sched.Source { return sched.NewRandom(n, xrand.New(seed)) },
		},
		{
			name: "skewed-tail/n=64",
			n:    64,
			steps: func(pid int) int {
				if pid == 0 {
					return 4096
				}
				return 1
			},
			mk: func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
	}
	entries := make([]benchEntry, 0, len(cases))
	for _, tc := range cases {
		m := &benchCountdown{steps: tc.steps, left: make([]int, tc.n)}
		fr := sim.NewFlatRunner[*benchCountdown]()
		var res sim.Result
		var totalSteps, totalSlots int64
		start := time.Now()
		for i := 0; i < flatStepsRuns; i++ {
			if err := fr.RunInto(tc.mk(tc.n, uint64(i)+1), m, sim.Config{AlgSeed: uint64(i) + 1}, &res); err != nil {
				// Infinite-schedule workloads far below the slot budget: an
				// error is an engine bug, not a measurement artifact.
				panic(err)
			}
			totalSteps += res.TotalSteps
			totalSlots += res.Slots
		}
		secs := time.Since(start).Seconds()
		entry := benchEntry{
			ID:          "flat-steps/" + tc.name,
			WallSeconds: secs,
			Steps:       totalSteps,
			Slots:       totalSlots,
		}
		if secs > 0 {
			entry.StepsPerSec = float64(totalSteps) / secs
			entry.SlotsPerSec = float64(totalSlots) / secs
		}
		entries = append(entries, entry)
	}
	return entries
}
