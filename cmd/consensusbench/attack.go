package main

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"github.com/oblivious-consensus/conciliator/internal/attack/search"
	"github.com/oblivious-consensus/conciliator/internal/experiment"
)

// attackFlags is the -attack* flag surface, collected so run() can
// validate the combination up front — the same shape as faultFlags and
// desFlags: any flag set makes the mode active, and an active mode
// rejects every conflicting run shape before a single evaluation runs.
type attackFlags struct {
	spec    string // -attack: protocols to search, comma-separated or "all"
	jsonOut string // -attack-json: write attack-record/v1 artifacts
	replay  string // -attack-replay: replay a committed artifact
	n       int    // -attack-n
	budget  int    // -attack-budget
	trials  int    // -attack-trials
	faults  bool   // -attack-faults
}

func (f *attackFlags) active() bool {
	return f.spec != "" || f.jsonOut != "" || f.replay != "" ||
		f.n != 0 || f.budget != 0 || f.trials != 0 || f.faults
}

// validate parses and checks every -attack-* value, returning the
// resolved protocol list for search mode (empty in replay mode).
func (f *attackFlags) validate() ([]string, error) {
	if f.replay != "" {
		if f.spec != "" || f.jsonOut != "" || f.n != 0 || f.budget != 0 || f.trials != 0 || f.faults {
			return nil, fmt.Errorf("-attack-replay cannot be combined with -attack/-attack-json/-attack-n/-attack-budget/-attack-trials/-attack-faults: a replay takes its whole configuration from the artifact")
		}
		return nil, nil
	}
	if f.spec == "" {
		return nil, fmt.Errorf("-attack-json/-attack-n/-attack-budget/-attack-trials/-attack-faults require -attack")
	}
	var protocols []string
	if f.spec == "all" {
		protocols = search.Protocols()
	} else {
		known := make(map[string]bool)
		for _, p := range search.Protocols() {
			known[p] = true
		}
		for _, s := range strings.Split(f.spec, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if !known[s] {
				return nil, fmt.Errorf("-attack: unknown protocol %q (want all, %s)", s, strings.Join(search.Protocols(), ", "))
			}
			protocols = append(protocols, s)
		}
		if len(protocols) == 0 {
			return nil, fmt.Errorf("-attack: no protocols in %q", f.spec)
		}
	}
	if f.n < 0 || f.n == 1 || f.n > 64 {
		return nil, fmt.Errorf("-attack-n: %d outside [2, 64]", f.n)
	}
	if f.budget < 0 {
		return nil, fmt.Errorf("-attack-budget: %d must be positive", f.budget)
	}
	if f.trials < 0 {
		return nil, fmt.Errorf("-attack-trials: %d must be positive", f.trials)
	}
	return protocols, nil
}

// attackArtifactPath derives the per-protocol artifact path from the
// -attack-json base: "dir/ATTACK.json" becomes "dir/ATTACK_sifter.json".
// With a single protocol the base path is used as given.
func attackArtifactPath(base, protocol string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "_" + protocol + ext
}

// runAttackSearch executes the flag-driven adversary search: one search
// per requested protocol, a result table, and optionally one committed
// attack-record/v1 artifact per protocol. Deterministic in (seed, flags);
// -parallel only changes wall-clock time.
func runAttackSearch(out io.Writer, af *attackFlags, seed uint64, quick bool, parallel int, format string) error {
	protocols, err := af.validate()
	if err != nil {
		return err
	}
	n, budget, trials := af.n, af.budget, af.trials
	if n == 0 {
		n = 8
		if quick {
			n = 4
		}
	}
	if budget == 0 {
		budget = 64
		if quick {
			budget = 16
		}
	}
	if trials == 0 {
		trials = 4
		if quick {
			trials = 2
		}
	}

	tbl := experiment.Table{
		ID:      "ATTACK",
		Title:   fmt.Sprintf("oblivious adversary search (n=%d, budget=%d evaluations, %d trials/candidate)", n, budget, trials),
		Columns: []string{"protocol", "evaluations", "round-robin steps", "best oblivious steps", "white-box steps", "phases best/wb", "undecided"},
		Notes: []string{
			"Steps are mean max individual steps to decision on fresh " +
				"confirmation seeds. The white-box column grafts the " +
				"coin-aware phase-1 freeze onto the winner's own schedule " +
				"and must dominate the oblivious column (Section 1.1).",
		},
	}
	for _, protocol := range protocols {
		res, err := search.Search(search.Config{
			Protocol:    protocol,
			N:           n,
			Seed:        seed,
			Budget:      budget,
			EvalTrials:  trials,
			Faults:      af.faults,
			Parallelism: parallel,
		})
		if err != nil {
			return fmt.Errorf("attack search %s: %w", protocol, err)
		}
		tbl.AddRow(
			protocol,
			res.Evaluations,
			res.Baselines["round-robin"].StepsMean,
			res.Confirm.StepsMean,
			res.WhiteBox.StepsMean,
			fmt.Sprintf("%.1f/%.1f", res.Confirm.PhasesMean, res.WhiteBox.PhasesMean),
			res.Confirm.Undecided,
		)
		if af.jsonOut != "" {
			path := attackArtifactPath(af.jsonOut, protocol, len(protocols) > 1)
			if err := search.NewRecord(res).Save(path); err != nil {
				return fmt.Errorf("writing attack record: %w", err)
			}
			fmt.Fprintf(out, "attack: wrote %s\n", path)
		}
	}

	switch format {
	case "markdown":
		fmt.Fprintln(out, tbl.Markdown())
	case "tsv":
		fmt.Fprintf(out, "# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.TSV())
	default:
		fmt.Fprintln(out, tbl.Text())
	}
	return nil
}

// runAttackReplay re-runs a committed artifact's search from its recorded
// configuration and verifies the regenerated artifact is byte-identical —
// the CI check that committed attack records have not rotted.
func runAttackReplay(out io.Writer, path string, parallel int) error {
	rec, err := search.LoadRecord(path)
	if err != nil {
		return fmt.Errorf("attack-replay: %w", err)
	}
	want, err := rec.Encode()
	if err != nil {
		return fmt.Errorf("attack-replay: %w", err)
	}
	fresh, err := search.Replay(rec, parallel)
	if err != nil {
		return fmt.Errorf("attack-replay: %w", err)
	}
	got, err := fresh.Encode()
	if err != nil {
		return fmt.Errorf("attack-replay: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("attack-replay: %s did not replay byte-identically: the search or its schedule family changed; regenerate with -attack -attack-json", path)
	}
	fmt.Fprintf(out, "attack-replay: %s replayed byte-identically (protocol=%s n=%d evaluations=%d best=%.2f whitebox=%.2f)\n",
		path, rec.Protocol, rec.N, rec.Evaluations, rec.Confirm.StepsMean, rec.WhiteBox.StepsMean)
	return nil
}
