package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"E1", "E7", "E14"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
	if !strings.Contains(out, "claim:") {
		t.Error("list missing claims")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "log* n") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestLowercaseIDAccepted(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "e3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"text", "markdown", "tsv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-experiment", "E6", "-quick", "-format", format}, &b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatal("empty output")
			}
		})
	}
}

func TestMarkdownFormatShape(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-format", "markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| n |") {
		t.Errorf("markdown table header missing:\n%s", b.String())
	}
}

func TestTimingsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-timings"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "took") {
		t.Error("timings missing")
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown experiment", args: []string{"-experiment", "E99"}},
		{name: "unknown format", args: []string{"-experiment", "E6", "-quick", "-format", "xml"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3, e6", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E6") {
		t.Errorf("expected both experiments in output:\n%s", out)
	}
}

func TestCommaSeparatedEmpty(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", " , "}, &b); err == nil {
		t.Error("expected error for empty id list")
	}
}
