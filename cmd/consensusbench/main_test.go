package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"E1", "E7", "E14"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
	if !strings.Contains(out, "claim:") {
		t.Error("list missing claims")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "log* n") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestLowercaseIDAccepted(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "e3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"text", "markdown", "tsv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-experiment", "E6", "-quick", "-format", format}, &b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatal("empty output")
			}
		})
	}
}

func TestMarkdownFormatShape(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-format", "markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| n |") {
		t.Errorf("markdown table header missing:\n%s", b.String())
	}
}

func TestTimingsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-timings"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "took") {
		t.Error("timings missing")
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown experiment", args: []string{"-experiment", "E99"}},
		{name: "unknown format", args: []string{"-experiment", "E6", "-quick", "-format", "xml"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3, e6", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E6") {
		t.Errorf("expected both experiments in output:\n%s", out)
	}
}

func TestCommaSeparatedEmpty(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", " , "}, &b); err == nil {
		t.Error("expected error for empty id list")
	}
}

func TestFormatValidatedBeforeRunning(t *testing.T) {
	// A bad -format must fail before any experiment runs: the error
	// arrives with nothing written, rather than after a minutes-long
	// suite has already printed its tables.
	var b strings.Builder
	err := run([]string{"-all", "-format", "jsn"}, &b)
	if err == nil {
		t.Fatal("expected error for unknown format")
	}
	if !strings.Contains(err.Error(), "jsn") {
		t.Errorf("error does not name the bad format: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("output written before format validation: %q", b.String())
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	// Identical seed => byte-identical tables regardless of -parallel.
	render := func(parallel string) string {
		var b strings.Builder
		if err := run([]string{"-experiment", "E3", "-quick", "-parallel", parallel}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if one, many := render("1"), render("7"); one != many {
		t.Errorf("output differs between -parallel 1 and -parallel 7:\n%s\n---\n%s", one, many)
	}
}

func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var b strings.Builder
	if err := run([]string{"-experiment", "E3,E6", "-quick", "-bench-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rec.Schema != "conciliator-bench/v1" {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.Seed == 0 || rec.Parallelism == 0 {
		t.Errorf("defaults not recorded: seed=%d parallelism=%d", rec.Seed, rec.Parallelism)
	}
	if len(rec.Experiments) != 2 {
		t.Fatalf("got %d experiment entries, want 2", len(rec.Experiments))
	}
	for _, e := range rec.Experiments {
		if e.ID == "" || e.Steps <= 0 || e.Slots <= 0 {
			t.Errorf("degenerate entry: %+v", e)
		}
		if e.WallSeconds > 0 && e.StepsPerSec <= 0 {
			t.Errorf("steps/sec not computed: %+v", e)
		}
	}
}
