package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"E1", "E7", "E14"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
	if !strings.Contains(out, "claim:") {
		t.Error("list missing claims")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "log* n") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestLowercaseIDAccepted(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "e3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"text", "markdown", "tsv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-experiment", "E6", "-quick", "-format", format}, &b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatal("empty output")
			}
		})
	}
}

func TestMarkdownFormatShape(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-format", "markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| n |") {
		t.Errorf("markdown table header missing:\n%s", b.String())
	}
}

func TestTimingsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-timings"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "took") {
		t.Error("timings missing")
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown experiment", args: []string{"-experiment", "E99"}},
		{name: "unknown format", args: []string{"-experiment", "E6", "-quick", "-format", "xml"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3, e6", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E6") {
		t.Errorf("expected both experiments in output:\n%s", out)
	}
}

func TestCommaSeparatedEmpty(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", " , "}, &b); err == nil {
		t.Error("expected error for empty id list")
	}
}

func TestFormatValidatedBeforeRunning(t *testing.T) {
	// A bad -format must fail before any experiment runs: the error
	// arrives with nothing written, rather than after a minutes-long
	// suite has already printed its tables.
	var b strings.Builder
	err := run([]string{"-all", "-format", "jsn"}, &b)
	if err == nil {
		t.Fatal("expected error for unknown format")
	}
	if !strings.Contains(err.Error(), "jsn") {
		t.Errorf("error does not name the bad format: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("output written before format validation: %q", b.String())
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	// Identical seed => byte-identical tables regardless of -parallel.
	render := func(parallel string) string {
		var b strings.Builder
		if err := run([]string{"-experiment", "E3", "-quick", "-parallel", parallel}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if one, many := render("1"), render("7"); one != many {
		t.Errorf("output differs between -parallel 1 and -parallel 7:\n%s\n---\n%s", one, many)
	}
}

func TestMetricsJSONSchemaAndReconciliation(t *testing.T) {
	// E6 is the sifter experiment: every one of its shared-memory steps
	// is a register operation, so three independent views of the same
	// execution must agree exactly — the simulator's step counter, the
	// memory layer's per-object op counters, and the conciliator layer's
	// phase attribution.
	path := filepath.Join(t.TempDir(), "metrics.json")
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-metrics-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec metricsRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rec.Schema != "conciliator-metrics/v1" {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.Seed == 0 || rec.Parallelism == 0 {
		t.Errorf("defaults not recorded: seed=%d parallelism=%d", rec.Seed, rec.Parallelism)
	}
	if len(rec.Experiments) != 1 || rec.Experiments[0].ID != "E6" {
		t.Fatalf("experiments = %+v", rec.Experiments)
	}

	tot := rec.Totals
	steps := tot.Counters["sim.steps"]
	if steps <= 0 {
		t.Fatalf("sim.steps = %d", steps)
	}
	if memOps := tot.SumCounters("memory.register.", "memory.snapshot.update", "memory.snapshot.scan",
		"memory.maxreg.read", "memory.maxreg.write"); memOps != steps {
		t.Errorf("memory op counters = %d, sim.steps = %d", memOps, steps)
	}
	if sift := tot.Counters["conciliator.sifter.write_steps"] + tot.Counters["conciliator.sifter.read_steps"]; sift != steps {
		t.Errorf("sifter phase steps = %d, sim.steps = %d", sift, steps)
	}

	// The per-experiment delta must carry the same counters (one
	// experiment ran, so delta == totals for counters it moved) and the
	// histograms must have observations consistent with their counts.
	d := rec.Experiments[0].Metrics
	if d.Counters["sim.steps"] != steps {
		t.Errorf("delta sim.steps = %d, totals = %d", d.Counters["sim.steps"], steps)
	}
	perProc, ok := d.Histograms["conciliator.sifter.steps_per_proc"]
	if !ok || perProc.Count == 0 {
		t.Fatalf("missing sifter per-proc histogram: %+v", d.Histograms)
	}
	if perProc.Sum != steps {
		t.Errorf("per-proc histogram sum = %d, sim.steps = %d", perProc.Sum, steps)
	}
	var bucketTotal int64
	for _, bk := range perProc.Buckets {
		bucketTotal += bk.Count
	}
	if bucketTotal != perProc.Count {
		t.Errorf("bucket counts sum to %d, histogram count = %d", bucketTotal, perProc.Count)
	}
	if lat, ok := d.Histograms["sim.step_latency_ns"]; !ok || lat.Count == 0 {
		t.Errorf("missing step-latency histogram: %+v", d.Histograms)
	}
	if runs := d.Counters["sim.runs"]; runs <= 0 {
		t.Errorf("sim.runs = %d", runs)
	}
}

func TestMetricsTableFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-metrics"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"metrics:", "sim.steps", "memory.register.read", "conciliator.sifter.steps_per_proc"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	addr, shutdown, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "conciliator_metrics") {
		t.Errorf("expvar output missing conciliator_metrics:\n%.500s", body)
	}
	// The pprof index must be wired on the same private mux.
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp2.StatusCode)
	}
}

func TestDebugAddrFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E6", "-quick", "-debug-addr", "127.0.0.1:0"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "debug server on http://") {
		t.Errorf("bound debug address not reported:\n%s", b.String())
	}
}

func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var b strings.Builder
	if err := run([]string{"-experiment", "E3,E6", "-quick", "-bench-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rec.Schema != "conciliator-bench/v1" {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.Seed == 0 || rec.Parallelism == 0 {
		t.Errorf("defaults not recorded: seed=%d parallelism=%d", rec.Seed, rec.Parallelism)
	}
	// Two experiment entries plus the controlled-steps and flat-steps
	// microbenchmark entries the baseline gate compares against.
	var expEntries, ctrlEntries, flatEntries int
	for _, e := range rec.Experiments {
		switch {
		case strings.HasPrefix(e.ID, "controlled-steps/"):
			ctrlEntries++
		case strings.HasPrefix(e.ID, "flat-steps/"):
			flatEntries++
		default:
			expEntries++
		}
		if e.ID == "" || e.Steps <= 0 || e.Slots <= 0 {
			t.Errorf("degenerate entry: %+v", e)
		}
		if e.WallSeconds > 0 && e.StepsPerSec <= 0 {
			t.Errorf("steps/sec not computed: %+v", e)
		}
	}
	if expEntries != 2 {
		t.Fatalf("got %d experiment entries, want 2", expEntries)
	}
	if ctrlEntries != 4 {
		t.Fatalf("got %d controlled-steps entries, want 4", ctrlEntries)
	}
	if flatEntries != 4 {
		t.Fatalf("got %d flat-steps entries, want 4", flatEntries)
	}
}

func TestBenchBaselineGate(t *testing.T) {
	// Produce a record with this very binary, then doctor its numbers in
	// both directions. Comparing a fresh measurement against an unmodified
	// record of the same machine would race against timing noise (the
	// race detector alone can swing throughput well past the tolerance),
	// so the pass case deflates the baseline and the fail case inflates
	// it far beyond what any machine can recover.
	path := filepath.Join(t.TempDir(), "bench.json")
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-quick", "-bench-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	doctor := func(name string, factor float64) string {
		scaled := rec
		scaled.Experiments = make([]benchEntry, len(rec.Experiments))
		copy(scaled.Experiments, rec.Experiments)
		for i := range scaled.Experiments {
			scaled.Experiments[i].StepsPerSec *= factor
		}
		out, err := json.Marshal(scaled)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	b.Reset()
	if err := run([]string{"-experiment", "E3", "-quick", "-bench-baseline", doctor("deflated.json", 1e-3)}, &b); err != nil {
		t.Fatalf("gate failed against a deflated baseline: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "bench-baseline: controlled-steps/round-robin/n=8") {
		t.Errorf("comparison lines not printed:\n%s", b.String())
	}

	b.Reset()
	err = run([]string{"-experiment", "E3", "-quick", "-bench-baseline", doctor("inflated.json", 1e3)}, &b)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("gate did not fail against inflated baseline: %v", err)
	}
}

func TestBenchBaselineWithoutControlledEntries(t *testing.T) {
	// A baseline without controlled-steps entries (e.g. a pre-upgrade
	// record) is an error, not a silent pass.
	stale := filepath.Join(t.TempDir(), "stale.json")
	if err := os.WriteFile(stale, []byte(`{"schema":"conciliator-bench/v1","experiments":[{"id":"E1","steps_per_sec":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-experiment", "E3", "-quick", "-bench-baseline", stale}, &b)
	if err == nil || !strings.Contains(err.Error(), "no controlled-steps entries") {
		t.Fatalf("expected no-entries error, got: %v", err)
	}
}

func TestBenchConcurrentJSON(t *testing.T) {
	// The concurrent sweep runs standalone: no -experiment/-all needed.
	path := filepath.Join(t.TempDir(), "conc.json")
	var b strings.Builder
	if err := run([]string{"-bench-concurrent-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec concurrentRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rec.Schema != "conciliator-concurrent-bench/v1" {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.NumCPU <= 0 || rec.GOMAXPROCS <= 0 || rec.OpsPerProc != concurrentOpsPerProc {
		t.Errorf("environment not recorded: %+v", rec)
	}
	wantEntries := 2 * len(concurrentSizes) // lock-free and locked per n
	if len(rec.Experiments) != wantEntries {
		t.Fatalf("got %d entries, want %d", len(rec.Experiments), wantEntries)
	}
	wantSteps := int64(concurrentStepsRuns * concurrentOpsPerProc * 4)
	for _, e := range rec.Experiments {
		var n int
		if _, err := fmt.Sscanf(e.ID[strings.LastIndex(e.ID, "n=")+2:], "%d", &n); err != nil {
			t.Fatalf("unparseable entry id %q", e.ID)
		}
		if e.Steps != wantSteps*int64(n) {
			t.Errorf("%s: %d steps, want %d", e.ID, e.Steps, wantSteps*int64(n))
		}
		if e.WallSeconds > 0 && e.StepsPerSec <= 0 {
			t.Errorf("%s: steps/sec not computed", e.ID)
		}
	}
	for _, n := range concurrentSizes {
		if _, ok := rec.SpeedupVsLocked[fmt.Sprintf("n=%d", n)]; !ok {
			t.Errorf("speedup_vs_locked missing n=%d", n)
		}
	}
	if !strings.Contains(b.String(), "concurrent-steps/lock-free/n=8") {
		t.Errorf("sweep lines not printed:\n%s", b.String())
	}
}

func TestBenchConcurrentBaselineGate(t *testing.T) {
	// Same doctored-baseline shape as TestBenchBaselineGate: deflated
	// passes, inflated fails, so the assertions are immune to timing
	// noise on the measuring machine.
	path := filepath.Join(t.TempDir(), "conc.json")
	var b strings.Builder
	if err := run([]string{"-bench-concurrent-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec concurrentRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	doctor := func(name string, factor float64) string {
		scaled := rec
		scaled.Experiments = make([]benchEntry, len(rec.Experiments))
		copy(scaled.Experiments, rec.Experiments)
		for i := range scaled.Experiments {
			scaled.Experiments[i].StepsPerSec *= factor
		}
		out, err := json.Marshal(scaled)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	b.Reset()
	if err := run([]string{"-bench-concurrent-baseline", doctor("deflated.json", 1e-3)}, &b); err != nil {
		t.Fatalf("gate failed against a deflated baseline: %v\n%s", err, b.String())
	}
	b.Reset()
	err = run([]string{"-bench-concurrent-baseline", doctor("inflated.json", 1e3)}, &b)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("gate did not fail against inflated baseline: %v", err)
	}
}

func TestBenchConcurrentConflictsWithFaults(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fault", "all", "-bench-concurrent-json", "x.json"}, &b)
	if err == nil || !strings.Contains(err.Error(), "bench-concurrent-json") {
		t.Fatalf("fault+concurrent-bench accepted: %v", err)
	}
}
