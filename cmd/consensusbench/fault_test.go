package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFaultFlagValidation: every bad -fault* combination must fail fast
// with a descriptive error and nothing written — these runs can take
// minutes, so a typo must not burn the budget first.
func TestFaultFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown fault kind", []string{"-fault", "bogus"}, "unknown fault kind"},
		{"empty fault list", []string{"-fault", " , "}, "no fault kinds"},
		{"negative stutter", []string{"-fault", "stutter", "-fault-stutter", "-2"}, "fault-stutter"},
		{"negative trials", []string{"-fault", "all", "-fault-trials", "-1"}, "fault-trials"},
		{"negative n", []string{"-fault", "all", "-fault-n", "-4"}, "fault-n"},
		{"negative shrink", []string{"-fault", "all", "-fault-shrink", "-9"}, "fault-shrink"},
		{"unknown sched kind", []string{"-fault", "all", "-fault-sched", "warp"}, "unknown schedule kind"},
		{"baseline conflict", []string{"-fault", "all", "-bench-baseline", "b.json"}, "bench-baseline"},
		{"bench-json conflict", []string{"-fault", "all", "-bench-json", "b.json"}, "bench-baseline"},
		{"experiment conflict", []string{"-fault", "all", "-experiment", "E3"}, "cannot be combined"},
		{"all conflict", []string{"-fault", "all", "-all"}, "cannot be combined"},
		{"replay plus sweep", []string{"-fault-replay", "r.json", "-fault", "all"}, "cannot be combined"},
		{"replay plus json", []string{"-fault-replay", "r.json", "-fault-json", "x.json"}, "cannot be combined"},
		{"orphan fault flag", []string{"-fault-trials", "5"}, "require -fault"},
		{"replay missing file", []string{"-fault-replay", filepath.Join(t.TempDir(), "nope.json")}, "loading repro"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tt.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestFaultSweepSmokeAndReport(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "fault.json")
	var b strings.Builder
	err := run([]string{
		"-fault", "atomic,stutter",
		"-fault-sched", "round-robin",
		"-fault-trials", "3",
		"-fault-json", reportPath,
	}, &b)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "atomic+stutter/round-robin") {
		t.Errorf("cell lines missing:\n%s", out)
	}
	if !strings.Contains(out, "cells,") {
		t.Errorf("summary line missing:\n%s", out)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep faultReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if rep.Schema != "conciliator-fault-report/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Seed == 0 {
		t.Error("default seed not recorded")
	}
	// atomic+stutter pins both axes: 1 semantics x 1 proc fault x 1 sched x
	// 2 workloads.
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.Atomic || c.Violated != 0 {
			t.Errorf("atomic cell unsound: %+v", c)
		}
		if c.Trials != 3 {
			t.Errorf("trials = %d", c.Trials)
		}
	}
}

// TestFaultSweepReplayRoundTrip is the end-to-end satellite: a weakened
// sweep produces a shrunk artifact on disk, and -fault-replay confirms
// it reproduces.
func TestFaultSweepReplayRoundTrip(t *testing.T) {
	reproDir := t.TempDir()
	var b strings.Builder
	err := run([]string{
		"-fault", "safe",
		"-fault-sched", "round-robin,random",
		"-fault-trials", "8",
		"-fault-repros", reproDir,
	}, &b)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, b.String())
	}
	entries, err := os.ReadDir(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("safe-register sweep saved no repros:\n%s", b.String())
	}

	artifact := filepath.Join(reproDir, entries[0].Name())
	b.Reset()
	if err := run([]string{"-fault-replay", artifact}, &b); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "reproduced") {
		t.Errorf("replay did not confirm reproduction:\n%s", b.String())
	}
}

func TestFaultReplayStaleArtifact(t *testing.T) {
	// An artifact whose schedule injects nothing cannot reproduce a
	// violation; the replay must fail loudly rather than "pass".
	path := filepath.Join(t.TempDir(), "stale.json")
	artifact := `{
  "schema": "conciliator-fault-repro/v1",
  "n": 2,
  "sched": "round-robin",
  "sched_seed": 1,
  "alg_seed": 1,
  "workload": "maxreg-probe",
  "fault": {"schema": "conciliator-fault/v1", "n": 2, "events": []},
  "violations": [{"monitor": "maxreg-monotonic", "detail": "recorded elsewhere"}]
}`
	if err := os.WriteFile(path, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-fault-replay", path}, &b)
	if err == nil || !strings.Contains(err.Error(), "no violations") {
		t.Fatalf("stale artifact not rejected: %v", err)
	}
}

func TestFaultSweepDeterministicOutput(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := run([]string{
			"-fault", "regular,stall",
			"-fault-sched", "random",
			"-fault-trials", "4",
		}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, c := render(), render()
	// The summary line carries wall time; compare everything above it.
	trim := func(s string) string {
		i := strings.LastIndex(s, "fault: ")
		return s[:i]
	}
	if trim(a) != trim(c) {
		t.Errorf("sweep output differs across runs:\n%s\nvs\n%s", a, c)
	}
}
