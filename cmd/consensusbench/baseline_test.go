package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rec benchRecord) string {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaselineHostMismatchSkips: a baseline recorded on a host
// with a different CPU count or GOMAXPROCS must be skipped with a
// warning, not gated on — steps/s are not comparable across host shapes
// (BENCH_concurrent_steps.json was measured on a 1-CPU runner).
func TestCompareBaselineHostMismatchSkips(t *testing.T) {
	entries := []benchEntry{{ID: "concurrent-steps/x", StepsPerSec: 1}}
	tests := []struct {
		name string
		rec  benchRecord
	}{
		{"cpu count differs", benchRecord{
			NumCPU:      runtime.NumCPU() + 1,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Experiments: []benchEntry{{ID: "concurrent-steps/x", StepsPerSec: 100}},
		}},
		{"gomaxprocs differs", benchRecord{
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0) + 1,
			Experiments: []benchEntry{{ID: "concurrent-steps/x", StepsPerSec: 100}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeBaseline(t, tt.rec)
			var b strings.Builder
			// The entry is 100x below baseline: without the skip this
			// would be a hard regression failure.
			if err := compareBaseline(&b, entries, path, "concurrent-steps/"); err != nil {
				t.Fatalf("host mismatch gated instead of skipping: %v", err)
			}
			out := b.String()
			if !strings.Contains(out, "skipping") || !strings.Contains(out, "not comparable") {
				t.Errorf("no skip warning printed:\n%s", out)
			}
		})
	}
}

// TestCompareBaselineSameHostStillGates: the mismatch skip must not
// disable the gate when the host shape matches the record.
func TestCompareBaselineSameHostStillGates(t *testing.T) {
	path := writeBaseline(t, benchRecord{
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Experiments: []benchEntry{{ID: "controlled-steps/x", StepsPerSec: 1000}},
	})
	var b strings.Builder
	err := compareBaseline(&b, []benchEntry{{ID: "controlled-steps/x", StepsPerSec: 10}}, path, "controlled-steps/")
	if err == nil {
		t.Fatalf("100x regression on a matching host passed:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("unexpected error: %v", err)
	}

	// And a non-regressed entry still passes.
	b.Reset()
	if err := compareBaseline(&b, []benchEntry{{ID: "controlled-steps/x", StepsPerSec: 990}}, path, "controlled-steps/"); err != nil {
		t.Errorf("healthy entry failed the gate: %v", err)
	}
}

// TestCompareBaselineLegacyRecordWithoutGomaxprocs: records written
// before the gomaxprocs field existed (zero value) are checked on CPU
// count alone rather than spuriously skipped.
func TestCompareBaselineLegacyRecordWithoutGomaxprocs(t *testing.T) {
	path := writeBaseline(t, benchRecord{
		NumCPU:      runtime.NumCPU(),
		Experiments: []benchEntry{{ID: "controlled-steps/x", StepsPerSec: 1000}},
	})
	var b strings.Builder
	if err := compareBaseline(&b, []benchEntry{{ID: "controlled-steps/x", StepsPerSec: 950}}, path, "controlled-steps/"); err != nil {
		t.Fatalf("legacy record without gomaxprocs was not compared: %v", err)
	}
	if strings.Contains(b.String(), "skipping") {
		t.Errorf("legacy record spuriously skipped:\n%s", b.String())
	}
}
