// Command consensusbench runs the paper-reproduction experiments E1-E12
// and prints their tables.
//
// Usage:
//
//	consensusbench -list
//	consensusbench -experiment E4 -trials 200 -format markdown
//	consensusbench -all -quick
//
// Each experiment is deterministic in (-seed, -trials); see EXPERIMENTS.md
// for the interpretation of every table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/experiment"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// benchRecord is the machine-readable perf record written by -bench-json.
// Steps and slots come from the simulator's process-wide counters sampled
// around each experiment, so they cover every trial the experiment ran.
type benchRecord struct {
	Schema           string       `json:"schema"` // "conciliator-bench/v1"
	Seed             uint64       `json:"seed"`
	Quick            bool         `json:"quick"`
	Trials           int          `json:"trials,omitempty"`
	Parallelism      int          `json:"parallelism"`
	GOOS             string       `json:"goos"`
	GOARCH           string       `json:"goarch"`
	NumCPU           int          `json:"num_cpu"`
	GOMAXPROCS       int          `json:"gomaxprocs,omitempty"`
	TotalWallSeconds float64      `json:"total_wall_seconds"`
	Experiments      []benchEntry `json:"experiments"`
}

type benchEntry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Steps       int64   `json:"steps"`
	Slots       int64   `json:"slots"`
	StepsPerSec float64 `json:"steps_per_sec"`
	SlotsPerSec float64 `json:"slots_per_sec"`
}

// metricsRecord is the machine-readable observability record written by
// -metrics-json: one registry-snapshot delta per experiment (counters
// restricted to what that experiment moved) plus the suite-wide totals.
type metricsRecord struct {
	Schema      string           `json:"schema"` // "conciliator-metrics/v1"
	Seed        uint64           `json:"seed"`
	Quick       bool             `json:"quick"`
	Trials      int              `json:"trials,omitempty"`
	Parallelism int              `json:"parallelism"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	Experiments []metricsEntry   `json:"experiments"`
	Totals      metrics.Snapshot `json:"totals"`
}

type metricsEntry struct {
	ID      string           `json:"id"`
	Metrics metrics.Snapshot `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "consensusbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consensusbench", flag.ContinueOnError)
	var (
		list              = fs.Bool("list", false, "list experiments and exit")
		expID             = fs.String("experiment", "", "experiment id(s) to run, comma-separated (E1..E16)")
		all               = fs.Bool("all", false, "run every experiment")
		trials            = fs.Int("trials", 0, "trials per configuration (0 = per-experiment default)")
		seed              = fs.Uint64("seed", 0, "master seed (0 = default)")
		quick             = fs.Bool("quick", false, "small sweeps for a fast smoke run")
		format            = fs.String("format", "text", "output format: text, markdown, or tsv")
		timings           = fs.Bool("timings", false, "print wall-clock time per experiment")
		parallel          = fs.Int("parallel", 0, "trial workers per experiment (0 = NumCPU); results are identical for any value")
		benchOut          = fs.String("bench-json", "", "write a JSON perf record (steps/sec, slots/sec, wall time per experiment) to this path")
		benchBaseline     = fs.String("bench-baseline", "", "compare this run's controlled-steps entries against a committed bench record; exit nonzero on a >10% steps/s regression")
		benchConcOut      = fs.String("bench-concurrent-json", "", "run the concurrent-substrate sweep (lock-free vs locked, real goroutines) and write its JSON record to this path")
		benchConcBaseline = fs.String("bench-concurrent-baseline", "", "compare the concurrent sweep's entries against a committed record; exit nonzero on a >10% steps/s regression")
		metricsOut        = fs.String("metrics-json", "", "write a JSON metrics record (per-object op counts, phase step attribution, histograms) to this path")
		metricsTable      = fs.Bool("metrics", false, "print the metrics table after the run")
		debugAddr         = fs.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060) while experiments run")
	)
	var ff faultFlags
	fs.StringVar(&ff.spec, "fault", "", "run the fault-injection sweep over these fault kinds (comma-separated: all, stutter, stall, crash-recovery, atomic, regular, safe)")
	fs.IntVar(&ff.trials, "fault-trials", 0, "trials per fault-matrix cell (0 = default)")
	fs.IntVar(&ff.n, "fault-n", 0, "processes per faulted trial (0 = default 8)")
	fs.StringVar(&ff.scheds, "fault-sched", "", "schedule kinds for the fault sweep, comma-separated (default: all kinds)")
	fs.IntVar(&ff.stutter, "fault-stutter", 0, "max stutter/stall length and staleness depth per fault event (0 = default)")
	fs.StringVar(&ff.jsonOut, "fault-json", "", "write a JSON fault-sweep report to this path")
	fs.StringVar(&ff.repros, "fault-repros", "", "save shrunk counterexample artifacts under this directory")
	fs.IntVar(&ff.shrink, "fault-shrink", 0, "shrink budget (replays per counterexample; 0 = default)")
	fs.StringVar(&ff.replay, "fault-replay", "", "replay a saved counterexample artifact and confirm it still violates")
	var af attackFlags
	fs.StringVar(&af.spec, "attack", "", "run the oblivious adversary search over these protocols (comma-separated: all, sifter, priority)")
	fs.StringVar(&af.jsonOut, "attack-json", "", "write an attack-record/v1 artifact per searched protocol (multi-protocol runs insert _<protocol> before the extension)")
	fs.StringVar(&af.replay, "attack-replay", "", "replay a committed attack-record/v1 artifact and verify it regenerates byte-identically")
	fs.IntVar(&af.n, "attack-n", 0, "processes per searched schedule (0 = default 8, quick 4)")
	fs.IntVar(&af.budget, "attack-budget", 0, "candidate evaluations per search (0 = default 64, quick 16)")
	fs.IntVar(&af.trials, "attack-trials", 0, "trials per candidate evaluation (0 = default 4, quick 2)")
	fs.BoolVar(&af.faults, "attack-faults", false, "let the search add stutter/stall fault-schedule components to candidates")
	var mf mcFlags
	fs.StringVar(&mf.spec, "mc", "", "run the flat-engine Monte Carlo sweep over these protocols (comma-separated conciliator:adopt-commit pairs, or all)")
	fs.IntVar(&mf.n, "mc-n", 0, "processes per Monte Carlo trial (0 = default 16)")
	fs.Int64Var(&mf.trials, "mc-trials", 0, "Monte Carlo trials per protocol (0 = default 1000000, quick 20000)")
	fs.StringVar(&mf.schedK, "mc-sched", "", "schedule kind driving the Monte Carlo trials (default random)")
	fs.StringVar(&mf.jsonOut, "mc-json", "", "write a conciliator-mc/v1 JSON record of the Monte Carlo sweep to this path")
	var sf serviceFlags
	fs.BoolVar(&sf.load, "service-load", false, "run the consensus-as-a-service load generator (in-process node, or remote with -service-addr)")
	fs.StringVar(&sf.shards, "service-shards", "", "comma-separated shard counts to sweep in-process (default 1,4)")
	fs.IntVar(&sf.pipeline, "service-pipeline", 0, "in-flight consensus slots per shard (0 = service default)")
	fs.IntVar(&sf.batchMax, "service-batch-max", 0, "max ops per consensus slot (0 = service default)")
	fs.IntVar(&sf.queue, "service-queue", 0, "per-shard intake queue depth (0 = service default)")
	fs.IntVar(&sf.clients, "service-clients", 0, "concurrent closed-loop clients (0 = default 16, quick 8)")
	fs.DurationVar(&sf.duration, "service-duration", 0, "load duration per configuration (0 = default 2s, quick 500ms)")
	fs.Float64Var(&sf.readFrac, "service-read-frac", 0, "fraction of ops that are reads (0 = default 0.25)")
	fs.IntVar(&sf.keys, "service-keys", 0, "keyspace size (0 = default 1024)")
	fs.StringVar(&sf.skew, "service-skew", "", "key popularity: uniform or zipf (default uniform)")
	fs.StringVar(&sf.protocol, "service-protocol", "", "consensus construction per slot: register, snapshot, or linear (default register)")
	fs.StringVar(&sf.addr, "service-addr", "", "drive a running consensusd at this address over HTTP instead of an in-process node")
	fs.StringVar(&sf.jsonOut, "service-json", "", "write an rsm-service/v1 JSON load record to this path")
	fs.StringVar(&sf.baseline, "service-baseline", "", "compare write throughput against a committed rsm-service/v1 record; exit nonzero on a >10% regression (skipped across host shapes)")
	var df desFlags
	fs.BoolVar(&df.run, "des", false, "run the discrete-event message-passing sweep (steps vs n at n up to 100k)")
	fs.StringVar(&df.jsonOut, "des-json", "", "write the DES sweep's JSON record to this path")
	fs.StringVar(&df.ns, "des-n", "", "comma-separated process counts for the DES sweep (default 1000,10000,100000)")
	fs.StringVar(&df.protocols, "des-protocols", "", "comma-separated DES protocols (default sifter,sifter-half,priority-max)")
	fs.IntVar(&df.trials, "des-trials", 0, "trials per DES configuration (0 = default 5)")
	fs.StringVar(&df.latency, "des-latency", "", "DES latency distribution kind:mean, kinds fixed|uniform|exp (default exp:1ms)")
	fs.Float64Var(&df.loss, "des-loss", 0, "DES per-message loss probability in [0, 0.99]")
	fs.StringVar(&df.partitions, "des-partition", "", "comma-separated DES partitions from:until:frac (e.g. 5ms:25ms:0.3)")
	fs.StringVar(&df.crash, "des-crash", "", "DES crash schedule proc:<rate>,server:<windows> (e.g. proc:0.2,server:1)")
	fs.StringVar(&df.restart, "des-restart", "", "DES restart variant: durable, amnesiac, or amnesiac-server (default durable)")
	fs.StringVar(&df.repros, "des-fault-repros", "", "write shrunk des-fault-repro/v1 artifacts for violating chaos runs into this directory")
	fs.StringVar(&df.replay, "des-fault-replay", "", "replay a des-fault-repro/v1 artifact and verify its violations reproduce")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if sf.active() {
		// Service-load mode is its own run shape: it drives the live
		// service node, not any simulator experiment, so every other
		// mode's flags are contradictory.
		if mf.active() || af.active() || df.active() || ff.active() {
			return fmt.Errorf("-service flags cannot be combined with -mc/-attack/-des/-fault flags: the load generator drives the service node, not a simulator sweep")
		}
		if *benchOut != "" || *benchBaseline != "" || *benchConcOut != "" || *benchConcBaseline != "" {
			return fmt.Errorf("-service flags cannot be combined with -bench-json/-bench-baseline/-bench-concurrent-json/-bench-concurrent-baseline: the service record (-service-json) carries its own throughput figures")
		}
		if *expID != "" || *all || *list {
			return fmt.Errorf("-service flags cannot be combined with -experiment/-all/-list")
		}
		if !sf.load {
			return fmt.Errorf("-service-json/-service-baseline/-service-addr require -service-load")
		}
		switch *format {
		case "text", "markdown", "tsv":
		default:
			return fmt.Errorf("unknown format %q (want text, markdown, or tsv)", *format)
		}
		return runServiceLoad(out, &sf, *seed, *quick, *format, *debugAddr)
	}

	if mf.active() {
		// Monte Carlo mode is its own run shape: reject every
		// contradictory combination before any trial executes.
		if af.active() || df.active() || ff.active() {
			return fmt.Errorf("-mc flags cannot be combined with -attack/-des/-fault flags: the Monte Carlo sweep drives the flat shared-memory engine only")
		}
		if *benchOut != "" || *benchBaseline != "" || *benchConcOut != "" || *benchConcBaseline != "" {
			return fmt.Errorf("-mc flags cannot be combined with -bench-json/-bench-baseline/-bench-concurrent-json/-bench-concurrent-baseline: the Monte Carlo record (-mc-json) carries its own throughput figures")
		}
		if *expID != "" || *all || *list {
			return fmt.Errorf("-mc flags cannot be combined with -experiment/-all/-list (the curated Monte Carlo sweep runs as experiment E20)")
		}
		switch *format {
		case "text", "markdown", "tsv":
		default:
			return fmt.Errorf("unknown format %q (want text, markdown, or tsv)", *format)
		}
		return runMCSweep(out, &mf, *seed, *quick, *parallel, *format)
	}

	if af.active() {
		// Attack mode is its own run shape, exactly like fault and DES
		// mode: reject every contradictory combination before any
		// evaluation executes.
		if df.active() {
			return fmt.Errorf("attack flags cannot be combined with -des flags: the search drives the shared-memory simulator, not the message-passing DES")
		}
		if ff.active() {
			return fmt.Errorf("attack flags cannot be combined with -fault flags: the search owns its fault components (-attack-faults); the fault sweep is a separate mode")
		}
		if *benchOut != "" || *benchBaseline != "" || *benchConcOut != "" || *benchConcBaseline != "" {
			return fmt.Errorf("attack flags cannot be combined with -bench-json/-bench-baseline/-bench-concurrent-json/-bench-concurrent-baseline: searched schedules measure adversarial damage, not throughput")
		}
		if *expID != "" || *all || *list {
			return fmt.Errorf("attack flags cannot be combined with -experiment/-all/-list (the curated search runs as experiment E19)")
		}
		switch *format {
		case "text", "markdown", "tsv":
		default:
			return fmt.Errorf("unknown format %q (want text, markdown, or tsv)", *format)
		}
		if _, err := af.validate(); err != nil {
			return err
		}
		if af.replay != "" {
			return runAttackReplay(out, af.replay, *parallel)
		}
		return runAttackSearch(out, &af, *seed, *quick, *parallel, *format)
	}

	if df.active() {
		// DES mode is its own run shape, exactly like fault mode: reject
		// every contradictory combination before any trial executes.
		if ff.active() {
			return fmt.Errorf("des flags cannot be combined with -fault flags: the DES models message loss and partitions, the fault sweep models faulty shared memory")
		}
		if *benchOut != "" || *benchBaseline != "" || *benchConcOut != "" || *benchConcBaseline != "" {
			return fmt.Errorf("des flags cannot be combined with -bench-json/-bench-baseline/-bench-concurrent-json/-bench-concurrent-baseline: those records measure the shared-memory simulators")
		}
		if *expID != "" || *all || *list {
			return fmt.Errorf("des flags cannot be combined with -experiment/-all/-list (the curated DES sweep runs as experiment E18)")
		}
		switch *format {
		case "text", "markdown", "tsv":
		default:
			return fmt.Errorf("unknown format %q (want text, markdown, or tsv)", *format)
		}
		if df.replay != "" {
			// Replay is a standalone shape: it re-executes a committed
			// artifact's recorded config verbatim, so sweep flags have
			// nothing to modify.
			if df.run || df.jsonOut != "" || df.ns != "" || df.protocols != "" ||
				df.trials != 0 || df.latency != "" || df.loss != 0 || df.partitions != "" ||
				df.crash != "" || df.restart != "" || df.repros != "" {
				return fmt.Errorf("-des-fault-replay cannot be combined with other -des flags: the artifact records its full configuration")
			}
			return runDESFaultReplay(out, df.replay)
		}
		if *trials != 0 && df.trials == 0 {
			df.trials = *trials
		}
		return runDESSweep(out, &df, *seed, *format)
	}

	if ff.active() {
		// Fault mode is its own run shape: validate the combination (and
		// everything it conflicts with) before any trial executes.
		if *benchBaseline != "" || *benchOut != "" || *benchConcOut != "" || *benchConcBaseline != "" {
			return fmt.Errorf("fault flags cannot be combined with -bench-baseline/-bench-json/-bench-concurrent-json/-bench-concurrent-baseline: faulted runs measure safety, not throughput")
		}
		if *expID != "" || *all || *list {
			return fmt.Errorf("fault flags cannot be combined with -experiment/-all/-list (the reduced fault matrix runs as experiment E17)")
		}
		if ff.replay != "" {
			if ff.jsonOut != "" || ff.repros != "" {
				return fmt.Errorf("-fault-replay cannot be combined with -fault-json/-fault-repros")
			}
			if _, _, _, err := ff.validate(); err != nil {
				return err
			}
			return runFaultReplay(out, ff.replay)
		}
		if _, _, _, err := ff.validate(); err != nil {
			return err
		}
		params := experiment.Params{Seed: *seed, Quick: *quick, Parallelism: *parallel}
		if *trials != 0 && ff.trials == 0 {
			ff.trials = *trials
		}
		return runFaultSweep(out, &ff, params)
	}

	// Validate the output format up front: a typo must not burn a full
	// (minutes-long) experiment suite before erroring.
	switch *format {
	case "text", "markdown", "tsv":
	default:
		return fmt.Errorf("unknown format %q (want text, markdown, or tsv)", *format)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var todo []experiment.Experiment
	switch {
	case *all:
		todo = experiment.All()
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, ok := experiment.ByID(strings.ToUpper(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
		if len(todo) == 0 {
			return fmt.Errorf("no experiment ids in %q", *expID)
		}
	default:
		// The concurrent sweep can run standalone: it measures the
		// substrate, not any experiment.
		if *benchConcOut == "" && *benchConcBaseline == "" {
			return fmt.Errorf("nothing to do: pass -experiment <id>, -all, -list, or -bench-concurrent-json")
		}
	}

	// Any observability output needs a live registry. A fresh one per run
	// keeps the deltas clean when run is driven repeatedly (tests).
	wantMetrics := *metricsOut != "" || *metricsTable || *debugAddr != ""
	if wantMetrics {
		metrics.SetDefault(metrics.New())
	}
	if *debugAddr != "" {
		addr, shutdown, err := startDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer shutdown()
		fmt.Fprintf(out, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}

	params := experiment.Params{Trials: *trials, Seed: *seed, Quick: *quick, Parallelism: *parallel}
	rec := benchRecord{
		Schema:      "conciliator-bench/v1",
		Seed:        *seed,
		Quick:       *quick,
		Trials:      *trials,
		Parallelism: *parallel,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if rec.Seed == 0 {
		rec.Seed = 20120716 // the documented default master seed
	}
	if rec.Parallelism == 0 {
		rec.Parallelism = runtime.NumCPU()
	}
	mrec := metricsRecord{
		Schema:      "conciliator-metrics/v1",
		Seed:        rec.Seed,
		Quick:       *quick,
		Trials:      *trials,
		Parallelism: rec.Parallelism,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	suiteStart := time.Now()
	for _, e := range todo {
		steps0, slots0 := sim.Counters()
		mPrev := metrics.Default().Snapshot()
		start := time.Now()
		tables := e.Run(params)
		wall := time.Since(start)
		steps1, slots1 := sim.Counters()
		if wantMetrics {
			mrec.Experiments = append(mrec.Experiments, metricsEntry{
				ID:      e.ID,
				Metrics: metrics.Default().Snapshot().Sub(mPrev),
			})
		}
		for _, t := range tables {
			switch *format {
			case "markdown":
				fmt.Fprintln(out, t.Markdown())
			case "tsv":
				fmt.Fprintf(out, "# %s: %s\n%s\n", t.ID, t.Title, t.TSV())
			case "text":
				fmt.Fprintln(out, t.Text())
			}
		}
		if *timings {
			fmt.Fprintf(out, "[%s took %v]\n\n", e.ID, wall.Round(time.Millisecond))
		}
		secs := wall.Seconds()
		entry := benchEntry{
			ID:          e.ID,
			WallSeconds: secs,
			Steps:       steps1 - steps0,
			Slots:       slots1 - slots0,
		}
		if secs > 0 {
			entry.StepsPerSec = float64(entry.Steps) / secs
			entry.SlotsPerSec = float64(entry.Slots) / secs
		}
		rec.Experiments = append(rec.Experiments, entry)
	}
	if *benchOut != "" || *benchBaseline != "" {
		// The controlled-steps microbenchmarks measure raw simulator
		// throughput independent of any protocol, which is what the
		// baseline gate compares: experiment entries are dominated by
		// protocol statistics, these by the engine. The flat-steps entries
		// run the same workloads on the flat state-machine engine; the
		// ratio between the two prefixes in one record is the interpreter
		// speedup on identical modeled work.
		rec.Experiments = append(rec.Experiments, controlledStepsEntries()...)
		rec.Experiments = append(rec.Experiments, flatStepsEntries()...)
	}
	if *benchOut != "" {
		rec.TotalWallSeconds = time.Since(suiteStart).Seconds()
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding bench record: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			return fmt.Errorf("writing bench record: %w", err)
		}
	}
	if *benchBaseline != "" {
		if err := compareBaseline(out, rec.Experiments, *benchBaseline, "controlled-steps/"); err != nil {
			return err
		}
		if err := compareBaseline(out, rec.Experiments, *benchBaseline, "flat-steps/"); err != nil {
			return err
		}
	}
	if *benchConcOut != "" || *benchConcBaseline != "" {
		crec := buildConcurrentRecord(out)
		if *benchConcOut != "" {
			data, err := json.MarshalIndent(crec, "", "  ")
			if err != nil {
				return fmt.Errorf("encoding concurrent bench record: %w", err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*benchConcOut, data, 0o644); err != nil {
				return fmt.Errorf("writing concurrent bench record: %w", err)
			}
		}
		if *benchConcBaseline != "" {
			if err := compareBaseline(out, crec.Experiments, *benchConcBaseline, "concurrent-steps/"); err != nil {
				return err
			}
		}
	}
	if wantMetrics {
		mrec.Totals = metrics.Default().Snapshot()
	}
	if *metricsTable {
		fmt.Fprintf(out, "metrics:\n%s", mrec.Totals.Text())
	}
	if *metricsOut != "" {
		data, err := json.MarshalIndent(mrec, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding metrics record: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			return fmt.Errorf("writing metrics record: %w", err)
		}
	}
	return nil
}

// controlledStepsRuns is the fixed per-workload run count of the
// controlled-steps microbenchmarks: deterministic work (the steps/s
// denominator varies only with machine speed) keeps baseline comparisons
// meaningful across runs.
const controlledStepsRuns = 64

// controlledStepsEntries runs the controlled-steps microbenchmark suite —
// the same four workloads as BenchmarkControlledSteps — and returns one
// bench entry per workload under the "controlled-steps/" id prefix.
func controlledStepsEntries() []benchEntry {
	cases := []struct {
		name  string
		n     int
		steps func(pid int) int
		mk    func(n int, seed uint64) sched.Source
	}{
		{
			name:  "round-robin/n=8",
			n:     8,
			steps: func(int) int { return 2048 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "round-robin/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "random/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, seed uint64) sched.Source { return sched.NewRandom(n, xrand.New(seed)) },
		},
		{
			name: "skewed-tail/n=64",
			n:    64,
			steps: func(pid int) int {
				if pid == 0 {
					return 4096
				}
				return 1
			},
			mk: func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
	}
	entries := make([]benchEntry, 0, len(cases))
	for _, tc := range cases {
		var totalSteps, totalSlots int64
		start := time.Now()
		for i := 0; i < controlledStepsRuns; i++ {
			res, err := sim.RunControlled(tc.mk(tc.n, uint64(i)+1), func(p *sim.Proc) {
				for s := tc.steps(p.ID()); s > 0; s-- {
					p.Step()
				}
			}, sim.Config{AlgSeed: uint64(i) + 1})
			if err != nil {
				// The workloads are infinite-schedule and tiny relative to
				// the slot budget; an error here is a simulator bug, not a
				// measurement artifact.
				panic(err)
			}
			totalSteps += res.TotalSteps
			totalSlots += res.Slots
		}
		secs := time.Since(start).Seconds()
		entry := benchEntry{
			ID:          "controlled-steps/" + tc.name,
			WallSeconds: secs,
			Steps:       totalSteps,
			Slots:       totalSlots,
		}
		if secs > 0 {
			entry.StepsPerSec = float64(totalSteps) / secs
			entry.SlotsPerSec = float64(totalSlots) / secs
		}
		entries = append(entries, entry)
	}
	return entries
}

// regressionTolerance is how far below baseline a controlled-steps
// workload's steps/s may fall before compareBaseline fails the run.
const regressionTolerance = 0.9

// compareBaseline checks this run's entries under the given id prefix
// ("controlled-steps/" or "concurrent-steps/") against the committed
// record at path, printing one line per workload and returning an error
// if any workload regressed by more than 10% steps/s. Workloads absent
// from the baseline are reported and skipped, so new workloads can be
// introduced before the baseline is refreshed.
func compareBaseline(out io.Writer, entries []benchEntry, path, prefix string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading bench baseline: %w", err)
	}
	var base benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing bench baseline %s: %w", path, err)
	}
	// steps/s is a property of the measuring host: a record taken on a
	// 1-CPU runner says nothing about a 16-core laptop, and gating on the
	// comparison would pass or fail meaninglessly. Skip (loudly) when the
	// host shape differs from the record's; a zero field means an older
	// record that never captured the value, which can't be checked.
	if (base.NumCPU != 0 && base.NumCPU != runtime.NumCPU()) ||
		(base.GOMAXPROCS != 0 && base.GOMAXPROCS != runtime.GOMAXPROCS(0)) {
		fmt.Fprintf(out, "bench-baseline: skipping %s: baseline host (num_cpu=%d, gomaxprocs=%d) does not match this host (num_cpu=%d, gomaxprocs=%d); steps/s are not comparable across hosts\n",
			path, base.NumCPU, base.GOMAXPROCS, runtime.NumCPU(), runtime.GOMAXPROCS(0))
		return nil
	}
	baseline := make(map[string]benchEntry, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.ID] = e
	}
	var failures []string
	compared := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.ID, prefix) {
			continue
		}
		b, ok := baseline[e.ID]
		if !ok || b.StepsPerSec <= 0 {
			fmt.Fprintf(out, "bench-baseline: %-32s no baseline entry, skipped\n", e.ID)
			continue
		}
		compared++
		ratio := e.StepsPerSec / b.StepsPerSec
		fmt.Fprintf(out, "bench-baseline: %-32s %11.0f steps/s vs %11.0f baseline (%+.1f%%)\n",
			e.ID, e.StepsPerSec, b.StepsPerSec, (ratio-1)*100)
		if ratio < regressionTolerance {
			failures = append(failures, fmt.Sprintf("%s (%.1f%% of baseline)", e.ID, ratio*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench-baseline: %s has no %s entries to compare against", path, strings.TrimSuffix(prefix, "/"))
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench-baseline: steps/s regressed more than %d%%: %s",
			int((1-regressionTolerance)*100), strings.Join(failures, ", "))
	}
	return nil
}
