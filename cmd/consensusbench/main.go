// Command consensusbench runs the paper-reproduction experiments E1-E12
// and prints their tables.
//
// Usage:
//
//	consensusbench -list
//	consensusbench -experiment E4 -trials 200 -format markdown
//	consensusbench -all -quick
//
// Each experiment is deterministic in (-seed, -trials); see EXPERIMENTS.md
// for the interpretation of every table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "consensusbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consensusbench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		expID   = fs.String("experiment", "", "experiment id(s) to run, comma-separated (E1..E16)")
		all     = fs.Bool("all", false, "run every experiment")
		trials  = fs.Int("trials", 0, "trials per configuration (0 = per-experiment default)")
		seed    = fs.Uint64("seed", 0, "master seed (0 = default)")
		quick   = fs.Bool("quick", false, "small sweeps for a fast smoke run")
		format  = fs.String("format", "text", "output format: text, markdown, or tsv")
		timings = fs.Bool("timings", false, "print wall-clock time per experiment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var todo []experiment.Experiment
	switch {
	case *all:
		todo = experiment.All()
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, ok := experiment.ByID(strings.ToUpper(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
		if len(todo) == 0 {
			return fmt.Errorf("no experiment ids in %q", *expID)
		}
	default:
		return fmt.Errorf("nothing to do: pass -experiment <id>, -all, or -list")
	}

	params := experiment.Params{Trials: *trials, Seed: *seed, Quick: *quick}
	for _, e := range todo {
		start := time.Now()
		tables := e.Run(params)
		for _, t := range tables {
			switch *format {
			case "markdown":
				fmt.Fprintln(out, t.Markdown())
			case "tsv":
				fmt.Fprintf(out, "# %s: %s\n%s\n", t.ID, t.Title, t.TSV())
			case "text":
				fmt.Fprintln(out, t.Text())
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
		}
		if *timings {
			fmt.Fprintf(out, "[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
