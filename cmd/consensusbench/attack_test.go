package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/attack/search"
)

// TestAttackFlagValidation: every contradictory or malformed -attack*
// combination must fail fast with a descriptive error, pair by pair
// against every other run shape — a full search spends thousands of
// simulated consensus runs, so a typo must not burn that budget first.
func TestAttackFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"des conflict", []string{"-attack", "all", "-des"}, "cannot be combined"},
		{"des-json conflict", []string{"-attack", "all", "-des-json", "d.json"}, "cannot be combined"},
		{"des-trials conflict", []string{"-attack", "all", "-des-trials", "3"}, "cannot be combined"},
		{"fault conflict", []string{"-attack", "all", "-fault", "all"}, "cannot be combined"},
		{"fault-trials conflict", []string{"-attack", "all", "-fault-trials", "3"}, "cannot be combined"},
		{"fault-replay conflict", []string{"-attack", "all", "-fault-replay", "r.json"}, "cannot be combined"},
		{"bench-json conflict", []string{"-attack", "all", "-bench-json", "b.json"}, "cannot be combined"},
		{"bench-baseline conflict", []string{"-attack", "all", "-bench-baseline", "b.json"}, "cannot be combined"},
		{"bench-concurrent-json conflict", []string{"-attack", "all", "-bench-concurrent-json", "b.json"}, "cannot be combined"},
		{"bench-concurrent-baseline conflict", []string{"-attack", "all", "-bench-concurrent-baseline", "b.json"}, "cannot be combined"},
		{"experiment conflict", []string{"-attack", "all", "-experiment", "E19"}, "cannot be combined"},
		{"all conflict", []string{"-attack", "all", "-all"}, "cannot be combined"},
		{"list conflict", []string{"-attack", "all", "-list"}, "cannot be combined"},
		{"replay with attack", []string{"-attack-replay", "r.json", "-attack", "all"}, "cannot be combined"},
		{"replay with json", []string{"-attack-replay", "r.json", "-attack-json", "a.json"}, "cannot be combined"},
		{"replay with n", []string{"-attack-replay", "r.json", "-attack-n", "8"}, "cannot be combined"},
		{"replay with budget", []string{"-attack-replay", "r.json", "-attack-budget", "8"}, "cannot be combined"},
		{"replay with trials", []string{"-attack-replay", "r.json", "-attack-trials", "2"}, "cannot be combined"},
		{"replay with faults", []string{"-attack-replay", "r.json", "-attack-faults"}, "cannot be combined"},
		{"orphan attack-json", []string{"-attack-json", "a.json"}, "require -attack"},
		{"orphan attack-n", []string{"-attack-n", "8"}, "require -attack"},
		{"orphan attack-budget", []string{"-attack-budget", "32"}, "require -attack"},
		{"orphan attack-trials", []string{"-attack-trials", "2"}, "require -attack"},
		{"orphan attack-faults", []string{"-attack-faults"}, "require -attack"},
		{"unknown protocol", []string{"-attack", "paxos"}, "unknown protocol"},
		{"empty protocols", []string{"-attack", " , "}, "no protocols"},
		{"n too small", []string{"-attack", "sifter", "-attack-n", "1"}, "outside [2, 64]"},
		{"n too large", []string{"-attack", "sifter", "-attack-n", "65"}, "outside [2, 64]"},
		{"negative budget", []string{"-attack", "sifter", "-attack-budget", "-4"}, "attack-budget"},
		{"negative trials", []string{"-attack", "sifter", "-attack-trials", "-1"}, "attack-trials"},
		{"bad format", []string{"-attack", "sifter", "-format", "xml"}, "unknown format"},
		{"replay missing file", []string{"-attack-replay", "no/such/record.json"}, "attack-replay"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tt.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestAttackSearchSmokeAndRecord runs a tiny two-protocol search through
// the CLI, checks the table, and verifies each written artifact decodes
// and replays byte-identically through the -attack-replay path.
func TestAttackSearchSmokeAndRecord(t *testing.T) {
	base := filepath.Join(t.TempDir(), "attack.json")
	var b strings.Builder
	err := run([]string{
		"-attack", "all",
		"-quick",
		"-attack-budget", "8",
		"-attack-json", base,
	}, &b)
	if err != nil {
		t.Fatalf("search failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"oblivious adversary search", "sifter", "priority", "white-box"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	for _, protocol := range search.Protocols() {
		path := attackArtifactPath(base, protocol, true)
		rec, err := search.LoadRecord(path)
		if err != nil {
			t.Fatalf("artifact for %s not written/decodable: %v", protocol, err)
		}
		if rec.Protocol != protocol || rec.Winner == nil {
			t.Fatalf("artifact mangled: %+v", rec)
		}
		if rec.Confirm.StepsMean > rec.WhiteBox.StepsMean {
			t.Errorf("%s: oblivious winner (%.2f) beat the white-box graft (%.2f)",
				protocol, rec.Confirm.StepsMean, rec.WhiteBox.StepsMean)
		}
		var rb strings.Builder
		if err := run([]string{"-attack-replay", path}, &rb); err != nil {
			t.Fatalf("replay of %s failed: %v\n%s", path, err, rb.String())
		}
		if !strings.Contains(rb.String(), "replayed byte-identically") {
			t.Errorf("replay output missing confirmation:\n%s", rb.String())
		}
	}
}

// TestAttackSingleProtocolPath: a single-protocol run writes exactly the
// given path, no suffix inserted.
func TestAttackSingleProtocolPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "one.json")
	var b strings.Builder
	err := run([]string{"-attack", "sifter", "-quick", "-attack-budget", "6", "-attack-json", path}, &b)
	if err != nil {
		t.Fatalf("search failed: %v\n%s", err, b.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("single-protocol artifact not at the given path: %v", err)
	}
}

// TestCommittedAttackArtifactsReplay is the acceptance-criteria pin: the
// committed E19 artifacts at the repo root replay byte-identically, and
// the searched oblivious schedule never beats the white-box baseline.
func TestCommittedAttackArtifactsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay of committed artifacts")
	}
	for _, name := range []string{"ATTACK_E19_sifter.json", "ATTACK_E19_priority.json"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("..", "..", name)
			rec, err := search.LoadRecord(path)
			if err != nil {
				t.Fatalf("committed artifact unreadable: %v", err)
			}
			if rec.Confirm.StepsMean > rec.WhiteBox.StepsMean {
				t.Errorf("oblivious winner (%.2f) beats white-box (%.2f): dominance pin broken",
					rec.Confirm.StepsMean, rec.WhiteBox.StepsMean)
			}
			var b strings.Builder
			if err := run([]string{"-attack-replay", path}, &b); err != nil {
				t.Fatalf("committed artifact rotted: %v\n%s", err, b.String())
			}
		})
	}
}
