package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMCModeRejectsContradictoryFlags pins the up-front validation of
// the Monte Carlo run shape: contradictory modes and malformed specs
// must error before any trial executes.
func TestMCModeRejectsContradictoryFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"with all", []string{"-mc", "all", "-all"}, "-experiment/-all/-list"},
		{"with des", []string{"-mc", "all", "-des"}, "-attack/-des/-fault"},
		{"with fault", []string{"-mc", "all", "-fault", "all"}, "-attack/-des/-fault"},
		{"with attack", []string{"-mc", "all", "-attack", "sifter"}, "-attack/-des/-fault"},
		{"with bench-json", []string{"-mc", "all", "-bench-json", "x.json"}, "-bench-json"},
		{"bad pair", []string{"-mc", "sifter"}, "conciliator:adopt-commit"},
		{"bad conciliator", []string{"-mc", "bogus:register", "-mc-trials", "1"}, "unknown flat conciliator"},
		{"bad sched", []string{"-mc", "all", "-mc-sched", "bogus"}, "unknown -mc-sched"},
		{"bad format", []string{"-mc", "all", "-format", "bogus"}, "unknown format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestMCModeRunsAndWritesRecord pins the end-to-end Monte Carlo mode: a
// small sweep renders a table and writes a valid conciliator-mc/v1
// record whose entries carry sane, internally consistent statistics.
func TestMCModeRunsAndWritesRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mc.json")
	var b strings.Builder
	err := run([]string{
		"-mc", "sifter:register,priority-max:snapshot",
		"-mc-n", "8", "-mc-trials", "200", "-mc-json", path,
	}, &b)
	if err != nil {
		t.Fatalf("mc run failed: %v\noutput:\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "flat-engine Monte Carlo") || !strings.Contains(out, "sifter+register") {
		t.Errorf("table missing from output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec mcRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("parsing record: %v", err)
	}
	if rec.Schema != "conciliator-mc/v1" {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.N != 8 || rec.Trials != 200 || len(rec.Entries) != 2 {
		t.Fatalf("record shape: n=%d trials=%d entries=%d", rec.N, rec.Trials, len(rec.Entries))
	}
	for _, e := range rec.Entries {
		if e.Agreed != e.Trials {
			t.Errorf("%s: agreement failed in %d of %d trials", e.ID, e.Trials-e.Agreed, e.Trials)
		}
		if e.P50 <= 0 || e.P99 < e.P50 || e.MaxSteps < e.P999 || e.P99Lo > e.P99 || e.P99Hi < e.P99 {
			t.Errorf("%s: inconsistent quantiles %+v", e.ID, e)
		}
		if e.TotalSteps <= 0 || e.StepsPerSec <= 0 {
			t.Errorf("%s: missing throughput figures", e.ID)
		}
	}
}

// TestMCModeDeterministicAcrossParallelism pins that the committed-record
// statistics do not depend on -parallel (timing fields aside).
func TestMCModeDeterministicAcrossParallelism(t *testing.T) {
	records := make([]mcRecord, 2)
	for i, par := range []string{"1", "4"} {
		path := filepath.Join(t.TempDir(), "mc.json")
		var b strings.Builder
		if err := run([]string{
			"-mc", "sifter-half:register", "-mc-n", "8", "-mc-trials", "300",
			"-parallel", par, "-mc-json", path,
		}, &b); err != nil {
			t.Fatalf("parallel=%s: %v", par, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &records[i]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := records[0].Entries[0], records[1].Entries[0]
	a.WallSeconds, b.WallSeconds = 0, 0
	a.StepsPerSec, b.StepsPerSec = 0, 0
	if a != b {
		t.Fatalf("statistics drifted across -parallel:\n1: %+v\n4: %+v", a, b)
	}
}

// TestFlatStepsEntriesShape pins the flat-engine microbenchmark entries:
// same workload names as the coroutine suite under the flat-steps/
// prefix, with modeled-step totals that match the deterministic
// workloads.
func TestFlatStepsEntriesShape(t *testing.T) {
	entries := flatStepsEntries()
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(entries))
	}
	wantSteps := map[string]int64{
		"flat-steps/round-robin/n=8":  8 * 2048 * flatStepsRuns,
		"flat-steps/round-robin/n=64": 64 * 256 * flatStepsRuns,
		"flat-steps/random/n=64":      64 * 256 * flatStepsRuns,
		"flat-steps/skewed-tail/n=64": (4096 + 63) * flatStepsRuns,
	}
	for _, e := range entries {
		want, ok := wantSteps[e.ID]
		if !ok {
			t.Errorf("unexpected entry %q", e.ID)
			continue
		}
		if e.Steps != want {
			t.Errorf("%s: steps = %d, want %d", e.ID, e.Steps, want)
		}
		if e.StepsPerSec <= 0 {
			t.Errorf("%s: no steps/s", e.ID)
		}
	}
}
