package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/experiment"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// faultFlags is the -fault* flag surface, collected so run() can
// validate the combination up front before any work happens.
type faultFlags struct {
	spec    string // -fault: comma-separated fault kinds, or "all"
	trials  int    // -fault-trials
	n       int    // -fault-n
	scheds  string // -fault-sched: comma-separated sched kind names
	stutter int    // -fault-stutter: max stutter/stall length and staleness depth
	jsonOut string // -fault-json
	repros  string // -fault-repros
	shrink  int    // -fault-shrink
	replay  string // -fault-replay
}

// active reports whether any fault-mode flag was set.
func (f *faultFlags) active() bool {
	return f.spec != "" || f.replay != "" || f.trials != 0 || f.n != 0 ||
		f.scheds != "" || f.stutter != 0 || f.jsonOut != "" || f.repros != ""
}

// validate rejects bad flag combinations before any trial runs. It
// returns the parsed matrix axes for the sweep.
func (f *faultFlags) validate() (sems []fault.Semantics, procs []fault.ProcFault, kinds []sched.Kind, err error) {
	if f.replay != "" {
		if f.spec != "" || f.trials != 0 || f.n != 0 || f.scheds != "" || f.stutter != 0 {
			return nil, nil, nil, fmt.Errorf("-fault-replay replays a recorded artifact and cannot be combined with sweep flags (-fault, -fault-trials, -fault-n, -fault-sched, -fault-stutter)")
		}
		return nil, nil, nil, nil
	}
	if f.spec == "" {
		return nil, nil, nil, fmt.Errorf("fault flags require -fault <kinds> or -fault-replay <artifact> (e.g. -fault all, -fault stutter,safe)")
	}
	if f.trials < 0 {
		return nil, nil, nil, fmt.Errorf("-fault-trials must be non-negative, got %d", f.trials)
	}
	if f.n < 0 {
		return nil, nil, nil, fmt.Errorf("-fault-n must be non-negative, got %d", f.n)
	}
	if f.stutter < 0 {
		return nil, nil, nil, fmt.Errorf("-fault-stutter must be non-negative, got %d", f.stutter)
	}
	if f.shrink < 0 {
		return nil, nil, nil, fmt.Errorf("-fault-shrink must be non-negative, got %d", f.shrink)
	}
	for _, tok := range strings.Split(f.spec, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
		case tok == "all":
			// Full matrix on both axes; listing other kinds alongside is
			// harmless but redundant.
			sems = []fault.Semantics{fault.SemAtomic, fault.SemRegular, fault.SemSafe}
			procs = []fault.ProcFault{fault.ProcNone, fault.ProcStutter, fault.ProcStall, fault.ProcCrashRecover}
		default:
			if pf, ok := fault.ProcFaultByName(tok); ok {
				procs = append(procs, pf)
			} else if sm, ok := fault.SemanticsByName(tok); ok {
				sems = append(sems, sm)
			} else {
				return nil, nil, nil, fmt.Errorf("unknown fault kind %q in -fault (want all, %s, %s, %s, %s, %s, %s)",
					tok, fault.ProcStutter, fault.ProcStall, fault.ProcCrashRecover,
					fault.SemAtomic, fault.SemRegular, fault.SemSafe)
			}
		}
	}
	if len(sems) == 0 && len(procs) == 0 {
		return nil, nil, nil, fmt.Errorf("-fault lists no fault kinds")
	}
	// Naming only process faults sweeps them against every register
	// semantics, and vice versa: each axis defaults to "all" when the
	// other is pinned.
	if len(sems) == 0 {
		sems = []fault.Semantics{fault.SemAtomic, fault.SemRegular, fault.SemSafe}
	}
	if len(procs) == 0 {
		procs = []fault.ProcFault{fault.ProcNone, fault.ProcStutter, fault.ProcStall, fault.ProcCrashRecover}
	}
	if f.scheds != "" {
		for _, tok := range strings.Split(f.scheds, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			k, ok := sched.KindByName(tok)
			if !ok {
				var names []string
				for _, kk := range sched.Kinds() {
					names = append(names, kk.String())
				}
				return nil, nil, nil, fmt.Errorf("unknown schedule kind %q in -fault-sched (want %s)", tok, strings.Join(names, ", "))
			}
			kinds = append(kinds, k)
		}
		if len(kinds) == 0 {
			return nil, nil, nil, fmt.Errorf("-fault-sched lists no schedule kinds")
		}
	}
	return sems, procs, kinds, nil
}

// faultReport is the machine-readable record written by -fault-json.
type faultReport struct {
	Schema      string           `json:"schema"` // "conciliator-fault-report/v1"
	Seed        uint64           `json:"seed"`
	N           int              `json:"n"`
	Trials      int              `json:"trials"`
	Shrink      int              `json:"shrink_budget"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	WallSeconds float64          `json:"wall_seconds"`
	Cells       []faultCellEntry `json:"cells"`
}

type faultCellEntry struct {
	Semantics  string         `json:"semantics"`
	Proc       string         `json:"proc_fault"`
	Sched      string         `json:"sched"`
	Workload   string         `json:"workload"`
	Atomic     bool           `json:"atomic"`
	Trials     int            `json:"trials"`
	Violated   int            `json:"violated"`
	ByMonitor  map[string]int `json:"by_monitor,omitempty"`
	Faults     fault.Counts   `json:"faults_injected"`
	ReproPaths []string       `json:"repro_paths,omitempty"`
}

// runFaultSweep executes the fault matrix and reports. The exit
// contract mirrors the nightly job's needs: violations in
// atomic-semantics cells (the paper's own model, where monitors must
// stay silent) fail the run; violations in weakened-register cells are
// findings and do not.
func runFaultSweep(out io.Writer, ff *faultFlags, params experiment.Params) error {
	sems, procs, kinds, err := ff.validate()
	if err != nil {
		return err
	}
	cfg := experiment.FaultSweepConfig{
		Params:    params,
		N:         ff.n,
		Trials:    ff.trials,
		Semantics: sems,
		Procs:     procs,
		Kinds:     kinds,
		Shrink:    ff.shrink,
		ReproDir:  ff.repros,
	}
	if cfg.Shrink == 0 {
		// Shrinking is the point of the sweep; 2048 repro runs per
		// artifact reduces typical schedules to a handful of events.
		cfg.Shrink = 2048
	}
	if ff.stutter > 0 {
		// Threaded through Plan.MaxArg by the sweep via a wrapper below.
		cfg.MaxArg = ff.stutter
	}
	start := time.Now()
	results := experiment.RunFaultSweep(cfg)

	rep := faultReport{
		Schema: "conciliator-fault-report/v1",
		Seed:   params.Seed,
		N:      cfg.N,
		Trials: cfg.Trials,
		Shrink: cfg.Shrink,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	if rep.Seed == 0 {
		rep.Seed = 20120716
	}
	var atomicFailures []string
	totalViolated := 0
	for _, cr := range results {
		entry := faultCellEntry{
			Semantics: cr.Cell.Semantics.String(),
			Proc:      cr.Cell.Proc.String(),
			Sched:     cr.Cell.Kind.String(),
			Workload:  cr.Cell.Workload,
			Atomic:    cr.Cell.Atomic(),
			Trials:    cr.Trials,
			Violated:  cr.Violated,
			Faults:    cr.Faults,
		}
		if len(cr.ByMonitor) > 0 {
			entry.ByMonitor = cr.ByMonitor
		}
		for _, r := range cr.Repros {
			entry.ReproPaths = append(entry.ReproPaths, r.SavedPath)
		}
		rep.Cells = append(rep.Cells, entry)

		status := "ok"
		if cr.Violated > 0 {
			totalViolated += cr.Violated
			status = fmt.Sprintf("VIOLATED %d/%d", cr.Violated, cr.Trials)
			if cr.Cell.Atomic() {
				atomicFailures = append(atomicFailures, cr.Cell.String())
			}
		}
		fmt.Fprintf(out, "fault: %-55s %8s  faults=%d\n", cr.Cell, status, cr.Faults.Total())
		for _, r := range cr.Repros {
			where := "(in memory)"
			if r.SavedPath != "" {
				where = r.SavedPath
			}
			fmt.Fprintf(out, "fault:   repro: %d events -> %s\n", r.Fault.Len(), where)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	fmt.Fprintf(out, "fault: %d cells, %d violated trials, %.1fs\n", len(results), totalViolated, rep.WallSeconds)

	if ff.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding fault report: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(ff.jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("writing fault report: %w", err)
		}
	}
	if len(atomicFailures) > 0 {
		return fmt.Errorf("safety violations in atomic-semantics cells (reproduction bug, not a finding): %s",
			strings.Join(atomicFailures, "; "))
	}
	return nil
}

// runFaultReplay re-executes a saved repro artifact and confirms the
// violation reproduces.
func runFaultReplay(out io.Writer, path string) error {
	r, err := fault.LoadRepro(path)
	if err != nil {
		return fmt.Errorf("loading repro: %w", err)
	}
	fmt.Fprintf(out, "replaying %s: workload=%s n=%d sched=%s/%d alg-seed=%d fault-events=%d\n",
		path, r.Workload, r.N, r.Sched, r.SchedSeed, r.AlgSeed, r.Fault.Len())
	fmt.Fprintf(out, "recorded violations:\n")
	for _, v := range r.Violations {
		fmt.Fprintf(out, "  %-18s %s\n", v.Monitor, v.Detail)
	}
	res, err := experiment.ReplayRepro(r)
	if err != nil {
		return err
	}
	if len(res.Violations) == 0 {
		return fmt.Errorf("replay of %s produced no violations: artifact is stale or the bug is fixed", path)
	}
	fmt.Fprintf(out, "replay violations:\n")
	for _, v := range res.Violations {
		fmt.Fprintf(out, "  %-18s %s\n", v.Monitor, v.Detail)
	}
	fmt.Fprintf(out, "reproduced (%d restarts, faults injected: %d)\n", res.Res.Restarts, res.Res.Faults.Total())
	return nil
}
