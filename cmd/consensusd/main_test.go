package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunLifecycle boots a full node on an ephemeral port, exercises the
// KV API over real HTTP, then shuts it down with SIGTERM and checks the
// drain completes cleanly.
func TestRunLifecycle(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-shards", "2",
			"-pipeline", "2",
			"-seed", "7",
		}, os.Stdout, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("node never became ready")
	}
	base := "http://" + addr

	req, err := http.NewRequest("PUT", base+"/v1/kv/boot", strings.NewReader("ok"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d", resp.StatusCode)
	}
	for i := 0; i < 5; i++ {
		resp, err = http.Post(base+"/v1/kv/hits/inc", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err = http.Get(base + "/v1/kv/hits")
	if err != nil {
		t.Fatal(err)
	}
	var kr struct {
		Value string `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if kr.Value != "5" {
		t.Fatalf("hits = %q after 5 incs, want 5", kr.Value)
	}
	resp, err = http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"shards": 2`) {
		t.Fatalf("status missing shard count: %s", body)
	}

	// SIGTERM is delivered process-wide; run's signal.Notify picks it up.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("node never drained after SIGTERM")
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-shards", "-1"},
		{"-protocol", "paxos"},
		{"positional"},
	}
	for _, args := range cases {
		t.Run(fmt.Sprint(args), func(t *testing.T) {
			if err := run(args, os.Stdout, nil); err == nil {
				t.Fatalf("run(%q) succeeded, want error", args)
			}
		})
	}
}
