package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests drive run() more than once per process.
var publishOnce sync.Once

// startDebugServer serves expvar (including the live metrics registry
// under the "conciliator_metrics" var, same name as consensusbench's) and
// net/http/pprof on addr, on a private mux so the profiling endpoints
// never leak onto the client API listener.
func startDebugServer(addr string) (string, func(), error) {
	publishOnce.Do(func() {
		expvar.Publish("conciliator_metrics", expvar.Func(func() any {
			return metrics.Default().Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
