// Command consensusd is a consensus-as-a-service node: an HTTP KV API
// in front of sharded, batched, pipelined randomized consensus.
//
//	consensusd -addr :8080 -shards 4 -pipeline 4
//
//	curl -X PUT  localhost:8080/v1/kv/greeting -d hello
//	curl         localhost:8080/v1/kv/greeting
//	curl -X POST localhost:8080/v1/kv/hits/inc
//	curl         localhost:8080/v1/status
//
// SIGINT/SIGTERM shut the node down gracefully: the listener stops
// accepting, queued ops drain through consensus, in-flight slots flush
// in order, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/service"
)

// shutdownGrace bounds how long the HTTP server waits for in-flight
// requests during graceful shutdown before cutting them off.
const shutdownGrace = 30 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "consensusd:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing: testable with custom args and
// an optional ready channel that receives the bound client address.
func run(args []string, out *os.File, ready chan<- string) error {
	fs := flag.NewFlagSet("consensusd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "client API listen address")
		shards    = fs.Int("shards", 1, "independent consensus groups (key-range shards)")
		pipeline  = fs.Int("pipeline", 2, "in-flight consensus slots per shard")
		batchMax  = fs.Int("batch-max", 64, "max ops batched into one consensus slot")
		queue     = fs.Int("queue", 256, "per-shard intake queue depth (backpressure bound)")
		seed      = fs.Uint64("seed", 1, "root seed for the consensus RNG streams")
		protocol  = fs.String("protocol", "register", "consensus construction: register, snapshot, or linear")
		debugAddr = fs.String("debug-addr", "", "serve expvar metrics and pprof on this address (off when empty)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	// Install the registry before Start so the service's cached and
	// per-shard instruments resolve against it.
	metrics.SetDefault(metrics.New())
	if *debugAddr != "" {
		dbg, stop, err := startDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stop()
		fmt.Fprintf(out, "consensusd: debug on http://%s/debug/vars\n", dbg)
	}

	node, err := service.Start(service.Config{
		Shards:     *shards,
		Pipeline:   *pipeline,
		BatchMax:   *batchMax,
		QueueDepth: *queue,
		Seed:       *seed,
		Protocol:   *protocol,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		node.Close()
		return err
	}
	srv := &http.Server{Handler: service.NewHandler(node)}
	cfg := node.Config()
	fmt.Fprintf(out, "consensusd: serving on http://%s (shards %d, pipeline %d, batch-max %d, protocol %s)\n",
		ln.Addr(), cfg.Shards, cfg.Pipeline, cfg.BatchMax, protoName(cfg.Protocol))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)

	select {
	case sig := <-stop:
		fmt.Fprintf(out, "consensusd: %v — draining\n", sig)
	case err := <-serveErr:
		node.Close()
		return fmt.Errorf("serve: %w", err)
	}

	// Stop accepting first, then drain the consensus queues: requests
	// already inside the handler ride out the node drain.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutErr := srv.Shutdown(ctx)
	closeErr := node.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := errors.Join(shutErr, closeErr); err != nil {
		return err
	}
	fmt.Fprintln(out, "consensusd: drained, bye")
	return nil
}

func protoName(p string) string {
	if p == "" {
		return "register"
	}
	return p
}
