// Command tracer runs one conciliator execution and prints a
// round-by-round trace of the surviving personae, making the sifting
// process visible.
//
// Usage:
//
//	tracer -alg sifter -n 64 -algseed 3 -schedseed 9
//	tracer -alg priority -n 256 -schedule split
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracer", flag.ContinueOnError)
	var (
		alg       = fs.String("alg", "sifter", "algorithm: sifter, priority, or embedded")
		n         = fs.Int("n", 64, "number of processes")
		algSeed   = fs.Uint64("algseed", 1, "algorithm seed")
		schedSeed = fs.Uint64("schedseed", 2, "adversary seed")
		kindName  = fs.String("schedule", "random", "schedule family: round-robin, random, staggered, split, zipf, crash-half")
		epsilon   = fs.Float64("epsilon", 0.5, "target disagreement probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n must be positive")
	}

	var kind sched.Kind
	for _, k := range sched.Kinds() {
		if k.String() == *kindName {
			kind = k
		}
	}
	if kind == 0 {
		return fmt.Errorf("unknown schedule %q", *kindName)
	}

	inputs := make([]int, *n)
	for i := range inputs {
		inputs[i] = i
	}
	src := sched.New(kind, *n, *schedSeed)
	cfg := sim.Config{AlgSeed: *algSeed}

	var (
		survivors []int
		outs      []int
		finished  []bool
		res       sim.Result
		err       error
		label     string
	)
	switch *alg {
	case "sifter":
		c := conciliator.NewSifter[int](*n, conciliator.SifterConfig{Epsilon: *epsilon, TrackSurvivors: true})
		label = fmt.Sprintf("Algorithm 2 (sifter), R = ceil(loglog %d) + ceil(log_{4/3}(8/%.3g)) = %d", *n, *epsilon, c.Rounds())
		outs, finished, res, err = sim.Collect(src, cfg, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		survivors = c.SurvivorsPerRound()
	case "priority":
		c := conciliator.NewPriority[int](*n, conciliator.PriorityConfig{Epsilon: *epsilon, TrackSurvivors: true})
		label = fmt.Sprintf("Algorithm 1 (priority), R = log* %d + ceil(log 1/%.3g) + 1 = %d", *n, *epsilon, c.Rounds())
		outs, finished, res, err = sim.Collect(src, cfg, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		survivors = c.SurvivorsPerRound()
	case "embedded":
		c := conciliator.NewEmbedded[int](*n, conciliator.EmbeddedConfig{})
		label = fmt.Sprintf("Algorithm 3 (CIL + embedded sifter), inner rounds = %d", c.InnerRounds())
		outs, finished, res, err = sim.Collect(src, cfg, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err == nil {
			s, r, w := c.ExitCounts()
			defer fmt.Fprintf(out, "exit paths: completed-sifter=%d proposal-read=%d proposal-write=%d\n", s, r, w)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(out, label)
	fmt.Fprintf(out, "n=%d schedule=%s algseed=%d schedseed=%d\n", *n, kind, *algSeed, *schedSeed)
	fmt.Fprintf(out, "log* n = %d, ceil(loglog n) = %d\n\n", stats.LogStar(float64(*n)), stats.CeilLogLog(*n))

	if len(survivors) > 0 {
		fmt.Fprintln(out, "round  distinct personae")
		for i, s := range survivors {
			bar := ""
			for b := 0; b < s && b < 64; b++ {
				bar += "#"
			}
			fmt.Fprintf(out, "%5d  %6d  %s\n", i+1, s, bar)
		}
		fmt.Fprintln(out)
	}

	distinct := make(map[int]bool)
	decided := 0
	for i, o := range outs {
		if finished[i] {
			distinct[o] = true
			decided++
		}
	}
	fmt.Fprintf(out, "finished processes: %d/%d\n", decided, *n)
	fmt.Fprintf(out, "distinct outputs:   %d (agreement: %v)\n", len(distinct), len(distinct) <= 1)
	fmt.Fprintf(out, "steps: total=%d max-individual=%d\n", res.TotalSteps, res.MaxSteps())
	return nil
}
