package main

import (
	"strings"
	"testing"
)

func TestRunSifter(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "sifter", "-n", "16"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Algorithm 2", "round  distinct personae", "finished processes: 16/16", "steps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPriority(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "priority", "-n", "8", "-epsilon", "0.25"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Algorithm 1") {
		t.Errorf("output missing label:\n%s", b.String())
	}
}

func TestRunEmbedded(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "embedded", "-n", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Algorithm 3", "exit paths:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllScheduleNames(t *testing.T) {
	for _, s := range []string{"round-robin", "random", "staggered", "split", "zipf", "crash-half"} {
		var b strings.Builder
		if err := run([]string{"-n", "8", "-schedule", s}, &b); err != nil {
			t.Errorf("schedule %s: %v", s, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad algorithm", args: []string{"-alg", "nope"}},
		{name: "bad schedule", args: []string{"-schedule", "nope"}},
		{name: "bad n", args: []string{"-n", "0"}},
		{name: "bad flag", args: []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDeterministicOutput(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := run([]string{"-n", "16", "-algseed", "5", "-schedseed", "6"}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("tracer output not deterministic for fixed seeds")
	}
}
