module github.com/oblivious-consensus/conciliator

go 1.23
