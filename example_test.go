package conciliator_test

import (
	"fmt"

	conciliator "github.com/oblivious-consensus/conciliator"
)

// Demonstrates running a bare conciliator: termination and validity are
// guaranteed, agreement only probabilistic (here it succeeds).
func ExampleRunConciliator() {
	inputs := []int{3, 1, 4, 1, 5}
	res, err := conciliator.RunConciliator(conciliator.ModelSnapshot, inputs,
		conciliator.WithAlgorithmSeed(1),
		conciliator.WithAdversarySeed(2))
	if err != nil {
		panic(err)
	}
	valid := true
	set := map[int]bool{3: true, 1: true, 4: true, 5: true}
	for _, v := range res.Values {
		if !set[v] {
			valid = false
		}
	}
	fmt.Println("valid:", valid, "agreed:", res.Agreed)
	// Output: valid: true agreed: true
}

// Demonstrates reusing a Consensus object from custom orchestration: the
// object is single-use, one Propose per process, run here through Run.
func ExampleConsensus_Run() {
	c := conciliator.NewConsensus[string](conciliator.ModelLinear, 3)
	res, err := c.Run([]string{"alpha", "beta", "gamma"},
		conciliator.WithAlgorithmSeed(7),
		conciliator.WithAdversarySeed(8),
		conciliator.WithSchedule(conciliator.ScheduleRoundRobin))
	if err != nil {
		panic(err)
	}
	agreed := true
	for i, v := range res.Values {
		if res.Finished[i] && v != res.Decided {
			agreed = false
		}
	}
	fmt.Println("agreed:", agreed)
	// Output: agreed: true
}

// Demonstrates the crash-half adversary: survivors still decide and
// agree.
func ExampleWithSchedule() {
	inputs := []int{10, 20, 30, 40, 50, 60, 70, 80}
	res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
		conciliator.WithSchedule(conciliator.ScheduleCrashHalf),
		conciliator.WithAlgorithmSeed(5),
		conciliator.WithAdversarySeed(6))
	if err != nil {
		panic(err)
	}
	finished, agreed := 0, true
	for i, v := range res.Values {
		if !res.Finished[i] {
			continue
		}
		finished++
		if v != res.Decided {
			agreed = false
		}
	}
	fmt.Println("survivors agreed:", agreed, "- at least half finished:", finished >= len(inputs)/2)
	// Output: survivors agreed: true - at least half finished: true
}
