package conciliator_test

import (
	"bytes"
	"testing"

	conciliator "github.com/oblivious-consensus/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/trace"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// FuzzSolveRegister drives full register-model consensus with fuzzed
// process counts, seeds, and input patterns, asserting the absolute
// guarantees (termination within the slot budget, validity, agreement)
// on every execution.
func FuzzSolveRegister(f *testing.F) {
	f.Add(uint8(4), uint64(1), uint64(2), uint16(0b1010))
	f.Add(uint8(9), uint64(42), uint64(7), uint16(0xffff))
	f.Add(uint8(1), uint64(0), uint64(0), uint16(1))
	f.Add(uint8(16), uint64(1<<63), uint64(3), uint16(0))
	f.Add(uint8(15), uint64(12345), uint64(54321), uint16(0b0101010101010101))
	f.Fuzz(func(t *testing.T, rawN uint8, algSeed, schedSeed uint64, pattern uint16) {
		n := int(rawN%16) + 1
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = int(pattern>>uint(i%16)) & 1
		}
		res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
			conciliator.WithAlgorithmSeed(algSeed),
			conciliator.WithAdversarySeed(schedSeed))
		if err != nil {
			t.Fatalf("solve failed: %v", err)
		}
		if res.Decided != 0 && res.Decided != 1 {
			t.Fatalf("validity violated: decided %d", res.Decided)
		}
		for i, v := range res.Values {
			if res.Finished[i] && v != res.Decided {
				t.Fatalf("agreement violated: process %d decided %d vs %d", i, v, res.Decided)
			}
		}
	})
}

// FuzzScheduleSkipper checks the sched.Skipper contract on every
// schedule family: interleaving SkipWhile with Next — in any pattern a
// fuzzed byte program can express — must never change the emitted pid
// stream relative to a twin source driven by Next alone, and the slot
// accounting SkipWhile returns must exactly match the number of slots
// its predicate approved (in particular it can never go negative). This
// is the contract the simulator's no-op slot batching fast path leans
// on.
func FuzzScheduleSkipper(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint64(1), []byte{0x00, 0x07, 0x12, 0x01})
	f.Add(uint8(3), uint8(8), uint64(9), []byte{0xff, 0x00, 0xff, 0x00, 0x3c})
	f.Add(uint8(5), uint8(1), uint64(42), []byte{0x81, 0x81, 0x81})
	f.Add(uint8(2), uint8(15), uint64(7), []byte{0x10, 0x20, 0x30, 0x40, 0x50})
	f.Fuzz(func(t *testing.T, rawKind, rawN uint8, seed uint64, program []byte) {
		kinds := sched.Kinds()
		kind := kinds[int(rawKind)%len(kinds)]
		n := int(rawN%16) + 1
		if len(program) > 256 {
			program = program[:256]
		}
		skipping := sched.New(kind, n, seed)
		reference := sched.New(kind, n, seed)
		skipper, ok := skipping.(sched.Skipper)
		if !ok {
			t.Skipf("%v source does not implement Skipper", kind)
		}
		for pc, op := range program {
			if op&1 == 0 {
				got, want := skipping.Next(), reference.Next()
				if got != want {
					t.Fatalf("op %d: Next = %d, reference = %d", pc, got, want)
				}
				continue
			}
			budget := int(op>>1) % 8
			var approved []int
			skipped := skipper.SkipWhile(func(pid int) bool {
				if budget == 0 {
					return false
				}
				budget--
				approved = append(approved, pid)
				return true
			})
			if skipped < 0 {
				t.Fatalf("op %d: SkipWhile returned negative count %d", pc, skipped)
			}
			if skipped != int64(len(approved)) {
				t.Fatalf("op %d: SkipWhile = %d slots, predicate approved %d", pc, skipped, len(approved))
			}
			for i, pid := range approved {
				if want := reference.Next(); pid != want {
					t.Fatalf("op %d: skipped slot %d = pid %d, reference = %d", pc, i, pid, want)
				}
			}
		}
	})
}

// FuzzCrashScheduleReplay records fuzzed crash-schedule runs with
// trace.Record and replays them, asserting the replay reproduces the
// original execution exactly — per-process step counts, finished flags,
// and slot totals. This pins the crash-replay semantics (death slots
// captured at slot granularity, crash-aware replay sources) under
// schedules no hand-written table would think to try.
func FuzzCrashScheduleReplay(f *testing.F) {
	f.Add(uint8(4), uint64(1), uint8(10), uint8(0b0101))
	f.Add(uint8(7), uint64(33), uint8(0), uint8(0xff))
	f.Add(uint8(2), uint64(5), uint8(60), uint8(0b10))
	// Regression: every survivor finished before the crash cutoff passed,
	// which used to make the driver spin through no-op slots to the slot
	// budget (and blow Result.Slots up to the budget) instead of ending
	// the run at the cutoff crossing.
	f.Add(uint8(97), uint64(7), uint8(0x16), uint8(0xe3))
	f.Fuzz(func(t *testing.T, rawN uint8, seed uint64, rawCutoff, victimMask uint8) {
		n := int(rawN%8) + 2
		cutoff := int(rawCutoff) % 64
		// CrashSet requires a survivor; process n-1 is never a victim.
		var victims []int
		for pid := 0; pid < n-1; pid++ {
			if victimMask&(1<<uint(pid%8)) != 0 {
				victims = append(victims, pid)
			}
		}
		body := func(p *sim.Proc) int64 {
			for i := 0; i < 8; i++ {
				p.Step()
			}
			return p.Steps()
		}
		rec := trace.Record(sched.NewCrashSet(sched.NewRandom(n, xrand.New(seed)), victims, cutoff, seed+1))
		_, _, res, err := sim.Collect(rec, sim.Config{AlgSeed: seed + 2}, body)
		if err != nil {
			t.Fatalf("recorded run: %v", err)
		}
		_, _, replayed, err := sim.Collect(rec.Replay(), sim.Config{AlgSeed: seed + 2}, body)
		if err != nil {
			t.Fatalf("replayed run: %v", err)
		}
		if res.TotalSteps != replayed.TotalSteps {
			t.Fatalf("total steps: recorded %d, replayed %d", res.TotalSteps, replayed.TotalSteps)
		}
		for pid := range res.Steps {
			if res.Steps[pid] != replayed.Steps[pid] {
				t.Fatalf("process %d steps: recorded %d, replayed %d", pid, res.Steps[pid], replayed.Steps[pid])
			}
			if res.Finished[pid] != replayed.Finished[pid] {
				t.Fatalf("process %d finished: recorded %v, replayed %v", pid, res.Finished[pid], replayed.Finished[pid])
			}
		}
	})
}

// FuzzConciliatorLinear fuzzes the Algorithm 3 conciliator alone:
// termination and validity must hold for every seed pair, even though
// agreement is only probabilistic.
func FuzzConciliatorLinear(f *testing.F) {
	f.Add(uint8(6), uint64(3), uint64(4))
	f.Add(uint8(2), uint64(9), uint64(1))
	f.Add(uint8(0), uint64(0), uint64(0))
	f.Add(uint8(13), uint64(1<<40), uint64(17))
	f.Fuzz(func(t *testing.T, rawN uint8, algSeed, schedSeed uint64) {
		n := int(rawN%16) + 1
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i * 10
		}
		res, err := conciliator.RunConciliator(conciliator.ModelLinear, inputs,
			conciliator.WithAlgorithmSeed(algSeed),
			conciliator.WithAdversarySeed(schedSeed))
		if err != nil {
			t.Fatalf("conciliator failed: %v", err)
		}
		for i, v := range res.Values {
			if !res.Finished[i] {
				t.Fatalf("process %d did not terminate", i)
			}
			if v%10 != 0 || v < 0 || v >= n*10 {
				t.Fatalf("validity violated: output %d", v)
			}
		}
	})
}

// FuzzFaultScheduleReplay mirrors FuzzCrashScheduleReplay for the fault
// substrate: arbitrary fault schedules — decoded from fuzzed bytes into
// every event kind — must (a) round-trip through the JSON codec
// byte-identically, (b) drive the simulator without panicking, and
// (c) replay bit-identically, both from the in-memory schedule and from
// its decoded serialization. This pins the determinism contract repro
// artifacts depend on: a faulted run is a pure function of (algorithm
// seed, schedule source, fault schedule).
func FuzzFaultScheduleReplay(f *testing.F) {
	f.Add(uint8(4), uint64(1), uint64(2), []byte{0, 0, 3, 0, 2})
	f.Add(uint8(7), uint64(9), uint64(5), []byte{2, 1, 10, 0, 0, 3, 2, 1, 0, 4})
	f.Add(uint8(2), uint64(3), uint64(8), []byte{4, 0, 2, 0, 3, 1, 1, 50, 0, 7})
	f.Add(uint8(1), uint64(0), uint64(0), []byte{2, 0, 0, 0, 0, 2, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, rawN uint8, algSeed, schedSeed uint64, raw []byte) {
		n := int(rawN%8) + 1
		var events []fault.Event
		for i := 0; i+4 < len(raw) && len(events) < 24; i += 5 {
			kind := fault.Kind(int(raw[i])%5 + 1)
			ev := fault.Event{Kind: kind, Pid: int(raw[i+1]) % n}
			clock := int64(raw[i+2]) | int64(raw[i+3])<<8
			arg := int64(raw[i+4]%8) + 1
			switch kind {
			case fault.Stutter, fault.Stall:
				ev.Slot, ev.Arg = clock, arg
			case fault.CrashRecover:
				ev.Slot = clock
			case fault.StaleRead:
				ev.Op, ev.Arg = clock%64, arg-1 // depth 0 = null read
			case fault.StaleScan:
				ev.Op, ev.Arg = clock%64, arg
			}
			events = append(events, ev)
		}
		s, err := fault.NewSchedule(n, events)
		if err != nil {
			t.Fatalf("constructed events rejected: %v", err)
		}

		d1, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := fault.Decode(d1)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		d2, err := decoded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d1, d2) {
			t.Fatalf("codec round trip not byte-identical:\n%s\nvs\n%s", d1, d2)
		}

		// The workload touches every faultable operation class: register
		// read/write, snapshot update/scan, max-register read/write.
		run := func(fs *fault.Schedule) sim.Result {
			reg := memory.NewRegister[int]()
			snap := memory.NewSnapshot[int](n)
			maxr := memory.NewMaxRegister[int]()
			src := sched.New(sched.KindRandom, n, schedSeed)
			res, err := sim.RunControlled(src, func(p *sim.Proc) {
				buf := make([]memory.Entry[int], n)
				for i := 0; i < 6; i++ {
					reg.Write(p, p.ID()*100+i)
					reg.Read(p)
					snap.Update(p, p.ID(), i)
					snap.ScanInto(p, buf)
					maxr.WriteMax(p, uint64(i*n+p.ID()+1), i)
					maxr.ReadMax(p)
				}
			}, sim.Config{AlgSeed: algSeed, MaxSlots: 1 << 21, Faults: fs})
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			return res
		}
		first := run(s)
		for name, again := range map[string]sim.Result{
			"replay":         run(s),
			"decoded replay": run(decoded),
		} {
			if first.TotalSteps != again.TotalSteps || first.Slots != again.Slots {
				t.Fatalf("%s diverged: steps %d/%d, slots %d/%d", name,
					first.TotalSteps, again.TotalSteps, first.Slots, again.Slots)
			}
			if first.Restarts != again.Restarts || first.Faults != again.Faults {
				t.Fatalf("%s fault delivery diverged: restarts %d/%d, counts %+v vs %+v", name,
					first.Restarts, again.Restarts, first.Faults, again.Faults)
			}
			for pid := range first.Steps {
				if first.Steps[pid] != again.Steps[pid] || first.Finished[pid] != again.Finished[pid] {
					t.Fatalf("%s process %d diverged: steps %d/%d finished %v/%v", name, pid,
						first.Steps[pid], again.Steps[pid], first.Finished[pid], again.Finished[pid])
				}
			}
		}
	})
}
