package conciliator_test

import (
	"testing"

	conciliator "github.com/oblivious-consensus/conciliator"
)

// FuzzSolveRegister drives full register-model consensus with fuzzed
// process counts, seeds, and input patterns, asserting the absolute
// guarantees (termination within the slot budget, validity, agreement)
// on every execution.
func FuzzSolveRegister(f *testing.F) {
	f.Add(uint8(4), uint64(1), uint64(2), uint16(0b1010))
	f.Add(uint8(9), uint64(42), uint64(7), uint16(0xffff))
	f.Add(uint8(1), uint64(0), uint64(0), uint16(1))
	f.Fuzz(func(t *testing.T, rawN uint8, algSeed, schedSeed uint64, pattern uint16) {
		n := int(rawN%16) + 1
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = int(pattern>>uint(i%16)) & 1
		}
		res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
			conciliator.WithAlgorithmSeed(algSeed),
			conciliator.WithAdversarySeed(schedSeed))
		if err != nil {
			t.Fatalf("solve failed: %v", err)
		}
		if res.Decided != 0 && res.Decided != 1 {
			t.Fatalf("validity violated: decided %d", res.Decided)
		}
		for i, v := range res.Values {
			if res.Finished[i] && v != res.Decided {
				t.Fatalf("agreement violated: process %d decided %d vs %d", i, v, res.Decided)
			}
		}
	})
}

// FuzzConciliatorLinear fuzzes the Algorithm 3 conciliator alone:
// termination and validity must hold for every seed pair, even though
// agreement is only probabilistic.
func FuzzConciliatorLinear(f *testing.F) {
	f.Add(uint8(6), uint64(3), uint64(4))
	f.Add(uint8(2), uint64(9), uint64(1))
	f.Fuzz(func(t *testing.T, rawN uint8, algSeed, schedSeed uint64) {
		n := int(rawN%16) + 1
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i * 10
		}
		res, err := conciliator.RunConciliator(conciliator.ModelLinear, inputs,
			conciliator.WithAlgorithmSeed(algSeed),
			conciliator.WithAdversarySeed(schedSeed))
		if err != nil {
			t.Fatalf("conciliator failed: %v", err)
		}
		for i, v := range res.Values {
			if !res.Finished[i] {
				t.Fatalf("process %d did not terminate", i)
			}
			if v%10 != 0 || v < 0 || v >= n*10 {
				t.Fatalf("validity violated: output %d", v)
			}
		}
	})
}
