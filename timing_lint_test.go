package conciliator_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoTimingDependentTests enforces the repository's determinism
// policy: test code must never sleep or wait on wall-clock timers to
// "let the other goroutine run". Every concurrency test here drives
// interleavings through the controlled scheduler (or real -race
// execution with proper synchronization), so timing primitives in test
// files are either a flake waiting to happen or a smell that a schedule
// should have been explicit. The check parses every _test.go file and
// rejects calls of time.Sleep, time.After, time.Tick, and timer/ticker
// constructors.
func TestNoTimingDependentTests(t *testing.T) {
	banned := map[string]bool{
		"Sleep":     true,
		"After":     true,
		"AfterFunc": true,
		"Tick":      true,
		"NewTimer":  true,
		"NewTicker": true,
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		// Only flag files that import the real "time" package; a local
		// package named time would be somebody else's problem.
		importsTime := false
		for _, imp := range f.Imports {
			if imp.Path.Value == `"time"` && imp.Name == nil {
				importsTime = true
			}
		}
		if !importsTime {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" || !banned[sel.Sel.Name] {
				return true
			}
			t.Errorf("%s: time.%s in a test file — use the controlled scheduler or explicit synchronization instead",
				fset.Position(sel.Pos()), sel.Sel.Name)
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
