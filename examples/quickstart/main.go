// Quickstart: eight processes with conflicting inputs reach consensus in
// each of the paper's models, and we look at what it cost them.
package main

import (
	"fmt"
	"log"

	conciliator "github.com/oblivious-consensus/conciliator"
)

func main() {
	// Eight processes propose conflicting values.
	inputs := []string{"red", "green", "blue", "red", "cyan", "green", "blue", "red"}

	for _, model := range conciliator.Models() {
		res, err := conciliator.Solve(model, inputs,
			conciliator.WithAlgorithmSeed(42),
			conciliator.WithAdversarySeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s decided %-6q  steps: total=%-4d worst-process=%-3d phases=%.1f\n",
			model.String(), res.Decided, res.TotalSteps, res.MaxSteps, res.MeanPhases)
	}

	// A conciliator alone is weaker: it may fail to agree (with bounded
	// probability), but it always terminates with a valid value.
	res, err := conciliator.RunConciliator(conciliator.ModelRegister, inputs,
		conciliator.WithAlgorithmSeed(42), conciliator.WithAdversarySeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbare conciliator: agreed=%v outputs=%v\n", res.Agreed, res.Values)
}
