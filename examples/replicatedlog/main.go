// Replicated log: a miniature state-machine-replication stack built on
// repeated consensus, using the library's rsm layer. Five replicas
// receive different client commands concurrently; one consensus instance
// per log slot forces every replica to append the same command in the
// same order, so the replicas' key-value stores end in identical states
// no matter how the oblivious adversary interleaves them.
//
// This is the classic downstream use of consensus the paper's
// introduction motivates: once n processes can agree on one value, they
// can agree on a sequence of values, and therefore on the state of any
// deterministic machine.
package main

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/rsm"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

const (
	replicas = 5
	slots    = 8
)

func main() {
	// Each replica has its own stream of pending client commands.
	pending := make([][]rsm.Op, replicas)
	keys := []string{"x", "y", "z", "q"}
	rng := xrand.New(2026)
	for r := 0; r < replicas; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], rsm.Op{
				Kind:  rsm.OpKind(rng.Intn(3) + 1),
				Key:   keys[rng.Intn(len(keys))],
				Value: fmt.Sprintf("%d", rng.Intn(100)),
			})
		}
	}

	// The shared replicated log: one register-model consensus per slot.
	log := rsm.NewLog[rsm.Op](replicas, consensus.NewRegister[rsm.Op])
	reps := make([]*rsm.Replica[rsm.Op], replicas)
	stores := make([]*rsm.KV, replicas)
	for i := range reps {
		stores[i] = rsm.NewKV()
		reps[i] = rsm.NewReplica(i, log, stores[i])
	}

	// Run the replicas under a staggered oblivious adversary.
	src := sched.NewStaggered(replicas, 8, xrand.New(7))
	_, _, res, err := sim.Collect(src, sim.Config{AlgSeed: 42}, func(p *sim.Proc) struct{} {
		reps[p.ID()].Run(p, 0, pending[p.ID()])
		return struct{}{}
	})
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}

	committed := reps[0].Applied()
	for s, cmd := range committed {
		fmt.Printf("slot %d: committed %q (replica 0 proposed %q)\n", s, cmd.String(), pending[0][s].String())
	}

	identicalLogs, identicalState := true, true
	for r := 1; r < replicas; r++ {
		applied := reps[r].Applied()
		for s := range committed {
			if applied[s] != committed[s] {
				identicalLogs = false
			}
		}
		if reps[r].Fingerprint() != reps[0].Fingerprint() {
			identicalState = false
		}
	}
	fmt.Printf("\nreplica logs identical:   %v\n", identicalLogs)
	fmt.Printf("replica KV states identical: %v\n", identicalState)
	fmt.Printf("final state: %s\n", reps[0].Fingerprint())
	fmt.Printf("shared-memory steps across all slots: %d\n", res.TotalSteps)
}
