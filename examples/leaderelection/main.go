// Leader election among free-running goroutines: the id-consensus case
// the paper highlights (m = n possible input values). Every worker
// proposes itself; consensus elects exactly one leader, and every worker
// learns the same one.
//
// This example uses the concurrent execution mode — real goroutines
// racing on the shared objects, with the Go runtime as the (weak)
// adversary — rather than the deterministic simulator.
package main

import (
	"fmt"
	"log"
	"sync"

	conciliator "github.com/oblivious-consensus/conciliator"
)

const workers = 32

func main() {
	election := conciliator.NewConsensus[int](conciliator.ModelLinear, workers)

	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i
	}
	res, err := election.Run(ids, conciliator.WithConcurrentExecution())
	if err != nil {
		log.Fatal(err)
	}

	leader := res.Decided
	fmt.Printf("elected leader: worker %d (total steps %d, worst process %d)\n",
		leader, res.TotalSteps, res.MaxSteps)

	// Every worker now acts on the election result; the leader does the
	// privileged work, everyone else follows.
	var wg sync.WaitGroup
	results := make([]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res.Values[w] == w {
				results[w] = fmt.Sprintf("worker %d: I lead", w)
			} else {
				results[w] = fmt.Sprintf("worker %d: following %d", w, res.Values[w])
			}
		}()
	}
	wg.Wait()

	leaders := 0
	for w := 0; w < workers; w++ {
		if res.Values[w] == w {
			leaders++
		}
	}
	fmt.Printf("workers claiming leadership: %d (must be exactly 1)\n", leaders)
	fmt.Println(results[leader])
}
