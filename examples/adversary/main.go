// Adversary study: how the conciliators behave under different oblivious
// schedule families. The paper's guarantees are schedule-independent (the
// adversary fixes the schedule before seeing any coin flips), and this
// example measures exactly that: agreement rates stay above the paper's
// floors under round-robin, random, staggered, split, Zipf-skewed, and
// crash-half adversaries.
package main

import (
	"fmt"
	"log"

	conciliator "github.com/oblivious-consensus/conciliator"
)

const (
	n      = 48
	trials = 60
)

func main() {
	schedules := []conciliator.Schedule{
		conciliator.ScheduleRoundRobin,
		conciliator.ScheduleRandom,
		conciliator.ScheduleStaggered,
		conciliator.ScheduleSplit,
		conciliator.ScheduleZipf,
		conciliator.ScheduleCrashHalf,
	}
	models := []conciliator.Model{
		conciliator.ModelSnapshot, conciliator.ModelRegister, conciliator.ModelLinear,
	}
	floors := map[conciliator.Model]float64{
		conciliator.ModelSnapshot: 0.5,       // Theorem 1, eps = 1/2
		conciliator.ModelRegister: 0.5,       // Theorem 2, eps = 1/2
		conciliator.ModelLinear:   1.0 / 8.0, // Theorem 3
	}

	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}

	fmt.Printf("%-12s", "schedule")
	for _, m := range models {
		fmt.Printf("  %-18s", m)
	}
	fmt.Println()

	for _, s := range schedules {
		fmt.Printf("%-12s", s)
		for _, m := range models {
			agreed := 0
			for t := 0; t < trials; t++ {
				res, err := conciliator.RunConciliator(m, inputs,
					conciliator.WithSchedule(s),
					conciliator.WithAlgorithmSeed(uint64(2*t+1)),
					conciliator.WithAdversarySeed(uint64(3*t+2)),
				)
				if err != nil {
					log.Fatal(err)
				}
				if res.Agreed {
					agreed++
				}
			}
			rate := float64(agreed) / trials
			marker := "ok"
			if rate < floors[m] {
				marker = "BELOW FLOOR"
			}
			fmt.Printf("  %.2f (floor %.2f) %-2s", rate, floors[m], marker)
		}
		fmt.Println()
	}
	fmt.Println("\nConciliator guarantees are per-execution probabilistic; the floors")
	fmt.Println("are the paper's bounds (Theorems 1-3) and hold for every schedule family.")
}
