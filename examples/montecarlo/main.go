// Monte-Carlo study: estimate the conciliators' agreement probabilities
// and step costs across n, using only the public API. This is the
// "measure the theorem yourself" workflow: Theorems 1-3 promise agreement
// floors of 1-eps (here eps = 1/2) and 1/8; the estimates below sit far
// above them, because the proofs' union bounds and Markov steps are
// deliberately loose.
package main

import (
	"fmt"
	"log"

	conciliator "github.com/oblivious-consensus/conciliator"
)

const trials = 80

func main() {
	fmt.Printf("%6s  %-10s  %-16s  %-14s\n", "n", "model", "agreement (est.)", "steps/process")
	for _, n := range []int{8, 32, 128} {
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i // id-consensus: everyone proposes itself
		}
		for _, model := range []conciliator.Model{
			conciliator.ModelSnapshot, conciliator.ModelRegister, conciliator.ModelLinear,
		} {
			agreed := 0
			var steps int64
			for t := 0; t < trials; t++ {
				res, err := conciliator.RunConciliator(model, inputs,
					conciliator.WithAlgorithmSeed(uint64(n*1000+t*2+1)),
					conciliator.WithAdversarySeed(uint64(n*1000+t*2+2)),
				)
				if err != nil {
					log.Fatal(err)
				}
				if res.Agreed {
					agreed++
				}
				steps += res.TotalSteps
			}
			rate := float64(agreed) / trials
			perProc := float64(steps) / trials / float64(n)
			fmt.Printf("%6d  %-10s  %-16.3f  %-14.1f\n", n, model, rate, perProc)
		}
	}
	fmt.Println("\nfloors: snapshot/register >= 0.5 (Theorems 1-2, eps = 1/2); linear >= 0.125 (Theorem 3)")
}
