// Benchmarks: one per reproduction experiment (see DESIGN.md's experiment
// index). Each benchmark measures full controlled-mode executions of the
// protocol under a fresh oblivious schedule per iteration and reports the
// model-level cost metrics (shared-memory steps) alongside wall-clock
// time, so `go test -bench . -benchmem` regenerates the shape of every
// table: who wins, by what factor, and where the crossovers fall.
package conciliator_test

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	core "github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/tas"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func benchInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	return in
}

// benchRun executes one controlled run of body and returns the result.
func benchRun(b *testing.B, n int, algSeed, schedSeed uint64, body func(p *sim.Proc) int) sim.Result {
	b.Helper()
	src := sched.NewRandom(n, xrand.New(schedSeed))
	_, _, res, err := sim.Collect(src, sim.Config{AlgSeed: algSeed}, body)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkControlledSteps measures raw controlled-mode simulator
// throughput (the binding constraint on every experiment sweep): n
// processes each perform a fixed number of trivial shared-memory steps
// and the benchmark reports modeled steps and schedule slots per second.
// The skewed-tail case leaves one process running long after the rest
// finish, so most slots are uncharged no-ops — the case the bulk
// slot-skipping fast path exists for.
func BenchmarkControlledSteps(b *testing.B) {
	benchControlledSteps(b)
}

// BenchmarkControlledStepsMetrics is the same workload with a metrics
// registry installed, bounding the cost of full instrumentation (step
// counters, window-latency histograms, per-object op counts) on the
// simulator's hot path.
func BenchmarkControlledStepsMetrics(b *testing.B) {
	metrics.SetDefault(metrics.New())
	defer metrics.SetDefault(nil)
	benchControlledSteps(b)
}

func benchControlledSteps(b *testing.B) {
	cases := []struct {
		name  string
		n     int
		steps func(pid int) int
		mk    func(n int, seed uint64) sched.Source
	}{
		{
			name:  "round-robin/n=8",
			n:     8,
			steps: func(int) int { return 2048 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "round-robin/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
		{
			name:  "random/n=64",
			n:     64,
			steps: func(int) int { return 256 },
			mk:    func(n int, seed uint64) sched.Source { return sched.NewRandom(n, xrand.New(seed)) },
		},
		{
			name: "skewed-tail/n=64",
			n:    64,
			steps: func(pid int) int {
				if pid == 0 {
					return 4096
				}
				return 1
			},
			mk: func(n int, _ uint64) sched.Source { return sched.NewRoundRobin(n) },
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var totalSteps, totalSlots int64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunControlled(tc.mk(tc.n, uint64(i)+1), func(p *sim.Proc) {
					for s := tc.steps(p.ID()); s > 0; s-- {
						p.Step()
					}
				}, sim.Config{AlgSeed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				totalSteps += res.TotalSteps
				totalSlots += res.Slots
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(totalSteps)/secs, "steps/s")
				b.ReportMetric(float64(totalSlots)/secs, "slots/s")
			}
		})
	}
}

// flatBenchCountdown mirrors the controlled-steps workload bodies for
// the flat engine: a fixed number of trivial operations per process.
type flatBenchCountdown struct {
	steps func(pid int) int
	left  []int
}

func (m *flatBenchCountdown) Init(pid int, _ *xrand.Rand) { m.left[pid] = m.steps(pid) }

func (m *flatBenchCountdown) Step(pid int, _ *xrand.Rand) bool {
	m.left[pid]--
	return m.left[pid] == 0
}

// BenchmarkFlatHotPath measures the flat state-machine engine on the
// controlled-steps workloads (the coroutine numbers are the
// BenchmarkControlledSteps baselines) plus full consensus trials, with
// allocation reporting: the engine workloads must show 0 allocs/op in
// steady state — the property TestFlatRunnerSteadyStateZeroAllocs
// asserts — because that is what lets the Monte Carlo runner sustain
// millions of trials.
func BenchmarkFlatHotPath(b *testing.B) {
	cases := []struct {
		name  string
		n     int
		steps func(pid int) int
	}{
		{name: "round-robin/n=8", n: 8, steps: func(int) int { return 2048 }},
		{name: "round-robin/n=64", n: 64, steps: func(int) int { return 256 }},
		{
			name: "skewed-tail/n=64",
			n:    64,
			steps: func(pid int) int {
				if pid == 0 {
					return 4096
				}
				return 1
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			m := &flatBenchCountdown{steps: tc.steps, left: make([]int, tc.n)}
			fr := sim.NewFlatRunner[*flatBenchCountdown]()
			src := sched.NewRoundRobin(tc.n)
			var res sim.Result
			var totalSteps, totalSlots int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fr.RunInto(src, m, sim.Config{AlgSeed: uint64(i) + 1}, &res); err != nil {
					b.Fatal(err)
				}
				totalSteps += res.TotalSteps
				totalSlots += res.Slots
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(totalSteps)/secs, "steps/s")
				b.ReportMetric(float64(totalSlots)/secs, "slots/s")
			}
		})
	}
	b.Run("consensus/sifter+register/n=16", func(b *testing.B) {
		b.ReportAllocs()
		const n = 16
		m, err := consensus.NewFlat(n, consensus.FlatConfig{
			Conciliator: consensus.ConcSifter, AC: consensus.ACRegister,
		})
		if err != nil {
			b.Fatal(err)
		}
		fr := sim.NewFlatRunner[*consensus.FlatConsensus]()
		var res sim.Result
		var totalSteps int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := sched.NewRandom(n, xrand.New(uint64(i)+1))
			m.Reset(nil)
			if err := fr.RunInto(src, m, sim.Config{AlgSeed: uint64(i) + 1}, &res); err != nil {
				b.Fatal(err)
			}
			totalSteps += res.TotalSteps
		}
		secs := b.Elapsed().Seconds()
		if secs > 0 {
			b.ReportMetric(float64(totalSteps)/secs, "steps/s")
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/trial")
		}
	})
}

// BenchmarkConcurrentSteps measures real multi-core throughput of the
// concurrent substrate: n processes on real goroutines hammer a shared
// register, max register, and snapshot, and the benchmark reports
// modeled steps per second. The lock-free/locked pair at each n is the
// regression surface for the lock-free object representations — on a
// multi-core host lock-free must beat the mutex substrate at n=8 by the
// factor recorded in BENCH_concurrent_steps.json. One runner is reused
// across all b.N trials, so goroutine spawn cost is excluded just as the
// experiment sweeps exclude it.
func BenchmarkConcurrentSteps(b *testing.B) {
	const opsPerProc = 512
	for _, substrate := range []struct {
		name   string
		locked bool
	}{
		{name: "lock-free", locked: false},
		{name: "locked", locked: true},
	} {
		for _, n := range []int{2, 8, 64} {
			substrate, n := substrate, n
			b.Run(fmt.Sprintf("%s/n=%d", substrate.name, n), func(b *testing.B) {
				b.ReportAllocs()
				r := sim.NewConcurrentRunner(n, 0)
				defer r.Close()
				var totalSteps int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					reg := memory.NewRegister[int]()
					maxr := memory.NewMaxRegister[int]()
					snap := memory.NewSnapshot[int](n)
					res, err := r.Run(func(p *sim.Proc) {
						for k := 0; k < opsPerProc; k++ {
							reg.Write(p, p.ID())
							reg.Read(p)
							maxr.WriteMax(p, uint64(k), p.ID())
							snap.Update(p, p.ID(), k)
						}
					}, sim.Config{AlgSeed: uint64(i) + 1, LockedMemory: substrate.locked})
					if err != nil {
						b.Fatal(err)
					}
					totalSteps += res.TotalSteps
				}
				secs := b.Elapsed().Seconds()
				if secs > 0 {
					b.ReportMetric(float64(totalSteps)/secs, "steps/s")
				}
			})
		}
	}
}

// BenchmarkSubstrateHotPath measures the exclusive substrate's
// per-operation cost inside a controlled run: each benchmark iteration is
// one shared-memory operation executed by a scheduled process, so ns/op
// is the end-to-end cost of a modeled step (coroutine handoff included)
// and allocs/op must be zero for every operation the protocols use in
// their inner loops. The allocating Scan is included for contrast.
func BenchmarkSubstrateHotPath(b *testing.B) {
	run := func(b *testing.B, setup func(p *sim.Proc) func()) {
		b.Helper()
		b.ReportAllocs()
		if _, err := sim.RunControlled(sched.NewRoundRobin(1), func(p *sim.Proc) {
			op := setup(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		}, sim.Config{AlgSeed: 1, MaxSlots: 1 << 40}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("register-write", func(b *testing.B) {
		run(b, func(p *sim.Proc) func() {
			r := memory.NewRegister[int]()
			return func() { r.Write(p, 7) }
		})
	})
	b.Run("register-read", func(b *testing.B) {
		run(b, func(p *sim.Proc) func() {
			r := memory.NewRegister[int]()
			r.Write(p, 7)
			return func() { r.Read(p) }
		})
	})
	b.Run("maxreg-writemax", func(b *testing.B) {
		run(b, func(p *sim.Proc) func() {
			m := memory.NewMaxRegister[int]()
			return func() { m.WriteMax(p, 5, 1) }
		})
	})
	b.Run("snapshot-scaninto/n=64", func(b *testing.B) {
		run(b, func(p *sim.Proc) func() {
			s := memory.NewSnapshot[int](64)
			s.Update(p, 0, 1)
			var buf []memory.Entry[int]
			return func() { buf = s.ScanInto(p, buf) }
		})
	})
	b.Run("snapshot-scan-alloc/n=64", func(b *testing.B) {
		run(b, func(p *sim.Proc) func() {
			s := memory.NewSnapshot[int](64)
			s.Update(p, 0, 1)
			return func() { s.Scan(p) }
		})
	})
}

// BenchmarkPriorityConciliator is E1/E2: one full Algorithm 1 execution
// per iteration (n processes, distinct inputs).
func BenchmarkPriorityConciliator(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := benchInputs(n)
			var steps int64
			for i := 0; i < b.N; i++ {
				c := core.NewPriority[int](n, core.PriorityConfig{})
				res := benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				steps += res.TotalSteps
			}
			b.ReportMetric(float64(steps)/float64(b.N)/float64(n), "steps/proc")
		})
	}
}

// BenchmarkPriorityEpsilon is E2: Algorithm 1 at tighter epsilons.
func BenchmarkPriorityEpsilon(b *testing.B) {
	const n = 64
	for _, eps := range []float64{0.5, 1.0 / 16, 1.0 / 256} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			inputs := benchInputs(n)
			agreed := 0
			for i := 0; i < b.N; i++ {
				c := core.NewPriority[int](n, core.PriorityConfig{Epsilon: eps})
				outs := make([]int, n)
				benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					v := c.Conciliate(p, inputs[p.ID()])
					outs[p.ID()] = v
					return v
				})
				same := true
				for _, o := range outs {
					if o != outs[0] {
						same = false
					}
				}
				if same {
					agreed++
				}
			}
			b.ReportMetric(float64(agreed)/float64(b.N), "agree-rate")
		})
	}
}

// BenchmarkPrioritySteps is E3: individual step growth across n (log* n).
func BenchmarkPrioritySteps(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := benchInputs(n)
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				c := core.NewPriority[int](n, core.PriorityConfig{})
				res := benchRun(b, n, uint64(i)+1, uint64(i)+9, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				maxSteps = res.MaxSteps()
			}
			b.ReportMetric(float64(maxSteps), "steps/proc")
		})
	}
}

// BenchmarkSifterDecay is E4: one full Algorithm 2 execution per
// iteration.
func BenchmarkSifterDecay(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := benchInputs(n)
			var steps int64
			for i := 0; i < b.N; i++ {
				c := core.NewSifter[int](n, core.SifterConfig{})
				res := benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				steps += res.TotalSteps
			}
			b.ReportMetric(float64(steps)/float64(b.N)/float64(n), "steps/proc")
		})
	}
}

// BenchmarkSifterEpsilon is E5: agreement rate of Algorithm 2.
func BenchmarkSifterEpsilon(b *testing.B) {
	const n = 64
	for _, eps := range []float64{0.5, 1.0 / 16} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			inputs := benchInputs(n)
			agreed := 0
			for i := 0; i < b.N; i++ {
				c := core.NewSifter[int](n, core.SifterConfig{Epsilon: eps})
				outs := make([]int, n)
				benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					v := c.Conciliate(p, inputs[p.ID()])
					outs[p.ID()] = v
					return v
				})
				same := true
				for _, o := range outs {
					if o != outs[0] {
						same = false
					}
				}
				if same {
					agreed++
				}
			}
			b.ReportMetric(float64(agreed)/float64(b.N), "agree-rate")
		})
	}
}

// BenchmarkSifterSteps is E6: individual step growth across n (loglog n).
func BenchmarkSifterSteps(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := benchInputs(n)
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				c := core.NewSifter[int](n, core.SifterConfig{})
				res := benchRun(b, n, uint64(i)+3, uint64(i)+11, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				maxSteps = res.MaxSteps()
			}
			b.ReportMetric(float64(maxSteps), "steps/proc")
		})
	}
}

// BenchmarkEmbedded is E7: Algorithm 3's O(n) total work vs the plain
// sifter.
func BenchmarkEmbedded(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := benchInputs(n)
			var total int64
			for i := 0; i < b.N; i++ {
				c := core.NewEmbedded[int](n, core.EmbeddedConfig{})
				res := benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				total += res.TotalSteps
			}
			b.ReportMetric(float64(total)/float64(b.N)/float64(n), "steps/proc")
		})
	}
}

// BenchmarkConsensus is E8: one full consensus execution per iteration,
// per construction.
func BenchmarkConsensus(b *testing.B) {
	protos := []struct {
		name string
		mk   func(n int) *consensus.Protocol[int]
	}{
		{name: "snapshot", mk: consensus.NewSnapshot[int]},
		{name: "register", mk: consensus.NewRegister[int]},
		{name: "linear", mk: consensus.NewLinear[int]},
		{name: "cil-baseline", mk: consensus.NewCILBaseline[int]},
	}
	for _, proto := range protos {
		for _, n := range []int{16, 128} {
			b.Run(fmt.Sprintf("%s/n=%d", proto.name, n), func(b *testing.B) {
				inputs := benchInputs(n)
				var steps int64
				for i := 0; i < b.N; i++ {
					c := proto.mk(n)
					res := benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
						return c.Propose(p, inputs[p.ID()])
					})
					steps += res.TotalSteps
				}
				b.ReportMetric(float64(steps)/float64(b.N)/float64(n), "steps/proc")
			})
		}
	}
}

// BenchmarkAdoptCommit is E9: adopt-commit cost vs value-universe size.
func BenchmarkAdoptCommit(b *testing.B) {
	const n = 16
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ac := adoptcommit.NewSnapshotAC[int](n)
			benchRun(b, n, uint64(i)+1, uint64(i)+2, func(p *sim.Proc) int {
				_, v := ac.Propose(p, p.ID(), p.ID()%2)
				return v
			})
		}
		b.ReportMetric(4, "steps/propose")
	})
	for _, bits := range []int{1, 8, 20} {
		bits := bits
		b.Run(fmt.Sprintf("register/bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ac := adoptcommit.NewRegisterAC[int](adoptcommit.NewDigitCD(adoptcommit.IdentityEncoder(bits)))
				benchRun(b, n, uint64(i)+1, uint64(i)+2, func(p *sim.Proc) int {
					_, v := ac.Propose(p, p.ID(), p.ID()%2)
					return v
				})
			}
			b.ReportMetric(float64(2*bits+3), "steps/propose")
		})
	}
}

// BenchmarkSchedules is E10: Algorithm 2 under each schedule family.
func BenchmarkSchedules(b *testing.B) {
	const n = 64
	for _, kind := range sched.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			inputs := benchInputs(n)
			for i := 0; i < b.N; i++ {
				c := core.NewSifter[int](n, core.SifterConfig{})
				src := sched.New(kind, n, uint64(i)+7)
				if _, _, _, err := sim.Collect(src, sim.Config{AlgSeed: uint64(i) + 3}, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations is E11a: tuned vs constant write probabilities.
func BenchmarkAblations(b *testing.B) {
	const n = 1024
	for _, tc := range []struct {
		name  string
		probs []float64
	}{
		{name: "tuned"},
		{name: "constant-half", probs: []float64{0.5}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			inputs := benchInputs(n)
			rounds := 2*11 + 8 // enough rounds for both schedules at n=1024
			var lastSingle float64
			for i := 0; i < b.N; i++ {
				c := core.NewSifter[int](n, core.SifterConfig{
					Rounds:         rounds,
					Probs:          tc.probs,
					TrackSurvivors: true,
				})
				benchRun(b, n, uint64(i)*2+1, uint64(i)*2+2, func(p *sim.Proc) int {
					return c.Conciliate(p, inputs[p.ID()])
				})
				surv := c.SurvivorsPerRound()
				first := rounds
				for r, s := range surv {
					if s <= 1 {
						first = r + 1
						break
					}
				}
				lastSingle = float64(first)
			}
			b.ReportMetric(lastSingle, "rounds-to-1")
		})
	}
}

// BenchmarkTAS is E12: the sifting test-and-set.
func BenchmarkTAS(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ts := tas.New(n, tas.Config{})
				src := sched.NewRandom(n, xrand.New(uint64(i)+5))
				wins, _, _, err := sim.Collect(src, sim.Config{AlgSeed: uint64(i) + 1}, func(p *sim.Proc) bool {
					return ts.Acquire(p)
				})
				if err != nil {
					b.Fatal(err)
				}
				winners := 0
				for _, w := range wins {
					if w {
						winners++
					}
				}
				if winners != 1 {
					b.Fatalf("%d winners", winners)
				}
			}
		})
	}
}
