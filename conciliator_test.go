package conciliator_test

import (
	"errors"
	"fmt"
	"testing"

	conciliator "github.com/oblivious-consensus/conciliator"
)

func TestSolveAllModels(t *testing.T) {
	inputs := []string{"red", "green", "blue", "blue", "red", "green"}
	for _, m := range conciliator.Models() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			res, err := conciliator.Solve(m, inputs)
			if err != nil {
				t.Fatal(err)
			}
			valid := map[string]bool{"red": true, "green": true, "blue": true}
			if !valid[res.Decided] {
				t.Fatalf("decided %q not an input", res.Decided)
			}
			for i, v := range res.Values {
				if res.Finished[i] && v != res.Decided {
					t.Fatalf("process %d decided %q, others %q", i, v, res.Decided)
				}
			}
			if res.TotalSteps <= 0 || res.MaxSteps <= 0 {
				t.Fatalf("missing step accounting: %+v", res)
			}
			if res.MeanPhases < 1 {
				t.Fatalf("MeanPhases = %v", res.MeanPhases)
			}
		})
	}
}

func TestSolveEmptyInputs(t *testing.T) {
	_, err := conciliator.Solve(conciliator.ModelRegister, []int{})
	if !errors.Is(err, conciliator.ErrNoInputs) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveSingleProcess(t *testing.T) {
	res, err := conciliator.Solve(conciliator.ModelSnapshot, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != 7 {
		t.Fatalf("decided %d", res.Decided)
	}
}

func TestSolveDeterministicInSeeds(t *testing.T) {
	inputs := make([]int, 16)
	for i := range inputs {
		inputs[i] = i
	}
	run := func() conciliator.Result[int] {
		res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
			conciliator.WithAlgorithmSeed(11), conciliator.WithAdversarySeed(22))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Decided != b.Decided || a.TotalSteps != b.TotalSteps {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSolveDifferentAdversarySeedsSameAlgorithmStreams(t *testing.T) {
	// Changing only the adversary seed must not fail the protocol.
	inputs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := conciliator.Solve(conciliator.ModelLinear, inputs,
			conciliator.WithAdversarySeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided < 1 || res.Decided > 8 {
			t.Fatalf("seed %d: decided %d", seed, res.Decided)
		}
	}
}

func TestSolveAllSchedules(t *testing.T) {
	inputs := make([]int, 12)
	for i := range inputs {
		inputs[i] = i % 3
	}
	for _, s := range []conciliator.Schedule{
		conciliator.ScheduleRoundRobin, conciliator.ScheduleRandom,
		conciliator.ScheduleStaggered, conciliator.ScheduleSplit,
		conciliator.ScheduleZipf, conciliator.ScheduleCrashHalf,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res, err := conciliator.Solve(conciliator.ModelRegister, inputs, conciliator.WithSchedule(s))
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range res.Values {
				if res.Finished[i] && v != res.Decided {
					t.Fatalf("agreement violated under %v", s)
				}
			}
		})
	}
}

func TestSolveConcurrentExecution(t *testing.T) {
	inputs := make([]int, 24)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := conciliator.Solve(conciliator.ModelLinear, inputs, conciliator.WithConcurrentExecution())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if res.Finished[i] && v != res.Decided {
			t.Fatal("agreement violated in concurrent mode")
		}
	}
}

func TestConsensusRunInputMismatch(t *testing.T) {
	c := conciliator.NewConsensus[int](conciliator.ModelRegister, 4)
	if _, err := c.Run([]int{1, 2}); err == nil {
		t.Fatal("expected input-count error")
	}
}

func TestNewConsensusUnknownModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	conciliator.NewConsensus[int](conciliator.Model(99), 4)
}

func TestModelString(t *testing.T) {
	if conciliator.ModelSnapshot.String() != "snapshot" {
		t.Fatal("snapshot name")
	}
	if conciliator.Model(0).String() != "Model(0)" {
		t.Fatal("unknown model name")
	}
}

func TestRunConciliatorValidityAndAgreementFlag(t *testing.T) {
	inputs := make([]int, 32)
	for i := range inputs {
		inputs[i] = i
	}
	agreedCount := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		res, err := conciliator.RunConciliator(conciliator.ModelRegister, inputs,
			conciliator.WithAlgorithmSeed(uint64(trial)*2+1),
			conciliator.WithAdversarySeed(uint64(trial)*2+2))
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[int]bool)
		for _, v := range inputs {
			set[v] = true
		}
		for i, v := range res.Values {
			if res.Finished[i] && !set[v] {
				t.Fatalf("trial %d: invalid output %d", trial, v)
			}
		}
		if res.Agreed {
			agreedCount++
		}
	}
	// eps = 1/2 floor with generous sampling slack.
	if rate := float64(agreedCount) / trials; rate < 0.5 {
		t.Fatalf("conciliator agreement rate %v below 1/2", rate)
	}
}

func TestRunConciliatorEmpty(t *testing.T) {
	_, err := conciliator.RunConciliator(conciliator.ModelSnapshot, []int{})
	if !errors.Is(err, conciliator.ErrNoInputs) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunConciliatorAllModels(t *testing.T) {
	inputs := []int{5, 5, 9, 9}
	for _, m := range conciliator.Models() {
		res, err := conciliator.RunConciliator(m, inputs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, v := range res.Values {
			if res.Finished[i] && v != 5 && v != 9 {
				t.Fatalf("%v: invalid output %d", m, v)
			}
		}
	}
}

func TestProposeFromCustomBody(t *testing.T) {
	// Advanced use: drive Propose from custom process bodies via Solve's
	// sibling API. Here we just check the exported Propose compiles and
	// works through Run.
	c := conciliator.NewConsensus[string](conciliator.ModelSnapshot, 3)
	res, err := c.Run([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != "a" && res.Decided != "b" && res.Decided != "c" {
		t.Fatalf("decided %q", res.Decided)
	}
}

func ExampleSolve() {
	inputs := []string{"commit", "commit", "abort", "commit"}
	res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
		conciliator.WithAlgorithmSeed(42),
		conciliator.WithAdversarySeed(7))
	if err != nil {
		panic(err)
	}
	agreed := true
	for i, v := range res.Values {
		if res.Finished[i] && v != res.Decided {
			agreed = false
		}
	}
	fmt.Println("all processes agreed:", agreed)
	// Output: all processes agreed: true
}

func TestWithMaxSlotsSurfacesBudgetError(t *testing.T) {
	inputs := make([]int, 8)
	for i := range inputs {
		inputs[i] = i
	}
	_, err := conciliator.Solve(conciliator.ModelRegister, inputs,
		conciliator.WithMaxSlots(3))
	if err == nil {
		t.Fatal("expected slot-budget error")
	}
}

func TestRunConciliatorConcurrent(t *testing.T) {
	inputs := make([]int, 16)
	for i := range inputs {
		inputs[i] = i % 4
	}
	res, err := conciliator.RunConciliator(conciliator.ModelSnapshot, inputs,
		conciliator.WithConcurrentExecution())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if res.Finished[i] && (v < 0 || v > 3) {
			t.Fatalf("invalid output %d", v)
		}
	}
}

func TestSolveCILBaselineLargeEnoughSlots(t *testing.T) {
	// The baseline spins; the default budget must accommodate it.
	inputs := make([]int, 64)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := conciliator.Solve(conciliator.ModelCILBaseline, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if res.Finished[i] && v != res.Decided {
			t.Fatal("agreement violated")
		}
	}
}

func TestResultStepAccountingConsistent(t *testing.T) {
	inputs := []int{1, 2, 3, 4, 5}
	res, err := conciliator.Solve(conciliator.ModelSnapshot, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var sum, max int64
	for _, s := range res.Steps {
		sum += s
		if s > max {
			max = s
		}
	}
	if sum != res.TotalSteps {
		t.Fatalf("sum of Steps %d != TotalSteps %d", sum, res.TotalSteps)
	}
	if max != res.MaxSteps {
		t.Fatalf("max of Steps %d != MaxSteps %d", max, res.MaxSteps)
	}
}
