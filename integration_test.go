package conciliator_test

// Integration tests: end-to-end flows across models, schedules, crash
// patterns, and value types, exercising the whole stack (facade ->
// consensus -> conciliators -> adopt-commit -> memory -> sim -> sched)
// in one place. The statistical checks use wide margins so they are
// stable across platforms; the exact bounds are measured by the
// experiment harness instead.

import (
	"fmt"
	"testing"
	"testing/quick"

	conciliator "github.com/oblivious-consensus/conciliator"
)

func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix skipped in -short mode")
	}
	schedules := []conciliator.Schedule{
		conciliator.ScheduleRoundRobin, conciliator.ScheduleRandom,
		conciliator.ScheduleStaggered, conciliator.ScheduleSplit,
		conciliator.ScheduleZipf, conciliator.ScheduleCrashHalf,
	}
	for _, model := range conciliator.Models() {
		for _, schedule := range schedules {
			model, schedule := model, schedule
			t.Run(fmt.Sprintf("%v/%v", model, schedule), func(t *testing.T) {
				t.Parallel()
				for trial := 0; trial < 5; trial++ {
					n := 3 + trial*7
					inputs := make([]int, n)
					for i := range inputs {
						inputs[i] = i % 5
					}
					res, err := conciliator.Solve(model, inputs,
						conciliator.WithSchedule(schedule),
						conciliator.WithAlgorithmSeed(uint64(trial)*100+1),
						conciliator.WithAdversarySeed(uint64(trial)*100+2),
					)
					if err != nil {
						t.Fatal(err)
					}
					finished := 0
					for i, v := range res.Values {
						if !res.Finished[i] {
							continue
						}
						finished++
						if v != res.Decided {
							t.Fatalf("agreement violated: %d vs %d", v, res.Decided)
						}
						if v < 0 || v >= 5 {
							t.Fatalf("validity violated: %d", v)
						}
					}
					if finished == 0 {
						t.Fatal("no process finished")
					}
				}
			})
		}
	}
}

func TestIntegrationQuickProperty(t *testing.T) {
	// Property-based end-to-end: any (n, seed pair, binary inputs)
	// yields valid agreement.
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(rawN uint8, algSeed, schedSeed uint64, pattern uint16) bool {
		n := int(rawN%12) + 2
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = int(pattern>>uint(i%16)) & 1
		}
		res, err := conciliator.Solve(conciliator.ModelRegister, inputs,
			conciliator.WithAlgorithmSeed(algSeed),
			conciliator.WithAdversarySeed(schedSeed))
		if err != nil {
			return false
		}
		if res.Decided != 0 && res.Decided != 1 {
			return false
		}
		for i, v := range res.Values {
			if res.Finished[i] && v != res.Decided {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n run skipped in -short mode")
	}
	const n = 2048
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := conciliator.Solve(conciliator.ModelSnapshot, inputs,
		conciliator.WithAlgorithmSeed(9), conciliator.WithAdversarySeed(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if res.Finished[i] && v != res.Decided {
			t.Fatal("agreement violated at n=2048")
		}
	}
	// O(log* n) expected individual steps: even the slowest process
	// should be far below n.
	if res.MaxSteps > 200 {
		t.Fatalf("worst process took %d steps at n=%d; expected polylog", res.MaxSteps, n)
	}
}

func TestIntegrationLinearTotalWorkLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n run skipped in -short mode")
	}
	const n = 2048
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	res, err := conciliator.Solve(conciliator.ModelLinear, inputs,
		conciliator.WithAlgorithmSeed(11), conciliator.WithAdversarySeed(12))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 3 + binary AC: total work stays linear-ish in n. Use a
	// generous constant (the adopt-commit hash detector costs ~131 steps
	// per propose, paid once per process per phase).
	if perProc := float64(res.TotalSteps) / n; perProc > 400 {
		t.Fatalf("total steps per process %v; expected bounded constant", perProc)
	}
}

func TestIntegrationStringCommands(t *testing.T) {
	cmds := []string{"put a=1", "put b=2", "del a", "put a=3", "get b"}
	res, err := conciliator.Solve(conciliator.ModelRegister, cmds)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cmds {
		if c == res.Decided {
			found = true
		}
	}
	if !found {
		t.Fatalf("decided %q not a proposed command", res.Decided)
	}
}

func TestIntegrationStructValues(t *testing.T) {
	type command struct {
		Op  string
		Key int
	}
	inputs := []command{{"put", 1}, {"del", 2}, {"put", 3}, {"get", 1}}
	res, err := conciliator.Solve(conciliator.ModelSnapshot, inputs)
	if err != nil {
		t.Fatal(err)
	}
	valid := false
	for _, in := range inputs {
		if in == res.Decided {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decided %+v not an input", res.Decided)
	}
}

func TestIntegrationRepeatedSolvesIndependent(t *testing.T) {
	// Consensus objects are single-use; Solve must build fresh state
	// each time and never leak agreement across runs.
	for i := 0; i < 10; i++ {
		inputs := []int{i, i + 1, i + 2}
		res, err := conciliator.Solve(conciliator.ModelLinear, inputs,
			conciliator.WithAlgorithmSeed(uint64(i)),
			conciliator.WithAdversarySeed(uint64(i)+77))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided < i || res.Decided > i+2 {
			t.Fatalf("run %d decided %d", i, res.Decided)
		}
	}
}
