// Package conciliator is the public API of this repository: randomized
// shared-memory consensus against an oblivious adversary, implementing
// James Aspnes, "Faster Randomized Consensus with an Oblivious Adversary"
// (PODC 2012).
//
// The package exposes three consensus constructions (plus a pre-paper
// baseline), each assembled from a conciliator — a weak consensus object
// that guarantees termination and validity always, and agreement with
// constant probability — alternating with adopt-commit objects that
// detect agreement and make it safe to decide:
//
//   - ModelSnapshot: Algorithm 1, unit-cost snapshot model, O(log* n)
//     expected individual steps (Corollary 1).
//   - ModelRegister: Algorithm 2, plain multi-writer registers,
//     O(log log n + adopt-commit) expected individual steps
//     (Corollary 2).
//   - ModelLinear: Algorithm 3, registers, same individual bound with
//     O(n) expected total steps (Corollary 3).
//   - ModelCILBaseline: the Chor–Israeli–Li conciliator alone, the
//     pre-paper baseline with Theta(n) expected individual steps.
//
// # Quick start
//
//	inputs := []string{"red", "green", "blue", "blue"}
//	res, err := conciliator.Solve(conciliator.ModelRegister, inputs)
//	// res.Decided is one of the inputs; res.Values are all equal to it.
//
// Executions are simulations by default: a deterministic controlled
// scheduler plays the oblivious adversary, so results are reproducible
// given the two seeds. WithConcurrentExecution runs the processes as
// free goroutines instead (the Go runtime schedules; same algorithm
// code).
package conciliator

import (
	"errors"
	"fmt"

	core "github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// Proc is the handle protocol code receives for one process: its id, its
// private deterministic random stream, and the step gate to the
// adversary scheduler.
type Proc = sim.Proc

// Schedule names an oblivious-adversary schedule family.
type Schedule = sched.Kind

// Schedule families for WithSchedule.
const (
	ScheduleRoundRobin = sched.KindRoundRobin
	ScheduleRandom     = sched.KindRandom
	ScheduleStaggered  = sched.KindStaggered
	ScheduleSplit      = sched.KindSplit
	ScheduleZipf       = sched.KindZipf
	ScheduleCrashHalf  = sched.KindCrashHalf
)

// Model selects a consensus construction.
type Model int

const (
	// ModelSnapshot is Corollary 1: Algorithm 1 + snapshot adopt-commit.
	ModelSnapshot Model = iota + 1
	// ModelRegister is Corollary 2: Algorithm 2 + register adopt-commit.
	ModelRegister
	// ModelLinear is Corollary 3: Algorithm 3 + register adopt-commit.
	ModelLinear
	// ModelCILBaseline is the pre-paper Chor–Israeli–Li baseline.
	ModelCILBaseline
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ModelSnapshot:
		return "snapshot"
	case ModelRegister:
		return "register"
	case ModelLinear:
		return "linear"
	case ModelCILBaseline:
		return "cil-baseline"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Models lists all available models.
func Models() []Model {
	return []Model{ModelSnapshot, ModelRegister, ModelLinear, ModelCILBaseline}
}

// ErrNoInputs is returned when Solve is called with an empty input slice.
var ErrNoInputs = errors.New("conciliator: at least one input required")

type options struct {
	algSeed    uint64
	schedSeed  uint64
	schedule   Schedule
	concurrent bool
	maxSlots   int64
}

func defaultOptions() options {
	return options{
		algSeed:   1,
		schedSeed: 2,
		schedule:  ScheduleRandom,
	}
}

// Option customizes Solve, RunConciliator, and Consensus.Run.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithAlgorithmSeed fixes the seed of the processes' random streams.
func WithAlgorithmSeed(seed uint64) Option {
	return optionFunc(func(o *options) { o.algSeed = seed })
}

// WithAdversarySeed fixes the seed of the adversary's schedule. Keeping
// it independent of the algorithm seed is what makes the simulated
// adversary oblivious.
func WithAdversarySeed(seed uint64) Option {
	return optionFunc(func(o *options) { o.schedSeed = seed })
}

// WithSchedule selects the adversary's schedule family (default
// ScheduleRandom).
func WithSchedule(s Schedule) Option {
	return optionFunc(func(o *options) { o.schedule = s })
}

// WithConcurrentExecution runs processes as free goroutines instead of
// under the deterministic controlled scheduler. Results are then not
// reproducible, but the execution is a real concurrent Go program.
func WithConcurrentExecution() Option {
	return optionFunc(func(o *options) { o.concurrent = true })
}

// WithMaxSlots overrides the controlled scheduler's slot safety valve.
func WithMaxSlots(slots int64) Option {
	return optionFunc(func(o *options) { o.maxSlots = slots })
}

// Result reports one consensus execution.
type Result[V comparable] struct {
	// Values holds each process's decision; entries of unfinished
	// (crashed) processes are meaningless and flagged in Finished.
	Values []V
	// Finished reports which processes ran to completion.
	Finished []bool
	// Decided is the common decision of the finished processes.
	Decided V
	// Steps[i] is the number of shared-memory operations process i took.
	Steps []int64
	// TotalSteps is the sum of Steps.
	TotalSteps int64
	// MaxSteps is the largest per-process step count.
	MaxSteps int64
	// MeanPhases is the average number of conciliator/adopt-commit
	// phases per decided process.
	MeanPhases float64
}

// Solve runs one consensus execution among len(inputs) processes, where
// process i proposes inputs[i], and returns the common decision.
func Solve[V comparable](model Model, inputs []V, opts ...Option) (Result[V], error) {
	n := len(inputs)
	if n == 0 {
		return Result[V]{}, ErrNoInputs
	}
	c := NewConsensus[V](model, n)
	return c.Run(inputs, opts...)
}

// Consensus is a single-use consensus object: each of the n processes
// proposes exactly once, either through Run (simulated execution) or by
// calling Propose from protocol code that already holds a *Proc.
type Consensus[V comparable] struct {
	n int
	p *consensus.Protocol[V]
}

// NewConsensus builds a consensus object for n processes.
func NewConsensus[V comparable](model Model, n int) *Consensus[V] {
	var p *consensus.Protocol[V]
	switch model {
	case ModelSnapshot:
		p = consensus.NewSnapshot[V](n)
	case ModelRegister:
		p = consensus.NewRegister[V](n)
	case ModelLinear:
		p = consensus.NewLinear[V](n)
	case ModelCILBaseline:
		p = consensus.NewCILBaseline[V](n)
	default:
		panic(fmt.Sprintf("conciliator: unknown model %d", int(model)))
	}
	return &Consensus[V]{n: n, p: p}
}

// Propose runs the protocol for process p with the given input. Use this
// from custom process bodies; most callers want Run or Solve.
func (c *Consensus[V]) Propose(p *Proc, input V) V {
	return c.p.Propose(p, input)
}

// Run executes one full consensus among c's n processes with the given
// inputs.
func (c *Consensus[V]) Run(inputs []V, opts ...Option) (Result[V], error) {
	if len(inputs) != c.n {
		return Result[V]{}, fmt.Errorf("conciliator: %d inputs for %d processes", len(inputs), c.n)
	}
	outs, finished, res, err := execute(c.n, inputs, opts, func(p *Proc, input V) V {
		return c.p.Propose(p, input)
	})
	if err != nil {
		return Result[V]{}, err
	}
	out := Result[V]{
		Values:     outs,
		Finished:   finished,
		Steps:      res.Steps,
		TotalSteps: res.TotalSteps,
		MaxSteps:   res.MaxSteps(),
		MeanPhases: c.p.MeanPhases(),
	}
	for i, f := range finished {
		if f {
			out.Decided = outs[i]
			break
		}
	}
	return out, nil
}

// ConciliatorResult reports one conciliator (weak consensus) execution.
type ConciliatorResult[V comparable] struct {
	// Values holds each finished process's output.
	Values []V
	// Finished reports which processes ran to completion.
	Finished []bool
	// Agreed reports whether all finished outputs were equal. Unlike
	// consensus, a conciliator may legitimately report false; the paper
	// bounds how often.
	Agreed bool
	// Steps and TotalSteps mirror Result.
	Steps      []int64
	TotalSteps int64
}

// RunConciliator runs a single conciliator (not full consensus) of the
// given model among len(inputs) processes: termination and validity are
// guaranteed; agreement holds with the paper's per-model probability
// (1-eps for snapshot/register with eps = 1/2 here, 1/8 for linear, 3/4
// for the CIL baseline).
func RunConciliator[V comparable](model Model, inputs []V, opts ...Option) (ConciliatorResult[V], error) {
	n := len(inputs)
	if n == 0 {
		return ConciliatorResult[V]{}, ErrNoInputs
	}
	var c core.Interface[V]
	switch model {
	case ModelSnapshot:
		c = core.NewPriority[V](n, core.PriorityConfig{})
	case ModelRegister:
		c = core.NewSifter[V](n, core.SifterConfig{})
	case ModelLinear:
		c = core.NewEmbedded[V](n, core.EmbeddedConfig{})
	case ModelCILBaseline:
		c = core.NewCIL[V](n, core.CILConfig{})
	default:
		panic(fmt.Sprintf("conciliator: unknown model %d", int(model)))
	}
	outs, finished, res, err := execute(n, inputs, opts, func(p *Proc, input V) V {
		return c.Conciliate(p, input)
	})
	if err != nil {
		return ConciliatorResult[V]{}, err
	}
	out := ConciliatorResult[V]{
		Values:     outs,
		Finished:   finished,
		Agreed:     true,
		Steps:      res.Steps,
		TotalSteps: res.TotalSteps,
	}
	first := true
	var v V
	for i, o := range outs {
		if !finished[i] {
			continue
		}
		if first {
			v, first = o, false
		} else if o != v {
			out.Agreed = false
		}
	}
	return out, nil
}

// execute runs one body per process under the configured execution mode.
func execute[V comparable](n int, inputs []V, opts []Option, body func(p *Proc, input V) V) ([]V, []bool, sim.Result, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	cfg := sim.Config{AlgSeed: o.algSeed, MaxSlots: o.maxSlots}
	if o.concurrent {
		outs, res, err := sim.CollectConcurrent(n, cfg, func(p *Proc) V {
			return body(p, inputs[p.ID()])
		})
		return outs, res.Finished, res, err
	}
	src := sched.New(o.schedule, n, o.schedSeed)
	return sim.Collect(src, cfg, func(p *Proc) V {
		return body(p, inputs[p.ID()])
	})
}
