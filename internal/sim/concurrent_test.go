package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
)

func TestRunConcurrentRecoversPanic(t *testing.T) {
	const n = 8
	res, err := RunConcurrent(n, func(p *Proc) {
		p.Step()
		if p.ID() == 3 {
			panic("deliberate test panic")
		}
		p.Step()
	}, Config{AlgSeed: 11})
	if err == nil {
		t.Fatal("panicking process produced no error")
	}
	if !strings.Contains(err.Error(), "process 3") || !strings.Contains(err.Error(), "deliberate test panic") {
		t.Errorf("error %q does not name the process and panic value", err)
	}
	for pid, f := range res.Finished {
		if pid == 3 && f {
			t.Error("panicked process reported Finished=true")
		}
		if pid != 3 && !f {
			t.Errorf("healthy process %d reported Finished=false", pid)
		}
	}
	// The panicking process charged its pre-panic step; the rest took 2.
	if res.Steps[3] != 1 {
		t.Errorf("panicked process charged %d steps, want 1", res.Steps[3])
	}
	if res.TotalSteps != 2*n-1 {
		t.Errorf("TotalSteps = %d, want %d", res.TotalSteps, 2*n-1)
	}
}

func TestRunConcurrentRejectsFaultSchedules(t *testing.T) {
	fs, err := fault.NewSchedule(2, []fault.Event{{Kind: fault.Stutter, Pid: 0, Slot: 1, Arg: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunConcurrent(2, func(p *Proc) { p.Step() }, Config{AlgSeed: 1, Faults: fs})
	if !errors.Is(err, ErrConcurrentFaults) {
		t.Fatalf("err = %v, want ErrConcurrentFaults", err)
	}
}

func TestConcurrentRunnerReuseAcrossTrials(t *testing.T) {
	const n = 4
	r := NewConcurrentRunner(n, 0)
	defer r.Close()
	for trial := 0; trial < 5; trial++ {
		reg := memory.NewRegister[int]()
		res, err := r.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				reg.Write(p, p.ID())
				if _, ok := reg.Read(p); !ok {
					t.Error("register empty after own write")
				}
			}
		}, Config{AlgSeed: uint64(trial) + 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Counters and finished flags must reset between trials: exactly
		// this trial's steps, no carryover.
		if res.TotalSteps != n*20 {
			t.Fatalf("trial %d: TotalSteps = %d, want %d", trial, res.TotalSteps, n*20)
		}
		for pid, f := range res.Finished {
			if !f {
				t.Fatalf("trial %d: process %d unfinished", trial, pid)
			}
		}
	}
}

func TestConcurrentRunnerRecoversAfterPanicTrial(t *testing.T) {
	r := NewConcurrentRunner(2, 0)
	defer r.Close()
	if _, err := r.Run(func(p *Proc) {
		if p.ID() == 0 {
			panic("boom")
		}
	}, Config{AlgSeed: 1}); err == nil {
		t.Fatal("panic trial produced no error")
	}
	res, err := r.Run(func(p *Proc) { p.Step() }, Config{AlgSeed: 2})
	if err != nil {
		t.Fatalf("healthy trial after panic trial: %v", err)
	}
	if res.TotalSteps != 2 || !res.Finished[0] || !res.Finished[1] {
		t.Fatalf("healthy trial result corrupted: %+v", res)
	}
}

func TestConcurrentRunnerWorkerPoolSmallerThanN(t *testing.T) {
	// 16 wait-free processes over 4 workers: everything still runs to
	// completion with exact step accounting.
	const n, workers = 16, 4
	r := NewConcurrentRunner(n, workers)
	defer r.Close()
	if r.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", r.Workers(), workers)
	}
	reg := memory.NewRegister[int]()
	res, err := r.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			reg.Write(p, p.ID())
		}
	}, Config{AlgSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != n*50 {
		t.Fatalf("TotalSteps = %d, want %d", res.TotalSteps, n*50)
	}
	for pid, f := range res.Finished {
		if !f {
			t.Errorf("process %d unfinished", pid)
		}
	}
}

func TestConcurrentLockedMemorySelectable(t *testing.T) {
	// With LockedMemory the objects must latch the mutex representation:
	// a post-run probe through the plain Free context (which always takes
	// the locked path) observes the run's writes, proving both took the
	// same representation.
	reg := memory.NewRegister[int]()
	if _, err := RunConcurrent(4, func(p *Proc) {
		if p.LockFree() {
			t.Error("LockedMemory run handed out a lock-free context")
		}
		reg.Write(p, 7)
	}, Config{AlgSeed: 3, LockedMemory: true}); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Read(memory.Free); !ok || v != 7 {
		t.Fatalf("Free read after locked run = (%d, %v), want (7, true)", v, ok)
	}
}

func TestConcurrentLockFreeDefault(t *testing.T) {
	// Default concurrent runs are lock-free, and the latch is sticky:
	// later operations through a non-lock-free context still observe the
	// lock-free cell's state.
	reg := memory.NewRegister[int]()
	if _, err := RunConcurrent(4, func(p *Proc) {
		if !p.LockFree() {
			t.Error("default concurrent context is not lock-free")
		}
		reg.Write(p, p.ID()+1)
	}, Config{AlgSeed: 3}); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Read(memory.Free); !ok || v < 1 || v > 4 {
		t.Fatalf("Free read after lock-free run = (%d, %v), want one of the written values", v, ok)
	}
}
