package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrFlatFaults reports a fault schedule handed to the flat engine, which
// does not interpret fault events (use RunControlled for faulted runs).
var ErrFlatFaults = errors.New("sim: flat engine does not support fault schedules")

// FlatMachine is a protocol compiled to a flat state machine: per-process
// state lives in dense arrays owned by the machine, and the engine
// advances it one shared-memory operation at a time without coroutines.
//
// The contract mirrors the coroutine engine's observable behavior exactly:
//
//   - Init(pid, rng) is called once per process in increasing pid order
//     before any Step. It must perform every random draw the coroutine
//     body would make before its first shared-memory operation (persona
//     creation happens here), in the same order, from the same stream.
//     Init takes no modeled steps.
//   - Step(pid, rng) executes exactly one shared-memory operation for pid
//     and returns true when pid's execution is complete (the operation
//     just executed was its last). Randomness a process draws mid-run
//     (e.g. a fresh persona at a later consensus phase) must come from
//     rng at the position in pid's own stream where the coroutine body
//     would draw it.
//   - Every process performs at least one operation. (All protocols here
//     do; the coroutine engine additionally tolerates zero-step bodies.)
//
// Machines are single-run; callers reuse them across trials through their
// own Reset mechanisms.
type FlatMachine interface {
	Init(pid int, rng *xrand.Rand)
	Step(pid int, rng *xrand.Rand) bool
}

// FlatRunner drives FlatMachines under schedule sources with the same
// slot-level semantics as the coroutine driver (see drive): one operation
// per charged slot, uncharged no-op slots for finished or crashed
// processes (bulk-skipped via sched.Skipper when available), the same
// slot budget, and the same RNG fork layout. A runner is reusable across
// runs and, with RunInto, allocation-free in steady state; it is not safe
// for concurrent use.
//
// The type parameter devirtualizes the per-slot Step call when
// instantiated with a concrete machine type, keeping interface dispatch
// out of the hot path.
type FlatRunner[M FlatMachine] struct {
	done    []bool
	steps   []int64
	rngs    []xrand.Rand
	doneCnt int

	// Skip-predicate state, referenced by the pre-built closure so runs
	// do not allocate. ca is the current run's crash-aware source view.
	ca       sched.CrashAware
	batch    int
	skipPred func(pid int) bool
}

// NewFlatRunner returns a reusable runner for machines of type M.
func NewFlatRunner[M FlatMachine]() *FlatRunner[M] {
	fr := &FlatRunner[M]{}
	// Built once so the hot loop never allocates a closure. Mirrors
	// drive's skipPred, including the skipBatch bound (see drive for why
	// the bound is a correctness requirement under crash cutoffs).
	fr.skipPred = func(pid int) bool {
		if fr.batch >= skipBatch || !(fr.done[pid] || !fr.alive(pid)) {
			return false
		}
		fr.batch++
		return true
	}
	return fr
}

func (fr *FlatRunner[M]) alive(pid int) bool { return fr.ca == nil || fr.ca.Alive(pid) }

func (fr *FlatRunner[M]) liveDone(n int) bool {
	if fr.doneCnt == n {
		return true
	}
	if fr.ca == nil {
		return false
	}
	for pid := 0; pid < n; pid++ {
		if !fr.done[pid] && fr.ca.Alive(pid) {
			return false
		}
	}
	return true
}

// skipBatch bounds uncharged-slot skipping per SkipWhile call; it must
// match the coroutine driver's bound so both engines consume schedule
// sources identically. (They do regardless of the bound — SkipWhile
// leaves the schedule unchanged — but sharing the constant keeps the
// engines structurally parallel.)
const skipBatch = 1024

// Run executes one controlled run of m under src, allocating fresh
// Result slices. See RunInto for the allocation-free form.
func (fr *FlatRunner[M]) Run(src sched.Source, m M, cfg Config) (Result, error) {
	var res Result
	err := fr.RunInto(src, m, cfg, &res)
	return res, err
}

// RunInto is Run writing into a caller-owned Result, reusing its slices
// when capacity allows. In steady state (reused runner, reused Result,
// machine and source that do not allocate) a run performs no heap
// allocation.
func (fr *FlatRunner[M]) RunInto(src sched.Source, m M, cfg Config, res *Result) error {
	if cfg.Faults != nil {
		return ErrFlatFaults
	}
	n := src.N()
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = defaultMaxSlots
	}

	if cap(fr.done) < n {
		fr.done = make([]bool, n)
		fr.steps = make([]int64, n)
		fr.rngs = make([]xrand.Rand, n)
	}
	fr.done = fr.done[:n]
	fr.steps = fr.steps[:n]
	fr.rngs = fr.rngs[:n]
	for i := 0; i < n; i++ {
		fr.done[i] = false
		fr.steps[i] = 0
	}
	fr.doneCnt = 0

	// Identical stream layout to RunControlled: one root reseed, then one
	// named fork per process in pid order (each fork consumes one draw of
	// the root stream).
	var root xrand.Rand
	root.Reseed(cfg.AlgSeed)
	for i := 0; i < n; i++ {
		root.ForkNamedInto(uint64(i), &fr.rngs[i])
	}
	// Priming: all pre-first-step randomness, in pid order, matching the
	// coroutine priming loop.
	for pid := 0; pid < n; pid++ {
		m.Init(pid, &fr.rngs[pid])
	}

	fr.ca, _ = src.(sched.CrashAware)
	skipper, _ := src.(sched.Skipper)

	metered := mStepNanos != nil
	var (
		slots  int64
		err    error
		grants int64
		t0     time.Time
	)

	for {
		if fr.liveDone(n) {
			break
		}
		if slots >= maxSlots {
			slots = maxSlots
			err = fmt.Errorf("%w (budget %d)", ErrSlotBudget, maxSlots)
			break
		}
		if skipper != nil {
			fr.batch = 0
			slots += skipper.SkipWhile(fr.skipPred)
			if slots >= maxSlots {
				if slots > maxSlots {
					slots = maxSlots
				}
				continue
			}
		}
		pid := src.Next()
		if pid == sched.Exhausted {
			if !fr.liveDone(n) {
				err = ErrScheduleExhausted
			}
			break
		}
		slots++
		if fr.done[pid] || !fr.alive(pid) {
			// Uncharged no-op slot, per the model.
			continue
		}
		if metered && grants == 0 {
			t0 = time.Now()
		}
		fr.steps[pid]++
		if m.Step(pid, &fr.rngs[pid]) {
			fr.done[pid] = true
			fr.doneCnt++
		}
		if metered {
			if grants++; grants >= meterBatch {
				mWindowSize.Observe(grants)
				mStepNanos.Observe(time.Since(t0).Nanoseconds() / grants)
				grants = 0
			}
		}
	}
	if metered && grants > 0 {
		mWindowSize.Observe(grants)
		mStepNanos.Observe(time.Since(t0).Nanoseconds() / grants)
	}

	if cap(res.Steps) < n {
		res.Steps = make([]int64, n)
	}
	if cap(res.Finished) < n {
		res.Finished = make([]bool, n)
	}
	res.Steps = res.Steps[:n]
	res.Finished = res.Finished[:n]
	res.TotalSteps = 0
	res.Slots = slots
	res.Restarts = 0
	res.Faults = fault.Counts{}
	for pid := 0; pid < n; pid++ {
		res.Steps[pid] = fr.steps[pid]
		res.TotalSteps += fr.steps[pid]
		res.Finished[pid] = fr.done[pid]
	}
	observeRun(*res, true)
	return err
}

// RunFlat executes one controlled run of m under src with a throwaway
// runner; reuse a FlatRunner for trial loops.
func RunFlat(src sched.Source, m FlatMachine, cfg Config) (Result, error) {
	return NewFlatRunner[FlatMachine]().Run(src, m, cfg)
}
