// Concurrent execution harness: free-running goroutines over the
// lock-free (or, on request, locked) memory substrate, with the Go
// runtime as the weak adversary.
//
// ConcurrentRunner is the reusable form: it spawns its worker goroutines
// once and runs many trials over them, so a benchmark or stress sweep
// pays goroutine/stack setup once rather than n times per trial. Step
// counters live in a cache-line-padded slab — one line per process — so
// per-step accounting never write-shares a cache line across cores.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrConcurrentFaults reports a fault schedule handed to a concurrent
// run. Fault injection is defined over the controlled engine's
// deterministic slot clock; a concurrent run has no such clock, so
// rather than silently running unfaulted the run is refused.
var ErrConcurrentFaults = errors.New("sim: fault schedules require the controlled engine (concurrent runs have no slot clock)")

// cacheLine is the assumed coherence-line size. 64 bytes covers x86-64
// and most arm64 parts; on 128-byte-line machines adjacent counters
// still share at worst one neighbor, no worse than the unpadded layout.
const cacheLine = 64

// padSteps is one process's concurrent step counter, padded out to a
// full cache line so neighboring processes' counters never false-share.
type padSteps struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// ConcurrentRunner executes trials of n free-running processes, reusing
// its worker goroutines, Proc values, and padded step-counter slab
// across trials. It is single-client: one Run at a time. Close releases
// the workers; a runner is cheap enough to create per benchmark or test,
// but creating one per trial forfeits the reuse that makes it fast.
type ConcurrentRunner struct {
	n       int
	workers int
	procs   []*Proc
	steps   []padSteps

	work chan int // process indices for the current trial
	wg   sync.WaitGroup

	body     Body
	finished []bool

	panicMu    sync.Mutex
	panicErr   error
	panicProcs []int
}

// NewConcurrentRunner returns a runner for n-process trials backed by
// `workers` goroutines (workers <= 0 or > n means one per process).
// Running with workers < n multiplexes process bodies over the pool —
// useful for scaling n beyond what GOMAXPROCS can productively overlap —
// and is safe for the wait-free protocols in this repository; a body
// that spin-waits on another process's write could livelock when its
// peer has no worker to run on, so such bodies need workers == n.
func NewConcurrentRunner(n, workers int) *ConcurrentRunner {
	if n <= 0 {
		panic("sim: ConcurrentRunner needs n > 0")
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	r := &ConcurrentRunner{
		n:        n,
		workers:  workers,
		procs:    make([]*Proc, n),
		steps:    make([]padSteps, n),
		work:     make(chan int),
		finished: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		r.procs[i] = &Proc{id: i, conc: &r.steps[i].n}
	}
	for w := 0; w < workers; w++ {
		go r.worker()
	}
	return r
}

// worker pulls process indices and runs the current trial's body on
// them, recovering panics so one broken process body reports an error
// instead of tearing down the whole trial runner.
func (r *ConcurrentRunner) worker() {
	for idx := range r.work {
		r.runOne(idx)
	}
}

func (r *ConcurrentRunner) runOne(idx int) {
	defer r.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			r.panicMu.Lock()
			if r.panicErr == nil {
				r.panicErr = fmt.Errorf("sim: process %d panicked: %v", idx, rec)
			}
			r.panicProcs = append(r.panicProcs, idx)
			r.panicMu.Unlock()
		}
	}()
	r.body(r.procs[idx])
	// One worker owns idx per trial, and Run reads finished only after
	// wg.Wait, so this needs no atomicity.
	r.finished[idx] = true
}

// Run executes one trial: every process body to completion (or panic).
// The returned error is the first panic, if any; the panicking process
// reports Finished=false while the others still run to completion and
// report their steps. Fault-configured runs are refused with
// ErrConcurrentFaults.
func (r *ConcurrentRunner) Run(body Body, cfg Config) (Result, error) {
	if cfg.Faults != nil {
		return Result{}, ErrConcurrentFaults
	}
	var root xrand.Rand
	root.Reseed(cfg.AlgSeed)
	for i := 0; i < r.n; i++ {
		p := r.procs[i]
		root.ForkNamedInto(uint64(i), &p.rng)
		p.lockfree = !cfg.LockedMemory
		if p.scratch != nil {
			clear(p.scratch)
		}
		r.steps[i].n.Store(0)
		r.finished[i] = false
	}
	r.body = body
	r.panicErr = nil
	r.panicProcs = r.panicProcs[:0]
	r.wg.Add(r.n)
	for i := 0; i < r.n; i++ {
		r.work <- i
	}
	r.wg.Wait()

	res := Result{
		Steps:    make([]int64, r.n),
		Finished: make([]bool, r.n),
	}
	for i := 0; i < r.n; i++ {
		res.Steps[i] = r.steps[i].n.Load()
		res.TotalSteps += res.Steps[i]
		res.Finished[i] = r.finished[i]
	}
	observeRun(res, false)
	return res, r.panicErr
}

// N returns the number of processes per trial.
func (r *ConcurrentRunner) N() int { return r.n }

// Workers returns the size of the worker pool.
func (r *ConcurrentRunner) Workers() int { return r.workers }

// Close releases the worker goroutines. The runner must be idle.
func (r *ConcurrentRunner) Close() { close(r.work) }

// RunConcurrent executes n copies of body as free-running goroutines and
// waits for all of them. The Go scheduler plays the adversary; since it
// cannot observe the processes' private RNG streams, it is
// (heuristically) a weak adversary in the paper's sense. One-shot
// convenience over ConcurrentRunner — sweeps that run many trials should
// hold a runner instead.
func RunConcurrent(n int, body Body, cfg Config) (Result, error) {
	r := NewConcurrentRunner(n, 0)
	defer r.Close()
	return r.Run(body, cfg)
}
