// Package sim executes n process bodies against the shared-memory
// substrate under either of two execution modes:
//
//   - Controlled: a deterministic scheduler drives processes one
//     shared-memory operation at a time following a sched.Source. The
//     resulting execution is a pure function of (algorithm seed, schedule
//     source), operations never overlap in real time, and per-process step
//     counts are exact. This is the mode every experiment uses and is the
//     direct implementation of the paper's model: at each slot the next
//     process in the schedule executes one operation of its choosing, and
//     slots allocated to finished processes are uncharged no-ops
//     (Section 1.1).
//
//   - Concurrent: processes run as free goroutines over the same
//     linearizable objects, with the Go runtime as the (weak, effectively
//     content-oblivious) scheduler. By default the shared objects run on
//     their lock-free representations (hardware CAS instead of mutexes;
//     see memory.LockFreer and Config.LockedMemory), so this mode
//     measures real multi-core throughput. Used by the examples, the
//     -race tests, and the concurrent benchmarks; ConcurrentRunner (in
//     concurrent.go) is the reusable multi-trial harness behind
//     RunConcurrent.
//
// Process bodies receive a *Proc, which carries the process id, a private
// deterministic RNG stream, and the step gate implementing memory.Context.
//
// # Controlled-mode execution engine
//
// Each process body runs inside an iter.Pull coroutine. The driver is the
// adversary loop: it draws one schedule slot at a time from the source
// (resolving uncharged no-op slots in bulk when the source supports
// sched.Skipper) and resumes the scheduled process's coroutine, which
// executes exactly one shared-memory operation and parks at its next
// Step. A coroutine switch is a direct register-level transfer that never
// goes through the goroutine scheduler, so one simulated step costs far
// less than the park/wake round trip of a channel-based engine.
//
// The coroutine engine also makes the run sequential *by construction*:
// at any instant exactly one of {driver, some process} is running, and
// every switch is a synchronization point. That invariant is what lets
// the memory substrate elide its mutexes in exclusive mode (see
// Proc.Exclusive and the memory package): no two processes of a
// controlled run can ever touch a shared object concurrently.
//
// Run state (Proc values, done flags, scratch buffers) is pooled across
// runs via sync.Pool, so the -parallel trial runner's steady state does
// not allocate per trial beyond the Result slices handed to the caller.
package sim

import (
	"errors"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrScheduleExhausted reports that a finite schedule ended before every
// live process finished.
var ErrScheduleExhausted = errors.New("sim: schedule exhausted before all processes finished")

// ErrSlotBudget reports that the safety valve on total schedule slots
// fired, which almost always means a protocol failed to terminate.
var ErrSlotBudget = errors.New("sim: slot budget exceeded")

// meterBatch is the number of granted steps the driver amortizes each
// step-latency observation over when metrics are enabled: two clock reads
// per batch instead of two per step.
const meterBatch = 256

// lockedSubstrate inverts the exclusive-substrate toggle so the zero
// value means "exclusive mode on", the default.
var lockedSubstrate atomic.Bool

// SetExclusiveSubstrate enables (on=true, the default) or disables the
// exclusive memory substrate for controlled runs started after the call,
// returning the previous setting. With it disabled, controlled runs use
// the same mutex-guarded object implementations as concurrent mode —
// useful for cross-mode equivalence tests and for debugging under -race.
func SetExclusiveSubstrate(on bool) bool {
	prev := !lockedSubstrate.Load()
	lockedSubstrate.Store(!on)
	return prev
}

// procAborted unwinds a process coroutine whose modeled execution ended
// before the body returned (crashed, schedule exhausted, or budget
// fired). It is recovered at the coroutine boundary; body defers run.
type procAborted struct{}

// runState is the pooled per-run state of one controlled run: the
// process handles and the done bookkeeping the driver maintains. Exactly
// one goroutine owns a runState at a time.
type runState struct {
	procs   []*Proc
	done    []bool
	doneCnt int
}

var statePool sync.Pool

// getState returns a runState with capacity for n processes, reusing a
// pooled one when available.
func getState(n int) *runState {
	rs, _ := statePool.Get().(*runState)
	if rs == nil {
		rs = &runState{}
	}
	for len(rs.procs) < n {
		rs.procs = append(rs.procs, &Proc{})
	}
	if cap(rs.done) < n {
		rs.done = make([]bool, n)
	}
	rs.done = rs.done[:n]
	for i := range rs.done {
		rs.done[i] = false
	}
	rs.doneCnt = 0
	return rs
}

// putState returns a runState to the pool. Callers must not retain any
// *Proc from it. Coroutine handles are dropped so pooled state does not
// pin finished bodies, and scratch arenas are cleared here rather than at
// next reuse: a pooled scratch map is keyed by the finished run's shared
// objects, so keeping its entries would pin that run's object graph (and
// every buffer hanging off it) for as long as the state sits in the pool.
// The map storage itself is kept — clearing preserves buckets, so the
// next run's first scans still find a warm map.
func putState(rs *runState, n int) {
	for i := 0; i < n; i++ {
		p := rs.procs[i]
		p.next, p.stop, p.yield = nil, nil, nil
		p.inj = nil
		if p.scratch != nil {
			clear(p.scratch)
		}
	}
	statePool.Put(rs)
}

// Proc is the handle a process body uses to interact with the simulation.
// It implements memory.Context: every shared-memory operation calls Step,
// which in controlled mode parks the coroutine until the adversary
// schedules the process and always charges one step.
type Proc struct {
	id         int
	rng        xrand.Rand
	controlled bool
	exclusive  bool

	// lockfree reports whether this process's shared-memory operations
	// should latch objects onto the lock-free (CAS/atomic.Pointer)
	// representations. Set only for concurrent-mode processes, and only
	// while the run's Config keeps LockedMemory off.
	lockfree bool

	// inj is the run's fault injector, nil for unfaulted runs. Proc
	// delegates the memory.Faulter capability to it, adding the pid.
	inj *fault.Injector

	// incarnation counts crash-recovery restarts of this process within
	// the current run; it decorrelates the RNG stream of each rebirth.
	incarnation uint32

	// steps is the controlled-mode step counter. It is written only
	// inside the process's own coroutine and read by the driver, and
	// every coroutine switch is a synchronization point, so it needs no
	// atomicity. Concurrent mode uses conc instead: a pointer into the
	// runner's cache-line-padded counter slab, so processes hammering
	// their own counters on different cores never write-share a line.
	steps int64
	conc  *atomic.Int64

	// Controlled-mode coroutine hooks. yield parks the coroutine inside
	// Step; next and stop are the driver's handles on it.
	yield func(struct{}) bool
	next  func() (struct{}, bool)
	stop  func()

	// scratch is the per-process scratch arena: reusable buffers keyed
	// by shared object, handed out through the memory.Scratcher
	// capability so hot-path Scans allocate only on first use.
	scratch map[any]any
}

var _ memory.Context = (*Proc)(nil)
var _ memory.Scratcher = (*Proc)(nil)
var _ memory.Faulter = (*Proc)(nil)
var _ memory.LockFreer = (*Proc)(nil)

// ID returns the process id in [0, n).
func (p *Proc) ID() int { return p.id }

// Rng returns the process's private random stream. The stream derives
// only from the algorithm seed, never from the schedule, so the adversary
// is oblivious to it.
func (p *Proc) Rng() *xrand.Rand { return &p.rng }

// Steps returns the number of shared-memory steps charged so far.
func (p *Proc) Steps() int64 {
	if p.controlled {
		return p.steps
	}
	return p.conc.Load()
}

// Step implements memory.Context.
func (p *Proc) Step() {
	if p.controlled {
		if !p.yield(struct{}{}) {
			// The modeled execution is over and this process will never
			// be scheduled again; unwind the coroutine (body defers run,
			// and the sentinel is recovered at the coroutine boundary).
			panic(procAborted{})
		}
		p.steps++
		return
	}
	p.conc.Add(1)
}

// Exclusive implements memory.Context. It reports whether shared objects
// may skip their mutexes for this process's operations: true only in
// controlled mode (where the coroutine engine makes execution sequential
// by construction) and while the exclusive substrate is enabled.
func (p *Proc) Exclusive() bool { return p.exclusive }

// LockFree implements memory.LockFreer: concurrent-mode processes direct
// shared objects onto the lock-free CAS implementations unless the run
// asked for the locked substrate (Config.LockedMemory). Controlled-mode
// processes always report false.
func (p *Proc) LockFree() bool { return p.lockfree }

// ScratchMap implements memory.Scratcher, exposing the per-process
// scratch arena shared objects use to reuse buffers across operations.
func (p *Proc) ScratchMap() map[any]any {
	if p.scratch == nil {
		p.scratch = make(map[any]any)
	}
	return p.scratch
}

// memory.Faulter delegation: the memory substrate consults these on
// every operation while faults are armed process-wide; Proc adds its pid
// and forwards to the run's injector. FaultActive is the per-run gate —
// false for every unfaulted run, so a faulted run elsewhere in the
// process does not perturb this one.

// FaultActive implements memory.Faulter.
func (p *Proc) FaultActive() bool { return p.inj != nil }

// FaultOnWrite implements memory.Faulter.
func (p *Proc) FaultOnWrite(key any, v any) { p.inj.OnWrite(key, v) }

// FaultOnRead implements memory.Faulter.
func (p *Proc) FaultOnRead(key any) (any, bool) { return p.inj.ReadFault(p.id, key) }

// FaultScanDepth implements memory.Faulter.
func (p *Proc) FaultScanDepth(obj any) int { return p.inj.ScanDepth(p.id, obj) }

// FaultStaleAt implements memory.Faulter.
func (p *Proc) FaultStaleAt(key any, depth int) (any, bool) { return p.inj.StaleAt(key, depth) }

// procSeq wraps body as the coroutine sequence for p. The first resume
// runs the body to its first Step; every later resume executes exactly
// one operation. The procAborted sentinel is recovered here so stop()
// returns cleanly to the driver.
func procSeq(p *Proc, body Body) iter.Seq[struct{}] {
	return func(yield func(struct{}) bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAborted); !ok {
					panic(r)
				}
			}
		}()
		p.yield = yield
		body(p)
	}
}

// Config parameterizes a run.
type Config struct {
	// AlgSeed seeds the per-process RNG streams. Two runs with equal
	// AlgSeed and equal schedules are identical.
	AlgSeed uint64

	// MaxSlots bounds the number of schedule slots consumed in controlled
	// mode; exceeding it aborts the run with ErrSlotBudget. Zero means
	// the default of 1 << 26.
	MaxSlots int64

	// Faults is an optional fault schedule (see internal/fault). Non-nil
	// schedules are interpreted by controlled runs only: weakened
	// register semantics, stutters, stalls, and crash-recovery restarts
	// fire at the deterministic clocks the schedule names. Concurrent
	// runs refuse them with ErrConcurrentFaults rather than silently
	// running unfaulted.
	Faults *fault.Schedule

	// LockedMemory forces a concurrent run's processes onto the
	// mutex-guarded object paths instead of the lock-free substrate —
	// the pre-lock-free behavior, kept selectable for cross-substrate
	// equivalence tests and benchmarks. Controlled runs ignore it (their
	// substrate is chosen by SetExclusiveSubstrate).
	LockedMemory bool
}

const defaultMaxSlots = 1 << 26

// Process-wide throughput counters, aggregated across every completed run.
// They exist so harnesses (consensusbench's -bench-json) can report
// modeled steps/sec and slots/sec per experiment without threading every
// Result back up through the experiment tables.
var (
	totalStepsRun atomic.Int64
	totalSlotsRun atomic.Int64
)

// Counters returns the process-wide totals of modeled shared-memory steps
// and schedule slots consumed by completed runs (controlled slots only;
// concurrent runs contribute steps). Sample it before and after a
// workload to get the workload's totals.
func Counters() (steps, slots int64) {
	return totalStepsRun.Load(), totalSlotsRun.Load()
}

// Cached metrics instruments; all nil (free no-ops) until a registry is
// installed. The step-latency histogram records wall nanoseconds per
// modeled step, amortized over batches of up to meterBatch granted steps:
// the driver times the batch and divides by its grant count, which costs
// two clock reads per batch and so stays off the step hot path entirely.
// The window histogram records the grant count of each timed batch.
var (
	mRuns       *metrics.Counter
	mSteps      *metrics.Counter
	mSlots      *metrics.Counter
	mRunSteps   *metrics.Histogram
	mRunSlots   *metrics.Histogram
	mWindowSize *metrics.Histogram
	mStepNanos  *metrics.Histogram
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mRuns = r.Counter("sim.runs")
		mSteps = r.Counter("sim.steps")
		mSlots = r.Counter("sim.slots")
		mRunSteps = r.Histogram("sim.run_steps")
		mRunSlots = r.Histogram("sim.run_slots")
		mWindowSize = r.Histogram("sim.window_slots")
		mStepNanos = r.Histogram("sim.step_latency_ns")
	})
}

// observeRun records one completed run into the process-wide counters
// and, when enabled, the metrics registry.
func observeRun(res Result, controlled bool) {
	totalStepsRun.Add(res.TotalSteps)
	if controlled {
		totalSlotsRun.Add(res.Slots)
	}
	if mRuns == nil {
		return
	}
	mRuns.Inc()
	mSteps.Add(res.TotalSteps)
	mRunSteps.Observe(res.TotalSteps)
	if controlled {
		mSlots.Add(res.Slots)
		mRunSlots.Observe(res.Slots)
	}
}

// Result reports what happened during a run.
type Result struct {
	// Steps[i] is the number of shared-memory operations process i
	// executed.
	Steps []int64
	// TotalSteps is the sum of Steps.
	TotalSteps int64
	// Slots is the number of schedule slots consumed, including uncharged
	// no-op slots for finished processes (controlled mode only).
	Slots int64
	// Finished[i] reports whether process i ran to completion. Processes
	// crashed by the schedule never finish. A process restarted by a
	// crash-recovery fault reports its final incarnation's outcome.
	Finished []bool
	// Restarts is the number of crash-recovery restarts delivered
	// (faulted controlled runs only).
	Restarts int64
	// Faults counts the faults actually delivered during the run
	// (faulted controlled runs only).
	Faults fault.Counts
}

// MaxSteps returns the maximum per-process step count (the individual
// step complexity of the execution).
func (r Result) MaxSteps() int64 {
	var max int64
	for _, s := range r.Steps {
		if s > max {
			max = s
		}
	}
	return max
}

// Body is a process body: protocol code executed by process p.
type Body func(p *Proc)

// RunControlled executes n copies of body under the given schedule. It
// returns once every live process has finished, the schedule is exhausted
// (finite schedules), or the slot budget fires.
func RunControlled(src sched.Source, body Body, cfg Config) (Result, error) {
	n := src.N()
	var inj *fault.Injector
	if cfg.Faults != nil {
		var err error
		inj, err = fault.NewInjector(cfg.Faults, n)
		if err != nil {
			return Result{}, err
		}
		memory.ArmFaults()
		defer memory.DisarmFaults()
	}
	rs := getState(n)
	exclusive := !lockedSubstrate.Load()
	var root xrand.Rand
	root.Reseed(cfg.AlgSeed)
	for i := 0; i < n; i++ {
		p := rs.procs[i]
		p.id = i
		root.ForkNamedInto(uint64(i), &p.rng)
		p.controlled = true
		p.exclusive = exclusive
		p.steps = 0
		p.inj = inj
		p.incarnation = 0
		if p.scratch != nil {
			clear(p.scratch)
		}
		p.next, p.stop = iter.Pull(procSeq(p, body))
	}

	// If a body panics, the panic propagates out of next() into drive and
	// through here; reclaim the remaining parked coroutines but do not
	// pool the (possibly inconsistent) state.
	completed := false
	defer func() {
		if !completed {
			for i := 0; i < n; i++ {
				rs.procs[i].stop()
			}
		}
	}()

	res, err := drive(src, rs, cfg, body, inj)

	// Reclaim processes still parked at a Step: stop makes their pending
	// yield return false, unwinding the coroutine through its defers.
	for i := 0; i < n; i++ {
		rs.procs[i].stop()
	}
	observeRun(res, true)
	completed = true
	putState(rs, n)
	return res, err
}

// restartProc delivers a crash-recovery fault to pid: the current
// incarnation's coroutine is unwound (amnesia — all local state is
// lost), and the body restarts from the top with a fresh private RNG
// stream decorrelated by the incarnation count. Shared writes persist,
// cumulative step counts persist; a process that had finished becomes
// unfinished until its new incarnation completes.
func restartProc(rs *runState, pid int, body Body, algSeed uint64) {
	p := rs.procs[pid]
	p.stop()
	p.incarnation++
	var root xrand.Rand
	root.Reseed(algSeed)
	root.ForkNamedInto(uint64(pid)|uint64(p.incarnation)<<32, &p.rng)
	if p.scratch != nil {
		clear(p.scratch)
	}
	p.next, p.stop = iter.Pull(procSeq(p, body))
	if _, ok := p.next(); !ok {
		// The reborn body finished without taking a step.
		if !rs.done[pid] {
			rs.done[pid] = true
			rs.doneCnt++
		}
		return
	}
	if rs.done[pid] {
		rs.done[pid] = false
		rs.doneCnt--
	}
}

// drive is the adversary loop. It consumes schedule slots one at a time —
// resolving uncharged no-op slots (finished or crashed processes) in bulk
// when the source supports sched.Skipper — and resumes the scheduled
// process's coroutine for exactly one operation per charged slot.
func drive(src sched.Source, rs *runState, cfg Config, body Body, inj *fault.Injector) (Result, error) {
	procs := rs.procs
	n := src.N()
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = defaultMaxSlots
	}
	var (
		slots int64
		err   error
	)

	// Prime every coroutine: run each body to its first Step (or to
	// completion, for bodies that never take a step). Code before the
	// first Step touches nothing shared — every shared-memory operation
	// starts by stepping — so priming order is unobservable.
	for pid := 0; pid < n; pid++ {
		if _, ok := procs[pid].next(); !ok {
			rs.done[pid] = true
			rs.doneCnt++
		}
	}

	ca, _ := src.(sched.CrashAware)
	alive := func(pid int) bool { return ca == nil || ca.Alive(pid) }
	liveDone := func() bool {
		if rs.doneCnt == n {
			return true
		}
		if ca == nil {
			// Without crashes every process eventually finishes, so the
			// count alone decides — no O(n) scan.
			return false
		}
		for pid := 0; pid < n; pid++ {
			if !rs.done[pid] && ca.Alive(pid) {
				return false
			}
		}
		return true
	}

	skipper, _ := src.(sched.Skipper)
	if inj != nil {
		// Slot-addressed fault events must observe every slot index, so
		// bulk no-op skipping is off for faulted runs (the same trade
		// trace.RecordingSource makes to see every slot).
		skipper = nil
	}
	// skipPred accepts uncharged no-op slots, bounded to skipBatch per
	// SkipWhile call. The bound matters for correctness, not just
	// fairness: a crash cutoff can pass in the middle of a skipped run,
	// at which point every pid the source still emits may be a no-op and
	// an unbounded skip would never return — the driver must get control
	// back to re-evaluate liveDone. A pid rejected by the bound is
	// stashed by the source, re-delivered by the next Next, and handled
	// as an ordinary no-op slot, so the schedule is unchanged.
	const skipBatch = 1024
	batch := 0
	skipPred := func(pid int) bool {
		if batch >= skipBatch || !(rs.done[pid] || !alive(pid)) {
			return false
		}
		batch++
		return true
	}

	metered := mStepNanos != nil
	var (
		grants int64
		t0     time.Time
	)

	for {
		if inj != nil {
			// Deliver process faults due at the current slot clock.
			// Restarts run before the liveDone check because a reborn
			// process can un-finish the run.
			inj.Advance(slots)
			for {
				pid, ok := inj.TakeRestart()
				if !ok {
					break
				}
				if alive(pid) {
					// Schedule-level crashes are permanent: a pid the
					// adversary crashed does not recover.
					restartProc(rs, pid, body, cfg.AlgSeed)
				}
			}
		}
		if liveDone() {
			break
		}
		if slots >= maxSlots {
			slots = maxSlots
			err = fmt.Errorf("%w (budget %d)", ErrSlotBudget, maxSlots)
			break
		}
		if skipper != nil {
			batch = 0
			slots += skipper.SkipWhile(skipPred)
			if slots >= maxSlots {
				if slots > maxSlots {
					slots = maxSlots
				}
				continue
			}
		}
		pid := src.Next()
		if pid == sched.Exhausted {
			if !liveDone() {
				err = ErrScheduleExhausted
			}
			break
		}
		slots++
		if rs.done[pid] || !alive(pid) {
			// Uncharged no-op slot, per the model.
			continue
		}
		if inj != nil && inj.Wasted(pid, slots-1) {
			// A stutter or stall consumes the slot without running the
			// process: the schedule advances, no step is charged.
			continue
		}
		if metered && grants == 0 {
			t0 = time.Now()
		}
		if _, ok := procs[pid].next(); !ok {
			rs.done[pid] = true
			rs.doneCnt++
		}
		if metered {
			if grants++; grants >= meterBatch {
				mWindowSize.Observe(grants)
				mStepNanos.Observe(time.Since(t0).Nanoseconds() / grants)
				grants = 0
			}
		}
	}
	if metered && grants > 0 {
		mWindowSize.Observe(grants)
		mStepNanos.Observe(time.Since(t0).Nanoseconds() / grants)
	}

	res := Result{
		Steps:    make([]int64, n),
		Slots:    slots,
		Finished: make([]bool, n),
	}
	for pid := 0; pid < n; pid++ {
		res.Steps[pid] = procs[pid].steps
		res.TotalSteps += res.Steps[pid]
		res.Finished[pid] = rs.done[pid]
	}
	if inj != nil {
		res.Faults = inj.Counts()
		res.Restarts = res.Faults.Restarts
	}
	return res, err
}

// Collect runs body under the controlled scheduler and gathers one output
// value per process. Crashed (never-finished) processes report ok=false.
func Collect[V any](src sched.Source, cfg Config, body func(p *Proc) V) ([]V, []bool, Result, error) {
	n := src.N()
	outs := make([]V, n)
	res, err := RunControlled(src, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res.Finished, res, err
}

// CollectConcurrent is Collect for the concurrent mode. Processes that
// panicked (see RunConcurrent) report the zero V and Finished=false.
func CollectConcurrent[V any](n int, cfg Config, body func(p *Proc) V) ([]V, Result, error) {
	outs := make([]V, n)
	res, err := RunConcurrent(n, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res, err
}
