// Package sim executes n process bodies against the shared-memory
// substrate under either of two execution modes:
//
//   - Controlled: a deterministic scheduler drives processes one
//     shared-memory operation at a time following a sched.Source. The
//     resulting execution is a pure function of (algorithm seed, schedule
//     source), operations never overlap in real time, and per-process step
//     counts are exact. This is the mode every experiment uses and is the
//     direct implementation of the paper's model: at each slot the next
//     process in the schedule executes one operation of its choosing, and
//     slots allocated to finished processes are uncharged no-ops
//     (Section 1.1).
//
//   - Concurrent: processes run as free goroutines over the same
//     linearizable objects, with the Go runtime as the (weak, effectively
//     content-oblivious) scheduler. Used by the examples and the -race
//     tests to show the identical algorithm code running as an ordinary
//     concurrent Go program.
//
// Process bodies receive a *Proc, which carries the process id, a private
// deterministic RNG stream, and the step gate implementing memory.Context.
//
// # Controlled-mode execution engine
//
// The engine hands execution around as a baton. The driver pre-draws a
// window of schedule slots from the source (resolving uncharged no-op
// slots as it draws), grants the first scheduled process, and goes to
// sleep; each process, when it blocks at its next Step, grants the next
// scheduled process directly. One simulated step therefore costs a single
// goroutine handoff — and zero handoffs when consecutive slots name the
// same process — instead of the park/grant round trip through the driver
// that a naive implementation needs. The driver wakes only once per
// window to refill it.
//
// Crash-aware sources use a window of one slot, because liveness can flip
// mid-window when a crash cutoff passes and the driver must observe that
// at the exact slot the model says it happens. Crash-free sources use
// wide windows; the only dynamic event inside a window is a process
// finishing, and the baton chain handles that exactly: slots granted to
// now-finished processes are consumed as uncharged no-ops, and if the run
// completes mid-window the driver rolls the slot count back to the slot
// of the last granted operation — precisely where a slot-at-a-time driver
// would have stopped.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrScheduleExhausted reports that a finite schedule ended before every
// live process finished.
var ErrScheduleExhausted = errors.New("sim: schedule exhausted before all processes finished")

// ErrSlotBudget reports that the safety valve on total schedule slots
// fired, which almost always means a protocol failed to terminate.
var ErrSlotBudget = errors.New("sim: slot budget exceeded")

// maxWindow is the number of schedule slots the driver pre-draws per
// grant window for crash-free sources. Crash-aware sources use a window
// of one (see the package comment).
const maxWindow = 256

// entry is one grantable slot of a window: the scheduled process and the
// cumulative count of schedule slots consumed up to and including this
// slot (uncharged no-op slots resolved at draw time sit between entries
// and are counted by slotEnd).
type entry struct {
	pid     int32
	slotEnd int64
}

// window is the baton passed from process to process: a pre-drawn run of
// grantable slots. j is the index of the entry currently granted; it is
// advanced by whichever process holds the baton, so it needs no locking.
type window struct {
	entries []entry
	j       int
}

// gateEvent is what process goroutines report to the driver.
type gateEvent struct {
	pid  int32
	kind uint8
}

const (
	evStarted uint8 = iota // process reached its first Step and parked
	evDone                 // process body returned without ever calling Step
	evWindow               // the granted window completed
)

// runState is shared by the driver and all process goroutines of one
// controlled run. The mutable fields (done, doneCnt, win.j) are touched
// only by the current baton holder or by the driver while no window is in
// flight, and every handoff goes through a channel, so all access is
// fully ordered — the controlled execution is sequential by construction.
type runState struct {
	procs    []*Proc
	done     []bool
	doneCnt  int
	complete chan gateEvent
	win      window
}

// Proc is the handle a process body uses to interact with the simulation.
// It implements memory.Context: every shared-memory operation calls Step,
// which in controlled mode blocks until the adversary schedules the
// process and always charges one step.
type Proc struct {
	id    int
	rng   *xrand.Rand
	steps atomic.Int64

	// Controlled-mode fields; grant is nil in concurrent mode. A nil
	// window on grant aborts the goroutine (the modeled execution ended
	// with this process unfinished). baton is the window this process
	// currently holds; it is released — handed to the next scheduled
	// process — when the process next blocks or its body returns.
	grant   chan *window
	run     *runState
	baton   *window
	started bool
}

var _ memory.Context = (*Proc)(nil)

// ID returns the process id in [0, n).
func (p *Proc) ID() int { return p.id }

// Rng returns the process's private random stream. The stream derives
// only from the algorithm seed, never from the schedule, so the adversary
// is oblivious to it.
func (p *Proc) Rng() *xrand.Rand { return p.rng }

// Steps returns the number of shared-memory steps charged so far.
func (p *Proc) Steps() int64 { return p.steps.Load() }

// release hands the baton to the next undone entry of the window —
// directly process-to-process, without waking the driver — or reports the
// window complete. Entries whose process finished earlier in the window
// are consumed here as uncharged no-op slots, per the model. Calling
// release certifies that the holder's previous operation fully completed,
// which is what makes the controlled execution deterministic rather than
// merely linearizable.
func (p *Proc) release() {
	w := p.baton
	if w == nil {
		return
	}
	p.baton = nil
	rs := p.run
	j := w.j + 1
	for j < len(w.entries) && rs.done[w.entries[j].pid] {
		j++
	}
	if j == len(w.entries) {
		rs.complete <- gateEvent{kind: evWindow}
		return
	}
	w.j = j
	rs.procs[w.entries[j].pid].grant <- w
}

// Step implements memory.Context.
func (p *Proc) Step() {
	if p.grant != nil {
		if p.started {
			p.release()
		} else {
			p.started = true
			p.run.complete <- gateEvent{pid: int32(p.id), kind: evStarted}
		}
		w := <-p.grant
		if w == nil {
			// The modeled execution is over and this process will never
			// be scheduled again; unwind the goroutine (deferred cleanup
			// in the runner still runs).
			runtime.Goexit()
		}
		p.baton = w
	}
	p.steps.Add(1)
}

// Config parameterizes a run.
type Config struct {
	// AlgSeed seeds the per-process RNG streams. Two runs with equal
	// AlgSeed and equal schedules are identical.
	AlgSeed uint64

	// MaxSlots bounds the number of schedule slots consumed in controlled
	// mode; exceeding it aborts the run with ErrSlotBudget. Zero means
	// the default of 1 << 26.
	MaxSlots int64
}

const defaultMaxSlots = 1 << 26

// Process-wide throughput counters, aggregated across every completed run.
// They exist so harnesses (consensusbench's -bench-json) can report
// modeled steps/sec and slots/sec per experiment without threading every
// Result back up through the experiment tables.
var (
	totalStepsRun atomic.Int64
	totalSlotsRun atomic.Int64
)

// Counters returns the process-wide totals of modeled shared-memory steps
// and schedule slots consumed by completed runs (controlled slots only;
// concurrent runs contribute steps). Sample it before and after a
// workload to get the workload's totals.
func Counters() (steps, slots int64) {
	return totalStepsRun.Load(), totalSlotsRun.Load()
}

// Cached metrics instruments; all nil (free no-ops) until a registry is
// installed. The step-latency histogram records wall nanoseconds per
// modeled step, amortized over each grant window: the driver times the
// window's grant-to-complete interval and divides by the window's slot
// count. For crash-aware sources (one-slot windows) the value is the
// exact per-slot latency; for wide windows it is the per-slot average,
// which costs only two clock reads per up-to-256-slot window and so
// stays off the step hot path entirely.
var (
	mRuns       *metrics.Counter
	mSteps      *metrics.Counter
	mSlots      *metrics.Counter
	mRunSteps   *metrics.Histogram
	mRunSlots   *metrics.Histogram
	mWindowSize *metrics.Histogram
	mStepNanos  *metrics.Histogram
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mRuns = r.Counter("sim.runs")
		mSteps = r.Counter("sim.steps")
		mSlots = r.Counter("sim.slots")
		mRunSteps = r.Histogram("sim.run_steps")
		mRunSlots = r.Histogram("sim.run_slots")
		mWindowSize = r.Histogram("sim.window_slots")
		mStepNanos = r.Histogram("sim.step_latency_ns")
	})
}

// observeRun records one completed run into the process-wide counters
// and, when enabled, the metrics registry.
func observeRun(res Result, controlled bool) {
	totalStepsRun.Add(res.TotalSteps)
	if controlled {
		totalSlotsRun.Add(res.Slots)
	}
	if mRuns == nil {
		return
	}
	mRuns.Inc()
	mSteps.Add(res.TotalSteps)
	mRunSteps.Observe(res.TotalSteps)
	if controlled {
		mSlots.Add(res.Slots)
		mRunSlots.Observe(res.Slots)
	}
}

// Result reports what happened during a run.
type Result struct {
	// Steps[i] is the number of shared-memory operations process i
	// executed.
	Steps []int64
	// TotalSteps is the sum of Steps.
	TotalSteps int64
	// Slots is the number of schedule slots consumed, including uncharged
	// no-op slots for finished processes (controlled mode only).
	Slots int64
	// Finished[i] reports whether process i ran to completion. Processes
	// crashed by the schedule never finish.
	Finished []bool
}

// MaxSteps returns the maximum per-process step count (the individual
// step complexity of the execution).
func (r Result) MaxSteps() int64 {
	var max int64
	for _, s := range r.Steps {
		if s > max {
			max = s
		}
	}
	return max
}

// Body is a process body: protocol code executed by process p.
type Body func(p *Proc)

// RunControlled executes n copies of body under the given schedule. It
// returns once every live process has finished, the schedule is exhausted
// (finite schedules), or the slot budget fires.
func RunControlled(src sched.Source, body Body, cfg Config) (Result, error) {
	n := src.N()
	rs := &runState{
		procs:    make([]*Proc, n),
		done:     make([]bool, n),
		complete: make(chan gateEvent, n),
	}
	rng := xrand.New(cfg.AlgSeed)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		rs.procs[i] = &Proc{
			id:    i,
			rng:   rng.ForkNamed(uint64(i)),
			grant: make(chan *window, 1),
			run:   rs,
		}
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rs.procs[i]
			body(p)
			if !p.started {
				// Finished without a single shared-memory operation;
				// report directly (the process never held the baton).
				rs.complete <- gateEvent{pid: int32(i), kind: evDone}
				return
			}
			// Finishing while holding the baton: record completion, then
			// pass the baton on. Neither blocks.
			rs.done[i] = true
			rs.doneCnt++
			p.release()
		}()
	}

	res, err := drive(src, rs, cfg)
	observeRun(res, true)

	// Unblock any processes still blocked at Step so their goroutines
	// exit: a nil grant makes Step call Goexit. Every unfinished process
	// is parked at a grant receive once drive returns (the last window
	// completed), so a single buffered send each suffices.
	for i := 0; i < n; i++ {
		if !rs.done[i] {
			rs.procs[i].grant <- nil
		}
	}
	wg.Wait()
	return res, err
}

// drive is the adversary loop. It pre-draws windows of schedule slots —
// resolving uncharged no-op slots (finished or crashed processes) at draw
// time, in bulk when the source supports sched.Skipper — grants each
// window to the baton chain, and sleeps until the chain reports the
// window complete.
func drive(src sched.Source, rs *runState, cfg Config) (Result, error) {
	procs := rs.procs
	n := len(procs)
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = defaultMaxSlots
	}
	var (
		slots int64
		err   error
	)

	// Startup barrier: wait until every process has either parked at its
	// first Step or finished without one, so the first grant finds a
	// quiescent system.
	for seen := 0; seen < n; seen++ {
		if ev := <-rs.complete; ev.kind == evDone {
			rs.done[ev.pid] = true
			rs.doneCnt++
		}
	}

	ca, _ := src.(sched.CrashAware)
	alive := func(pid int) bool { return ca == nil || ca.Alive(pid) }
	liveDone := func() bool {
		if rs.doneCnt == n {
			return true
		}
		if ca == nil {
			// Without crashes every process eventually finishes, so the
			// count alone decides — no O(n) scan.
			return false
		}
		for pid := 0; pid < n; pid++ {
			if !rs.done[pid] && ca.Alive(pid) {
				return false
			}
		}
		return true
	}

	winCap := maxWindow
	if ca != nil {
		// Liveness can flip mid-window when a crash cutoff passes; a
		// one-slot window makes the driver re-evaluate liveDone at every
		// slot, exactly like a slot-at-a-time driver.
		winCap = 1
	}

	skipper, _ := src.(sched.Skipper)
	// skipPred accepts uncharged no-op slots, bounded to skipBatch per
	// SkipWhile call. The bound matters for correctness, not just
	// fairness: a crash cutoff can pass in the middle of a skipped run,
	// at which point every pid the source still emits may be a no-op and
	// an unbounded skip would never return — the driver must get control
	// back to re-evaluate liveDone. A pid rejected by the bound is
	// stashed by the source, re-delivered by the next Next, and handled
	// as an ordinary no-op slot, so the schedule is unchanged.
	const skipBatch = 1024
	batch := 0
	skipPred := func(pid int) bool {
		if batch >= skipBatch || !(rs.done[pid] || !alive(pid)) {
			return false
		}
		batch++
		return true
	}

	entries := make([]entry, 0, winCap)
	for !liveDone() {
		if slots >= maxSlots {
			slots = maxSlots
			err = fmt.Errorf("%w (budget %d)", ErrSlotBudget, maxSlots)
			break
		}
		entries = entries[:0]
		exhausted := false
		for len(entries) < winCap && slots < maxSlots {
			if skipper != nil {
				batch = 0
				slots += skipper.SkipWhile(skipPred)
				if slots >= maxSlots {
					if slots > maxSlots {
						slots = maxSlots
					}
					break
				}
			}
			pid := src.Next()
			if pid == sched.Exhausted {
				exhausted = true
				break
			}
			slots++
			if rs.done[pid] || !alive(pid) {
				// Uncharged no-op slot, per the model. Crossing a crash
				// cutoff can finish the run mid-draw (the last unfinished
				// processes all died); without this check the draw loop
				// would spin through no-op slots to the budget, since only
				// live pids are emitted post-cutoff and all of them are
				// done.
				if ca != nil && liveDone() {
					break
				}
				continue
			}
			entries = append(entries, entry{pid: int32(pid), slotEnd: slots})
		}
		if len(entries) > 0 {
			w := &rs.win
			w.entries = entries
			w.j = 0
			var t0 time.Time
			if mStepNanos != nil {
				t0 = time.Now()
			}
			procs[entries[0].pid].grant <- w
			<-rs.complete // evWindow: the chain ran the whole window
			if mStepNanos != nil {
				mWindowSize.Observe(int64(len(entries)))
				mStepNanos.Observe(time.Since(t0).Nanoseconds() / int64(len(entries)))
			}
			if liveDone() {
				// The run completed mid-window; trailing pre-drawn slots
				// were never consumed by the model. Roll back to the slot
				// of the last granted operation — where a slot-at-a-time
				// driver stops.
				slots = w.entries[w.j].slotEnd
			}
		}
		if exhausted {
			if !liveDone() {
				err = ErrScheduleExhausted
			}
			break
		}
	}

	res := Result{
		Steps:    make([]int64, n),
		Slots:    slots,
		Finished: make([]bool, n),
	}
	for pid := 0; pid < n; pid++ {
		res.Steps[pid] = procs[pid].Steps()
		res.TotalSteps += res.Steps[pid]
		res.Finished[pid] = rs.done[pid]
	}
	return res, err
}

// RunConcurrent executes n copies of body as free-running goroutines and
// waits for all of them. The Go scheduler plays the adversary; since it
// cannot observe the processes' private RNG streams, it is (heuristically)
// a weak adversary in the paper's sense.
func RunConcurrent(n int, body Body, cfg Config) Result {
	procs := make([]*Proc, n)
	rng := xrand.New(cfg.AlgSeed)
	for i := 0; i < n; i++ {
		procs[i] = &Proc{id: i, rng: rng.ForkNamed(uint64(i))}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(procs[i])
		}()
	}
	wg.Wait()
	res := Result{
		Steps:    make([]int64, n),
		Finished: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		res.Steps[i] = procs[i].Steps()
		res.TotalSteps += res.Steps[i]
		res.Finished[i] = true
	}
	observeRun(res, false)
	return res
}

// Collect runs body under the controlled scheduler and gathers one output
// value per process. Crashed (never-finished) processes report ok=false.
func Collect[V any](src sched.Source, cfg Config, body func(p *Proc) V) ([]V, []bool, Result, error) {
	n := src.N()
	outs := make([]V, n)
	res, err := RunControlled(src, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res.Finished, res, err
}

// CollectConcurrent is Collect for the concurrent mode.
func CollectConcurrent[V any](n int, cfg Config, body func(p *Proc) V) ([]V, Result) {
	outs := make([]V, n)
	res := RunConcurrent(n, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res
}
