// Package sim executes n process bodies against the shared-memory
// substrate under either of two execution modes:
//
//   - Controlled: a deterministic scheduler drives processes one
//     shared-memory operation at a time following a sched.Source. The
//     resulting execution is a pure function of (algorithm seed, schedule
//     source), operations never overlap in real time, and per-process step
//     counts are exact. This is the mode every experiment uses and is the
//     direct implementation of the paper's model: at each slot the next
//     process in the schedule executes one operation of its choosing, and
//     slots allocated to finished processes are uncharged no-ops
//     (Section 1.1).
//
//   - Concurrent: processes run as free goroutines over the same
//     linearizable objects, with the Go runtime as the (weak, effectively
//     content-oblivious) scheduler. Used by the examples and the -race
//     tests to show the identical algorithm code running as an ordinary
//     concurrent Go program.
//
// Process bodies receive a *Proc, which carries the process id, a private
// deterministic RNG stream, and the step gate implementing memory.Context.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrScheduleExhausted reports that a finite schedule ended before every
// live process finished.
var ErrScheduleExhausted = errors.New("sim: schedule exhausted before all processes finished")

// ErrSlotBudget reports that the safety valve on total schedule slots
// fired, which almost always means a protocol failed to terminate.
var ErrSlotBudget = errors.New("sim: slot budget exceeded")

// Proc is the handle a process body uses to interact with the simulation.
// It implements memory.Context: every shared-memory operation calls Step,
// which in controlled mode blocks until the adversary schedules the
// process and always charges one step.
type Proc struct {
	id    int
	rng   *xrand.Rand
	steps atomic.Int64

	// Controlled-mode gating; nil in concurrent mode.
	ready chan struct{}
	grant chan struct{}

	// aborted is set once the modeled execution has ended (schedule
	// exhausted or budget exceeded); the next Step exits the goroutine so
	// that non-terminating bodies can be reclaimed.
	aborted atomic.Bool
}

var _ memory.Context = (*Proc)(nil)

// ID returns the process id in [0, n).
func (p *Proc) ID() int { return p.id }

// Rng returns the process's private random stream. The stream derives
// only from the algorithm seed, never from the schedule, so the adversary
// is oblivious to it.
func (p *Proc) Rng() *xrand.Rand { return p.rng }

// Steps returns the number of shared-memory steps charged so far.
func (p *Proc) Steps() int64 { return p.steps.Load() }

// Step implements memory.Context.
func (p *Proc) Step() {
	if p.ready != nil {
		if p.aborted.Load() {
			// The modeled execution is over and this process will never
			// be scheduled again; unwind the goroutine (deferred cleanup
			// in the runner still runs).
			runtime.Goexit()
		}
		p.ready <- struct{}{}
		<-p.grant
	}
	p.steps.Add(1)
}

// Config parameterizes a run.
type Config struct {
	// AlgSeed seeds the per-process RNG streams. Two runs with equal
	// AlgSeed and equal schedules are identical.
	AlgSeed uint64

	// MaxSlots bounds the number of schedule slots consumed in controlled
	// mode; exceeding it aborts the run with ErrSlotBudget. Zero means
	// the default of 1 << 26.
	MaxSlots int64
}

const defaultMaxSlots = 1 << 26

// Result reports what happened during a run.
type Result struct {
	// Steps[i] is the number of shared-memory operations process i
	// executed.
	Steps []int64
	// TotalSteps is the sum of Steps.
	TotalSteps int64
	// Slots is the number of schedule slots consumed, including uncharged
	// no-op slots for finished processes (controlled mode only).
	Slots int64
	// Finished[i] reports whether process i ran to completion. Processes
	// crashed by the schedule never finish.
	Finished []bool
}

// MaxSteps returns the maximum per-process step count (the individual
// step complexity of the execution).
func (r Result) MaxSteps() int64 {
	var max int64
	for _, s := range r.Steps {
		if s > max {
			max = s
		}
	}
	return max
}

// Body is a process body: protocol code executed by process p.
type Body func(p *Proc)

// RunControlled executes n copies of body under the given schedule. It
// returns once every live process has finished, the schedule is exhausted
// (finite schedules), or the slot budget fires.
func RunControlled(src sched.Source, body Body, cfg Config) (Result, error) {
	n := src.N()
	procs := make([]*Proc, n)
	finished := make([]chan struct{}, n)
	rng := xrand.New(cfg.AlgSeed)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		procs[i] = &Proc{
			id:    i,
			rng:   rng.ForkNamed(uint64(i)),
			ready: make(chan struct{}, 1),
			grant: make(chan struct{}),
		}
		finished[i] = make(chan struct{})
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(finished[i])
			body(procs[i])
		}()
	}

	res, parked, err := drive(src, procs, finished, cfg)

	// Unblock and drain any processes still blocked at Step so their
	// goroutines exit; their remaining operations execute after the
	// modeled execution ended and are neither scheduled nor charged
	// against the result (the result snapshot was taken in drive). A
	// process whose ready token was already consumed ("parked") is
	// blocked on grant and must be granted first.
	var drainWG sync.WaitGroup
	for i := 0; i < n; i++ {
		if res.Finished[i] {
			continue
		}
		i := i
		procs[i].aborted.Store(true)
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			if parked[i] {
				procs[i].grant <- struct{}{}
			}
			for {
				select {
				case <-finished[i]:
					return
				case <-procs[i].ready:
					procs[i].grant <- struct{}{}
				}
			}
		}()
	}
	drainWG.Wait()
	wg.Wait()
	return res, err
}

// drive is the adversary loop: one schedule slot per iteration. The
// returned parked slice reports which processes still hold a consumed
// ready token (blocked on grant) so the caller can unblock them.
func drive(src sched.Source, procs []*Proc, finished []chan struct{}, cfg Config) (Result, []bool, error) {
	n := len(procs)
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = defaultMaxSlots
	}
	var (
		slots   int64
		done    = make([]bool, n)
		doneCnt int
		err     error
	)
	alive := func(pid int) bool {
		if ca, ok := src.(sched.CrashAware); ok {
			return ca.Alive(pid)
		}
		return true
	}
	// park waits until pid is either blocked at Step or finished, and
	// records completion. Processes are sequential, so "parked or
	// finished" certifies that the previously granted operation fully
	// completed; this is what makes the controlled execution
	// deterministic rather than merely linearizable.
	park := func(pid int) bool {
		if done[pid] {
			return false
		}
		select {
		case <-procs[pid].ready:
			return true
		case <-finished[pid]:
			done[pid] = true
			doneCnt++
			return false
		}
	}

	// Park every live process once so the first slot finds a quiescent
	// system. (A body that performs no shared-memory operations finishes
	// here immediately.)
	parked := make([]bool, n)
	for pid := 0; pid < n; pid++ {
		if alive(pid) {
			parked[pid] = park(pid)
		}
	}

	liveDone := func() bool {
		for pid := 0; pid < n; pid++ {
			if alive(pid) && !done[pid] {
				return false
			}
		}
		return true
	}

	for !liveDone() {
		if slots >= maxSlots {
			err = fmt.Errorf("%w (budget %d)", ErrSlotBudget, maxSlots)
			break
		}
		pid := src.Next()
		if pid == sched.Exhausted {
			err = ErrScheduleExhausted
			break
		}
		slots++
		if done[pid] || !alive(pid) {
			continue // uncharged no-op slot, per the model
		}
		if !parked[pid] {
			// The process was scheduled before ever parking (possible
			// only if it was skipped during the initial parking pass as
			// not-alive; defensive).
			parked[pid] = park(pid)
			if !parked[pid] {
				continue
			}
		}
		parked[pid] = false
		procs[pid].grant <- struct{}{}
		parked[pid] = park(pid)
	}

	res := Result{
		Steps:    make([]int64, n),
		Slots:    slots,
		Finished: make([]bool, n),
	}
	for pid := 0; pid < n; pid++ {
		res.Steps[pid] = procs[pid].Steps()
		res.TotalSteps += res.Steps[pid]
		res.Finished[pid] = done[pid]
	}
	return res, parked, err
}

// RunConcurrent executes n copies of body as free-running goroutines and
// waits for all of them. The Go scheduler plays the adversary; since it
// cannot observe the processes' private RNG streams, it is (heuristically)
// a weak adversary in the paper's sense.
func RunConcurrent(n int, body Body, cfg Config) Result {
	procs := make([]*Proc, n)
	rng := xrand.New(cfg.AlgSeed)
	for i := 0; i < n; i++ {
		procs[i] = &Proc{id: i, rng: rng.ForkNamed(uint64(i))}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(procs[i])
		}()
	}
	wg.Wait()
	res := Result{
		Steps:    make([]int64, n),
		Finished: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		res.Steps[i] = procs[i].Steps()
		res.TotalSteps += res.Steps[i]
		res.Finished[i] = true
	}
	return res
}

// Collect runs body under the controlled scheduler and gathers one output
// value per process. Crashed (never-finished) processes report ok=false.
func Collect[V any](src sched.Source, cfg Config, body func(p *Proc) V) ([]V, []bool, Result, error) {
	n := src.N()
	outs := make([]V, n)
	res, err := RunControlled(src, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res.Finished, res, err
}

// CollectConcurrent is Collect for the concurrent mode.
func CollectConcurrent[V any](n int, cfg Config, body func(p *Proc) V) ([]V, Result) {
	outs := make([]V, n)
	res := RunConcurrent(n, func(p *Proc) {
		outs[p.ID()] = body(p)
	}, cfg)
	return outs, res
}
