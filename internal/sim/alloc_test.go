package sim

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// TestControlledHotPathZeroAllocs pins the exclusive-substrate guarantee
// that controlled-mode shared-memory operations allocate nothing in
// steady state: register reads/writes, max-register operations, and
// buffer-reusing snapshot scans. A regression here silently reintroduces
// GC pressure proportional to modeled steps, which is exactly what the
// exclusive substrate exists to avoid.
func TestControlledHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	if metrics.Enabled() {
		t.Skip("allocation counts require metrics to be disabled")
	}

	allocs := map[string]float64{}
	res, err := RunControlled(sched.NewRoundRobin(2), func(p *Proc) {
		if p.ID() != 0 {
			// A second process keeps the schedule honest (every op still
			// yields through the driver) without touching the objects.
			p.Step()
			return
		}
		if !p.Exclusive() {
			t.Error("controlled Proc is not exclusive by default")
		}
		reg := memory.NewRegister[int]()
		maxr := memory.NewMaxRegister[int]()
		snap := memory.NewSnapshot[int](8)
		snap.Update(p, 0, 42)
		buf := snap.ScanInto(p, nil)
		scratch := snap.ScanScratch(p) // warm the scratch arena
		_ = scratch

		allocs["Register.Write"] = testing.AllocsPerRun(64, func() { reg.Write(p, 7) })
		allocs["Register.Read"] = testing.AllocsPerRun(64, func() { reg.Read(p) })
		allocs["Register.CompareEmptyAndWrite"] = testing.AllocsPerRun(64, func() { reg.CompareEmptyAndWrite(p, 7) })
		allocs["MaxRegister.WriteMax"] = testing.AllocsPerRun(64, func() { maxr.WriteMax(p, 5, 1) })
		allocs["MaxRegister.ReadMax"] = testing.AllocsPerRun(64, func() { maxr.ReadMax(p) })
		allocs["Snapshot.Update"] = testing.AllocsPerRun(64, func() { snap.Update(p, 0, 9) })
		allocs["Snapshot.ScanInto"] = testing.AllocsPerRun(64, func() { buf = snap.ScanInto(p, buf) })
		allocs["Snapshot.ScanScratch"] = testing.AllocsPerRun(64, func() { _ = snap.ScanScratch(p) })
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Finished[0] {
		t.Fatal("measuring process did not finish")
	}
	for op, n := range allocs {
		if n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", op, n)
		}
	}
}

// TestFlatRunnerSteadyStateZeroAllocs pins the flat engine's headline
// guarantee: with the runner, machine, Result, and schedule source all
// reused, a whole trial allocates nothing — not amortized-small like the
// coroutine engine's pooled state, but literally zero, which is what
// lets the Monte Carlo runner sustain millions of trials without GC
// pressure.
func TestFlatRunnerSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	if metrics.Enabled() {
		t.Skip("allocation counts require metrics to be disabled")
	}

	m := newCountdown([]int{64, 64, 64, 64})
	fr := NewFlatRunner[*countdownMachine]()
	src := sched.NewRoundRobin(4) // stateless across trials: Next just keeps cycling
	var res Result
	run := func() {
		if err := fr.RunInto(src, m, Config{AlgSeed: 7}, &res); err != nil {
			t.Fatalf("run failed: %v", err)
		}
	}
	run() // size the runner's arenas and the Result slices
	if got := testing.AllocsPerRun(16, run); got != 0 {
		t.Errorf("flat runner steady state = %v allocs/run, want 0", got)
	}
}

// TestRunControlledSteadyStateAllocs pins the trial-state pooling: after
// warmup, a whole controlled run costs only the Result bookkeeping (a
// handful of fixed allocations), independent of step count — Proc,
// runState, RNG, and coroutine scratch all come from the pool.
func TestRunControlledSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	if metrics.Enabled() {
		t.Skip("allocation counts require metrics to be disabled")
	}

	const n = 4
	body := func(p *Proc) {
		for i := 0; i < 256; i++ {
			p.Step()
		}
	}
	run := func() {
		if _, err := RunControlled(sched.NewRoundRobin(n), body, Config{AlgSeed: 7}); err != nil {
			t.Fatalf("run failed: %v", err)
		}
	}
	run() // warm the pool
	// Fixed per-run costs: the schedule source, Result slices, and the
	// iter.Pull coroutine handles (two closures + coroutine each). The
	// bound is deliberately generous but step-count-independent: 1024
	// steps per run must not show up in it.
	const budget = 16 * n
	if got := testing.AllocsPerRun(16, run); got > budget {
		t.Errorf("RunControlled steady state = %v allocs/run, want <= %d", got, budget)
	}
}
