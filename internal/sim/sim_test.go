package sim

import (
	"errors"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestControlledStepCounting(t *testing.T) {
	// Each of 4 processes performs exactly 5 register writes.
	reg := memory.NewRegister[int]()
	res, err := RunControlled(sched.NewRoundRobin(4), func(p *Proc) {
		for i := 0; i < 5; i++ {
			reg.Write(p, p.ID())
		}
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for pid, s := range res.Steps {
		if s != 5 {
			t.Errorf("process %d charged %d steps, want 5", pid, s)
		}
	}
	if res.TotalSteps != 20 {
		t.Errorf("TotalSteps = %d, want 20", res.TotalSteps)
	}
	for pid, f := range res.Finished {
		if !f {
			t.Errorf("process %d not finished", pid)
		}
	}
	if res.MaxSteps() != 5 {
		t.Errorf("MaxSteps = %d", res.MaxSteps())
	}
}

func TestControlledDeterministicExecution(t *testing.T) {
	// Same seeds => identical observable interleaving. We record the
	// order in which writes land in a shared register.
	run := func() []int {
		var order []int
		reg := memory.NewRegister[int]()
		_, err := RunControlled(sched.NewRandom(5, xrand.New(7)), func(p *Proc) {
			for i := 0; i < 10; i++ {
				reg.Write(p, p.ID())
				order = append(order, p.ID()) // safe: controlled mode serializes ops
			}
		}, Config{AlgSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("executions diverge at op %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestControlledFollowsSchedule(t *testing.T) {
	// With an explicit schedule, ops must land in exactly schedule order.
	schedule := []int{0, 0, 1, 0, 2, 2, 1, 1, 2, 0}
	counts := map[int]int{0: 4, 1: 3, 2: 3}
	var order []int
	_, err := RunControlled(sched.NewExplicit(3, schedule), func(p *Proc) {
		for i := 0; i < counts[p.ID()]; i++ {
			p.Step()
			order = append(order, p.ID())
		}
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(schedule) {
		t.Fatalf("executed %d ops, want %d", len(order), len(schedule))
	}
	for i := range order {
		if order[i] != schedule[i] {
			t.Fatalf("op %d by process %d, schedule says %d", i, order[i], schedule[i])
		}
	}
}

func TestControlledSkipsFinishedSlotsUncharged(t *testing.T) {
	// Process 0 takes 1 step, process 1 takes 5. Round-robin will hand
	// process 0 extra slots which must be uncharged no-ops.
	res, err := RunControlled(sched.NewRoundRobin(2), func(p *Proc) {
		steps := 1
		if p.ID() == 1 {
			steps = 5
		}
		for i := 0; i < steps; i++ {
			p.Step()
		}
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 1 || res.Steps[1] != 5 {
		t.Fatalf("steps = %v", res.Steps)
	}
	if res.Slots < 6 {
		t.Fatalf("slots = %d, want >= 6", res.Slots)
	}
}

func TestScheduleExhausted(t *testing.T) {
	_, err := RunControlled(sched.NewExplicit(2, []int{0, 1}), func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Step()
		}
	}, Config{AlgSeed: 1})
	if !errors.Is(err, ErrScheduleExhausted) {
		t.Fatalf("err = %v, want ErrScheduleExhausted", err)
	}
}

func TestSlotBudget(t *testing.T) {
	_, err := RunControlled(sched.NewRoundRobin(2), func(p *Proc) {
		for { // never terminates
			p.Step()
		}
	}, Config{AlgSeed: 1, MaxSlots: 100})
	if !errors.Is(err, ErrSlotBudget) {
		t.Fatalf("err = %v, want ErrSlotBudget", err)
	}
}

// noSkipCrashSource hides the Skipper fast path of a crash-aware source,
// forcing the driver onto slot-at-a-time draws (the path recording
// sources take).
type noSkipCrashSource struct {
	src sched.Source
	ca  sched.CrashAware
}

func (s noSkipCrashSource) N() int             { return s.src.N() }
func (s noSkipCrashSource) Next() int          { return s.src.Next() }
func (s noSkipCrashSource) Alive(pid int) bool { return s.ca.Alive(pid) }

func TestCrashTailEndsRunAtCutoff(t *testing.T) {
	// The survivor finishes before the crash cutoff passes; the victims
	// never finish. Crossing the cutoff completes the run mid-draw, and
	// the driver must notice instead of spinning through no-op slots to
	// the slot budget (found by FuzzCrashScheduleReplay).
	const cutoff = 50
	cs := sched.NewCrashSet(sched.NewRoundRobin(3), []int{0, 1}, cutoff, 1)
	res, err := RunControlled(noSkipCrashSource{src: cs, ca: cs}, func(p *Proc) {
		steps := 1
		if p.ID() != 2 {
			steps = 100000 // victims can never finish
		}
		for i := 0; i < steps; i++ {
			p.Step()
		}
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots > cutoff+3 {
		t.Fatalf("slots = %d, want run to end right after the cutoff (%d)", res.Slots, cutoff)
	}
	want := []bool{false, false, true}
	for pid, f := range res.Finished {
		if f != want[pid] {
			t.Errorf("Finished[%d] = %v, want %v", pid, f, want[pid])
		}
	}
}

func TestNoStepBodyFinishesImmediately(t *testing.T) {
	ran := make([]bool, 3)
	res, err := RunControlled(sched.NewRoundRobin(3), func(p *Proc) {
		ran[p.ID()] = true
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 0 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
	for pid, r := range ran {
		if !r {
			t.Errorf("process %d body never ran", pid)
		}
	}
}

func TestRngStreamsDifferAcrossProcesses(t *testing.T) {
	draws := make([]uint64, 4)
	_, err := RunControlled(sched.NewRoundRobin(4), func(p *Proc) {
		draws[p.ID()] = p.Rng().Uint64()
	}, Config{AlgSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, d := range draws {
		if seen[d] {
			t.Fatalf("two processes drew the same first value %d", d)
		}
		seen[d] = true
	}
}

func TestRngIndependentOfSchedule(t *testing.T) {
	// Obliviousness sanity check: the values processes draw are the same
	// under two different schedules with the same algorithm seed.
	run := func(src sched.Source) []uint64 {
		draws := make([]uint64, 4)
		if _, err := RunControlled(src, func(p *Proc) {
			p.Step()
			draws[p.ID()] = p.Rng().Uint64()
			p.Step()
		}, Config{AlgSeed: 9}); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a := run(sched.NewRoundRobin(4))
	b := run(sched.NewRandom(4, xrand.New(1234)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("process %d drew %d under round-robin but %d under random", i, a[i], b[i])
		}
	}
}

func TestCrashAwareCompletion(t *testing.T) {
	// A source that never schedules process 1 after declaring it dead;
	// the run must still complete, reporting process 1 unfinished.
	src := &crashOneSource{n: 2}
	res, err := RunControlled(src, func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Step()
		}
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished[0] {
		t.Error("process 0 should have finished")
	}
	if res.Finished[1] {
		t.Error("crashed process 1 reported finished")
	}
	if res.Steps[0] != 3 {
		t.Errorf("process 0 steps = %d", res.Steps[0])
	}
	if res.Steps[1] != 0 {
		t.Errorf("crashed process took %d charged steps", res.Steps[1])
	}
}

type crashOneSource struct{ n int }

func (s *crashOneSource) N() int             { return s.n }
func (s *crashOneSource) Next() int          { return 0 }
func (s *crashOneSource) Alive(pid int) bool { return pid == 0 }

func TestCollect(t *testing.T) {
	outs, finished, res, err := Collect(sched.NewRoundRobin(3), Config{AlgSeed: 5}, func(p *Proc) int {
		p.Step()
		return p.ID() * 10
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range outs {
		if v != pid*10 {
			t.Errorf("out[%d] = %d", pid, v)
		}
		if !finished[pid] {
			t.Errorf("process %d unfinished", pid)
		}
	}
	if res.TotalSteps != 3 {
		t.Errorf("TotalSteps = %d", res.TotalSteps)
	}
}

func TestRunConcurrent(t *testing.T) {
	reg := memory.NewRegister[int]()
	res, err := RunConcurrent(8, func(p *Proc) {
		for i := 0; i < 100; i++ {
			reg.Write(p, p.ID())
			if _, ok := reg.Read(p); !ok {
				t.Error("register empty after own write")
				return
			}
		}
	}, Config{AlgSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 8*200 {
		t.Fatalf("TotalSteps = %d, want %d", res.TotalSteps, 8*200)
	}
	for pid, f := range res.Finished {
		if !f {
			t.Errorf("process %d unfinished", pid)
		}
	}
}

func TestCollectConcurrent(t *testing.T) {
	outs, res, err := CollectConcurrent(4, Config{AlgSeed: 3}, func(p *Proc) string {
		p.Step()
		if p.ID()%2 == 0 {
			return "even"
		}
		return "odd"
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 4 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
	for pid, v := range outs {
		want := "odd"
		if pid%2 == 0 {
			want = "even"
		}
		if v != want {
			t.Errorf("out[%d] = %q", pid, v)
		}
	}
}

func TestManyProcessesControlled(t *testing.T) {
	// Stress the handshake machinery with a larger n.
	const n = 128
	snap := memory.NewSnapshot[int](n)
	res, err := RunControlled(sched.NewRandom(n, xrand.New(2)), func(p *Proc) {
		snap.Update(p, p.ID(), p.ID())
		view := snap.Scan(p)
		if !view[p.ID()].OK {
			t.Error("own update invisible in scan")
		}
	}, Config{AlgSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 2*n {
		t.Fatalf("TotalSteps = %d, want %d", res.TotalSteps, 2*n)
	}
}

func TestCrashedProcessStopsAtAbort(t *testing.T) {
	// A crashed process blocked at Step must be reclaimed when the run
	// ends; its goroutine exits via the abort path without completing
	// the body.
	completed := make([]bool, 2)
	src := &crashOneSource{n: 2}
	res, err := RunControlled(src, func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Step()
		}
		completed[p.ID()] = true
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !completed[0] {
		t.Error("live process did not complete")
	}
	if res.Finished[1] {
		t.Error("crashed process reported finished")
	}
}

func TestResultSlotsCounted(t *testing.T) {
	res, err := RunControlled(sched.NewRoundRobin(2), func(p *Proc) {
		p.Step()
		p.Step()
	}, Config{AlgSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots < 4 {
		t.Fatalf("Slots = %d, want >= 4", res.Slots)
	}
}

func TestStepsVisibleDuringConcurrentRun(t *testing.T) {
	// Steps uses an atomic counter so metrics can be read mid-run.
	observed := make([]int64, 2)
	res, err := RunConcurrent(2, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Step()
		}
		observed[p.ID()] = p.Steps() // own-goroutine read
	}, Config{AlgSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for pid, o := range observed {
		if o != 100 {
			t.Fatalf("process %d observed %d own steps", pid, o)
		}
	}
	if res.TotalSteps != 200 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
}

func TestRunControlledSequentialReuseOfProcIDs(t *testing.T) {
	// Two back-to-back runs must be fully independent.
	for run := 0; run < 2; run++ {
		res, err := RunControlled(sched.NewRoundRobin(3), func(p *Proc) {
			p.Step()
		}, Config{AlgSeed: uint64(run)})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSteps != 3 {
			t.Fatalf("run %d: TotalSteps = %d", run, res.TotalSteps)
		}
	}
}

func TestBatonHandoffUnderCrashHalfRace(t *testing.T) {
	// Exercises the baton handoff — grants, releases, drain of unfinished
	// processes, and the bulk-skip path — under a crashing schedule. Kept
	// small so it stays cheap under -race -short; the race detector is the
	// point, the assertions are a sanity floor.
	const n = 8
	for seed := uint64(1); seed <= 8; seed++ {
		src := sched.NewCrashHalf(n, xrand.New(seed))
		res, err := RunControlled(src, func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Step()
			}
		}, Config{AlgSeed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pid := 0; pid < n; pid++ {
			if res.Finished[pid] && res.Steps[pid] != 50 {
				t.Errorf("seed %d: finished pid %d took %d steps, want 50", seed, pid, res.Steps[pid])
			}
		}
		if res.TotalSteps == 0 || res.Slots < res.TotalSteps {
			t.Errorf("seed %d: implausible accounting: steps=%d slots=%d", seed, res.TotalSteps, res.Slots)
		}
	}
}
