package sim

import (
	"errors"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// countdownMachine is the simplest FlatMachine: process pid performs
// need[pid] operations, each drawing one value from its stream so RNG
// plumbing is exercised.
type countdownMachine struct {
	need []int
	left []int
	sum  []uint64
}

func newCountdown(need []int) *countdownMachine {
	m := &countdownMachine{need: need, left: make([]int, len(need)), sum: make([]uint64, len(need))}
	return m
}

func (m *countdownMachine) Init(pid int, rng *xrand.Rand) {
	m.left[pid] = m.need[pid]
	m.sum[pid] = rng.Uint64()
}

func (m *countdownMachine) Step(pid int, rng *xrand.Rand) bool {
	m.sum[pid] ^= rng.Uint64()
	m.left[pid]--
	return m.left[pid] == 0
}

// countdownBody is the coroutine-engine equivalent of countdownMachine.
func countdownBody(need []int, sum []uint64) Body {
	return func(p *Proc) {
		sum[p.ID()] = p.Rng().Uint64()
		for i := 0; i < need[p.ID()]; i++ {
			p.Step()
			sum[p.ID()] ^= p.Rng().Uint64()
		}
	}
}

// TestFlatMatchesCoroutineOnTrivialBodies pins the engine-level identity
// on a body with no protocol content: steps, slots, finish flags, and
// every RNG draw must match the coroutine engine across schedule kinds.
func TestFlatMatchesCoroutineOnTrivialBodies(t *testing.T) {
	need := []int{3, 1, 7, 2, 5, 4, 6, 1}
	n := len(need)
	for _, kind := range sched.Kinds() {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := Config{AlgSeed: 0xfeed + seed}
			coSum := make([]uint64, n)
			coRes, coErr := RunControlled(sched.New(kind, n, seed), countdownBody(need, coSum), cfg)

			m := newCountdown(need)
			flRes, flErr := RunFlat(sched.New(kind, n, seed), m, cfg)

			if (coErr == nil) != (flErr == nil) {
				t.Fatalf("%v seed %d: error mismatch: coroutine %v flat %v", kind, seed, coErr, flErr)
			}
			if coRes.Slots != flRes.Slots || coRes.TotalSteps != flRes.TotalSteps {
				t.Fatalf("%v seed %d: slots/steps mismatch: coroutine (%d,%d) flat (%d,%d)",
					kind, seed, coRes.Slots, coRes.TotalSteps, flRes.Slots, flRes.TotalSteps)
			}
			for pid := 0; pid < n; pid++ {
				if coRes.Steps[pid] != flRes.Steps[pid] {
					t.Errorf("%v seed %d: steps[%d] = %d, coroutine %d", kind, seed, pid, flRes.Steps[pid], coRes.Steps[pid])
				}
				if coRes.Finished[pid] != flRes.Finished[pid] {
					t.Errorf("%v seed %d: finished[%d] = %v, coroutine %v", kind, seed, pid, flRes.Finished[pid], coRes.Finished[pid])
				}
				// Crashed processes stop at different points in their local
				// computation (the coroutine body parks mid-op), so only
				// compare draws for finished processes.
				if coRes.Finished[pid] && coSum[pid] != m.sum[pid] {
					t.Errorf("%v seed %d: rng draw mismatch for pid %d", kind, seed, pid)
				}
			}
		}
	}
}

// TestFlatScheduleExhausted pins the finite-schedule error path.
func TestFlatScheduleExhausted(t *testing.T) {
	m := newCountdown([]int{2, 2})
	_, err := RunFlat(sched.NewExplicit(2, []int{0, 1}), m, Config{AlgSeed: 1})
	if !errors.Is(err, ErrScheduleExhausted) {
		t.Fatalf("err = %v, want ErrScheduleExhausted", err)
	}
}

// TestFlatSlotBudget pins the budget error path and the slot clamp.
func TestFlatSlotBudget(t *testing.T) {
	m := newCountdown([]int{1 << 20, 1})
	res, err := RunFlat(sched.NewRoundRobin(2), m, Config{AlgSeed: 1, MaxSlots: 100})
	if !errors.Is(err, ErrSlotBudget) {
		t.Fatalf("err = %v, want ErrSlotBudget", err)
	}
	if res.Slots != 100 {
		t.Fatalf("slots = %d, want clamped 100", res.Slots)
	}
}

// TestFlatRejectsFaultSchedules pins that the flat engine refuses fault
// schedules instead of silently running unfaulted.
func TestFlatRejectsFaultSchedules(t *testing.T) {
	sch, serr := fault.NewSchedule(2, nil)
	if serr != nil {
		t.Fatalf("building empty fault schedule: %v", serr)
	}
	_, err := RunFlat(sched.NewRoundRobin(2), newCountdown([]int{1, 1}), Config{AlgSeed: 1, Faults: sch})
	if !errors.Is(err, ErrFlatFaults) {
		t.Fatalf("err = %v, want ErrFlatFaults", err)
	}
}

// TestFlatRunnerReuse pins that a reused runner (and reused Result) is
// deterministic: back-to-back runs of different sizes must match fresh
// runs exactly.
func TestFlatRunnerReuse(t *testing.T) {
	fr := NewFlatRunner[*countdownMachine]()
	var res Result
	for _, need := range [][]int{{5, 2, 9}, {1, 1}, {4, 8, 2, 6, 1, 3, 7, 5}} {
		n := len(need)
		m := newCountdown(need)
		if err := fr.RunInto(sched.NewRoundRobin(n), m, Config{AlgSeed: 9}, &res); err != nil {
			t.Fatalf("reused run failed: %v", err)
		}
		fresh, err := RunFlat(sched.NewRoundRobin(n), newCountdown(need), Config{AlgSeed: 9})
		if err != nil {
			t.Fatalf("fresh run failed: %v", err)
		}
		if res.Slots != fresh.Slots || res.TotalSteps != fresh.TotalSteps {
			t.Fatalf("n=%d: reused (%d,%d) != fresh (%d,%d)", n, res.Slots, res.TotalSteps, fresh.Slots, fresh.TotalSteps)
		}
		for pid := 0; pid < n; pid++ {
			if res.Steps[pid] != fresh.Steps[pid] || res.Finished[pid] != fresh.Finished[pid] {
				t.Fatalf("n=%d pid=%d: reused run drifted from fresh run", n, pid)
			}
		}
	}
}

// TestPutStateClearsScratchArenas is the regression test for pooled
// trial-state hygiene: after a run is returned to the pool, its Procs'
// scratch arenas must hold no entries, otherwise the pool pins the
// finished run's shared objects (and their buffers) until the next trial
// of the same or larger size happens to evict them. Runs two
// differently-sized trials back to back through the pool to cover the
// resize path, then inspects the pooled state directly.
func TestPutStateClearsScratchArenas(t *testing.T) {
	scanBody := func(n int) Body {
		return func(p *Proc) {
			snap := memory.NewSnapshot[int](n)
			snap.Update(p, p.ID(), p.ID())
			_ = snap.ScanScratch(p) // populates the scratch arena keyed by snap
		}
	}
	for _, n := range []int{16, 4} {
		if _, err := RunControlled(sched.NewRoundRobin(n), scanBody(n), Config{AlgSeed: 3}); err != nil {
			t.Fatalf("n=%d run failed: %v", n, err)
		}
		rs := getState(n)
		for i := 0; i < len(rs.procs); i++ {
			if len(rs.procs[i].scratch) != 0 {
				t.Errorf("n=%d: pooled proc %d retains %d scratch entries, want 0", n, i, len(rs.procs[i].scratch))
			}
		}
		putState(rs, n)
	}
}
