package linearize_test

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/linearize"
)

// TestRegisterSemanticsRejectsFaultedHistory is the expected-failure
// guard for the fault sweep's oracles: a history produced by a weakened
// (stale-reading) register must NOT linearize under atomic register
// semantics. If this test ever passes vacuously — the checker accepting
// the history — every monitor built on Check is worthless.
func TestRegisterSemanticsRejectsFaultedHistory(t *testing.T) {
	// Sequential (non-overlapping) ops: write 1, write 2, then a read that
	// returns the overwritten 1 — exactly what a depth-1 stale-read fault
	// produces on a register. Last-write-wins has no linearization.
	faulted := []linearize.Op{
		{Proc: 0, Kind: linearize.Write, Arg: 1, Start: 1, End: 2},
		{Proc: 1, Kind: linearize.Write, Arg: 2, Start: 3, End: 4},
		{Proc: 2, Kind: linearize.Read, Out: 1, OutOK: true, Start: 5, End: 6},
	}
	ok, err := linearize.Check(linearize.RegisterSemantics{}, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale read linearized under atomic register semantics: the monitor oracle is vacuous")
	}

	// Control: the honest history (read returns 2) must linearize, so the
	// rejection above is discriminating, not blanket.
	honest := append([]linearize.Op(nil), faulted...)
	honest[2].Out = 2
	ok, err = linearize.Check(linearize.RegisterSemantics{}, honest)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("honest history rejected")
	}
}

// TestRegisterSemanticsNullReadRejected: a null read (OutOK=false) after
// a completed write is the safe-register fault mode with depth 0; atomic
// semantics must reject it too.
func TestRegisterSemanticsNullReadRejected(t *testing.T) {
	history := []linearize.Op{
		{Proc: 0, Kind: linearize.Write, Arg: 7, Start: 1, End: 2},
		{Proc: 1, Kind: linearize.Read, OutOK: false, Start: 3, End: 4},
	}
	ok, err := linearize.Check(linearize.RegisterSemantics{}, history)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("null read after completed write linearized")
	}
}

// TestMaxRegisterSemanticsRejectsRegression mirrors the register case
// for the max-register monitor: a read below an earlier completed
// write's maximum must not linearize.
func TestMaxRegisterSemanticsRejectsRegression(t *testing.T) {
	history := []linearize.Op{
		{Proc: 0, Kind: linearize.Write, Arg: 5, Start: 1, End: 2},
		{Proc: 0, Kind: linearize.Write, Arg: 9, Start: 3, End: 4},
		{Proc: 1, Kind: linearize.Read, Out: 5, OutOK: true, Start: 5, End: 6},
	}
	ok, err := linearize.Check(linearize.MaxRegisterSemantics{}, history)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("regressed max-register read linearized")
	}
}

// TestRecorderLimit pins the bounded-recording contract the monitors
// rely on: beyond the limit operations are dropped (not recorded), the
// drop count is reported, and the retained prefix stays checkable.
func TestRecorderLimit(t *testing.T) {
	var r linearize.Recorder
	r.SetLimit(4)
	for i := 0; i < 6; i++ {
		s := r.Begin()
		r.EndWrite(0, int64(i), s)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	ok, err := linearize.Check(linearize.RegisterSemantics{}, r.History())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("retained prefix of writes should linearize")
	}
}
