// Package linearize implements a Wing–Gong-style linearizability checker
// for the shared-object histories this repository's protocols run on.
// The memory objects are linearizable by construction (each operation is
// a critical section), but the paper's correctness arguments lean on
// atomicity so heavily — total ordering of scans, unique clean values,
// monotone max registers — that we validate it empirically: record a
// concurrent history, then search for a witness linearization.
//
// An operation is recorded as an interval [Start, End] of logical
// timestamps taken outside the operation; the true linearization point
// lies inside the interval. The checker does a memoized DFS over
// candidate next-operations: an operation may be linearized next only if
// no other pending operation finished before it started (real-time
// order), and its response must match the object's sequential semantics.
//
// Complexity is exponential in the worst case; intended for histories of
// up to a few dozen operations, which is what the tests record.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// OpKind distinguishes reads and writes.
type OpKind int

const (
	// Read returns the object's value.
	Read OpKind = iota + 1
	// Write installs a value.
	Write
)

// Op is one recorded operation.
type Op struct {
	// Proc is the process that issued the operation (informational).
	Proc int
	// Kind is Read or Write.
	Kind OpKind
	// Arg is the written value (Write) or unused (Read).
	Arg int64
	// Out is the returned value (Read) or unused (Write).
	Out int64
	// OutOK reports whether the read found a value (false = null).
	OutOK bool
	// Start and End are logical timestamps bracketing the operation.
	Start, End int64
}

// Semantics defines a sequential object for the checker.
type Semantics interface {
	// Init returns the initial state.
	Init() int64
	// Apply returns the state after a write of arg.
	Apply(state int64, arg int64) int64
	// ReadValue returns what a read must observe in state.
	ReadValue(state int64) int64
}

// RegisterSemantics is last-write-wins.
type RegisterSemantics struct{}

// Init implements Semantics.
func (RegisterSemantics) Init() int64 { return 0 }

// Apply implements Semantics.
func (RegisterSemantics) Apply(_ int64, arg int64) int64 { return arg }

// ReadValue implements Semantics.
func (RegisterSemantics) ReadValue(state int64) int64 { return state }

// MaxRegisterSemantics keeps the maximum written value.
type MaxRegisterSemantics struct{}

// Init implements Semantics.
func (MaxRegisterSemantics) Init() int64 { return 0 }

// Apply implements Semantics.
func (MaxRegisterSemantics) Apply(state, arg int64) int64 {
	if arg > state {
		return arg
	}
	return state
}

// ReadValue implements Semantics.
func (MaxRegisterSemantics) ReadValue(state int64) int64 { return state }

// Check reports whether the history has a linearization under the given
// sequential semantics. Histories longer than 64 operations are
// rejected (the memoization key is a bitmask).
func Check(sem Semantics, history []Op) (bool, error) {
	n := len(history)
	if n == 0 {
		return true, nil
	}
	if n > 64 {
		return false, fmt.Errorf("linearize: history of %d ops exceeds the 64-op limit", n)
	}
	ops := make([]Op, n)
	copy(ops, history)
	// Sorting by start time keeps candidate scans cheap and the memo
	// stable; it does not affect correctness.
	sort.Slice(ops, func(a, b int) bool { return ops[a].Start < ops[b].Start })

	type memoKey struct {
		done    uint64
		state   int64
		written bool
	}
	memo := make(map[memoKey]bool)

	var dfs func(done uint64, state int64, written bool) bool
	dfs = func(done uint64, state int64, written bool) bool {
		if done == (uint64(1)<<n)-1 {
			return true
		}
		key := memoKey{done: done, state: state, written: written}
		if v, ok := memo[key]; ok {
			return v
		}
		// minEnd over pending ops: a pending op may be linearized next
		// only if no other pending op ended before it started.
		var minEnd int64 = 1<<63 - 1
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		ok := false
		for i := 0; i < n && !ok; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			op := ops[i]
			if op.Start > minEnd {
				continue // some pending op precedes it in real time
			}
			switch op.Kind {
			case Write:
				ok = dfs(done|(1<<i), sem.Apply(state, op.Arg), true)
			case Read:
				if written {
					if op.OutOK && op.Out == sem.ReadValue(state) {
						ok = dfs(done|(1<<i), state, written)
					}
				} else if !op.OutOK {
					ok = dfs(done|(1<<i), state, written)
				}
			}
		}
		memo[key] = ok
		return ok
	}
	return dfs(0, sem.Init(), false), nil
}

// Recorder assigns logical timestamps and accumulates a history; safe
// for concurrent use.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// Begin returns a start timestamp; call it immediately before invoking
// the operation on the object under test.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// EndWrite records a completed write that started at start.
func (r *Recorder) EndWrite(proc int, arg int64, start int64) {
	end := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{Proc: proc, Kind: Write, Arg: arg, Start: start, End: end})
	r.mu.Unlock()
}

// EndRead records a completed read that started at start.
func (r *Recorder) EndRead(proc int, out int64, outOK bool, start int64) {
	end := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{Proc: proc, Kind: Read, Out: out, OutOK: outOK, Start: start, End: end})
	r.mu.Unlock()
}

// History returns a copy of the recorded operations.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}
