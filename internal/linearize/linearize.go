// Package linearize implements a Wing–Gong-style linearizability checker
// for the shared-object histories this repository's protocols run on.
// The memory objects are linearizable by construction (each operation is
// a critical section), but the paper's correctness arguments lean on
// atomicity so heavily — total ordering of scans, unique clean values,
// monotone max registers — that we validate it empirically: record a
// concurrent history, then search for a witness linearization.
//
// An operation is recorded as an interval [Start, End] of logical
// timestamps taken outside the operation; the true linearization point
// lies inside the interval. The checker does a memoized DFS over
// candidate next-operations: an operation may be linearized next only if
// no other pending operation finished before it started (real-time
// order), and its response must match the object's sequential semantics.
//
// Complexity is exponential in the worst case; intended for histories of
// up to a few dozen operations, which is what the tests record.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// OpKind distinguishes reads and writes.
type OpKind int

const (
	// Read returns the object's value.
	Read OpKind = iota + 1
	// Write installs a value.
	Write
)

// Op is one recorded operation.
type Op struct {
	// Proc is the process that issued the operation (informational).
	Proc int
	// Kind is Read or Write.
	Kind OpKind
	// Arg is the written value (Write) or unused (Read).
	Arg int64
	// Out is the returned value (Read) or unused (Write).
	Out int64
	// OutOK reports whether the read found a value (false = null).
	OutOK bool
	// Start and End are logical timestamps bracketing the operation.
	Start, End int64
}

// Semantics defines a sequential object for the checker.
type Semantics interface {
	// Init returns the initial state.
	Init() int64
	// Apply returns the state after a write of arg.
	Apply(state int64, arg int64) int64
	// ReadValue returns what a read must observe in state.
	ReadValue(state int64) int64
}

// RegisterSemantics is last-write-wins.
type RegisterSemantics struct{}

// Init implements Semantics.
func (RegisterSemantics) Init() int64 { return 0 }

// Apply implements Semantics.
func (RegisterSemantics) Apply(_ int64, arg int64) int64 { return arg }

// ReadValue implements Semantics.
func (RegisterSemantics) ReadValue(state int64) int64 { return state }

// MaxRegisterSemantics keeps the maximum written value.
type MaxRegisterSemantics struct{}

// Init implements Semantics.
func (MaxRegisterSemantics) Init() int64 { return 0 }

// Apply implements Semantics.
func (MaxRegisterSemantics) Apply(state, arg int64) int64 {
	if arg > state {
		return arg
	}
	return state
}

// ReadValue implements Semantics.
func (MaxRegisterSemantics) ReadValue(state int64) int64 { return state }

// SnapshotSemantics models an n-component atomic snapshot by packing the
// whole component vector into the checker's int64 state word: component
// i occupies the 8 bits at shift 8i, holding value+1 for a set component
// and 0 for an unset one. That limits checkable histories to at most 7
// components with values in [0, 254] — comfortably above what a
// sub-64-op history can use. An Update(i, v) is recorded as a Write of
// EncodeSnapshotUpdate(i, v); a Scan is recorded as a Read returning
// EncodeSnapshotView of the observed entries, with OutOK reporting
// whether any component was set (the checker requires reads linearized
// before the first write to return OutOK=false, which for a snapshot is
// exactly the all-unset view).
type SnapshotSemantics struct {
	// Components is the snapshot width n (at most 7).
	Components int
}

const (
	snapCompBits = 8
	snapCompMask = int64(1)<<snapCompBits - 1
)

// EncodeSnapshotUpdate packs an Update(component, value) argument.
// component must be in [0, 7) and value in [0, 254].
func EncodeSnapshotUpdate(component int, value int64) int64 {
	if component < 0 || component >= 7 {
		panic(fmt.Sprintf("linearize: snapshot component %d out of range", component))
	}
	if value < 0 || value >= snapCompMask {
		panic(fmt.Sprintf("linearize: snapshot value %d out of range", value))
	}
	return int64(component)<<snapCompBits | value
}

// EncodeSnapshotView packs an observed component vector: values[i] is
// component i's value and ok[i] whether it was set.
func EncodeSnapshotView(values []int64, ok []bool) int64 {
	var state int64
	for i, v := range values {
		if !ok[i] {
			continue
		}
		if v < 0 || v >= snapCompMask {
			panic(fmt.Sprintf("linearize: snapshot value %d out of range", v))
		}
		state |= (v + 1) << (uint(i) * snapCompBits)
	}
	return state
}

// Init implements Semantics.
func (SnapshotSemantics) Init() int64 { return 0 }

// Apply implements Semantics.
func (s SnapshotSemantics) Apply(state, arg int64) int64 {
	i := arg >> snapCompBits
	v := arg & snapCompMask
	shift := uint(i) * snapCompBits
	return state&^(snapCompMask<<shift) | (v+1)<<shift
}

// ReadValue implements Semantics.
func (SnapshotSemantics) ReadValue(state int64) int64 { return state }

// Check reports whether the history has a linearization under the given
// sequential semantics. Histories longer than 64 operations are
// rejected (the memoization key is a bitmask).
func Check(sem Semantics, history []Op) (bool, error) {
	n := len(history)
	if n == 0 {
		return true, nil
	}
	if n > 64 {
		return false, fmt.Errorf("linearize: history of %d ops exceeds the 64-op limit", n)
	}
	ops := make([]Op, n)
	copy(ops, history)
	// Sorting by start time keeps candidate scans cheap and the memo
	// stable; it does not affect correctness.
	sort.Slice(ops, func(a, b int) bool { return ops[a].Start < ops[b].Start })

	type memoKey struct {
		done    uint64
		state   int64
		written bool
	}
	memo := make(map[memoKey]bool)

	var dfs func(done uint64, state int64, written bool) bool
	dfs = func(done uint64, state int64, written bool) bool {
		if done == (uint64(1)<<n)-1 {
			return true
		}
		key := memoKey{done: done, state: state, written: written}
		if v, ok := memo[key]; ok {
			return v
		}
		// minEnd over pending ops: a pending op may be linearized next
		// only if no other pending op ended before it started.
		var minEnd int64 = 1<<63 - 1
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		ok := false
		for i := 0; i < n && !ok; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			op := ops[i]
			if op.Start > minEnd {
				continue // some pending op precedes it in real time
			}
			switch op.Kind {
			case Write:
				ok = dfs(done|(1<<i), sem.Apply(state, op.Arg), true)
			case Read:
				if written {
					if op.OutOK && op.Out == sem.ReadValue(state) {
						ok = dfs(done|(1<<i), state, written)
					}
				} else if !op.OutOK {
					ok = dfs(done|(1<<i), state, written)
				}
			}
		}
		memo[key] = ok
		return ok
	}
	return dfs(0, sem.Init(), false), nil
}

// Recorder assigns logical timestamps and accumulates a history; safe
// for concurrent use.
type Recorder struct {
	clock   atomic.Int64
	mu      sync.Mutex
	ops     []Op
	limit   int
	dropped int64
}

// SetLimit caps the retained history at k operations; operations
// completing after the cap are counted in Dropped instead of retained.
// A monitor recording an unbounded run can keep its history inside the
// checker's 64-op window and fall back to cheaper online checks once the
// window is full. Zero (the default) means unlimited.
func (r *Recorder) SetLimit(k int) {
	r.mu.Lock()
	r.limit = k
	r.mu.Unlock()
}

// Dropped reports how many completed operations the limit discarded.
// A checker should only be run on the retained history when Dropped is
// zero: a retained read may cite a write whose completion was dropped,
// which the checker would misreport as a violation.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the number of retained operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// append retains op unless the limit is reached; callers hold no locks.
func (r *Recorder) append(op Op) {
	r.mu.Lock()
	if r.limit > 0 && len(r.ops) >= r.limit {
		r.dropped++
	} else {
		r.ops = append(r.ops, op)
	}
	r.mu.Unlock()
}

// Begin returns a start timestamp; call it immediately before invoking
// the operation on the object under test.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// EndWrite records a completed write that started at start.
func (r *Recorder) EndWrite(proc int, arg int64, start int64) {
	end := r.clock.Add(1)
	r.append(Op{Proc: proc, Kind: Write, Arg: arg, Start: start, End: end})
}

// EndRead records a completed read that started at start.
func (r *Recorder) EndRead(proc int, out int64, outOK bool, start int64) {
	end := r.clock.Add(1)
	r.append(Op{Proc: proc, Kind: Read, Out: out, OutOK: outOK, Start: start, End: end})
}

// History returns a copy of the recorded operations.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}
