package linearize

import (
	"sync"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestEmptyHistory(t *testing.T) {
	ok, err := Check(RegisterSemantics{}, nil)
	if err != nil || !ok {
		t.Fatalf("empty history: ok=%v err=%v", ok, err)
	}
}

func TestTooLongHistoryRejected(t *testing.T) {
	hist := make([]Op, 65)
	for i := range hist {
		hist[i] = Op{Kind: Write, Start: int64(2 * i), End: int64(2*i + 1)}
	}
	if _, err := Check(RegisterSemantics{}, hist); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSequentialRegisterHistories(t *testing.T) {
	tests := []struct {
		name string
		hist []Op
		want bool
	}{
		{
			name: "write then read",
			hist: []Op{
				{Kind: Write, Arg: 5, Start: 1, End: 2},
				{Kind: Read, Out: 5, OutOK: true, Start: 3, End: 4},
			},
			want: true,
		},
		{
			name: "read before any write sees null",
			hist: []Op{
				{Kind: Read, OutOK: false, Start: 1, End: 2},
				{Kind: Write, Arg: 5, Start: 3, End: 4},
			},
			want: true,
		},
		{
			name: "read misses the only write",
			hist: []Op{
				{Kind: Write, Arg: 5, Start: 1, End: 2},
				{Kind: Read, OutOK: false, Start: 3, End: 4},
			},
			want: false,
		},
		{
			name: "stale read after overwrite",
			hist: []Op{
				{Kind: Write, Arg: 1, Start: 1, End: 2},
				{Kind: Write, Arg: 2, Start: 3, End: 4},
				{Kind: Read, Out: 1, OutOK: true, Start: 5, End: 6},
			},
			want: false,
		},
		{
			name: "concurrent write allows either read value",
			hist: []Op{
				{Kind: Write, Arg: 1, Start: 1, End: 10},
				{Kind: Write, Arg: 2, Start: 2, End: 9},
				{Kind: Read, Out: 1, OutOK: true, Start: 3, End: 8},
			},
			want: true,
		},
		{
			name: "new-old read inversion is not linearizable",
			hist: []Op{
				{Kind: Write, Arg: 1, Start: 1, End: 2},
				{Kind: Write, Arg: 2, Start: 3, End: 4},
				{Kind: Read, Out: 2, OutOK: true, Start: 5, End: 6},
				{Kind: Read, Out: 1, OutOK: true, Start: 7, End: 8},
			},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Check(RegisterSemantics{}, tt.hist)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMaxRegisterSemanticsHistories(t *testing.T) {
	// Writing a smaller value must not lower the maximum.
	hist := []Op{
		{Kind: Write, Arg: 9, Start: 1, End: 2},
		{Kind: Write, Arg: 3, Start: 3, End: 4},
		{Kind: Read, Out: 9, OutOK: true, Start: 5, End: 6},
	}
	ok, err := Check(MaxRegisterSemantics{}, hist)
	if err != nil || !ok {
		t.Fatalf("max history should linearize: ok=%v err=%v", ok, err)
	}
	// The same history is NOT a valid plain register history.
	ok, err = Check(RegisterSemantics{}, hist)
	if err != nil || ok {
		t.Fatalf("plain register semantics should reject: ok=%v err=%v", ok, err)
	}
	// A max register may never go backwards.
	bad := []Op{
		{Kind: Write, Arg: 9, Start: 1, End: 2},
		{Kind: Read, Out: 3, OutOK: true, Start: 3, End: 4},
	}
	ok, err = Check(MaxRegisterSemantics{}, bad)
	if err != nil || ok {
		t.Fatalf("regressing max should be rejected: ok=%v err=%v", ok, err)
	}
}

// recordedRegisterHistory hammers a memory.Register from several
// goroutines while recording intervals.
func recordedRegisterHistory(t *testing.T, writers, readers, opsEach int, seed uint64) []Op {
	t.Helper()
	var (
		rec Recorder
		reg = memory.NewRegister[int64]()
		wg  sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := xrand.New(seed + uint64(w))
			for i := 0; i < opsEach; i++ {
				v := int64(rng.Intn(1000))
				start := rec.Begin()
				reg.Write(memory.Free, v)
				rec.EndWrite(w, v, start)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				start := rec.Begin()
				v, ok := reg.Read(memory.Free)
				rec.EndRead(writers+r, v, ok, start)
			}
		}()
	}
	wg.Wait()
	return rec.History()
}

func TestMemoryRegisterIsLinearizable(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		hist := recordedRegisterHistory(t, 3, 3, 4, uint64(trial)*7+1)
		ok, err := Check(RegisterSemantics{}, hist)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: recorded history not linearizable:\n%+v", trial, hist)
		}
	}
}

func TestMemoryMaxRegisterIsLinearizable(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var (
			rec Recorder
			m   = memory.NewMaxRegister[int64]()
			wg  sync.WaitGroup
		)
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := xrand.New(uint64(trial*31 + w))
				for i := 0; i < 4; i++ {
					v := int64(rng.Intn(1000))
					start := rec.Begin()
					m.WriteMax(memory.Free, uint64(v), v)
					rec.EndWrite(w, v, start)
				}
			}()
		}
		for r := 0; r < 3; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					start := rec.Begin()
					_, v, ok := m.ReadMax(memory.Free)
					rec.EndRead(3+r, v, ok, start)
				}
			}()
		}
		wg.Wait()
		ok, err := Check(MaxRegisterSemantics{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: max-register history not linearizable", trial)
		}
	}
}

func TestTreeMaxRegisterIsLinearizable(t *testing.T) {
	// The interesting target: the register-built tree max register's
	// linearizability is a theorem (AACH), not a mutex artifact.
	for trial := 0; trial < 20; trial++ {
		var (
			rec Recorder
			m   = memory.NewTreeMaxRegister[int64](10)
			wg  sync.WaitGroup
		)
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := xrand.New(uint64(trial*53 + w))
				for i := 0; i < 3; i++ {
					v := int64(rng.Intn(1 << 10))
					start := rec.Begin()
					m.WriteMax(memory.Free, uint64(v), v)
					rec.EndWrite(w, v, start)
				}
			}()
		}
		for r := 0; r < 2; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					start := rec.Begin()
					_, v, ok := m.ReadMax(memory.Free)
					rec.EndRead(3+r, v, ok, start)
				}
			}()
		}
		wg.Wait()
		ok, err := Check(MaxRegisterSemantics{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: tree max register history not linearizable:\n%+v", trial, rec.History())
		}
	}
}

func TestRecorderHistoryIsCopy(t *testing.T) {
	var rec Recorder
	start := rec.Begin()
	rec.EndWrite(0, 1, start)
	h := rec.History()
	h[0].Arg = 99
	if rec.History()[0].Arg == 99 {
		t.Fatal("History aliases internal state")
	}
}
