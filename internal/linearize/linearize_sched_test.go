package linearize_test

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/linearize"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// These tests record operation histories under *controlled* adversarial
// schedules — skewed-tail interleavings and crash schedules — instead of
// the free-running goroutine races the concurrent tests use. Under the
// controlled scheduler an operation's interval still overlaps other
// processes' operations whenever the op spans multiple shared-memory
// steps (tree max registers) or the schedule preempts between the
// recorder's Begin and the op's step, so the checker is exercised on
// genuinely concurrent intervals with a reproducible interleaving.

// encodeView packs a memory snapshot view for the checker.
func encodeView(view []memory.Entry[int64]) (packed int64, any bool) {
	values := make([]int64, len(view))
	oks := make([]bool, len(view))
	for i, e := range view {
		if e.OK {
			values[i], oks[i] = e.Value, true
			any = true
		}
	}
	return linearize.EncodeSnapshotView(values, oks), any
}

func TestSnapshotSemanticsHistories(t *testing.T) {
	sem := linearize.SnapshotSemantics{Components: 3}
	up := linearize.EncodeSnapshotUpdate
	view := func(vals ...int64) int64 { // vals[i] < 0 means unset
		values := make([]int64, len(vals))
		oks := make([]bool, len(vals))
		for i, v := range vals {
			if v >= 0 {
				values[i], oks[i] = v, true
			}
		}
		return linearize.EncodeSnapshotView(values, oks)
	}
	tests := []struct {
		name string
		hist []linearize.Op
		want bool
	}{
		{
			name: "scan sees both completed updates",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 2},
				{Kind: linearize.Write, Arg: up(1, 7), Start: 3, End: 4},
				{Kind: linearize.Read, Out: view(5, 7, -1), OutOK: true, Start: 5, End: 6},
			},
			want: true,
		},
		{
			name: "scan missing a completed update is not atomic",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 2},
				{Kind: linearize.Read, Out: view(-1, -1, -1), OutOK: false, Start: 3, End: 4},
			},
			want: false,
		},
		{
			name: "concurrent update may or may not be seen",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 2},
				{Kind: linearize.Write, Arg: up(1, 7), Start: 3, End: 8},
				{Kind: linearize.Read, Out: view(5, -1, -1), OutOK: true, Start: 4, End: 6},
			},
			want: true,
		},
		{
			name: "two scans disagreeing on update order",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 10},
				{Kind: linearize.Write, Arg: up(1, 7), Start: 2, End: 9},
				{Kind: linearize.Read, Out: view(5, -1, -1), OutOK: true, Start: 3, End: 4},
				{Kind: linearize.Read, Out: view(-1, 7, -1), OutOK: true, Start: 5, End: 6},
			},
			want: false,
		},
		{
			name: "overwrite of one component",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 2},
				{Kind: linearize.Write, Arg: up(0, 9), Start: 3, End: 4},
				{Kind: linearize.Read, Out: view(9, -1, -1), OutOK: true, Start: 5, End: 6},
			},
			want: true,
		},
		{
			name: "stale component after overwrite",
			hist: []linearize.Op{
				{Kind: linearize.Write, Arg: up(0, 5), Start: 1, End: 2},
				{Kind: linearize.Write, Arg: up(0, 9), Start: 3, End: 4},
				{Kind: linearize.Read, Out: view(5, -1, -1), OutOK: true, Start: 5, End: 6},
			},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := linearize.Check(sem, tt.hist)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSnapshotLinearizableUnderSkewedSchedules(t *testing.T) {
	// 3 writers each update their component 3 times; 2 scanners scan 3
	// times. Explicit skewed-tail schedule: writer 0 is starved while the
	// rest run, then finishes alone; plus a staggered-block schedule.
	const writers, scanners, opsEach = 3, 2, 3
	n := writers + scanners

	mkSkewed := func() sched.Source {
		// Give pids 1..4 a long prefix, then let pid 0 run its tail.
		var slots []int
		for r := 0; r < 64; r++ {
			for pid := 1; pid < n; pid++ {
				slots = append(slots, pid)
			}
		}
		for r := 0; r < 64; r++ {
			slots = append(slots, 0)
		}
		return sched.NewExplicit(n, slots)
	}
	sources := map[string]func(trial int) sched.Source{
		"explicit-skewed-tail": func(int) sched.Source { return mkSkewed() },
		"staggered": func(trial int) sched.Source {
			return sched.NewStaggered(n, 4, xrand.New(uint64(trial)*13+1))
		},
	}
	for name, mk := range sources {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				rec := &linearize.Recorder{}
				snap := memory.NewSnapshot[int64](writers)
				hist := func() []linearize.Op {
					if _, err := sim.RunControlled(mk(trial), func(p *sim.Proc) {
						rng := xrand.New(uint64(trial)*31 + uint64(p.ID()) + 1)
						if p.ID() < writers {
							for i := 0; i < opsEach; i++ {
								v := int64(rng.Intn(200))
								start := rec.Begin()
								snap.Update(p, p.ID(), v)
								rec.EndWrite(p.ID(), linearize.EncodeSnapshotUpdate(p.ID(), v), start)
							}
							return
						}
						for i := 0; i < opsEach; i++ {
							start := rec.Begin()
							packed, any := encodeView(snap.Scan(p))
							rec.EndRead(p.ID(), packed, any, start)
						}
					}, sim.Config{AlgSeed: uint64(trial) + 1}); err != nil {
						t.Fatal(err)
					}
					return rec.History()
				}()
				ok, err := linearize.Check(linearize.SnapshotSemantics{Components: writers}, hist)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("trial %d: snapshot history under %s not linearizable:\n%+v", trial, name, hist)
				}
			}
		})
	}
}

func TestMaxRegisterLinearizableUnderCrashSchedule(t *testing.T) {
	// Tree max register (multi-step ops, so intervals genuinely overlap
	// under the controlled schedule) driven by a crash schedule that
	// kills the two reader processes mid-run. Crashed reads vanish from
	// the history, which only removes constraints; every completed op
	// must still linearize.
	const writers, readers = 3, 2
	n := writers + readers
	for trial := 0; trial < 10; trial++ {
		rec := &linearize.Recorder{}
		m := memory.NewTreeMaxRegister[int64](8)
		inner := sched.NewRandom(n, xrand.New(uint64(trial)*17+5))
		src := sched.NewCrashSet(inner, []int{writers, writers + 1}, 20+trial, uint64(trial)+9)
		if _, err := sim.RunControlled(src, func(p *sim.Proc) {
			rng := xrand.New(uint64(trial)*41 + uint64(p.ID()) + 3)
			if p.ID() < writers {
				for i := 0; i < 3; i++ {
					v := int64(rng.Intn(1 << 8))
					start := rec.Begin()
					m.WriteMax(p, uint64(v), v)
					rec.EndWrite(p.ID(), v, start)
				}
				return
			}
			for i := 0; i < 3; i++ {
				start := rec.Begin()
				_, v, ok := m.ReadMax(p)
				rec.EndRead(p.ID(), v, ok, start)
			}
		}, sim.Config{AlgSeed: uint64(trial) + 2}); err != nil {
			t.Fatal(err)
		}
		hist := rec.History()
		ok, err := linearize.Check(linearize.MaxRegisterSemantics{}, hist)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: max-register history under crash schedule not linearizable:\n%+v", trial, hist)
		}
	}
}

func TestSnapshotLinearizableUnderCrashSchedule(t *testing.T) {
	// Unit-cost snapshot under a crash schedule; again only scanners are
	// on the victim list so no effectful op can go unrecorded.
	const writers, scanners = 3, 2
	n := writers + scanners
	for trial := 0; trial < 10; trial++ {
		rec := &linearize.Recorder{}
		snap := memory.NewSnapshot[int64](writers)
		inner := sched.NewStaggered(n, 3, xrand.New(uint64(trial)*29+7))
		src := sched.NewCrashSet(inner, []int{writers, writers + 1}, 12+trial, uint64(trial)+4)
		if _, err := sim.RunControlled(src, func(p *sim.Proc) {
			rng := xrand.New(uint64(trial)*47 + uint64(p.ID()) + 11)
			if p.ID() < writers {
				for i := 0; i < 3; i++ {
					v := int64(rng.Intn(200))
					start := rec.Begin()
					snap.Update(p, p.ID(), v)
					rec.EndWrite(p.ID(), linearize.EncodeSnapshotUpdate(p.ID(), v), start)
				}
				return
			}
			for i := 0; i < 3; i++ {
				start := rec.Begin()
				packed, any := encodeView(snap.Scan(p))
				rec.EndRead(p.ID(), packed, any, start)
			}
		}, sim.Config{AlgSeed: uint64(trial) + 6}); err != nil {
			t.Fatal(err)
		}
		ok, err := linearize.Check(linearize.SnapshotSemantics{Components: writers}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: snapshot history under crash schedule not linearizable:\n%+v", trial, rec.History())
		}
	}
}
