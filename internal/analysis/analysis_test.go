package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestHarmonic(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {4, 25.0 / 12},
	}
	for _, tt := range tests {
		if got := Harmonic(tt.n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
	// H_n ~ ln n + gamma.
	if got := Harmonic(100000); math.Abs(got-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Errorf("Harmonic(1e5) = %v", got)
	}
}

func TestLTRMaximaDistributionSmall(t *testing.T) {
	// m=3: permutations and their LTR maxima counts:
	// 123:3  132:2  213:2  231:2  312:1  321:1
	// P[1]=2/6, P[2]=3/6, P[3]=1/6.
	d := LTRMaximaDistribution(3)
	want := []float64{0, 2.0 / 6, 3.0 / 6, 1.0 / 6}
	if len(d) != 4 {
		t.Fatalf("len = %d", len(d))
	}
	for k := range want {
		if math.Abs(d[k]-want[k]) > 1e-12 {
			t.Errorf("P[K=%d] = %v, want %v", k, d[k], want[k])
		}
	}
}

func TestLTRMaximaDistributionProperties(t *testing.T) {
	for _, m := range []int{1, 2, 5, 20, 100} {
		d := LTRMaximaDistribution(m)
		sum, mean := 0.0, 0.0
		for k, p := range d {
			if p < -1e-15 {
				t.Fatalf("m=%d: negative probability at k=%d", m, k)
			}
			sum += p
			mean += float64(k) * p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("m=%d: probabilities sum to %v", m, sum)
		}
		if math.Abs(mean-Harmonic(m)) > 1e-9 {
			t.Fatalf("m=%d: mean %v != H_m %v", m, mean, Harmonic(m))
		}
	}
	if got := LTRMaximaDistribution(-1); got != nil {
		t.Fatal("negative m should yield nil")
	}
}

func TestLTRMaximaMatchesSimulation(t *testing.T) {
	// Empirical check of the Rényi distribution: count LTR maxima of
	// random permutations.
	const m, trials = 8, 200000
	rng := xrand.New(7)
	counts := make([]int, m+1)
	for i := 0; i < trials; i++ {
		perm := rng.Perm(m)
		maxSoFar, k := -1, 0
		for _, v := range perm {
			if v > maxSoFar {
				maxSoFar = v
				k++
			}
		}
		counts[k]++
	}
	d := LTRMaximaDistribution(m)
	for k := 1; k <= m; k++ {
		got := float64(counts[k]) / trials
		if math.Abs(got-d[k]) > 0.01 {
			t.Errorf("P[K=%d]: simulated %v, exact %v", k, got, d[k])
		}
	}
}

func TestExactSifterRecurrence(t *testing.T) {
	xs := ExactSifterRecurrence(257, 6)
	if xs[0] != 256 {
		t.Fatalf("x_0 = %v", xs[0])
	}
	if xs[1] != 32 { // 2 sqrt(256)
		t.Fatalf("x_1 = %v", xs[1])
	}
	// Once below 8, geometric 3/4 contraction.
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+1e-9 {
			t.Fatalf("recurrence increased at %d: %v", i, xs)
		}
	}
	// Zero and negative guard.
	z := ExactSifterRecurrence(1, 3)
	for _, v := range z {
		if v != 0 {
			t.Fatalf("n=1 sequence = %v", z)
		}
	}
}

func TestExactVsClosedFormSifterBound(t *testing.T) {
	// The closed form x_i = 2^(2-2^(1-i)) (n-1)^(2^-i) solves the
	// recurrence exactly in the large regime.
	n := 1 << 16
	xs := ExactSifterRecurrence(n, 4)
	for i := 1; i <= 4; i++ {
		closed := stats.SifterDecayBound(n, i)
		if xs[i] > 8 && math.Abs(xs[i]-closed)/closed > 1e-9 {
			t.Fatalf("round %d: recurrence %v vs closed form %v", i, xs[i], closed)
		}
	}
}

func TestPriorityIteratedBoundMatchesStats(t *testing.T) {
	n := 1 << 12
	xs := PriorityIteratedBound(n, 6)
	for i := 0; i <= 6; i++ {
		if want := stats.PriorityDecayBound(n, i); math.Abs(xs[i]-want) > 1e-9 {
			t.Fatalf("round %d: %v vs stats %v", i, xs[i], want)
		}
	}
}

func TestDuplicateProbability(t *testing.T) {
	// The paper's range ceil(R n^2 / eps) keeps Pr[D] <= eps/2.
	n, rounds, eps := 64, 7, 0.5
	rangeSize := uint64(math.Ceil(float64(rounds) * float64(n) * float64(n) / eps))
	if p := DuplicateProbability(n, rounds, rangeSize); p > eps/2+1e-9 {
		t.Fatalf("Pr[D] = %v exceeds eps/2", p)
	}
	if DuplicateProbability(10, 3, 0) != 1 {
		t.Fatal("zero range should saturate at 1")
	}
	if DuplicateProbability(1000, 1000, 1) != 1 {
		t.Fatal("overflow case should clamp to 1")
	}
}

func TestDuplicateProbabilityMonotone(t *testing.T) {
	if err := quick.Check(func(rawM uint8, rawRange uint16) bool {
		m := int(rawM%60) + 2
		r := uint64(rawRange) + 1
		return DuplicateProbability(m, 3, r) >= DuplicateProbability(m, 3, r*2)-1e-15
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCILOverwriteBound(t *testing.T) {
	if got := CILOverwriteBound(4); math.Abs(got-3.0/16) > 1e-12 {
		t.Fatalf("bound(4) = %v", got)
	}
	for _, n := range []int{1, 2, 100, 100000} {
		if b := CILOverwriteBound(n); b >= 0.25 {
			t.Fatalf("n=%d: bound %v not < 1/4", n, b)
		}
	}
	if CILOverwriteBound(0) != 0 {
		t.Fatal("n=0 guard")
	}
}

func TestCombineAgreementFloor(t *testing.T) {
	if CombineAgreementFloor() != 0.125 {
		t.Fatal("combine floor changed")
	}
}
