// Package analysis computes the exact combinatorial quantities behind the
// paper's proofs, so the experiments can compare simulation not only
// against the paper's (deliberately loose) bounds but against the exact
// expectations where they are known.
//
//   - Lemma 1's survival argument is a left-to-right-maxima count: when m
//     personae are written one at a time and each survivor must be the
//     maximum-priority persona of its prefix view, the expected number of
//     survivors of a round with nested single-increment views is exactly
//     the expected number of left-to-right maxima of a uniform random
//     permutation, H_m (the m-th harmonic number), with distribution given
//     by unsigned Stirling numbers of the first kind (Rényi 1962).
//   - Lemma 2's recurrence x_{i+1} = p x_i + 1/p, optimized at
//     p = 1/sqrt(x_i), drives Algorithm 2; ExactSifterRecurrence iterates
//     it without the closed-form rounding of equation (2).
package analysis

import "math"

// Harmonic returns the n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.
// H_0 = 0.
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// ExpectedLTRMaxima returns the expected number of left-to-right maxima
// of a uniform random permutation of m elements, which is exactly H_m.
// This is the per-round survivor expectation for Algorithm 1 in the
// worst nesting of views (each view one element larger than the last).
func ExpectedLTRMaxima(m int) float64 { return Harmonic(m) }

// LTRMaximaDistribution returns P[#left-to-right maxima = k] for a
// uniform random permutation of m elements, for k = 0..m. The count
// follows the unsigned Stirling numbers of the first kind:
// P[K = k] = c(m, k) / m!. Computed by the standard recurrence
// c(m, k) = c(m-1, k-1) + (m-1) c(m-1, k), normalized incrementally to
// stay in floating range. m must be at most a few hundred.
func LTRMaximaDistribution(m int) []float64 {
	if m < 0 {
		return nil
	}
	// p[m][k] with p normalized: p(m,k) = c(m,k)/m!.
	// Recurrence in normalized form:
	// p(m, k) = p(m-1, k-1)/m + (m-1)/m * p(m-1, k).
	prev := []float64{1} // m = 0: empty permutation has 0 maxima w.p. 1
	for mm := 1; mm <= m; mm++ {
		cur := make([]float64, mm+1)
		for k := 0; k <= mm; k++ {
			var fromNew, fromOld float64
			if k >= 1 && k-1 < len(prev) {
				fromNew = prev[k-1] / float64(mm)
			}
			if k < len(prev) {
				fromOld = prev[k] * float64(mm-1) / float64(mm)
			}
			cur[k] = fromNew + fromOld
		}
		prev = cur
	}
	return prev
}

// ExactSifterRecurrence iterates the Lemma 2 recurrence with the paper's
// p_i choices: x_{i+1} = p_{i+1} x_i + 1/p_{i+1} with p_{i+1} =
// 1/sqrt(x_i) while x_i is large, switching to the (1 - p + p^2) = 3/4
// contraction once x_i <= 8 (the Lemma 4 regime). It returns the bound
// sequence x_0..x_rounds.
func ExactSifterRecurrence(n, rounds int) []float64 {
	xs := make([]float64, rounds+1)
	xs[0] = float64(n - 1)
	for i := 0; i < rounds; i++ {
		x := xs[i]
		if x <= 0 {
			xs[i+1] = 0
			continue
		}
		if x > 8 {
			p := 1 / math.Sqrt(x)
			xs[i+1] = p*x + 1/p // = 2 sqrt(x)
			continue
		}
		xs[i+1] = x * 0.75
	}
	return xs
}

// PriorityIteratedBound iterates Lemma 1's f(x) = min(ln(x+1), x/2) and
// returns the sequence f^(0)(n-1) .. f^(rounds)(n-1). It duplicates
// stats.PriorityDecayBound but exposes the whole trajectory, which the
// analysis tests cross-check against the closed form.
func PriorityIteratedBound(n, rounds int) []float64 {
	xs := make([]float64, rounds+1)
	xs[0] = float64(n - 1)
	for i := 0; i < rounds; i++ {
		x := xs[i]
		xs[i+1] = math.Min(math.Log(x+1), x/2)
	}
	return xs
}

// DuplicateProbability returns the union-bound probability that any two
// of m personae share a priority in any of rounds draws from
// {1..rangeSize}: rounds * C(m,2) / rangeSize — the paper's Pr[D]
// calculation, which its priority range keeps below epsilon/2.
func DuplicateProbability(m, rounds int, rangeSize uint64) float64 {
	if rangeSize == 0 {
		return 1
	}
	pairs := float64(m) * float64(m-1) / 2
	p := float64(rounds) * pairs / float64(rangeSize)
	if p > 1 {
		return 1
	}
	return p
}

// CILOverwriteBound returns the paper's Section 4 bound on the
// probability that some process overwrites the first proposal in the CIL
// conciliator: (n-1)/(4n) < 1/4.
func CILOverwriteBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n-1) / (4 * float64(n))
}

// CombineAgreementFloor returns the Theorem 3 combine-stage agreement
// floor: both inner conciliators unique (>= 1/2) times coins aligned
// (>= 1/4) = 1/8.
func CombineAgreementFloor() float64 { return 1.0 / 8 }
