package conciliator

import (
	"fmt"
	"math"

	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// This file compiles the conciliators to flat state machines for the
// sim.FlatMachine engine: per-process cursors and shared objects live in
// dense slices instead of heap objects and coroutine frames. The
// correctness contract is observable equivalence with the coroutine
// implementations, not code sharing — every machine here must consume
// the per-process RNG streams in exactly the order persona.New and the
// coroutine round loops do, and must charge exactly one modeled step per
// Step call with the same shared-memory semantics as internal/memory.
// The cross-engine identity tests and FuzzFlatVsCoroutine pin this.

// FlatPersonae is the dense persona pool: the flat-engine image of
// persona.Persona values. Persona identity is the index (the coroutine
// engine uses pointer identity); all pre-drawn randomness lives in
// flattened per-round slices. Draw replicates persona.New's draw order
// exactly: coin first, then per-round priorities, then per-round write
// bits.
type FlatPersonae struct {
	prioRounds int
	prioBound  uint64
	writeProbs []float64

	vals    []int64
	origins []int32
	coins   []bool
	prios   []uint64
	bits    []bool
}

// NewFlatPersonae returns an empty pool drawing personae with the given
// persona configuration.
func NewFlatPersonae(cfg persona.Config) *FlatPersonae {
	return &FlatPersonae{
		prioRounds: cfg.PriorityRounds,
		prioBound:  cfg.PriorityBound,
		writeProbs: cfg.WriteProbs,
	}
}

// EnsureIDs grows the pool's backing arrays to hold ids [0, count).
// Growth is geometric, so steady-state reuse across trials does not
// allocate.
func (pp *FlatPersonae) EnsureIDs(count int) {
	if count <= len(pp.vals) {
		return
	}
	grow := func(n, need int) int {
		if n == 0 {
			n = need
		}
		for n < need {
			n *= 2
		}
		return n
	}
	c := grow(len(pp.vals), count)
	vals := make([]int64, c)
	copy(vals, pp.vals)
	pp.vals = vals
	origins := make([]int32, c)
	copy(origins, pp.origins)
	pp.origins = origins
	coins := make([]bool, c)
	copy(coins, pp.coins)
	pp.coins = coins
	if pp.prioRounds > 0 {
		prios := make([]uint64, c*pp.prioRounds)
		copy(prios, pp.prios)
		pp.prios = prios
	}
	if len(pp.writeProbs) > 0 {
		bits := make([]bool, c*len(pp.writeProbs))
		copy(bits, pp.bits)
		pp.bits = bits
	}
}

// Draw fills persona id with value val owned by origin, drawing all
// randomness from rng in the same order persona.New does.
func (pp *FlatPersonae) Draw(id int, val int64, origin int, rng *xrand.Rand) {
	pp.vals[id] = val
	pp.origins[id] = int32(origin)
	pp.coins[id] = rng.Bool()
	if pp.prioRounds > 0 {
		base := id * pp.prioRounds
		for i := 0; i < pp.prioRounds; i++ {
			if pp.prioBound > 0 {
				pp.prios[base+i] = 1 + rng.Uint64n(pp.prioBound)
			} else {
				pp.prios[base+i] = rng.Uint64()
			}
		}
	}
	if len(pp.writeProbs) > 0 {
		base := id * len(pp.writeProbs)
		for i, prob := range pp.writeProbs {
			pp.bits[base+i] = rng.Bernoulli(prob)
		}
	}
}

// Value returns persona id's input value.
func (pp *FlatPersonae) Value(id int32) int64 { return pp.vals[id] }

// Origin returns the id of the process that created persona id.
func (pp *FlatPersonae) Origin(id int32) int32 { return pp.origins[id] }

// Priority returns persona id's pre-drawn priority for round i.
func (pp *FlatPersonae) Priority(id int32, i int) uint64 {
	return pp.prios[int(id)*pp.prioRounds+i]
}

// WriteBit returns persona id's pre-drawn chooseWrite decision for
// round i.
func (pp *FlatPersonae) WriteBit(id int32, i int) bool {
	return pp.bits[int(id)*len(pp.writeProbs)+i]
}

// SifterHalfRounds returns the round count of the constant-p = 1/2
// sifter baseline: survivors halve in expectation each round, so
// Theta(log n) rounds drive the survivor bound through the same epsilon
// tail the tuned schedule reaches in ceil(log log n) rounds (compare
// SifterRounds).
func SifterHalfRounds(n int, epsilon float64) int {
	r := stats.CeilLog2(n) + stats.CeilLogBase(4.0/3.0, 8/epsilon)
	if r < 1 {
		r = 1
	}
	return r
}

// HalfSifterConfig returns the SifterConfig of the constant-p = 1/2
// baseline for n processes: SifterHalfRounds rounds, every round writing
// with probability 1/2. Feeding it to NewSifter and NewFlatSifter yields
// byte-identical executions of the ablation the DES port calls
// "sifter-half".
func HalfSifterConfig(n int, epsilon float64) SifterConfig {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.5
	}
	return SifterConfig{
		Epsilon: epsilon,
		Rounds:  SifterHalfRounds(n, epsilon),
		Probs:   []float64{0.5},
	}
}

// FlatSifter is Algorithm 2 compiled to a flat machine: one int32
// register cell per round holding a persona id (-1 empty), per-process
// cursors in dense slices. Single-phase (one Conciliate per process);
// consensus phase composition lives in internal/consensus.
//
// The ablation switches (SharePersonae=false, TrackSurvivors) are not
// ported; NewFlatSifter rejects configurations that ask for them.
type FlatSifter struct {
	n      int
	rounds int
	probs  []float64
	pp     *FlatPersonae

	regs   []int32 // per round: persona id or -1
	pers   []int32 // per process: current persona id
	round  []int32 // per process: next round index
	inputs []int64
}

var _ sim.FlatMachine = (*FlatSifter)(nil)

// NewFlatSifter returns a flat Algorithm 2 machine for n processes,
// resolving rounds and write probabilities exactly as NewSifter does.
// Call Reset before each run.
func NewFlatSifter(n int, cfg SifterConfig) *FlatSifter {
	cfg = cfg.withDefaults()
	if !*cfg.SharePersonae || cfg.TrackSurvivors {
		panic("conciliator: FlatSifter supports only the default shared-personae configuration")
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = SifterRounds(n, cfg.Epsilon)
	}
	if rounds < 1 {
		rounds = 1
	}
	probs := SifterProbs(n, rounds)
	if len(cfg.Probs) > 0 {
		for i := range probs {
			if i < len(cfg.Probs) {
				probs[i] = cfg.Probs[i]
			} else {
				probs[i] = cfg.Probs[len(cfg.Probs)-1]
			}
		}
	}
	m := &FlatSifter{
		n:      n,
		rounds: rounds,
		probs:  probs,
		pp:     NewFlatPersonae(persona.Config{WriteProbs: probs}),
		regs:   make([]int32, rounds),
		pers:   make([]int32, n),
		round:  make([]int32, n),
	}
	m.pp.EnsureIDs(n)
	m.Reset(nil)
	return m
}

// Rounds returns the number of rounds R the machine executes.
func (m *FlatSifter) Rounds() int { return m.rounds }

// Reset prepares the machine for a fresh run with the given inputs
// (inputs[pid]; nil means input = pid). The slice is read during Init
// and not retained past the run.
func (m *FlatSifter) Reset(inputs []int64) {
	m.inputs = inputs
	for i := range m.regs {
		m.regs[i] = -1
	}
	for pid := 0; pid < m.n; pid++ {
		m.pers[pid] = int32(pid)
		m.round[pid] = 0
	}
}

// Init implements sim.FlatMachine: persona creation, the only pre-step
// randomness of the sifter body.
func (m *FlatSifter) Init(pid int, rng *xrand.Rand) {
	val := int64(pid)
	if m.inputs != nil {
		val = m.inputs[pid]
	}
	m.pp.Draw(pid, val, pid, rng)
}

// Step implements sim.FlatMachine: one sifting round, exactly one
// register operation.
func (m *FlatSifter) Step(pid int, _ *xrand.Rand) bool {
	i := m.round[pid]
	pers := m.pers[pid]
	if m.pp.WriteBit(pers, int(i)) {
		m.regs[i] = pers
	} else if r := m.regs[i]; r >= 0 {
		m.pers[pid] = r
	}
	m.round[pid] = i + 1
	return int(i+1) >= m.rounds
}

// Value returns the conciliator output of a finished process.
func (m *FlatSifter) Value(pid int) int64 { return m.pp.Value(m.pers[pid]) }

// FlatPriorityMax is Algorithm 1's footnote-1 max-register variant
// compiled to a flat machine: per round one unit-cost max register held
// as a (key, persona id) pair, two operations per round (WriteMax, then
// ReadMax-and-adopt). Only the UseMaxRegisters configuration is ported;
// snapshot rounds, tree max registers, compact values, and the ablation
// switches are rejected.
type FlatPriorityMax struct {
	n      int
	rounds int
	bound  uint64
	pp     *FlatPersonae

	maxKey  []uint64 // per round: incumbent key
	maxPers []int32  // per round: incumbent persona id, -1 empty
	pers    []int32  // per process
	pos     []int32  // per process: operation index (2 per round)
	inputs  []int64
}

var _ sim.FlatMachine = (*FlatPriorityMax)(nil)

// NewFlatPriorityMax returns a flat footnote-1 Algorithm 1 machine for n
// processes, resolving rounds and the priority bound exactly as
// NewPriority does for UseMaxRegisters configurations. Call Reset before
// each run.
func NewFlatPriorityMax(n int, cfg PriorityConfig) *FlatPriorityMax {
	cfg = cfg.withDefaults()
	if !cfg.UseMaxRegisters || cfg.TreeMax || cfg.UseAfekSnapshot || cfg.CompactValues ||
		cfg.InconsistentTies || !*cfg.SharePersonae || cfg.TrackSurvivors {
		panic(fmt.Sprintf("conciliator: FlatPriorityMax supports only the plain max-register configuration, got %+v", cfg))
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = PriorityRounds(n, cfg.Epsilon)
	}
	var bound uint64
	switch {
	case cfg.PriorityBound != 0:
		bound = cfg.PriorityBound
	case cfg.PaperPriorityRange:
		bound = uint64(math.Ceil(float64(rounds) * float64(n) * float64(n) / cfg.Epsilon))
	}
	m := &FlatPriorityMax{
		n:       n,
		rounds:  rounds,
		bound:   bound,
		pp:      NewFlatPersonae(persona.Config{PriorityRounds: rounds, PriorityBound: bound}),
		maxKey:  make([]uint64, rounds),
		maxPers: make([]int32, rounds),
		pers:    make([]int32, n),
		pos:     make([]int32, n),
	}
	m.pp.EnsureIDs(n)
	m.Reset(nil)
	return m
}

// Rounds returns the number of rounds R the machine executes.
func (m *FlatPriorityMax) Rounds() int { return m.rounds }

// Reset prepares the machine for a fresh run with the given inputs
// (nil means input = pid).
func (m *FlatPriorityMax) Reset(inputs []int64) {
	m.inputs = inputs
	for i := 0; i < m.rounds; i++ {
		m.maxKey[i] = 0
		m.maxPers[i] = -1
	}
	for pid := 0; pid < m.n; pid++ {
		m.pers[pid] = int32(pid)
		m.pos[pid] = 0
	}
}

// Init implements sim.FlatMachine.
func (m *FlatPriorityMax) Init(pid int, rng *xrand.Rand) {
	val := int64(pid)
	if m.inputs != nil {
		val = m.inputs[pid]
	}
	m.pp.Draw(pid, val, pid, rng)
}

// Step implements sim.FlatMachine: alternating WriteMax / ReadMax-adopt
// operations, two per round, with the max register's semantics (strictly
// greater key replaces; ties keep the incumbent).
func (m *FlatPriorityMax) Step(pid int, _ *xrand.Rand) bool {
	pos := m.pos[pid]
	i := int(pos) / 2
	if pos&1 == 0 {
		key := m.pp.Priority(m.pers[pid], i)
		if m.maxPers[i] < 0 || key > m.maxKey[i] {
			m.maxKey[i] = key
			m.maxPers[i] = m.pers[pid]
		}
	} else {
		// The process's own WriteMax preceded, so the register is never
		// empty here; adopt unconditionally, as the coroutine round does.
		m.pers[pid] = m.maxPers[i]
	}
	m.pos[pid] = pos + 1
	return int(pos+1) >= 2*m.rounds
}

// Value returns the conciliator output of a finished process.
func (m *FlatPriorityMax) Value(pid int) int64 { return m.pp.Value(m.pers[pid]) }
