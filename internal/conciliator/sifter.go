package conciliator

import (
	"math"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// SifterConfig parameterizes Algorithm 2.
type SifterConfig struct {
	// Epsilon is the target disagreement probability (default 1/2). The
	// round count is R = ceil(log log n) + ceil(log_{4/3}(8/Epsilon)).
	Epsilon float64

	// Rounds overrides R when positive.
	Rounds int

	// Probs overrides the per-round write probabilities p_i (1-indexed
	// p_1 is Probs[0]); used by ablation E11a (constant 1/2 instead of
	// the tuned schedule). When shorter than the round count, the last
	// entry repeats.
	Probs []float64

	// SharePersonae, when false, draws each round's write/read choice
	// from the carrying process's own stream instead of the persona's
	// pre-drawn bits (ablation E11b).
	SharePersonae *bool

	// TrackSurvivors enables per-round distinct-persona accounting.
	TrackSurvivors bool
}

func (c SifterConfig) withDefaults() SifterConfig {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.5
	}
	if c.SharePersonae == nil {
		share := true
		c.SharePersonae = &share
	}
	return c
}

// SifterRounds returns the paper's round count for Algorithm 2:
// R = ceil(log log n) + ceil(log_{4/3}(8/eps)) (Theorem 2).
func SifterRounds(n int, epsilon float64) int {
	return stats.CeilLogLog(n) + stats.CeilLogBase(4.0/3.0, 8/epsilon)
}

// SifterProbs returns the tuned write-probability schedule for the first
// ceil(log log n) rounds, then 1/2:
//
//	p_i = 1/sqrt(x_{i-1}) = 2^(2^(1-i)-1) * (n-1)^(-2^(-i))
//
// which is the choice that minimizes the Lemma 2 bound
// p x + 1/p at x = x_{i-1}. Note the paper's displayed equation (3)
// reads 2^(1-2^(1-i)) (n-1)^(-2^(-i)); the power-of-two exponent there
// appears to carry a sign typo — the displayed form disagrees with
// p_{i} = 1/sqrt(x_{i-1}) for every i >= 2 and tends to 2 rather than a
// probability, whereas the derived form used here tends to exactly the
// 1/2 used after the tuned prefix and reproduces the Lemma 3 decay (see
// EXPERIMENTS.md E4, which fails under the displayed form and passes
// under this one).
//
// For n <= 2 the tuned prefix is empty (every round uses 1/2).
func SifterProbs(n, rounds int) []float64 {
	probs := make([]float64, rounds)
	tuned := stats.CeilLogLog(n)
	for i := range probs {
		r := i + 1 // 1-indexed round
		if r <= tuned && n > 2 {
			e := math.Pow(2, float64(-r))
			probs[i] = math.Pow(2, 2*e-1) * math.Pow(float64(n-1), -e)
			if probs[i] > 1 {
				probs[i] = 1
			}
		} else {
			probs[i] = 0.5
		}
	}
	return probs
}

// Sifter is Algorithm 2: the register-based sifting conciliator. One
// multi-writer register per round; in round i a persona either writes
// itself (probability p_i, pre-drawn into the persona) or reads and
// adopts whatever it finds.
type Sifter[V comparable] struct {
	n      int
	rounds int
	cfg    SifterConfig
	probs  []float64
	regs   *memory.RegisterArray[*persona.Persona[V]]
	track  *tracker[V]
}

var (
	_ Interface[int] = (*Sifter[int])(nil)
	_ Stepwise[int]  = (*Sifter[int])(nil)
)

// NewSifter returns an Algorithm 2 instance for n processes.
func NewSifter[V comparable](n int, cfg SifterConfig) *Sifter[V] {
	cfg = cfg.withDefaults()
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = SifterRounds(n, cfg.Epsilon)
	}
	if rounds < 1 {
		rounds = 1
	}
	probs := SifterProbs(n, rounds)
	if len(cfg.Probs) > 0 {
		for i := range probs {
			if i < len(cfg.Probs) {
				probs[i] = cfg.Probs[i]
			} else {
				probs[i] = cfg.Probs[len(cfg.Probs)-1]
			}
		}
	}
	return &Sifter[V]{
		n:      n,
		rounds: rounds,
		cfg:    cfg,
		probs:  probs,
		regs:   memory.NewRegisterArray[*persona.Persona[V]](rounds),
		track:  newTracker[V](rounds, n, cfg.TrackSurvivors),
	}
}

// Rounds returns the number of rounds R the instance will execute.
func (c *Sifter[V]) Rounds() int { return c.rounds }

// Probs returns the per-round write probabilities in use.
func (c *Sifter[V]) Probs() []float64 {
	out := make([]float64, len(c.probs))
	copy(out, c.probs)
	return out
}

// StepBound implements Interface: exactly one register operation per
// round.
func (c *Sifter[V]) StepBound() int { return c.rounds }

// SurvivorsPerRound returns, after an execution with TrackSurvivors, the
// number of distinct personae held at the end of each round.
func (c *Sifter[V]) SurvivorsPerRound() []int { return c.track.survivors() }

// Conciliate implements Interface.
func (c *Sifter[V]) Conciliate(p *sim.Proc, input V) V {
	before := p.Steps()
	v := conciliate[V](c, p, input)
	mSifProc.Observe(p.Steps() - before)
	return v
}

// Begin implements Stepwise.
func (c *Sifter[V]) Begin(p *sim.Proc, input V) Run[V] {
	return &sifterRun[V]{
		c:    c,
		pers: persona.New(input, p.ID(), p.Rng(), persona.Config{WriteProbs: c.probs}),
	}
}

type sifterRun[V comparable] struct {
	c    *Sifter[V]
	pers *persona.Persona[V]
	i    int
}

func (r *sifterRun[V]) Done() bool                   { return r.i >= r.c.rounds }
func (r *sifterRun[V]) Persona() *persona.Persona[V] { return r.pers }

// Step executes one sifting round: exactly one read or write of r_i.
func (r *sifterRun[V]) Step(p *sim.Proc) {
	if r.Done() {
		return
	}
	i := r.i
	c := r.c

	write := r.pers.WriteBit(i)
	if !*c.cfg.SharePersonae {
		// Ablation: the carrying process flips its own coin, so two
		// carriers of one persona can act differently.
		write = p.Rng().Bernoulli(c.probs[i])
	}
	if write {
		c.regs.At(i).Write(p, r.pers)
		mSifWrite.Inc()
	} else {
		if v, ok := c.regs.At(i).Read(p); ok {
			r.pers = v
		}
		mSifRead.Inc()
	}

	c.track.record(i, p.ID(), r.pers)
	r.i++
}
