package conciliator

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// flatConc abstracts the two flat conciliator machines for the identity
// harness.
type flatConc interface {
	sim.FlatMachine
	Reset(inputs []int64)
	Value(pid int) int64
}

// runConcIdentity runs the coroutine conciliator and the flat machine
// under the same (algorithm seed, schedule) and requires byte-identical
// step tables and outputs.
func runConcIdentity(t *testing.T, name string, n int, mkCoroutine func() Interface[int], mkFlat func() flatConc) {
	t.Helper()
	for _, kind := range sched.Kinds() {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := sim.Config{AlgSeed: 0xc0ffee ^ seed}

			co := mkCoroutine()
			coOuts, coFin, coRes, coErr := sim.Collect(sched.New(kind, n, seed), cfg, func(p *sim.Proc) int {
				return co.Conciliate(p, p.ID())
			})
			if coErr != nil {
				t.Fatalf("%s %v seed %d: coroutine run failed: %v", name, kind, seed, coErr)
			}

			fm := mkFlat()
			fm.Reset(nil) // default inputs: value = pid, matching p.ID() above
			flRes, flErr := sim.RunFlat(sched.New(kind, n, seed), fm, cfg)
			if flErr != nil {
				t.Fatalf("%s %v seed %d: flat run failed: %v", name, kind, seed, flErr)
			}

			if coRes.Slots != flRes.Slots || coRes.TotalSteps != flRes.TotalSteps {
				t.Fatalf("%s %v seed %d: slots/steps: coroutine (%d,%d) flat (%d,%d)",
					name, kind, seed, coRes.Slots, coRes.TotalSteps, flRes.Slots, flRes.TotalSteps)
			}
			for pid := 0; pid < n; pid++ {
				if coRes.Steps[pid] != flRes.Steps[pid] {
					t.Errorf("%s %v seed %d: steps[%d] flat %d coroutine %d", name, kind, seed, pid, flRes.Steps[pid], coRes.Steps[pid])
				}
				if coFin[pid] != flRes.Finished[pid] {
					t.Errorf("%s %v seed %d: finished[%d] flat %v coroutine %v", name, kind, seed, pid, flRes.Finished[pid], coFin[pid])
				}
				if coFin[pid] && int64(coOuts[pid]) != fm.Value(pid) {
					t.Errorf("%s %v seed %d: output[%d] flat %d coroutine %d", name, kind, seed, pid, fm.Value(pid), coOuts[pid])
				}
			}
		}
	}
}

// TestFlatSifterByteIdentity pins the flat Algorithm 2 machine against
// the coroutine Sifter across every schedule family.
func TestFlatSifterByteIdentity(t *testing.T) {
	for _, n := range []int{2, 8, 33} {
		runConcIdentity(t, "sifter", n,
			func() Interface[int] { return NewSifter[int](n, SifterConfig{}) },
			func() flatConc { return NewFlatSifter(n, SifterConfig{}) })
	}
}

// TestFlatSifterHalfByteIdentity pins the constant-p = 1/2 baseline.
func TestFlatSifterHalfByteIdentity(t *testing.T) {
	for _, n := range []int{2, 8, 33} {
		cfg := HalfSifterConfig(n, 0.5)
		runConcIdentity(t, "sifter-half", n,
			func() Interface[int] { return NewSifter[int](n, cfg) },
			func() flatConc { return NewFlatSifter(n, cfg) })
	}
}

// TestFlatPriorityMaxByteIdentity pins the flat footnote-1 machine
// against the coroutine Priority conciliator on max registers, both with
// full-width priorities and with the paper's bounded range (which takes
// the rejection-sampling path through the RNG).
func TestFlatPriorityMaxByteIdentity(t *testing.T) {
	for _, n := range []int{2, 8, 33} {
		for _, cfg := range []PriorityConfig{
			{UseMaxRegisters: true},
			{UseMaxRegisters: true, PaperPriorityRange: true},
		} {
			cfg := cfg
			runConcIdentity(t, "priority-max", n,
				func() Interface[int] { return NewPriority[int](n, cfg) },
				func() flatConc { return NewFlatPriorityMax(n, cfg) })
		}
	}
}

// TestFlatMachineReuse pins that Reset makes a machine byte-identical to
// a fresh one on the next trial.
func TestFlatMachineReuse(t *testing.T) {
	n := 8
	m := NewFlatSifter(n, SifterConfig{})
	fr := sim.NewFlatRunner[*FlatSifter]()
	var first, second sim.Result
	cfg := sim.Config{AlgSeed: 42}
	if err := fr.RunInto(sched.New(sched.KindRandom, n, 7), m, cfg, &first); err != nil {
		t.Fatal(err)
	}
	firstVals := make([]int64, n)
	for pid := 0; pid < n; pid++ {
		firstVals[pid] = m.Value(pid)
	}
	m.Reset(nil)
	if err := fr.RunInto(sched.New(sched.KindRandom, n, 7), m, cfg, &second); err != nil {
		t.Fatal(err)
	}
	if first.Slots != second.Slots || first.TotalSteps != second.TotalSteps {
		t.Fatalf("reset trial drifted: (%d,%d) vs (%d,%d)", first.Slots, first.TotalSteps, second.Slots, second.TotalSteps)
	}
	for pid := 0; pid < n; pid++ {
		if m.Value(pid) != firstVals[pid] {
			t.Fatalf("reset trial output[%d] = %d, first %d", pid, m.Value(pid), firstVals[pid])
		}
	}
}
