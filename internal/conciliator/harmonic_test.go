package conciliator

import (
	"math"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/analysis"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// TestPriorityStaircaseMatchesHarmonicNumber connects Lemma 1's proof to
// the implementation quantitatively. Under the "staircase" schedule —
// process 0 updates and scans, then process 1, and so on — process i's
// view contains exactly personae 0..i, so it keeps the maximum-priority
// persona of that prefix. The set of personae kept after the round is
// then exactly the set of left-to-right maxima of the priority sequence,
// whose expected count is the harmonic number H_n (Rényi; see
// internal/analysis). The measured mean must match H_n within sampling
// error — not merely stay below the ln(n)+1 bound.
func TestPriorityStaircaseMatchesHarmonicNumber(t *testing.T) {
	const (
		n      = 64
		trials = 400
	)
	staircase := make([]int, 0, 2*n)
	for pid := 0; pid < n; pid++ {
		staircase = append(staircase, pid, pid)
	}

	rng := xrand.New(20120716)
	sum, sumSq := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		c := NewPriority[int](n, PriorityConfig{Rounds: 1, TrackSurvivors: true})
		inputs := distinctInputs(n)
		_, _, _, err := sim.Collect(sched.NewExplicit(n, staircase), sim.Config{AlgSeed: rng.Uint64()}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		surv := float64(c.SurvivorsPerRound()[0])
		sum += surv
		sumSq += surv * surv
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	ci := 3 * math.Sqrt(variance/trials) // 3-sigma

	want := analysis.ExpectedLTRMaxima(n) // H_64 ~ 4.7439
	if math.Abs(mean-want) > ci+0.05 {
		t.Fatalf("staircase survivors mean %.4f, want H_%d = %.4f (3-sigma %.4f)", mean, n, want, ci)
	}
}

// TestPriorityLockstepCollapsesToOne is the opposite extreme: when every
// process updates before anyone scans, all views equal the full set, so
// everyone adopts the unique global maximum and exactly one persona
// survives round 1 — deterministically, for every seed.
func TestPriorityLockstepCollapsesToOne(t *testing.T) {
	const n = 32
	lockstep := make([]int, 0, 2*n)
	for pid := 0; pid < n; pid++ {
		lockstep = append(lockstep, pid) // all updates
	}
	for pid := 0; pid < n; pid++ {
		lockstep = append(lockstep, pid) // then all scans
	}
	for seed := uint64(1); seed <= 20; seed++ {
		c := NewPriority[int](n, PriorityConfig{Rounds: 1, TrackSurvivors: true})
		inputs := distinctInputs(n)
		outs, _, _, err := sim.Collect(sched.NewExplicit(n, lockstep), sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.SurvivorsPerRound()[0]; got != 1 {
			t.Fatalf("seed %d: %d survivors under lockstep, want 1", seed, got)
		}
		for _, o := range outs {
			if o != outs[0] {
				t.Fatalf("seed %d: lockstep round must already agree", seed)
			}
		}
	}
}
