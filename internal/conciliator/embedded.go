package conciliator

import (
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// EmbeddedConfig parameterizes Algorithm 3. The embedded conciliator is
// a Sifter with epsilon 1/4 by default (so it violates agreement with
// probability at most 1/4, as in the Theorem 3 proof); use
// NewEmbeddedPriority for the snapshot-model variant. Any inner
// conciliator must be "oblivious" in the paper's sense — it only copies
// input values without examining them — which both Sifter and Priority
// are.
type EmbeddedConfig struct {
	// WriteProb is the per-iteration probability of writing the proposal
	// register; zero means the paper's 1/(4n).
	WriteProb float64
}

// ExitPath tells the experiments which way a process left Algorithm 3's
// main loop.
type ExitPath int

const (
	// ExitSifter means the process completed all rounds of the embedded
	// conciliator.
	ExitSifter ExitPath = iota + 1
	// ExitProposalRead means the process saw a non-null proposal.
	ExitProposalRead
	// ExitProposalWrite means the process wrote the proposal itself.
	ExitProposalWrite
)

// Embedded is Algorithm 3: the CIL conciliator with an embedded sifting
// conciliator and a combining stage.
//
// Main loop (at most inner.Rounds()+1 iterations): read proposal — if
// non-null, adopt it as the index-1 candidate and leave; otherwise with
// probability 1/(4n) write the own persona to proposal and leave as the
// index-1 candidate; otherwise execute one round of the embedded
// conciliator. Completing the embedded conciliator leaves with its result
// as the index-0 candidate.
//
// Combine: write the candidate persona to out[pref]; run a binary
// adopt-commit on pref. On (commit, b), return out[b]'s value. On
// (adopt, b), read out[b]'s persona, use its pre-drawn coin bit c as a
// shared coin, and return out[c]'s value. Theorem 3: agreement with
// probability >= 1/8, worst-case individual steps O(log log n), expected
// total steps O(n).
type Embedded[V comparable] struct {
	n     int
	prob  float64
	inner Stepwise[V]

	proposal *memory.Register[*persona.Persona[V]]
	out      [2]*memory.Register[*persona.Persona[V]]
	ac       *adoptcommit.RegisterAC[int]

	exits [3]atomic.Int64
}

var _ Interface[int] = (*Embedded[int])(nil)

// NewEmbedded returns an Algorithm 3 instance for n processes with the
// default sifter inner conciliator.
func NewEmbedded[V comparable](n int, cfg EmbeddedConfig) *Embedded[V] {
	prob := cfg.WriteProb
	if prob <= 0 {
		prob = 1 / (4 * float64(n))
	}
	return &Embedded[V]{
		n:        n,
		prob:     prob,
		inner:    NewSifter[V](n, SifterConfig{Epsilon: 0.25}),
		proposal: memory.NewRegister[*persona.Persona[V]](),
		out: [2]*memory.Register[*persona.Persona[V]]{
			memory.NewRegister[*persona.Persona[V]](),
			memory.NewRegister[*persona.Persona[V]](),
		},
		ac: adoptcommit.NewBinaryAC(),
	}
}

// NewEmbeddedPriority returns the Section 4 variant embedding the
// snapshot-based Algorithm 1 instead of the sifter, giving O(log* n)
// worst-case individual steps with O(n) expected total steps in the
// unit-cost snapshot model.
func NewEmbeddedPriority[V comparable](n int, cfg EmbeddedConfig) *Embedded[V] {
	e := NewEmbedded[V](n, cfg)
	e.inner = NewPriority[V](n, PriorityConfig{Epsilon: 0.25})
	return e
}

// InnerRounds exposes the embedded conciliator's round count.
func (c *Embedded[V]) InnerRounds() int {
	switch inner := c.inner.(type) {
	case *Sifter[V]:
		return inner.Rounds()
	case *Priority[V]:
		return inner.Rounds()
	default:
		return 0
	}
}

// StepBound implements Interface: each main-loop iteration costs one
// proposal read plus one inner step (itself O(1) operations), plus the
// combine stage.
func (c *Embedded[V]) StepBound() int {
	perInner := 2 // priority rounds cost 2 ops; sifter rounds cost 1
	return (1+perInner)*(c.InnerRounds()+1) + c.ac.StepBound() + 4
}

// ExitCounts reports how many processes left the main loop by each path
// (completed inner conciliator, proposal read, proposal write).
func (c *Embedded[V]) ExitCounts() (sifter, reads, writes int64) {
	return c.exits[ExitSifter-1].Load(), c.exits[ExitProposalRead-1].Load(), c.exits[ExitProposalWrite-1].Load()
}

// Conciliate implements Interface.
func (c *Embedded[V]) Conciliate(p *sim.Proc, input V) V {
	total := p.Steps()
	defer func() { mEmbProc.Observe(p.Steps() - total) }()
	own := persona.New(input, p.ID(), p.Rng(), persona.Config{})
	run := c.inner.Begin(p, input)

	var (
		cand *persona.Persona[V]
		pref int
		exit ExitPath
	)
	for {
		if run.Done() {
			cand, pref, exit = run.Persona(), 0, ExitSifter
			break
		}
		if v, ok := c.proposal.Read(p); ok {
			mEmbPoll.Inc()
			cand, pref, exit = v, 1, ExitProposalRead
			break
		}
		mEmbPoll.Inc()
		if p.Rng().Bernoulli(c.prob) {
			c.proposal.Write(p, own)
			mEmbPropose.Inc()
			cand, pref, exit = own, 1, ExitProposalWrite
			break
		}
		if mEmbInner != nil {
			before := p.Steps()
			run.Step(p)
			mEmbInner.Add(p.Steps() - before)
		} else {
			run.Step(p)
		}
	}
	c.exits[exit-1].Add(1)

	var combineStart int64
	if mEmbCombine != nil {
		combineStart = p.Steps()
		defer func() { mEmbCombine.Add(p.Steps() - combineStart) }()
	}

	// Combine stage: reconcile index-0 (inner conciliator) and index-1
	// (proposal) candidates.
	c.out[pref].Write(p, cand)
	dec, b := c.ac.Propose(p, p.ID(), pref)
	chosen, ok := c.out[b].Read(p)
	if !ok {
		// Unreachable by the Theorem 3 validity argument (commit implies
		// the register was written before the propose; adopt implies both
		// were); keep the own candidate as a defensive fallback.
		chosen = cand
	}
	if dec == adoptcommit.Commit {
		return chosen.Value()
	}
	// Adopt: use the adopted candidate's pre-drawn coin to pick between
	// the two output registers.
	coin := chosen.Coin()
	if coin != b {
		if other, ok := c.out[coin].Read(p); ok {
			chosen = other
		}
		// If out[coin] is unwritten no process can have committed coin
		// (its proposer would have written it first), so falling back to
		// the adopted candidate is safe.
	}
	return chosen.Value()
}
