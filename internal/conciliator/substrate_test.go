package conciliator

import (
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestPriorityAfekSnapshotVariant(t *testing.T) {
	const n = 12
	c := NewPriority[int](n, PriorityConfig{UseAfekSnapshot: true})
	inputs := distinctInputs(n)
	outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(3)), 5)
	checkValidity(t, inputs, outs, "afek substrate")
	// Register-built snapshots must charge strictly more than the
	// unit-cost 2 steps per round.
	if res.MaxSteps() <= int64(2*c.Rounds()) {
		t.Fatalf("afek substrate charged only %d steps for %d rounds", res.MaxSteps(), c.Rounds())
	}
	if res.MaxSteps() > int64(c.StepBound()) {
		t.Fatalf("steps %d exceed bound %d", res.MaxSteps(), c.StepBound())
	}
}

func TestPriorityAfekAgreementMatchesUnit(t *testing.T) {
	// The substrate must not change the protocol's distribution: same
	// seeds, same schedule slots consumed per high-level round order...
	// we assert the weaker but meaningful property that agreement rates
	// are in the same ballpark.
	const n, trials = 12, 40
	rate := agreementRate(t, func() Interface[int] {
		return NewPriority[int](n, PriorityConfig{UseAfekSnapshot: true})
	}, distinctInputs(n), trials, 211)
	if rate < 0.5 {
		t.Fatalf("afek-substrate agreement rate %v below 1/2", rate)
	}
}

func TestSifterProbsProperties(t *testing.T) {
	if err := quick.Check(func(rawN uint16, rawR uint8) bool {
		n := int(rawN%10000) + 1
		rounds := int(rawR%20) + 1
		probs := SifterProbs(n, rounds)
		if len(probs) != rounds {
			return false
		}
		tuned := 0
		for i, p := range probs {
			if p <= 0 || p > 1 {
				return false
			}
			if p != 0.5 {
				tuned = i + 1
			}
		}
		// Tuned prefix must be non-decreasing (p_i grows toward 1/2).
		for i := 1; i < tuned; i++ {
			if probs[i] < probs[i-1]-1e-12 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityRoundsMonotone(t *testing.T) {
	if err := quick.Check(func(rawA, rawB uint16) bool {
		a := int(rawA)%60000 + 2
		b := int(rawB)%60000 + 2
		if a > b {
			a, b = b, a
		}
		return PriorityRounds(a, 0.5) <= PriorityRounds(b, 0.5)
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Tighter epsilon means at least as many rounds.
	for _, n := range []int{2, 64, 4096} {
		if PriorityRounds(n, 0.5) > PriorityRounds(n, 1.0/64) {
			t.Fatalf("n=%d: rounds not monotone in epsilon", n)
		}
	}
}

func TestSifterRoundsMonotone(t *testing.T) {
	if err := quick.Check(func(rawA, rawB uint16) bool {
		a := int(rawA)%60000 + 2
		b := int(rawB)%60000 + 2
		if a > b {
			a, b = b, a
		}
		return SifterRounds(a, 0.5) <= SifterRounds(b, 0.5)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeBits(t *testing.T) {
	tests := []struct {
		bound uint64
		want  int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
	}
	for _, tt := range tests {
		if got := treeBits(tt.bound); got != tt.want {
			t.Errorf("treeBits(%d) = %d, want %d", tt.bound, got, tt.want)
		}
	}
}
