// Package conciliator implements the paper's contribution: three
// conciliator constructions for randomized consensus against an oblivious
// adversary.
//
//   - Priority (Algorithm 1): snapshot-based; each round every process
//     installs its persona and adopts the highest-priority persona in its
//     view. Agreement 1-eps within log* n + ceil(log 1/eps) + 1 rounds.
//   - Sifter (Algorithm 2): register-based; each round a persona either
//     writes itself (probability p_i) or reads and adopts. Agreement
//     1-eps within ceil(log log n) + ceil(log_{4/3}(8/eps)) rounds.
//   - Embedded (Algorithm 3): the sifter (or the priority conciliator)
//     embedded in a Chor–Israeli–Li outer loop plus a combine stage,
//     trading agreement probability (>= 1/8) for O(n) expected total
//     steps.
//   - CIL: the plain Chor–Israeli–Li conciliator, used both as
//     Algorithm 3's shell and as the pre-paper baseline.
//
// A conciliator guarantees termination and validity on every execution
// and agreement with probability at least delta against any oblivious
// adversary (Section 1.2). Conciliator objects here are single-use: one
// Conciliate call per process.
package conciliator

import (
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// Interface is a single-use conciliator for n processes.
type Interface[V comparable] interface {
	// Conciliate runs the protocol for process p with the given input and
	// returns the (hopefully common) output value.
	Conciliate(p *sim.Proc, input V) V

	// StepBound returns an upper bound on the shared-memory steps one
	// Conciliate call may take, when such a bound exists. Conciliators
	// with only probabilistic termination (CIL) return the bound of the
	// internal safety valve.
	StepBound() int
}

// Stepwise is implemented by conciliators whose execution can be driven
// one round at a time, which is what Algorithm 3 needs to interleave the
// inner conciliator with its proposal-register polling.
type Stepwise[V comparable] interface {
	Interface[V]

	// Begin creates the per-process run state without taking any steps.
	Begin(p *sim.Proc, input V) Run[V]
}

// Run is the per-process state of a stepwise conciliator execution.
type Run[V comparable] interface {
	// Done reports whether the run has completed all rounds.
	Done() bool
	// Step executes the next round (a constant number of shared-memory
	// operations). Calling Step after Done is a no-op.
	Step(p *sim.Proc)
	// Persona returns the process's current persona; after Done it
	// carries the conciliator's output value.
	Persona() *persona.Persona[V]
}

// conciliate drives a stepwise run to completion; shared by the
// implementations.
func conciliate[V comparable](c Stepwise[V], p *sim.Proc, input V) V {
	run := c.Begin(p, input)
	for !run.Done() {
		run.Step(p)
	}
	return run.Persona().Value()
}

// tracker records which persona each process holds after each round, so
// experiments can count surviving distinct personae (the paper's Y_i /
// X_i measures). Slot [round][pid] is written only by process pid, so no
// locking is needed; readers wait for the run to finish.
type tracker[V comparable] struct {
	holders [][]*persona.Persona[V]
}

func newTracker[V comparable](rounds, n int, enabled bool) *tracker[V] {
	if !enabled {
		return nil
	}
	t := &tracker[V]{holders: make([][]*persona.Persona[V], rounds)}
	for i := range t.holders {
		t.holders[i] = make([]*persona.Persona[V], n)
	}
	return t
}

func (t *tracker[V]) record(round, pid int, pers *persona.Persona[V]) {
	if t == nil || round >= len(t.holders) {
		return
	}
	t.holders[round][pid] = pers
}

// survivors returns the number of distinct personae held after each
// round. Processes that never reached a round contribute nothing to it.
func (t *tracker[V]) survivors() []int {
	if t == nil {
		return nil
	}
	out := make([]int, len(t.holders))
	for i, round := range t.holders {
		out[i] = persona.Distinct(round)
	}
	return out
}
