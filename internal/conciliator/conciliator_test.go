package conciliator

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// runConc executes one Conciliate per process and returns outputs of
// finished processes plus the run result.
func runConc[V comparable](t *testing.T, c Interface[V], inputs []V, src sched.Source, seed uint64) ([]V, sim.Result) {
	t.Helper()
	outs, finished, res, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) V {
		return c.Conciliate(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var done []V
	for i, out := range outs {
		if finished[i] {
			done = append(done, out)
		}
	}
	return done, res
}

func checkValidity[V comparable](t *testing.T, inputs, outputs []V, label string) {
	t.Helper()
	set := make(map[V]bool, len(inputs))
	for _, v := range inputs {
		set[v] = true
	}
	for _, o := range outputs {
		if !set[o] {
			t.Fatalf("%s: validity violated: output %v not among inputs", label, o)
		}
	}
}

func allEqual[V comparable](outs []V) bool {
	for _, o := range outs {
		if o != outs[0] {
			return false
		}
	}
	return true
}

func distinctInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	return in
}

// agreementRate runs trials with fresh objects and uniform random
// schedules, returning the fraction of trials in which all outputs agree.
func agreementRate[V comparable](t *testing.T, mk func() Interface[V], inputs []V, trials int, seed uint64) float64 {
	t.Helper()
	rng := xrand.New(seed)
	agreed := 0
	for trial := 0; trial < trials; trial++ {
		c := mk()
		src := sched.NewRandom(len(inputs), xrand.New(rng.Uint64()))
		outs, _ := runConc(t, c, inputs, src, rng.Uint64())
		checkValidity(t, inputs, outs, fmt.Sprintf("trial %d", trial))
		if allEqual(outs) {
			agreed++
		}
	}
	return float64(agreed) / float64(trials)
}

func TestPriorityRoundsFormula(t *testing.T) {
	tests := []struct {
		n    int
		eps  float64
		want int
	}{
		{16, 0.5, 3 + 1 + 1},
		{65536, 0.5, 4 + 1 + 1},
		{16, 0.25, 3 + 2 + 1},
		{2, 0.5, 1 + 1 + 1},
	}
	for _, tt := range tests {
		if got := PriorityRounds(tt.n, tt.eps); got != tt.want {
			t.Errorf("PriorityRounds(%d, %v) = %d, want %d", tt.n, tt.eps, got, tt.want)
		}
	}
}

func TestPrioritySingleProcess(t *testing.T) {
	c := NewPriority[string](1, PriorityConfig{})
	outs, _ := runConc(t, c, []string{"solo"}, sched.NewRoundRobin(1), 1)
	if len(outs) != 1 || outs[0] != "solo" {
		t.Fatalf("outs = %v", outs)
	}
}

func TestPriorityValidityAndStepBound(t *testing.T) {
	for _, n := range []int{2, 5, 16, 33} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := NewPriority[int](n, PriorityConfig{})
			inputs := distinctInputs(n)
			outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(7)), uint64(n))
			checkValidity(t, inputs, outs, "priority")
			if got, bound := res.MaxSteps(), int64(c.StepBound()); got > bound {
				t.Fatalf("max steps %d exceeds bound %d", got, bound)
			}
			if res.MaxSteps() != int64(2*c.Rounds()) {
				t.Fatalf("steps %d, want exactly %d (2 per round)", res.MaxSteps(), 2*c.Rounds())
			}
		})
	}
}

func TestPriorityAgreementProbability(t *testing.T) {
	// Theorem 1 with eps = 1/2 guarantees >= 1/2; empirically the rate is
	// far higher. Use a comfortable margin above the bound.
	const n, trials = 32, 150
	rate := agreementRate(t, func() Interface[int] {
		return NewPriority[int](n, PriorityConfig{Epsilon: 0.5})
	}, distinctInputs(n), trials, 101)
	if rate < 0.5 {
		t.Fatalf("agreement rate %v below the 1-eps = 0.5 bound", rate)
	}
}

func TestPriorityAgreementTightEpsilon(t *testing.T) {
	const n, trials = 16, 100
	rate := agreementRate(t, func() Interface[int] {
		return NewPriority[int](n, PriorityConfig{Epsilon: 1.0 / 16})
	}, distinctInputs(n), trials, 103)
	if rate < 1-1.0/16 {
		t.Fatalf("agreement rate %v below 1-eps = %v", rate, 1-1.0/16)
	}
}

func TestPrioritySurvivorDecay(t *testing.T) {
	// Average survivors after round 1 must respect Lemma 1:
	// E[X_1] <= ln(n-1+1) = ln n (generously, allow 2x slack for noise).
	const n, trials = 64, 60
	rng := xrand.New(55)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		c := NewPriority[int](n, PriorityConfig{TrackSurvivors: true, Rounds: 4})
		runConc(t, c, distinctInputs(n), sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		surv := c.SurvivorsPerRound()
		if len(surv) != 4 {
			t.Fatalf("survivor rounds = %d", len(surv))
		}
		sum += float64(surv[0] - 1)
	}
	mean := sum / trials
	if mean > 2*4.16 { // ln(64) ~ 4.16
		t.Fatalf("mean excess after round 1 = %v, expected about ln(64) = 4.16", mean)
	}
}

func TestPriorityPaperPriorityRange(t *testing.T) {
	const n = 8
	c := NewPriority[int](n, PriorityConfig{PaperPriorityRange: true})
	inputs := distinctInputs(n)
	outs, _ := runConc(t, c, inputs, sched.NewRoundRobin(n), 3)
	checkValidity(t, inputs, outs, "paper range")
}

func TestPriorityMaxRegisterVariant(t *testing.T) {
	for _, tree := range []bool{false, true} {
		tree := tree
		t.Run(fmt.Sprintf("tree=%v", tree), func(t *testing.T) {
			const n = 16
			c := NewPriority[int](n, PriorityConfig{UseMaxRegisters: true, TreeMax: tree})
			inputs := distinctInputs(n)
			outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(9)), 5)
			checkValidity(t, inputs, outs, "maxreg")
			if res.MaxSteps() > int64(c.StepBound()) {
				t.Fatalf("steps %d exceed bound %d", res.MaxSteps(), c.StepBound())
			}
		})
	}
}

func TestPriorityMaxRegisterAgreement(t *testing.T) {
	const n, trials = 16, 60
	rate := agreementRate(t, func() Interface[int] {
		return NewPriority[int](n, PriorityConfig{UseMaxRegisters: true})
	}, distinctInputs(n), trials, 107)
	if rate < 0.5 {
		t.Fatalf("max-register variant agreement rate %v below 0.5", rate)
	}
}

func TestPriorityShareDisabledStillValid(t *testing.T) {
	share := false
	const n = 16
	c := NewPriority[int](n, PriorityConfig{SharePersonae: &share})
	inputs := distinctInputs(n)
	outs, _ := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(13)), 7)
	checkValidity(t, inputs, outs, "no-share")
}

func TestSifterRoundsFormula(t *testing.T) {
	// R = ceil(loglog n) + ceil(log_{4/3} (8/eps)).
	tests := []struct {
		n    int
		eps  float64
		want int
	}{
		{256, 0.5, 3 + 10}, // log_{4/3} 16 = 9.64 -> 10
		{4, 0.25, 1 + 13},  // log_{4/3} 32 = 12.05 -> 13
	}
	for _, tt := range tests {
		if got := SifterRounds(tt.n, tt.eps); got != tt.want {
			t.Errorf("SifterRounds(%d, %v) = %d, want %d", tt.n, tt.eps, got, tt.want)
		}
	}
}

func TestSifterProbsSchedule(t *testing.T) {
	n := 256
	probs := SifterProbs(n, 8)
	// p_1 = (n-1)^{-1/2}.
	if want := 1 / 15.968719; probs[0] < want*0.99 || probs[0] > want*1.01 {
		t.Fatalf("p_1 = %v, want about %v", probs[0], want)
	}
	// After ceil(loglog n) = 3 tuned rounds, the rest are 1/2.
	for i := 3; i < 8; i++ {
		if probs[i] != 0.5 {
			t.Fatalf("p_%d = %v, want 0.5", i+1, probs[i])
		}
	}
	// Probabilities increase during the tuned prefix.
	if !(probs[0] < probs[1] && probs[1] < probs[2]) {
		t.Fatalf("tuned probs not increasing: %v", probs[:3])
	}
}

func TestSifterProbsSmallN(t *testing.T) {
	for _, n := range []int{1, 2} {
		probs := SifterProbs(n, 3)
		for i, p := range probs {
			if p != 0.5 {
				t.Fatalf("n=%d p_%d = %v, want 0.5", n, i+1, p)
			}
		}
	}
}

func TestSifterValidityAndStepBound(t *testing.T) {
	for _, n := range []int{2, 7, 32, 100} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := NewSifter[int](n, SifterConfig{})
			inputs := distinctInputs(n)
			outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(17)), uint64(n))
			checkValidity(t, inputs, outs, "sifter")
			if res.MaxSteps() != int64(c.Rounds()) {
				t.Fatalf("steps %d, want exactly %d (1 per round)", res.MaxSteps(), c.Rounds())
			}
		})
	}
}

func TestSifterAgreementProbability(t *testing.T) {
	const n, trials = 32, 150
	rate := agreementRate(t, func() Interface[int] {
		return NewSifter[int](n, SifterConfig{Epsilon: 0.5})
	}, distinctInputs(n), trials, 109)
	if rate < 0.5 {
		t.Fatalf("agreement rate %v below 0.5", rate)
	}
}

func TestSifterSurvivorDecayShape(t *testing.T) {
	// Lemma 3: E[X_1] <= 2 sqrt(n-1); allow 2x sampling slack.
	const n, trials = 100, 60
	rng := xrand.New(61)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		c := NewSifter[int](n, SifterConfig{TrackSurvivors: true})
		runConc(t, c, distinctInputs(n), sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		surv := c.SurvivorsPerRound()
		sum += float64(surv[0] - 1)
	}
	mean := sum / trials
	if bound := 2 * 9.95; mean > 2*bound { // 2 sqrt(99) ~ 19.9
		t.Fatalf("mean excess after round 1 = %v, bound %v", mean, bound)
	}
}

func TestSifterConstantProbsAblationValid(t *testing.T) {
	const n = 32
	c := NewSifter[int](n, SifterConfig{Probs: []float64{0.5}})
	for _, p := range c.Probs() {
		if p != 0.5 {
			t.Fatalf("probs not constant: %v", c.Probs())
		}
	}
	inputs := distinctInputs(n)
	outs, _ := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(23)), 11)
	checkValidity(t, inputs, outs, "constant probs")
}

func TestSifterShareDisabledStillValid(t *testing.T) {
	share := false
	const n = 32
	c := NewSifter[int](n, SifterConfig{SharePersonae: &share})
	inputs := distinctInputs(n)
	outs, _ := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(29)), 13)
	checkValidity(t, inputs, outs, "no-share sifter")
}

func TestStepwiseStepAfterDoneNoop(t *testing.T) {
	const n = 4
	outs, _, _, err := sim.Collect(sched.NewRoundRobin(n), sim.Config{AlgSeed: 1}, func(p *sim.Proc) int {
		c := NewSifter[int](n, SifterConfig{Rounds: 2})
		run := c.Begin(p, p.ID())
		for !run.Done() {
			run.Step(p)
		}
		before := p.Steps()
		run.Step(p) // must not take steps
		if p.Steps() != before {
			t.Error("Step after Done consumed steps")
		}
		return run.Persona().Value()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = outs
}

func TestCILValidityAndAgreement(t *testing.T) {
	const n, trials = 16, 100
	rate := agreementRate(t, func() Interface[int] {
		return NewCIL[int](n, CILConfig{})
	}, distinctInputs(n), trials, 113)
	if rate < 0.75 {
		t.Fatalf("CIL agreement rate %v below 3/4", rate)
	}
}

func TestCILSafetyValve(t *testing.T) {
	// With write probability forced to ~0, the valve must fire and the
	// process must still return its own input.
	const n = 2
	c := NewCIL[int](n, CILConfig{WriteProb: 1e-18, MaxSpins: 10})
	inputs := []int{100, 200}
	outs, res := runConc(t, c, inputs, sched.NewRoundRobin(n), 3)
	checkValidity(t, inputs, outs, "cil valve")
	if res.MaxSteps() > int64(c.StepBound()) {
		t.Fatalf("steps %d exceed StepBound %d", res.MaxSteps(), c.StepBound())
	}
}

func TestEmbeddedValidityAndBounds(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := NewEmbedded[int](n, EmbeddedConfig{})
			inputs := distinctInputs(n)
			outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(31)), uint64(n)+1)
			checkValidity(t, inputs, outs, "embedded")
			if res.MaxSteps() > int64(c.StepBound()) {
				t.Fatalf("max steps %d exceed bound %d", res.MaxSteps(), c.StepBound())
			}
			s, r, w := c.ExitCounts()
			if s+r+w != int64(n) {
				t.Fatalf("exit counts %d+%d+%d != n=%d", s, r, w, n)
			}
		})
	}
}

func TestEmbeddedAgreementProbability(t *testing.T) {
	// Theorem 3 guarantees only 1/8; empirically the rate is much higher.
	const n, trials = 32, 150
	rate := agreementRate(t, func() Interface[int] {
		return NewEmbedded[int](n, EmbeddedConfig{})
	}, distinctInputs(n), trials, 127)
	if rate < 1.0/8 {
		t.Fatalf("embedded agreement rate %v below 1/8", rate)
	}
}

func TestEmbeddedLinearTotalWork(t *testing.T) {
	// Expected total steps O(n): with the safety margin, assert
	// total <= 40n averaged over trials (the constant from the proof is
	// about 4n loop iterations plus combine overhead).
	const n, trials = 128, 20
	rng := xrand.New(131)
	var total int64
	for trial := 0; trial < trials; trial++ {
		c := NewEmbedded[int](n, EmbeddedConfig{})
		_, res := runConc(t, c, distinctInputs(n), sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		total += res.TotalSteps
	}
	avg := float64(total) / trials
	if avg > 40*n {
		t.Fatalf("average total steps %v not O(n) for n=%d", avg, n)
	}
}

func TestEmbeddedPriorityVariant(t *testing.T) {
	const n = 16
	c := NewEmbeddedPriority[int](n, EmbeddedConfig{})
	inputs := distinctInputs(n)
	outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(37)), 17)
	checkValidity(t, inputs, outs, "embedded priority")
	if res.MaxSteps() > int64(c.StepBound()) {
		t.Fatalf("max steps %d exceed bound %d", res.MaxSteps(), c.StepBound())
	}
}

func TestConciliatorsDeterministicGivenSeeds(t *testing.T) {
	const n = 16
	mk := []struct {
		name string
		mk   func() Interface[int]
	}{
		{name: "priority", mk: func() Interface[int] { return NewPriority[int](n, PriorityConfig{}) }},
		{name: "sifter", mk: func() Interface[int] { return NewSifter[int](n, SifterConfig{}) }},
		{name: "embedded", mk: func() Interface[int] { return NewEmbedded[int](n, EmbeddedConfig{}) }},
		{name: "cil", mk: func() Interface[int] { return NewCIL[int](n, CILConfig{}) }},
	}
	for _, tc := range mk {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() []int {
				outs, _ := runConc(t, tc.mk(), distinctInputs(n), sched.NewRandom(n, xrand.New(41)), 19)
				return outs
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("outputs diverge at %d: %v vs %v", i, a, b)
				}
			}
		})
	}
}

func TestConciliatorsUnderAllScheduleKinds(t *testing.T) {
	const n = 16
	inputs := distinctInputs(n)
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for _, tc := range []struct {
				name string
				mk   func() Interface[int]
			}{
				{name: "priority", mk: func() Interface[int] { return NewPriority[int](n, PriorityConfig{}) }},
				{name: "sifter", mk: func() Interface[int] { return NewSifter[int](n, SifterConfig{}) }},
				{name: "embedded", mk: func() Interface[int] { return NewEmbedded[int](n, EmbeddedConfig{}) }},
			} {
				outs, _ := runConc(t, tc.mk(), inputs, sched.New(kind, n, 43), 23)
				checkValidity(t, inputs, outs, tc.name+"/"+kind.String())
				if len(outs) == 0 {
					t.Fatalf("%s: no process finished", tc.name)
				}
			}
		})
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *tracker[int]
	tr.record(0, 0, nil)
	if got := tr.survivors(); got != nil {
		t.Fatalf("nil tracker survivors = %v", got)
	}
}

func TestEmbeddedConcurrentMode(t *testing.T) {
	// The same conciliator code must run correctly as free goroutines.
	const n = 16
	c := NewEmbedded[int](n, EmbeddedConfig{})
	inputs := distinctInputs(n)
	outs, _, err := sim.CollectConcurrent(n, sim.Config{AlgSeed: 3}, func(p *sim.Proc) int {
		return c.Conciliate(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidity(t, inputs, outs, "embedded concurrent")
}
