package conciliator

import (
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// CILConfig parameterizes the Chor–Israeli–Li conciliator.
type CILConfig struct {
	// WriteProb is the per-iteration probability of writing the proposal
	// register; zero means the paper's 1/(4n).
	WriteProb float64

	// MaxSpins bounds the number of read-iterations before the process
	// gives up waiting and writes unconditionally (a safety valve: plain
	// CIL terminates only with probability 1, but the simulator needs a
	// hard bound). Zero means 64*n + 1024, which is hit with probability
	// about exp(-16) per process and preserves validity when it is.
	MaxSpins int
}

// CIL is the conciliator extracted from the Chor–Israeli–Li consensus
// protocol (Section 4): a single proposal register, initially null. Each
// iteration a process reads the register and returns its value if
// non-null; otherwise it writes its own input with probability 1/(4n).
//
// Agreement holds with probability > 3/4 (once a first value lands, the
// union bound gives the remaining n-1 processes < 1/4 total probability
// of overwriting before reading). Expected total steps are O(n); expected
// individual steps are O(n) too, which is what Algorithm 3 improves by
// filling the waiting iterations with sifting work.
type CIL[V comparable] struct {
	n        int
	prob     float64
	maxSpins int
	proposal *memory.Register[*persona.Persona[V]]
}

var _ Interface[int] = (*CIL[int])(nil)

// NewCIL returns a CIL conciliator instance for n processes.
func NewCIL[V comparable](n int, cfg CILConfig) *CIL[V] {
	prob := cfg.WriteProb
	if prob <= 0 {
		prob = 1 / (4 * float64(n))
	}
	maxSpins := cfg.MaxSpins
	if maxSpins <= 0 {
		maxSpins = 64*n + 1024
	}
	return &CIL[V]{
		n:        n,
		prob:     prob,
		maxSpins: maxSpins,
		proposal: memory.NewRegister[*persona.Persona[V]](),
	}
}

// StepBound implements Interface (the safety-valve bound).
func (c *CIL[V]) StepBound() int { return 2*c.maxSpins + 2 }

// Conciliate implements Interface.
func (c *CIL[V]) Conciliate(p *sim.Proc, input V) V {
	before := p.Steps()
	defer func() { mCILProc.Observe(p.Steps() - before) }()
	pers := persona.New(input, p.ID(), p.Rng(), persona.Config{})
	for spin := 0; spin < c.maxSpins; spin++ {
		if v, ok := c.proposal.Read(p); ok {
			mCILSpin.Inc()
			return v.Value()
		}
		mCILSpin.Inc()
		if p.Rng().Bernoulli(c.prob) {
			c.proposal.Write(p, pers)
			mCILWrite.Inc()
			return input
		}
	}
	// Safety valve: write unconditionally. Validity still holds (we
	// return our own input); only the agreement probability analysis is
	// (negligibly) affected.
	c.proposal.Write(p, pers)
	mCILWrite.Inc()
	return input
}
