package conciliator

import "github.com/oblivious-consensus/conciliator/internal/metrics"

// Per-phase step attribution: how many shared-memory steps each
// algorithm phase costs, plus a per-process distribution per family.
// All instruments are nil (free no-ops) until a metrics registry is
// installed. Step counts are measured as deltas of the process's own
// step counter around a phase, so substrate substitution (Afek
// snapshots, tree max registers) is charged to the phase that incurred
// it. When one conciliator runs embedded in another (Algorithm 3), the
// inner rounds are attributed both to the inner family's phase counters
// and to the host's inner_steps counter — the two views answer
// different questions.
var (
	mPriRound *metrics.Counter   // conciliator.priority.round_steps
	mPriBoard *metrics.Counter   // conciliator.priority.board_steps
	mPriProc  *metrics.Histogram // conciliator.priority.steps_per_proc

	mSifWrite *metrics.Counter   // conciliator.sifter.write_steps
	mSifRead  *metrics.Counter   // conciliator.sifter.read_steps
	mSifProc  *metrics.Histogram // conciliator.sifter.steps_per_proc

	mCILSpin  *metrics.Counter   // conciliator.cil.spin_steps
	mCILWrite *metrics.Counter   // conciliator.cil.write_steps
	mCILProc  *metrics.Histogram // conciliator.cil.steps_per_proc

	mEmbPoll    *metrics.Counter   // conciliator.embedded.poll_steps
	mEmbPropose *metrics.Counter   // conciliator.embedded.propose_steps
	mEmbInner   *metrics.Counter   // conciliator.embedded.inner_steps
	mEmbCombine *metrics.Counter   // conciliator.embedded.combine_steps
	mEmbProc    *metrics.Histogram // conciliator.embedded.steps_per_proc
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mPriRound = r.Counter("conciliator.priority.round_steps")
		mPriBoard = r.Counter("conciliator.priority.board_steps")
		mPriProc = r.Histogram("conciliator.priority.steps_per_proc")
		mSifWrite = r.Counter("conciliator.sifter.write_steps")
		mSifRead = r.Counter("conciliator.sifter.read_steps")
		mSifProc = r.Histogram("conciliator.sifter.steps_per_proc")
		mCILSpin = r.Counter("conciliator.cil.spin_steps")
		mCILWrite = r.Counter("conciliator.cil.write_steps")
		mCILProc = r.Histogram("conciliator.cil.steps_per_proc")
		mEmbPoll = r.Counter("conciliator.embedded.poll_steps")
		mEmbPropose = r.Counter("conciliator.embedded.propose_steps")
		mEmbInner = r.Counter("conciliator.embedded.inner_steps")
		mEmbCombine = r.Counter("conciliator.embedded.combine_steps")
		mEmbProc = r.Histogram("conciliator.embedded.steps_per_proc")
	})
}
