package conciliator

import (
	"math"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// PriorityConfig parameterizes Algorithm 1.
type PriorityConfig struct {
	// Epsilon is the target disagreement probability (default 1/2). The
	// round count is R = log* n + ceil(log2(1/Epsilon)) + 1.
	Epsilon float64

	// Rounds overrides the paper's R when positive (used by the decay
	// experiments that want to watch more rounds than agreement needs).
	Rounds int

	// PaperPriorityRange draws priorities from {1..ceil(R n^2/Epsilon)}
	// exactly as the paper specifies. When false (the default),
	// priorities are full-width 64-bit values, whose collision
	// probability is far below any epsilon/(R n^2) budget; the E11c
	// ablation measures the difference.
	PaperPriorityRange bool

	// PriorityBound, when nonzero, forces a specific priority range
	// (ablation E11c). Takes precedence over PaperPriorityRange.
	PriorityBound uint64

	// SharePersonae, when false, disables the persona mechanism: a
	// process adopting a value draws its own fresh priorities instead of
	// inheriting the originator's (ablation E11b). The paper's analysis
	// requires sharing; the ablation measures what breaks without it.
	SharePersonae *bool

	// UseMaxRegisters runs the footnote-1 variant on max registers
	// instead of snapshots. TreeMax selects the register-based tree max
	// register (O(key bits) steps per operation) instead of the unit-cost
	// one.
	UseMaxRegisters bool
	TreeMax         bool

	// UseAfekSnapshot replaces the unit-cost snapshot objects with the
	// register-built Afek-et-al. snapshot, charging the true register
	// cost of every update and scan. This quantifies what the paper's
	// unit-cost assumption buys (experiment E15).
	UseAfekSnapshot bool

	// InconsistentTies selects a first-seen-wins rule for equal
	// priorities instead of the default deterministic origin-id
	// tie-break. The default tie-break turns (priority, origin) into a
	// total order, which quietly repairs duplicate priorities; the
	// ablation E11c uses this switch to expose the event D the paper's
	// priority range guards against.
	InconsistentTies bool

	// CompactValues implements footnote 2 of the paper: snapshot
	// components carry only the persona's origin id and priority vector,
	// never the (unbounded-size) input value. Input values live in a
	// per-process board of single-writer registers, written once on
	// entry and read once at the end to resolve the winning origin to
	// its value. Costs 2 extra steps per process; component size drops
	// to O(log n log* n) bits.
	CompactValues bool

	// TrackSurvivors enables per-round distinct-persona accounting.
	TrackSurvivors bool
}

func (c PriorityConfig) withDefaults() PriorityConfig {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.5
	}
	if c.SharePersonae == nil {
		share := true
		c.SharePersonae = &share
	}
	return c
}

// PriorityRounds returns the paper's R for n processes and the given
// epsilon: log* n + ceil(log2(1/eps)) + 1.
func PriorityRounds(n int, epsilon float64) int {
	return stats.LogStar(float64(n)) + stats.CeilLogBase(2, 1/epsilon) + 1
}

// Priority is Algorithm 1: the snapshot-based priority conciliator.
type Priority[V comparable] struct {
	n      int
	rounds int
	cfg    PriorityConfig
	bound  uint64

	arrays []memory.SnapshotObject[*persona.Persona[V]]
	maxers []memory.Maxer[*persona.Persona[V]]

	// board holds each process's input value in compact (footnote 2)
	// mode; nil otherwise.
	board *memory.RegisterArray[V]

	track *tracker[V]
}

var (
	_ Interface[int] = (*Priority[int])(nil)
	_ Stepwise[int]  = (*Priority[int])(nil)
)

// NewPriority returns an Algorithm 1 instance for n processes.
func NewPriority[V comparable](n int, cfg PriorityConfig) *Priority[V] {
	cfg = cfg.withDefaults()
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = PriorityRounds(n, cfg.Epsilon)
	}
	c := &Priority[V]{n: n, rounds: rounds, cfg: cfg}
	switch {
	case cfg.PriorityBound != 0:
		c.bound = cfg.PriorityBound
	case cfg.PaperPriorityRange:
		c.bound = uint64(math.Ceil(float64(rounds) * float64(n) * float64(n) / cfg.Epsilon))
	}
	if cfg.UseMaxRegisters {
		if cfg.TreeMax && c.bound == 0 {
			// The tree max register needs a bounded key space; default to
			// the paper's priority range when none was forced.
			c.bound = uint64(math.Ceil(float64(rounds) * float64(n) * float64(n) / cfg.Epsilon))
		}
		c.maxers = make([]memory.Maxer[*persona.Persona[V]], rounds)
		for i := range c.maxers {
			if cfg.TreeMax {
				c.maxers[i] = memory.NewTreeMaxRegister[*persona.Persona[V]](treeBits(c.bound))
			} else {
				c.maxers[i] = memory.NewMaxRegister[*persona.Persona[V]]()
			}
		}
	} else {
		c.arrays = make([]memory.SnapshotObject[*persona.Persona[V]], rounds)
		for i := range c.arrays {
			if cfg.UseAfekSnapshot {
				c.arrays[i] = memory.NewAfekSnapshot[*persona.Persona[V]](n)
			} else {
				c.arrays[i] = memory.NewSnapshot[*persona.Persona[V]](n)
			}
		}
	}
	if cfg.CompactValues {
		c.board = memory.NewRegisterArray[V](n)
	}
	c.track = newTracker[V](rounds, n, cfg.TrackSurvivors)
	return c
}

// Rounds returns the number of rounds R the instance will execute.
func (c *Priority[V]) Rounds() int { return c.rounds }

// StepBound implements Interface: two operations per round on the
// unit-cost substrates; substrate-dependent otherwise.
func (c *Priority[V]) StepBound() int {
	per := 2
	switch {
	case c.cfg.UseMaxRegisters && c.cfg.TreeMax:
		// Tree max register costs O(key bits) register steps per
		// operation.
		per = 2 * (treeBits(c.bound) + 1)
	case c.cfg.UseAfekSnapshot:
		// An update embeds a scan; a scan costs up to O(n^2) collects in
		// adversarial schedules, but under one-op-per-slot scheduling a
		// double collect (2n reads) plus the update's own ops dominate.
		// Use a generous bound proportional to n^2 to stay a true bound.
		per = 4*c.n*c.n + 8*c.n + 8
	}
	bound := per * c.rounds
	if c.cfg.CompactValues {
		bound += 2 // board write on entry, board read on exit
	}
	return bound
}

// treeBits returns the key width needed for priorities in {1..bound}.
func treeBits(bound uint64) int {
	bits := 1
	for bound>>uint(bits) != 0 && bits < 63 {
		bits++
	}
	return bits
}

// SurvivorsPerRound returns, after an execution with TrackSurvivors, the
// number of distinct personae held at the end of each round (the paper's
// Y_i).
func (c *Priority[V]) SurvivorsPerRound() []int { return c.track.survivors() }

// Conciliate implements Interface.
func (c *Priority[V]) Conciliate(p *sim.Proc, input V) V {
	before := p.Steps()
	v := conciliate[V](c, p, input)
	mPriProc.Observe(p.Steps() - before)
	return v
}

// Begin implements Stepwise.
func (c *Priority[V]) Begin(p *sim.Proc, input V) Run[V] {
	carried := input
	if c.cfg.CompactValues {
		// Footnote 2: the circulated persona never carries the input;
		// only the origin id travels through shared memory.
		var zero V
		carried = zero
	}
	return &priorityRun[V]{
		c:     c,
		input: input,
		pers: persona.New(carried, p.ID(), p.Rng(), persona.Config{
			PriorityRounds: c.rounds,
			PriorityBound:  c.bound,
		}),
	}
}

type priorityRun[V comparable] struct {
	c     *Priority[V]
	pers  *persona.Persona[V]
	i     int
	input V
	wrote bool
	// view is the reused scan buffer for the snapshot-array rounds; it
	// keeps the per-round Scan allocation-free after the first round.
	view []memory.Entry[*persona.Persona[V]]
}

func (r *priorityRun[V]) Done() bool                   { return r.i >= r.c.rounds }
func (r *priorityRun[V]) Persona() *persona.Persona[V] { return r.pers }

// Step executes one round: install the current persona, then adopt the
// highest-priority persona visible.
func (r *priorityRun[V]) Step(p *sim.Proc) {
	if r.Done() {
		return
	}
	i := r.i
	c := r.c

	if c.cfg.CompactValues && !r.wrote {
		c.board.At(p.ID()).Write(p, r.input)
		r.wrote = true
		mPriBoard.Inc()
	}

	var before int64
	if mPriRound != nil {
		before = p.Steps()
	}
	if c.cfg.UseMaxRegisters {
		m := c.maxers[i]
		m.WriteMax(p, r.pers.Priority(i), r.pers)
		if _, best, ok := m.ReadMax(p); ok {
			r.adopt(p, best, i)
		}
	} else {
		a := c.arrays[i]
		a.Update(p, p.ID(), r.pers)
		r.view = a.ScanInto(p, r.view)
		var best *persona.Persona[V]
		for _, e := range r.view {
			if !e.OK {
				continue
			}
			if best == nil || better(e.Value, best, i, c.cfg.InconsistentTies) {
				best = e.Value
			}
		}
		// best is never nil: the process's own update precedes its scan.
		r.adopt(p, best, i)
	}
	if mPriRound != nil {
		mPriRound.Add(p.Steps() - before)
	}

	c.track.record(i, p.ID(), r.pers)
	r.i++

	if c.cfg.CompactValues && r.i >= c.rounds {
		// Resolve the winning origin to its input through the board. The
		// origin wrote its board entry before its persona first entered
		// any snapshot, so the read always finds a value.
		if v, ok := c.board.At(r.pers.Origin()).Read(p); ok {
			r.pers = persona.WithValue(r.pers, v)
		}
		mPriBoard.Inc()
	}
}

// adopt installs the winning persona. With sharing disabled (ablation),
// the process keeps the winner's value but re-draws priorities from its
// own stream, which breaks the "all copies behave identically" property
// the analysis uses.
func (r *priorityRun[V]) adopt(p *sim.Proc, winner *persona.Persona[V], round int) {
	if *r.c.cfg.SharePersonae || winner == r.pers {
		r.pers = winner
		return
	}
	r.pers = persona.New(winner.Value(), p.ID(), p.Rng(), persona.Config{
		PriorityRounds: r.c.rounds,
		PriorityBound:  r.c.bound,
	})
}

// better reports whether a beats b in round i: higher priority wins. The
// paper assumes no duplicates (event D) and charges any duplicate as a
// failure; the default origin-id tie-break is stricter than the paper
// needs — it makes (priority, origin) a total order, so even duplicate
// priorities cannot break agreement. With inconsistentTies the incumbent
// keeps ties (first-seen-wins), which is view-dependent and exhibits the
// failures event D budgets for.
func better[V comparable](a, b *persona.Persona[V], i int, inconsistentTies bool) bool {
	pa, pb := a.Priority(i), b.Priority(i)
	if pa != pb {
		return pa > pb
	}
	if inconsistentTies {
		return false
	}
	return a.Origin() > b.Origin()
}
