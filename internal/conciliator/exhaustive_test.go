package conciliator

import (
	"errors"
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// TestSifterValidityOverAllInterleavings model-checks Algorithm 2 with
// two processes over every schedule interleaving and many seeds: outputs
// must always be inputs, regardless of who reads or writes when.
func TestSifterValidityOverAllInterleavings(t *testing.T) {
	const rounds = 3
	interleavings := sched.AllInterleavings([]int{rounds, rounds})
	for seed := uint64(1); seed <= 12; seed++ {
		for _, slots := range interleavings {
			c := NewSifter[int](2, SifterConfig{Rounds: rounds})
			inputs := []int{10, 20}
			outs, finished, _, err := sim.Collect(sched.NewExplicit(2, slots), sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
				return c.Conciliate(p, inputs[p.ID()])
			})
			if err != nil {
				t.Fatalf("seed %d schedule %v: %v", seed, slots, err)
			}
			for pid, o := range outs {
				if !finished[pid] {
					t.Fatalf("seed %d schedule %v: pid %d unfinished", seed, slots, pid)
				}
				if o != 10 && o != 20 {
					t.Fatalf("seed %d schedule %v: invalid output %d", seed, slots, o)
				}
			}
		}
	}
}

// TestSifterSafeUnderEveryPrefix checks validity of the finished subset
// under every truncation of every interleaving (crash model checking).
func TestSifterSafeUnderEveryPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("prefix model check skipped in -short mode")
	}
	const rounds = 3
	for _, slots := range sched.AllInterleavings([]int{rounds, rounds}) {
		for cut := 0; cut <= len(slots); cut++ {
			c := NewSifter[int](2, SifterConfig{Rounds: rounds})
			inputs := []int{10, 20}
			outs, finished, _, err := sim.Collect(sched.NewExplicit(2, slots[:cut]), sim.Config{AlgSeed: 7}, func(p *sim.Proc) int {
				return c.Conciliate(p, inputs[p.ID()])
			})
			if err != nil && !errors.Is(err, sim.ErrScheduleExhausted) {
				t.Fatal(err)
			}
			for pid, o := range outs {
				if finished[pid] && o != 10 && o != 20 {
					t.Fatalf("prefix %v: invalid output %d", slots[:cut], o)
				}
			}
		}
	}
}

// TestPriorityValidityOverAllInterleavings is the Algorithm 1 analogue:
// two processes, two rounds, two operations per round.
func TestPriorityValidityOverAllInterleavings(t *testing.T) {
	const rounds = 2
	interleavings := sched.AllInterleavings([]int{2 * rounds, 2 * rounds})
	for seed := uint64(1); seed <= 6; seed++ {
		for _, slots := range interleavings {
			c := NewPriority[int](2, PriorityConfig{Rounds: rounds})
			inputs := []int{33, 44}
			outs, finished, _, err := sim.Collect(sched.NewExplicit(2, slots), sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
				return c.Conciliate(p, inputs[p.ID()])
			})
			if err != nil {
				t.Fatalf("seed %d schedule %v: %v", seed, slots, err)
			}
			for pid, o := range outs {
				if !finished[pid] {
					t.Fatalf("seed %d schedule %v: pid %d unfinished", seed, slots, pid)
				}
				if o != 33 && o != 44 {
					t.Fatalf("seed %d schedule %v: invalid output %d", seed, slots, o)
				}
			}
			// Algorithm 1 bonus property: under the lockstep schedule
			// (both update, then both scan, per round) every scan of the
			// final round contains both current personae, so both
			// processes adopt the same maximum and must agree.
			if fmt.Sprint(slots) == fmt.Sprint([]int{0, 1, 0, 1, 0, 1, 0, 1}) {
				if outs[0] != outs[1] {
					t.Fatalf("seed %d: lockstep schedule must agree, got %v", seed, outs)
				}
			}
		}
	}
}

// TestEmbeddedValidityOverSampledSchedules covers Algorithm 3's more
// variable step structure with explicit bounded-length schedules: run
// under long round-robin prefixes so all processes finish, then check
// validity.
func TestEmbeddedValidityOverSampledSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		c := NewEmbedded[int](3, EmbeddedConfig{})
		inputs := []int{7, 8, 9}
		outs, finished, _, err := sim.Collect(sched.NewRoundRobin(3), sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		for pid, o := range outs {
			if !finished[pid] {
				t.Fatalf("seed %d: pid %d unfinished", seed, pid)
			}
			if o < 7 || o > 9 {
				t.Fatalf("seed %d: invalid output %d", seed, o)
			}
		}
	}
}
