package conciliator

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestPriorityCompactValidity(t *testing.T) {
	const n = 16
	c := NewPriority[string](n, PriorityConfig{CompactValues: true})
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = string(rune('a' + i))
	}
	outs, res := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(3)), 5)
	checkValidity(t, inputs, outs, "compact")
	// 2 steps per round + board write + board read.
	if want := int64(2*c.Rounds() + 2); res.MaxSteps() != want {
		t.Fatalf("steps %d, want %d", res.MaxSteps(), want)
	}
}

func TestPriorityCompactAgreementMatchesStandard(t *testing.T) {
	// The indirection must not change the protocol's agreement dynamics:
	// the permutation of priorities is identical, so agreement rates
	// should track the standard variant's.
	const n, trials = 16, 60
	rate := agreementRate(t, func() Interface[int] {
		return NewPriority[int](n, PriorityConfig{CompactValues: true})
	}, distinctInputs(n), trials, 311)
	if rate < 0.5 {
		t.Fatalf("compact agreement rate %v below 1/2", rate)
	}
}

func TestPriorityCompactNeverLeaksValuesIntoSnapshots(t *testing.T) {
	// Structural check of footnote 2: the circulated personae carry the
	// zero value, so any adopted-before-resolution persona has Value ==
	// "". We verify via the survivor tracker, which records the personae
	// as they travel.
	const n = 8
	c := NewPriority[string](n, PriorityConfig{CompactValues: true, TrackSurvivors: true})
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = "secret-" + string(rune('0'+i))
	}
	outs, _ := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(7)), 9)
	checkValidity(t, inputs, outs, "compact leak check")
	// The tracker holds the personae seen during rounds; none may carry
	// an input value (resolution happens after the last round).
	for round, holders := range c.track.holders {
		for pid, pers := range holders {
			if pers == nil {
				continue
			}
			if pers.Value() != "" {
				t.Fatalf("round %d pid %d: persona leaked value %q into shared memory",
					round, pid, pers.Value())
			}
		}
	}
}

func TestPriorityCompactSoloAndPair(t *testing.T) {
	for _, n := range []int{1, 2} {
		c := NewPriority[int](n, PriorityConfig{CompactValues: true})
		inputs := distinctInputs(n)
		outs, _ := runConc(t, c, inputs, sched.NewRoundRobin(n), 11)
		checkValidity(t, inputs, outs, "compact small n")
		if n == 1 && outs[0] != 0 {
			t.Fatalf("solo output %d", outs[0])
		}
	}
}

func TestPriorityCompactWithMaxRegisters(t *testing.T) {
	const n = 8
	c := NewPriority[int](n, PriorityConfig{CompactValues: true, UseMaxRegisters: true})
	inputs := distinctInputs(n)
	outs, _ := runConc(t, c, inputs, sched.NewRandom(n, xrand.New(13)), 15)
	checkValidity(t, inputs, outs, "compact maxreg")
}
