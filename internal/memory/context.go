// Package memory implements the paper's shared-memory model: linearizable
// atomic multi-writer multi-reader registers, unit-cost snapshot objects,
// max registers (the footnote-1 alternative for Algorithm 1), and — to show
// the snapshot substrate is constructible rather than an oracle — a
// wait-free snapshot built from single-writer registers in the style of
// Afek et al.
//
// Every operation on a shared object charges exactly one step to the
// calling process through the Context interface, matching the paper's cost
// model in which both register operations and snapshot update/scan
// operations cost one step (Section 1.1). Objects are internally
// linearizable (a mutex makes each operation atomic), so the same objects
// are safe in the free-running concurrent execution mode as well as under
// the deterministic controlled scheduler, where at most one process runs
// at a time anyway.
package memory

import (
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
)

// Context is the hook through which shared-memory operations charge steps
// to the calling process and yield to the adversary scheduler. The
// simulator's process handle implements it; code running outside a
// simulation can pass Free.
type Context interface {
	// Step blocks until the adversary schedules the caller's next
	// operation (controlled mode) and charges one step. In concurrent
	// mode it only charges the step.
	Step()

	// Exclusive reports whether the caller is guaranteed to be the only
	// process touching shared objects while its operation runs, letting
	// objects skip their mutexes. The controlled simulator returns true
	// (its coroutine engine runs exactly one process at a time by
	// construction, and every handoff is a synchronization point);
	// concurrent mode and Free return false, keeping the objects
	// linearizable under real overlap.
	Exclusive() bool
}

// Scratcher is an optional Context capability exposing a per-process
// scratch arena: reusable buffers keyed by shared object, so hot-path
// operations like Snapshot.ScanScratch allocate only on first use per
// (process, object) pair. The simulator's process handle implements it.
type Scratcher interface {
	ScratchMap() map[any]any
}

// Free is a Context that never blocks and charges nothing. It is intended
// for unit tests and non-simulated use of the memory objects.
var Free Context = freeContext{}

type freeContext struct{}

func (freeContext) Step()           {}
func (freeContext) Exclusive() bool { return false }

// FreeExclusive is Free plus the exclusive capability: for benchmarks and
// sequential tests that own their objects outright and want the lock-free
// fast path without a simulator.
var FreeExclusive Context = freeExclusiveContext{}

type freeExclusiveContext struct{ freeContext }

func (freeExclusiveContext) Exclusive() bool { return true }

// opCounter tracks how many operations an object has served. Atomic so it
// is safe in concurrent mode; reads are for metrics only.
type opCounter struct {
	n atomic.Int64
}

func (c *opCounter) inc()        { c.n.Add(1) }
func (c *opCounter) load() int64 { return c.n.Load() }

// Per-object-class operation counters, aggregated across every instance.
// All nil (free no-ops) until a metrics registry is installed; see the
// metrics package for the enable protocol and ordering requirements.
// "Contended" counts operations that found the object's critical section
// already held by another process — real operation overlap, which only
// the concurrent execution mode can produce (the controlled scheduler
// runs one operation at a time by construction).
var (
	mRegRead, mRegWrite, mRegContend  *metrics.Counter
	mSnapUpdate, mSnapScan, mSnapCont *metrics.Counter
	mMaxWrite, mMaxRead, mMaxContend  *metrics.Counter
	mTreeWrite, mTreeRead             *metrics.Counter
	mAfekUpdate, mAfekScan            *metrics.Counter
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mRegRead = r.Counter("memory.register.read")
		mRegWrite = r.Counter("memory.register.write")
		mRegContend = r.Counter("memory.register.contended")
		mSnapUpdate = r.Counter("memory.snapshot.update")
		mSnapScan = r.Counter("memory.snapshot.scan")
		mSnapCont = r.Counter("memory.snapshot.contended")
		mMaxWrite = r.Counter("memory.maxreg.write")
		mMaxRead = r.Counter("memory.maxreg.read")
		mMaxContend = r.Counter("memory.maxreg.contended")
		mTreeWrite = r.Counter("memory.treemax.write")
		mTreeRead = r.Counter("memory.treemax.read")
		mAfekUpdate = r.Counter("memory.afek.update")
		mAfekScan = r.Counter("memory.afek.scan")
	})
}

// lockMeter acquires mu, counting acquisitions that found the lock
// already held into contended. With metrics disabled it is a plain
// Lock; enabled, the TryLock fast path costs the same single CAS an
// uncontended Lock does.
func lockMeter(mu *sync.Mutex, contended *metrics.Counter) {
	if contended == nil {
		mu.Lock()
		return
	}
	if !mu.TryLock() {
		contended.Inc()
		mu.Lock()
	}
}
