// Package memory implements the paper's shared-memory model: linearizable
// atomic multi-writer multi-reader registers, unit-cost snapshot objects,
// max registers (the footnote-1 alternative for Algorithm 1), and — to show
// the snapshot substrate is constructible rather than an oracle — a
// wait-free snapshot built from single-writer registers in the style of
// Afek et al.
//
// Every operation on a shared object charges exactly one step to the
// calling process through the Context interface, matching the paper's cost
// model in which both register operations and snapshot update/scan
// operations cost one step (Section 1.1). Objects are internally
// linearizable under every execution mode, via one of three
// representations latched per object on first use (see repMode): direct
// field access under the controlled engine's Exclusive contexts, the same
// fields under a mutex for locked contexts, or genuine hardware atomics —
// atomic.Pointer stores and CAS loops — for the lock-free concurrent
// path (see LockFreer).
package memory

import (
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
)

// Context is the hook through which shared-memory operations charge steps
// to the calling process and yield to the adversary scheduler. The
// simulator's process handle implements it; code running outside a
// simulation can pass Free.
type Context interface {
	// Step blocks until the adversary schedules the caller's next
	// operation (controlled mode) and charges one step. In concurrent
	// mode it only charges the step.
	Step()

	// Exclusive reports whether the caller is guaranteed to be the only
	// process touching shared objects while its operation runs, letting
	// objects skip their mutexes. The controlled simulator returns true
	// (its coroutine engine runs exactly one process at a time by
	// construction, and every handoff is a synchronization point);
	// concurrent mode and Free return false, keeping the objects
	// linearizable under real overlap.
	Exclusive() bool
}

// Scratcher is an optional Context capability exposing a per-process
// scratch arena: reusable buffers keyed by shared object, so hot-path
// operations like Snapshot.ScanScratch allocate only on first use per
// (process, object) pair. The simulator's process handle implements it.
type Scratcher interface {
	ScratchMap() map[any]any
}

// LockFreer is an optional Context capability through which the
// concurrent execution mode requests the lock-free object
// implementations: CAS-loop atomic.Pointer cells instead of
// mutex-guarded fields. Contexts that do not implement it (or report
// false) keep the locked path, so golden tables, -race debugging with
// the locked substrate, and the controlled engine's Exclusive() elision
// are all unaffected.
//
// The capability is consulted only on an object's first operation: each
// object latches its representation then (see repMode) and every later
// operation follows the latch, whatever context issues it. Mixed-mode
// histories — seed an object through Free, then hammer it from a
// lock-free run — therefore stay on one coherent representation.
type LockFreer interface {
	LockFree() bool
}

// Free is a Context that never blocks and charges nothing. It is intended
// for unit tests and non-simulated use of the memory objects.
var Free Context = freeContext{}

type freeContext struct{}

func (freeContext) Step()           {}
func (freeContext) Exclusive() bool { return false }

// FreeExclusive is Free plus the exclusive capability: for benchmarks and
// sequential tests that own their objects outright and want the lock-free
// fast path without a simulator.
var FreeExclusive Context = freeExclusiveContext{}

type freeExclusiveContext struct{ freeContext }

func (freeExclusiveContext) Exclusive() bool { return true }

// FreeLockFree is Free plus the lock-free capability: for unit tests and
// benchmarks that want to exercise the CAS-based object implementations
// without a concurrent simulator run.
var FreeLockFree Context = freeLockFreeContext{}

type freeLockFreeContext struct{ freeContext }

func (freeLockFreeContext) LockFree() bool { return true }

// Object representations. Every shared object carries a repMode that
// latches, on the object's first operation, which of its two state
// representations holds the truth:
//
//   - repDirect: the plain struct fields, accessed directly under an
//     Exclusive context or under the object's mutex otherwise. This is
//     the controlled engine's path and the locked concurrent path.
//   - repLockFree: an atomic.Pointer cell updated by plain stores or CAS
//     loops, never touching the mutex. This is the concurrent mode's
//     default path.
//
// The latch is sticky: once decided, every operation from every context
// follows it, so two representations can never disagree about an
// object's state. It costs one atomic load per operation on the hot
// path (the CAS happens only on the very first operation).
type repMode struct {
	m atomic.Int32
}

const (
	repUndecided int32 = iota
	repDirect
	repLockFree
)

// of returns the object's latched representation, deciding it from ctx
// on the first call. Concurrent first operations racing to latch agree
// on the outcome of the CAS.
func (r *repMode) of(ctx Context) int32 {
	if m := r.m.Load(); m != repUndecided {
		return m
	}
	want := repDirect
	if lf, ok := ctx.(LockFreer); ok && lf.LockFree() {
		want = repLockFree
	}
	if r.m.CompareAndSwap(repUndecided, want) {
		return want
	}
	return r.m.Load()
}

// opCounter tracks how many operations an object has served. Atomic so it
// is safe in concurrent mode; reads are for metrics only.
type opCounter struct {
	n atomic.Int64
}

func (c *opCounter) inc()        { c.n.Add(1) }
func (c *opCounter) load() int64 { return c.n.Load() }

// Per-object-class operation counters, aggregated across every instance.
// All nil (free no-ops) until a metrics registry is installed; see the
// metrics package for the enable protocol and ordering requirements.
// "Contended" counts operations that found the object's critical section
// already held by another process — real operation overlap, which only
// the concurrent execution mode can produce (the controlled scheduler
// runs one operation at a time by construction). "casretry" is the
// lock-free analogue: CAS attempts that lost the race to a concurrent
// operation and had to retry (or, for CompareEmptyAndWrite, observe the
// winner).
//
// Every operation on every object follows one pinned order, in all three
// representations (exclusive, locked, lock-free):
//
//  1. ctx.Step() — the step is charged (and, in controlled mode, the
//     adversary schedules the operation) before anything is observable.
//  2. The memory effect: the critical section, the direct field access,
//     or the atomic store/CAS loop.
//  3. The fault hook (FaultOnWrite / stale-read substitution), outside
//     the critical section: the injector records the post-state an
//     overlapping observer could legitimately see.
//  4. Accounting: ops.inc() and the per-class counter, last, so counter
//     deltas always describe completed effects. Counters are monotone
//     diagnostics, not linearization witnesses — in concurrent mode an
//     operation's effect and its counter increment are not one atomic
//     unit, and no reader may assume they are.
//
// TestOperationOrderCounterDeltas pins the accounting half of this
// contract in both concurrent representations.
var (
	mRegRead, mRegWrite, mRegContend  *metrics.Counter
	mSnapUpdate, mSnapScan, mSnapCont *metrics.Counter
	mMaxWrite, mMaxRead, mMaxContend  *metrics.Counter
	mTreeWrite, mTreeRead             *metrics.Counter
	mAfekUpdate, mAfekScan            *metrics.Counter
	mRegCAS, mMaxCAS, mSnapCAS        *metrics.Counter
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mRegRead = r.Counter("memory.register.read")
		mRegWrite = r.Counter("memory.register.write")
		mRegContend = r.Counter("memory.register.contended")
		mRegCAS = r.Counter("memory.register.casretry")
		mSnapUpdate = r.Counter("memory.snapshot.update")
		mSnapScan = r.Counter("memory.snapshot.scan")
		mSnapCont = r.Counter("memory.snapshot.contended")
		mSnapCAS = r.Counter("memory.snapshot.casretry")
		mMaxWrite = r.Counter("memory.maxreg.write")
		mMaxRead = r.Counter("memory.maxreg.read")
		mMaxContend = r.Counter("memory.maxreg.contended")
		mMaxCAS = r.Counter("memory.maxreg.casretry")
		mTreeWrite = r.Counter("memory.treemax.write")
		mTreeRead = r.Counter("memory.treemax.read")
		mAfekUpdate = r.Counter("memory.afek.update")
		mAfekScan = r.Counter("memory.afek.scan")
	})
}

// lockMeter acquires mu, counting acquisitions that found the lock
// already held into contended. With metrics disabled it is a plain
// Lock; enabled, the TryLock fast path costs the same single CAS an
// uncontended Lock does.
func lockMeter(mu *sync.Mutex, contended *metrics.Counter) {
	if contended == nil {
		mu.Lock()
		return
	}
	if !mu.TryLock() {
		contended.Inc()
		mu.Lock()
	}
}
