// Package memory implements the paper's shared-memory model: linearizable
// atomic multi-writer multi-reader registers, unit-cost snapshot objects,
// max registers (the footnote-1 alternative for Algorithm 1), and — to show
// the snapshot substrate is constructible rather than an oracle — a
// wait-free snapshot built from single-writer registers in the style of
// Afek et al.
//
// Every operation on a shared object charges exactly one step to the
// calling process through the Context interface, matching the paper's cost
// model in which both register operations and snapshot update/scan
// operations cost one step (Section 1.1). Objects are internally
// linearizable (a mutex makes each operation atomic), so the same objects
// are safe in the free-running concurrent execution mode as well as under
// the deterministic controlled scheduler, where at most one process runs
// at a time anyway.
package memory

import "sync/atomic"

// Context is the hook through which shared-memory operations charge steps
// to the calling process and yield to the adversary scheduler. The
// simulator's process handle implements it; code running outside a
// simulation can pass Free.
type Context interface {
	// Step blocks until the adversary schedules the caller's next
	// operation (controlled mode) and charges one step. In concurrent
	// mode it only charges the step.
	Step()
}

// Free is a Context that never blocks and charges nothing. It is intended
// for unit tests and non-simulated use of the memory objects.
var Free Context = freeContext{}

type freeContext struct{}

func (freeContext) Step() {}

// opCounter tracks how many operations an object has served. Atomic so it
// is safe in concurrent mode; reads are for metrics only.
type opCounter struct {
	n atomic.Int64
}

func (c *opCounter) inc()        { c.n.Add(1) }
func (c *opCounter) load() int64 { return c.n.Load() }
