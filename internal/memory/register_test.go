package memory

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
)

func TestRegisterEmptyRead(t *testing.T) {
	r := NewRegister[int]()
	v, ok := r.Read(Free)
	if ok {
		t.Fatal("empty register reported written")
	}
	if v != 0 {
		t.Fatalf("empty register value %d", v)
	}
}

func TestRegisterWriteRead(t *testing.T) {
	r := NewRegister[string]()
	r.Write(Free, "a")
	if v, ok := r.Read(Free); !ok || v != "a" {
		t.Fatalf("got (%q, %v)", v, ok)
	}
	r.Write(Free, "b")
	if v, ok := r.Read(Free); !ok || v != "b" {
		t.Fatalf("got (%q, %v) after overwrite", v, ok)
	}
}

func TestRegisterOpsCount(t *testing.T) {
	r := NewRegister[int]()
	for i := 0; i < 5; i++ {
		r.Write(Free, i)
	}
	for i := 0; i < 3; i++ {
		r.Read(Free)
	}
	if got := r.Ops(); got != 8 {
		t.Fatalf("Ops = %d, want 8", got)
	}
}

func TestRegisterConcurrentAccess(t *testing.T) {
	// Race-detector exercise: many writers and readers on one register.
	r := NewRegister[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Write(Free, w*1000+i)
			}
		}()
	}
	for rd := 0; rd < 8; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if v, ok := r.Read(Free); ok && v < 0 {
					t.Errorf("impossible value %d", v)
				}
			}
		}()
	}
	wg.Wait()
}

func TestCompareEmptyAndWrite(t *testing.T) {
	r := NewRegister[int]()
	if v, won := r.CompareEmptyAndWrite(Free, 10); !won || v != 10 {
		t.Fatalf("first CEW got (%d, %v)", v, won)
	}
	if v, won := r.CompareEmptyAndWrite(Free, 20); won || v != 10 {
		t.Fatalf("second CEW got (%d, %v)", v, won)
	}
}

func TestCompareEmptyAndWriteSingleWinner(t *testing.T) {
	r := NewRegister[int]()
	var wg sync.WaitGroup
	winners := make([]bool, 16)
	for i := range winners {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, winners[i] = r.CompareEmptyAndWrite(Free, i)
		}()
	}
	wg.Wait()
	count := 0
	for _, w := range winners {
		if w {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d winners, want exactly 1", count)
	}
}

func TestRegisterArray(t *testing.T) {
	a := NewRegisterArray[int](4)
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 4; i++ {
		a.At(i).Write(Free, i*i)
	}
	for i := 0; i < 4; i++ {
		if v, ok := a.At(i).Read(Free); !ok || v != i*i {
			t.Fatalf("At(%d) = (%d, %v)", i, v, ok)
		}
	}
	if got := a.Ops(); got != 8 {
		t.Fatalf("array Ops = %d, want 8", got)
	}
}

func TestRegisterLastWriteWinsProperty(t *testing.T) {
	// Sequential property: after any sequence of writes, a read returns
	// the last written value.
	if err := quick.Check(func(writes []int) bool {
		r := NewRegister[int]()
		for _, w := range writes {
			r.Write(Free, w)
		}
		v, ok := r.Read(Free)
		if len(writes) == 0 {
			return !ok
		}
		return ok && v == writes[len(writes)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCompareEmptyAndWriteCounters pins the metric attribution of both
// CompareEmptyAndWrite paths: installing a value counts as a write, and
// the no-install path — which only observes state — counts as a read.
func TestCompareEmptyAndWriteCounters(t *testing.T) {
	metrics.SetDefault(metrics.New())
	defer metrics.SetDefault(nil)

	for _, tc := range []struct {
		name string
		ctx  Context
	}{
		{"locked", Free},
		{"exclusive", FreeExclusive},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegister[int]()

			reads, writes := mRegRead.Value(), mRegWrite.Value()
			if v, ok := r.CompareEmptyAndWrite(tc.ctx, 7); !ok || v != 7 {
				t.Fatalf("install path = (%d, %v), want (7, true)", v, ok)
			}
			if d := mRegWrite.Value() - writes; d != 1 {
				t.Fatalf("install path write delta = %d, want 1", d)
			}
			if d := mRegRead.Value() - reads; d != 0 {
				t.Fatalf("install path read delta = %d, want 0", d)
			}

			reads, writes = mRegRead.Value(), mRegWrite.Value()
			if v, ok := r.CompareEmptyAndWrite(tc.ctx, 9); ok || v != 7 {
				t.Fatalf("no-install path = (%d, %v), want (7, false)", v, ok)
			}
			if d := mRegWrite.Value() - writes; d != 0 {
				t.Fatalf("no-install path write delta = %d, want 0", d)
			}
			if d := mRegRead.Value() - reads; d != 1 {
				t.Fatalf("no-install path read delta = %d, want 1", d)
			}

			if got := r.Ops(); got != 2 {
				t.Fatalf("Ops = %d, want 2", got)
			}
		})
	}
}
