// External test package: these tests drive the lock-free object
// representations through the concurrent simulator (package memory can't
// import sim directly — sim depends on memory) and validate recorded
// histories with the linearize checker.
package memory_test

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/linearize"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

func TestLockFreeRegisterBasics(t *testing.T) {
	ctx := memory.FreeLockFree
	r := memory.NewRegister[int]()
	if _, ok := r.Read(ctx); ok {
		t.Fatal("fresh register reads as written")
	}
	r.Write(ctx, 42)
	if v, ok := r.Read(ctx); !ok || v != 42 {
		t.Fatalf("Read = (%d, %v), want (42, true)", v, ok)
	}
	if v, installed := r.CompareEmptyAndWrite(ctx, 7); installed || v != 42 {
		t.Fatalf("CompareEmptyAndWrite on set register = (%d, %v), want (42, false)", v, installed)
	}
	r2 := memory.NewRegister[int]()
	if v, installed := r2.CompareEmptyAndWrite(ctx, 7); !installed || v != 7 {
		t.Fatalf("CompareEmptyAndWrite on empty register = (%d, %v), want (7, true)", v, installed)
	}
	if r.Ops() != 4 {
		t.Errorf("r.Ops() = %d, want 4", r.Ops())
	}
}

func TestLockFreeMaxRegisterBasics(t *testing.T) {
	ctx := memory.FreeLockFree
	m := memory.NewMaxRegister[string]()
	if _, _, ok := m.ReadMax(ctx); ok {
		t.Fatal("fresh max register reads as written")
	}
	m.WriteMax(ctx, 5, "five")
	m.WriteMax(ctx, 3, "three") // dominated: dropped
	if k, p, ok := m.ReadMax(ctx); !ok || k != 5 || p != "five" {
		t.Fatalf("ReadMax = (%d, %q, %v), want (5, five, true)", k, p, ok)
	}
	m.WriteMax(ctx, 5, "five-again") // tie: incumbent payload kept
	if _, p, _ := m.ReadMax(ctx); p != "five" {
		t.Fatalf("tie write replaced payload: got %q", p)
	}
	m.WriteMax(ctx, 9, "nine")
	if k, p, ok := m.ReadMax(ctx); !ok || k != 9 || p != "nine" {
		t.Fatalf("ReadMax = (%d, %q, %v), want (9, nine, true)", k, p, ok)
	}
}

func TestLockFreeSnapshotBasics(t *testing.T) {
	ctx := memory.FreeLockFree
	s := memory.NewSnapshot[int](3)
	view := s.Scan(ctx)
	for i, e := range view {
		if e.OK {
			t.Fatalf("fresh snapshot component %d set", i)
		}
	}
	s.Update(ctx, 1, 11)
	s.Update(ctx, 2, 22)
	// A reused buffer must be fully overwritten, including unset slots.
	view = s.ScanInto(ctx, view)
	want := []memory.Entry[int]{{}, {Value: 11, OK: true}, {Value: 22, OK: true}}
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("view[%d] = %+v, want %+v", i, view[i], want[i])
		}
	}
}

func TestLockFreeTreeMaxRegister(t *testing.T) {
	ctx := memory.FreeLockFree
	tr := memory.NewTreeMaxRegister[string](6)
	writes := []struct {
		k uint64
		p string
	}{{5, "a"}, {40, "b"}, {17, "c"}, {63, "d"}, {2, "e"}}
	for _, w := range writes {
		tr.WriteMax(ctx, w.k, w.p)
	}
	if k, p, ok := tr.ReadMax(ctx); !ok || k != 63 || p != "d" {
		t.Fatalf("ReadMax = (%d, %q, %v), want (63, d, true)", k, p, ok)
	}
}

func TestRepresentationLatchIsSticky(t *testing.T) {
	// First op through Free latches the direct (locked) representation;
	// a later lock-free-capable context must follow the latch and still
	// observe the value.
	r := memory.NewRegister[int]()
	r.Write(memory.Free, 5)
	if v, ok := r.Read(memory.FreeLockFree); !ok || v != 5 {
		t.Fatalf("lock-free-context read after Free write = (%d, %v), want (5, true)", v, ok)
	}
	// And the reverse: latched lock-free, observed through Free.
	r2 := memory.NewRegister[int]()
	r2.Write(memory.FreeLockFree, 6)
	if v, ok := r2.Read(memory.Free); !ok || v != 6 {
		t.Fatalf("Free read after lock-free write = (%d, %v), want (6, true)", v, ok)
	}
}

// TestOperationOrderCounterDeltas pins the accounting half of the pinned
// operation order (step, effect, fault hook, then counters): each
// operation class moves exactly its own counters, identically in the
// locked and lock-free concurrent representations.
func TestOperationOrderCounterDeltas(t *testing.T) {
	for _, tc := range []struct {
		name string
		ctx  memory.Context
	}{
		{name: "locked", ctx: memory.Free},
		{name: "lock-free", ctx: memory.FreeLockFree},
	} {
		t.Run(tc.name, func(t *testing.T) {
			metrics.SetDefault(metrics.New())
			defer metrics.SetDefault(nil)

			reg := memory.NewRegister[int]()
			maxr := memory.NewMaxRegister[int]()
			snap := memory.NewSnapshot[int](4)

			base := metrics.Default().Snapshot()
			reg.Write(tc.ctx, 1)
			reg.Write(tc.ctx, 2)
			reg.Read(tc.ctx)
			reg.CompareEmptyAndWrite(tc.ctx, 3) // register set: counts as a read
			maxr.WriteMax(tc.ctx, 4, 4)
			maxr.ReadMax(tc.ctx)
			snap.Update(tc.ctx, 0, 5)
			snap.Scan(tc.ctx)
			delta := metrics.Default().Snapshot().Sub(base)

			want := map[string]int64{
				"memory.register.write":    2,
				"memory.register.read":     2,
				"memory.register.casretry": 1, // the failed empty-install
				"memory.maxreg.write":      1,
				"memory.maxreg.read":       1,
				"memory.snapshot.update":   1,
				"memory.snapshot.scan":     1,
			}
			if tc.name == "locked" {
				// The locked path has no CAS to lose; the failed install is
				// an uncontended critical section.
				want["memory.register.casretry"] = 0
			}
			for name, n := range want {
				if got := delta.Counters[name]; got != n {
					t.Errorf("%s: delta = %d, want %d", name, got, n)
				}
			}
			// No cross-class leakage and no phantom contention in a
			// single-threaded sequence.
			for _, name := range []string{
				"memory.register.contended", "memory.maxreg.contended",
				"memory.snapshot.contended", "memory.maxreg.casretry",
				"memory.snapshot.casretry",
			} {
				if got := delta.Counters[name]; got != 0 {
					t.Errorf("%s: delta = %d, want 0", name, got)
				}
			}
			if reg.Ops() != 4 || maxr.Ops() != 2 || snap.Ops() != 2 {
				t.Errorf("Ops: reg=%d maxr=%d snap=%d, want 4/2/2", reg.Ops(), maxr.Ops(), snap.Ops())
			}
		})
	}
}

// runConcurrently runs body on n real goroutines through the concurrent
// simulator, failing the test on any runner error.
func runConcurrently(t *testing.T, n int, seed uint64, body sim.Body) {
	t.Helper()
	if _, err := sim.RunConcurrent(n, body, sim.Config{AlgSeed: seed}); err != nil {
		t.Fatal(err)
	}
}

func TestLockFreeRegisterHistoryLinearizes(t *testing.T) {
	// 4 processes × (2 writes + 2 reads) = 24 ops, within the checker's
	// 64-op window. The Go scheduler provides the interleaving; the
	// checker must find a witness linearization for every recorded run.
	for seed := uint64(1); seed <= 5; seed++ {
		reg := memory.NewRegister[int]()
		var rec linearize.Recorder
		runConcurrently(t, 4, seed, func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				arg := int64(p.ID()*10 + i + 1)
				s := rec.Begin()
				reg.Write(p, int(arg))
				rec.EndWrite(p.ID(), arg, s)
				s = rec.Begin()
				v, ok := reg.Read(p)
				rec.EndRead(p.ID(), int64(v), ok, s)
			}
		})
		ok, err := linearize.Check(linearize.RegisterSemantics{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: lock-free register history has no linearization:\n%+v", seed, rec.History())
		}
	}
}

func TestLockFreeMaxRegisterHistoryLinearizes(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		maxr := memory.NewMaxRegister[int]()
		var rec linearize.Recorder
		runConcurrently(t, 4, seed, func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				key := uint64(p.ID()*10 + i + 1)
				s := rec.Begin()
				maxr.WriteMax(p, key, int(key))
				rec.EndWrite(p.ID(), int64(key), s)
				s = rec.Begin()
				k, _, ok := maxr.ReadMax(p)
				rec.EndRead(p.ID(), int64(k), ok, s)
			}
		})
		ok, err := linearize.Check(linearize.MaxRegisterSemantics{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: lock-free max-register history has no linearization:\n%+v", seed, rec.History())
		}
	}
}

func TestLockFreeSnapshotViewsNested(t *testing.T) {
	// Linearizability of the snapshot implies every pair of views is
	// subset-ordered; with the lock-free representation each view is one
	// atomic load of the immutable vector, so nesting must hold exactly.
	const n = 6
	snap := memory.NewSnapshot[int](n)
	views := make([][][]memory.Entry[int], n)
	runConcurrently(t, n, 99, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			snap.Update(p, p.ID(), i+1)
			view := snap.Scan(p)
			mine := make([]memory.Entry[int], len(view))
			copy(mine, view)
			views[p.ID()] = append(views[p.ID()], mine)
		}
	})
	var all [][]memory.Entry[int]
	for _, vs := range views {
		all = append(all, vs...)
	}
	if !memory.ViewsNested(all) {
		t.Fatal("lock-free snapshot views are not nested")
	}
}

// TestLockFreeStress hammers every object class from many goroutines so
// `go test -race ./internal/memory` exercises the CAS paths under the
// race detector. Skipped object states are checked post-run through the
// sticky latch.
func TestLockFreeStress(t *testing.T) {
	const n = 16
	iters := 200
	if testing.Short() {
		iters = 50
	}
	reg := memory.NewRegister[int]()
	maxr := memory.NewMaxRegister[int]()
	tree := memory.NewTreeMaxRegister[int](10)
	snap := memory.NewSnapshot[int](n)
	afek := memory.NewAfekSnapshot[int](n)
	runConcurrently(t, n, 7, func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			reg.Write(p, p.ID())
			reg.Read(p)
			key := uint64(p.ID()*iters + i)
			maxr.WriteMax(p, key, p.ID())
			tree.WriteMax(p, key%1024, p.ID())
			snap.Update(p, p.ID(), i)
			if i%16 == 0 {
				snap.Scan(p)
				afek.Update(p, p.ID(), i)
			}
		}
	})
	wantMax := uint64((n-1)*iters + iters - 1)
	if k, _, ok := maxr.ReadMax(memory.FreeLockFree); !ok || k != wantMax {
		t.Errorf("ReadMax = (%d, %v), want (%d, true)", k, ok, wantMax)
	}
	view := snap.Scan(memory.FreeLockFree)
	for i, e := range view {
		if !e.OK || e.Value != iters-1 {
			t.Errorf("snapshot component %d = %+v, want (%d, true)", i, e, iters-1)
		}
	}
	aview := afek.Scan(memory.FreeLockFree)
	for i, e := range aview {
		if !e.OK {
			t.Errorf("afek component %d unset after stress", i)
		}
	}
}
