package memory

import (
	"sync"
	"sync/atomic"
)

// Maxer is a max register with an attached payload: WriteMax installs
// (key, payload) and ReadMax returns the payload carrying the largest key
// written so far. Footnote 1 of the paper observes that Algorithm 1 only
// ever uses its snapshots to find the maximum-priority persona, so a max
// register suffices; both implementations below satisfy this interface so
// the conciliator can run on either.
type Maxer[T any] interface {
	// WriteMax installs payload under key; the register retains the entry
	// with the largest key seen.
	WriteMax(ctx Context, key uint64, payload T)
	// ReadMax returns the entry with the largest key written so far, and
	// false if nothing has been written.
	ReadMax(ctx Context) (uint64, T, bool)
}

// MaxRegister is the unit-cost max register: one step per operation,
// linearizable by construction. It is the max-register analogue of the
// unit-cost Snapshot.
//
// Lock-free representation: lf points to the immutable (key, payload)
// maximum, nil meaning empty. WriteMax runs the classic atomic-max CAS
// loop — reload, give up if the current maximum already dominates,
// otherwise try to install — which is linearizable because a successful
// CAS both observes the old maximum and installs the new one at a single
// point, and a write that gives up linearizes at its dominating load.
type MaxRegister[T any] struct {
	rep     repMode
	lf      atomic.Pointer[maxState[T]]
	mu      sync.Mutex
	key     uint64
	payload T
	set     bool
	ops     opCounter
}

var _ Maxer[int] = (*MaxRegister[int])(nil)

// NewMaxRegister returns an empty unit-cost max register.
func NewMaxRegister[T any]() *MaxRegister[T] {
	return &MaxRegister[T]{}
}

// maxState is the post-write state of a MaxRegister as recorded in
// fault histories, so a stale ReadMax can observe an earlier — possibly
// smaller — maximum.
type maxState[T any] struct {
	key     uint64
	payload T
}

// WriteMax implements Maxer.
func (m *MaxRegister[T]) WriteMax(ctx Context, key uint64, payload T) {
	ctx.Step()
	armed := faultsArmed()
	var after maxState[T]
	switch {
	case m.rep.of(ctx) == repLockFree:
		st := &maxState[T]{key: key, payload: payload}
		for {
			cur := m.lf.Load()
			if cur != nil && cur.key >= key {
				// The current maximum already dominates (ties keep the
				// incumbent payload, matching the locked path's key >
				// m.key test); this write linearizes here as a no-op.
				if armed {
					after = *cur
				}
				break
			}
			if m.lf.CompareAndSwap(cur, st) {
				if armed {
					after = *st
				}
				break
			}
			mMaxCAS.Inc()
		}
	case ctx.Exclusive():
		if !m.set || key > m.key {
			m.key, m.payload, m.set = key, payload, true
		}
		if armed {
			after = maxState[T]{key: m.key, payload: m.payload}
		}
	default:
		lockMeter(&m.mu, mMaxContend)
		if !m.set || key > m.key {
			m.key, m.payload, m.set = key, payload, true
		}
		if armed {
			after = maxState[T]{key: m.key, payload: m.payload}
		}
		m.mu.Unlock()
	}
	if armed {
		if f := asFaulter(ctx); f != nil {
			f.FaultOnWrite(m, after)
		}
	}
	m.ops.inc()
	mMaxWrite.Inc()
}

// ReadMax implements Maxer.
func (m *MaxRegister[T]) ReadMax(ctx Context) (uint64, T, bool) {
	ctx.Step()
	if faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			if stale, hit := f.FaultOnRead(m); hit {
				m.ops.inc()
				mMaxRead.Inc()
				if stale == nil {
					var zero T
					return 0, zero, false
				}
				st := stale.(maxState[T])
				return st.key, st.payload, true
			}
		}
	}
	var (
		k  uint64
		p  T
		ok bool
	)
	switch {
	case m.rep.of(ctx) == repLockFree:
		if st := m.lf.Load(); st != nil {
			k, p, ok = st.key, st.payload, true
		}
	case ctx.Exclusive():
		k, p, ok = m.key, m.payload, m.set
	default:
		lockMeter(&m.mu, mMaxContend)
		k, p, ok = m.key, m.payload, m.set
		m.mu.Unlock()
	}
	m.ops.inc()
	mMaxRead.Inc()
	return k, p, ok
}

// Ops reports how many operations this max register has served.
func (m *MaxRegister[T]) Ops() int64 { return m.ops.load() }

// TreeMaxRegister is the Aspnes–Attiya–Censor-Hillel max register built
// recursively from ordinary registers: a k-bit max register is a switch
// register plus two (k-1)-bit max registers for the low and high halves of
// the key space. Writes of high-half keys recurse right and then set the
// switch; writes of low-half keys first read the switch and are dropped if
// a high-half write has already landed (the low write can no longer affect
// the maximum). Reads follow the switch. Each operation costs O(k)
// register steps, illustrating what the "unit-cost" assumption buys.
//
// Keys must be < 2^bits. Payloads ride along to the leaves.
type TreeMaxRegister[T any] struct {
	bits int
	root *maxNode[T]
}

var _ Maxer[int] = (*TreeMaxRegister[int])(nil)

type maxNode[T any] struct {
	// leaf is non-nil at depth 0 and holds the payload for the single key
	// this leaf represents.
	leaf *Register[T]

	// Internal node state: high-half switch plus lazily created children.
	// Child slots are atomic pointers so node creation — bookkeeping, not
	// a modeled memory operation — is lock-free in every mode: losers of
	// the creation CAS adopt the winner's node.
	swtch *Register[struct{}]
	left  atomic.Pointer[maxNode[T]]
	right atomic.Pointer[maxNode[T]]
}

// NewTreeMaxRegister returns a register-based max register for keys in
// [0, 2^bits). bits must be in [1, 63].
func NewTreeMaxRegister[T any](bits int) *TreeMaxRegister[T] {
	if bits < 1 || bits > 63 {
		panic("memory: TreeMaxRegister bits out of range [1, 63]")
	}
	return &TreeMaxRegister[T]{bits: bits, root: newMaxNode[T](bits)}
}

func newMaxNode[T any](depth int) *maxNode[T] {
	if depth == 0 {
		return &maxNode[T]{leaf: NewRegister[T]()}
	}
	// Children are created lazily only in principle; we allocate eagerly
	// for depths that are actually reached, which writeMax ensures by
	// construction. Eager allocation of the full tree would be 2^bits
	// nodes, so children are built on first touch below.
	return &maxNode[T]{swtch: NewRegister[struct{}]()}
}

// Bits returns the key width.
func (t *TreeMaxRegister[T]) Bits() int { return t.bits }

// WriteMax implements Maxer. It costs O(bits) register operations. The
// treemax.write counter counts logical operations; the underlying
// register steps land in the register counters.
func (t *TreeMaxRegister[T]) WriteMax(ctx Context, key uint64, payload T) {
	if key >= 1<<uint(t.bits) {
		panic("memory: TreeMaxRegister key out of range")
	}
	mTreeWrite.Inc()
	t.root.writeMax(ctx, t.bits, key, payload)
}

// ReadMax implements Maxer. It costs O(bits) register operations; see
// WriteMax for how the operation is metered.
func (t *TreeMaxRegister[T]) ReadMax(ctx Context) (uint64, T, bool) {
	mTreeRead.Inc()
	return t.root.readMax(ctx, t.bits)
}

func (n *maxNode[T]) writeMax(ctx Context, depth int, key uint64, payload T) {
	if depth == 0 {
		n.leaf.Write(ctx, payload)
		return
	}
	half := uint64(1) << uint(depth-1)
	if key >= half {
		child(&n.right, depth-1).writeMax(ctx, depth-1, key-half, payload)
		n.swtch.Write(ctx, struct{}{})
		return
	}
	if _, high := n.swtch.Read(ctx); high {
		// A high-half value is already present; this write cannot be the
		// maximum, so it may be dropped without violating linearizability.
		return
	}
	child(&n.left, depth-1).writeMax(ctx, depth-1, key, payload)
}

func (n *maxNode[T]) readMax(ctx Context, depth int) (uint64, T, bool) {
	if depth == 0 {
		v, ok := n.leaf.Read(ctx)
		return 0, v, ok
	}
	half := uint64(1) << uint(depth-1)
	if _, high := n.swtch.Read(ctx); high {
		// The switch is set only after the corresponding right-subtree
		// write completed, so the right subtree is non-empty.
		k, v, ok := child(&n.right, depth-1).readMax(ctx, depth-1)
		return half + k, v, ok
	}
	if n.left.Load() == nil {
		var zero T
		return 0, zero, false
	}
	return child(&n.left, depth-1).readMax(ctx, depth-1)
}

// child returns slot's node, creating it on first use. Lazy creation
// keeps the tree proportional to the number of distinct key prefixes
// written rather than 2^bits. Creation races install exactly one node
// (first CAS wins; losers adopt it), and the atomic slot doubles as the
// publication barrier for the new node's registers.
func child[T any](slot *atomic.Pointer[maxNode[T]], depth int) *maxNode[T] {
	if c := slot.Load(); c != nil {
		return c
	}
	c := newMaxNode[T](depth)
	if slot.CompareAndSwap(nil, c) {
		return c
	}
	return slot.Load()
}
