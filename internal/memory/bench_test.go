package memory

import "testing"

// Substrate micro-benchmarks: wall-clock cost of the shared objects
// themselves (the model charges 1 step per operation regardless; these
// numbers describe the simulator, not the model).

func BenchmarkRegisterWrite(b *testing.B) {
	r := NewRegister[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Write(Free, i)
	}
}

func BenchmarkRegisterRead(b *testing.B) {
	r := NewRegister[int]()
	r.Write(Free, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Read(Free)
	}
}

func BenchmarkSnapshotUpdate(b *testing.B) {
	s := NewSnapshot[int](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(Free, i%64, i)
	}
}

func BenchmarkSnapshotScan(b *testing.B) {
	s := NewSnapshot[int](64)
	for i := 0; i < 64; i++ {
		s.Update(Free, i, i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan(Free)
	}
}

func BenchmarkMaxRegister(b *testing.B) {
	m := NewMaxRegister[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.WriteMax(Free, uint64(i%1000), i)
		m.ReadMax(Free)
	}
}

func BenchmarkTreeMaxRegister(b *testing.B) {
	m := NewTreeMaxRegister[int](20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.WriteMax(Free, uint64(i%(1<<20)), i)
		m.ReadMax(Free)
	}
}

func BenchmarkAfekSnapshotScan(b *testing.B) {
	s := NewAfekSnapshot[int](16)
	for i := 0; i < 16; i++ {
		s.Update(Free, i, i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan(Free)
	}
}
