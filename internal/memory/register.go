package memory

import (
	"sync"
	"sync/atomic"
)

// Register is a linearizable atomic multi-writer multi-reader register
// holding a value of type T. The zero-value register is empty; Read
// distinguishes "never written" from any written value, which stands in
// for the paper's registers initialized to the null value.
//
// The paper places no bound on register width, and neither do we: T may be
// a persona carrying an entire priority vector.
//
// Lock-free representation: lf holds a pointer to an immutable value, nil
// meaning "never written". A Write publishes a fresh *T with one atomic
// store and a Read is one atomic load — both wait-free, and linearizable
// because the Go memory model makes an atomic store/load pair a
// release/acquire edge (the pointed-to value is published before the
// pointer, and the pointee is never mutated after publication).
type Register[T any] struct {
	rep repMode
	lf  atomic.Pointer[T]
	mu  sync.Mutex
	val T
	set bool
	ops opCounter
}

// NewRegister returns an empty register.
func NewRegister[T any]() *Register[T] {
	return &Register[T]{}
}

// Write atomically stores v, charging one step.
func (r *Register[T]) Write(ctx Context, v T) {
	ctx.Step()
	switch {
	case r.rep.of(ctx) == repLockFree:
		r.lfStore(v)
	case ctx.Exclusive():
		r.val = v
		r.set = true
	default:
		lockMeter(&r.mu, mRegContend)
		r.val = v
		r.set = true
		r.mu.Unlock()
	}
	if faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			f.FaultOnWrite(r, v)
		}
	}
	r.ops.inc()
	mRegWrite.Inc()
}

// Read atomically returns the current value and whether the register has
// ever been written, charging one step.
func (r *Register[T]) Read(ctx Context) (T, bool) {
	ctx.Step()
	if faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			if stale, hit := f.FaultOnRead(r); hit {
				r.ops.inc()
				mRegRead.Inc()
				if stale == nil {
					var zero T
					return zero, false
				}
				return stale.(T), true
			}
		}
	}
	var (
		v  T
		ok bool
	)
	switch {
	case r.rep.of(ctx) == repLockFree:
		if p := r.lf.Load(); p != nil {
			v, ok = *p, true
		}
	case ctx.Exclusive():
		v, ok = r.val, r.set
	default:
		lockMeter(&r.mu, mRegContend)
		v, ok = r.val, r.set
		r.mu.Unlock()
	}
	r.ops.inc()
	mRegRead.Inc()
	return v, ok
}

// CompareEmptyAndWrite writes v only if the register has never been
// written, returning whether the write happened and the resulting value.
// This is NOT a primitive of the paper's model and is consequently not
// used by any protocol; it exists for test harnesses that need a cheap
// linearization witness.
func (r *Register[T]) CompareEmptyAndWrite(ctx Context, v T) (T, bool) {
	ctx.Step()
	var (
		val       T
		installed bool
	)
	switch {
	case r.rep.of(ctx) == repLockFree:
		val, installed = r.lfInstallEmpty(v)
	case ctx.Exclusive():
		val = r.val
		if !r.set {
			r.val = v
			r.set = true
			val, installed = v, true
		}
	default:
		lockMeter(&r.mu, mRegContend)
		val = r.val
		if !r.set {
			r.val = v
			r.set = true
			val, installed = v, true
		}
		r.mu.Unlock()
	}
	if installed && faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			f.FaultOnWrite(r, v)
		}
	}
	r.ops.inc()
	if installed {
		mRegWrite.Inc()
	} else {
		// Nothing was installed: the operation only observed state, so it
		// counts as a read.
		mRegRead.Inc()
	}
	return val, installed
}

// lfStore publishes v on the lock-free cell. Kept out of line so the
// heap allocation for v's box is confined to the lock-free path: inlined
// into Write, escape analysis would heap-allocate every caller's v, and
// the exclusive path's zero-alloc guarantee would silently die.
//
//go:noinline
func (r *Register[T]) lfStore(v T) {
	r.lf.Store(&v)
}

// lfInstallEmpty is CompareEmptyAndWrite's lock-free arm: one CAS
// against the empty cell. Out of line for the same escape reason as
// lfStore.
//
//go:noinline
func (r *Register[T]) lfInstallEmpty(v T) (T, bool) {
	if r.lf.CompareAndSwap(nil, &v) {
		return v, true
	}
	// Lost the empty→v race (or the register was already set): observe
	// whoever won. The load is a legal linearization of the failed
	// install because any non-nil value justifies it.
	mRegCAS.Inc()
	return *r.lf.Load(), false
}

// Ops reports how many operations this register has served.
func (r *Register[T]) Ops() int64 { return r.ops.load() }

// RegisterArray is a convenience bundle of k independent registers, used
// for per-round register sequences (Algorithm 2's r_i) and flag arrays in
// conflict detectors.
type RegisterArray[T any] struct {
	regs []*Register[T]
}

// NewRegisterArray returns k empty registers.
func NewRegisterArray[T any](k int) *RegisterArray[T] {
	a := &RegisterArray[T]{regs: make([]*Register[T], k)}
	for i := range a.regs {
		a.regs[i] = NewRegister[T]()
	}
	return a
}

// At returns the i-th register.
func (a *RegisterArray[T]) At(i int) *Register[T] { return a.regs[i] }

// Len returns the number of registers.
func (a *RegisterArray[T]) Len() int { return len(a.regs) }

// Ops sums operation counts across the array.
func (a *RegisterArray[T]) Ops() int64 {
	var total int64
	for _, r := range a.regs {
		total += r.Ops()
	}
	return total
}
