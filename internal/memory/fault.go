package memory

import "sync/atomic"

// Faulter is an optional Context capability through which a fault
// injector (internal/fault) weakens register semantics. The memory
// objects consult it on every operation while at least one faulted run
// is active in the process (see ArmFaults): writes are mirrored into a
// per-run history, and reads/scans may be answered with stale values
// instead of the current state.
//
// Protocol:
//   - FaultActive gates everything: a Context may implement the
//     interface permanently (the simulator's process handle does) and
//     report false whenever its run carries no fault schedule.
//   - FaultOnWrite records v as the newest value of the shared object —
//     or snapshot component — identified by key. Keys are compared by
//     interface identity; objects use their own pointer, components use
//     ComponentKey.
//   - FaultOnRead counts one read-class operation and returns its
//     substitute: hit=false means read normally; hit=true with
//     stale==nil means observe "never written"; otherwise stale holds a
//     value previously recorded for key.
//   - FaultScanDepth counts one scan operation and returns the
//     staleness depth imposed on it (0 = atomic scan).
//   - FaultStaleAt answers "the value depth writes back" for key;
//     ok=false means unwritten at that depth.
type Faulter interface {
	FaultActive() bool
	FaultOnWrite(key any, v any)
	FaultOnRead(key any) (stale any, hit bool)
	FaultScanDepth(obj any) int
	FaultStaleAt(key any, depth int) (v any, ok bool)
}

// ComponentKey identifies one component of a multi-component shared
// object (a Snapshot) in fault histories.
type ComponentKey struct {
	Obj any
	I   int
}

// faultArm counts runs with fault injection active anywhere in the
// process. The memory hot paths check it with a single atomic load and
// take the fault branches only when it is nonzero, so fault support is
// free for every run while no faulted run exists — in particular the
// exclusive-mode fast path stays allocation-free and inside the
// -bench-baseline budget.
var faultArm atomic.Int64

// ArmFaults marks a faulted run active; pair with DisarmFaults.
func ArmFaults() { faultArm.Add(1) }

// DisarmFaults reverses one ArmFaults.
func DisarmFaults() {
	if faultArm.Add(-1) < 0 {
		panic("memory: DisarmFaults without matching ArmFaults")
	}
}

// faultsArmed is the hot-path gate: true while any faulted run exists.
func faultsArmed() bool { return faultArm.Load() != 0 }

// asFaulter returns ctx's injector view if ctx carries an active one.
// Callers must check faultsArmed first; keeping the interface assertion
// out of the armed==false path keeps the disabled cost to one load.
func asFaulter(ctx Context) Faulter {
	if f, ok := ctx.(Faulter); ok && f.FaultActive() {
		return f
	}
	return nil
}
