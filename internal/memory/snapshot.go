package memory

import (
	"sync"
	"sync/atomic"
)

// Entry is one component of a snapshot view: a value plus whether that
// component has ever been updated (the paper's "non-null S[j]").
type Entry[T any] struct {
	Value T
	OK    bool
}

// Snapshot is a unit-cost atomic snapshot object with n components, as
// assumed by Algorithm 1: Update installs a process's value in one step
// and Scan returns an atomic copy of all n components in one step. The
// unit cost is the modeling assumption the paper makes explicit ("we treat
// all operations as taking one step", Section 2); AfekSnapshot in this
// package shows how to realize the same interface from plain registers at
// higher cost.
//
// Lock-free representation: lf points to an immutable component vector
// (nil = all components null). An Update is a CAS loop that copies the
// vector, sets its component, and installs the copy; a Scan is a single
// atomic load — wait-free, and trivially atomic because the loaded
// vector is never mutated after publication. This is the lock-free
// analogue of the object's unit-cost promise: the scan really is one
// hardware operation plus a private copy.
type Snapshot[T any] struct {
	rep  repMode
	lf   atomic.Pointer[[]Entry[T]]
	mu   sync.Mutex
	vals []Entry[T]
	ops  opCounter
}

// NewSnapshot returns an n-component snapshot object with all components
// null.
func NewSnapshot[T any](n int) *Snapshot[T] {
	return &Snapshot[T]{vals: make([]Entry[T], n)}
}

// Components returns the number of components n.
func (s *Snapshot[T]) Components() int { return len(s.vals) }

// Update atomically installs v as component i, charging one step.
func (s *Snapshot[T]) Update(ctx Context, i int, v T) {
	ctx.Step()
	switch {
	case s.rep.of(ctx) == repLockFree:
		for {
			old := s.lf.Load()
			next := make([]Entry[T], len(s.vals))
			if old != nil {
				copy(next, *old)
			}
			next[i] = Entry[T]{Value: v, OK: true}
			if s.lf.CompareAndSwap(old, &next) {
				break
			}
			mSnapCAS.Inc()
		}
	case ctx.Exclusive():
		s.vals[i] = Entry[T]{Value: v, OK: true}
	default:
		lockMeter(&s.mu, mSnapCont)
		s.vals[i] = Entry[T]{Value: v, OK: true}
		s.mu.Unlock()
	}
	if faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			f.FaultOnWrite(ComponentKey{Obj: s, I: i}, v)
		}
	}
	s.ops.inc()
	mSnapUpdate.Inc()
}

// Scan atomically returns a copy of all components, charging one step.
func (s *Snapshot[T]) Scan(ctx Context) []Entry[T] {
	return s.ScanInto(ctx, nil)
}

// ScanInto is Scan writing the view into buf, which is grown only when
// its capacity is below the component count. A caller that reuses the
// returned slice across scans allocates once per object, not per scan.
func (s *Snapshot[T]) ScanInto(ctx Context, buf []Entry[T]) []Entry[T] {
	ctx.Step()
	if cap(buf) < len(s.vals) {
		buf = make([]Entry[T], len(s.vals))
	} else {
		buf = buf[:len(s.vals)]
	}
	switch {
	case s.rep.of(ctx) == repLockFree:
		if p := s.lf.Load(); p != nil {
			copy(buf, *p)
		} else {
			clear(buf)
		}
	case ctx.Exclusive():
		copy(buf, s.vals)
	default:
		lockMeter(&s.mu, mSnapCont)
		copy(buf, s.vals)
		s.mu.Unlock()
	}
	if faultsArmed() {
		if f := asFaulter(ctx); f != nil {
			if d := f.FaultScanDepth(s); d > 0 {
				// Bounded-staleness scan: every component observes the
				// state d updates back instead of the atomic copy.
				for i := range buf {
					if v, ok := f.FaultStaleAt(ComponentKey{Obj: s, I: i}, d); ok {
						buf[i] = Entry[T]{Value: v.(T), OK: true}
					} else {
						buf[i] = Entry[T]{}
					}
				}
			}
		}
	}
	s.ops.inc()
	mSnapScan.Inc()
	return buf
}

// ScanScratch is ScanInto backed by the caller's per-process scratch
// arena: the view buffer is keyed by this object on the Context's scratch
// map and reused across calls, so steady-state scans allocate nothing.
// The returned view is valid only until the same process's next
// ScanScratch of the same object. Contexts without the Scratcher
// capability fall back to a plain allocating Scan.
func (s *Snapshot[T]) ScanScratch(ctx Context) []Entry[T] {
	sc, ok := ctx.(Scratcher)
	if !ok {
		return s.Scan(ctx)
	}
	m := sc.ScratchMap()
	p, _ := m[s].(*[]Entry[T])
	if p == nil {
		p = new([]Entry[T])
		m[s] = p
	}
	*p = s.ScanInto(ctx, *p)
	return *p
}

// Ops reports how many operations this snapshot object has served.
func (s *Snapshot[T]) Ops() int64 { return s.ops.load() }

// ViewSubset reports whether view a is a subset of view b in the sense of
// the Lemma 1 proof: every component set in a is set in b. For views of
// the same snapshot object taken at different times this is the "each view
// is a subset of any larger views" nesting property.
func ViewSubset[T any](a, b []Entry[T]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].OK && !b[i].OK {
			return false
		}
	}
	return true
}

// ViewsNested reports whether a collection of views forms a chain under
// ViewSubset. Linearizability of the snapshot object implies every set of
// views of one object is nested; the property tests lean on this.
func ViewsNested[T any](views [][]Entry[T]) bool {
	for i := range views {
		for j := range views {
			if !ViewSubset(views[i], views[j]) && !ViewSubset(views[j], views[i]) {
				return false
			}
		}
	}
	return true
}
