package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAfekSequentialSemantics(t *testing.T) {
	s := NewAfekSnapshot[int](3)
	if s.Components() != 3 {
		t.Fatalf("Components = %d", s.Components())
	}
	for i, e := range s.Scan(Free) {
		if e.OK {
			t.Fatalf("component %d non-null before updates", i)
		}
	}
	s.Update(Free, 0, 10)
	s.Update(Free, 2, 30)
	view := s.Scan(Free)
	if !view[0].OK || view[0].Value != 10 {
		t.Fatalf("component 0 = %+v", view[0])
	}
	if view[1].OK {
		t.Fatal("component 1 should be null")
	}
	if !view[2].OK || view[2].Value != 30 {
		t.Fatalf("component 2 = %+v", view[2])
	}
}

func TestAfekOverwrite(t *testing.T) {
	s := NewAfekSnapshot[int](2)
	s.Update(Free, 0, 1)
	s.Update(Free, 0, 2)
	if view := s.Scan(Free); view[0].Value != 2 {
		t.Fatalf("component 0 = %+v after overwrite", view[0])
	}
}

func TestAfekSequentialMatchesUnitCost(t *testing.T) {
	type upd struct {
		I uint8
		V int
	}
	if err := quick.Check(func(updates []upd) bool {
		const n = 5
		afek := NewAfekSnapshot[int](n)
		unit := NewSnapshot[int](n)
		for _, u := range updates {
			i := int(u.I) % n
			afek.Update(Free, i, u.V)
			unit.Update(Free, i, u.V)
		}
		av, uv := afek.Scan(Free), unit.Scan(Free)
		for i := range av {
			if av[i].OK != uv[i].OK || av[i].Value != uv[i].Value {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAfekCostsMoreThanUnit(t *testing.T) {
	const n = 8
	afek := NewAfekSnapshot[int](n)
	unit := NewSnapshot[int](n)
	ca, cu := &countingCtx{}, &countingCtx{}
	afek.Update(ca, 0, 1)
	afek.Scan(ca)
	unit.Update(cu, 0, 1)
	unit.Scan(cu)
	if cu.steps != 2 {
		t.Fatalf("unit-cost snapshot charged %d steps for update+scan, want 2", cu.steps)
	}
	if ca.steps < 2*n {
		t.Fatalf("register-based snapshot charged only %d steps, want at least %d", ca.steps, 2*n)
	}
}

func TestAfekConcurrentScansNested(t *testing.T) {
	// Single-writer-per-component discipline: writer w updates component
	// w. All views collected by concurrent scanners must form a chain.
	const (
		n        = 6
		updates  = 30
		scanners = 4
		scans    = 40
	)
	s := NewAfekSnapshot[int](n)
	var (
		mu    sync.Mutex
		views [][]Entry[int]
		wg    sync.WaitGroup
	)
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= updates; i++ {
				s.Update(Free, w, i)
			}
		}()
	}
	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scans; i++ {
				v := s.Scan(Free)
				mu.Lock()
				views = append(views, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !ViewsNested(views) {
		t.Fatal("concurrent Afek snapshot views are not nested")
	}
	// Values are monotone per component, so nested views must also be
	// value-monotone along the chain for each component.
	for _, v := range views {
		for i := range v {
			if v[i].OK && (v[i].Value < 1 || v[i].Value > updates) {
				t.Fatalf("impossible component value %d", v[i].Value)
			}
		}
	}
}

func TestAfekScanMonotonePerReader(t *testing.T) {
	const n = 4
	s := NewAfekSnapshot[int](n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				s.Update(Free, w, i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := make([]int, n)
		for i := 0; i < 100; i++ {
			v := s.Scan(Free)
			for c := range v {
				if !v[c].OK {
					continue
				}
				if v[c].Value < prev[c] {
					t.Errorf("component %d regressed: %d after %d", c, v[c].Value, prev[c])
					return
				}
				prev[c] = v[c].Value
			}
		}
	}()
	wg.Wait()
}

func TestEntryString(t *testing.T) {
	if got := (Entry[int]{}).String(); got != "⊥" {
		t.Fatalf("null entry String = %q", got)
	}
	if got := (Entry[int]{Value: 7, OK: true}).String(); got != "7" {
		t.Fatalf("entry String = %q", got)
	}
}
