package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSnapshotEmptyScan(t *testing.T) {
	s := NewSnapshot[int](3)
	if s.Components() != 3 {
		t.Fatalf("Components = %d", s.Components())
	}
	for i, e := range s.Scan(Free) {
		if e.OK {
			t.Fatalf("component %d non-null before any update", i)
		}
	}
}

func TestSnapshotUpdateScan(t *testing.T) {
	s := NewSnapshot[string](3)
	s.Update(Free, 1, "mid")
	view := s.Scan(Free)
	if view[0].OK || view[2].OK {
		t.Fatal("unexpected non-null components")
	}
	if !view[1].OK || view[1].Value != "mid" {
		t.Fatalf("component 1 = %+v", view[1])
	}
}

func TestSnapshotScanIsCopy(t *testing.T) {
	s := NewSnapshot[int](2)
	s.Update(Free, 0, 1)
	view := s.Scan(Free)
	view[0].Value = 99
	if again := s.Scan(Free); again[0].Value != 1 {
		t.Fatal("mutating a returned view affected the object")
	}
}

func TestSnapshotOps(t *testing.T) {
	s := NewSnapshot[int](2)
	s.Update(Free, 0, 1)
	s.Update(Free, 1, 2)
	s.Scan(Free)
	if got := s.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3 (unit-cost model)", got)
	}
}

func TestViewSubset(t *testing.T) {
	mk := func(oks ...bool) []Entry[int] {
		out := make([]Entry[int], len(oks))
		for i, ok := range oks {
			out[i] = Entry[int]{OK: ok}
		}
		return out
	}
	tests := []struct {
		name string
		a, b []Entry[int]
		want bool
	}{
		{name: "empty in empty", a: mk(false, false), b: mk(false, false), want: true},
		{name: "subset", a: mk(true, false), b: mk(true, true), want: true},
		{name: "equal", a: mk(true, true), b: mk(true, true), want: true},
		{name: "not subset", a: mk(true, false), b: mk(false, true), want: false},
		{name: "length mismatch", a: mk(true), b: mk(true, true), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ViewSubset(tt.a, tt.b); got != tt.want {
				t.Errorf("ViewSubset = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSnapshotViewsNestedUnderConcurrency(t *testing.T) {
	// The nesting property from the Lemma 1 proof: all views of one
	// snapshot object are totally ordered by containment. Hammer the
	// object from concurrent updaters and scanners and check the chain.
	const (
		n        = 8
		scans    = 50
		scanners = 4
	)
	s := NewSnapshot[int](n)
	var (
		mu    sync.Mutex
		views [][]Entry[int]
		wg    sync.WaitGroup
	)
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Update(Free, w, w)
		}()
	}
	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scans; i++ {
				v := s.Scan(Free)
				mu.Lock()
				views = append(views, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !ViewsNested(views) {
		t.Fatal("snapshot views are not nested")
	}
}

func TestSnapshotSequentialProperty(t *testing.T) {
	// Property: a scan after a set of updates shows exactly the updated
	// components with their most recent values.
	type upd struct {
		I uint8
		V int
	}
	if err := quick.Check(func(updates []upd) bool {
		const n = 8
		s := NewSnapshot[int](n)
		last := make(map[int]int)
		for _, u := range updates {
			i := int(u.I) % n
			s.Update(Free, i, u.V)
			last[i] = u.V
		}
		view := s.Scan(Free)
		for i := 0; i < n; i++ {
			want, ok := last[i]
			if view[i].OK != ok {
				return false
			}
			if ok && view[i].Value != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
