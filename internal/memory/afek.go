package memory

import "fmt"

// AfekSnapshot is a wait-free atomic snapshot built from single-writer
// registers in the style of Afek, Attiya, Dolev, Gafni, Merritt, and
// Shavit. It exists to demonstrate that the unit-cost Snapshot object the
// paper assumes is constructible from the register primitives of the same
// model — at a cost of O(n) register steps per operation (O(n^2) for a
// scan in the worst case) instead of 1.
//
// Each component register holds the writer's value, a sequence number, and
// the view obtained by an embedded scan performed during the update. A
// scanner repeatedly collects all components; two identical consecutive
// collects form an atomic view (double collect). A scanner that observes
// some writer move twice borrows that writer's embedded view, which is
// guaranteed to have been taken inside the scanner's own interval.
//
// The object has no locking of its own: it inherits whatever
// representation its component registers latch, so under the lock-free
// concurrent substrate the whole construction runs on hardware atomics —
// exactly the wait-free, registers-only algorithm of the original paper.
type AfekSnapshot[T any] struct {
	cells []*Register[afekCell[T]]
}

type afekCell[T any] struct {
	value T
	seq   uint64
	view  []Entry[T]
}

// NewAfekSnapshot returns an n-component register-based snapshot.
func NewAfekSnapshot[T any](n int) *AfekSnapshot[T] {
	s := &AfekSnapshot[T]{cells: make([]*Register[afekCell[T]], n)}
	for i := range s.cells {
		s.cells[i] = NewRegister[afekCell[T]]()
	}
	return s
}

// Components returns the number of components n.
func (s *AfekSnapshot[T]) Components() int { return len(s.cells) }

// Update installs v as component i. Component i must only ever be updated
// by one process at a time (single-writer discipline), which all protocols
// in this repository obey: component i belongs to process i.
func (s *AfekSnapshot[T]) Update(ctx Context, i int, v T) {
	mAfekUpdate.Inc()
	view := s.Scan(ctx)
	old, _ := s.cells[i].Read(ctx)
	s.cells[i].Write(ctx, afekCell[T]{value: v, seq: old.seq + 1, view: view})
}

// Scan returns an atomic view of all components. The afek.scan counter
// includes the scan embedded in every Update; the individual register
// steps land in the register counters.
func (s *AfekSnapshot[T]) Scan(ctx Context) []Entry[T] {
	return s.ScanInto(ctx, nil)
}

// ScanInto is Scan writing the view into buf (grown as needed). The
// double-collect bookkeeping still allocates per scan — this object
// exists to expose the cost gap against the unit-cost Snapshot, not to
// win benchmarks — but the returned view reuses buf's storage.
func (s *AfekSnapshot[T]) ScanInto(ctx Context, buf []Entry[T]) []Entry[T] {
	mAfekScan.Inc()
	n := len(s.cells)
	if cap(buf) < n {
		buf = make([]Entry[T], n)
	} else {
		buf = buf[:n]
	}
	moved := make([]int, n)
	prev := s.collect(ctx)
	for {
		cur := s.collect(ctx)
		if sameSeqs(prev, cur) {
			viewInto(buf, cur)
			return buf
		}
		for i := range cur {
			if cur[i].seq == prev[i].seq {
				continue
			}
			moved[i]++
			if moved[i] >= 2 {
				// Writer i completed an entire update inside our scan, so
				// its embedded view was taken inside our interval and can
				// be returned as our own.
				copy(buf, cur[i].view)
				return buf
			}
		}
		prev = cur
	}
}

// Ops reports the total register operations served by the object.
func (s *AfekSnapshot[T]) Ops() int64 {
	var total int64
	for _, c := range s.cells {
		total += c.Ops()
	}
	return total
}

func (s *AfekSnapshot[T]) collect(ctx Context) []afekCell[T] {
	out := make([]afekCell[T], len(s.cells))
	for i, c := range s.cells {
		out[i], _ = c.Read(ctx)
	}
	return out
}

func sameSeqs[T any](a, b []afekCell[T]) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

func viewInto[T any](out []Entry[T], cells []afekCell[T]) {
	for i, c := range cells {
		if c.seq > 0 {
			out[i] = Entry[T]{Value: c.value, OK: true}
		} else {
			out[i] = Entry[T]{}
		}
	}
}

// SnapshotObject is the interface shared by the unit-cost Snapshot and the
// register-based AfekSnapshot, letting Algorithm 1 run on either substrate
// (the unit-cost model of the paper, or an all-registers model to expose
// the cost gap).
type SnapshotObject[T any] interface {
	Components() int
	Update(ctx Context, i int, v T)
	Scan(ctx Context) []Entry[T]
	ScanInto(ctx Context, buf []Entry[T]) []Entry[T]
}

var (
	_ SnapshotObject[int] = (*Snapshot[int])(nil)
	_ SnapshotObject[int] = (*AfekSnapshot[int])(nil)
)

// String aids debugging of snapshot entries in traces.
func (e Entry[T]) String() string {
	if !e.OK {
		return "⊥"
	}
	return fmt.Sprintf("%v", e.Value)
}
