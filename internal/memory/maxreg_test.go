package memory

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestMaxRegisterEmpty(t *testing.T) {
	m := NewMaxRegister[string]()
	if _, _, ok := m.ReadMax(Free); ok {
		t.Fatal("empty max register reported a value")
	}
}

func TestMaxRegisterKeepsMax(t *testing.T) {
	m := NewMaxRegister[string]()
	m.WriteMax(Free, 5, "five")
	m.WriteMax(Free, 3, "three")
	if k, v, ok := m.ReadMax(Free); !ok || k != 5 || v != "five" {
		t.Fatalf("got (%d, %q, %v)", k, v, ok)
	}
	m.WriteMax(Free, 9, "nine")
	if k, v, ok := m.ReadMax(Free); !ok || k != 9 || v != "nine" {
		t.Fatalf("got (%d, %q, %v)", k, v, ok)
	}
}

func TestMaxRegisterOps(t *testing.T) {
	m := NewMaxRegister[int]()
	m.WriteMax(Free, 1, 1)
	m.ReadMax(Free)
	if got := m.Ops(); got != 2 {
		t.Fatalf("Ops = %d, want 2", got)
	}
}

func TestTreeMaxRegisterBitsValidation(t *testing.T) {
	for _, bits := range []int{0, -1, 64, 100} {
		bits := bits
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewTreeMaxRegister[int](bits)
		}()
	}
}

func TestTreeMaxRegisterKeyRange(t *testing.T) {
	m := NewTreeMaxRegister[int](4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range key")
		}
	}()
	m.WriteMax(Free, 16, 0)
}

func TestTreeMaxRegisterEmpty(t *testing.T) {
	m := NewTreeMaxRegister[int](8)
	if _, _, ok := m.ReadMax(Free); ok {
		t.Fatal("empty tree max register reported a value")
	}
}

func TestTreeMaxRegisterMatchesReference(t *testing.T) {
	// Sequential cross-check against the unit-cost register on random
	// operation sequences.
	rng := xrand.New(41)
	if err := quick.Check(func(seedRaw uint32) bool {
		tree := NewTreeMaxRegister[uint64](10)
		ref := NewMaxRegister[uint64]()
		local := xrand.New(uint64(seedRaw))
		for op := 0; op < 50; op++ {
			if local.Bool() {
				k := local.Uint64n(1 << 10)
				tree.WriteMax(Free, k, k)
				ref.WriteMax(Free, k, k)
				continue
			}
			tk, tv, tok := tree.ReadMax(Free)
			rk, rv, rok := ref.ReadMax(Free)
			if tok != rok || tk != rk || tv != rv {
				return false
			}
		}
		_ = rng
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMaxRegisterMonotoneUnderConcurrency(t *testing.T) {
	// Reads must be monotone non-decreasing for a single reader, and any
	// read must return a key that was actually written.
	const bits = 12
	m := NewTreeMaxRegister[uint64](bits)
	written := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := xrand.New(uint64(100 + w))
			for i := 0; i < 200; i++ {
				k := rng.Uint64n(1 << bits)
				mu.Lock()
				written[k] = true
				mu.Unlock()
				m.WriteMax(Free, k, k)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev uint64
			for i := 0; i < 200; i++ {
				k, v, ok := m.ReadMax(Free)
				if !ok {
					continue
				}
				if k != v {
					t.Errorf("payload %d does not match key %d", v, k)
					return
				}
				if k < prev {
					t.Errorf("non-monotone reads: %d after %d", k, prev)
					return
				}
				prev = k
			}
		}()
	}
	wg.Wait()
	// Final read must be the overall maximum written.
	k, _, ok := m.ReadMax(Free)
	if !ok {
		t.Fatal("no value after writes")
	}
	var max uint64
	for w := range written {
		if w > max {
			max = w
		}
	}
	if k != max {
		t.Fatalf("final max %d, want %d", k, max)
	}
}

func TestTreeMaxRegisterCostGrowsWithBits(t *testing.T) {
	// A write touches O(bits) registers; verify cost ordering between a
	// shallow and a deep tree using a counting context.
	shallow := NewTreeMaxRegister[int](2)
	deep := NewTreeMaxRegister[int](16)
	cs := &countingCtx{}
	cd := &countingCtx{}
	shallow.WriteMax(cs, 3, 0)
	deep.WriteMax(cd, (1<<16)-1, 0)
	if cd.steps <= cs.steps {
		t.Fatalf("deep write cost %d not greater than shallow cost %d", cd.steps, cs.steps)
	}
}

type countingCtx struct{ steps int }

func (c *countingCtx) Step() { c.steps++ }

func (c *countingCtx) Exclusive() bool { return false }
