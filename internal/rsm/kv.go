package rsm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpKind enumerates KV commands.
type OpKind int

const (
	// OpSet writes Key = Value.
	OpSet OpKind = iota + 1
	// OpDel removes Key.
	OpDel
	// OpInc increments the integer stored at Key (missing keys count as
	// zero; non-integers — including partial parses like "12abc" and
	// out-of-range digit strings — reset to 1; math.MaxInt saturates).
	OpInc
)

// String returns the op name.
func (k OpKind) String() string {
	switch k {
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	case OpInc:
		return "inc"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a key-value command. It is comparable, so it can be proposed to
// consensus directly.
type Op struct {
	Kind  OpKind
	Key   string
	Value string
}

// String renders the op for logs.
func (o Op) String() string {
	switch o.Kind {
	case OpDel, OpInc:
		return fmt.Sprintf("%s %s", o.Kind, o.Key)
	default:
		return fmt.Sprintf("%s %s=%s", o.Kind, o.Key, o.Value)
	}
}

// KV is a deterministic key-value state machine.
type KV struct {
	data map[string]string
}

var _ StateMachine[Op] = (*KV)(nil)

// NewKV returns an empty store.
func NewKV() *KV {
	return &KV{data: make(map[string]string)}
}

// Apply implements StateMachine.
func (kv *KV) Apply(cmd Op) {
	switch cmd.Kind {
	case OpSet:
		kv.data[cmd.Key] = cmd.Value
	case OpDel:
		delete(kv.data, cmd.Key)
	case OpInc:
		// strconv.Atoi, not fmt.Sscanf: Sscanf accepts partial parses
		// ("12abc" yields 12), silently treating garbage as an integer and
		// violating the documented reset-to-1 contract.
		n := 0
		if cur, ok := kv.data[cmd.Key]; ok {
			if v, err := strconv.Atoi(cur); err == nil {
				n = v
			}
		}
		if n < math.MaxInt {
			n++
		}
		kv.data[cmd.Key] = strconv.Itoa(n)
	}
}

// Get returns the value stored at key.
func (kv *KV) Get(key string) (string, bool) {
	v, ok := kv.data[key]
	return v, ok
}

// Len returns the number of keys.
func (kv *KV) Len() int { return len(kv.data) }

// Fingerprint implements StateMachine: a canonical rendering of the full
// state.
func (kv *KV) Fingerprint() string {
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, kv.data[k])
	}
	return b.String()
}
