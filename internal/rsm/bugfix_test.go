package rsm

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// TestKVIncParsing pins OpInc's parse contract: only a string strconv.Atoi
// accepts in full is an integer. The pre-fix fmt.Sscanf accepted partial
// parses, so "12abc" incremented to "13" instead of resetting to 1.
func TestKVIncParsing(t *testing.T) {
	cases := []struct {
		name string
		cur  string // pre-existing value ("<missing>" = no key)
		want string
	}{
		{"missing key", "<missing>", "1"},
		{"empty string", "", "1"},
		{"plain integer", "41", "42"},
		{"negative integer", "-3", "-2"},
		{"partial parse", "12abc", "1"},
		{"leading space", " 7", "1"},
		{"trailing newline", "7\n", "1"},
		{"plus sign", "+5", "6"}, // Atoi accepts an explicit sign
		{"float", "2.5", "1"},
		{"out of range", "92233720368547758079999", "1"},
		{"max int saturates", strconv.Itoa(math.MaxInt), strconv.Itoa(math.MaxInt)},
		{"min int", strconv.Itoa(math.MinInt), strconv.Itoa(math.MinInt + 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kv := NewKV()
			if tc.cur != "<missing>" {
				kv.Apply(Op{Kind: OpSet, Key: "k", Value: tc.cur})
			}
			kv.Apply(Op{Kind: OpInc, Key: "k"})
			got, ok := kv.Get("k")
			if !ok || got != tc.want {
				t.Fatalf("inc over %q: got (%q, %v), want (%q, true)", tc.cur, got, ok, tc.want)
			}
		})
	}
}

// TestRunRetryTaggedDuplicatePayloads is the regression test for the
// duplicate-payload drop: two replicas submit byte-identical command
// lists. With plain RunRetry one winner satisfies both replicas' equality
// matches and the loser's op never retries; with (replica, seq) tags
// every submission is distinct, so each must commit exactly once.
func TestRunRetryTaggedDuplicatePayloads(t *testing.T) {
	const n = 2
	payload := []string{"inc x", "inc x"} // identical within and across replicas
	log := NewLog[Tagged[string]](n, consensus.NewRegister[Tagged[string]])
	logs := make([][]Tagged[string], n)
	_, finished, _, err := sim.Collect(sched.NewRandom(n, xrand.New(7)), sim.Config{AlgSeed: 11}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, nil)
		logs[p.ID()] = RunRetryTagged(r, p, 0, 0, payload, 64)
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := logs[0]
	for r := 1; r < n; r++ {
		if !finished[r] {
			t.Fatalf("replica %d unfinished", r)
		}
		if len(logs[r]) > len(ref) {
			ref = logs[r]
		}
	}
	commits := make(map[Tagged[string]]int)
	for _, cmd := range ref {
		commits[cmd]++
	}
	for r := 0; r < n; r++ {
		for seq := range payload {
			want := Tagged[string]{Replica: r, Seq: seq, Cmd: payload[seq]}
			if commits[want] != 1 {
				t.Fatalf("replica %d seq %d committed %d times, want exactly 1 (log %v)",
					r, seq, commits[want], ref)
			}
		}
	}
}

// TestRunRetryDuplicatePayloadHazard documents why the tag exists: the
// same duplicate-payload workload through plain RunRetry conflates the
// replicas' submissions, committing fewer copies than were submitted.
// If this test ever starts failing because all four copies commit, plain
// RunRetry has learned identities and the Tagged warning can be dropped.
func TestRunRetryDuplicatePayloadHazard(t *testing.T) {
	const n = 2
	payload := []string{"inc x", "inc x"}
	log := NewLog[string](n, consensus.NewRegister[string])
	logs := make([][]string, n)
	_, _, _, err := sim.Collect(sched.NewRandom(n, xrand.New(7)), sim.Config{AlgSeed: 11}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, nil)
		logs[p.ID()] = r.RunRetry(p, 0, payload, 64)
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	longest := logs[0]
	if len(logs[1]) > len(longest) {
		longest = logs[1]
	}
	if got := len(longest); got >= 2*len(payload) {
		t.Fatalf("plain RunRetry committed %d slots for %d submissions; the duplicate-payload hazard no longer reproduces", got, 2*len(payload))
	}
}

// TestSparseSlotInstantiation pins the lazy-slot allocation behavior: a
// proposal into a distant slot must instantiate exactly one consensus
// protocol, not one per intermediate gap slot (the pre-fix dense slice
// allocated a protocol for every slot below the target).
func TestSparseSlotInstantiation(t *testing.T) {
	const distant = 1_000_000
	made := 0
	mk := func(n int) *consensus.Protocol[string] {
		made++
		return consensus.NewRegister[string](n)
	}
	log := NewLog[string](1, mk)
	_, _, _, err := sim.Collect(sched.NewRoundRobin(1), sim.Config{AlgSeed: 3}, func(p *sim.Proc) struct{} {
		r := NewReplica(0, log, nil)
		r.Run(p, distant, []string{"far"})
		r.Run(p, 2, []string{"near"})
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if made != 2 {
		t.Fatalf("instantiated %d consensus protocols for 2 proposals, want 2", made)
	}
	if got := log.Slots(); got != 2 {
		t.Fatalf("Slots() = %d after sparse proposals into slots %d and 2, want 2", got, distant)
	}
}

// TestSlotsCountsDenseFill keeps the dense-use contract of Slots() intact
// alongside the sparse representation.
func TestSlotsCountsDenseFill(t *testing.T) {
	const slots = 4
	log := NewLog[string](1, consensus.NewRegister[string])
	pending := make([]string, slots)
	for s := range pending {
		pending[s] = fmt.Sprintf("cmd-%d", s)
	}
	_, _, _, err := sim.Collect(sched.NewRoundRobin(1), sim.Config{AlgSeed: 5}, func(p *sim.Proc) struct{} {
		NewReplica(0, log, nil).Run(p, 0, pending)
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := log.Slots(); got != slots {
		t.Fatalf("Slots() = %d, want %d", got, slots)
	}
}
