package rsm

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// Tagged wraps a command with the identity of the replica that submitted
// it and a per-replica sequence number. Two replicas submitting
// byte-identical payloads still produce distinct Tagged values, which is
// what makes retry loops sound: Replica.RunRetry matches decided values
// to pending commands by equality, so identical untagged payloads from
// different replicas are conflated — one winner satisfies both matches
// and the loser's command is silently dropped. Tagging restores the
// invariant that value equality implies "my own submission".
//
// Tagged is comparable whenever V is, so Tagged commands propose into a
// Log[Tagged[V]] directly.
type Tagged[V comparable] struct {
	Replica int
	Seq     int
	Cmd     V
}

// String renders the tagged command for logs.
func (t Tagged[V]) String() string {
	return fmt.Sprintf("r%d.%d:%v", t.Replica, t.Seq, t.Cmd)
}

// RunRetryTagged proposes cmds with re-submission exactly like
// Replica.RunRetry, but wraps each command with the replica's identity
// and its index as a (replica, seq) tag first. Because every tagged
// command is distinct across the whole system, a decided value equal to
// the pending command is necessarily this replica's own submission, so
// duplicate payloads from different replicas each commit exactly once
// instead of racing for a single slot. seqBase offsets the sequence
// numbers, letting a replica issue several RunRetryTagged calls over one
// log without reusing tags.
func RunRetryTagged[V comparable](r *Replica[Tagged[V]], p *sim.Proc, startSlot, seqBase int, cmds []V, maxSlots int) []Tagged[V] {
	tagged := make([]Tagged[V], len(cmds))
	for i, c := range cmds {
		tagged[i] = Tagged[V]{Replica: r.ID(), Seq: seqBase + i, Cmd: c}
	}
	return r.RunRetry(p, startSlot, tagged, maxSlots)
}
