// Package rsm builds the classic downstream application of consensus — a
// replicated state machine — on top of this repository's randomized
// consensus protocols. n replicas receive different client commands; one
// consensus instance per log slot forces every replica to append the same
// command in the same order, so any deterministic state machine replayed
// over the log reaches the same state on every replica.
//
// The package exists both as a usable library layer (the replicatedlog
// example is a thin wrapper over it) and as an end-to-end integration
// surface for the protocol stack: its tests check log identity and state
// convergence across execution modes, schedules, and crash patterns.
package rsm

import (
	"fmt"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// Log is a replicated log for n replicas: slot s is decided by one
// single-use consensus instance, created lazily and shared by all
// replicas. A Log is safe for concurrent use by its n replicas.
type Log[V comparable] struct {
	n  int
	mk func(n int) *consensus.Protocol[V]

	// slots is sparse: a consensus instance exists only for slots some
	// replica actually proposed into. A dense slice here would let a
	// single Propose(p, 1_000_000, v) allocate a million protocols for
	// the untouched gap.
	mu    sync.Mutex
	slots map[int]*consensus.Protocol[V]
}

// NewLog returns a replicated log whose slots are decided by protocols
// built with mk (e.g. consensus.NewRegister[V]).
func NewLog[V comparable](n int, mk func(n int) *consensus.Protocol[V]) *Log[V] {
	if n < 1 {
		panic("rsm: need at least one replica")
	}
	if mk == nil {
		panic("rsm: nil consensus factory")
	}
	return &Log[V]{n: n, mk: mk, slots: make(map[int]*consensus.Protocol[V])}
}

// Replicas returns the number of replicas n.
func (l *Log[V]) Replicas() int { return l.n }

// Propose runs consensus for slot with the given proposal on behalf of
// process p, returning the slot's decided command. Each replica must
// call Propose at most once per slot (the underlying consensus objects
// are single-use per process).
func (l *Log[V]) Propose(p *sim.Proc, slot int, v V) V {
	return l.slotProtocol(slot).Propose(p, v)
}

// Slots returns how many slots have been instantiated so far (slots
// actually proposed into — gaps left by sparse proposals don't count).
func (l *Log[V]) Slots() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.slots)
}

func (l *Log[V]) slotProtocol(slot int) *consensus.Protocol[V] {
	if slot < 0 {
		panic(fmt.Sprintf("rsm: negative slot %d", slot))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.slots[slot]
	if !ok {
		c = l.mk(l.n)
		l.slots[slot] = c
	}
	return c
}

// StateMachine is a deterministic state machine replayed over the log.
// Implementations need not be safe for concurrent use: each replica owns
// its instance.
type StateMachine[V comparable] interface {
	// Apply executes one decided command.
	Apply(cmd V)
	// Fingerprint returns a comparable digest of the current state, used
	// to verify replica convergence.
	Fingerprint() string
}

// Replica drives one replica: it proposes its own pending commands slot
// by slot, appends whatever each slot decides, and applies the decided
// commands to its state machine.
type Replica[V comparable] struct {
	id  int
	log *Log[V]
	sm  StateMachine[V]

	applied []V
}

// NewReplica returns replica id over the shared log, applying decided
// commands to sm (which may be nil if only the log matters).
func NewReplica[V comparable](id int, log *Log[V], sm StateMachine[V]) *Replica[V] {
	if id < 0 || id >= log.Replicas() {
		panic(fmt.Sprintf("rsm: replica id %d out of range", id))
	}
	return &Replica[V]{id: id, log: log, sm: sm}
}

// ID returns the replica id.
func (r *Replica[V]) ID() int { return r.id }

// Run proposes each pending command into consecutive slots starting at
// startSlot, adopting the decided command for every slot. It returns the
// decided commands in order. Commands that lose their slot are NOT
// retried into later slots; callers wanting exactly-once submission
// re-propose losers themselves (see the package tests).
func (r *Replica[V]) Run(p *sim.Proc, startSlot int, pending []V) []V {
	decided := make([]V, 0, len(pending))
	for i, cmd := range pending {
		v := r.log.Propose(p, startSlot+i, cmd)
		r.append(v)
		decided = append(decided, v)
	}
	return decided
}

// RunRetry proposes the pending commands with re-submission: a command
// that loses its slot is retried in the next slot, until every pending
// command has been committed (in some slot) or maxSlots is exhausted.
// It returns the full decided log segment it observed.
//
// Commands are matched to decided values by equality, so commands must
// be distinct across replicas: if two replicas submit byte-identical
// commands, one winner satisfies both matches and the other replica's
// still-uncommitted command is silently dropped (it never retries).
// Callers whose payloads can collide must make commands distinct with an
// identity tag — see Tagged and RunRetryTagged.
func (r *Replica[V]) RunRetry(p *sim.Proc, startSlot int, pending []V, maxSlots int) []V {
	var decidedLog []V
	next := 0
	slot := startSlot
	for next < len(pending) && slot < startSlot+maxSlots {
		v := r.log.Propose(p, slot, pending[next])
		r.append(v)
		decidedLog = append(decidedLog, v)
		if v == pending[next] {
			next++
		}
		slot++
	}
	return decidedLog
}

// Applied returns the replica's decided-command log so far.
func (r *Replica[V]) Applied() []V {
	out := make([]V, len(r.applied))
	copy(out, r.applied)
	return out
}

// Fingerprint returns the state machine digest ("" without a state
// machine).
func (r *Replica[V]) Fingerprint() string {
	if r.sm == nil {
		return ""
	}
	return r.sm.Fingerprint()
}

func (r *Replica[V]) append(v V) {
	r.applied = append(r.applied, v)
	if r.sm != nil {
		r.sm.Apply(v)
	}
}
