package rsm

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// kvPending builds each replica's command stream over a small shared key
// space, so replicas genuinely contend on the same state.
func kvPending(n, slots int, seed uint64) [][]Op {
	rng := xrand.New(seed)
	keys := []string{"x", "y", "z"}
	pending := make([][]Op, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], Op{
				Kind:  OpKind(rng.Intn(3) + 1),
				Key:   keys[rng.Intn(len(keys))],
				Value: fmt.Sprintf("%d", rng.Intn(100)),
			})
		}
	}
	return pending
}

// TestKVConvergenceUnderSkewedSchedules drives the KV state machine under
// heavily skewed oblivious schedules — Zipf, a single favored process,
// and a searched-family Program mixing 16:1 weights with bursts and
// starvation windows. However lopsided the interleaving, every replica
// must decide the identical log and reach the identical state.
func TestKVConvergenceUnderSkewedSchedules(t *testing.T) {
	const (
		n     = 4
		slots = 8
	)
	program := func() sched.Source {
		src, err := sched.NewProgram(n, sched.ProgramSpec{
			Weights: []int64{16, 1, 1, 1},
			Segments: []sched.ProgramSegment{
				{Mode: sched.SegBurst, Len: 24, Pid: 0},
				{Mode: sched.SegStarve, Len: 48, Mask: 0b0001},
				{Mode: sched.SegWeighted, Len: 64},
			},
		}, xrand.New(101))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	sources := []struct {
		name string
		src  sched.Source
	}{
		{"zipf", sched.NewZipf(n, 2.0, xrand.New(43))},
		{"favored", sched.NewFavored(n)},
		{"program", program()},
	}
	for _, tc := range sources {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			log := NewLog[Op](n, consensus.NewRegister[Op])
			pending := kvPending(n, slots, 47)
			fps := make([]string, n)
			logs := make([][]Op, n)
			_, finished, _, err := sim.Collect(tc.src, sim.Config{AlgSeed: 53}, func(p *sim.Proc) struct{} {
				r := NewReplica(p.ID(), log, NewKV())
				logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
				fps[p.ID()] = r.Fingerprint()
				return struct{}{}
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				if !finished[r] {
					t.Fatalf("replica %d unfinished under %s", r, tc.name)
				}
				if fps[r] != fps[0] {
					t.Fatalf("replica %d state %q != replica 0 state %q", r, fps[r], fps[0])
				}
				for s := 0; s < slots; s++ {
					if logs[r][s] != logs[0][s] {
						t.Fatalf("slot %d diverges between replicas under %s", s, tc.name)
					}
				}
			}
		})
	}
}

// TestKVUnderCrashRecoverySchedule replays the KV machine through
// crash-recovery faults: replicas lose all local state mid-run (amnesia)
// and restart from the top, re-proposing the same commands. Agreement
// makes re-proposal idempotent — a restarted replica's Propose on an
// already-decided slot returns the decided command — so every finished
// incarnation must still converge to the identical log and state.
func TestKVUnderCrashRecoverySchedule(t *testing.T) {
	const (
		n     = 4
		slots = 6
	)
	fs, err := fault.NewSchedule(n, []fault.Event{
		{Kind: fault.Stutter, Pid: 0, Slot: 40, Arg: 8},
		{Kind: fault.CrashRecover, Pid: 1, Slot: 150},
		{Kind: fault.Stall, Pid: 3, Slot: 220, Arg: 16},
		{Kind: fault.CrashRecover, Pid: 2, Slot: 400},
		{Kind: fault.CrashRecover, Pid: 1, Slot: 700},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := NewLog[Op](n, consensus.NewRegister[Op])
	pending := kvPending(n, slots, 59)
	fps := make([]string, n)
	logs := make([][]Op, n)
	src := sched.NewRandom(n, xrand.New(61))
	_, finished, res, err := sim.Collect(src, sim.Config{AlgSeed: 67, Faults: fs}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, NewKV())
		logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
		fps[p.ID()] = r.Fingerprint()
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("no crash-recovery restarts were delivered; the test exercised nothing")
	}
	for r := 0; r < n; r++ {
		if !finished[r] {
			t.Fatalf("replica %d never finished its final incarnation", r)
		}
		if fps[r] != fps[0] {
			t.Fatalf("replica %d state %q != replica 0 state %q after restarts", r, fps[r], fps[0])
		}
		for s := 0; s < slots; s++ {
			if logs[r][s] != logs[0][s] {
				t.Fatalf("slot %d diverges after crash-recovery", s)
			}
		}
	}
}

// TestKVRetryUnderCrashRecovery is the DES-style adversity test for the
// replicated KV: client retry (RunRetry re-submits commands that lose
// their slot) combined with a crash-recovery fault schedule (replicas
// lose all local state and re-walk the log from the top) and a
// permanently crashed replica mid-operation. The linearizability
// obligations checked:
//
//  1. every observed log is a prefix of the longest observed log
//     (single total order of committed commands);
//  2. no command commits twice — retry plus amnesiac re-walks must stay
//     exactly-once, because a restarted replica's walk is a
//     deterministic function of the already-decided prefix;
//  3. every surviving replica's commands commit exactly once each
//     (retry eventually lands every loser);
//  4. each replica's KV state equals the reference state machine
//     replayed over the prefix it observed.
func TestKVRetryUnderCrashRecovery(t *testing.T) {
	const (
		n     = 4
		slots = 4
	)
	fs, err := fault.NewSchedule(n, []fault.Event{
		{Kind: fault.CrashRecover, Pid: 1, Slot: 120},
		{Kind: fault.Stutter, Pid: 3, Slot: 200, Arg: 8},
		{Kind: fault.CrashRecover, Pid: 2, Slot: 350},
		{Kind: fault.CrashRecover, Pid: 1, Slot: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := NewLog[Op](n, consensus.NewRegister[Op])
	// Distinct commands (value encodes replica and sequence) make
	// duplicate commits detectable while still contending on shared keys.
	keys := []string{"x", "y"}
	pending := make([][]Op, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], Op{
				Kind:  OpKind(s%3 + 1),
				Key:   keys[(r+s)%len(keys)],
				Value: fmt.Sprintf("r%d-s%d", r, s),
			})
		}
	}
	// Replica 0 is killed for good mid-Propose; 1 and 2 crash-recover.
	src := sched.NewCrashSet(sched.NewRandom(n, xrand.New(83)), []int{0}, 25, 89)
	logs := make([][]Op, n)
	fps := make([]string, n)
	_, finished, res, err := sim.Collect(src, sim.Config{AlgSeed: 97, Faults: fs}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, NewKV())
		logs[p.ID()] = r.RunRetry(p, 0, pending[p.ID()], n*slots)
		fps[p.ID()] = r.Fingerprint()
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("no crash-recovery restarts were delivered; the test exercised nothing")
	}
	if finished[0] {
		t.Fatal("the crashed leader finished; the cutoff did not kill it mid-op")
	}
	ref := logs[0]
	for r := 1; r < n; r++ {
		if !finished[r] {
			t.Fatalf("survivor %d did not finish under retry + crash-recovery", r)
		}
		if len(logs[r]) > len(ref) {
			ref = logs[r]
		}
	}
	for r := 0; r < n; r++ {
		for s := range logs[r] {
			if logs[r][s] != ref[s] {
				t.Fatalf("slot %d: replica %d observed %v, longest log has %v", s, r, logs[r][s], ref[s])
			}
		}
	}
	commits := make(map[Op]int)
	for _, cmd := range ref {
		commits[cmd]++
		if commits[cmd] > 1 {
			t.Fatalf("command %v committed twice: retry or amnesiac re-walk broke exactly-once", cmd)
		}
	}
	for r := 1; r < n; r++ {
		for _, cmd := range pending[r] {
			if commits[cmd] != 1 {
				t.Fatalf("survivor %d command %v committed %d times, want exactly 1", r, cmd, commits[cmd])
			}
		}
	}
	// Replaying the reference prefix each replica observed must reproduce
	// that replica's state byte-for-byte.
	for r := 1; r < n; r++ {
		replay := NewKV()
		for _, cmd := range ref[:len(logs[r])] {
			replay.Apply(cmd)
		}
		if fps[r] != replay.Fingerprint() {
			t.Fatalf("replica %d state %q != reference replay %q", r, fps[r], replay.Fingerprint())
		}
	}
}

// TestKillLeaderMidOp is the kill-a-leader regression test: replica 0 —
// the "leader" proposing the commands everyone is waiting on — is
// permanently crashed partway through its first consensus operation
// (cutoff 25 slots is mid-Propose: one register-model consensus op costs
// far more than 25 steps). The surviving replicas must still decide every
// slot, agree on the full log, and decide only values someone actually
// proposed; a half-completed Propose must neither wedge the instance nor
// smuggle in a phantom command.
func TestKillLeaderMidOp(t *testing.T) {
	const (
		n     = 5
		slots = 4
	)
	log := NewLog[string](n, consensus.NewRegister[string])
	pending := make([][]string, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], fmt.Sprintf("r%d-s%d", r, s))
		}
	}
	src := sched.NewCrashSet(sched.NewRandom(n, xrand.New(71)), []int{0}, 25, 73)
	logs := make([][]string, n)
	_, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: 79}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, nil)
		logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finished[0] {
		t.Fatal("the crashed leader finished; the cutoff did not kill it mid-op")
	}
	var ref []string
	for r := 1; r < n; r++ {
		if !finished[r] {
			t.Fatalf("survivor %d did not finish: the leader's half-done op wedged consensus", r)
		}
		if len(logs[r]) != slots {
			t.Fatalf("survivor %d log length %d, want %d", r, len(logs[r]), slots)
		}
		if ref == nil {
			ref = logs[r]
			continue
		}
		for s := 0; s < slots; s++ {
			if logs[r][s] != ref[s] {
				t.Fatalf("slot %d diverges among survivors", s)
			}
		}
	}
	// Validity: every decided command is some replica's proposal for that
	// slot — including possibly the dead leader's, if its writes landed
	// before the crash, but never a value nobody proposed.
	for s := 0; s < slots; s++ {
		valid := false
		for r := 0; r < n; r++ {
			if ref[s] == pending[r][s] {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("slot %d decided phantom command %q", s, ref[s])
		}
	}
}
