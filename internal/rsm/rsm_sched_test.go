package rsm

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// kvPending builds each replica's command stream over a small shared key
// space, so replicas genuinely contend on the same state.
func kvPending(n, slots int, seed uint64) [][]Op {
	rng := xrand.New(seed)
	keys := []string{"x", "y", "z"}
	pending := make([][]Op, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], Op{
				Kind:  OpKind(rng.Intn(3) + 1),
				Key:   keys[rng.Intn(len(keys))],
				Value: fmt.Sprintf("%d", rng.Intn(100)),
			})
		}
	}
	return pending
}

// TestKVConvergenceUnderSkewedSchedules drives the KV state machine under
// heavily skewed oblivious schedules — Zipf, a single favored process,
// and a searched-family Program mixing 16:1 weights with bursts and
// starvation windows. However lopsided the interleaving, every replica
// must decide the identical log and reach the identical state.
func TestKVConvergenceUnderSkewedSchedules(t *testing.T) {
	const (
		n     = 4
		slots = 8
	)
	program := func() sched.Source {
		src, err := sched.NewProgram(n, sched.ProgramSpec{
			Weights: []int64{16, 1, 1, 1},
			Segments: []sched.ProgramSegment{
				{Mode: sched.SegBurst, Len: 24, Pid: 0},
				{Mode: sched.SegStarve, Len: 48, Mask: 0b0001},
				{Mode: sched.SegWeighted, Len: 64},
			},
		}, xrand.New(101))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	sources := []struct {
		name string
		src  sched.Source
	}{
		{"zipf", sched.NewZipf(n, 2.0, xrand.New(43))},
		{"favored", sched.NewFavored(n)},
		{"program", program()},
	}
	for _, tc := range sources {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			log := NewLog[Op](n, consensus.NewRegister[Op])
			pending := kvPending(n, slots, 47)
			fps := make([]string, n)
			logs := make([][]Op, n)
			_, finished, _, err := sim.Collect(tc.src, sim.Config{AlgSeed: 53}, func(p *sim.Proc) struct{} {
				r := NewReplica(p.ID(), log, NewKV())
				logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
				fps[p.ID()] = r.Fingerprint()
				return struct{}{}
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				if !finished[r] {
					t.Fatalf("replica %d unfinished under %s", r, tc.name)
				}
				if fps[r] != fps[0] {
					t.Fatalf("replica %d state %q != replica 0 state %q", r, fps[r], fps[0])
				}
				for s := 0; s < slots; s++ {
					if logs[r][s] != logs[0][s] {
						t.Fatalf("slot %d diverges between replicas under %s", s, tc.name)
					}
				}
			}
		})
	}
}

// TestKVUnderCrashRecoverySchedule replays the KV machine through
// crash-recovery faults: replicas lose all local state mid-run (amnesia)
// and restart from the top, re-proposing the same commands. Agreement
// makes re-proposal idempotent — a restarted replica's Propose on an
// already-decided slot returns the decided command — so every finished
// incarnation must still converge to the identical log and state.
func TestKVUnderCrashRecoverySchedule(t *testing.T) {
	const (
		n     = 4
		slots = 6
	)
	fs, err := fault.NewSchedule(n, []fault.Event{
		{Kind: fault.Stutter, Pid: 0, Slot: 40, Arg: 8},
		{Kind: fault.CrashRecover, Pid: 1, Slot: 150},
		{Kind: fault.Stall, Pid: 3, Slot: 220, Arg: 16},
		{Kind: fault.CrashRecover, Pid: 2, Slot: 400},
		{Kind: fault.CrashRecover, Pid: 1, Slot: 700},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := NewLog[Op](n, consensus.NewRegister[Op])
	pending := kvPending(n, slots, 59)
	fps := make([]string, n)
	logs := make([][]Op, n)
	src := sched.NewRandom(n, xrand.New(61))
	_, finished, res, err := sim.Collect(src, sim.Config{AlgSeed: 67, Faults: fs}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, NewKV())
		logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
		fps[p.ID()] = r.Fingerprint()
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("no crash-recovery restarts were delivered; the test exercised nothing")
	}
	for r := 0; r < n; r++ {
		if !finished[r] {
			t.Fatalf("replica %d never finished its final incarnation", r)
		}
		if fps[r] != fps[0] {
			t.Fatalf("replica %d state %q != replica 0 state %q after restarts", r, fps[r], fps[0])
		}
		for s := 0; s < slots; s++ {
			if logs[r][s] != logs[0][s] {
				t.Fatalf("slot %d diverges after crash-recovery", s)
			}
		}
	}
}

// TestKillLeaderMidOp is the kill-a-leader regression test: replica 0 —
// the "leader" proposing the commands everyone is waiting on — is
// permanently crashed partway through its first consensus operation
// (cutoff 25 slots is mid-Propose: one register-model consensus op costs
// far more than 25 steps). The surviving replicas must still decide every
// slot, agree on the full log, and decide only values someone actually
// proposed; a half-completed Propose must neither wedge the instance nor
// smuggle in a phantom command.
func TestKillLeaderMidOp(t *testing.T) {
	const (
		n     = 5
		slots = 4
	)
	log := NewLog[string](n, consensus.NewRegister[string])
	pending := make([][]string, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], fmt.Sprintf("r%d-s%d", r, s))
		}
	}
	src := sched.NewCrashSet(sched.NewRandom(n, xrand.New(71)), []int{0}, 25, 73)
	logs := make([][]string, n)
	_, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: 79}, func(p *sim.Proc) struct{} {
		r := NewReplica(p.ID(), log, nil)
		logs[p.ID()] = r.Run(p, 0, pending[p.ID()])
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finished[0] {
		t.Fatal("the crashed leader finished; the cutoff did not kill it mid-op")
	}
	var ref []string
	for r := 1; r < n; r++ {
		if !finished[r] {
			t.Fatalf("survivor %d did not finish: the leader's half-done op wedged consensus", r)
		}
		if len(logs[r]) != slots {
			t.Fatalf("survivor %d log length %d, want %d", r, len(logs[r]), slots)
		}
		if ref == nil {
			ref = logs[r]
			continue
		}
		for s := 0; s < slots; s++ {
			if logs[r][s] != ref[s] {
				t.Fatalf("slot %d diverges among survivors", s)
			}
		}
	}
	// Validity: every decided command is some replica's proposal for that
	// slot — including possibly the dead leader's, if its writes landed
	// before the crash, but never a value nobody proposed.
	for s := 0; s < slots; s++ {
		valid := false
		for r := 0; r < n; r++ {
			if ref[s] == pending[r][s] {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("slot %d decided phantom command %q", s, ref[s])
		}
	}
}
