package rsm

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestLogValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero replicas", func() { NewLog[int](0, consensus.NewRegister[int]) })
	mustPanic("nil factory", func() { NewLog[int](2, nil) })
	log := NewLog[int](2, consensus.NewRegister[int])
	mustPanic("negative slot", func() { log.slotProtocol(-1) })
	mustPanic("bad replica id", func() { NewReplica(5, log, nil) })
}

// runReplicas executes one replica body per process under a controlled
// schedule and returns the per-replica logs.
func runReplicas[V comparable](t *testing.T, n int, src sched.Source, seed uint64,
	body func(p *sim.Proc, r *Replica[V]) []V, log *Log[V], sms []StateMachine[V]) ([][]V, []bool) {
	t.Helper()
	logs := make([][]V, n)
	replicas := make([]*Replica[V], n)
	for i := 0; i < n; i++ {
		var sm StateMachine[V]
		if sms != nil {
			sm = sms[i]
		}
		replicas[i] = NewReplica(i, log, sm)
	}
	_, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) struct{} {
		logs[p.ID()] = body(p, replicas[p.ID()])
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	return logs, finished
}

func TestIdenticalLogsAcrossReplicas(t *testing.T) {
	const (
		n     = 5
		slots = 6
	)
	log := NewLog[string](n, consensus.NewRegister[string])
	pending := make([][]string, n)
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			pending[r] = append(pending[r], fmt.Sprintf("cmd-%d-%d", r, s))
		}
	}
	logs, finished := runReplicas(t, n, sched.NewRandom(n, xrand.New(3)), 5,
		func(p *sim.Proc, r *Replica[string]) []string {
			return r.Run(p, 0, pending[r.ID()])
		}, log, nil)
	for r := 0; r < n; r++ {
		if !finished[r] {
			t.Fatalf("replica %d unfinished", r)
		}
		if len(logs[r]) != slots {
			t.Fatalf("replica %d log length %d", r, len(logs[r]))
		}
		for s := 0; s < slots; s++ {
			if logs[r][s] != logs[0][s] {
				t.Fatalf("slot %d: replica %d has %q, replica 0 has %q", s, r, logs[r][s], logs[0][s])
			}
		}
	}
	// Every decided command must be someone's proposal for that slot.
	for s := 0; s < slots; s++ {
		valid := false
		for r := 0; r < n; r++ {
			if logs[0][s] == pending[r][s] {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("slot %d decided %q, not proposed by anyone", s, logs[0][s])
		}
	}
	if log.Slots() != slots {
		t.Fatalf("Slots() = %d", log.Slots())
	}
}

func TestKVStateConvergence(t *testing.T) {
	const (
		n     = 4
		slots = 10
	)
	log := NewLog[Op](n, consensus.NewSnapshot[Op])
	sms := make([]StateMachine[Op], n)
	for i := range sms {
		sms[i] = NewKV()
	}
	rng := xrand.New(11)
	pending := make([][]Op, n)
	keys := []string{"x", "y", "z"}
	for r := 0; r < n; r++ {
		for s := 0; s < slots; s++ {
			op := Op{Kind: OpKind(rng.Intn(3) + 1), Key: keys[rng.Intn(len(keys))], Value: fmt.Sprintf("%d", rng.Intn(100))}
			pending[r] = append(pending[r], op)
		}
	}
	replicas := make([]*Replica[Op], n)
	for i := 0; i < n; i++ {
		replicas[i] = NewReplica(i, log, sms[i])
	}
	_, _, _, err := sim.Collect(sched.NewRandom(n, xrand.New(13)), sim.Config{AlgSeed: 17}, func(p *sim.Proc) struct{} {
		replicas[p.ID()].Run(p, 0, pending[p.ID()])
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := replicas[0].Fingerprint()
	if fp == "" {
		t.Fatal("empty fingerprint with state machine attached")
	}
	for r := 1; r < n; r++ {
		if got := replicas[r].Fingerprint(); got != fp {
			t.Fatalf("replica %d state %q != replica 0 state %q", r, got, fp)
		}
	}
}

func TestRunRetryCommitsAllPending(t *testing.T) {
	const n = 3
	log := NewLog[string](n, consensus.NewRegister[string])
	pending := [][]string{
		{"a1", "a2"},
		{"b1", "b2"},
		{"c1", "c2"},
	}
	logs := make([][]string, n)
	replicas := make([]*Replica[string], n)
	for i := 0; i < n; i++ {
		replicas[i] = NewReplica(i, log, nil)
	}
	_, _, _, err := sim.Collect(sched.NewRandom(n, xrand.New(19)), sim.Config{AlgSeed: 23}, func(p *sim.Proc) struct{} {
		logs[p.ID()] = replicas[p.ID()].RunRetry(p, 0, pending[p.ID()], 32)
		return struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each replica must see all of its own commands somewhere in its
	// observed decided segment.
	for r := 0; r < n; r++ {
		seen := make(map[string]bool)
		for _, v := range logs[r] {
			seen[v] = true
		}
		for _, cmd := range pending[r] {
			if !seen[cmd] {
				t.Fatalf("replica %d never committed %q (log %v)", r, cmd, logs[r])
			}
		}
	}
	// Shared prefix property: where two replicas observed the same slot,
	// they observed the same command.
	minLen := len(logs[0])
	for r := 1; r < n; r++ {
		if len(logs[r]) < minLen {
			minLen = len(logs[r])
		}
	}
	for s := 0; s < minLen; s++ {
		for r := 1; r < n; r++ {
			if logs[r][s] != logs[0][s] {
				t.Fatalf("slot %d diverges between replicas", s)
			}
		}
	}
}

func TestReplicatedLogUnderCrash(t *testing.T) {
	const n = 6
	log := NewLog[int](n, consensus.NewRegister[int])
	src := sched.NewCrashSet(sched.NewRandom(n, xrand.New(29)), []int{4, 5}, 40, 31)
	logs, finished := runReplicas(t, n, src, 37,
		func(p *sim.Proc, r *Replica[int]) []int {
			pending := []int{r.ID()*10 + 1, r.ID()*10 + 2, r.ID()*10 + 3}
			return r.Run(p, 0, pending)
		}, log, nil)
	// Surviving replicas must have identical logs.
	var ref []int
	for r := 0; r < n; r++ {
		if !finished[r] {
			continue
		}
		if ref == nil {
			ref = logs[r]
			continue
		}
		if len(logs[r]) != len(ref) {
			t.Fatalf("survivor log lengths differ: %d vs %d", len(logs[r]), len(ref))
		}
		for s := range ref {
			if logs[r][s] != ref[s] {
				t.Fatalf("slot %d diverges among survivors", s)
			}
		}
	}
	if ref == nil {
		t.Fatal("no survivors finished")
	}
}

func TestConcurrentModeReplicas(t *testing.T) {
	const (
		n     = 4
		slots = 5
	)
	log := NewLog[string](n, consensus.NewLinear[string])
	logs := make([][]string, n)
	replicas := make([]*Replica[string], n)
	for i := 0; i < n; i++ {
		replicas[i] = NewReplica(i, log, nil)
	}
	if _, err := sim.RunConcurrent(n, func(p *sim.Proc) {
		pending := make([]string, slots)
		for s := range pending {
			pending[s] = fmt.Sprintf("r%d-s%d", p.ID(), s)
		}
		logs[p.ID()] = replicas[p.ID()].Run(p, 0, pending)
	}, sim.Config{AlgSeed: 41}); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		for s := 0; s < slots; s++ {
			if logs[r][s] != logs[0][s] {
				t.Fatalf("slot %d diverges in concurrent mode", s)
			}
		}
	}
}

func TestKVSemantics(t *testing.T) {
	kv := NewKV()
	steps := []struct {
		op        Op
		key, want string
		present   bool
	}{
		{op: Op{Kind: OpSet, Key: "a", Value: "1"}, key: "a", want: "1", present: true},
		{op: Op{Kind: OpInc, Key: "a"}, key: "a", want: "2", present: true},
		{op: Op{Kind: OpInc, Key: "b"}, key: "b", want: "1", present: true},
		{op: Op{Kind: OpSet, Key: "b", Value: "zz"}, key: "b", want: "zz", present: true},
		{op: Op{Kind: OpInc, Key: "b"}, key: "b", want: "1", present: true}, // non-integer resets
		{op: Op{Kind: OpDel, Key: "a"}, key: "a", want: "", present: false},
	}
	for i, st := range steps {
		kv.Apply(st.op)
		got, ok := kv.Get(st.key)
		if ok != st.present || got != st.want {
			t.Fatalf("step %d (%v): got (%q, %v), want (%q, %v)", i, st.op, got, ok, st.want, st.present)
		}
	}
	if kv.Len() != 1 {
		t.Fatalf("Len = %d", kv.Len())
	}
	if kv.Fingerprint() != "b=1;" {
		t.Fatalf("Fingerprint = %q", kv.Fingerprint())
	}
}

func TestKVFingerprintCanonical(t *testing.T) {
	a, b := NewKV(), NewKV()
	a.Apply(Op{Kind: OpSet, Key: "x", Value: "1"})
	a.Apply(Op{Kind: OpSet, Key: "y", Value: "2"})
	b.Apply(Op{Kind: OpSet, Key: "y", Value: "2"})
	b.Apply(Op{Kind: OpSet, Key: "x", Value: "1"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
}

func TestOpStrings(t *testing.T) {
	if (Op{Kind: OpSet, Key: "k", Value: "v"}).String() != "set k=v" {
		t.Fatal("set rendering")
	}
	if (Op{Kind: OpDel, Key: "k"}).String() != "del k" {
		t.Fatal("del rendering")
	}
	if (Op{Kind: OpInc, Key: "k"}).String() != "inc k" {
		t.Fatal("inc rendering")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown kind rendering")
	}
}
