package des

// The chaos layer ports the PR 4 fault model into the message-passing
// simulator: seeded deterministic crash schedules for protocol processes
// and for the memory-server node, with durable (state survives) and
// amnesiac (state lost) restart variants, plus the client-side retry
// policy that survives the resulting RPC timeouts. Everything here is a
// pure function of the configuration — chaos randomness comes from its
// own named fork of the master seed, disjoint from both the network's
// and every process's protocol stream, so the chaos adversary stays
// oblivious and every run replays byte-identically.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ServerNode is the chaos-schedule target naming the memory server.
const ServerNode int32 = serverID

// RestartKind selects what survives a crash.
type RestartKind uint8

const (
	// RestartDurable brings the node back with its state intact: a
	// process resumes its phase machine exactly where the crash parked
	// it (retransmitting its outstanding request, whose reply may have
	// been lost while it was down); the server keeps every register and
	// its dedup cache.
	RestartDurable RestartKind = iota
	// RestartAmnesiac loses all local state. A process restarts its
	// protocol from the top under a fresh incarnation: its RNG is
	// reseeded from an incarnation-keyed fork of its base seed, it
	// re-establishes its RPC session with the server (a resync
	// handshake), and re-reads the persistent shared registers as the
	// protocol re-runs — the PR 4 crash-recovery-with-amnesia semantics
	// in message-passing form. An amnesiac *server* restart instead
	// wipes every register and the dedup cache; that breaks the atomic
	// shared-memory model the proofs assume, so safety violations are
	// expected findings there, not bugs.
	RestartAmnesiac
)

func (k RestartKind) String() string {
	switch k {
	case RestartDurable:
		return "durable"
	case RestartAmnesiac:
		return "amnesiac"
	}
	return fmt.Sprintf("RestartKind(%d)", int(k))
}

// ParseRestartKind parses "durable" or "amnesiac".
func ParseRestartKind(s string) (RestartKind, error) {
	switch s {
	case "durable":
		return RestartDurable, nil
	case "amnesiac":
		return RestartAmnesiac, nil
	}
	return 0, fmt.Errorf("des: unknown restart kind %q (want durable or amnesiac)", s)
}

// ChaosEvent is one scheduled crash: Target goes down at virtual time At
// for Down, then comes back under the Restart variant. While a node is
// down every message delivered to it is discarded; clients recover
// through the retry policy.
type ChaosEvent struct {
	// Target is a process id in [0, n), or ServerNode (-1) for the
	// memory server.
	Target int32
	At     time.Duration
	Down   time.Duration
	// Restart selects durable or amnesiac recovery for this crash.
	Restart RestartKind
}

func (e ChaosEvent) String() string {
	who := fmt.Sprintf("proc %d", e.Target)
	if e.Target == ServerNode {
		who = "server"
	}
	return fmt.Sprintf("%s down [%v, %v) restart %s", who, e.At, e.At+e.Down, e.Restart)
}

// ChaosConfig describes the crash schedule of a run: either an explicit
// event list, or a seeded plan the engine materializes deterministically
// from the run seed. The zero value means no crashes.
type ChaosConfig struct {
	// Events is an explicit crash schedule; when non-empty it is used
	// verbatim and the plan fields below are ignored. Repro artifacts
	// always record the materialized explicit schedule.
	Events []ChaosEvent

	// ProcRate is the fraction of processes (Bernoulli, per process)
	// that crash once at a uniform time in [0, Horizon).
	ProcRate float64
	// ProcRestart is the restart variant for process crashes.
	ProcRestart RestartKind
	// ServerWindows is the number of memory-server crash windows,
	// stratified across [0, Horizon) so they tend not to overlap.
	ServerWindows int
	// ServerRestart is the restart variant for server crashes; amnesiac
	// wipes the registers (the weakened, safety-breaking regime).
	ServerRestart RestartKind
	// Horizon bounds crash times (0 = 40ms). Crashes stop after it, so
	// termination stays almost-sure.
	Horizon time.Duration
	// MeanDown is the mean crash duration, exponentially distributed
	// (0 = 8ms).
	MeanDown time.Duration
}

// Active reports whether the configuration schedules any crashes.
func (c ChaosConfig) Active() bool {
	return len(c.Events) > 0 || c.ProcRate > 0 || c.ServerWindows > 0
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if !c.Active() {
		return c
	}
	if c.Horizon <= 0 {
		c.Horizon = 40 * time.Millisecond
	}
	if c.MeanDown <= 0 {
		c.MeanDown = 8 * time.Millisecond
	}
	return c
}

func (c ChaosConfig) validate(n int) error {
	// The >=/<= shapes deliberately reject NaN, which would otherwise
	// slip through naive range checks.
	if !(c.ProcRate >= 0 && c.ProcRate <= 1) {
		return fmt.Errorf("des: chaos proc crash rate must be in [0, 1], got %g", c.ProcRate)
	}
	if c.ServerWindows < 0 {
		return fmt.Errorf("des: chaos server windows must be non-negative, got %d", c.ServerWindows)
	}
	if c.ProcRestart > RestartAmnesiac || c.ServerRestart > RestartAmnesiac {
		return fmt.Errorf("des: unknown restart kind in chaos config")
	}
	for i, e := range c.Events {
		if e.Target < ServerNode || int(e.Target) >= n {
			return fmt.Errorf("des: chaos event %d targets node %d (want %d..%d)", i, e.Target, ServerNode, n-1)
		}
		if e.At < 0 {
			return fmt.Errorf("des: chaos event %d crashes at negative time %v", i, e.At)
		}
		if e.Down <= 0 {
			return fmt.Errorf("des: chaos event %d has non-positive downtime %v; crashes must heal", i, e.Down)
		}
		if e.Restart > RestartAmnesiac {
			return fmt.Errorf("des: chaos event %d has unknown restart kind %d", i, e.Restart)
		}
	}
	return nil
}

// normalizeChaos sorts a schedule into the canonical order the engine
// consumes and artifacts record: (At, Target, Down).
func normalizeChaos(events []ChaosEvent) []ChaosEvent {
	out := append([]ChaosEvent(nil), events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Down < out[j].Down
	})
	return out
}

// materializeChaos turns a plan into the explicit schedule for one run:
// each process crashes with probability ProcRate at a uniform time in
// [0, Horizon) for an exponential downtime; server windows are
// stratified across the horizon. Deterministic in (plan, rng state).
func materializeChaos(c ChaosConfig, n int, rng *xrand.Rand) []ChaosEvent {
	if len(c.Events) > 0 {
		return normalizeChaos(c.Events)
	}
	c = c.withDefaults()
	horizon := float64(c.Horizon.Nanoseconds())
	mean := float64(c.MeanDown.Nanoseconds())
	expDown := func() time.Duration {
		d := time.Duration(-mean * math.Log(1-rng.Float64()))
		if d < time.Microsecond {
			d = time.Microsecond
		}
		return d
	}
	var events []ChaosEvent
	if c.ProcRate > 0 {
		for i := 0; i < n; i++ {
			if !rng.Bernoulli(c.ProcRate) {
				continue
			}
			events = append(events, ChaosEvent{
				Target:  int32(i),
				At:      time.Duration(rng.Float64() * horizon),
				Down:    expDown(),
				Restart: c.ProcRestart,
			})
		}
	}
	for w := 0; w < c.ServerWindows; w++ {
		stride := horizon / float64(c.ServerWindows)
		at := float64(w)*stride + rng.Float64()*stride
		events = append(events, ChaosEvent{
			Target:  ServerNode,
			At:      time.Duration(at),
			Down:    expDown(),
			Restart: c.ServerRestart,
		})
	}
	return normalizeChaos(events)
}

// ChaosSchedule materializes the explicit crash schedule this
// configuration's run will execute — a pure function of the Config, so
// callers (repro builders, shrinkers) see exactly what Run will do.
func (c Config) ChaosSchedule() ([]ChaosEvent, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if !c.Chaos.Active() {
		return nil, nil
	}
	root := xrand.New(c.Seed)
	root.ForkNamed(0x4e57)  // network fork: keep draw order aligned with Run
	root.ForkNamed(0xa190)  // per-process fork
	root.ForkNamed(0x4a77)  // retry-jitter fork
	chaosRng := root.ForkNamed(0xc405)
	return materializeChaos(c.Chaos, c.N, chaosRng), nil
}

// ParseChaosSpec parses the -des-crash syntax: comma-separated
// "proc:<rate>" and/or "server:<windows>", optionally tuned with
// "horizon:<dur>" and "down:<dur>", e.g. "proc:0.2,server:1" or
// "server:2,horizon:48ms,down:2ms".
func ParseChaosSpec(s string) (ChaosConfig, error) {
	var c ChaosConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			return ChaosConfig{}, fmt.Errorf("des: bad crash spec %q (want proc:<rate> or server:<windows>, e.g. proc:0.2,server:1)", part)
		}
		switch key {
		case "proc":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ChaosConfig{}, fmt.Errorf("des: bad proc crash rate %q: %v", val, err)
			}
			if !(rate > 0 && rate <= 1) {
				return ChaosConfig{}, fmt.Errorf("des: proc crash rate must be in (0, 1], got %q", val)
			}
			c.ProcRate = rate
		case "server":
			w, err := strconv.Atoi(val)
			if err != nil || w < 1 {
				return ChaosConfig{}, fmt.Errorf("des: bad server crash window count %q (want a positive integer)", val)
			}
			c.ServerWindows = w
		case "horizon":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return ChaosConfig{}, fmt.Errorf("des: bad crash horizon %q (want a positive duration)", val)
			}
			c.Horizon = d
		case "down":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return ChaosConfig{}, fmt.Errorf("des: bad mean downtime %q (want a positive duration)", val)
			}
			c.MeanDown = d
		default:
			return ChaosConfig{}, fmt.Errorf("des: unknown crash target %q (want proc, server, horizon, or down)", key)
		}
	}
	if !c.Active() {
		return ChaosConfig{}, fmt.Errorf("des: empty crash spec %q", s)
	}
	return c, nil
}

// RetryPolicy tunes how clients survive lost replies and server crash
// windows. Zero fields take the engine defaults, which reproduce the
// pre-chaos retransmission behavior exactly.
type RetryPolicy struct {
	// RTO is the initial retransmission timeout (0 = 8x the mean
	// one-way latency, floored at 1us).
	RTO time.Duration
	// Backoff multiplies the timeout after each retransmission
	// (0 = 2).
	Backoff float64
	// Cap bounds the backed-off timeout (0 = 64x the initial RTO).
	Cap time.Duration
	// Jitter in [0, 1) inflates every armed timeout by an independent
	// uniform fraction drawn from the retry stream — a named xrand fork
	// disjoint from the network and protocol streams (0 = none).
	Jitter float64
	// MaxRetries caps retransmissions per operation; on exhaustion the
	// process gives up — it stops participating and its outcome is
	// surfaced per-process instead of hanging the event loop
	// (0 = retry forever).
	MaxRetries int
}

func (r RetryPolicy) validate() error {
	if r.RTO < 0 {
		return fmt.Errorf("des: retry RTO must be non-negative, got %v", r.RTO)
	}
	if r.Cap < 0 {
		return fmt.Errorf("des: retry cap must be non-negative, got %v", r.Cap)
	}
	if r.Backoff != 0 && !(r.Backoff >= 1 && r.Backoff <= 64) {
		return fmt.Errorf("des: retry backoff must be in [1, 64] (or 0 for the default 2), got %g", r.Backoff)
	}
	if !(r.Jitter >= 0 && r.Jitter < 1) {
		return fmt.Errorf("des: retry jitter must be in [0, 1), got %g", r.Jitter)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("des: retry limit must be non-negative, got %d", r.MaxRetries)
	}
	return nil
}

// ShrinkChaos reduces a failing crash schedule in the ddmin style of
// fault.Shrink: repro must return true when the failure reproduces under
// the candidate schedule. Chunk deletion first (halves down to single
// events, repeated to a fixed point), then downtime minimization by
// halving toward a 1us floor. Crash times are left untouched — moving a
// crash in virtual time changes which execution it perturbs, which is
// not a reduction. budget caps repro invocations; the search is
// deterministic, so a shrunk artifact replays exactly like the schedule
// it came from.
func ShrinkChaos(events []ChaosEvent, budget int, repro func([]ChaosEvent) bool) []ChaosEvent {
	if len(events) == 0 {
		return events
	}
	cur := normalizeChaos(events)
	calls := 0
	try := func(cand []ChaosEvent) bool {
		if calls >= budget {
			return false
		}
		calls++
		return repro(cand)
	}

	// Phase 1: chunk deletion.
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		reduced := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]ChaosEvent, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && try(cand) {
				cur = cand
				reduced = true
				// Keep start in place: the next chunk slid into it.
			} else {
				start = end
			}
		}
		if calls >= budget {
			return cur
		}
		if chunk == 1 {
			if !reduced {
				break
			}
			continue
		}
		chunk /= 2
	}

	// Phase 2: downtime minimization.
	for i := range cur {
		for cur[i].Down > time.Microsecond && calls < budget {
			cand := append([]ChaosEvent(nil), cur...)
			next := cand[i].Down / 2
			if next < time.Microsecond {
				next = time.Microsecond
			}
			cand[i].Down = next
			if !try(cand) {
				break
			}
			cur = cand
		}
	}
	return cur
}
