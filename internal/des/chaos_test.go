package des

import (
	"reflect"
	"testing"
	"time"
)

func TestChaosReplayDeterminism(t *testing.T) {
	cfg := Config{
		N:        48,
		Protocol: ProtoSifter,
		Seed:     1201,
		Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}, Loss: 0.05},
		Chaos: ChaosConfig{
			ProcRate:      0.25,
			ProcRestart:   RestartAmnesiac,
			ServerWindows: 1,
			ServerRestart: RestartDurable,
			MeanDown:      2 * time.Millisecond,
		},
		Retry: RetryPolicy{Jitter: 0.3},
	}
	a, errA := Run(cfg)
	b, errB := Run(cfg)
	requireClean(t, a, errA)
	requireClean(t, b, errB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed and chaos config gave different results:\n%+v\nvs\n%+v", a, b)
	}
	if a.Crashes == 0 || a.Restarts != a.Crashes {
		t.Fatalf("chaos accounting implausible: %+v", a)
	}
	cfg.Seed = 1202
	c, errC := Run(cfg)
	requireClean(t, c, errC)
	if reflect.DeepEqual(a.Steps, c.Steps) && a.VirtualTime == c.VirtualTime {
		t.Fatalf("different seeds gave identical chaos executions")
	}
}

func TestExplicitScheduleMatchesMaterializedPlan(t *testing.T) {
	// Materializing the plan up front and feeding it back as an explicit
	// schedule must reproduce the run bit-for-bit: ChaosSchedule is the
	// contract that repro builders and shrinkers see what Run does.
	cfg := Config{
		N:        32,
		Protocol: ProtoPriorityMax,
		Seed:     77,
		Chaos: ChaosConfig{
			ProcRate:      0.3,
			ProcRestart:   RestartDurable,
			ServerWindows: 2,
			ServerRestart: RestartDurable,
			MeanDown:      time.Millisecond,
		},
	}
	events, err := cfg.ChaosSchedule()
	if err != nil {
		t.Fatalf("ChaosSchedule: %v", err)
	}
	if len(events) == 0 {
		t.Fatalf("plan materialized no crashes at rate 0.3 over 32 processes")
	}
	explicit := cfg
	explicit.Chaos = ChaosConfig{Events: events}
	a, errA := Run(cfg)
	b, errB := Run(explicit)
	requireClean(t, a, errA)
	requireClean(t, b, errB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explicit schedule diverged from its plan:\n%+v\nvs\n%+v", a, b)
	}
}

func TestProcDurableRestartResumes(t *testing.T) {
	// Crash a third of the processes durably mid-run: they must resume
	// their parked state machines (no session resync) and everyone still
	// decides cleanly.
	var events []ChaosEvent
	for i := int32(0); i < 16; i += 3 {
		events = append(events, ChaosEvent{
			Target: i, At: time.Duration(i) * time.Millisecond / 2, Down: 4 * time.Millisecond, Restart: RestartDurable,
		})
	}
	res, err := Run(Config{
		N:        16,
		Protocol: ProtoSifter,
		Seed:     21,
		Chaos:    ChaosConfig{Events: events},
	})
	requireClean(t, res, err)
	if res.Crashes != int64(len(events)) || res.Restarts != res.Crashes {
		t.Fatalf("crashes/restarts = %d/%d, want %d each", res.Crashes, res.Restarts, len(events))
	}
	if res.Resyncs != 0 {
		t.Fatalf("durable restarts performed %d session resyncs, want 0", res.Resyncs)
	}
	if res.Wipes != 0 {
		t.Fatalf("process crashes wiped the server %d times", res.Wipes)
	}
}

func TestProcAmnesiacRestartResyncs(t *testing.T) {
	// Amnesiac processes restart the protocol from scratch under a new
	// incarnation: each live restart shows up as a session resync, and
	// agreement must still hold (the monitors watch exactly that).
	events := []ChaosEvent{
		{Target: 2, At: 1 * time.Millisecond, Down: 3 * time.Millisecond, Restart: RestartAmnesiac},
		{Target: 7, At: 2 * time.Millisecond, Down: 2 * time.Millisecond, Restart: RestartAmnesiac},
		{Target: 11, At: 500 * time.Microsecond, Down: 5 * time.Millisecond, Restart: RestartAmnesiac},
	}
	res, err := Run(Config{
		N:        16,
		Protocol: ProtoSifterHalf,
		Seed:     33,
		Chaos:    ChaosConfig{Events: events},
	})
	requireClean(t, res, err)
	if res.Resyncs == 0 {
		t.Fatalf("amnesiac restarts performed no session resyncs: %+v", res)
	}
	if res.Resyncs > int64(len(events)) {
		t.Fatalf("resyncs = %d > %d scheduled amnesiac crashes", res.Resyncs, len(events))
	}
}

func TestServerCrashWindowHeals(t *testing.T) {
	// The server is down for a fixed window: in-flight RPCs are discarded
	// and clients must ride the retry policy through it. The run finishes
	// after the window with retransmissions and chaos drops on the books.
	res, err := Run(Config{
		N:        16,
		Protocol: ProtoSifter,
		Seed:     19,
		Net:      NetConfig{Latency: LatencyDist{Kind: LatFixed, Mean: time.Millisecond}},
		Chaos: ChaosConfig{Events: []ChaosEvent{
			{Target: ServerNode, At: time.Millisecond, Down: 10 * time.Millisecond, Restart: RestartDurable},
		}},
	})
	requireClean(t, res, err)
	if res.ChaosDrops == 0 {
		t.Fatalf("server crash window discarded no deliveries: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Fatalf("clients crossed a server outage without retransmitting: %+v", res)
	}
	if res.VirtualTime < 11*time.Millisecond {
		t.Fatalf("run finished at %v, inside the server outage [1ms, 11ms)", res.VirtualTime)
	}
	if res.Wipes != 0 {
		t.Fatalf("durable server restart wiped registers: %+v", res)
	}
}

func TestGiveUpSurfacesGracefulDegradation(t *testing.T) {
	// With a bounded retry budget and a server outage longer than the
	// budget can bridge, processes give up instead of hanging the event
	// loop, and their outcome is surfaced per process.
	res, err := Run(Config{
		N:        8,
		Protocol: ProtoSifter,
		Seed:     101,
		Net:      NetConfig{Latency: LatencyDist{Kind: LatFixed, Mean: time.Millisecond}},
		Chaos: ChaosConfig{Events: []ChaosEvent{
			{Target: ServerNode, At: 500 * time.Microsecond, Down: time.Second, Restart: RestartDurable},
		}},
		Retry: RetryPolicy{MaxRetries: 3},
	})
	if err != nil {
		t.Fatalf("give-up run errored instead of degrading gracefully: %v", err)
	}
	if res.GaveUp == 0 {
		t.Fatalf("second-long outage with 3 retries: nobody gave up: %+v", res)
	}
	if res.AllDecided {
		t.Fatalf("AllDecided with %d processes given up", res.GaveUp)
	}
	gaveUp := 0
	for _, o := range res.Outcomes {
		if o == OutcomeGaveUp {
			gaveUp++
		}
	}
	if gaveUp != res.GaveUp {
		t.Fatalf("Outcomes records %d give-ups, Result says %d", gaveUp, res.GaveUp)
	}
	// Giving up must not break safety for whoever did decide.
	if len(res.Violations) > 0 {
		t.Fatalf("give-up run violated safety: %v", res.Violations)
	}
}

func TestServerAmnesiaIsWeakenedRegime(t *testing.T) {
	// An amnesiac server restart wipes every register — the atomic
	// shared-memory model the proofs assume is gone, so this regime is
	// allowed (expected, even) to trip the safety monitors. The test pins
	// the mechanics: the wipe happens, sessions re-form via the
	// gap-accepting dedup rule, and the run still terminates one way or
	// the other rather than hanging.
	// A wipe at 40ms lands in the adopt-commit window of the ~55ms run,
	// where erasing the conflict-detector flags splits decisions.
	found := false
	for seed := uint64(1); seed <= 20; seed++ {
		res, _ := Run(Config{
			N:        16,
			Protocol: ProtoSifter,
			Seed:     seed,
			Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}},
			Chaos: ChaosConfig{Events: []ChaosEvent{
				{Target: ServerNode, At: 40 * time.Millisecond, Down: 2 * time.Millisecond, Restart: RestartAmnesiac},
			}},
			MaxEvents: 1 << 20,
		})
		if res.Wipes != 1 {
			t.Fatalf("seed %d: wipes = %d, want 1", seed, res.Wipes)
		}
		if len(res.Violations) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no seed in 1..20 tripped a monitor under server amnesia; the weakened regime is not weakened")
	}
}

func TestChaosScheduleValidation(t *testing.T) {
	nan := func() float64 { z := 0.0; return z / z }()
	bad := []struct {
		name string
		cfg  Config
	}{
		{"NaN proc rate", Config{N: 4, Protocol: ProtoSifter, Chaos: ChaosConfig{ProcRate: nan}}},
		{"proc rate above one", Config{N: 4, Protocol: ProtoSifter, Chaos: ChaosConfig{ProcRate: 1.5}}},
		{"negative windows", Config{N: 4, Protocol: ProtoSifter, Chaos: ChaosConfig{ServerWindows: -1}}},
		{"event target out of range", Config{N: 4, Protocol: ProtoSifter,
			Chaos: ChaosConfig{Events: []ChaosEvent{{Target: 4, At: 0, Down: time.Millisecond}}}}},
		{"event target below server", Config{N: 4, Protocol: ProtoSifter,
			Chaos: ChaosConfig{Events: []ChaosEvent{{Target: -2, At: 0, Down: time.Millisecond}}}}},
		{"event never heals", Config{N: 4, Protocol: ProtoSifter,
			Chaos: ChaosConfig{Events: []ChaosEvent{{Target: 0, At: 0, Down: 0}}}}},
		{"negative crash time", Config{N: 4, Protocol: ProtoSifter,
			Chaos: ChaosConfig{Events: []ChaosEvent{{Target: 0, At: -time.Millisecond, Down: time.Millisecond}}}}},
		{"NaN jitter", Config{N: 4, Protocol: ProtoSifter, Retry: RetryPolicy{Jitter: nan}}},
		{"jitter of one", Config{N: 4, Protocol: ProtoSifter, Retry: RetryPolicy{Jitter: 1}}},
		{"backoff below one", Config{N: 4, Protocol: ProtoSifter, Retry: RetryPolicy{Backoff: 0.5}}},
		{"negative retries", Config{N: 4, Protocol: ProtoSifter, Retry: RetryPolicy{MaxRetries: -1}}},
		{"negative RTO", Config{N: 4, Protocol: ProtoSifter, Retry: RetryPolicy{RTO: -time.Millisecond}}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); err == nil {
				t.Fatalf("config %+v validated", tt.cfg)
			}
		})
	}
}

func TestParseChaosSpec(t *testing.T) {
	got, err := ParseChaosSpec("proc:0.2,server:1")
	if err != nil || got.ProcRate != 0.2 || got.ServerWindows != 1 {
		t.Fatalf("ParseChaosSpec = %+v, %v", got, err)
	}
	if _, err := ParseChaosSpec("server:3"); err != nil {
		t.Fatalf("server-only spec rejected: %v", err)
	}
	for _, bad := range []string{"", "proc", "proc:0", "proc:1.5", "proc:NaN", "server:0", "server:-1", "disk:1", "proc:0.2;server:1"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("ParseChaosSpec(%q) succeeded", bad)
		}
	}
}

func TestShrinkChaosFindsMinimalSchedule(t *testing.T) {
	// Synthetic failure: reproduces iff the schedule still contains a
	// server crash. ddmin must strip all twelve process crashes and hand
	// back the lone server event with its downtime halved to the floor.
	var events []ChaosEvent
	for i := int32(0); i < 12; i++ {
		events = append(events, ChaosEvent{Target: i, At: time.Duration(i) * time.Millisecond, Down: 8 * time.Millisecond, Restart: RestartDurable})
	}
	events = append(events, ChaosEvent{Target: ServerNode, At: 5 * time.Millisecond, Down: 8 * time.Millisecond, Restart: RestartAmnesiac})
	calls := 0
	shrunk := ShrinkChaos(events, 512, func(cand []ChaosEvent) bool {
		calls++
		for _, e := range cand {
			if e.Target == ServerNode {
				return true
			}
		}
		return false
	})
	if len(shrunk) != 1 || shrunk[0].Target != ServerNode {
		t.Fatalf("shrunk to %v, want the lone server event", shrunk)
	}
	if shrunk[0].Down != time.Microsecond {
		t.Fatalf("downtime minimized to %v, want the 1us floor", shrunk[0].Down)
	}
	if calls > 512 {
		t.Fatalf("shrinker exceeded its budget: %d calls", calls)
	}
	// The shrinker must never call repro with an empty candidate.
	ShrinkChaos(events[:1], 64, func(cand []ChaosEvent) bool {
		if len(cand) == 0 {
			t.Fatalf("repro called with empty schedule")
		}
		return false
	})
}

// findWeakenedFailure searches seeds for a server-amnesia run that trips
// the safety monitors, returning the config and its violations.
func findWeakenedFailure(t *testing.T) (Config, []ChaosEvent, Result) {
	t.Helper()
	for seed := uint64(1); seed <= 200; seed++ {
		cfg := Config{
			N:        16,
			Protocol: ProtoSifter,
			Seed:     seed,
			Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}},
			Chaos: ChaosConfig{
				// Two windows stratified across the run's ~55ms span so
				// one tends to land in the adopt-commit tail, where a
				// register wipe can split decisions.
				ServerWindows: 2,
				ServerRestart: RestartAmnesiac,
				Horizon:       48 * time.Millisecond,
				MeanDown:      2 * time.Millisecond,
			},
			MaxEvents: 1 << 20,
		}
		res, _ := Run(cfg)
		if len(res.Violations) > 0 {
			events, err := cfg.ChaosSchedule()
			if err != nil {
				t.Fatalf("ChaosSchedule: %v", err)
			}
			return cfg, events, res
		}
	}
	t.Skip("no seed in 1..200 tripped a monitor under server amnesia")
	return Config{}, nil, Result{}
}

func TestFaultReproRoundTripAndReplay(t *testing.T) {
	cfg, events, res := findWeakenedFailure(t)

	// Shrink against the real engine: the failure is "any violation".
	shrunk := ShrinkChaos(events, 64, func(cand []ChaosEvent) bool {
		c := cfg
		c.Chaos = ChaosConfig{Events: cand}
		r, _ := Run(c)
		return len(r.Violations) > 0
	})
	c := cfg
	c.Chaos = ChaosConfig{Events: shrunk}
	final, _ := Run(c)
	if len(final.Violations) == 0 {
		t.Fatalf("shrunk schedule no longer reproduces")
	}

	repro := BuildRepro(c, shrunk, final.Violations)
	data, err := repro.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeFaultRepro(data)
	if err != nil {
		t.Fatalf("DecodeFaultRepro: %v", err)
	}
	if _, err := back.Replay(); err != nil {
		t.Fatalf("Replay: %v", err)
	}

	// Byte-stability: encode → decode → encode is the identity.
	data2, err := back.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("artifact is not byte-stable across a decode/encode cycle")
	}

	// A tampered artifact must fail replay, not silently pass.
	back.Seed++
	if _, err := back.Replay(); err == nil {
		t.Fatalf("tampered artifact replayed clean")
	}
	back.Seed--

	// Save/Load round trip through the filesystem.
	path := t.TempDir() + "/repro.json"
	if err := repro.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadFaultRepro(path)
	if err != nil {
		t.Fatalf("LoadFaultRepro: %v", err)
	}
	if _, err := loaded.Replay(); err != nil {
		t.Fatalf("replay of loaded artifact: %v", err)
	}
	if !reflect.DeepEqual(loaded.Violations, repro.Violations) {
		t.Fatalf("violations did not survive the filesystem round trip")
	}
	if res.Wipes == 0 {
		t.Fatalf("weakened run recorded no wipes: %+v", res)
	}
}

func TestDedupExactlyOnceAcrossRetransmits(t *testing.T) {
	// Force duplicate deliveries: a fixed 1ms one-way latency means a 2ms
	// round trip, so a 1.5ms RTO retransmits every operation before its
	// reply lands — every op reaches the server at least twice. The
	// partition adds retransmit-after-heal traffic on top. Exactly-once
	// means the applied-op count equals the logical step count exactly,
	// with the surplus absorbed by the dedup cache.
	res, err := Run(Config{
		N:        16,
		Protocol: ProtoSifter,
		Seed:     7,
		Net: NetConfig{
			Latency:    LatencyDist{Kind: LatFixed, Mean: time.Millisecond},
			Partitions: []Partition{{From: 3 * time.Millisecond, Until: 10 * time.Millisecond, Frac: 0.5}},
		},
		Retry: RetryPolicy{RTO: 1500 * time.Microsecond},
	})
	requireClean(t, res, err)
	if res.OpsApplied != res.TotalSteps() {
		t.Fatalf("applied %d ops for %d logical steps; exactly-once broken", res.OpsApplied, res.TotalSteps())
	}
	if res.DupDrops == 0 {
		t.Fatalf("sub-RTT timeout produced no duplicates to absorb: %+v", res)
	}
	if res.MsgsBlocked == 0 {
		t.Fatalf("partition blocked no messages: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Fatalf("no retransmissions recorded: %+v", res)
	}
}

func TestDedupExactlyOnceUnderChaos(t *testing.T) {
	// The exactly-once ledger under crashes: durable restarts retransmit
	// their outstanding request (it always completes), amnesiac restarts
	// open a new incarnation (whose opSync resyncs are applied ops but
	// not protocol steps) and may abandon the old incarnation's single
	// outstanding op before the server ever saw it. So as long as the
	// server never wipes: no op applies twice (applied <= issued), and
	// the only ops that can fail to apply are the abandoned ones — at
	// most one per crash.
	res, err := Run(Config{
		N:        24,
		Protocol: ProtoPriorityMax,
		Seed:     13,
		Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}, Loss: 0.1},
		Chaos: ChaosConfig{
			ProcRate:      0.4,
			ProcRestart:   RestartAmnesiac,
			ServerWindows: 1,
			ServerRestart: RestartDurable,
			Horizon:       20 * time.Millisecond,
			MeanDown:      3 * time.Millisecond,
		},
	})
	requireClean(t, res, err)
	issued := res.TotalSteps() + res.Resyncs
	if res.OpsApplied > issued {
		t.Fatalf("applied %d ops for %d issued; some op applied twice", res.OpsApplied, issued)
	}
	if deficit := issued - res.OpsApplied; deficit > res.Crashes {
		t.Fatalf("%d issued ops never applied across %d crashes; more than the abandoned in-flight ops",
			deficit, res.Crashes)
	}
	if res.Crashes == 0 {
		t.Fatalf("chaos plan materialized no crashes: %+v", res)
	}
}
