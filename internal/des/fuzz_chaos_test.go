package des

import (
	"reflect"
	"testing"
	"time"
)

// FuzzDESCrashSchedule drives the engine across the (crash schedule,
// restart variant, retry policy, protocol, seed) space under atomic
// semantics — the server's restarts are always durable, so the shared
// objects never lose state — and asserts the chaos contract: every run
// replays byte-identically from its configuration, the safety monitors
// stay quiet, and no run wedges the event loop (it either decides
// everywhere or surfaces per-process give-ups). Amnesiac *server*
// restarts are deliberately out of scope: wiping the registers breaks
// the atomic model and violations there are findings, not bugs.
func FuzzDESCrashSchedule(f *testing.F) {
	f.Add(uint64(1), 0.0, uint8(0), uint32(0), 0.0, uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), 0.3, uint8(1), uint32(1), 0.2, uint8(4), uint8(20), uint8(1))
	f.Add(uint64(3), 1.0, uint8(0), uint32(3), 0.9, uint8(0), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, procRate float64, procRestart uint8,
		serverWindows uint32, jitter float64, meanDownMs uint8, maxRetries uint8, protoIdx uint8) {
		protocol := Protocols()[int(protoIdx)%len(Protocols())]
		cfg := Config{
			N:        16,
			Protocol: protocol,
			Seed:     seed,
			Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}},
			// A generous but finite budget; admissible chaos at n=16
			// needs a tiny fraction of this.
			MaxEvents: 1 << 22,
		}
		// Clamp into the admissible region: rates in [0, 1], finite
		// downtimes, jitter below 1. NaN guards first — NaN inputs are
		// the validator's job, and the validator has its own tests.
		if procRate == procRate && procRate > 0 {
			if procRate > 1 {
				procRate = 1
			}
			cfg.Chaos.ProcRate = procRate
			cfg.Chaos.ProcRestart = RestartKind(procRestart % 2)
		}
		cfg.Chaos.ServerWindows = int(serverWindows % 4)
		cfg.Chaos.ServerRestart = RestartDurable // atomic semantics only
		if cfg.Chaos.Active() {
			cfg.Chaos.MeanDown = time.Duration(int(meanDownMs)%8+1) * time.Millisecond
			cfg.Chaos.Horizon = 30 * time.Millisecond
		}
		if jitter == jitter && jitter > 0 {
			if jitter >= 1 {
				jitter = 0.99
			}
			cfg.Retry.Jitter = jitter
		}
		// A retry budget can legitimately produce give-ups (that is the
		// graceful-degradation path, not a failure); keep it generous
		// enough that it only triggers under genuinely long outages.
		if maxRetries > 0 {
			cfg.Retry.MaxRetries = int(maxRetries%64) + 16
		}

		a, errA := Run(cfg)
		b, errB := Run(cfg)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("replay determinism broken: errors %v vs %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("replay determinism broken under %+v:\n%+v\nvs\n%+v", cfg.Chaos, a, b)
		}
		if errA != nil {
			t.Fatalf("admissible chaos config failed to terminate: %v (chaos %+v)", errA, cfg.Chaos)
		}
		if len(a.Violations) > 0 {
			t.Fatalf("safety violations under atomic semantics, chaos %+v: %v", cfg.Chaos, a.Violations)
		}
		if !a.AllDecided && a.GaveUp == 0 {
			t.Fatalf("run ended with undecided processes and no give-ups: %+v", a)
		}
		for i, o := range a.Outcomes {
			if o == OutcomeUndecided {
				t.Fatalf("process %d left undecided without giving up: %+v", i, a)
			}
		}
	})
}
