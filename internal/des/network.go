package des

import (
	"math"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// serverID is the memory server's node id. Processes are 0..n-1.
const serverID int32 = -1

// activePartition is a Partition resolved against a concrete n: the cut
// isolates ids in [lowID, n) during [from, until).
type activePartition struct {
	from, until int64 // virtual ns
	lowID       int32
}

// network routes messages: partition check, then loss, then a latency
// sample, all drawn from the network's own RNG fork in event order —
// deterministic, and independent of every protocol coin flip.
type network struct {
	rng    *xrand.Rand
	kind   LatencyKind
	meanNs float64
	loss   float64
	parts  []activePartition
	// lossy reports whether any message can fail to arrive; it gates the
	// retransmission machinery so clean runs schedule no timers at all.
	lossy bool

	sent, delivered, dropped, blocked int64
}

func newNetwork(cfg NetConfig, n int, rng *xrand.Rand) *network {
	nw := &network{
		rng:    rng,
		kind:   cfg.Latency.Kind,
		meanNs: float64(cfg.Latency.Mean.Nanoseconds()),
		loss:   cfg.Loss,
		lossy:  cfg.Loss > 0 || len(cfg.Partitions) > 0,
	}
	for _, p := range cfg.Partitions {
		iso := int(math.Ceil(p.Frac * float64(n)))
		if iso > n {
			iso = n
		}
		nw.parts = append(nw.parts, activePartition{
			from:  p.From.Nanoseconds(),
			until: p.Until.Nanoseconds(),
			lowID: int32(n - iso),
		})
	}
	return nw
}

// isolated reports whether node id is cut off at virtual time now. The
// server (id < 0) is never isolated.
func (nw *network) isolated(now int64, id int32) bool {
	if id < 0 {
		return false
	}
	for _, p := range nw.parts {
		if now >= p.from && now < p.until && id >= p.lowID {
			return true
		}
	}
	return false
}

// send routes one message from `from` to `to`, scheduling its delivery
// or discarding it. Partition and loss are decided at send time — the
// network model has no in-flight queues to partition retroactively.
func (nw *network) send(q *eventQueue, now int64, from, to int32, m message) {
	nw.sent++
	if len(nw.parts) > 0 && (nw.isolated(now, from) || nw.isolated(now, to)) {
		nw.blocked++
		return
	}
	if nw.loss > 0 && nw.rng.Bernoulli(nw.loss) {
		nw.dropped++
		return
	}
	nw.delivered++
	q.push(now+nw.latency(), to, evDeliver, m)
}

// latency samples one one-way delay in nanoseconds.
func (nw *network) latency() int64 {
	switch nw.kind {
	case LatUniform:
		return int64(nw.rng.Float64() * 2 * nw.meanNs)
	case LatExp:
		// Inverse CDF; Float64 is in [0, 1) so the argument of Log stays
		// positive.
		return int64(-nw.meanNs * math.Log(1-nw.rng.Float64()))
	default:
		return int64(nw.meanNs)
	}
}
