package des

import (
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
)

// opKind names the shared-memory operations the server understands. The
// object space is three pools, addressed by (pool implied by op, index):
//
//   - persona registers (sifter round registers),
//   - persona max registers (priority-max round registers), and
//   - int registers (adopt-commit flags, clean, dirty — presence doubles
//     as the flag bit).
type opKind uint8

const (
	opWriteP opKind = iota // persona register write
	opReadP                // persona register read
	opWriteMax             // max register WriteMax(key, persona)
	opReadMax              // max register ReadMax
	opWriteV               // int register write
	opReadV                // int register read
)

// message is both RPC request and reply (reply=true echoes the request's
// op and opSeq with the result fields filled in). It is carried by value
// inside events.
type message struct {
	op    opKind
	reply bool
	from  int32 // requesting process id
	opSeq uint32
	obj   int32
	key   uint64
	val   int32
	ok    bool
	pers  *persona.Persona[int]
}

// opCtx is the memory.Context under which the server applies operations:
// free (steps are accounted at the client as RPC round trips), exclusive
// (the engine is single-threaded, so the objects' direct representation
// is safe), and carrying the originating process id so the fault
// monitors attribute observations correctly.
type opCtx struct{ pid int }

func (opCtx) Step()           {}
func (opCtx) Exclusive() bool { return true }
func (c opCtx) ID() int       { return c.pid }

// server is the memory node: it owns every shared object and applies
// each logical operation exactly once. Clients are stop-and-wait with
// per-process operation sequence numbers, so dedup needs only the last
// applied sequence and its reply per process: a request with the same
// sequence is a retransmission (re-send the cached reply — the first
// reply may have been lost), anything older is a stale duplicate to
// drop, and exactly lastSeq+1 is new work.
type server struct {
	persRegs []*memory.Register[*persona.Persona[int]]
	maxRegs  []*fault.MonitoredMaxer[*persona.Persona[int]]
	intRegs  []*memory.Register[int]
	mon      *fault.Monitor

	lastSeq  []uint32
	lastRep  []message
	applied  int64
	dupDrops int64
}

func newServer(n int, mon *fault.Monitor) *server {
	return &server{
		mon:     mon,
		lastSeq: make([]uint32, n),
		lastRep: make([]message, n),
	}
}

func (s *server) persReg(i int32) *memory.Register[*persona.Persona[int]] {
	for int(i) >= len(s.persRegs) {
		s.persRegs = append(s.persRegs, memory.NewRegister[*persona.Persona[int]]())
	}
	return s.persRegs[i]
}

func (s *server) maxReg(i int32) *fault.MonitoredMaxer[*persona.Persona[int]] {
	for int(i) >= len(s.maxRegs) {
		s.maxRegs = append(s.maxRegs,
			fault.NewMonitoredMaxer[*persona.Persona[int]](memory.NewMaxRegister[*persona.Persona[int]](), s.mon))
	}
	return s.maxRegs[i]
}

func (s *server) intReg(i int32) *memory.Register[int] {
	for int(i) >= len(s.intRegs) {
		s.intRegs = append(s.intRegs, memory.NewRegister[int]())
	}
	return s.intRegs[i]
}

// handle processes one incoming request and routes the reply back
// through the network.
func (s *server) handle(q *eventQueue, nw *network, now int64, m message) {
	last := s.lastSeq[m.from]
	switch {
	case m.opSeq == last:
		// Retransmitted request whose reply may have been lost.
		s.dupDrops++
		nw.send(q, now, serverID, m.from, s.lastRep[m.from])
		return
	case m.opSeq != last+1:
		// A duplicate older than the client's current operation; its
		// reply was already consumed. Drop.
		s.dupDrops++
		return
	}
	reply := s.apply(m)
	s.lastSeq[m.from] = m.opSeq
	s.lastRep[m.from] = reply
	s.applied++
	nw.send(q, now, serverID, m.from, reply)
}

// apply executes one logical operation against the shared objects.
func (s *server) apply(m message) message {
	ctx := opCtx{pid: int(m.from)}
	r := message{op: m.op, reply: true, from: m.from, opSeq: m.opSeq, obj: m.obj}
	switch m.op {
	case opWriteP:
		s.persReg(m.obj).Write(ctx, m.pers)
	case opReadP:
		r.pers, r.ok = s.persReg(m.obj).Read(ctx)
	case opWriteMax:
		s.maxReg(m.obj).WriteMax(ctx, m.key, m.pers)
	case opReadMax:
		r.key, r.pers, r.ok = s.maxReg(m.obj).ReadMax(ctx)
	case opWriteV:
		s.intReg(m.obj).Write(ctx, int(m.val))
	case opReadV:
		var v int
		v, r.ok = s.intReg(m.obj).Read(ctx)
		r.val = int32(v)
	}
	return r
}

// finish runs the per-object linearizability checks of the monitored max
// registers.
func (s *server) finish() {
	for _, m := range s.maxRegs {
		m.Finish()
	}
}
