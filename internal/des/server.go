package des

import (
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/persona"
)

// opKind names the shared-memory operations the server understands. The
// object space is three pools, addressed by (pool implied by op, index):
//
//   - persona registers (sifter round registers),
//   - persona max registers (priority-max round registers), and
//   - int registers (adopt-commit flags, clean, dirty — presence doubles
//     as the flag bit).
type opKind uint8

const (
	opWriteP opKind = iota // persona register write
	opReadP                // persona register read
	opWriteMax             // max register WriteMax(key, persona)
	opReadMax              // max register ReadMax
	opWriteV               // int register write
	opReadV                // int register read
	opSync                 // session resync after an amnesiac restart
)

// message is both RPC request and reply (reply=true echoes the request's
// op, opSeq, and inc with the result fields filled in). It is carried by
// value inside events.
type message struct {
	op    opKind
	reply bool
	from  int32 // requesting process id
	opSeq uint32
	// inc is the sender's incarnation number: an amnesiac restart bumps
	// it, so the server can fence the dead incarnation's stragglers and
	// the client can ignore stale replies and timers.
	inc  uint32
	obj  int32
	key  uint64
	val  int32
	ok   bool
	pers *persona.Persona[int]
}

// opCtx is the memory.Context under which the server applies operations:
// free (steps are accounted at the client as RPC round trips), exclusive
// (the engine is single-threaded, so the objects' direct representation
// is safe), and carrying the originating process id so the fault
// monitors attribute observations correctly.
type opCtx struct{ pid int }

func (opCtx) Step()           {}
func (opCtx) Exclusive() bool { return true }
func (c opCtx) ID() int       { return c.pid }

// server is the memory node: it owns every shared object and applies
// each logical operation exactly once. Clients are stop-and-wait with
// per-process (incarnation, operation-sequence) pairs, so dedup needs
// only the last applied pair and its reply per process: a request with
// the same sequence is a retransmission (re-send the cached reply — the
// first reply may have been lost), anything older is a stale duplicate
// to drop, and anything newer is new work. Stop-and-wait makes new
// sequences contiguous in the steady state; a gap can only appear after
// this server lost its own dedup cache in an amnesiac restart, in which
// case accepting the gap is what re-admits the (still live) clients. A
// lower incarnation is a dead process's straggler and is fenced; a
// higher one resets the session.
type server struct {
	persRegs []*memory.Register[*persona.Persona[int]]
	maxRegs  []*fault.MonitoredMaxer[*persona.Persona[int]]
	intRegs  []*memory.Register[int]
	mon      *fault.Monitor

	lastInc  []uint32
	lastSeq  []uint32
	lastRep  []message
	applied  int64
	dupDrops int64

	// down marks a crash window: the run loop discards deliveries
	// addressed to a down server, so in-flight RPCs time out at the
	// clients and the retry policy takes over.
	down  bool
	wipes int64
}

func newServer(n int, mon *fault.Monitor) *server {
	return &server{
		mon:     mon,
		lastInc: make([]uint32, n),
		lastSeq: make([]uint32, n),
		lastRep: make([]message, n),
	}
}

func (s *server) persReg(i int32) *memory.Register[*persona.Persona[int]] {
	for int(i) >= len(s.persRegs) {
		s.persRegs = append(s.persRegs, memory.NewRegister[*persona.Persona[int]]())
	}
	return s.persRegs[i]
}

func (s *server) maxReg(i int32) *fault.MonitoredMaxer[*persona.Persona[int]] {
	for int(i) >= len(s.maxRegs) {
		s.maxRegs = append(s.maxRegs,
			fault.NewMonitoredMaxer[*persona.Persona[int]](memory.NewMaxRegister[*persona.Persona[int]](), s.mon))
	}
	return s.maxRegs[i]
}

func (s *server) intReg(i int32) *memory.Register[int] {
	for int(i) >= len(s.intRegs) {
		s.intRegs = append(s.intRegs, memory.NewRegister[int]())
	}
	return s.intRegs[i]
}

// handle processes one incoming request and routes the reply back
// through the network.
func (s *server) handle(q *eventQueue, nw *network, now int64, m message) {
	switch {
	case m.inc < s.lastInc[m.from]:
		// A dead incarnation's straggler; fence it.
		s.dupDrops++
		return
	case m.inc > s.lastInc[m.from]:
		// A new incarnation announces itself: the old session's dedup
		// state is history.
		s.lastInc[m.from] = m.inc
		s.lastSeq[m.from] = 0
		s.lastRep[m.from] = message{}
	}
	last := s.lastSeq[m.from]
	switch {
	case m.opSeq == last:
		// Retransmitted request whose reply may have been lost.
		s.dupDrops++
		nw.send(q, now, serverID, m.from, s.lastRep[m.from])
		return
	case m.opSeq < last:
		// A duplicate older than the client's current operation; its
		// reply was already consumed. Drop.
		s.dupDrops++
		return
	}
	reply := s.apply(m)
	s.lastSeq[m.from] = m.opSeq
	s.lastRep[m.from] = reply
	s.applied++
	nw.send(q, now, serverID, m.from, reply)
}

// apply executes one logical operation against the shared objects.
func (s *server) apply(m message) message {
	ctx := opCtx{pid: int(m.from)}
	r := message{op: m.op, reply: true, from: m.from, opSeq: m.opSeq, inc: m.inc, obj: m.obj}
	switch m.op {
	case opWriteP:
		s.persReg(m.obj).Write(ctx, m.pers)
	case opReadP:
		r.pers, r.ok = s.persReg(m.obj).Read(ctx)
	case opWriteMax:
		s.maxReg(m.obj).WriteMax(ctx, m.key, m.pers)
	case opReadMax:
		r.key, r.pers, r.ok = s.maxReg(m.obj).ReadMax(ctx)
	case opWriteV:
		s.intReg(m.obj).Write(ctx, int(m.val))
	case opReadV:
		var v int
		v, r.ok = s.intReg(m.obj).Read(ctx)
		r.val = int32(v)
	case opSync:
		// Session re-establishment after an amnesiac restart: the
		// incarnation bump above already reset the dedup slot; the ack
		// is the client's cue that the server will accept its fresh
		// sequence numbers.
		r.ok = true
	}
	return r
}

// wipe is an amnesiac server restart: every register and the dedup cache
// are lost. The monitored max registers' recorded histories are checked
// first so pre-wipe linearizability findings are not discarded with the
// objects. Wiping breaks the atomic shared-memory model — the safety
// monitors observing across the wipe are expected to fire; that is the
// finding, not a bug.
func (s *server) wipe() {
	for _, m := range s.maxRegs {
		m.Finish()
	}
	s.persRegs, s.maxRegs, s.intRegs = nil, nil, nil
	for i := range s.lastSeq {
		s.lastInc[i], s.lastSeq[i], s.lastRep[i] = 0, 0, message{}
	}
	s.wipes++
}

// finish runs the per-object linearizability checks of the monitored max
// registers.
func (s *server) finish() {
	for _, m := range s.maxRegs {
		m.Finish()
	}
}
