package des

// The event queue is a hand-rolled binary heap over event values rather
// than container/heap: the engine pushes and pops tens of millions of
// events per n=100k trial, and the interface-based heap costs an
// allocation plus dynamic dispatch per operation that this hot loop
// cannot afford.
//
// Ordering is (virtual time, insertion sequence). The sequence tiebreak
// makes the pop order — and therefore every RNG draw made while handling
// events — a pure function of the configuration and seed, which is the
// whole determinism contract: two events at the same virtual nanosecond
// are handled in the order they were scheduled.

// evKind discriminates what an event does on arrival.
type evKind uint8

const (
	// evDeliver hands msg to node `to` (a process, or the memory server).
	evDeliver evKind = iota
	// evTimer is a retransmission timer at process `to`; msg.opSeq names
	// the operation the timer guards (and msg.inc its incarnation), so
	// stale timers are no-ops.
	evTimer
	// evCrash takes node `to` down; msg.key carries the downtime in
	// virtual ns and msg.val the RestartKind.
	evCrash
	// evRestart brings node `to` back up; msg.val carries the
	// RestartKind that decides what survived.
	evRestart
)

// event is one scheduled occurrence. It is stored by value in the heap
// slice; keep it compact.
type event struct {
	at   int64 // virtual time, nanoseconds
	seq  uint64
	to   int32 // destination node: process id, or serverID
	kind evKind
	msg  message
}

// eventQueue is a binary min-heap of events ordered by (at, seq).
type eventQueue struct {
	h   []event
	seq uint64
}

func (q *eventQueue) len() int { return len(q.h) }

func (q *eventQueue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// push schedules msg for node `to` at virtual time `at`.
func (q *eventQueue) push(at int64, to int32, kind evKind, m message) {
	q.seq++
	q.h = append(q.h, event{at: at, seq: q.seq, to: to, kind: kind, msg: m})
	// Sift up.
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = event{} // release the persona pointer
	q.h = q.h[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.h) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return top, true
}
