package des

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/fault"
)

// SchemaFaultRepro is the schema tag of serialized DES fault-repro
// artifacts.
const SchemaFaultRepro = "des-fault-repro/v1"

// ReproEvent is a ChaosEvent in serialized form. Times are virtual
// nanoseconds; the restart kind is its string name so artifacts stay
// readable and stable across enum reordering.
type ReproEvent struct {
	// Target is a process id, or -1 for the memory server.
	Target  int32  `json:"target"`
	AtNs    int64  `json:"at_ns"`
	DownNs  int64  `json:"down_ns"`
	Restart string `json:"restart"`
}

// ReproRetry mirrors RetryPolicy field-for-field in nanoseconds.
type ReproRetry struct {
	RTONs      int64   `json:"rto_ns,omitempty"`
	Backoff    float64 `json:"backoff,omitempty"`
	CapNs      int64   `json:"cap_ns,omitempty"`
	Jitter     float64 `json:"jitter,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`
}

// FaultRepro is a self-contained reproduction of a failing chaos run:
// everything a replayer needs to re-execute the trial bit-for-bit. The
// chaos schedule is recorded as the explicit materialized event list
// (typically after ddmin shrinking), so replay does not depend on the
// plan-materialization code staying frozen — only on the engine's
// determinism contract.
type FaultRepro struct {
	Schema   string `json:"schema"`
	N        int    `json:"n"`
	Protocol string `json:"protocol"`
	// Epsilon is the per-phase agreement-failure budget (0 = default).
	Epsilon float64 `json:"epsilon,omitempty"`
	Seed    uint64  `json:"seed"`
	// Latency is the LatencyDist in its parseable "kind:mean" form.
	Latency string  `json:"latency"`
	Loss    float64 `json:"loss,omitempty"`
	// Partitions are in the parseable "from:until:frac" form.
	Partitions []string   `json:"partitions,omitempty"`
	Retry      ReproRetry `json:"retry"`
	// Chaos is the explicit (shrunk) crash schedule.
	Chaos     []ReproEvent `json:"chaos"`
	MaxEvents int64        `json:"max_events,omitempty"`
	MaxPhases int          `json:"max_phases,omitempty"`
	// Violations are the monitor firings the original run produced, for
	// the replayer to confirm byte-for-byte.
	Violations []fault.Violation `json:"violations"`

	// SavedPath is where Save last wrote the artifact; informational
	// only, never serialized.
	SavedPath string `json:"-"`
}

// BuildRepro captures a failing run: the configuration with its chaos
// plan replaced by the explicit schedule `events` (pass the materialized
// or shrunk schedule), plus the violations the run produced.
func BuildRepro(cfg Config, events []ChaosEvent, violations []fault.Violation) *FaultRepro {
	cfg = cfg.withDefaults()
	r := &FaultRepro{
		Schema:    SchemaFaultRepro,
		N:         cfg.N,
		Protocol:  cfg.Protocol,
		Epsilon:   cfg.Epsilon,
		Seed:      cfg.Seed,
		Latency:   cfg.Net.Latency.String(),
		Loss:      cfg.Net.Loss,
		Retry:     encodeRetry(cfg.Retry),
		MaxEvents: cfg.MaxEvents,
		MaxPhases: cfg.MaxPhases,
		// Marshal nil as [] — the schema promises a violations array.
		Violations: append([]fault.Violation{}, violations...),
	}
	for _, p := range cfg.Net.Partitions {
		r.Partitions = append(r.Partitions, p.String())
	}
	for _, e := range normalizeChaos(events) {
		r.Chaos = append(r.Chaos, ReproEvent{
			Target:  e.Target,
			AtNs:    e.At.Nanoseconds(),
			DownNs:  e.Down.Nanoseconds(),
			Restart: e.Restart.String(),
		})
	}
	return r
}

func encodeRetry(p RetryPolicy) ReproRetry {
	return ReproRetry{
		RTONs:      p.RTO.Nanoseconds(),
		Backoff:    p.Backoff,
		CapNs:      p.Cap.Nanoseconds(),
		Jitter:     p.Jitter,
		MaxRetries: p.MaxRetries,
	}
}

// Config reconstructs the run configuration the artifact describes.
func (r *FaultRepro) Config() (Config, error) {
	lat, err := ParseLatency(r.Latency)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		N:        r.N,
		Protocol: r.Protocol,
		Epsilon:  r.Epsilon,
		Seed:     r.Seed,
		Net: NetConfig{
			Latency: lat,
			Loss:    r.Loss,
		},
		Retry: RetryPolicy{
			RTO:        time.Duration(r.Retry.RTONs),
			Backoff:    r.Retry.Backoff,
			Cap:        time.Duration(r.Retry.CapNs),
			Jitter:     r.Retry.Jitter,
			MaxRetries: r.Retry.MaxRetries,
		},
		MaxEvents: r.MaxEvents,
		MaxPhases: r.MaxPhases,
	}
	for _, s := range r.Partitions {
		p, err := ParsePartition(s)
		if err != nil {
			return Config{}, err
		}
		cfg.Net.Partitions = append(cfg.Net.Partitions, p)
	}
	for i, e := range r.Chaos {
		kind, err := ParseRestartKind(e.Restart)
		if err != nil {
			return Config{}, fmt.Errorf("des: repro chaos event %d: %w", i, err)
		}
		cfg.Chaos.Events = append(cfg.Chaos.Events, ChaosEvent{
			Target:  e.Target,
			At:      time.Duration(e.AtNs),
			Down:    time.Duration(e.DownNs),
			Restart: kind,
		})
	}
	return cfg, nil
}

// Validate checks the artifact is well-formed enough to replay.
func (r *FaultRepro) Validate() error {
	if r.Schema != SchemaFaultRepro {
		return fmt.Errorf("des: repro schema %q, want %q", r.Schema, SchemaFaultRepro)
	}
	if len(r.Chaos) == 0 {
		return fmt.Errorf("des: repro carries no chaos schedule")
	}
	if len(r.Violations) == 0 {
		return fmt.Errorf("des: repro records no violations to reproduce")
	}
	cfg, err := r.Config()
	if err != nil {
		return err
	}
	return cfg.withDefaults().validate()
}

// Replay re-executes the recorded run and confirms it reproduces the
// recorded violations exactly. The engine's determinism contract makes
// this byte-for-byte: any divergence is an engine regression (or a
// hand-edited artifact) and is reported as an error.
func (r *FaultRepro) Replay() (Result, error) {
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	cfg, err := r.Config()
	if err != nil {
		return Result{}, err
	}
	// Weakened-semantics runs may legitimately fail to terminate (the
	// run error restates the recorded nontermination); what replay must
	// match is the violation transcript, not the error.
	res, _ := Run(cfg)
	if !reflect.DeepEqual(res.Violations, r.Violations) {
		return res, fmt.Errorf("des: replay diverged: recorded %d violations, got %d (determinism regression or stale artifact)",
			len(r.Violations), len(res.Violations))
	}
	return res, nil
}

// Encode serializes the artifact.
func (r *FaultRepro) Encode() ([]byte, error) {
	if r.Schema == "" {
		r.Schema = SchemaFaultRepro
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFaultRepro parses and validates a serialized artifact.
func DecodeFaultRepro(data []byte) (*FaultRepro, error) {
	var r FaultRepro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("des: parsing fault repro: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Save writes the artifact to path, creating parent directories.
func (r *FaultRepro) Save(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	r.SavedPath = path
	return nil
}

// LoadFaultRepro reads and validates an artifact from path.
func LoadFaultRepro(path string) (*FaultRepro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFaultRepro(data)
}
