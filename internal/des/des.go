// Package des is a single-threaded discrete-event simulator for the
// paper's protocols in an asynchronous message-passing system at scales
// (n = 10k-100k) the goroutine-per-process controlled engine cannot
// reach.
//
// The model is the classic client/server emulation of shared memory:
// every register, max register, and conflict-detector flag lives on a
// memory server node, and each of the n processes runs the conciliator +
// adopt-commit stack as an explicit event-driven state machine that
// issues one stop-and-wait RPC per shared-memory operation. There are no
// goroutines and no real time: a priority event queue keyed by virtual
// nanoseconds (ties broken by insertion order) drives everything, so a
// run is a pure function of its Config — including every latency sample,
// loss decision, and partition crossing — and is byte-replayable from
// the seed.
//
// The network model supports configurable latency distributions
// (fixed/uniform/exponential), Bernoulli message loss, and timed
// partitions that isolate a fraction of the processes. Loss and
// partitions are survived by per-operation retransmission with
// exponential backoff; a server-side dedup cache makes delivery
// effectively exactly-once, so the shared objects observe each logical
// operation once no matter how many copies the network was handed.
//
// Randomness discipline matches the rest of the repository: the network
// draws (latency, loss) from its own xrand fork, processes pre-draw
// their protocol randomness into personas from per-process forks, and
// the two never mix — the network is an oblivious adversary, adversarial
// in timing but blind to register contents and coin flips.
package des

import (
	"fmt"
	"strings"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/fault"
)

// Protocol names accepted by Config.Protocol.
const (
	// ProtoSifter is Algorithm 2 with the paper's tuned per-round write
	// probabilities: O(log log n) rounds.
	ProtoSifter = "sifter"
	// ProtoSifterHalf is the constant-probability (p = 1/2) sifter: the
	// classical O(log n)-round baseline the tuned schedule is measured
	// against.
	ProtoSifterHalf = "sifter-half"
	// ProtoPriorityMax is Algorithm 1 in its footnote-1 form: priorities
	// resolved through a max register instead of snapshots, O(log* n)
	// rounds and O(1) server work per operation.
	ProtoPriorityMax = "priority-max"
)

// Protocols lists the supported protocol names in presentation order.
func Protocols() []string {
	return []string{ProtoSifter, ProtoSifterHalf, ProtoPriorityMax}
}

// LatencyKind selects a message-latency distribution.
type LatencyKind uint8

const (
	// LatFixed delivers every message after exactly Mean.
	LatFixed LatencyKind = iota
	// LatUniform draws uniformly from [0, 2*Mean).
	LatUniform
	// LatExp draws from the exponential distribution with the given mean
	// (memoryless — the standard asynchronous-network model).
	LatExp
)

func (k LatencyKind) String() string {
	switch k {
	case LatFixed:
		return "fixed"
	case LatUniform:
		return "uniform"
	case LatExp:
		return "exp"
	}
	return fmt.Sprintf("LatencyKind(%d)", int(k))
}

// LatencyDist is a one-way message latency distribution.
type LatencyDist struct {
	Kind LatencyKind
	// Mean is the distribution mean; zero means the 1ms default.
	Mean time.Duration
}

func (d LatencyDist) String() string {
	return fmt.Sprintf("%s:%s", d.Kind, d.Mean)
}

// ParseLatency parses "kind:mean" (e.g. "exp:1ms", "uniform:500us",
// "fixed:2ms"). A bare duration means fixed.
func ParseLatency(s string) (LatencyDist, error) {
	kind, mean := LatFixed, s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		switch s[:i] {
		case "fixed":
			kind = LatFixed
		case "uniform":
			kind = LatUniform
		case "exp":
			kind = LatExp
		default:
			return LatencyDist{}, fmt.Errorf("des: unknown latency kind %q (want fixed, uniform, or exp)", s[:i])
		}
		mean = s[i+1:]
	}
	d, err := time.ParseDuration(mean)
	if err != nil {
		return LatencyDist{}, fmt.Errorf("des: bad latency mean %q: %v", mean, err)
	}
	if d <= 0 {
		return LatencyDist{}, fmt.Errorf("des: latency mean must be positive, got %v", d)
	}
	return LatencyDist{Kind: kind, Mean: d}, nil
}

// Partition isolates the Frac highest-id processes from every other node
// (including the memory server) for virtual times in [From, Until).
// Messages crossing the cut are silently discarded at send time;
// retransmission recovers them after the partition heals. The server is
// never isolated. Partitions must heal (Until finite and > From) so that
// termination stays almost-sure.
type Partition struct {
	From  time.Duration
	Until time.Duration
	// Frac in (0, 1]: the fraction of processes isolated, rounded up.
	Frac float64
}

func (p Partition) String() string {
	return fmt.Sprintf("%s:%s:%g", p.From, p.Until, p.Frac)
}

// ParsePartition parses "from:until:frac", e.g. "5ms:25ms:0.3".
func ParsePartition(s string) (Partition, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Partition{}, fmt.Errorf("des: bad partition %q (want from:until:frac, e.g. 5ms:25ms:0.3)", s)
	}
	from, err := time.ParseDuration(parts[0])
	if err != nil {
		return Partition{}, fmt.Errorf("des: bad partition start %q: %v", parts[0], err)
	}
	until, err := time.ParseDuration(parts[1])
	if err != nil {
		return Partition{}, fmt.Errorf("des: bad partition end %q: %v", parts[1], err)
	}
	var frac float64
	if _, err := fmt.Sscanf(parts[2], "%g", &frac); err != nil {
		return Partition{}, fmt.Errorf("des: bad partition fraction %q: %v", parts[2], err)
	}
	return Partition{From: from, Until: until, Frac: frac}, nil
}

// NetConfig describes the network model of a run.
type NetConfig struct {
	// Latency is the one-way message latency distribution. A zero value
	// means exponential with mean 1ms.
	Latency LatencyDist
	// Loss is the independent per-message drop probability in [0, 0.99].
	Loss float64
	// Partitions are timed cuts; see Partition.
	Partitions []Partition
}

// Config describes one DES consensus run.
type Config struct {
	// N is the number of processes.
	N int
	// Protocol is one of the Proto* names.
	Protocol string
	// Epsilon is the per-phase conciliator agreement-failure budget
	// (0 means the repository default 1/8).
	Epsilon float64
	// Seed is the master seed; algorithm and network streams are forked
	// from it under distinct labels.
	Seed uint64
	// Inputs are the per-process consensus inputs, each in {0, 1} (the
	// adopt-commit shim is the 5-step binary register object). Nil means
	// the binary workload: process i proposes i mod 2.
	Inputs []int
	// Net is the network model.
	Net NetConfig
	// Chaos is the crash-recovery layer: seeded crash schedules for
	// processes and the memory server with durable/amnesiac restarts.
	// The zero value means no crashes.
	Chaos ChaosConfig
	// Retry tunes the client retry policy (timeout, capped exponential
	// backoff, jitter, give-up). Zero fields take the engine defaults.
	Retry RetryPolicy
	// MaxEvents bounds the engine (0 = 1<<26). Exceeding it reports
	// nontermination.
	MaxEvents int64
	// MaxPhases bounds conciliator+adopt-commit phases per process
	// (0 = 64). With epsilon = 1/8 a run needs more than a handful of
	// phases only if something is wrong.
	MaxPhases int
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.125
	}
	if c.Net.Latency.Mean <= 0 {
		c.Net.Latency = LatencyDist{Kind: LatExp, Mean: time.Millisecond}
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 26
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 64
	}
	c.Chaos = c.Chaos.withDefaults()
	return c
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("des: need at least one process, got n=%d", c.N)
	}
	switch c.Protocol {
	case ProtoSifter, ProtoSifterHalf, ProtoPriorityMax:
	default:
		return fmt.Errorf("des: unknown protocol %q (want %s)", c.Protocol, strings.Join(Protocols(), ", "))
	}
	// The >=/<= shapes reject NaN too: a NaN epsilon, loss, or fraction
	// would pass naive two-sided comparisons and silently corrupt the
	// run (NaN compares false against everything).
	if !(c.Epsilon > 0 && c.Epsilon < 1) {
		return fmt.Errorf("des: epsilon must be in (0, 1), got %g", c.Epsilon)
	}
	if !(c.Net.Loss >= 0 && c.Net.Loss <= 0.99) {
		return fmt.Errorf("des: loss must be in [0, 0.99], got %g (loss 1 would drop every message forever)", c.Net.Loss)
	}
	if c.Inputs != nil && len(c.Inputs) != c.N {
		return fmt.Errorf("des: got %d inputs for %d processes", len(c.Inputs), c.N)
	}
	for i, in := range c.Inputs {
		if in != 0 && in != 1 {
			return fmt.Errorf("des: input of process %d is %d; the message-passing adopt-commit is binary", i, in)
		}
	}
	for i, p := range c.Net.Partitions {
		if p.From < 0 || p.Until <= p.From {
			return fmt.Errorf("des: partition %d window [%v, %v) is empty or negative; partitions must heal", i, p.From, p.Until)
		}
		if !(p.Frac > 0 && p.Frac <= 1) {
			return fmt.Errorf("des: partition %d isolates fraction %g (want (0, 1])", i, p.Frac)
		}
	}
	if err := c.Chaos.validate(c.N); err != nil {
		return err
	}
	return c.Retry.validate()
}

// ProcOutcome is a process's terminal state in a Result.
type ProcOutcome uint8

const (
	// OutcomeUndecided: the run ended (budget, deadlock) before the
	// process decided.
	OutcomeUndecided ProcOutcome = iota
	// OutcomeDecided: the process committed a decision.
	OutcomeDecided
	// OutcomeGaveUp: the process exhausted its retry budget and
	// surfaced graceful degradation instead of blocking the run.
	OutcomeGaveUp
)

func (o ProcOutcome) String() string {
	switch o {
	case OutcomeUndecided:
		return "undecided"
	case OutcomeDecided:
		return "decided"
	case OutcomeGaveUp:
		return "gave-up"
	}
	return fmt.Sprintf("ProcOutcome(%d)", int(o))
}

// Result is the outcome of one DES run.
type Result struct {
	N        int
	Protocol string
	// Rounds is the conciliator round count per phase.
	Rounds int
	// AllDecided reports whether every process decided.
	AllDecided bool
	// Decision is the agreed value (meaningful when AllDecided).
	Decision int
	// Phases is the largest number of conciliator+adopt-commit phases
	// any process ran.
	Phases int
	// Steps[i] is the number of shared-memory operations (RPC round
	// trips) process i issued — the paper's individual-work measure.
	Steps []int64
	// Message accounting: requests+replies handed to the network,
	// scheduled deliveries, losses, partition discards, and
	// retransmissions (already included in MsgsSent).
	MsgsSent      int64
	MsgsDelivered int64
	MsgsDropped   int64
	MsgsBlocked   int64
	Retransmits   int64
	// VirtualTime is the virtual clock when the last process decided.
	VirtualTime time.Duration
	// Events is the number of events the engine handled.
	Events int64
	// Chaos accounting: crash events executed, restarts performed,
	// memory-server register wipes (amnesiac server restarts), session
	// resyncs (amnesiac process restarts), messages discarded because
	// the destination node was down, and processes that exhausted their
	// retry budget.
	Crashes    int64
	Restarts   int64
	Wipes      int64
	Resyncs    int64
	ChaosDrops int64
	GaveUp     int
	// Outcomes[i] is process i's terminal state.
	Outcomes []ProcOutcome
	// Server-side exactly-once accounting: logical operations applied
	// and duplicate requests absorbed by the dedup cache.
	OpsApplied int64
	DupDrops   int64
	// Violations is everything the attached safety monitors reported.
	Violations []fault.Violation
}

// TotalSteps sums the per-process operation counts.
func (r Result) TotalSteps() int64 {
	var t int64
	for _, s := range r.Steps {
		t += s
	}
	return t
}

// MaxSteps returns the largest per-process operation count.
func (r Result) MaxSteps() int64 {
	var m int64
	for _, s := range r.Steps {
		if s > m {
			m = s
		}
	}
	return m
}
