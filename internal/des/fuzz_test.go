package des

import (
	"testing"
	"time"
)

// FuzzDESNetworkSchedule drives the engine across the (latency
// distribution, loss rate, partition spec, protocol, seed) space and
// asserts the two properties every admissible network must preserve: the
// safety monitors stay quiet, and the run terminates. Inputs are clamped
// into the admissible region (loss below 1, partitions that heal) —
// outside it nontermination is expected, not a bug.
func FuzzDESNetworkSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(0), 0.0, uint32(0), uint32(0), 0.0, uint8(0))
	f.Add(uint64(2), uint8(2), 0.3, uint32(2), uint32(30), 0.5, uint8(1))
	f.Add(uint64(3), uint8(1), 0.9, uint32(0), uint32(100), 1.0, uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, latKind uint8, loss float64,
		partFromMs, partLenMs uint32, partFrac float64, protoIdx uint8) {
		protocol := Protocols()[int(protoIdx)%len(Protocols())]
		cfg := Config{
			N:        16,
			Protocol: protocol,
			Seed:     seed,
			Net: NetConfig{
				Latency: LatencyDist{Kind: LatencyKind(latKind % 3), Mean: time.Millisecond},
			},
			// A generous but finite budget: admissible configurations at
			// n=16 need a tiny fraction of this.
			MaxEvents: 1 << 22,
		}
		// Clamp loss into [0, 0.9]: recovery from extreme loss is still
		// almost-sure but the tail grows without bound as loss approaches
		// 1, and fuzzing wants bounded runtimes.
		if loss == loss && loss > 0 { // NaN-guard, then clamp
			if loss > 0.9 {
				loss = 0.9
			}
			cfg.Net.Loss = loss
		}
		if partFrac == partFrac && partFrac > 0 && partLenMs > 0 {
			if partFrac > 1 {
				partFrac = 1
			}
			from := time.Duration(partFromMs%1000) * time.Millisecond
			length := time.Duration(partLenMs%1000+1) * time.Millisecond
			cfg.Net.Partitions = []Partition{{From: from, Until: from + length, Frac: partFrac}}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("admissible network config failed to terminate: %v (cfg %+v)", err, cfg)
		}
		if !res.AllDecided {
			t.Fatalf("terminated without all processes deciding: %+v", res)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("safety violations under %+v: %v", cfg.Net, res.Violations)
		}
	})
}
