package des

import (
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	times := []int64{50, 10, 30, 10, 20, 10, 40}
	for i, at := range times {
		q.push(at, int32(i), evDeliver, message{val: int32(i)})
	}
	var got []int64
	var ids []int32
	for {
		ev, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, ev.at)
		ids = append(ids, ev.msg.val)
	}
	want := []int64{10, 10, 10, 20, 30, 40, 50}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pop times = %v, want %v", got, want)
	}
	// Ties break by insertion order: the three t=10 events were pushed as
	// ids 1, 3, 5.
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("tie order = %v, want insertion order 1, 3, 5", ids[:3])
	}
}

func TestLatencyDistributions(t *testing.T) {
	const samples = 20000
	mean := float64(time.Millisecond.Nanoseconds())
	for _, kind := range []LatencyKind{LatFixed, LatUniform, LatExp} {
		nw := newNetwork(NetConfig{Latency: LatencyDist{Kind: kind, Mean: time.Millisecond}}, 8, xrand.New(7))
		var sum float64
		for i := 0; i < samples; i++ {
			d := nw.latency()
			if d < 0 {
				t.Fatalf("%v: negative latency %d", kind, d)
			}
			if kind == LatFixed && float64(d) != mean {
				t.Fatalf("fixed latency = %d, want %g", d, mean)
			}
			sum += float64(d)
		}
		got := sum / samples
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("%v: sample mean %.0f, want within 5%% of %.0f", kind, got, mean)
		}
	}
}

// requireClean asserts a run decided everywhere with quiet monitors.
func requireClean(t *testing.T, res Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.AllDecided {
		t.Fatalf("not all processes decided: %+v", res)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("safety violations: %v", res.Violations)
	}
}

func TestRunAllProtocolsSmallN(t *testing.T) {
	for _, protocol := range Protocols() {
		for _, n := range []int{1, 2, 3, 8, 64} {
			res, err := Run(Config{N: n, Protocol: protocol, Seed: uint64(1000*n + 1)})
			requireClean(t, res, err)
			if res.Decision != 0 && res.Decision != 1 {
				t.Fatalf("%s n=%d: decision %d not a proposed value", protocol, n, res.Decision)
			}
			if res.N != n || res.Protocol != protocol || len(res.Steps) != n {
				t.Fatalf("%s n=%d: result metadata wrong: %+v", protocol, n, res)
			}
			for i, s := range res.Steps {
				if s < 1 {
					t.Fatalf("%s n=%d: process %d took %d steps", protocol, n, i, s)
				}
			}
			if res.Phases < 1 || res.Events == 0 || res.VirtualTime <= 0 {
				t.Fatalf("%s n=%d: implausible accounting: %+v", protocol, n, res)
			}
		}
	}
}

func TestRunUnanimousCommitsInOnePhase(t *testing.T) {
	// All-same inputs must commit in the first phase (adopt-commit
	// convergence); the monitor enforces it too, but pin it directly.
	inputs := make([]int, 32)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := Run(Config{N: 32, Protocol: ProtoSifter, Seed: 5, Inputs: inputs})
	requireClean(t, res, err)
	if res.Decision != 1 {
		t.Fatalf("decision = %d, want 1", res.Decision)
	}
	if res.Phases != 1 {
		t.Fatalf("phases = %d, want 1 for unanimous inputs", res.Phases)
	}
}

func TestRunReplayDeterminism(t *testing.T) {
	cfg := Config{
		N:        64,
		Protocol: ProtoSifter,
		Seed:     42,
		Net: NetConfig{
			Latency:    LatencyDist{Kind: LatExp, Mean: time.Millisecond},
			Loss:       0.1,
			Partitions: []Partition{{From: 2 * time.Millisecond, Until: 30 * time.Millisecond, Frac: 0.25}},
		},
	}
	a, errA := Run(cfg)
	b, errB := Run(cfg)
	requireClean(t, a, errA)
	requireClean(t, b, errB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed and config gave different results:\n%+v\nvs\n%+v", a, b)
	}
	cfg.Seed = 43
	c, errC := Run(cfg)
	requireClean(t, c, errC)
	if reflect.DeepEqual(a.Steps, c.Steps) && a.VirtualTime == c.VirtualTime {
		t.Fatalf("different seeds gave identical executions")
	}
}

func TestRunWithLossRetransmits(t *testing.T) {
	res, err := Run(Config{
		N:        32,
		Protocol: ProtoSifterHalf,
		Seed:     9,
		Net:      NetConfig{Latency: LatencyDist{Kind: LatExp, Mean: time.Millisecond}, Loss: 0.3},
	})
	requireClean(t, res, err)
	if res.MsgsDropped == 0 {
		t.Fatalf("loss 0.3 dropped no messages: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Fatalf("dropped messages but no retransmissions: %+v", res)
	}
}

func TestRunPartitionStallsThenHeals(t *testing.T) {
	// Half the processes are cut off from the server for the first 50ms;
	// with 1ms fixed latency the connected half finishes well inside the
	// window, the isolated half cannot complete a single operation until
	// the heal — so the run must finish after it, with blocked messages
	// on the books and everyone still agreeing.
	res, err := Run(Config{
		N:        16,
		Protocol: ProtoPriorityMax,
		Seed:     11,
		Net: NetConfig{
			Latency:    LatencyDist{Kind: LatFixed, Mean: time.Millisecond},
			Partitions: []Partition{{From: 0, Until: 50 * time.Millisecond, Frac: 0.5}},
		},
	})
	requireClean(t, res, err)
	if res.MsgsBlocked == 0 {
		t.Fatalf("partition blocked no messages: %+v", res)
	}
	if res.VirtualTime < 50*time.Millisecond {
		t.Fatalf("run finished at %v, before the partition healed at 50ms", res.VirtualTime)
	}
}

func TestRunEventBudgetReportsNontermination(t *testing.T) {
	res, err := Run(Config{N: 64, Protocol: ProtoSifterHalf, Seed: 3, MaxEvents: 100})
	if err == nil {
		t.Fatalf("expected an event-budget error, got %+v", res)
	}
	found := false
	for _, v := range res.Violations {
		if v.Monitor == "nontermination" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no nontermination violation reported: %v", res.Violations)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero processes", Config{N: 0, Protocol: ProtoSifter}},
		{"unknown protocol", Config{N: 4, Protocol: "paxos"}},
		{"epsilon too big", Config{N: 4, Protocol: ProtoSifter, Epsilon: 1}},
		{"loss too big", Config{N: 4, Protocol: ProtoSifter, Net: NetConfig{Loss: 0.995}}},
		{"negative loss", Config{N: 4, Protocol: ProtoSifter, Net: NetConfig{Loss: -0.1}}},
		{"wrong input count", Config{N: 4, Protocol: ProtoSifter, Inputs: []int{0, 1}}},
		{"non-binary input", Config{N: 2, Protocol: ProtoSifter, Inputs: []int{0, 7}}},
		{"partition never heals", Config{N: 4, Protocol: ProtoSifter,
			Net: NetConfig{Partitions: []Partition{{From: time.Millisecond, Until: time.Millisecond, Frac: 0.5}}}}},
		{"partition frac zero", Config{N: 4, Protocol: ProtoSifter,
			Net: NetConfig{Partitions: []Partition{{From: 0, Until: time.Millisecond, Frac: 0}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); err == nil {
				t.Fatalf("config %+v validated", tt.cfg)
			}
		})
	}
}

func TestParseLatency(t *testing.T) {
	good := map[string]LatencyDist{
		"1ms":         {Kind: LatFixed, Mean: time.Millisecond},
		"fixed:2ms":   {Kind: LatFixed, Mean: 2 * time.Millisecond},
		"uniform:1ms": {Kind: LatUniform, Mean: time.Millisecond},
		"exp:500us":   {Kind: LatExp, Mean: 500 * time.Microsecond},
	}
	for in, want := range good {
		got, err := ParseLatency(in)
		if err != nil || got != want {
			t.Errorf("ParseLatency(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "normal:1ms", "exp:zzz", "exp:-1ms", "fixed:0s"} {
		if _, err := ParseLatency(bad); err == nil {
			t.Errorf("ParseLatency(%q) succeeded", bad)
		}
	}
}

func TestParsePartition(t *testing.T) {
	got, err := ParsePartition("5ms:25ms:0.3")
	want := Partition{From: 5 * time.Millisecond, Until: 25 * time.Millisecond, Frac: 0.3}
	if err != nil || got != want {
		t.Fatalf("ParsePartition = %v, %v; want %v", got, err, want)
	}
	for _, bad := range []string{"", "5ms:25ms", "x:25ms:0.3", "5ms:y:0.3", "5ms:25ms:z"} {
		if _, err := ParsePartition(bad); err == nil {
			t.Errorf("ParsePartition(%q) succeeded", bad)
		}
	}
}
