package des

import (
	"fmt"
	"math"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/persona"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// pcState is where a process's state machine is parked while it waits
// for the reply to its outstanding operation. Every transition consumes
// exactly one reply and issues at most one new request; there are no
// goroutines and no blocking.
type pcState uint8

const (
	// Conciliator states.
	pcSiftOp    pcState = iota // sifter: the round's single write-or-read
	pcPrioWrite                // priority-max: WriteMax of this round
	pcPrioRead                 // priority-max: ReadMax of this round

	// Adopt-commit states (the binary RegisterAC ported op by op; see
	// adoptcommit.RegisterAC and FlagsCD for the shared-memory original).
	pcACFlagWrite      // writing own conflict-detector flag
	pcACFlagRead       // reading the other flag
	pcACDirtyWrite     // conflict path: marking dirty
	pcACCleanReadAdopt // conflict path: reading clean to adopt
	pcACCleanWrite     // clean path: writing clean
	pcACDirtyRead      // clean path: checking dirty
	pcACCleanRead      // clean path: re-reading clean

	// pcResync: a freshly amnesiac incarnation re-establishing its RPC
	// session with the memory server before re-running the protocol.
	pcResync

	pcDone // decided
)

// proc is one process's explicit state machine.
type proc struct {
	id    int32
	rng   xrand.Rand
	input int

	prefer int // current phase's preference
	pers   *persona.Persona[int]
	phase  int32
	round  int32
	pc     pcState

	acIn       int
	acConflict bool

	// Stop-and-wait RPC state.
	opSeq   uint32
	await   bool
	req     message
	rto     int64
	steps   int64
	retrans int64

	// Chaos state. seedBase is the seed incarnation 0's RNG was reseeded
	// from; incarnation k > 0 reseeds from its named fork keyed by k, so
	// amnesiac restarts draw fresh-but-replayable protocol randomness.
	inc       uint32
	down      bool
	gaveUp    bool
	opRetries int
	seedBase  uint64
	resyncs   int64

	decided  bool
	decision int
}

// runner holds one run's entire state.
type runner struct {
	cfg     Config
	q       eventQueue
	net     *network
	srv     *server
	mon     *fault.Monitor
	procs   []proc
	rounds  int
	persCfg persona.Config
	now     int64
	decided int
	events  int64

	// Resolved retry policy.
	rto0       int64
	rtoCap     int64
	backoff    float64
	jitter     float64
	maxRetries int
	retryRng   *xrand.Rand
	// timers gates the retransmission machinery: armed whenever the
	// network can lose messages or the chaos layer can drop them (a
	// down node discards deliveries).
	timers bool

	// Chaos accounting.
	gaveUp     int
	crashes    int64
	restarts   int64
	chaosDrops int64

	// overflowed is set when a process exceeds the phase budget; the
	// main loop converts it to a run error.
	overflowed *proc
}

// protocolRounds returns the conciliator rounds per phase and the
// persona configuration (how much randomness each persona pre-draws) for
// a protocol.
func protocolRounds(protocol string, n int, epsilon float64) (int, persona.Config) {
	switch protocol {
	case ProtoSifter:
		r := conciliator.SifterRounds(n, epsilon)
		return r, persona.Config{WriteProbs: conciliator.SifterProbs(n, r)}
	case ProtoSifterHalf:
		r := conciliator.SifterHalfRounds(n, epsilon)
		probs := make([]float64, r)
		for i := range probs {
			probs[i] = 0.5
		}
		return r, persona.Config{WriteProbs: probs}
	case ProtoPriorityMax:
		r := conciliator.PriorityRounds(n, epsilon)
		// Priorities use the paper's bounded range ceil(R n^2 / epsilon)
		// rather than full-width uint64: the monitored max register's
		// linearizability checker needs keys that fit in int64, and the
		// bounded range (about 6e11 at n=100k) does with room to spare.
		bound := uint64(math.Ceil(float64(r) * float64(n) * float64(n) / epsilon))
		return r, persona.Config{PriorityRounds: r, PriorityBound: bound}
	default:
		panic("des: unknown protocol " + protocol)
	}
}

// Run executes one discrete-event consensus run and returns its Result.
// The error is non-nil when the run failed to terminate inside its event
// budget (also recorded as a nontermination violation); the Result is
// meaningful either way.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	root := xrand.New(cfg.Seed)
	// Disjoint named forks: the network's stream is independent of every
	// process's protocol randomness, keeping the adversary oblivious;
	// retry jitter and the chaos schedule draw from their own forks for
	// the same reason. Draw order here must match Config.ChaosSchedule.
	netRng := root.ForkNamed(0x4e57)   // "NET"
	procRng := root.ForkNamed(0xa190)  // per-process seed stream
	retryRng := root.ForkNamed(0x4a77) // retry-timer jitter
	chaosRng := root.ForkNamed(0xc405) // crash schedule materialization

	mon := fault.NewMonitor()
	rounds, persCfg := protocolRounds(cfg.Protocol, cfg.N, cfg.Epsilon)

	d := &runner{
		cfg:      cfg,
		net:      newNetwork(cfg.Net, cfg.N, netRng),
		srv:      newServer(cfg.N, mon),
		mon:      mon,
		procs:    make([]proc, cfg.N),
		rounds:   rounds,
		persCfg:  persCfg,
		retryRng: retryRng,
	}
	d.rto0 = cfg.Retry.RTO.Nanoseconds()
	if d.rto0 <= 0 {
		d.rto0 = 8 * cfg.Net.Latency.Mean.Nanoseconds()
		if d.rto0 < 1000 {
			d.rto0 = 1000
		}
	}
	d.rtoCap = cfg.Retry.Cap.Nanoseconds()
	if d.rtoCap <= 0 {
		d.rtoCap = 64 * d.rto0
	}
	d.backoff = cfg.Retry.Backoff
	if d.backoff == 0 {
		d.backoff = 2
	}
	d.jitter = cfg.Retry.Jitter
	d.maxRetries = cfg.Retry.MaxRetries
	chaos := materializeChaos(cfg.Chaos, cfg.N, chaosRng)
	d.timers = d.net.lossy || len(chaos) > 0

	inputs := cfg.Inputs
	if inputs == nil {
		inputs = make([]int, cfg.N)
		for i := range inputs {
			inputs[i] = i % 2
		}
	}
	for i := range d.procs {
		p := &d.procs[i]
		p.id = int32(i)
		p.input = inputs[i]
		p.prefer = inputs[i]
		p.seedBase = procRng.SeedNamed(uint64(i))
		p.rng.Reseed(p.seedBase)
	}
	// All processes wake at virtual time zero; their first requests get
	// distinct latencies, which staggers them naturally.
	for i := range d.procs {
		d.startPhase(&d.procs[i])
	}
	// Crash events enter the queue after the initial sends, so a crash
	// at t=0 still lands after every process issued its first request —
	// deterministically, via the (at, seq) tiebreak.
	for _, e := range chaos {
		d.q.push(e.At.Nanoseconds(), e.Target, evCrash,
			message{key: uint64(e.Down.Nanoseconds()), val: int32(e.Restart)})
	}

	var err error
loop:
	for d.decided+d.gaveUp < cfg.N {
		ev, ok := d.q.pop()
		if !ok {
			pending := cfg.N - d.decided - d.gaveUp
			mon.Report("nontermination", "event queue drained with %d of %d processes undecided", pending, cfg.N)
			err = fmt.Errorf("des: deadlock: queue empty with %d processes undecided", pending)
			break
		}
		d.events++
		if d.events > cfg.MaxEvents {
			pending := cfg.N - d.decided - d.gaveUp
			mon.Report("nontermination", "event budget %d exhausted with %d of %d processes undecided", cfg.MaxEvents, pending, cfg.N)
			err = fmt.Errorf("des: event budget %d exhausted with %d processes undecided", cfg.MaxEvents, pending)
			break
		}
		d.now = ev.at
		switch ev.kind {
		case evDeliver:
			if ev.to == serverID {
				if d.srv.down {
					d.chaosDrops++
					break
				}
				d.srv.handle(&d.q, d.net, d.now, ev.msg)
			} else {
				p := &d.procs[ev.to]
				if p.down {
					d.chaosDrops++
					break
				}
				d.onReply(p, ev.msg)
			}
		case evTimer:
			p := &d.procs[ev.to]
			// Timers die with the incarnation that armed them, and a
			// down or resigned process keeps no timers alive.
			if p.down || p.gaveUp || ev.msg.inc != p.inc {
				break
			}
			d.onTimer(p, ev.msg)
		case evCrash:
			d.onCrash(ev.to, ev.msg)
		case evRestart:
			d.onRestart(ev.to, ev.msg)
		}
		if perr := d.phaseOverflow(); perr != nil {
			err = perr
			break loop
		}
	}

	d.srv.finish()
	outs := make([]int, cfg.N)
	finished := make([]bool, cfg.N)
	steps := make([]int64, cfg.N)
	outcomes := make([]ProcOutcome, cfg.N)
	phases := 0
	for i := range d.procs {
		p := &d.procs[i]
		outs[i], finished[i], steps[i] = p.decision, p.decided, p.steps
		switch {
		case p.decided:
			outcomes[i] = OutcomeDecided
		case p.gaveUp:
			outcomes[i] = OutcomeGaveUp
		default:
			outcomes[i] = OutcomeUndecided
		}
		if ph := int(p.phase) + 1; ph > phases {
			phases = ph
		}
	}
	mon.CheckOutcome(inputs, outs, finished)

	res := Result{
		N:             cfg.N,
		Protocol:      cfg.Protocol,
		Rounds:        rounds,
		AllDecided:    d.decided == cfg.N,
		Phases:        phases,
		Steps:         steps,
		MsgsSent:      d.net.sent,
		MsgsDelivered: d.net.delivered,
		MsgsDropped:   d.net.dropped,
		MsgsBlocked:   d.net.blocked,
		VirtualTime:   time.Duration(d.now) * time.Nanosecond,
		Events:        d.events,
		Crashes:       d.crashes,
		Restarts:      d.restarts,
		Wipes:         d.srv.wipes,
		ChaosDrops:    d.chaosDrops,
		GaveUp:        d.gaveUp,
		Outcomes:      outcomes,
		OpsApplied:    d.srv.applied,
		DupDrops:      d.srv.dupDrops,
		Violations:    mon.Finish(),
	}
	for i := range d.procs {
		res.Retransmits += d.procs[i].retrans
		res.Resyncs += d.procs[i].resyncs
	}
	if res.AllDecided {
		res.Decision = outs[0]
	}
	return res, err
}

// phaseOverflow converts a process exceeding the phase budget (flagged
// in finishAC) into a run error.
func (d *runner) phaseOverflow() error {
	if d.overflowed == nil {
		return nil
	}
	p := d.overflowed
	d.mon.Report("nontermination", "process %d exceeded the phase budget %d", p.id, d.cfg.MaxPhases)
	return fmt.Errorf("des: process %d exceeded the phase budget %d without committing", p.id, d.cfg.MaxPhases)
}

// Object-index layout. Conciliator round objects are dense per phase;
// adopt-commit uses four int registers per phase.
func (d *runner) concObj(p *proc) int32 { return p.phase*int32(d.rounds) + p.round }

const (
	acFlag0 = iota
	acFlag1
	acClean
	acDirty
	acObjsPerPhase
)

func acObj(phase int32, which int) int32 { return phase*acObjsPerPhase + int32(which) }

// sendReq issues a new stop-and-wait request from p (charging one step,
// except for session resyncs, which are bookkeeping rather than protocol
// work) and arms the retransmission timer when messages can be lost.
func (d *runner) sendReq(p *proc, m message) {
	p.opSeq++
	m.from = p.id
	m.opSeq = p.opSeq
	m.inc = p.inc
	p.req = m
	p.await = true
	p.opRetries = 0
	if m.op != opSync {
		p.steps++
	}
	d.net.send(&d.q, d.now, p.id, serverID, m)
	if d.timers {
		p.rto = d.rto0
		d.q.push(d.now+d.jittered(p.rto), p.id, evTimer, message{opSeq: p.opSeq, inc: p.inc})
	}
}

// jittered spreads a timeout by up to jitter*rto of extra delay, drawn
// from the dedicated retry fork. Jitter 0 draws nothing, so configs
// without it replay byte-identically to builds that predate it.
func (d *runner) jittered(rto int64) int64 {
	if d.jitter > 0 {
		rto += int64(float64(rto) * d.jitter * d.retryRng.Float64())
	}
	return rto
}

// onTimer handles a retransmission timer: if the guarded operation is
// still outstanding, resend and back off; otherwise the timer is stale.
// A bounded retry policy gives up here instead of retrying forever.
func (d *runner) onTimer(p *proc, m message) {
	if !p.await || p.req.opSeq != m.opSeq {
		return
	}
	if d.maxRetries > 0 && p.opRetries >= d.maxRetries {
		d.giveUp(p)
		return
	}
	p.opRetries++
	p.retrans++
	d.net.send(&d.q, d.now, p.id, serverID, p.req)
	if p.rto < d.rtoCap {
		p.rto = int64(float64(p.rto) * d.backoff)
		if p.rto > d.rtoCap {
			p.rto = d.rtoCap
		}
	}
	d.q.push(d.now+d.jittered(p.rto), p.id, evTimer, message{opSeq: p.req.opSeq, inc: p.inc})
}

// giveUp retires a process whose retry budget is exhausted: it stops
// participating and is reported in Result.Outcomes instead of hanging
// the event loop. Consensus safety is unaffected — a silent process is
// indistinguishable from a slow one.
func (d *runner) giveUp(p *proc) {
	p.gaveUp = true
	p.await = false
	d.gaveUp++
}

// onCrash takes a node down. Crashes aimed at an already-down or
// resigned node are ignored (no restart is scheduled), which keeps
// overlapping schedule entries well-defined.
func (d *runner) onCrash(to int32, m message) {
	down := int64(m.key)
	if to == serverID {
		if d.srv.down {
			return
		}
		d.srv.down = true
		d.crashes++
		d.q.push(d.now+down, to, evRestart, message{val: m.val})
		return
	}
	p := &d.procs[to]
	if p.down || p.gaveUp || p.decided {
		return
	}
	p.down = true
	d.crashes++
	d.q.push(d.now+down, to, evRestart, message{val: m.val})
}

// onRestart brings a node back up. Durable restarts resume from the
// persisted state (the outstanding request is re-sent, since its reply
// may have been discarded during the down window); amnesiac restarts
// lose everything, bump the incarnation, reseed the protocol RNG from
// the incarnation-keyed fork, and re-enter through an opSync handshake.
func (d *runner) onRestart(to int32, m message) {
	if to == serverID {
		d.srv.down = false
		d.restarts++
		if RestartKind(m.val) == RestartAmnesiac {
			d.srv.wipe()
		}
		return
	}
	p := &d.procs[to]
	if !p.down {
		return
	}
	p.down = false
	d.restarts++
	if RestartKind(m.val) == RestartDurable {
		if !p.decided && p.await {
			// The reply (or request) in flight when we crashed was
			// dropped; retransmit under a fresh timer.
			p.retrans++
			p.rto = d.rto0
			p.opRetries = 0
			d.net.send(&d.q, d.now, p.id, serverID, p.req)
			d.q.push(d.now+d.jittered(p.rto), p.id, evTimer, message{opSeq: p.req.opSeq, inc: p.inc})
		}
		return
	}
	// Amnesiac: all volatile protocol state is gone. A previously decided
	// process forgets its decision and must re-decide (agreement says it
	// can only re-decide the same value — the monitors check exactly that).
	if p.decided {
		p.decided = false
		d.decided--
	}
	p.inc++
	p.resyncs++
	xrand.New(p.seedBase).ForkNamedInto(uint64(p.inc), &p.rng)
	p.phase, p.round = 0, 0
	p.prefer = p.input
	p.pers = nil
	p.acConflict = false
	p.opSeq = 0
	p.await = false
	p.opRetries = 0
	p.pc = pcResync
	d.sendReq(p, message{op: opSync})
}

// startPhase draws a fresh persona for the process's current preference
// and begins the conciliator.
func (d *runner) startPhase(p *proc) {
	p.pers = persona.New(p.prefer, int(p.id), &p.rng, d.persCfg)
	p.round = 0
	d.beginRound(p)
}

// beginRound issues the first operation of conciliator round p.round, or
// enters adopt-commit when the rounds are exhausted.
func (d *runner) beginRound(p *proc) {
	if int(p.round) >= d.rounds {
		d.startAC(p)
		return
	}
	obj := d.concObj(p)
	if d.cfg.Protocol == ProtoPriorityMax {
		p.pc = pcPrioWrite
		d.sendReq(p, message{op: opWriteMax, obj: obj, key: p.pers.Priority(int(p.round)), pers: p.pers})
		return
	}
	// Sifter round: one write (pre-drawn bit set) or one read-and-adopt.
	p.pc = pcSiftOp
	if p.pers.WriteBit(int(p.round)) {
		d.sendReq(p, message{op: opWriteP, obj: obj, pers: p.pers})
	} else {
		d.sendReq(p, message{op: opReadP, obj: obj})
	}
}

// startAC begins the binary adopt-commit Propose for the conciliator's
// output value.
func (d *runner) startAC(p *proc) {
	p.acIn = p.pers.Value()
	d.mon.ObserveACPropose(int(p.phase), int(p.id), p.acIn)
	p.pc = pcACFlagWrite
	d.sendReq(p, message{op: opWriteV, obj: acObj(p.phase, acFlag0+p.acIn), val: 1})
}

// onReply advances p's state machine by one reply. Stale or duplicate
// replies (sequence mismatch) are ignored; the state machine only ever
// moves on the reply it is waiting for.
func (d *runner) onReply(p *proc, m message) {
	if !p.await || m.opSeq != p.opSeq || m.inc != p.inc || p.decided || p.gaveUp {
		return
	}
	p.await = false
	v := p.acIn
	switch p.pc {
	case pcResync:
		// Session re-established; restart the protocol from phase zero.
		d.startPhase(p)

	case pcSiftOp:
		if m.op == opReadP && m.ok {
			p.pers = m.pers
		}
		p.round++
		d.beginRound(p)

	case pcPrioWrite:
		p.pc = pcPrioRead
		d.sendReq(p, message{op: opReadMax, obj: d.concObj(p)})
	case pcPrioRead:
		if m.ok {
			p.pers = m.pers
		}
		p.round++
		d.beginRound(p)

	case pcACFlagWrite:
		p.pc = pcACFlagRead
		d.sendReq(p, message{op: opReadV, obj: acObj(p.phase, acFlag0+(1-v))})
	case pcACFlagRead:
		if m.ok {
			// Conflict: announce dirty before looking at clean.
			p.pc = pcACDirtyWrite
			d.sendReq(p, message{op: opWriteV, obj: acObj(p.phase, acDirty), val: 1})
		} else {
			p.pc = pcACCleanWrite
			d.sendReq(p, message{op: opWriteV, obj: acObj(p.phase, acClean), val: int32(v)})
		}
	case pcACDirtyWrite:
		p.pc = pcACCleanReadAdopt
		d.sendReq(p, message{op: opReadV, obj: acObj(p.phase, acClean)})
	case pcACCleanReadAdopt:
		out := v
		if m.ok {
			out = int(m.val)
		}
		d.finishAC(p, out, false)
	case pcACCleanWrite:
		p.pc = pcACDirtyRead
		d.sendReq(p, message{op: opReadV, obj: acObj(p.phase, acDirty)})
	case pcACDirtyRead:
		p.acConflict = m.ok
		p.pc = pcACCleanRead
		d.sendReq(p, message{op: opReadV, obj: acObj(p.phase, acClean)})
	case pcACCleanRead:
		w := int(m.val) // own clean write guarantees presence
		if p.acConflict || w != v {
			d.finishAC(p, w, false)
		} else {
			d.finishAC(p, v, true)
		}
	}
}

// finishAC completes the phase's adopt-commit: commit decides, adopt
// carries the returned value into the next phase.
func (d *runner) finishAC(p *proc, out int, commit bool) {
	d.mon.ObserveAC(int(p.phase), int(p.id), p.acIn, out, commit)
	if commit {
		p.decided = true
		p.decision = out
		p.pc = pcDone
		d.decided++
		return
	}
	p.prefer = out
	p.phase++
	if int(p.phase) >= d.cfg.MaxPhases {
		d.overflowed = p
		return
	}
	d.startPhase(p)
}
