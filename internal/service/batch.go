// Batch command codec: the value a service group proposes into one
// consensus slot is a single string encoding many tagged client ops.
//
// The consensus stack decides values of any comparable type, and strings
// are the natural comparable container for a variable-length batch: two
// proposals are equal exactly when their encoded bytes are equal, the
// register adopt-commit's hash conflict detector hashes the bytes
// deterministically, and the decided log is trivially fingerprintable.
// The encoding is canonical — encoding the same ops always yields the
// same bytes — so "byte-identical decided logs" is a meaningful
// determinism check for the whole service.
package service

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
)

// batchMagic versions the batch encoding. Bump it when the line format
// changes; a decoder seeing an unknown header refuses the batch rather
// than misparsing it.
const batchMagic = "rsm-batch/v1"

// Tag identifies one client submission uniquely across the whole
// service: Client names the submitting session (an HTTP connection, a
// load-generator worker), Seq is a node-wide monotone sequence number.
// Distinct tags are what make otherwise identical payloads distinct
// consensus commands — the service-level form of the rsm.Tagged fix.
type Tag struct {
	Client uint32
	Seq    uint64
}

// String renders the tag as client.seq.
func (t Tag) String() string { return fmt.Sprintf("%d.%d", t.Client, t.Seq) }

// BatchOp is one tagged KV command inside a batch.
type BatchOp struct {
	Tag Tag
	Op  rsm.Op
}

// EncodeBatch renders ops as the canonical batch string: a header line
// followed by one line per op. Keys and values are strconv.Quote'd, so
// arbitrary bytes (including newlines and spaces) round-trip.
func EncodeBatch(ops []BatchOp) string {
	var b strings.Builder
	b.Grow(len(batchMagic) + 1 + len(ops)*32)
	b.WriteString(batchMagic)
	b.WriteByte('\n')
	for _, bo := range ops {
		fmt.Fprintf(&b, "%d %d %d %s %s\n",
			int(bo.Op.Kind), bo.Tag.Client, bo.Tag.Seq,
			strconv.Quote(bo.Op.Key), strconv.Quote(bo.Op.Value))
	}
	return b.String()
}

// DecodeBatch parses an encoded batch back into its tagged ops.
func DecodeBatch(enc string) ([]BatchOp, error) {
	body, ok := strings.CutPrefix(enc, batchMagic+"\n")
	if !ok {
		return nil, fmt.Errorf("service: batch header missing %q prefix", batchMagic)
	}
	var ops []BatchOp
	for ln := 0; body != ""; ln++ {
		line, rest, found := strings.Cut(body, "\n")
		if !found {
			return nil, fmt.Errorf("service: batch line %d unterminated", ln)
		}
		body = rest
		bo, err := decodeBatchLine(line)
		if err != nil {
			return nil, fmt.Errorf("service: batch line %d: %w", ln, err)
		}
		ops = append(ops, bo)
	}
	return ops, nil
}

func decodeBatchLine(line string) (BatchOp, error) {
	var bo BatchOp
	fields, err := splitBatchFields(line)
	if err != nil {
		return bo, err
	}
	kind, err := strconv.Atoi(fields[0])
	if err != nil {
		return bo, fmt.Errorf("bad kind %q", fields[0])
	}
	switch rsm.OpKind(kind) {
	case rsm.OpSet, rsm.OpDel, rsm.OpInc:
		bo.Op.Kind = rsm.OpKind(kind)
	default:
		return bo, fmt.Errorf("unknown op kind %d", kind)
	}
	client, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return bo, fmt.Errorf("bad client %q", fields[1])
	}
	seq, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return bo, fmt.Errorf("bad seq %q", fields[2])
	}
	bo.Tag = Tag{Client: uint32(client), Seq: seq}
	if bo.Op.Key, err = strconv.Unquote(fields[3]); err != nil {
		return bo, fmt.Errorf("bad key %s", fields[3])
	}
	if bo.Op.Value, err = strconv.Unquote(fields[4]); err != nil {
		return bo, fmt.Errorf("bad value %s", fields[4])
	}
	return bo, nil
}

// splitBatchFields splits a batch line into exactly five fields: three
// space-delimited integers and two quoted strings. Quoted strings never
// contain raw spaces-after-backslash ambiguity — strconv.Quote escapes
// every byte that matters — but they may contain spaces, so the split
// walks quotes instead of strings.Fields.
func splitBatchFields(line string) ([5]string, error) {
	var out [5]string
	rest := line
	for i := 0; i < 3; i++ {
		f, r, found := strings.Cut(rest, " ")
		if !found {
			return out, fmt.Errorf("want 5 fields, ran out at %d", i)
		}
		out[i], rest = f, r
	}
	q, r, err := cutQuoted(rest)
	if err != nil {
		return out, err
	}
	out[3] = q
	rest, ok := strings.CutPrefix(r, " ")
	if !ok {
		return out, fmt.Errorf("missing value field")
	}
	if out[4], r, err = cutQuoted(rest); err != nil {
		return out, err
	}
	if r != "" {
		return out, fmt.Errorf("trailing garbage %q", r)
	}
	return out, nil
}

// cutQuoted splits one leading Go-quoted string off s, returning the
// quoted literal (including its quotes) and the remainder.
func cutQuoted(s string) (quoted, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case '"':
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}
