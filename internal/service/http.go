package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
)

// maxValueBytes bounds a PUT body; larger values are refused rather than
// buffered.
const maxValueBytes = 1 << 20

// kvResponse is the JSON body of every /v1/kv reply.
type kvResponse struct {
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
	Found bool   `json:"found"`
	Shard int    `json:"shard"`
	Slot  int    `json:"slot,omitempty"`
}

// NewHandler returns the node's HTTP API:
//
//	GET    /v1/kv/{key}      read the key from applied state
//	PUT    /v1/kv/{key}      set the key to the request body
//	DELETE /v1/kv/{key}      delete the key
//	INC    /v1/kv/{key}      increment the integer at key
//	POST   /v1/kv/{key}/inc  curl-friendly spelling of INC
//	GET    /v1/status        node and per-shard counters
//
// Mutations return once their batch has committed through consensus and
// applied; a draining node answers 503.
func NewHandler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.Status())
	})
	mux.HandleFunc("GET /v1/kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		v, ok := n.Get(key)
		code := http.StatusOK
		if !ok {
			code = http.StatusNotFound
		}
		writeJSON(w, code, kvResponse{Key: key, Value: v, Found: ok, Shard: n.ShardOf(key)})
	})
	mux.HandleFunc("PUT /v1/kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxValueBytes))
		if err != nil {
			http.Error(w, "value too large or unreadable", http.StatusBadRequest)
			return
		}
		submit(n, w, rsm.Op{Kind: rsm.OpSet, Key: r.PathValue("key"), Value: string(body)})
	})
	mux.HandleFunc("DELETE /v1/kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		submit(n, w, rsm.Op{Kind: rsm.OpDel, Key: r.PathValue("key")})
	})
	mux.HandleFunc("POST /v1/kv/{key}/inc", func(w http.ResponseWriter, r *http.Request) {
		submit(n, w, rsm.Op{Kind: rsm.OpInc, Key: r.PathValue("key")})
	})
	// Method patterns above catch the standard verbs; this method-less
	// fallback serves the custom INC verb and turns everything else into
	// a 405 instead of ServeMux's default 404.
	mux.HandleFunc("/v1/kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != "INC" {
			w.Header().Set("Allow", "GET, PUT, DELETE, INC")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		submit(n, w, rsm.Op{Kind: rsm.OpInc, Key: r.PathValue("key")})
	})
	return mux
}

func submit(n *Node, w http.ResponseWriter, op rsm.Op) {
	res, err := n.Submit(0, op)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, kvResponse{
		Key: op.Key, Value: res.Value, Found: res.Found, Shard: res.Shard, Slot: res.Slot,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
