package service

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// sequentialWorkload drives one deterministic op stream through a node,
// one op at a time, and returns every shard's decided log.
func sequentialWorkload(t *testing.T, cfg Config, nops int) ([][]string, []string) {
	t.Helper()
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	rng := xrand.New(99)
	for i := 0; i < nops; i++ {
		op := randOp(rng, fmt.Sprintf("k%03d", rng.Intn(64)))
		if _, err := n.Submit(1, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, n.Shards())
	fps := make([]string, n.Shards())
	for s := 0; s < n.Shards(); s++ {
		logs[s] = n.DecidedLog(s)
		fps[s] = n.KVFingerprint(s)
	}
	return logs, fps
}

// TestBatchingDeterminism: the same seed and the same arrival order must
// produce byte-identical decided logs and state fingerprints, run to run
// — batching, encoding, and slot assignment are all deterministic for a
// sequential submitter.
func TestBatchingDeterminism(t *testing.T) {
	cfg := Config{Shards: 2, Pipeline: 3, Seed: 42}
	logsA, fpsA := sequentialWorkload(t, cfg, 200)
	logsB, fpsB := sequentialWorkload(t, cfg, 200)
	for s := range logsA {
		if len(logsA[s]) != len(logsB[s]) {
			t.Fatalf("shard %d: %d vs %d decided slots across identical runs", s, len(logsA[s]), len(logsB[s]))
		}
		for i := range logsA[s] {
			if logsA[s][i] != logsB[s][i] {
				t.Fatalf("shard %d slot %d differs across identical runs:\n%q\nvs\n%q", s, i, logsA[s][i], logsB[s][i])
			}
		}
		if fpsA[s] != fpsB[s] {
			t.Fatalf("shard %d fingerprint differs: %s vs %s", s, fpsA[s], fpsB[s])
		}
	}
}

// TestShardRoutingStability pins the key→shard mapping: it is a pure
// function of (key, shard count), identical across nodes and runs, and
// spreads a modest keyspace over every shard. The golden values detect
// accidental hash changes, which would silently re-home every key.
func TestShardRoutingStability(t *testing.T) {
	golden := []struct {
		key    string
		shards int
		want   int
	}{
		{"", 4, shardOfKey("", 4)},
		{"k00000", 4, shardOfKey("k00000", 4)},
		{"counter", 4, shardOfKey("counter", 4)},
	}
	// Self-derived goldens only pin cross-node agreement; the FNV-1a
	// constants are pinned explicitly through one hand-computed point:
	// FNV-1a("a") = 0xaf63dc4c8601ec8c.
	const fnvA = 0xaf63dc4c8601ec8c
	if got := shardOfKey("a", 1<<16); got != fnvA%(1<<16) {
		t.Fatalf("shardOfKey(\"a\", 2^16) = %d, want FNV-1a low bits %d", got, fnvA%(1<<16))
	}

	nA, err := Start(Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer nA.Close()
	nB, err := Start(Config{Shards: 4, Seed: 777, Pipeline: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer nB.Close()
	for _, g := range golden {
		if got := nA.ShardOf(g.key); got != g.want {
			t.Fatalf("node A routes %q to %d, want %d", g.key, got, g.want)
		}
		if got := nB.ShardOf(g.key); got != g.want {
			t.Fatalf("node B routes %q to %d, want %d", g.key, got, g.want)
		}
	}
	hit := make(map[int]int)
	for i := 0; i < 1000; i++ {
		hit[nA.ShardOf(fmt.Sprintf("key-%d", i))]++
	}
	for s := 0; s < 4; s++ {
		if hit[s] == 0 {
			t.Fatalf("1000 keys never touched shard %d: %v", s, hit)
		}
	}
}

// TestPipelinedApplyConcurrentClients is the exactly-once accounting test
// under real concurrency (run with -race): many clients increment both a
// private and a shared counter through pipelined, batched consensus, and
// every increment must land exactly once, in slot order, with strictly
// increasing post-increment values per client.
func TestPipelinedApplyConcurrentClients(t *testing.T) {
	const (
		clients = 8
		incs    = 40
	)
	n, err := Start(Config{Shards: 2, Pipeline: 4, BatchMax: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", c)
			prevOwn, prevSlot := 0, -1
			for i := 0; i < incs; i++ {
				res, err := n.Submit(uint32(c), rsm.Op{Kind: rsm.OpInc, Key: own})
				if err != nil {
					errs[c] = err
					return
				}
				v, err := strconv.Atoi(res.Value)
				if err != nil || v != prevOwn+1 {
					errs[c] = fmt.Errorf("own counter after inc %d: %q (prev %d)", i, res.Value, prevOwn)
					return
				}
				prevOwn = v
				// A client's sequential submits to one shard commit in
				// strictly increasing slots: the batch carrying op i+1 is
				// claimed after op i's slot applied.
				if res.Slot <= prevSlot {
					errs[c] = fmt.Errorf("slot went backwards: %d after %d", res.Slot, prevSlot)
					return
				}
				prevSlot = res.Slot
				if _, err := n.Submit(uint32(c), rsm.Op{Kind: rsm.OpInc, Key: "shared"}); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	for c := 0; c < clients; c++ {
		key := fmt.Sprintf("own-%d", c)
		if v, ok := n.Get(key); !ok || v != strconv.Itoa(incs) {
			t.Fatalf("%s = %q, want %d", key, v, incs)
		}
	}
	if v, ok := n.Get("shared"); !ok || v != strconv.Itoa(clients*incs) {
		t.Fatalf("shared = %q, want %d (an increment was conflated or dropped)", v, clients*incs)
	}

	// Decided logs must replay to the applied state, slot by slot.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	var totalOps int64
	for s := 0; s < n.Shards(); s++ {
		replay := rsm.NewKV()
		for _, enc := range n.DecidedLog(s) {
			ops, err := DecodeBatch(enc)
			if err != nil {
				t.Fatalf("shard %d decided log holds undecodable batch: %v", s, err)
			}
			for _, bo := range ops {
				replay.Apply(bo.Op)
				totalOps++
			}
		}
		if got, want := replay.Fingerprint(), n.KVFingerprint(s); got != want {
			t.Fatalf("shard %d: decided-log replay fingerprint %s != applied state %s", s, got, want)
		}
	}
	if want := int64(clients * incs * 2); totalOps != want {
		t.Fatalf("decided logs carry %d ops, want %d", totalOps, want)
	}
	occ := n.BatchOccupancy()
	if occ.N() == 0 || occ.Sum() != totalOps {
		t.Fatalf("batch occupancy histogram: N=%d Sum=%d, want Sum=%d", occ.N(), occ.Sum(), totalOps)
	}
}

// TestGracefulShutdownDrain: every op accepted before Close commits and
// applies; ops arriving after Close fail fast with ErrClosed; Close is
// idempotent.
func TestGracefulShutdownDrain(t *testing.T) {
	n, err := Start(Config{Shards: 2, Pipeline: 2, BatchMax: 4, QueueDepth: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 32
	committed := make(chan int, submitters)
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := n.Submit(uint32(c), rsm.Op{Kind: rsm.OpInc, Key: fmt.Sprintf("drain-%d", c%4)})
				if errors.Is(err, ErrClosed) {
					committed <- i
					return
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					committed <- i
					return
				}
			}
		}(c)
	}
	// Let the submitters race the shutdown: half the point is that Close
	// overlaps in-flight Submits without panicking or stranding waiters.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(committed)

	var want int
	for c := range committed {
		want += c
	}
	var applied int64
	for _, gs := range n.Status().Groups {
		applied += gs.AppliedOps
		if gs.QueueLen != 0 {
			t.Fatalf("shard %d queue not drained: %d ops stranded", gs.Shard, gs.QueueLen)
		}
	}
	if applied != int64(want) {
		t.Fatalf("applied %d ops but %d submissions succeeded — drain lost or invented ops", applied, want)
	}

	if _, err := n.Submit(0, rsm.Op{Kind: rsm.OpSet, Key: "late", Value: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Reads still serve the final applied state after Close.
	if _, ok := n.Get("drain-0"); !ok && want > 0 {
		t.Fatal("post-Close read lost the applied state")
	}
}

// TestSubmitValidation rejects non-mutating kinds and bad configs.
func TestSubmitValidation(t *testing.T) {
	if _, err := Start(Config{Shards: -1}); err == nil {
		t.Fatal("Start accepted negative shard count")
	}
	if _, err := Start(Config{Protocol: "paxos"}); err == nil {
		t.Fatal("Start accepted unknown protocol")
	}
	n, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got := n.Config(); got.Shards != 1 || got.Pipeline != 2 || got.BatchMax != 64 || got.QueueDepth != 256 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if _, err := n.Submit(0, rsm.Op{Kind: rsm.OpKind(99), Key: "k"}); err == nil {
		t.Fatal("Submit accepted unknown op kind")
	}
}

// TestProtocolVariants runs a small workload through each consensus
// construction the service can mount.
func TestProtocolVariants(t *testing.T) {
	for _, proto := range []string{"register", "snapshot", "linear"} {
		t.Run(proto, func(t *testing.T) {
			n, err := Start(Config{Protocol: proto, Pipeline: 2, Seed: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			for i := 0; i < 10; i++ {
				if _, err := n.Submit(0, rsm.Op{Kind: rsm.OpInc, Key: "n"}); err != nil {
					t.Fatal(err)
				}
			}
			if v, _ := n.Get("n"); v != "10" {
				t.Fatalf("n = %q, want 10", v)
			}
			if st := n.Status(); st.Protocol != proto {
				t.Fatalf("status protocol %q, want %q", st.Protocol, proto)
			}
		})
	}
}
