// Package service turns the replicated-state-machine layer into a
// servable consensus-as-a-service node: a KV API in front of S
// independent consensus groups, amortizing agreement cost through
// request batching and pipelining.
//
// Three throughput levers, composed:
//
//   - Batching: each group's proposer workers drain a bounded intake
//     queue and propose one Batch command — many tagged client ops
//     encoded as a single string — into one consensus slot, so k client
//     writes cost one agreement instead of k.
//   - Pipelining: up to W proposer workers per group each own the slot
//     they atomically claimed, so W consensus instances are in flight
//     concurrently; a reorder buffer applies decided batches strictly in
//     slot order, preserving state-machine determinism.
//   - Sharding: a consistent hash of the key routes each op to one of S
//     independent groups, each with its own rsm.Log and KV state, so
//     aggregate throughput scales with S (no cross-group coordination —
//     and therefore no cross-key transactions across shards).
//
// Every mutating op carries a (client, seq) Tag, making byte-identical
// payloads distinct consensus commands — the service-level twin of
// rsm.Tagged — so retries and duplicates can never be conflated.
//
// The consensus work runs on the concurrent simulator substrate: each
// group owns one sim.RunConcurrent universe of W long-lived processes
// (the proposer workers), with the Go runtime as the weak adversary.
// Reads are served from the group's applied state under a read lock —
// sequentially consistent with respect to the decided log each group has
// applied, not linearizable across groups.
package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/metrics"
	"github.com/oblivious-consensus/conciliator/internal/rsm"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// ErrClosed reports a submission to a node that is draining or closed.
var ErrClosed = errors.New("service: node is closed")

// Config parameterizes a Node. The zero value of each field selects the
// documented default.
type Config struct {
	// Shards is the number of independent consensus groups S (default 1).
	Shards int
	// Pipeline is the number of proposer workers — and so the maximum
	// number of in-flight consensus slots — per group (default 2).
	Pipeline int
	// BatchMax caps the ops batched into one consensus slot (default 64).
	BatchMax int
	// QueueDepth bounds each group's intake queue; submitters block when
	// their group's queue is full (default 256).
	QueueDepth int
	// Seed seeds the consensus stack's per-process RNG streams. Group g
	// forks its own named stream, so groups are decorrelated.
	Seed uint64
	// Protocol selects the consensus construction per slot: "register"
	// (default), "snapshot", or "linear".
	Protocol string
}

func (c *Config) defaults() error {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Pipeline == 0 {
		c.Pipeline = 2
	}
	if c.BatchMax == 0 {
		c.BatchMax = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.Shards < 0 || c.Pipeline < 0 || c.BatchMax < 0 || c.QueueDepth < 0 {
		return fmt.Errorf("service: negative config value (shards %d, pipeline %d, batch-max %d, queue %d)",
			c.Shards, c.Pipeline, c.BatchMax, c.QueueDepth)
	}
	if _, err := protocolFactory(c.Protocol); err != nil {
		return err
	}
	return nil
}

func protocolFactory(name string) (func(n int) *consensus.Protocol[string], error) {
	switch name {
	case "", "register":
		return consensus.NewRegister[string], nil
	case "snapshot":
		return consensus.NewSnapshot[string], nil
	case "linear":
		return consensus.NewLinear[string], nil
	default:
		return nil, fmt.Errorf("service: unknown protocol %q (want register, snapshot, or linear)", name)
	}
}

// OpResult reports where a mutating op committed and, for OpInc, the
// post-increment value.
type OpResult struct {
	Shard int
	Slot  int // group-local slot the op's batch committed in
	Value string
	Found bool
}

// pendingOp is one submission waiting for its batch to commit and apply.
type pendingOp struct {
	tag  Tag
	op   rsm.Op
	done chan OpResult // buffered 1; applier completes it
}

// decidedBatch is a worker's handoff to the group applier: the slot it
// claimed, the value consensus decided there, and the submissions riding
// in the proposed batch.
type decidedBatch struct {
	slot     int
	proposed string
	decided  string
	waiters  []*pendingOp
}

// Node is a consensus-as-a-service KV node.
type Node struct {
	cfg    Config
	groups []*group
	seq    atomic.Uint64

	closeMu  sync.RWMutex
	closed   bool
	closeErr error
	wg       sync.WaitGroup
}

type group struct {
	id   int
	cfg  *Config
	log  *rsm.Log[string]
	node *Node

	intake  chan *pendingOp
	decided chan decidedBatch

	nextSlot atomic.Int64

	mu           sync.RWMutex
	kv           *rsm.KV
	decidedLog   []string
	appliedSlots int
	appliedOps   int64
	batchSizes   *stats.IntHist

	runErr error

	// shardOps is the per-shard committed-op counter, resolved at Start
	// from the then-installed registry (enable metrics before Start).
	shardOps *metrics.Counter
}

// Start validates cfg, spins up the consensus groups, and returns a
// serving node. Callers must Close it to drain and release the workers.
func Start(cfg Config) (*Node, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	mk, _ := protocolFactory(cfg.Protocol)
	n := &Node{cfg: cfg}
	root := xrand.New(cfg.Seed)
	for gid := 0; gid < cfg.Shards; gid++ {
		g := &group{
			id:       gid,
			cfg:      &n.cfg,
			node:     n,
			log:      rsm.NewLog[string](cfg.Pipeline, mk),
			intake:   make(chan *pendingOp, cfg.QueueDepth),
			decided:  make(chan decidedBatch, cfg.Pipeline),
			kv:         rsm.NewKV(),
			batchSizes: stats.NewIntHist(cfg.BatchMax + 1),
			shardOps:   metrics.Default().Counter(fmt.Sprintf("service.shard_ops.%d", gid)),
		}
		n.groups = append(n.groups, g)
		algSeed := root.SeedNamed(uint64(gid))
		n.wg.Add(2)
		go func() {
			defer n.wg.Done()
			// The group's proposer workers are W long-lived processes in
			// their own concurrent-simulator universe; RunConcurrent
			// returns when every worker has drained and exited.
			_, err := sim.RunConcurrent(g.cfg.Pipeline, g.worker, sim.Config{AlgSeed: algSeed})
			g.runErr = err
			close(g.decided)
		}()
		go func() {
			defer n.wg.Done()
			g.applier()
		}()
	}
	return n, nil
}

// Config returns the node's resolved configuration.
func (n *Node) Config() Config { return n.cfg }

// Shards returns the number of consensus groups.
func (n *Node) Shards() int { return n.cfg.Shards }

// ShardOf returns the group serving key: an FNV-1a hash of the key
// modulo the shard count. The mapping is a pure function of (key,
// Shards), so routing is stable across runs and nodes.
func (n *Node) ShardOf(key string) int { return shardOfKey(key, n.cfg.Shards) }

func shardOfKey(key string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// Submit routes one mutating op to its key's group, waits for the batch
// carrying it to commit and apply, and returns the op's result. client
// identifies the submitting session; it only needs to be meaningful to
// the caller (tags are made unique by the node-wide sequence number).
// Submit blocks while the group's intake queue is full — backpressure —
// and fails with ErrClosed once Close has begun.
func (n *Node) Submit(client uint32, op rsm.Op) (OpResult, error) {
	switch op.Kind {
	case rsm.OpSet, rsm.OpDel, rsm.OpInc:
	default:
		return OpResult{}, fmt.Errorf("service: op kind %v is not submittable", op.Kind)
	}
	g := n.groups[n.ShardOf(op.Key)]
	po := &pendingOp{
		tag:  Tag{Client: client, Seq: n.seq.Add(1)},
		op:   op,
		done: make(chan OpResult, 1),
	}
	// The send happens under the read half of closeMu: Close flips the
	// flag and closes the intakes under the write half, so it can only
	// proceed once no submitter is mid-send (a blocked send on a closing
	// channel would panic) and no new submitter can slip in after the
	// drain began.
	n.closeMu.RLock()
	if n.closed {
		n.closeMu.RUnlock()
		return OpResult{}, ErrClosed
	}
	mQueueDepth.Observe(int64(len(g.intake)))
	g.intake <- po
	n.closeMu.RUnlock()
	mSubmitted.Inc()
	return <-po.done, nil
}

// Get serves a read from the key's group state: the result reflects
// every batch that group has applied (sequentially consistent per
// group). Reads cost no consensus.
func (n *Node) Get(key string) (string, bool) {
	g := n.groups[n.ShardOf(key)]
	mReads.Inc()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.kv.Get(key)
}

// worker is one proposer process: it blocks for the first queued op,
// drains up to BatchMax-1 more without blocking, claims the group's next
// slot, proposes the encoded batch into that slot's consensus instance,
// and hands the decided batch to the applier. Exactly one worker
// proposes per slot (the claim is an atomic counter), so the decided
// value is always the claimant's own proposal.
func (g *group) worker(p *sim.Proc) {
	for {
		first, ok := <-g.intake
		if !ok {
			return
		}
		batch := []*pendingOp{first}
	drain:
		for len(batch) < g.cfg.BatchMax {
			select {
			case po, ok := <-g.intake:
				if !ok {
					// Intake closed mid-drain: propose what we have; the
					// next outer receive exits the loop.
					break drain
				}
				batch = append(batch, po)
			default:
				break drain
			}
		}
		ops := make([]BatchOp, len(batch))
		for i, po := range batch {
			ops[i] = BatchOp{Tag: po.tag, Op: po.op}
		}
		enc := EncodeBatch(ops)
		slot := int(g.nextSlot.Add(1) - 1)
		dec := g.log.Propose(p, slot, enc)
		g.decided <- decidedBatch{slot: slot, proposed: enc, decided: dec, waiters: batch}
	}
}

// applier is the group's single in-order apply loop: workers decide
// slots out of order (pipelining), the reorder buffer holds early
// arrivals, and state only ever advances slot by slot.
func (g *group) applier() {
	stash := make(map[int]decidedBatch)
	next := 0
	for db := range g.decided {
		stash[db.slot] = db
		for {
			d, ok := stash[next]
			if !ok {
				break
			}
			delete(stash, next)
			g.apply(d)
			next++
		}
	}
}

func (g *group) apply(d decidedBatch) {
	if d.decided != d.proposed {
		// Slots are single-proposer by construction, so consensus
		// validity forces decided == proposed; anything else means the
		// slot-claim invariant broke and waiters would be lost.
		panic(fmt.Sprintf("service: group %d slot %d decided a batch nobody proposed there", g.id, d.slot))
	}
	ops, err := DecodeBatch(d.decided)
	if err != nil {
		panic(fmt.Sprintf("service: group %d slot %d decided undecodable batch: %v", g.id, d.slot, err))
	}
	results := make([]OpResult, len(ops))
	g.mu.Lock()
	for i, bo := range ops {
		g.kv.Apply(bo.Op)
		res := OpResult{Shard: g.id, Slot: d.slot}
		res.Value, res.Found = g.kv.Get(bo.Op.Key)
		results[i] = res
	}
	g.decidedLog = append(g.decidedLog, d.decided)
	g.appliedSlots++
	g.appliedOps += int64(len(ops))
	g.batchSizes.Add(int64(len(ops)))
	g.mu.Unlock()
	for i, po := range d.waiters {
		po.done <- results[i]
	}
	mBatches.Inc()
	mBatchOps.Observe(int64(len(ops)))
	mCommitted.Add(int64(len(ops)))
	g.shardOps.Add(int64(len(ops)))
}

// Close drains the node gracefully: no new submissions are accepted,
// every already-queued op still commits and applies, in-flight slots
// flush in order, and all worker and applier goroutines exit. Close is
// idempotent; later calls return the first result.
func (n *Node) Close() error {
	n.closeMu.Lock()
	if n.closed {
		n.closeMu.Unlock()
		return n.closeErr
	}
	n.closed = true
	for _, g := range n.groups {
		close(g.intake)
	}
	n.closeMu.Unlock()
	n.wg.Wait()
	errs := make([]error, 0, len(n.groups))
	for _, g := range n.groups {
		if g.runErr != nil {
			errs = append(errs, fmt.Errorf("group %d: %w", g.id, g.runErr))
		}
	}
	n.closeErr = errors.Join(errs...)
	return n.closeErr
}

// GroupStatus is one group's point-in-time counters.
type GroupStatus struct {
	Shard        int   `json:"shard"`
	AppliedSlots int   `json:"applied_slots"`
	AppliedOps   int64 `json:"applied_ops"`
	QueueLen     int   `json:"queue_len"`
	Keys         int   `json:"keys"`
}

// Status is the /v1/status payload.
type Status struct {
	Shards     int           `json:"shards"`
	Pipeline   int           `json:"pipeline"`
	BatchMax   int           `json:"batch_max"`
	QueueDepth int           `json:"queue_depth"`
	Protocol   string        `json:"protocol"`
	Submitted  uint64        `json:"submitted"`
	Groups     []GroupStatus `json:"groups"`
}

// Status snapshots the node.
func (n *Node) Status() Status {
	s := Status{
		Shards:     n.cfg.Shards,
		Pipeline:   n.cfg.Pipeline,
		BatchMax:   n.cfg.BatchMax,
		QueueDepth: n.cfg.QueueDepth,
		Protocol:   n.cfg.Protocol,
		Submitted:  n.seq.Load(),
	}
	if s.Protocol == "" {
		s.Protocol = "register"
	}
	for _, g := range n.groups {
		g.mu.RLock()
		gs := GroupStatus{
			Shard:        g.id,
			AppliedSlots: g.appliedSlots,
			AppliedOps:   g.appliedOps,
			QueueLen:     len(g.intake),
			Keys:         g.kv.Len(),
		}
		g.mu.RUnlock()
		s.Groups = append(s.Groups, gs)
	}
	return s
}

// DecidedLog returns a copy of shard's applied batch log in slot order —
// the canonical byte string the determinism tests fingerprint.
func (n *Node) DecidedLog(shard int) []string {
	g := n.groups[shard]
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, len(g.decidedLog))
	copy(out, g.decidedLog)
	return out
}

// KVFingerprint returns shard's canonical state digest.
func (n *Node) KVFingerprint(shard int) string {
	g := n.groups[shard]
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.kv.Fingerprint()
}

// BatchOccupancy merges every group's batch-size histogram: how many ops
// rode in each decided consensus slot so far.
func (n *Node) BatchOccupancy() *stats.IntHist {
	out := stats.NewIntHist(n.cfg.BatchMax + 1)
	for _, g := range n.groups {
		g.mu.RLock()
		out.Merge(g.batchSizes)
		g.mu.RUnlock()
	}
	return out
}
