package service

import (
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
)

func TestBatchRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Tag: Tag{Client: 1, Seq: 1}, Op: rsm.Op{Kind: rsm.OpSet, Key: "plain", Value: "v1"}},
		{Tag: Tag{Client: 2, Seq: 9}, Op: rsm.Op{Kind: rsm.OpInc, Key: "counter"}},
		{Tag: Tag{Client: 3, Seq: 2}, Op: rsm.Op{Kind: rsm.OpDel, Key: "gone"}},
		{Tag: Tag{Client: 0, Seq: 18446744073709551615}, Op: rsm.Op{
			Kind: rsm.OpSet, Key: "spaces and\nnewlines", Value: `quotes " and \ slashes`,
		}},
		{Tag: Tag{Client: 4294967295, Seq: 4}, Op: rsm.Op{Kind: rsm.OpSet, Key: "", Value: ""}},
	}
	enc := EncodeBatch(ops)
	if !strings.HasPrefix(enc, batchMagic+"\n") {
		t.Fatalf("encoding missing %q header: %q", batchMagic, enc)
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d round-tripped as %+v, want %+v", i, got[i], ops[i])
		}
	}
	// Canonical: re-encoding the decoded ops reproduces the bytes.
	if re := EncodeBatch(got); re != enc {
		t.Fatalf("re-encoding is not canonical:\n%q\nvs\n%q", re, enc)
	}
}

func TestBatchEncodingCanonical(t *testing.T) {
	ops := []BatchOp{{Tag: Tag{Client: 7, Seq: 3}, Op: rsm.Op{Kind: rsm.OpSet, Key: "k", Value: "v"}}}
	if EncodeBatch(ops) != EncodeBatch(ops) {
		t.Fatal("encoding the same ops twice produced different bytes")
	}
	if EncodeBatch(nil) != batchMagic+"\n" {
		t.Fatalf("empty batch = %q, want bare header", EncodeBatch(nil))
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	good := EncodeBatch([]BatchOp{{Tag: Tag{Client: 1, Seq: 1}, Op: rsm.Op{Kind: rsm.OpSet, Key: "k", Value: "v"}}})
	cases := []struct{ name, enc string }{
		{"empty", ""},
		{"wrong magic", "rsm-batch/v0\n"},
		{"missing header newline", batchMagic},
		{"unterminated line", batchMagic + "\n0 1 1 \"k\" \"v\""},
		{"unknown kind", batchMagic + "\n99 1 1 \"k\" \"v\"\n"},
		{"non-integer kind", batchMagic + "\nx 1 1 \"k\" \"v\"\n"},
		{"negative client", batchMagic + "\n0 -1 1 \"k\" \"v\"\n"},
		{"client overflow", batchMagic + "\n0 4294967296 1 \"k\" \"v\"\n"},
		{"unquoted key", batchMagic + "\n0 1 1 k \"v\"\n"},
		{"unterminated quote", batchMagic + "\n0 1 1 \"k \"v\"\n"},
		{"missing value", batchMagic + "\n0 1 1 \"k\"\n"},
		{"trailing garbage", batchMagic + "\n0 1 1 \"k\" \"v\" extra\n"},
		{"truncated fields", batchMagic + "\n0 1\n"},
		{"good line then bad", good + "garbage\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ops, err := DecodeBatch(tc.enc); err == nil {
				t.Fatalf("decoded %q as %+v, want error", tc.enc, ops)
			}
		})
	}
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch([]BatchOp{{Tag: Tag{Client: 1, Seq: 2}, Op: rsm.Op{Kind: rsm.OpInc, Key: "k"}}}))
	f.Add(batchMagic + "\n")
	f.Add("0 1 1 \"k\" \"v\"\n")
	f.Fuzz(func(t *testing.T, enc string) {
		ops, err := DecodeBatch(enc)
		if err != nil {
			return
		}
		// The decoder may accept non-canonical spellings (leading zeros,
		// alternative quote escapes), but one re-encode must reach the
		// canonical fixed point: encode(decode(x)) round-trips exactly.
		canon := EncodeBatch(ops)
		again, err := DecodeBatch(canon)
		if err != nil {
			t.Fatalf("canonical re-encoding %q does not decode: %v", canon, err)
		}
		if EncodeBatch(again) != canon {
			t.Fatalf("encode/decode did not reach a fixed point for %q", enc)
		}
	})
}
