package service

import (
	"testing"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestRunLoadAgainstNode(t *testing.T) {
	n, err := Start(Config{Shards: 2, Pipeline: 2, BatchMax: 16, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	rep, err := RunLoad(NodeBackend{Node: n}, LoadConfig{
		Clients:  4,
		Duration: 150 * time.Millisecond,
		ReadFrac: 0.5,
		Keys:     64,
		Seed:     31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d load errors against a healthy node", rep.Errors)
	}
	if rep.Writes == 0 || rep.Reads == 0 {
		t.Fatalf("degenerate mix: %d reads, %d writes", rep.Reads, rep.Writes)
	}
	if rep.WriteLat.N() != rep.Writes || rep.ReadLat.N() != rep.Reads {
		t.Fatalf("histogram counts (%d, %d) disagree with op counts (%d, %d)",
			rep.ReadLat.N(), rep.WriteLat.N(), rep.Reads, rep.Writes)
	}
	if rep.Throughput() <= 0 || rep.WriteThroughput() <= 0 {
		t.Fatalf("throughput %f / %f, want > 0", rep.Throughput(), rep.WriteThroughput())
	}
	if p99 := rep.WriteLat.Quantile(0.99); p99 <= 0 || p99 > maxLatencyUs {
		t.Fatalf("write p99 %dus out of range", p99)
	}
	// The load actually committed through consensus.
	var applied int64
	for _, gs := range n.Status().Groups {
		applied += gs.AppliedOps
	}
	if applied != rep.Writes {
		t.Fatalf("node applied %d ops, load reported %d committed writes", applied, rep.Writes)
	}
}

func TestRunLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad(NodeBackend{}, LoadConfig{Skew: "pareto"}); err == nil {
		t.Fatal("RunLoad accepted unknown skew")
	}
	if _, err := RunLoad(NodeBackend{}, LoadConfig{ReadFrac: 1.5}); err == nil {
		t.Fatal("RunLoad accepted ReadFrac > 1")
	}
}

// TestKeySamplerZipfSkew checks the zipf sampler actually skews: rank 0
// must be drawn far more often than the tail, and the sampled stream is
// a pure function of the seed.
func TestKeySamplerZipfSkew(t *testing.T) {
	const keys, draws = 64, 20000
	s := newKeySampler(SkewZipf, keys)
	counts := make(map[string]int)
	rng := xrand.New(17)
	for i := 0; i < draws; i++ {
		counts[s.key(rng)]++
	}
	hot, cold := counts["k00000"], counts["k00063"]
	if hot < 10*cold+10 {
		t.Fatalf("zipf head not hot: k00000=%d, k00063=%d", hot, cold)
	}
	// Deterministic replay.
	rngA, rngB := xrand.New(23), xrand.New(23)
	for i := 0; i < 1000; i++ {
		if a, b := s.key(rngA), s.key(rngB); a != b {
			t.Fatalf("draw %d diverged under identical seeds: %q vs %q", i, a, b)
		}
	}
}

func TestKeySamplerUniformCoverage(t *testing.T) {
	const keys = 16
	s := newKeySampler(SkewUniform, keys)
	rng := xrand.New(9)
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		seen[s.key(rng)] = true
	}
	if len(seen) != keys {
		t.Fatalf("uniform sampler hit %d/%d keys", len(seen), keys)
	}
}
