// Seeded closed-loop load generator for the consensus service.
//
// Each client worker owns an independent named fork of the root RNG, so
// the op stream per client — keys, kinds, values — is a pure function of
// (seed, client index) regardless of how the scheduler interleaves the
// workers. Latency is wall-clock end-to-end (enqueue through applied
// batch), recorded in microseconds into worker-local stats.IntHist
// instances and merged once at the end.
package service

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// maxLatencyUs clamps recorded latencies: anything slower than a second
// reports as one second. The histogram's footprint is fixed regardless
// (see latSub), so the clamp only keeps the reported tail sane.
const maxLatencyUs = 1_000_000

// latSub is the latency histograms' log-linear resolution: 64 buckets
// per octave bounds the quantile error at ~1.6% while keeping every
// histogram ~30 KB, allocated once. Recording latencies into a dense
// exact histogram is a trap this load generator walked into first: one
// one-second outlier grows a µs-indexed dense table to 8 MB, and dozens
// of clients re-growing tables on one CPU feed back into the very tail
// latencies being measured until throughput collapses ~200x.
const latSub = 64

// Skew names for LoadConfig.Skew.
const (
	SkewUniform = "uniform"
	SkewZipf    = "zipf"
)

// zipfExponent shapes the zipf key popularity: rank r is drawn with
// probability proportional to 1/(r+1)^s. 1.1 gives a hot head without
// collapsing onto a single key.
const zipfExponent = 1.1

// Backend is the surface the load generator drives: the in-process Node
// directly, or a remote node over HTTP.
type Backend interface {
	// Read fetches a key from applied state.
	Read(key string) (value string, found bool, err error)
	// Write submits one mutating op for client and blocks until it has
	// committed and applied.
	Write(client uint32, op rsm.Op) error
}

// NodeBackend adapts an in-process Node to the Backend surface.
type NodeBackend struct{ Node *Node }

func (b NodeBackend) Read(key string) (string, bool, error) {
	v, ok := b.Node.Get(key)
	return v, ok, nil
}

func (b NodeBackend) Write(client uint32, op rsm.Op) error {
	_, err := b.Node.Submit(client, op)
	return err
}

// LoadConfig parameterizes one load-generator run.
type LoadConfig struct {
	Clients  int           // concurrent closed-loop clients (default 8)
	Duration time.Duration // wall-clock run length (default 1s)
	ReadFrac float64       // fraction of ops that are reads (default 0.5)
	Keys     int           // keyspace size (default 1024)
	Skew     string        // SkewUniform or SkewZipf (default uniform)
	Seed     uint64        // root seed for all client streams
}

func (c *LoadConfig) defaults() error {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Skew == "" {
		c.Skew = SkewUniform
	}
	if c.Skew != SkewUniform && c.Skew != SkewZipf {
		return fmt.Errorf("service: unknown skew %q (want %q or %q)", c.Skew, SkewUniform, SkewZipf)
	}
	if c.Clients < 0 || c.Keys < 0 || c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("service: bad load config %+v", *c)
	}
	return nil
}

// LoadReport aggregates one run: op counts, error count, and merged
// latency histograms in microseconds (log-linear, ≤1/latSub relative
// quantile error, exact min/max/mean).
type LoadReport struct {
	Wall     time.Duration
	Reads    int64
	Writes   int64
	Errors   int64
	ReadLat  *stats.LogHist
	WriteLat *stats.LogHist
}

// Throughput returns total committed ops per second.
func (r LoadReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Reads+r.Writes) / r.Wall.Seconds()
}

// WriteThroughput returns committed writes per second.
func (r LoadReport) WriteThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Writes) / r.Wall.Seconds()
}

// RunLoad drives cfg.Clients closed-loop workers against the backend
// until cfg.Duration elapses, then waits for every in-flight op to
// complete before reporting.
func RunLoad(b Backend, cfg LoadConfig) (LoadReport, error) {
	if err := cfg.defaults(); err != nil {
		return LoadReport{}, err
	}
	root := xrand.New(cfg.Seed)
	sampler := newKeySampler(cfg.Skew, cfg.Keys)

	type workerStats struct {
		reads, writes, errs int64
		readLat, writeLat   *stats.LogHist
	}
	results := make([]workerStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		// Fork before spawning: root is not goroutine-safe.
		rng := root.ForkNamed(uint64(c))
		wg.Add(1)
		go func(client int, rng *xrand.Rand) {
			defer wg.Done()
			ws := &results[client]
			ws.readLat = stats.NewLogHist(latSub)
			ws.writeLat = stats.NewLogHist(latSub)
			for time.Now().Before(deadline) {
				key := sampler.key(rng)
				opStart := time.Now()
				if rng.Float64() < cfg.ReadFrac {
					if _, _, err := b.Read(key); err != nil {
						ws.errs++
						continue
					}
					ws.readLat.Add(clampLatency(time.Since(opStart)))
					ws.reads++
					continue
				}
				if err := b.Write(uint32(client), randOp(rng, key)); err != nil {
					ws.errs++
					continue
				}
				ws.writeLat.Add(clampLatency(time.Since(opStart)))
				ws.writes++
			}
		}(c, rng)
	}
	wg.Wait()

	rep := LoadReport{
		Wall:     time.Since(start),
		ReadLat:  stats.NewLogHist(latSub),
		WriteLat: stats.NewLogHist(latSub),
	}
	for i := range results {
		ws := &results[i]
		rep.Reads += ws.reads
		rep.Writes += ws.writes
		rep.Errors += ws.errs
		rep.ReadLat.Merge(ws.readLat)
		rep.WriteLat.Merge(ws.writeLat)
	}
	return rep, nil
}

func clampLatency(d time.Duration) int64 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > maxLatencyUs {
		return maxLatencyUs
	}
	return us
}

// randOp draws one mutating op: mostly sets, a good share of increments
// (they exercise read-modify-write through the applied state), a few
// deletes to churn the keyspace.
func randOp(rng *xrand.Rand, key string) rsm.Op {
	switch r := rng.Float64(); {
	case r < 0.5:
		return rsm.Op{Kind: rsm.OpSet, Key: key, Value: fmt.Sprintf("v%d", rng.Uint64n(1<<20))}
	case r < 0.9:
		return rsm.Op{Kind: rsm.OpInc, Key: key}
	default:
		return rsm.Op{Kind: rsm.OpDel, Key: key}
	}
}

// keySampler draws key indices under the configured skew and renders
// them as fixed-width key names.
type keySampler struct {
	keys []string  // pre-rendered key names
	cdf  []float64 // nil for uniform; cumulative zipf weights otherwise
}

func newKeySampler(skew string, n int) *keySampler {
	s := &keySampler{keys: make([]string, n)}
	for i := range s.keys {
		s.keys[i] = fmt.Sprintf("k%05d", i)
	}
	if skew == SkewZipf {
		s.cdf = make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			total += 1 / math.Pow(float64(i+1), zipfExponent)
			s.cdf[i] = total
		}
		for i := range s.cdf {
			s.cdf[i] /= total
		}
	}
	return s
}

func (s *keySampler) key(rng *xrand.Rand) string {
	if s.cdf == nil {
		return s.keys[rng.Intn(len(s.keys))]
	}
	u := rng.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.keys) {
		i = len(s.keys) - 1
	}
	return s.keys[i]
}
