package service

import "github.com/oblivious-consensus/conciliator/internal/metrics"

// Cached instruments; nil (free no-ops) until a registry is installed.
// Install the registry (metrics.SetDefault) before Start so the
// per-shard counters resolve too — see group.shardOps.
var (
	mSubmitted  *metrics.Counter   // service.ops_submitted: mutating ops accepted into a queue
	mCommitted  *metrics.Counter   // service.ops_committed: ops applied from decided batches
	mReads      *metrics.Counter   // service.reads: Get operations served from applied state
	mBatches    *metrics.Counter   // service.batches: consensus slots decided and applied
	mBatchOps   *metrics.Histogram // service.batch_ops: ops per decided batch (occupancy)
	mQueueDepth *metrics.Histogram // service.queue_depth: intake queue length sampled at enqueue
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mSubmitted = r.Counter("service.ops_submitted")
		mCommitted = r.Counter("service.ops_committed")
		mReads = r.Counter("service.reads")
		mBatches = r.Counter("service.batches")
		mBatchOps = r.Histogram("service.batch_ops")
		mQueueDepth = r.Histogram("service.queue_depth")
	})
}
