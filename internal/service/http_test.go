package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/rsm"
)

func startTestServer(t *testing.T) (*Node, *httptest.Server) {
	t.Helper()
	n, err := Start(Config{Shards: 2, Pipeline: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(n))
	t.Cleanup(func() {
		srv.Close()
		n.Close()
	})
	return n, srv
}

func do(t *testing.T, method, url, body string) (int, kvResponse) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kr kvResponse
	if resp.Header.Get("Content-Type") == "application/json" {
		if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil && err != io.EOF {
			t.Fatalf("%s %s: bad JSON: %v", method, url, err)
		}
	}
	return resp.StatusCode, kr
}

func TestHTTPKVLifecycle(t *testing.T) {
	_, srv := startTestServer(t)
	url := srv.URL + "/v1/kv/greeting"

	if code, _ := do(t, "GET", url, ""); code != http.StatusNotFound {
		t.Fatalf("GET missing key: %d, want 404", code)
	}
	if code, kr := do(t, "PUT", url, "hello"); code != http.StatusOK || kr.Value != "hello" || !kr.Found {
		t.Fatalf("PUT: %d %+v", code, kr)
	}
	if code, kr := do(t, "GET", url, ""); code != http.StatusOK || kr.Value != "hello" {
		t.Fatalf("GET after PUT: %d %+v", code, kr)
	}
	if code, _ := do(t, "DELETE", url, ""); code != http.StatusOK {
		t.Fatalf("DELETE: %d", code)
	}
	if code, _ := do(t, "GET", url, ""); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", code)
	}
}

func TestHTTPInc(t *testing.T) {
	_, srv := startTestServer(t)
	url := srv.URL + "/v1/kv/hits"

	// Custom INC verb and the POST /inc spelling are equivalent.
	if code, kr := do(t, "INC", url, ""); code != http.StatusOK || kr.Value != "1" {
		t.Fatalf("INC: %d %+v", code, kr)
	}
	if code, kr := do(t, "POST", url+"/inc", ""); code != http.StatusOK || kr.Value != "2" {
		t.Fatalf("POST /inc: %d %+v", code, kr)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, srv := startTestServer(t)
	req, err := http.NewRequest("PATCH", srv.URL+"/v1/kv/k", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH: %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "INC") {
		t.Fatalf("Allow header %q does not advertise INC", allow)
	}
}

func TestHTTPStatus(t *testing.T) {
	n, srv := startTestServer(t)
	if _, err := n.Submit(0, rsm.Op{Kind: rsm.OpSet, Key: "s", Value: "1"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Protocol != "register" || len(st.Groups) != 2 {
		t.Fatalf("status: %+v", st)
	}
	var ops int64
	for _, g := range st.Groups {
		ops += g.AppliedOps
	}
	if ops == 0 {
		t.Fatal("status shows zero applied ops after a committed write")
	}
}

func TestHTTPClosedNode(t *testing.T) {
	n, srv := startTestServer(t)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, "PUT", srv.URL+"/v1/kv/k", "v"); code != http.StatusServiceUnavailable {
		t.Fatalf("PUT on closed node: %d, want 503", code)
	}
	// Reads still work against the final applied state.
	if code, _ := do(t, "GET", srv.URL+"/v1/kv/k", ""); code != http.StatusNotFound {
		t.Fatalf("GET on closed node: %d, want 404", code)
	}
}
