// Package attack implements adversaries that are deliberately NOT
// oblivious, as negative controls for the paper's model assumptions
// (Section 5, "Strength of the adversary").
//
// The paper's conciliators pre-draw all randomness into personae, which
// is safe only because the oblivious adversary cannot observe it. This
// package plays an adversary that CAN: it knows the algorithm seed,
// reconstructs every persona's chooseWrite bits, and schedules each
// sifting round so that all readers go before any writer. Every round's
// register is still empty when the readers arrive, so nobody ever adopts
// anything: the number of distinct personae never decreases and
// Algorithm 2's agreement probability collapses to zero (for n >= 2).
//
// The attack demonstrates that the O(log log n) bound genuinely uses
// obliviousness — a content-aware or coin-aware adversary defeats the
// protocol outright — reproducing the paper's observation that its
// algorithms need at minimum a content-oblivious, weak adversary.
package attack

import (
	"sort"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// PredictSifterWriteBits reconstructs, for every process, the chooseWrite
// bits its persona will carry in a sifter run with the given algorithm
// seed and write-probability schedule. It white-box-replicates the
// simulator's per-process stream derivation (xrand.New(seed).
// ForkNamed(pid)) and the persona's draw order (coin bit first, then
// write bits); the package tests pin this coupling to the actual
// implementation.
func PredictSifterWriteBits(n int, algSeed uint64, probs []float64) [][]bool {
	bits := make([][]bool, n)
	master := xrand.New(algSeed)
	streams := make([]*xrand.Rand, n)
	for pid := 0; pid < n; pid++ {
		// sim.RunControlled forks process streams in id order.
		streams[pid] = master.ForkNamed(uint64(pid))
	}
	for pid := 0; pid < n; pid++ {
		rng := streams[pid]
		rng.Bool() // persona coin bit
		bits[pid] = make([]bool, len(probs))
		for i, p := range probs {
			bits[pid][i] = rng.Bernoulli(p)
		}
	}
	return bits
}

// SifterBitLeakSchedule builds the readers-first schedule that freezes
// Algorithm 2: in every round, processes whose persona reads r_i are
// scheduled before any process that writes it. Under this schedule no
// reader ever sees a non-empty register, so every process keeps its
// original persona through all rounds.
//
// The returned schedule is explicit and finite, sized exactly for the
// sifter's R rounds (one operation per process per round).
func SifterBitLeakSchedule(n int, algSeed uint64, epsilon float64) *sched.Explicit {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.5
	}
	rounds := conciliator.SifterRounds(n, epsilon)
	if rounds < 1 {
		rounds = 1
	}
	probs := conciliator.SifterProbs(n, rounds)
	bits := PredictSifterWriteBits(n, algSeed, probs)

	var slots []int
	for i := 0; i < rounds; i++ {
		for pid := 0; pid < n; pid++ { // readers first: register still empty
			if !bits[pid][i] {
				slots = append(slots, pid)
			}
		}
		for pid := 0; pid < n; pid++ { // then writers
			if bits[pid][i] {
				slots = append(slots, pid)
			}
		}
	}
	return sched.NewExplicit(n, slots)
}

// PredictPriorityVectors reconstructs every process's per-round
// priorities for an Algorithm 1 run with the given seed and
// configuration, again by white-box replication of the stream derivation
// and the persona draw order (coin bit, then priorities).
func PredictPriorityVectors(n int, algSeed uint64, rounds int, bound uint64) [][]uint64 {
	out := make([][]uint64, n)
	master := xrand.New(algSeed)
	streams := make([]*xrand.Rand, n)
	for pid := 0; pid < n; pid++ {
		streams[pid] = master.ForkNamed(uint64(pid))
	}
	for pid := 0; pid < n; pid++ {
		rng := streams[pid]
		rng.Bool() // persona coin bit
		out[pid] = make([]uint64, rounds)
		for i := range out[pid] {
			if bound > 0 {
				out[pid][i] = 1 + rng.Uint64n(bound)
			} else {
				out[pid][i] = rng.Uint64()
			}
		}
	}
	return out
}

// PriorityLeakSchedule defeats Algorithm 1 the same way
// SifterBitLeakSchedule defeats Algorithm 2: knowing every persona's
// priorities, the adversary orders each round's processes by ascending
// priority and lets each one update AND scan before any higher-priority
// persona is written. Every process's scan then shows its own persona as
// the round maximum, so nobody ever adopts: all n personae survive every
// round and agreement probability collapses to zero.
//
// The schedule only works because under it every process keeps its
// original persona, so the adversary can precompute carrier identities
// for all rounds. It assumes the Priority conciliator's default
// configuration (full-width priorities, paper round count for the given
// epsilon).
func PriorityLeakSchedule(n int, algSeed uint64, epsilon float64) *sched.Explicit {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.5
	}
	rounds := conciliator.PriorityRounds(n, epsilon)
	prios := PredictPriorityVectors(n, algSeed, rounds, 0)

	var slots []int
	order := make([]int, n)
	for i := 0; i < rounds; i++ {
		for pid := range order {
			order[pid] = pid
		}
		sort.Slice(order, func(a, b int) bool {
			return prios[order[a]][i] < prios[order[b]][i]
		})
		for _, pid := range order {
			slots = append(slots, pid, pid) // update, then scan, back to back
		}
	}
	return sched.NewExplicit(n, slots)
}

// WritersFirstSchedule is the benign mirror image: writers before
// readers in every round, which makes every reader adopt and collapses
// the persona set as fast as possible. Together with the bit-leak
// schedule it brackets what schedule choice alone can do when the
// adversary sees the coins.
func WritersFirstSchedule(n int, algSeed uint64, epsilon float64) *sched.Explicit {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.5
	}
	rounds := conciliator.SifterRounds(n, epsilon)
	if rounds < 1 {
		rounds = 1
	}
	probs := conciliator.SifterProbs(n, rounds)
	bits := PredictSifterWriteBits(n, algSeed, probs)

	var slots []int
	for i := 0; i < rounds; i++ {
		for pid := 0; pid < n; pid++ {
			if bits[pid][i] {
				slots = append(slots, pid)
			}
		}
		for pid := 0; pid < n; pid++ {
			if !bits[pid][i] {
				slots = append(slots, pid)
			}
		}
	}
	return sched.NewExplicit(n, slots)
}
