package search

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Config parameterizes one search run. A run is a pure function of the
// whole struct except Parallelism, which only changes wall-clock time.
type Config struct {
	// Protocol names the stack under attack (see Protocols()).
	Protocol string
	// N is the process count, in [2, 64].
	N int
	// Seed drives every random choice (0 = default 20120716).
	Seed uint64
	// Budget is the total number of candidate evaluations the
	// evolutionary loop may spend, including the initial population
	// (default 96; shrinking and confirmation are budgeted separately).
	Budget int
	// Pop is the population size (default 12).
	Pop int
	// EvalTrials is the number of (algorithm seed, schedule seed) pairs
	// each candidate is scored on — the same pairs for every candidate,
	// so selection compares like with like (default 6).
	EvalTrials int
	// ConfirmTrials scores the final winner on this many fresh seed
	// pairs, disjoint from the search seeds: the confirmation score is
	// an unbiased estimate, free of the selection bias a maximizing
	// search puts on its own evaluation seeds (default 24).
	ConfirmTrials int
	// RestartRate is the ε-greedy restart probability: each offspring
	// slot is filled with a fresh random genome instead of a
	// mutate(crossover(...)) child with this probability (default 0.15).
	RestartRate float64
	// Faults allows stutter/stall fault-schedule components in genomes.
	Faults bool
	// ShrinkBudget caps the evaluations the ddmin shrinker spends
	// (default 64).
	ShrinkBudget int
	// MaxSlots is the per-trial slot budget (default 1<<22).
	MaxSlots int64
	// Parallelism is the number of evaluation workers (0 = NumCPU).
	// Results are byte-identical for any value.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20120716
	}
	if c.Budget <= 0 {
		c.Budget = 96
	}
	if c.Pop <= 0 {
		c.Pop = 12
	}
	if c.Pop > c.Budget {
		c.Pop = c.Budget
	}
	if c.EvalTrials <= 0 {
		c.EvalTrials = 6
	}
	if c.ConfirmTrials <= 0 {
		c.ConfirmTrials = 24
	}
	if c.RestartRate <= 0 {
		c.RestartRate = 0.15
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 64
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = 1 << 22
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

func (c Config) validate() error {
	if c.N < 2 || c.N > 64 {
		return fmt.Errorf("search: process count %d outside [2, 64]", c.N)
	}
	if _, err := protocolByName(c.Protocol); err != nil {
		return err
	}
	return nil
}

// Score aggregates one candidate's trials. StepsMean — the mean over
// trials of the slowest process's steps to decision — is the fitness the
// search maximizes; phases count the consensus rounds the adversary
// forced.
type Score struct {
	// StepsMean is the mean over trials of max individual steps.
	StepsMean float64 `json:"steps_mean"`
	// StepsCI95 is the 95% confidence half-width of StepsMean.
	StepsCI95 float64 `json:"steps_ci95"`
	// StepsMax is the largest individual step count in any trial.
	StepsMax int64 `json:"steps_max"`
	// TotalMean is the mean over trials of total steps.
	TotalMean float64 `json:"total_steps_mean"`
	// PhasesMean is the mean over trials of the max phases any process
	// used.
	PhasesMean float64 `json:"phases_mean"`
	// PhasesMax is the largest phase count in any trial.
	PhasesMax int `json:"phases_max"`
	// Undecided counts trials where some process failed to decide
	// within the slot budget (0 in healthy runs).
	Undecided int `json:"undecided,omitempty"`
}

// seedPair is one trial's independent seed streams (algorithm coins vs
// adversary schedule), mirroring the experiment harness.
type seedPair struct {
	alg   uint64
	sched uint64
}

// evalSeeds derives the candidate-evaluation seed pairs; confirmSeeds the
// disjoint confirmation pairs. Named forks keep the four streams
// independent of each other and of the genome-generation stream.
func evalSeeds(master uint64, trials int) []seedPair {
	return derivePairs(master, trials, 0xa19, 0x5ced)
}

func confirmSeeds(master uint64, trials int) []seedPair {
	return derivePairs(master, trials, 0xc0f1, 0xc05d)
}

func derivePairs(master uint64, trials int, algLabel, schedLabel uint64) []seedPair {
	algRng := xrand.New(master).ForkNamed(algLabel)
	schRng := xrand.New(master).ForkNamed(schedLabel)
	out := make([]seedPair, trials)
	for i := range out {
		out[i] = seedPair{alg: algRng.Uint64(), sched: schRng.Uint64()}
	}
	return out
}

// Result is one completed search.
type Result struct {
	// Config echoes the (defaulted) inputs.
	Config Config
	// Winner is the ddmin-shrunk best genome.
	Winner *Genome
	// Evaluations is how many candidate evaluations were spent in total
	// (search loop + shrinking).
	Evaluations int
	// Score is the winner's score on the search's evaluation seeds.
	Score Score
	// Confirm is the winner's score on the fresh confirmation seeds.
	Confirm Score
	// WhiteBox scores the coin-aware graft — the white-box phase-1
	// freeze from internal/attack prepended to the winner's own
	// schedule — on the same confirmation seeds. It can do everything
	// the winner does plus read the coins, so Confirm must not exceed
	// it (the strength separation E19 tables and tests pin).
	WhiteBox Score
	// Baselines scores friendly schedules ("round-robin", "random") on
	// the confirmation seeds, for the E19 comparison.
	Baselines map[string]Score
}

// evaluator scores genomes for one (protocol, n) search.
type evaluator struct {
	def      protocolDef
	n        int
	maxSlots int64
}

// sourceKind selects how the evaluator builds a trial's schedule.
type sourceKind int

const (
	srcGenome sourceKind = iota
	srcWhiteBox
	srcRoundRobin
	srcRandom
)

// score runs the genome (or a baseline) over the seed pairs and
// aggregates. Each trial is a fresh consensus instance under a schedule
// rebuilt from the trial's schedule seed; the returned aggregates are
// the ONLY thing the caller ever sees — coins and register contents stay
// inside the simulator, which is what keeps the search oblivious.
func (ev *evaluator) score(g *Genome, seeds []seedPair, kind sourceKind) (Score, error) {
	var s Score
	stepSamples := make([]int64, 0, len(seeds))
	for _, sp := range seeds {
		var (
			src sched.Source
			err error
		)
		switch kind {
		case srcGenome, srcWhiteBox:
			src, err = g.Source(sp.sched)
			if err != nil {
				return s, err
			}
			if kind == srcWhiteBox {
				// The coin-aware prefix freezes phase 1 (no conciliator
				// agreement is possible under it), then hands over to the
				// genome's own schedule: strictly more adversarial power.
				src = sched.NewSeq(ev.def.whiteboxPrefix(ev.n, sp.alg), src)
			}
		case srcRoundRobin:
			src = sched.NewRoundRobin(ev.n)
		case srcRandom:
			src = sched.NewRandom(ev.n, xrand.New(sp.sched))
		}
		cfg := sim.Config{AlgSeed: sp.alg, MaxSlots: ev.maxSlots}
		if kind == srcGenome || kind == srcWhiteBox {
			cfg.Faults = g.Fault
		}
		proto := ev.def.build(ev.n)
		_, fin, res, runErr := sim.Collect(src, cfg, func(p *sim.Proc) int {
			return proto.Propose(p, p.ID())
		})
		decided := runErr == nil
		for _, f := range fin {
			decided = decided && f
		}
		if !decided {
			// Slot-budget exhaustion is data, not an error: the observed
			// steps still lower-bound the adversary's damage.
			s.Undecided++
		}
		if m := res.MaxSteps(); m > s.StepsMax {
			s.StepsMax = m
		}
		stepSamples = append(stepSamples, res.MaxSteps())
		s.TotalMean += float64(res.TotalSteps)
		ph := proto.MaxPhases()
		s.PhasesMean += float64(ph)
		if ph > s.PhasesMax {
			s.PhasesMax = ph
		}
	}
	sum := stats.SummarizeInts(stepSamples)
	s.StepsMean, s.StepsCI95 = sum.Mean, sum.CI95()
	k := float64(len(seeds))
	s.TotalMean /= k
	s.PhasesMean /= k
	return s, nil
}

// scoreBatch evaluates candidates across workers pulling indices from an
// atomic counter. Workers write only cands[i]'s slot, so results are
// identical for any worker count.
func (ev *evaluator) scoreBatch(cands []*Genome, seeds []seedPair, workers int) ([]Score, error) {
	scores := make([]Score, len(cands))
	errs := make([]error, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, g := range cands {
			scores[i], errs[i] = ev.score(g, seeds, srcGenome)
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					scores[i], errs[i] = ev.score(cands[i], seeds, srcGenome)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return scores, nil
}

// member pairs a genome with its score and arrival order, the unit of
// selection.
type member struct {
	g     *Genome
	score Score
	born  int // arrival index, the deterministic tie-breaker
}

// fitter reports whether a beats b: higher mean steps, then higher mean
// phases, then earlier arrival (stable under exact ties).
func fitter(a, b member) bool {
	if a.score.StepsMean != b.score.StepsMean {
		return a.score.StepsMean > b.score.StepsMean
	}
	if a.score.PhasesMean != b.score.PhasesMean {
		return a.score.PhasesMean > b.score.PhasesMean
	}
	return a.born < b.born
}

// Search runs the evolutionary loop: evaluate a seeded random
// population, then repeatedly breed (tournament parents, crossover,
// mutation) with ε-greedy random restarts, keeping the fittest Pop
// members, until the evaluation budget is spent. The best genome is then
// ddmin-shrunk and re-scored on fresh confirmation seeds next to its
// white-box graft and the friendly baselines.
func Search(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	def, err := protocolByName(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{def: def, n: cfg.N, maxSlots: cfg.MaxSlots}
	seeds := evalSeeds(cfg.Seed, cfg.EvalTrials)

	// The genome stream drives generation, selection, and mutation; it is
	// independent of the evaluation seed streams, so reshaping the search
	// never changes what any given candidate scores.
	genomeRng := xrand.New(cfg.Seed).ForkNamed(0x9e0e)

	born := 0
	fresh := func() *Genome {
		born++
		return randomGenome(cfg.N, genomeRng, cfg.Faults)
	}

	pop := make([]member, 0, cfg.Pop)
	cands := make([]*Genome, cfg.Pop)
	// Seed the population with the canonical schedule shapes so the
	// winner can never lose (on the evaluation seeds) to a baseline the
	// search could trivially emit; the rest start random.
	canonical := []*Genome{
		{N: cfg.N}, // uniform weighted draw
		{N: cfg.N, Segments: []Segment{{Mode: "round-robin", Len: cfg.N}}},
		{N: cfg.N, Segments: []Segment{{Mode: "round-robin", Len: cfg.N}, {Mode: "reverse", Len: cfg.N}}},
	}
	for i := range cands {
		if i < len(canonical) && i < cfg.Pop {
			born++
			cands[i] = canonical[i]
			continue
		}
		cands[i] = fresh()
	}
	scores, err := ev.scoreBatch(cands, seeds, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	for i, g := range cands {
		pop = append(pop, member{g: g, score: scores[i], born: i})
	}
	evals := len(cands)

	best := pop[0]
	for _, m := range pop[1:] {
		if fitter(m, best) {
			best = m
		}
	}

	tournament := func() *Genome {
		a, b := pop[genomeRng.Intn(len(pop))], pop[genomeRng.Intn(len(pop))]
		if fitter(b, a) {
			return b.g
		}
		return a.g
	}

	for evals < cfg.Budget {
		batch := cfg.Pop
		if rest := cfg.Budget - evals; batch > rest {
			batch = rest
		}
		children := make([]*Genome, batch)
		borns := make([]int, batch)
		for i := range children {
			if genomeRng.Float64() < cfg.RestartRate {
				children[i] = fresh()
			} else {
				born++
				children[i] = mutate(crossover(tournament(), tournament(), genomeRng), genomeRng, cfg.Faults)
			}
			borns[i] = born - 1
		}
		scores, err := ev.scoreBatch(children, seeds, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		evals += batch
		for i, g := range children {
			m := member{g: g, score: scores[i], born: borns[i]}
			pop = append(pop, m)
			if fitter(m, best) {
				best = m
			}
		}
		sort.SliceStable(pop, func(i, j int) bool { return fitter(pop[i], pop[j]) })
		pop = pop[:cfg.Pop]
	}

	// Shrink the winner: drop any genome component whose removal does not
	// reduce the evaluation-seed score.
	winner, shrinkEvals := shrinkGenome(ev, best.g, best.score.StepsMean, seeds, cfg.ShrinkBudget)
	evals += shrinkEvals
	finalScore, err := ev.score(winner, seeds, srcGenome)
	if err != nil {
		return nil, err
	}

	confirm := confirmSeeds(cfg.Seed, cfg.ConfirmTrials)
	confirmScore, err := ev.score(winner, confirm, srcGenome)
	if err != nil {
		return nil, err
	}
	whiteBox, err := ev.score(winner, confirm, srcWhiteBox)
	if err != nil {
		return nil, err
	}
	rr, err := ev.score(winner, confirm, srcRoundRobin)
	if err != nil {
		return nil, err
	}
	rnd, err := ev.score(winner, confirm, srcRandom)
	if err != nil {
		return nil, err
	}

	return &Result{
		Config:      cfg,
		Winner:      winner,
		Evaluations: evals,
		Score:       finalScore,
		Confirm:     confirmScore,
		WhiteBox:    whiteBox,
		Baselines:   map[string]Score{"round-robin": rr, "random": rnd},
	}, nil
}
