package search

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/attack"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// protocolDef is one attackable protocol stack: a consensus factory, the
// coin-aware white-box prefix that freezes its first phase, and the
// analytic per-phase step bound for the paper-bound comparison.
type protocolDef struct {
	name string
	// build returns a fresh single-use consensus protocol.
	build func(n int) *consensus.Protocol[int]
	// whitebox returns the coin-aware schedule covering exactly the
	// phase-1 conciliator (internal/attack); grafted onto a genome's
	// program it yields an adversary strictly stronger than the genome.
	whitebox func(n int, algSeed uint64, epsilon float64) *sched.Explicit
	// perPhase bounds one phase's individual steps (conciliator +
	// adopt-commit).
	perPhase func(n int) int
}

// protocolDefs lists the searchable protocols: the paper's register
// construction (Algorithm 2 + hash adopt-commit, Corollary 2) and
// snapshot construction (Algorithm 1 + snapshot adopt-commit,
// Corollary 1), matching the white-box attacks available in
// internal/attack.
func protocolDefs() []protocolDef {
	return []protocolDef{
		{
			name:     "sifter",
			build:    consensus.NewRegister[int],
			whitebox: attack.SifterBitLeakSchedule,
			perPhase: func(n int) int {
				c := conciliator.NewSifter[int](n, conciliator.SifterConfig{Epsilon: 0.5})
				return c.StepBound() + adoptcommit.NewHashAC[int]().StepBound()
			},
		},
		{
			name:     "priority",
			build:    consensus.NewSnapshot[int],
			whitebox: attack.PriorityLeakSchedule,
			perPhase: func(n int) int {
				c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{Epsilon: 0.5})
				return c.StepBound() + adoptcommit.NewSnapshotAC[int](n).StepBound()
			},
		},
	}
}

// Protocols lists the searchable protocol names.
func Protocols() []string {
	defs := protocolDefs()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.name
	}
	return names
}

// protocolByName resolves a protocol definition.
func protocolByName(name string) (protocolDef, error) {
	for _, d := range protocolDefs() {
		if d.name == name {
			return d, nil
		}
	}
	return protocolDef{}, fmt.Errorf("search: unknown protocol %q (want %v)", name, Protocols())
}

// PerPhaseBound returns the analytic individual-step bound for one phase
// of the named protocol, used by the E19 paper-bound column.
func PerPhaseBound(protocol string, n int) (int, error) {
	def, err := protocolByName(protocol)
	if err != nil {
		return 0, err
	}
	return def.perPhase(n), nil
}

// whitebox wraps whitebox so the attack's epsilon default is explicit at
// the single call site.
func (d protocolDef) whiteboxPrefix(n int, algSeed uint64) *sched.Explicit {
	return d.whitebox(n, algSeed, 0.5)
}
