package search

import "github.com/oblivious-consensus/conciliator/internal/fault"

// shrinkGenome ddmin-reduces the winning genome while preserving its
// evaluation-seed fitness: a reduction is kept only if the reduced
// genome's StepsMean on the same seeds is at least target. Passes, in
// order: drop the fault schedule wholesale, delete prefix chunks
// (halving granularity, like fault.Shrink), delete whole segments,
// collapse the weights to uniform, halve segment lengths toward 1, and
// finally hand a surviving fault schedule to fault.Shrink. The search is
// deterministic and spends at most budget evaluations; it returns the
// reduced genome and the evaluations spent.
func shrinkGenome(ev *evaluator, g *Genome, target float64, seeds []seedPair, budget int) (*Genome, int) {
	cur := g.Clone()
	evals := 0
	// keeps reports whether cand scores at least target, spending one
	// evaluation. Invalid candidates are rejected for free.
	keeps := func(cand *Genome) bool {
		if evals >= budget || cand.Validate() != nil {
			return false
		}
		evals++
		s, err := ev.score(cand, seeds, srcGenome)
		return err == nil && s.StepsMean >= target
	}

	if cur.Fault != nil {
		cand := cur.Clone()
		cand.Fault = nil
		if keeps(cand) {
			cur = cand
		}
	}

	for chunk := (len(cur.Prefix) + 1) / 2; chunk >= 1 && len(cur.Prefix) > 0; chunk /= 2 {
		for start := 0; start < len(cur.Prefix); {
			end := start + chunk
			if end > len(cur.Prefix) {
				end = len(cur.Prefix)
			}
			cand := cur.Clone()
			cand.Prefix = append(append([]int(nil), cur.Prefix[:start]...), cur.Prefix[end:]...)
			if keeps(cand) {
				cur = cand // next chunk slid into start
			} else {
				start = end
			}
		}
		if chunk == 1 {
			break
		}
	}

	for i := 0; i < len(cur.Segments); {
		cand := cur.Clone()
		cand.Segments = append(append([]Segment(nil), cur.Segments[:i]...), cur.Segments[i+1:]...)
		if keeps(cand) {
			cur = cand
		} else {
			i++
		}
	}

	if len(cur.Weights) > 0 {
		cand := cur.Clone()
		cand.Weights = nil
		if keeps(cand) {
			cur = cand
		}
	}

	for i := range cur.Segments {
		for cur.Segments[i].Len > 1 {
			cand := cur.Clone()
			cand.Segments[i].Len = cur.Segments[i].Len / 2
			if !keeps(cand) {
				break
			}
			cur = cand
		}
	}

	if cur.Fault != nil && evals < budget {
		// fault.Shrink caps its own repro invocations at the remaining
		// budget; each invocation costs one evaluation here.
		shrunk := fault.Shrink(cur.Fault, budget-evals, func(s *fault.Schedule) bool {
			cand := cur.Clone()
			cand.Fault = s
			if cand.Validate() != nil {
				return false
			}
			evals++
			sc, err := ev.score(cand, seeds, srcGenome)
			return err == nil && sc.StepsMean >= target
		})
		cand := cur.Clone()
		cand.Fault = shrunk
		if cand.Validate() == nil {
			cur = cand
		}
	}

	return cur, evals
}
