// Package search implements an optimizing — but still oblivious —
// adversary: a seeded evolutionary search over parameterized oblivious
// schedule sources (skew weights, phase-reversal patterns, burst and
// starvation segments, explicit prefix schedules) and stutter/stall
// fault schedules, maximizing observed steps-to-agreement per protocol.
//
// The searcher never leaves the oblivious-adversary model of Section 1.1:
// a candidate schedule is fixed (a pure function of the candidate genome
// and a schedule seed) before a trial's coins are flipped, and the only
// feedback the search loop sees is aggregate outcomes — steps, phases,
// whether everyone decided — never coin values or register contents.
// Optimizing over fixed schedules is exactly the quantifier in the
// paper's theorems ("for every oblivious adversary"), so the best score
// the search finds is a lower bound on the worst case the proofs cover,
// and must stay below what the coin-aware white-box attacks in the
// parent package achieve (internal/attack; pinned by tests here).
//
// A search run is a pure function of its Config: every random choice
// flows through named xrand forks of Config.Seed, and parallel
// evaluation workers only fill per-candidate slots, so results are
// byte-identical for any Parallelism.
package search

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Genome bounds keep every candidate cheap to evaluate: the slowest
// process is scheduled with probability at least 1/(MaxWeight*n) per
// weighted slot, and a full segment cycle is at most
// MaxSegments*MaxSegmentLen slots, so runs stay far under the slot
// budget.
const (
	// MaxWeight caps per-process scheduling weights.
	MaxWeight = 64
	// MaxPrefix caps the explicit prefix length.
	MaxPrefix = 4096
	// MaxSegments caps the cyclic program length.
	MaxSegments = 12
	// MaxSegmentLen caps one segment's slot count.
	MaxSegmentLen = 2048
	// MaxFaultEvents caps the fault-schedule component.
	MaxFaultEvents = 32
)

// Segment is the serialized form of one sched.ProgramSegment.
type Segment struct {
	// Mode is the sched.SegmentMode name: weighted, round-robin,
	// reverse, burst, or starve.
	Mode string `json:"mode"`
	// Len is the segment's slot count.
	Len int `json:"len"`
	// Pid is the burst target.
	Pid int `json:"pid,omitempty"`
	// Mask is the starve bitmask (bit i = pid i).
	Mask uint64 `json:"mask,omitempty"`
}

// Genome is one candidate oblivious adversary: the parameters of a
// sched.Program plus an optional stutter/stall fault schedule. It is the
// unit of mutation, crossover, serialization, and shrinking.
type Genome struct {
	// N is the process count.
	N int `json:"n"`
	// Weights are per-process scheduling weights in [1, MaxWeight]
	// (empty = uniform).
	Weights []int64 `json:"weights,omitempty"`
	// Prefix is an explicit slot sequence played before the segments.
	Prefix []int `json:"prefix,omitempty"`
	// Segments is the cyclic schedule program.
	Segments []Segment `json:"segments,omitempty"`
	// Fault is an optional fault schedule. Only Stutter and Stall events
	// are allowed: they delay processes, which is scheduling power the
	// oblivious adversary already has; semantic faults would weaken the
	// memory model and crash-recovery would change the fault model, so
	// both are out of scope for the search.
	Fault *fault.Schedule `json:"fault,omitempty"`
}

// Clone returns a deep copy.
func (g *Genome) Clone() *Genome {
	cp := &Genome{N: g.N}
	cp.Weights = append([]int64(nil), g.Weights...)
	cp.Prefix = append([]int(nil), g.Prefix...)
	cp.Segments = append([]Segment(nil), g.Segments...)
	if g.Fault != nil {
		// NewSchedule re-validates; a Genome's schedule is already valid.
		cp.Fault, _ = fault.NewSchedule(g.Fault.N(), g.Fault.Events())
	}
	return cp
}

// spec maps the genome onto the sched.Program parameter space.
func (g *Genome) spec() (sched.ProgramSpec, error) {
	spec := sched.ProgramSpec{Weights: g.Weights, Prefix: g.Prefix}
	for i, s := range g.Segments {
		mode, ok := sched.SegmentModeByName(s.Mode)
		if !ok {
			return spec, fmt.Errorf("search: segment %d has unknown mode %q", i, s.Mode)
		}
		spec.Segments = append(spec.Segments, sched.ProgramSegment{
			Mode: mode, Len: s.Len, Pid: s.Pid, Mask: s.Mask,
		})
	}
	return spec, nil
}

// Validate checks the genome describes a legal, bounded oblivious
// adversary; a malformed artifact fails here with a descriptive error
// instead of panicking a replayer.
func (g *Genome) Validate() error {
	if g.N < 2 || g.N > 64 {
		return fmt.Errorf("search: genome process count %d outside [2, 64]", g.N)
	}
	for i, w := range g.Weights {
		if w < 1 || w > MaxWeight {
			return fmt.Errorf("search: weight %d for pid %d outside [1, %d]", w, i, MaxWeight)
		}
	}
	if len(g.Prefix) > MaxPrefix {
		return fmt.Errorf("search: prefix length %d exceeds %d", len(g.Prefix), MaxPrefix)
	}
	if len(g.Segments) > MaxSegments {
		return fmt.Errorf("search: %d segments exceed %d", len(g.Segments), MaxSegments)
	}
	for i, s := range g.Segments {
		if s.Len > MaxSegmentLen {
			return fmt.Errorf("search: segment %d length %d exceeds %d", i, s.Len, MaxSegmentLen)
		}
	}
	spec, err := g.spec()
	if err != nil {
		return err
	}
	// sched.NewProgram owns the structural rules (coverage, masks,
	// ranges); building a throwaway program checks them all.
	if _, err := sched.NewProgram(g.N, spec, xrand.New(1)); err != nil {
		return err
	}
	if g.Fault != nil {
		if g.Fault.N() != g.N {
			return fmt.Errorf("search: genome is for %d processes but its fault schedule targets %d", g.N, g.Fault.N())
		}
		if g.Fault.Len() > MaxFaultEvents {
			return fmt.Errorf("search: %d fault events exceed %d", g.Fault.Len(), MaxFaultEvents)
		}
		if err := g.Fault.Validate(); err != nil {
			return err
		}
		for i, e := range g.Fault.Events() {
			if e.Kind != fault.Stutter && e.Kind != fault.Stall {
				return fmt.Errorf("search: fault event %d is %s; only stutter/stall keep the adversary oblivious", i, e.Kind)
			}
		}
	}
	return nil
}

// Source materializes the genome's schedule, deterministic in seed.
func (g *Genome) Source(seed uint64) (sched.Source, error) {
	spec, err := g.spec()
	if err != nil {
		return nil, err
	}
	return sched.NewProgram(g.N, spec, xrand.New(seed))
}

// segmentModes are the generator's mode choices, by name.
var segmentModes = []string{"weighted", "round-robin", "reverse", "burst", "starve"}

// randomSegment draws one segment; lengths are biased short so cyclic
// programs mix modes within a trial.
func randomSegment(n int, rng *xrand.Rand) Segment {
	s := Segment{
		Mode: segmentModes[rng.Intn(len(segmentModes))],
		Len:  1 + rng.Intn(4*n),
	}
	switch s.Mode {
	case "burst":
		s.Pid = rng.Intn(n)
	case "starve":
		// Starve a random non-empty proper subset.
		full := uint64(1)<<uint(n) - 1
		for s.Mask == 0 || s.Mask == full {
			s.Mask = rng.Uint64() & full
		}
	}
	return s
}

// randomFault draws a small stutter/stall schedule.
func randomFault(n int, rng *xrand.Rand) *fault.Schedule {
	k := 1 + rng.Intn(6)
	events := make([]fault.Event, 0, k)
	for i := 0; i < k; i++ {
		kind := fault.Stutter
		if rng.Bool() {
			kind = fault.Stall
		}
		events = append(events, fault.Event{
			Kind: kind,
			Pid:  rng.Intn(n),
			Slot: int64(rng.Uint64n(2048)),
			Arg:  1 + int64(rng.Uint64n(16)),
		})
	}
	s, err := fault.NewSchedule(n, events)
	if err != nil {
		panic(err) // generated events are in range by construction
	}
	return s
}

// repair makes an arbitrary mutated genome legal again: it truncates
// anything over its cap and, if the segment program still starves some
// process forever, appends one round-robin pass so every process is
// schedulable (sched.NewProgram's coverage rule). Deterministic.
func (g *Genome) repair() {
	if len(g.Prefix) > MaxPrefix {
		g.Prefix = g.Prefix[:MaxPrefix]
	}
	if len(g.Segments) > MaxSegments {
		g.Segments = g.Segments[:MaxSegments]
	}
	for i := range g.Segments {
		if g.Segments[i].Len > MaxSegmentLen {
			g.Segments[i].Len = MaxSegmentLen
		}
	}
	if err := g.Validate(); err == nil {
		return
	}
	if len(g.Segments) == MaxSegments {
		g.Segments = g.Segments[:MaxSegments-1]
	}
	g.Segments = append(g.Segments, Segment{Mode: "round-robin", Len: g.N})
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("search: repair produced an invalid genome: %v", err))
	}
}

// randomGenome draws a fresh candidate. faults enables the fault-schedule
// component.
func randomGenome(n int, rng *xrand.Rand, faults bool) *Genome {
	g := &Genome{N: n}
	if rng.Bool() {
		g.Weights = make([]int64, n)
		for i := range g.Weights {
			g.Weights[i] = 1 + int64(rng.Uint64n(MaxWeight))
		}
	}
	if rng.Intn(3) == 0 {
		plen := 1 + rng.Intn(4*n)
		g.Prefix = make([]int, plen)
		for i := range g.Prefix {
			g.Prefix[i] = rng.Intn(n)
		}
	}
	segs := 1 + rng.Intn(4)
	for i := 0; i < segs; i++ {
		g.Segments = append(g.Segments, randomSegment(n, rng))
	}
	if faults && rng.Bool() {
		g.Fault = randomFault(n, rng)
	}
	g.repair()
	return g
}

// mutate applies one or two random edits and repairs the result.
func mutate(g *Genome, rng *xrand.Rand, faults bool) *Genome {
	c := g.Clone()
	for edits := 1 + rng.Intn(2); edits > 0; edits-- {
		switch op := rng.Intn(5); op {
		case 0: // reweight one process (creating weights if uniform)
			if c.Weights == nil {
				c.Weights = make([]int64, c.N)
				for i := range c.Weights {
					c.Weights[i] = 1
				}
			}
			c.Weights[rng.Intn(c.N)] = 1 + int64(rng.Uint64n(MaxWeight))
		case 1: // replace, add, or drop a segment
			switch {
			case len(c.Segments) > 0 && rng.Intn(3) == 0:
				i := rng.Intn(len(c.Segments))
				c.Segments = append(c.Segments[:i], c.Segments[i+1:]...)
			case len(c.Segments) < MaxSegments && rng.Bool():
				c.Segments = append(c.Segments, randomSegment(c.N, rng))
			case len(c.Segments) > 0:
				c.Segments[rng.Intn(len(c.Segments))] = randomSegment(c.N, rng)
			}
		case 2: // resize a segment
			if len(c.Segments) > 0 {
				i := rng.Intn(len(c.Segments))
				c.Segments[i].Len = 1 + rng.Intn(MaxSegmentLen)
			}
		case 3: // grow or cut the prefix
			if rng.Bool() && len(c.Prefix) > 0 {
				c.Prefix = c.Prefix[:rng.Intn(len(c.Prefix))]
			} else {
				add := 1 + rng.Intn(2*c.N)
				for i := 0; i < add && len(c.Prefix) < MaxPrefix; i++ {
					c.Prefix = append(c.Prefix, rng.Intn(c.N))
				}
			}
		case 4: // perturb the fault schedule
			if !faults {
				continue
			}
			switch {
			case c.Fault == nil:
				c.Fault = randomFault(c.N, rng)
			case rng.Intn(3) == 0:
				c.Fault = nil
			default:
				events := c.Fault.Events()
				if len(events) < MaxFaultEvents && rng.Bool() {
					events = append(events, randomFault(c.N, rng).Events()...)
					if len(events) > MaxFaultEvents {
						events = events[:MaxFaultEvents]
					}
				} else if len(events) > 0 {
					i := rng.Intn(len(events))
					events = append(events[:i], events[i+1:]...)
				}
				if len(events) == 0 {
					c.Fault = nil
				} else {
					c.Fault, _ = fault.NewSchedule(c.N, events)
				}
			}
		}
	}
	c.repair()
	return c
}

// crossover mixes two parents component-wise and repairs the child.
func crossover(a, b *Genome, rng *xrand.Rand) *Genome {
	c := &Genome{N: a.N}
	if rng.Bool() {
		c.Weights = append([]int64(nil), a.Weights...)
	} else {
		c.Weights = append([]int64(nil), b.Weights...)
	}
	if rng.Bool() {
		c.Prefix = append([]int(nil), a.Prefix...)
	} else {
		c.Prefix = append([]int(nil), b.Prefix...)
	}
	// Segments: a's head spliced onto b's tail.
	cutA, cutB := 0, 0
	if len(a.Segments) > 0 {
		cutA = rng.Intn(len(a.Segments) + 1)
	}
	if len(b.Segments) > 0 {
		cutB = rng.Intn(len(b.Segments) + 1)
	}
	c.Segments = append(c.Segments, a.Segments[:cutA]...)
	c.Segments = append(c.Segments, b.Segments[cutB:]...)
	src := a
	if rng.Bool() {
		src = b
	}
	if src.Fault != nil {
		c.Fault, _ = fault.NewSchedule(src.Fault.N(), src.Fault.Events())
	}
	c.repair()
	return c
}
