package search

import (
	"bytes"
	"testing"
)

// fuzzReplayable bounds the records the fuzzer fully replays: replay
// runs a whole search, so unbounded decoded configs would turn the
// fuzzer into a stress test instead of a codec check.
func fuzzReplayable(r *Record) bool {
	return r.N <= 6 && r.Budget <= 12 && r.Pop <= 6 &&
		r.EvalTrials <= 3 && r.ConfirmTrials <= 4 &&
		r.ShrinkBudget <= 8 && r.MaxSlots <= 1<<22
}

// FuzzAttackRecordReplay fuzzes the attack-record/v1 codec and replay
// path: malformed inputs must error (never panic); records that decode
// must re-encode to bytes that decode to the same record; and small
// decodable records must replay deterministically — two replays of the
// same configuration produce byte-identical artifacts.
func FuzzAttackRecordReplay(f *testing.F) {
	for _, protocol := range Protocols() {
		res, err := Search(Config{
			Protocol:      protocol,
			N:             3,
			Seed:          13,
			Budget:        8,
			Pop:           4,
			EvalTrials:    2,
			ConfirmTrials: 3,
			ShrinkBudget:  4,
		})
		if err != nil {
			f.Fatal(err)
		}
		data, err := NewRecord(res).Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("{"))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":"attack-record/v1","protocol":"sifter","n":4}`))
	f.Add([]byte(`{"schema":"attack-record/v1","protocol":"sifter","n":4,"budget":2,"pop":2,"eval_trials":1,"confirm_trials":1,"shrink_budget":1,"max_slots":4096,"winner":{"n":4}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // malformed must error, not panic — reaching here is the check
		}
		enc, err := rec.Encode()
		if err != nil {
			t.Fatalf("decoded record failed to encode: %v", err)
		}
		back, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatalf("round-tripped record failed to encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode/encode not byte-identical:\n%s\nvs\n%s", enc, enc2)
		}

		if !fuzzReplayable(rec) {
			return
		}
		first, err := Replay(rec, 2)
		if err != nil {
			t.Fatalf("replay of a valid record errored: %v", err)
		}
		fd, err := first.Encode()
		if err != nil {
			t.Fatal(err)
		}
		second, err := Replay(rec, 1)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := second.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fd, sd) {
			t.Fatalf("replay not deterministic:\n%s\nvs\n%s", fd, sd)
		}
	})
}
