package search

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaRecord is the schema tag of serialized attack-search artifacts.
const SchemaRecord = "attack-record/v1"

// Record is a committed, replayable attack-search result: the full
// search configuration plus the winning genome and every score the run
// produced. Because a search is a pure function of its configuration,
// replaying the record (Replay) regenerates the identical winner and
// scores, and re-encoding yields byte-identical JSON — which is how CI
// checks committed artifacts have not rotted.
type Record struct {
	Schema string `json:"schema"`
	// Search configuration (see Config; all fields post-defaulting, so a
	// record is self-contained even if the defaults later change).
	Protocol      string  `json:"protocol"`
	N             int     `json:"n"`
	Seed          uint64  `json:"seed"`
	Budget        int     `json:"budget"`
	Pop           int     `json:"pop"`
	EvalTrials    int     `json:"eval_trials"`
	ConfirmTrials int     `json:"confirm_trials"`
	RestartRate   float64 `json:"restart_rate"`
	Faults        bool    `json:"faults,omitempty"`
	ShrinkBudget  int     `json:"shrink_budget"`
	MaxSlots      int64   `json:"max_slots"`

	// Evaluations is the total candidate evaluations the run spent.
	Evaluations int `json:"evaluations"`
	// Winner is the shrunk best genome.
	Winner *Genome `json:"winner"`
	// Score is the winner's score on the search's evaluation seeds;
	// Confirm re-scores it on fresh seeds; WhiteBox scores the coin-aware
	// graft on the same fresh seeds; Baselines score round-robin and
	// uniform-random schedules there too.
	Score     Score            `json:"score"`
	Confirm   Score            `json:"confirm"`
	WhiteBox  Score            `json:"whitebox"`
	Baselines map[string]Score `json:"baselines,omitempty"`

	// SavedPath is where Save last wrote the artifact; informational
	// only, never serialized.
	SavedPath string `json:"-"`
}

// NewRecord captures a completed search as an artifact.
func NewRecord(res *Result) *Record {
	c := res.Config
	return &Record{
		Schema:        SchemaRecord,
		Protocol:      c.Protocol,
		N:             c.N,
		Seed:          c.Seed,
		Budget:        c.Budget,
		Pop:           c.Pop,
		EvalTrials:    c.EvalTrials,
		ConfirmTrials: c.ConfirmTrials,
		RestartRate:   c.RestartRate,
		Faults:        c.Faults,
		ShrinkBudget:  c.ShrinkBudget,
		MaxSlots:      c.MaxSlots,
		Evaluations:   res.Evaluations,
		Winner:        res.Winner,
		Score:         res.Score,
		Confirm:       res.Confirm,
		WhiteBox:      res.WhiteBox,
		Baselines:     res.Baselines,
	}
}

// SearchConfig reconstructs the search configuration the record was
// produced with. Parallelism is left zero (it never affects results).
func (r *Record) SearchConfig() Config {
	return Config{
		Protocol:      r.Protocol,
		N:             r.N,
		Seed:          r.Seed,
		Budget:        r.Budget,
		Pop:           r.Pop,
		EvalTrials:    r.EvalTrials,
		ConfirmTrials: r.ConfirmTrials,
		RestartRate:   r.RestartRate,
		Faults:        r.Faults,
		ShrinkBudget:  r.ShrinkBudget,
		MaxSlots:      r.MaxSlots,
	}
}

// Validate checks the artifact is well-formed enough to replay.
func (r *Record) Validate() error {
	if r.Schema != SchemaRecord {
		return fmt.Errorf("search: record schema %q, want %q", r.Schema, SchemaRecord)
	}
	if _, err := protocolByName(r.Protocol); err != nil {
		return err
	}
	cfg := r.SearchConfig()
	if err := cfg.validate(); err != nil {
		return err
	}
	if r.Budget <= 0 || r.Pop <= 0 || r.EvalTrials <= 0 || r.ConfirmTrials <= 0 {
		return fmt.Errorf("search: record has non-positive search parameters")
	}
	if r.MaxSlots <= 0 {
		return fmt.Errorf("search: record has non-positive slot budget %d", r.MaxSlots)
	}
	if r.Winner == nil {
		return fmt.Errorf("search: record carries no winner genome")
	}
	if r.Winner.N != r.N {
		return fmt.Errorf("search: record is for %d processes but its winner targets %d", r.N, r.Winner.N)
	}
	if r.Winner.Fault != nil && !r.Faults {
		return fmt.Errorf("search: record winner carries a fault schedule but the search ran fault-free")
	}
	return r.Winner.Validate()
}

// Encode serializes the artifact.
func (r *Record) Encode() ([]byte, error) {
	if r.Schema == "" {
		r.Schema = SchemaRecord
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeRecord parses and validates a serialized artifact.
func DecodeRecord(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("search: parsing record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Save writes the artifact to path, creating parent directories.
func (r *Record) Save(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	r.SavedPath = path
	return nil
}

// LoadRecord reads and validates an artifact from path.
func LoadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRecord(data)
}

// Replay re-runs the record's search from its configuration and returns
// the freshly produced record. A search is a pure function of its
// configuration, so the result must match the original field for field;
// callers verify by comparing Encode outputs byte for byte. parallelism
// only changes wall-clock time (0 = NumCPU).
func Replay(r *Record, parallelism int) (*Record, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	cfg := r.SearchConfig()
	cfg.Parallelism = parallelism
	res, err := Search(cfg)
	if err != nil {
		return nil, err
	}
	return NewRecord(res), nil
}
