package search

import (
	"bytes"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// smallConfig is a search cheap enough to run several times per test.
func smallConfig(protocol string) Config {
	return Config{
		Protocol:      protocol,
		N:             4,
		Seed:          7,
		Budget:        24,
		Pop:           6,
		EvalTrials:    3,
		ConfirmTrials: 6,
		ShrinkBudget:  16,
	}
}

func mustSearch(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func encodeRecord(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := NewRecord(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSearchDeterministicAcrossParallelism pins the central replayability
// property: a search is a pure function of its configuration, so the
// encoded record is byte-identical for any worker count, with and
// without fault-schedule components in the genome space.
func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	for _, faults := range []bool{false, true} {
		cfg := smallConfig("sifter")
		cfg.Faults = faults
		cfg.Parallelism = 1
		want := encodeRecord(t, mustSearch(t, cfg))
		for _, workers := range []int{3, 8} {
			cfg.Parallelism = workers
			got := encodeRecord(t, mustSearch(t, cfg))
			if !bytes.Equal(got, want) {
				t.Errorf("faults=%v: record differs between 1 and %d workers:\n%s\nvs\n%s",
					faults, workers, want, got)
			}
		}
	}
}

// TestSearchSeedSensitivity sanity-checks the search is actually driven
// by its seed: different seeds explore different candidates.
func TestSearchSeedSensitivity(t *testing.T) {
	a := mustSearch(t, smallConfig("sifter"))
	cfg := smallConfig("sifter")
	cfg.Seed = 8
	b := mustSearch(t, cfg)
	da, db := encodeRecord(t, a), encodeRecord(t, b)
	if bytes.Equal(da, db) {
		t.Fatal("seeds 7 and 8 produced identical records")
	}
}

// TestWhiteBoxDominatesOblivious is the strength-separation pin from the
// acceptance criteria: the best oblivious schedule the search finds must
// never beat the coin-aware white-box adversary for the same (protocol,
// n, seeds). The white-box score is the winner's own schedule with the
// phase-1 bit-leak prefix grafted on — everything the winner can do plus
// coin knowledge — so on the shared confirmation seeds its mean damage
// must be at least the winner's.
func TestWhiteBoxDominatesOblivious(t *testing.T) {
	for _, protocol := range Protocols() {
		t.Run(protocol, func(t *testing.T) {
			cfg := smallConfig(protocol)
			cfg.Budget = 36
			res := mustSearch(t, cfg)
			if res.Confirm.StepsMean > res.WhiteBox.StepsMean {
				t.Errorf("oblivious winner (%.2f mean steps) beat the white-box graft (%.2f)",
					res.Confirm.StepsMean, res.WhiteBox.StepsMean)
			}
			if res.WhiteBox.PhasesMean < 2 {
				t.Errorf("white-box graft forced only %.2f mean phases; its phase-1 freeze guarantees >= 2",
					res.WhiteBox.PhasesMean)
			}
			if res.Confirm.Undecided != 0 || res.WhiteBox.Undecided != 0 {
				t.Errorf("undecided trials: confirm=%d whitebox=%d", res.Confirm.Undecided, res.WhiteBox.Undecided)
			}
		})
	}
}

// TestSearchImprovesOnFriendlyBaselines checks the winner's confirmed
// damage is at least the friendliest baseline's — the search may not
// return a schedule worse than plain round-robin it could trivially emit.
func TestSearchImprovesOnFriendlyBaselines(t *testing.T) {
	res := mustSearch(t, smallConfig("sifter"))
	rr := res.Baselines["round-robin"]
	if res.Confirm.StepsMean < rr.StepsMean*0.5 {
		t.Errorf("winner mean steps %.2f collapsed far below round-robin %.2f",
			res.Confirm.StepsMean, rr.StepsMean)
	}
	if _, ok := res.Baselines["random"]; !ok {
		t.Error("random baseline missing")
	}
}

// TestSearchBudget pins the evaluation accounting: the loop spends
// exactly Budget evaluations, plus at most ShrinkBudget for shrinking.
func TestSearchBudget(t *testing.T) {
	cfg := smallConfig("sifter")
	res := mustSearch(t, cfg)
	if res.Evaluations < cfg.Budget || res.Evaluations > cfg.Budget+cfg.ShrinkBudget {
		t.Fatalf("spent %d evaluations, want in [%d, %d]",
			res.Evaluations, cfg.Budget, cfg.Budget+cfg.ShrinkBudget)
	}
}

// TestSearchValidatesConfig covers the error paths.
func TestSearchValidatesConfig(t *testing.T) {
	if _, err := Search(Config{Protocol: "sifter", N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Search(Config{Protocol: "sifter", N: 65}); err == nil {
		t.Error("n=65 accepted")
	}
	if _, err := Search(Config{Protocol: "nope", N: 4}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestShrinkPreservesFitness runs the shrinker directly on a bloated
// genome and checks the result still validates and still scores at least
// the target on the same seeds.
func TestShrinkPreservesFitness(t *testing.T) {
	def, err := protocolByName("sifter")
	if err != nil {
		t.Fatal(err)
	}
	ev := &evaluator{def: def, n: 4, maxSlots: 1 << 22}
	rng := xrand.New(11)
	g := randomGenome(4, rng, true)
	g.Prefix = append(g.Prefix, 0, 1, 2, 3, 0, 1, 2, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seeds := evalSeeds(5, 3)
	base, err := ev.score(g, seeds, srcGenome)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, evals := shrinkGenome(ev, g, base.StepsMean, seeds, 40)
	if evals > 40 {
		t.Fatalf("shrinker spent %d evaluations over its budget of 40", evals)
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk genome invalid: %v", err)
	}
	got, err := ev.score(shrunk, seeds, srcGenome)
	if err != nil {
		t.Fatal(err)
	}
	if got.StepsMean < base.StepsMean {
		t.Fatalf("shrinking lost fitness: %.2f -> %.2f", base.StepsMean, got.StepsMean)
	}
}

// TestRecordRoundTrip pins the codec: encode -> decode -> encode is
// byte-identical, and Replay regenerates the identical record.
func TestRecordRoundTrip(t *testing.T) {
	res := mustSearch(t, smallConfig("priority"))
	rec := NewRecord(res)
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("decode/encode not byte-identical:\n%s\nvs\n%s", data, again)
	}

	replayed, err := Replay(back, 2)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := replayed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd, data) {
		t.Fatalf("replay not byte-identical:\n%s\nvs\n%s", data, rd)
	}
}

// TestRecordSaveLoad exercises the file round trip.
func TestRecordSaveLoad(t *testing.T) {
	res := mustSearch(t, smallConfig("sifter"))
	rec := NewRecord(res)
	path := t.TempDir() + "/sub/rec.json"
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	if rec.SavedPath != path {
		t.Fatalf("SavedPath = %q", rec.SavedPath)
	}
	back, err := LoadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Winner == nil || back.Protocol != "sifter" {
		t.Fatalf("loaded record mangled: %+v", back)
	}
}

// TestRecordRejectsMalformed covers the codec's error paths: malformed
// records must error, never panic.
func TestRecordRejectsMalformed(t *testing.T) {
	res := mustSearch(t, smallConfig("sifter"))
	good, err := NewRecord(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		data string
	}{
		{"not json", "{"},
		{"wrong schema", strings.Replace(string(good), SchemaRecord, "attack-record/v0", 1)},
		{"empty object", "{}"},
		{"no winner", `{"schema":"attack-record/v1","protocol":"sifter","n":4,"budget":1,"pop":1,"eval_trials":1,"confirm_trials":1,"shrink_budget":1,"max_slots":1}`},
		{"winner n mismatch", strings.Replace(string(good), `"n": 4`, `"n": 5`, 1)},
		{"unknown protocol", strings.Replace(string(good), `"protocol": "sifter"`, `"protocol": "mystery"`, 1)},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRecord([]byte(tc.data)); err == nil {
				t.Fatalf("malformed record accepted: %s", tc.data)
			}
		})
	}
}

// TestGenomeValidateFaultKinds pins the obliviousness restriction on
// fault components: only stutter/stall — pure scheduling-delay faults —
// are allowed; semantic faults and crash-recovery change the model.
func TestGenomeValidateFaultKinds(t *testing.T) {
	mk := func(kind fault.Kind) *Genome {
		fs, err := fault.NewSchedule(4, []fault.Event{{Kind: kind, Pid: 1, Slot: 10, Arg: 2}})
		if err != nil {
			t.Fatal(err)
		}
		g := &Genome{N: 4, Fault: fs}
		return g
	}
	for _, kind := range []fault.Kind{fault.Stutter, fault.Stall} {
		if err := mk(kind).Validate(); err != nil {
			t.Errorf("%v rejected: %v", kind, err)
		}
	}
	for _, kind := range []fault.Kind{fault.CrashRecover, fault.StaleRead, fault.StaleScan} {
		if err := mk(kind).Validate(); err == nil {
			t.Errorf("%v accepted: fault kind breaks obliviousness or the fault model", kind)
		}
	}
}

// TestGenomeMutateCrossoverStayValid fuzzes the genome operators with
// the repair loop: every product must validate.
func TestGenomeMutateCrossoverStayValid(t *testing.T) {
	rng := xrand.New(42)
	pool := make([]*Genome, 8)
	for i := range pool {
		pool[i] = randomGenome(6, rng, i%2 == 0)
		if err := pool[i].Validate(); err != nil {
			t.Fatalf("random genome %d invalid: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		child := mutate(crossover(a, b, rng), rng, true)
		if err := child.Validate(); err != nil {
			t.Fatalf("iteration %d produced invalid child: %v\n%+v", i, err, child)
		}
		pool[rng.Intn(len(pool))] = child
	}
}
