package attack

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestPredictSifterWriteBitsMatchesExecution(t *testing.T) {
	// Pin the white-box coupling: the predicted bits must equal the ones
	// the real execution uses. We detect the real bits behaviorally by
	// running one process per round against a register we pre-fill: a
	// writer overwrites it, a reader doesn't.
	const n = 8
	const seed = 12345
	rounds := conciliator.SifterRounds(n, 0.5)
	probs := conciliator.SifterProbs(n, rounds)
	predicted := PredictSifterWriteBits(n, seed, probs)

	c := conciliator.NewSifter[int](n, conciliator.SifterConfig{TrackSurvivors: true})
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	// Run under the bit-leak schedule: if predictions are right, nobody
	// ever adopts, so every process returns its own input.
	src := SifterBitLeakSchedule(n, seed, 0.5)
	outs, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
		return c.Conciliate(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := range outs {
		if !finished[pid] {
			t.Fatalf("process %d unfinished", pid)
		}
		if outs[pid] != inputs[pid] {
			t.Fatalf("process %d adopted %d: predicted bits must be wrong", pid, outs[pid])
		}
	}
	// Survivor count must have stayed at n the whole way.
	for i, s := range c.SurvivorsPerRound() {
		if s != n {
			t.Fatalf("round %d: %d survivors, want frozen at %d", i+1, s, n)
		}
	}
	_ = predicted
}

func TestBitLeakDefeatsSifterAcrossSeeds(t *testing.T) {
	const n = 16
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	for seed := uint64(1); seed <= 30; seed++ {
		c := conciliator.NewSifter[int](n, conciliator.SifterConfig{})
		src := SifterBitLeakSchedule(n, seed, 0.5)
		outs, _, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[int]bool)
		for _, o := range outs {
			distinct[o] = true
		}
		if len(distinct) != n {
			t.Fatalf("seed %d: %d distinct outputs, attack should preserve all %d", seed, len(distinct), n)
		}
	}
}

func TestWritersFirstForcesFastAgreement(t *testing.T) {
	const n = 16
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	for seed := uint64(1); seed <= 20; seed++ {
		c := conciliator.NewSifter[int](n, conciliator.SifterConfig{})
		src := WritersFirstSchedule(n, seed, 0.5)
		outs, _, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		// Writers-first makes every round's readers adopt the last
		// writer; with high probability a single persona remains. We
		// only assert the benign direction: never worse than the frozen
		// attack.
		distinct := make(map[int]bool)
		for _, o := range outs {
			distinct[o] = true
		}
		if len(distinct) == n && n > 1 {
			t.Fatalf("seed %d: writers-first left all %d personae alive", seed, n)
		}
	}
}

func TestObliviousScheduleUnaffected(t *testing.T) {
	// Control: the same seeds under an oblivious random schedule agree
	// at the usual high rate — the attack is the schedule, not the seed.
	const n = 16
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	agreed := 0
	const trials = 30
	for seed := uint64(1); seed <= trials; seed++ {
		c := conciliator.NewSifter[int](n, conciliator.SifterConfig{})
		src := sched.NewRandom(n, xrand.New(seed*7+1000))
		outs, _, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for _, o := range outs {
			if o != outs[0] {
				same = false
			}
		}
		if same {
			agreed++
		}
	}
	if rate := float64(agreed) / trials; rate < 0.5 {
		t.Fatalf("oblivious control agreement rate %v below 1/2", rate)
	}
}

func TestScheduleSizes(t *testing.T) {
	const n = 8
	rounds := conciliator.SifterRounds(n, 0.5)
	for _, mk := range []func(int, uint64, float64) *sched.Explicit{SifterBitLeakSchedule, WritersFirstSchedule} {
		src := mk(n, 1, 0.5)
		if src.N() != n {
			t.Fatalf("N = %d", src.N())
		}
		if got := src.Remaining(); got != n*rounds {
			t.Fatalf("schedule has %d slots, want %d", got, n*rounds)
		}
	}
}

func TestEpsilonDefaulting(t *testing.T) {
	// Invalid epsilons fall back to 1/2 rather than panicking.
	if src := SifterBitLeakSchedule(4, 1, -1); src.N() != 4 {
		t.Fatal("bad epsilon not defaulted")
	}
	if src := WritersFirstSchedule(4, 1, 2); src.N() != 4 {
		t.Fatal("bad epsilon not defaulted")
	}
}

func TestPriorityLeakFreezesAlgorithm1(t *testing.T) {
	const n = 12
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	for seed := uint64(1); seed <= 20; seed++ {
		c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{TrackSurvivors: true})
		src := PriorityLeakSchedule(n, seed, 0.5)
		outs, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) int {
			return c.Conciliate(p, inputs[p.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		for pid := range outs {
			if !finished[pid] {
				t.Fatalf("seed %d: process %d unfinished", seed, pid)
			}
			if outs[pid] != inputs[pid] {
				t.Fatalf("seed %d: process %d adopted %d; the leak schedule should freeze everyone", seed, pid, outs[pid])
			}
		}
		for i, s := range c.SurvivorsPerRound() {
			if s != n {
				t.Fatalf("seed %d round %d: %d survivors, want frozen at %d", seed, i+1, s, n)
			}
		}
	}
}

func TestPriorityLeakScheduleSize(t *testing.T) {
	const n = 6
	rounds := conciliator.PriorityRounds(n, 0.5)
	src := PriorityLeakSchedule(n, 3, 0.5)
	if got := src.Remaining(); got != 2*n*rounds {
		t.Fatalf("schedule has %d slots, want %d", got, 2*n*rounds)
	}
}

func TestPredictPriorityVectorsBounded(t *testing.T) {
	prios := PredictPriorityVectors(4, 9, 5, 100)
	for pid, vec := range prios {
		if len(vec) != 5 {
			t.Fatalf("pid %d has %d rounds", pid, len(vec))
		}
		for i, p := range vec {
			if p < 1 || p > 100 {
				t.Fatalf("pid %d round %d priority %d out of bounds", pid, i, p)
			}
		}
	}
}
