package stats

import (
	"math"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestLogHistExactRegion(t *testing.T) {
	h := NewLogHist(64)
	for v := int64(0); v < 128; v++ {
		h.Add(v)
	}
	// Below 2*sub every bucket has width 1, so quantiles are exact and
	// must match IntHist on the same sample.
	d := NewIntHist(128)
	for v := int64(0); v < 128; v++ {
		d.Add(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := h.Quantile(q), d.Quantile(q); got != want {
			t.Fatalf("q=%v: LogHist %d, IntHist %d", q, got, want)
		}
	}
	if h.N() != 128 || h.Min() != 0 || h.Max() != 127 || h.Sum() != 127*128/2 {
		t.Fatalf("summary stats: n=%d min=%d max=%d sum=%d", h.N(), h.Min(), h.Max(), h.Sum())
	}
}

func TestLogHistRelativeError(t *testing.T) {
	const sub = 64
	h := NewLogHist(sub)
	rng := xrand.New(5)
	// Latency-shaped sample: microseconds spanning six orders of
	// magnitude, compared quantile-by-quantile against the exact IntHist.
	d := NewIntHist(1 << 21)
	for i := 0; i < 50000; i++ {
		v := int64(rng.Uint64n(1 << uint(4+rng.Intn(17))))
		h.Add(v)
		d.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := d.Quantile(q)
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > 1.0/sub {
			t.Fatalf("q=%v: LogHist %d vs exact %d, relative error %.4f > 1/%d", q, got, exact, rel, sub)
		}
	}
	if h.N() != d.N() || h.Sum() != d.Sum() || h.Min() != d.Min() || h.Max() != d.Max() {
		t.Fatal("exact summary stats diverged from IntHist")
	}
}

func TestLogHistNeverAllocates(t *testing.T) {
	h := NewLogHist(64)
	allocs := testing.AllocsPerRun(100, func() {
		h.Add(1)
		h.Add(1_000_000)           // a one-second outlier in microseconds
		h.Add(math.MaxInt64 - 100) // the largest representable value
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %v times per run; the whole point is a fixed footprint", allocs)
	}
}

func TestLogHistExtremesExact(t *testing.T) {
	h := NewLogHist(64)
	h.Add(123457)
	h.Add(987654321)
	// With one observation at each end, q=0 and q=1 must return the
	// tracked exact min/max, not bucket midpoints.
	if got := h.Quantile(0); got != 123457 {
		t.Fatalf("q=0: %d, want exact min 123457", got)
	}
	if got := h.Quantile(1); got != 987654321 {
		t.Fatalf("q=1: %d, want exact max 987654321", got)
	}
}

func TestLogHistMerge(t *testing.T) {
	a, b, whole := NewLogHist(32), NewLogHist(32), NewLogHist(32)
	rng := xrand.New(11)
	for i := 0; i < 2000; i++ {
		v := int64(rng.Uint64n(1 << 20))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Sum() != whole.Sum() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged summary stats diverged from single-histogram run")
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %d, whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestLogHistMergeSubMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched sub sizes did not panic")
		}
	}()
	NewLogHist(32).Merge(NewLogHist(64))
}

func TestLogHistBadSub(t *testing.T) {
	for _, sub := range []int{0, 1, 3, 48, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLogHist(%d) did not panic", sub)
				}
			}()
			NewLogHist(sub)
		}()
	}
}

func TestLogHistEmpty(t *testing.T) {
	h := NewLogHist(64)
	if h.Quantile(0.5) != 0 || h.N() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}
