package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("CI95 of empty sample nonzero")
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample (Bessel) standard deviation of this classic set is
	// sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{1, 2, 3})
	if s.Mean != 2 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.9, 5}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 5 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestProportion(t *testing.T) {
	p, ci := Proportion(50, 100)
	if p != 0.5 {
		t.Fatalf("p = %v", p)
	}
	if math.Abs(ci-1.96*math.Sqrt(0.25/100)) > 1e-12 {
		t.Fatalf("ci = %v", ci)
	}
	if p, ci := Proportion(0, 0); p != 0 || ci != 0 {
		t.Fatal("zero-trial proportion not zero")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Fatalf("fit = (%v, %v)", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if a, b := LinearFit([]float64{1}, []float64{2}); a != 0 || b != 0 {
		t.Fatal("short fit should be zero")
	}
	if a, b := LinearFit([]float64{2, 2}, []float64{1, 3}); b != 0 || a != 2 {
		t.Fatalf("vertical fit = (%v, %v)", a, b)
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		n    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {256, 4}, {65536, 4},
		{65537, 5}, {1e30, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%v) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestCeilLogLog(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{1, 0}, {2, 0}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {256, 3}, {65536, 4}, {1 << 20, 5},
	}
	for _, tt := range tests {
		if got := CeilLogLog(tt.n); got != tt.want {
			t.Errorf("CeilLogLog(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.n); got != tt.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestCeilLogBase(t *testing.T) {
	// log_{4/3}(32) = ln 32 / ln(4/3) ~ 12.04 -> 13
	if got := CeilLogBase(4.0/3.0, 32); got != 13 {
		t.Errorf("CeilLogBase(4/3, 32) = %d", got)
	}
	if got := CeilLogBase(2, 1); got != 0 {
		t.Errorf("CeilLogBase(2, 1) = %d", got)
	}
}

func TestLog2Guard(t *testing.T) {
	if Log2(-1) != 0 || Log2(0) != 0 {
		t.Fatal("Log2 guard failed")
	}
	if Log2(8) != 3 {
		t.Fatal("Log2(8) != 3")
	}
}

func TestSifterDecayBound(t *testing.T) {
	// x_1 = 2 sqrt(n-1); x_i shrinks toward 4 as i grows; below 8 at
	// i = ceil(log log n) (the paper computes < 8).
	n := 1 << 10
	if got, want := SifterDecayBound(n, 1), 2*math.Sqrt(float64(n-1)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("x_1 = %v, want %v", got, want)
	}
	i := CeilLogLog(n)
	if got := SifterDecayBound(n, i); got >= 8 {
		t.Fatalf("x_loglog = %v, want < 8", got)
	}
	if SifterDecayBound(1, 3) != 0 {
		t.Fatal("n=1 bound should be 0")
	}
	// Monotone decrease in i (for n large enough that x_i > 4).
	prev := SifterDecayBound(n, 1)
	for i := 2; i <= 6; i++ {
		cur := SifterDecayBound(n, i)
		if cur > prev+1e-9 {
			t.Fatalf("x_i increased at i=%d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestPriorityDecayBound(t *testing.T) {
	// After log* n + O(1) rounds the bound drops below 1.
	n := 1 << 16
	r := LogStar(float64(n)) + 1
	if got := PriorityDecayBound(n, r); got > 1 {
		t.Fatalf("bound after log*+1 rounds = %v, want <= 1", got)
	}
	if got := PriorityDecayBound(n, 0); got != float64(n-1) {
		t.Fatalf("round-0 bound = %v", got)
	}
	// Each application of f at most halves the bound once it is small.
	small := PriorityDecayBound(n, r)
	next := PriorityDecayBound(n, r+1)
	if next > small/2+1e-9 {
		t.Fatalf("f did not halve: %v -> %v", small, next)
	}
}

func TestSummarizeMatchesNaiveProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		sum := 0.0
		for i, r := range raw {
			xs[i] = float64(r)
			sum += float64(r)
		}
		s := Summarize(xs)
		return math.Abs(s.Mean-sum/float64(len(raw))) < 1e-9 &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	got := Quantiles(xs, qs...)
	if len(got) != len(qs) {
		t.Fatalf("got %d results, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Errorf("Quantiles q=%v = %v, Quantile = %v", q, got[i], want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 9 || xs[9] != 10 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.5, 0.9)
	for i, v := range got {
		if v != 0 {
			t.Errorf("empty sample quantile %d = %v", i, v)
		}
	}
}

// TestQuantilesExactRanks pins the exact nearest-rank element for every
// edge the experiment tables lean on: q=0 and q=1, single-element
// samples, ranks that land exactly on an integer (where float rounding
// of q*n used to shift the rank by one — 0.1*10 evaluates to
// 1.0000000000000002 in IEEE doubles), and unsorted query lists. The
// samples are permutations of 1..n, so the nearest-rank q-quantile is
// simply the rank itself: ceil(q*n).
func TestQuantilesExactRanks(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		q    float64
		want float64 // = expected rank ceil(q*n)
	}{
		{"q=0 is the minimum", []float64{3, 1, 2}, 0, 1},
		{"q=1 is the maximum", []float64{3, 1, 2}, 1, 3},
		{"single element q=0", []float64{7}, 0, 7},
		{"single element q=0.5", []float64{7}, 0.5, 7},
		{"single element q=1", []float64{7}, 1, 7},
		{"p10 of 10 is rank 1", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.1, 1},
		{"p20 of 10 is rank 2", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.2, 2},
		{"p30 of 10 is rank 3", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.3, 3},
		{"p50 of 10 is rank 5", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.5, 5},
		{"p70 of 10 is rank 7", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.7, 7},
		{"p90 of 10 is rank 9", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.9, 9},
		{"p99 of 10 is rank 10", []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}, 0.99, 10},
		{"p25 of 4 is rank 1", []float64{4, 2, 1, 3}, 0.25, 1},
		{"p50 of 4 is rank 2", []float64{4, 2, 1, 3}, 0.5, 2},
		{"p75 of 4 is rank 3", []float64{4, 2, 1, 3}, 0.75, 3},
		{"p50 of 5 is rank 3", []float64{5, 1, 4, 2, 3}, 0.5, 3},
		{"p40 of 5 is rank 2", []float64{5, 1, 4, 2, 3}, 0.4, 2},
		{"fractional rank rounds up", []float64{5, 1, 4, 2, 3}, 0.41, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Quantile(tt.xs, tt.q); got != tt.want {
				t.Errorf("Quantile(%v, %v) = %v, want rank %v", tt.xs, tt.q, got, tt.want)
			}
		})
	}
}

// TestQuantilesExactRanksLarge sweeps every integer-landing rank of a
// 100-element sample: ceil(k/100 * 100) must be exactly k for every k.
func TestQuantilesExactRanksLarge(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // reverse order: sorting must happen
	}
	for k := 1; k <= 100; k++ {
		q := float64(k) / 100
		if got := Quantile(xs, q); got != float64(k) {
			t.Errorf("Quantile(1..100, %v) = %v, want %v", q, got, k)
		}
	}
}

// TestQuantilesUnsortedQs confirms query quantiles need not be sorted
// (each is computed independently against the one sorted sample).
func TestQuantilesUnsortedQs(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 3, 8, 2, 6, 5, 10}
	got := Quantiles(xs, 0.9, 0.1, 1, 0, 0.5)
	want := []float64{9, 1, 10, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles unsorted qs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBucketQuantileExactRanks pins the same float-rounding edge in the
// histogram variant: rank ceil(0.1*10) must be 1, not 2.
func TestBucketQuantileExactRanks(t *testing.T) {
	uppers := []int64{1, 2, 4, 8}
	counts := []int64{1, 4, 4, 1} // cumulative 1, 5, 9, 10
	tests := []struct {
		q    float64
		want int64
	}{
		{0.1, 1}, {0.2, 2}, {0.5, 2}, {0.9, 4}, {0.91, 8}, {1, 8}, {0, 1},
	}
	for _, tt := range tests {
		if got := BucketQuantile(uppers, counts, tt.q); got != tt.want {
			t.Errorf("BucketQuantile(q=%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileCI(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	v, lo, hi := QuantileCI(xs, 0.5)
	if v != 50 {
		t.Errorf("QuantileCI value = %v, want 50", v)
	}
	// delta = ceil(1.96*sqrt(100*0.25)) = 10 ranks.
	if lo != 40 || hi != 60 {
		t.Errorf("QuantileCI bounds = [%v, %v], want [40, 60]", lo, hi)
	}
	if lo > v || v > hi {
		t.Errorf("CI does not bracket the value: %v not in [%v, %v]", v, lo, hi)
	}

	// Tail quantile: bounds clamp to the sample.
	v, lo, hi = QuantileCI(xs, 0.99)
	if v != 99 || hi != 100 {
		t.Errorf("p99 = %v hi = %v, want 99 and 100", v, hi)
	}
	if lo > v {
		t.Errorf("p99 lo %v above value %v", lo, v)
	}

	// Single element and empty samples degrade gracefully.
	if v, lo, hi = QuantileCI([]float64{7}, 0.5); v != 7 || lo != 7 || hi != 7 {
		t.Errorf("single-element CI = (%v, %v, %v)", v, lo, hi)
	}
	if v, lo, hi = QuantileCI(nil, 0.5); v != 0 || lo != 0 || hi != 0 {
		t.Errorf("empty CI = (%v, %v, %v)", v, lo, hi)
	}
}
