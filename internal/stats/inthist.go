package stats

import "fmt"

// IntHist is a streaming histogram of non-negative integer observations
// (per-process step counts, phase counts), built for million-trial Monte
// Carlo aggregation: Add is O(1) with no allocation once the value range
// has been seen, worker-local histograms Merge associatively, and exact
// nearest-rank quantiles with order-statistic confidence intervals come
// straight from the counts — no per-trial sample retention, unlike the
// sort-based Quantiles path.
type IntHist struct {
	counts []int64 // counts[v] = multiplicity of value v
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewIntHist returns an empty histogram with capacity for values in
// [0, sizeHint) preallocated. Values at or above the hint still work;
// the dense table grows geometrically.
func NewIntHist(sizeHint int) *IntHist {
	return &IntHist{counts: make([]int64, sizeHint)}
}

// Reset empties the histogram, retaining capacity.
func (h *IntHist) Reset() {
	clear(h.counts)
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Add records one observation of v. v must be non-negative.
func (h *IntHist) Add(v int64) { h.AddN(v, 1) }

// AddN records count observations of v.
func (h *IntHist) AddN(v, count int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: IntHist.Add of negative value %d", v))
	}
	if count <= 0 {
		return
	}
	if v >= int64(len(h.counts)) {
		size := int64(len(h.counts))
		if size == 0 {
			size = 64
		}
		for size <= v {
			size *= 2
		}
		grown := make([]int64, size)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v] += count
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n += count
	h.sum += v * count
}

// Merge folds o into h. Merging worker-local histograms in any order
// yields the same histogram, so parallel aggregation stays deterministic.
func (h *IntHist) Merge(o *IntHist) {
	for v := o.min; v <= o.max && v < int64(len(o.counts)); v++ {
		if c := o.counts[v]; c > 0 {
			h.AddN(v, c)
		}
	}
}

// N returns the number of observations.
func (h *IntHist) N() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *IntHist) Sum() int64 { return h.sum }

// Mean returns the sample mean (0 for an empty histogram).
func (h *IntHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observation (0 for an empty histogram).
func (h *IntHist) Min() int64 { return h.min }

// Max returns the largest observation (0 for an empty histogram).
func (h *IntHist) Max() int64 { return h.max }

// rankValue returns the value holding the 1-based rank-th observation in
// sorted order.
func (h *IntHist) rankValue(rank int64) int64 {
	var cum int64
	for v := h.min; v <= h.max; v++ {
		cum += h.counts[v]
		if cum >= rank {
			return v
		}
	}
	return h.max
}

// Quantile returns the nearest-rank q-quantile, identical to
// stats.Quantile on the expanded sample. An empty histogram returns 0.
func (h *IntHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	return h.rankValue(nearestRank(q, h.n))
}

// QuantileCI returns the nearest-rank q-quantile with the same
// order-statistic ~95% confidence interval as stats.QuantileCI on the
// expanded sample. An empty histogram returns zeros.
func (h *IntHist) QuantileCI(q float64) (v, lo, hi int64) {
	if h.n == 0 {
		return 0, 0, 0
	}
	rank := nearestRank(q, h.n)
	delta := ciRankDelta(q, h.n)
	clamp := func(r int64) int64 {
		if r < 1 {
			return 1
		}
		if r > h.n {
			return h.n
		}
		return r
	}
	return h.rankValue(rank), h.rankValue(clamp(rank - delta)), h.rankValue(clamp(rank + delta))
}
