// Package stats provides the small statistical and integer-logarithm
// toolkit used by the experiment harness: summaries with confidence
// intervals, quantiles, simple linear regression (for growth-rate
// checks), and the iterated-logarithm helpers that appear in the paper's
// bounds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95())
}

// SummarizeInts converts and summarizes integer observations.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantiles returns the nearest-rank quantiles of xs for each q in qs
// (0 <= q <= 1), sorting the sample once. Experiment tables query several
// quantiles of the same sample per row, so the single sort matters. An
// empty sample returns all zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	for i, q := range qs {
		out[i] = sortedQuantile(cp, q)
	}
	return out
}

// sortedQuantile is nearest-rank on an already-sorted sample.
func sortedQuantile(sorted []float64, q float64) float64 {
	return sorted[nearestRank(q, int64(len(sorted)))-1]
}

// nearestRank returns the 1-based nearest-rank ceil(q*n) for a sample of
// size n, clamped to [1, n]. The product q*n is guarded against float
// rounding before the ceiling: 0.1*10 evaluates to 1.0000000000000002 in
// IEEE doubles, and a naive ceil would silently shift the rank from 1 to
// 2 (and the p10 of ten samples from the minimum to the second element).
// The relative guard of one part in 10^12 is orders of magnitude above
// the few-ulp error of the product and orders of magnitude below any
// legitimate fractional part 1/n of a realistic sample.
func nearestRank(q float64, n int64) int64 {
	r := q * float64(n)
	rank := int64(math.Ceil(r - r*1e-12))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using nearest-rank
// on a sorted copy. An empty sample returns 0. Callers needing several
// quantiles of one sample should use Quantiles, which sorts once.
func Quantile(xs []float64, q float64) float64 {
	return Quantiles(xs, q)[0]
}

// QuantileCI returns the nearest-rank q-quantile of xs together with a
// ~95% confidence interval [lo, hi] from order statistics: the sample
// values at ranks ceil(q n) ∓ ceil(1.96 sqrt(n q (1-q))), the normal
// approximation to the binomial rank interval, clamped to the sample.
// Unlike the Wald interval on a mean, this is distribution-free — exactly
// what tail quantiles of step counts need. An empty sample returns zeros.
func QuantileCI(xs []float64, q float64) (v, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := int64(len(cp))
	rank := nearestRank(q, n)
	delta := ciRankDelta(q, n)
	clamp := func(r int64) int64 {
		if r < 1 {
			return 1
		}
		if r > n {
			return n
		}
		return r
	}
	return cp[rank-1], cp[clamp(rank-delta)-1], cp[clamp(rank+delta)-1]
}

// ciRankDelta returns the rank half-width ceil(1.96 sqrt(n q (1-q))) of
// the ~95% order-statistic interval around the nearest-rank q-quantile,
// shared by QuantileCI and IntHist.QuantileCI so the two aggregation
// paths report identical intervals.
func ciRankDelta(q float64, n int64) int64 {
	return int64(math.Ceil(1.96 * math.Sqrt(float64(n)*q*(1-q))))
}

// Proportion returns the fraction of true values and the half-width of its
// 95% Wald interval.
func Proportion(hits, trials int) (p, ci float64) {
	if trials == 0 {
		return 0, 0
	}
	p = float64(hits) / float64(trials)
	ci = 1.96 * math.Sqrt(p*(1-p)/float64(trials))
	return p, ci
}

// BucketQuantile returns the nearest-rank q-quantile of a sample known
// only through histogram buckets: counts[i] observations were at most
// uppers[i] (and above uppers[i-1]). It returns the upper bound of the
// bucket containing the nearest-rank element — exact to the bucket
// resolution, which for power-of-two buckets means within a factor of
// two. Buckets must be sorted by upper bound; an empty histogram
// returns 0.
func BucketQuantile(uppers, counts []int64, q float64) int64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(uppers) == 0 {
		return 0
	}
	rank := nearestRank(q, total)
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return uppers[i]
		}
	}
	return uppers[len(uppers)-1]
}

// LinearFit fits y = a + b*x by least squares and returns (a, b). It
// requires len(xs) == len(ys) and at least two points; otherwise it
// returns zeros.
func LinearFit(xs, ys []float64) (a, b float64) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return sy / float64(n), 0
	}
	b = (float64(n)*sxy - sx*sy) / den
	a = (sy - b*sx) / float64(n)
	return a, b
}

// Log2 returns the base-2 logarithm of n (as float), with Log2(x<=0) = 0.
func Log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// LogStar returns the iterated logarithm log* n with the paper's
// convention: log* n = 0 for n <= 1, else 1 + log*(log2 n).
func LogStar(n float64) int {
	count := 0
	for n > 1 {
		n = math.Log2(n)
		count++
		if count > 64 {
			break // unreachable for IEEE doubles; safety
		}
	}
	return count
}

// CeilLogLog returns ceil(log2 log2 n), the round count of the sifting
// phase, with the convention CeilLogLog(n) = 0 for n <= 2.
func CeilLogLog(n int) int {
	if n <= 2 {
		return 0
	}
	return int(math.Ceil(math.Log2(math.Log2(float64(n)))))
}

// CeilLog2 returns ceil(log2 n) with CeilLog2(n<=1) = 0.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// CeilLogBase returns ceil(log_base x) for base > 1, x >= 1.
func CeilLogBase(base, x float64) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(x) / math.Log(base)))
}

// SifterDecayBound returns the closed-form x_i of the paper's equation
// (2): x_i = 2^(2-2^(1-i)) * (n-1)^(2^-i), the bound on the expected
// number of excess personae after round i of Algorithm 2 (i >= 1).
func SifterDecayBound(n, i int) float64 {
	if n <= 1 {
		return 0
	}
	e := math.Pow(2, float64(-i))
	return math.Pow(2, 2-2*e) * math.Pow(float64(n-1), e)
}

// PriorityDecayBound iterates the Lemma 1 map f(x) = min(ln(x+1), x/2)
// starting from n-1, returning the bound on E[X_i] after i rounds of
// Algorithm 1.
func PriorityDecayBound(n, i int) float64 {
	x := float64(n - 1)
	for r := 0; r < i; r++ {
		x = math.Min(math.Log(x+1), x/2)
	}
	return x
}
