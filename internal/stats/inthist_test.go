package stats

import (
	"math/rand"
	"testing"
)

// TestIntHistMatchesSortedQuantiles pins IntHist's quantiles and CIs to
// the sort-based reference on random samples: both aggregation paths
// must report identical tables.
func TestIntHistMatchesSortedQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		h := NewIntHist(0)
		sample := make([]float64, n)
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(300))
			h.Add(v)
			sample[i] = float64(v)
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			want := Quantile(sample, q)
			if got := h.Quantile(q); float64(got) != want {
				t.Fatalf("trial %d n=%d q=%v: hist %d, sorted %v", trial, n, q, got, want)
			}
			wv, wlo, whi := QuantileCI(sample, q)
			gv, glo, ghi := h.QuantileCI(q)
			if float64(gv) != wv || float64(glo) != wlo || float64(ghi) != whi {
				t.Fatalf("trial %d n=%d q=%v: hist CI (%d,%d,%d), sorted (%v,%v,%v)",
					trial, n, q, gv, glo, ghi, wv, wlo, whi)
			}
		}
		sum := Summarize(sample)
		if h.Mean() != sum.Mean {
			t.Fatalf("trial %d: mean %v != %v", trial, h.Mean(), sum.Mean)
		}
		if float64(h.Min()) != sum.Min || float64(h.Max()) != sum.Max {
			t.Fatalf("trial %d: min/max (%d,%d) != (%v,%v)", trial, h.Min(), h.Max(), sum.Min, sum.Max)
		}
	}
}

// TestIntHistMergeDeterministic pins that merging worker shards in any
// order equals single-histogram aggregation.
func TestIntHistMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewIntHist(64)
	shards := make([]*IntHist, 4)
	for i := range shards {
		shards[i] = NewIntHist(0)
	}
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(1000))
		whole.Add(v)
		shards[i%len(shards)].Add(v)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}} {
		merged := NewIntHist(0)
		for _, i := range order {
			merged.Merge(shards[i])
		}
		if merged.N() != whole.N() || merged.Sum() != whole.Sum() {
			t.Fatalf("order %v: n/sum (%d,%d) != (%d,%d)", order, merged.N(), merged.Sum(), whole.N(), whole.Sum())
		}
		for _, q := range []float64{0.1, 0.5, 0.99} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("order %v q=%v: %d != %d", order, q, merged.Quantile(q), whole.Quantile(q))
			}
		}
	}
}

// TestIntHistEdgeCases pins empty-histogram zeros, Reset reuse, and the
// negative-value panic.
func TestIntHistEdgeCases(t *testing.T) {
	h := NewIntHist(8)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.N() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Add(5)
	h.AddN(100, 3) // beyond the hint: grow path
	if h.N() != 4 || h.Max() != 100 || h.Min() != 5 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(1) != 0 {
		t.Fatal("Reset did not empty the histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	h.Add(-1)
}
