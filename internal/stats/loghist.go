package stats

import (
	"fmt"
	"math/bits"
)

// LogHist is a log-linear histogram of non-negative int64 observations,
// built for latency recording: every bucket array is allocated once at a
// fixed, small size (a few tens of KB), so Add never grows memory no
// matter how large the observed values get — unlike IntHist, whose dense
// value-indexed table is exact but grows to 8 MB the first time a
// microsecond-scale recorder observes a one-second outlier.
//
// Values below sub are exact; above that each power-of-two octave is
// split into sub linear buckets, bounding the relative quantile error at
// 1/sub (sub=64 → ≤1.6%). Min and max are tracked exactly.
type LogHist struct {
	counts  []int64
	n       int64
	sum     int64
	min     int64
	max     int64
	sub     int64 // power of two: exact below this, 1/sub relative error above
	log2sub int
}

// NewLogHist returns an empty histogram with sub linear buckets per
// octave. sub must be a power of two ≥ 2; 64 is a good default.
func NewLogHist(sub int) *LogHist {
	if sub < 2 || sub&(sub-1) != 0 {
		panic(fmt.Sprintf("stats: LogHist sub %d is not a power of two >= 2", sub))
	}
	log2sub := bits.TrailingZeros64(uint64(sub))
	// Octaves run from log2sub to 62 (int64 values), sub buckets each,
	// plus the exact region below sub. ~30 KB at sub=64, fixed forever.
	size := sub + (63-log2sub)*sub
	return &LogHist{
		counts:  make([]int64, size),
		sub:     int64(sub),
		log2sub: log2sub,
	}
}

// index maps a value to its bucket. Values < sub map to themselves; a
// value in octave [2^k, 2^(k+1)) maps to one of sub buckets of width
// 2^(k-log2sub). The mapping is continuous at the sub boundary.
func (h *LogHist) index(v int64) int {
	if v < h.sub {
		return int(v)
	}
	k := 63 - bits.LeadingZeros64(uint64(v))
	shift := k - h.log2sub
	// (v >> shift) is in [sub, 2*sub); successive octaves stack in
	// sub-sized blocks starting at index sub.
	return int(int64(shift)*h.sub + v>>shift)
}

// bucketValue returns the representative value of bucket i: exact in the
// linear region, the bucket midpoint above it.
func (h *LogHist) bucketValue(i int) int64 {
	if int64(i) < 2*h.sub {
		// Width-1 buckets: the exact region plus the first octave.
		return int64(i)
	}
	shift := i/int(h.sub) - 1
	low := (int64(i) - int64(shift)*h.sub) << shift
	return low + (int64(1)<<shift)/2
}

// Add records one observation of v. v must be non-negative.
func (h *LogHist) Add(v int64) { h.AddN(v, 1) }

// AddN records count observations of v. Never allocates.
func (h *LogHist) AddN(v, count int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: LogHist.Add of negative value %d", v))
	}
	if count <= 0 {
		return
	}
	h.counts[h.index(v)] += count
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n += count
	h.sum += v * count
}

// Merge folds o into h. Both histograms must share the same sub; merging
// in any order yields the same histogram.
func (h *LogHist) Merge(o *LogHist) {
	if h.sub != o.sub {
		panic(fmt.Sprintf("stats: merging LogHist sub %d into sub %d", o.sub, h.sub))
	}
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		if c > 0 {
			h.counts[i] += c
		}
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// N returns the number of observations.
func (h *LogHist) N() int64 { return h.n }

// Sum returns the exact sum of all observations.
func (h *LogHist) Sum() int64 { return h.sum }

// Mean returns the exact sample mean (0 for an empty histogram).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observation, exactly (0 when empty).
func (h *LogHist) Min() int64 { return h.min }

// Max returns the largest observation, exactly (0 when empty).
func (h *LogHist) Max() int64 { return h.max }

// Quantile returns the nearest-rank q-quantile's representative value:
// exact below sub, within 1/sub relative error above. The extremes are
// pinned to the exact tracked min and max. An empty histogram returns 0.
func (h *LogHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := nearestRank(q, h.n)
	var cum int64
	lo, hi := h.index(h.min), h.index(h.max)
	for i := lo; i <= hi; i++ {
		cum += h.counts[i]
		if cum >= rank {
			switch i {
			case lo:
				return h.min
			case hi:
				return h.max
			}
			return h.bucketValue(i)
		}
	}
	return h.max
}
