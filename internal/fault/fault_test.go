package fault

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range []Kind{Stutter, Stall, CrashRecover, StaleRead, StaleScan} {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted bogus name")
	}
	for _, s := range []Semantics{SemAtomic, SemRegular, SemSafe} {
		got, ok := SemanticsByName(s.String())
		if !ok || got != s {
			t.Errorf("SemanticsByName(%q) = %v, %v", s.String(), got, ok)
		}
	}
	for _, p := range []ProcFault{ProcNone, ProcStutter, ProcStall, ProcCrashRecover} {
		got, ok := ProcFaultByName(p.String())
		if !ok || got != p {
			t.Errorf("ProcFaultByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
}

func TestScheduleNormalization(t *testing.T) {
	// Events handed over in scrambled order come back sorted: slot-addressed
	// first by (Slot, Pid, Kind, Arg), then op-addressed by (Pid, Op, Kind,
	// Arg) — the orders Injector delivery depends on.
	events := []Event{
		{Kind: StaleRead, Pid: 1, Op: 9, Arg: 2},
		{Kind: Stall, Pid: 0, Slot: 50, Arg: 3},
		{Kind: StaleRead, Pid: 0, Op: 3, Arg: 1},
		{Kind: Stutter, Pid: 2, Slot: 10, Arg: 4},
		{Kind: CrashRecover, Pid: 1, Slot: 10},
	}
	s, err := NewSchedule(3, events)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Events()
	wantOrder := []Kind{CrashRecover, Stutter, Stall, StaleRead, StaleRead}
	for i, k := range wantOrder {
		if got[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v (full: %+v)", i, got[i].Kind, k, got)
		}
	}
	if got[0].Slot != 10 || got[1].Slot != 10 || got[2].Slot != 50 {
		t.Errorf("slot-addressed events out of order: %+v", got[:3])
	}
	if got[3].Pid != 0 || got[4].Pid != 1 {
		t.Errorf("op-addressed events out of pid order: %+v", got[3:])
	}
	// The input slice must not be aliased.
	events[0].Arg = 99
	if s.Events()[4].Arg == 99 {
		t.Error("schedule aliases caller's event slice")
	}
}

func TestScheduleValidate(t *testing.T) {
	tests := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown kind", Event{Kind: Kind(99), Pid: 0}, "kind"},
		{"pid negative", Event{Kind: Stutter, Pid: -1, Arg: 1}, "pid"},
		{"pid too large", Event{Kind: Stutter, Pid: 4, Arg: 1}, "pid"},
		{"negative slot", Event{Kind: Stall, Pid: 0, Slot: -1, Arg: 1}, "slot"},
		{"negative op", Event{Kind: StaleRead, Pid: 0, Op: -2}, "op"},
		{"zero stutter", Event{Kind: Stutter, Pid: 0, Slot: 1}, "length"},
		{"zero stall", Event{Kind: Stall, Pid: 0, Slot: 1}, "length"},
		{"zero scan depth", Event{Kind: StaleScan, Pid: 0, Op: 1}, "depth"},
		{"negative read depth", Event{Kind: StaleRead, Pid: 0, Op: 1, Arg: -1}, "arg"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSchedule(4, []Event{tt.ev})
			if err == nil {
				t.Fatalf("NewSchedule accepted %+v", tt.ev)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	// A null-read event (depth 0) is legal for safe registers.
	if _, err := NewSchedule(4, []Event{{Kind: StaleRead, Pid: 0, Op: 1, Arg: 0}}); err != nil {
		t.Errorf("null-read event rejected: %v", err)
	}
}

func TestScheduleCodecRoundTrip(t *testing.T) {
	s, err := NewSchedule(4, []Event{
		{Kind: Stutter, Pid: 1, Slot: 7, Arg: 3},
		{Kind: CrashRecover, Pid: 2, Slot: 100},
		{Kind: StaleRead, Pid: 0, Op: 5, Arg: 0},
		{Kind: StaleScan, Pid: 3, Op: 2, Arg: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(SchemaFault)) {
		t.Errorf("encoding lacks schema tag:\n%s", data)
	}
	s2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-encoding differs:\n%s\nvs\n%s", data, data2)
	}
	if s2.N() != 4 || s2.Len() != 4 {
		t.Errorf("decoded n=%d len=%d", s2.N(), s2.Len())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for name, data := range map[string]string{
		"not json":     "}{",
		"wrong schema": `{"schema":"conciliator-bench/v1","n":2}`,
		"bad event":    `{"schema":"conciliator-fault/v1","n":2,"events":[{"kind":"stutter","pid":9,"arg":1}]}`,
		"bad kind":     `{"schema":"conciliator-fault/v1","n":2,"events":[{"kind":"meteor","pid":0,"arg":1}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode([]byte(data)); err == nil {
				t.Errorf("Decode accepted %s", data)
			}
		})
	}
}

func TestPlanDeterministicAndAxes(t *testing.T) {
	p := Plan{N: 6, Seed: 42, Semantics: SemSafe, Proc: ProcStutter}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Encode()
	db, _ := b.Encode()
	if !bytes.Equal(da, db) {
		t.Error("same plan seed produced different schedules")
	}
	p.Seed = 43
	c, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dc, _ := c.Encode()
	if bytes.Equal(da, dc) {
		t.Error("different plan seeds produced identical schedules")
	}

	// Axis contract: atomic+none injects nothing; atomic+stutter has only
	// process faults; regular has depth-1 reads only; safe may go deeper.
	empty, err := Plan{N: 4, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("atomic+none plan generated %d events", empty.Len())
	}
	procOnly, err := Plan{N: 4, Seed: 1, Proc: ProcCrashRecover}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if procOnly.Len() == 0 {
		t.Error("crash-recovery plan generated no events")
	}
	for _, e := range procOnly.Events() {
		if e.Kind != CrashRecover {
			t.Errorf("atomic semantics generated semantic fault %+v", e)
		}
	}
	regular, err := Plan{N: 4, Seed: 1, Semantics: SemRegular}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if regular.Len() == 0 {
		t.Error("regular plan generated no events")
	}
	for _, e := range regular.Events() {
		switch e.Kind {
		case StaleRead:
			if e.Arg != 1 {
				t.Errorf("regular semantics generated depth-%d read: %+v", e.Arg, e)
			}
		case StaleScan:
			if e.Arg != 1 {
				t.Errorf("regular semantics generated depth-%d scan: %+v", e.Arg, e)
			}
		default:
			t.Errorf("semantics-only plan generated process fault %+v", e)
		}
	}
}

func TestPlanRejectsBadN(t *testing.T) {
	if _, err := (Plan{N: 0, Seed: 1}).Generate(); err == nil {
		t.Error("Plan with N=0 accepted")
	}
}
