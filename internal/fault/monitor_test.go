package fault

import (
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
)

func violationMonitors(vs []Violation) map[string]int {
	m := make(map[string]int)
	for _, v := range vs {
		m[v.Monitor]++
	}
	return m
}

func TestMonitorCleanRun(t *testing.T) {
	mon := NewMonitor()
	// Two phases of a well-behaved adopt-commit: phase 0 mixed proposals
	// (adopt is fine), phase 1 unanimous commit.
	mon.ObserveAC(0, 0, 1, 1, false)
	mon.ObserveAC(0, 1, 2, 1, false)
	mon.ObserveAC(1, 0, 1, 1, true)
	mon.ObserveAC(1, 1, 1, 1, true)
	mon.CheckOutcome([]int{1, 2}, []int{1, 1}, []bool{true, true})
	if vs := mon.Finish(); len(vs) != 0 {
		t.Errorf("clean run produced violations: %v", vs)
	}
}

func TestMonitorAgreementAndValidity(t *testing.T) {
	mon := NewMonitor()
	// Process 2 never finished: its slot must be ignored.
	mon.CheckOutcome([]int{5, 6, 7}, []int{5, 6, 0}, []bool{true, true, false})
	got := violationMonitors(mon.Violations())
	if got["agreement"] == 0 {
		t.Errorf("disagreement not reported: %v", mon.Violations())
	}

	mon = NewMonitor()
	mon.CheckOutcome([]int{5, 6}, []int{9, 9}, []bool{true, true})
	got = violationMonitors(mon.Violations())
	if got["validity"] == 0 {
		t.Errorf("invalid decision not reported: %v", mon.Violations())
	}
	if got["agreement"] != 0 {
		t.Errorf("unanimous invalid decision misreported as disagreement: %v", mon.Violations())
	}
}

func TestMonitorACCoherence(t *testing.T) {
	// A phase with a commit of 1 and a return of 2 violates coherence.
	mon := NewMonitor()
	mon.ObserveAC(0, 0, 1, 1, true)
	mon.ObserveAC(0, 1, 2, 2, false)
	got := violationMonitors(mon.Finish())
	if got["ac-coherence"] == 0 {
		t.Errorf("coherence breach not reported: %v", mon.Violations())
	}

	// Two different committed values in one phase.
	mon = NewMonitor()
	mon.ObserveAC(3, 0, 1, 1, true)
	mon.ObserveAC(3, 1, 2, 2, true)
	got = violationMonitors(mon.Finish())
	if got["ac-coherence"] == 0 {
		t.Errorf("split commit not reported: %v", mon.Violations())
	}
}

func TestMonitorACValidityAndConvergence(t *testing.T) {
	mon := NewMonitor()
	mon.ObserveAC(0, 0, 1, 9, false) // 9 was never proposed
	got := violationMonitors(mon.Finish())
	if got["ac-validity"] == 0 {
		t.Errorf("ac validity breach not reported: %v", mon.Violations())
	}

	mon = NewMonitor()
	mon.ObserveAC(0, 0, 4, 4, false) // unanimous proposals must commit
	mon.ObserveAC(0, 1, 4, 4, true)
	got = violationMonitors(mon.Finish())
	if got["ac-convergence"] == 0 {
		t.Errorf("convergence breach not reported: %v", mon.Violations())
	}
}

// A Propose that started but never completed (crash-recovery amnesia)
// may have planted its value in shared state, so it legitimizes both
// conflicts (no convergence obligation) and returning that value (no
// validity breach). See the Observation doc in adoptcommit/checked.go.
func TestMonitorAbortedProposalCountsAsProposed(t *testing.T) {
	mon := NewMonitor()
	mon.ObserveACPropose(0, 2, 7) // aborted: conflicting value 7 started
	mon.ObserveAC(0, 0, 4, 4, false)
	mon.ObserveAC(0, 1, 4, 7, false) // read back the aborted value
	if vs := mon.Finish(); len(vs) != 0 {
		t.Errorf("aborted conflicting proposal must suppress convergence and validity: %v", vs)
	}

	// Control: without the aborted proposal the same completions are a
	// convergence breach and a validity breach.
	mon = NewMonitor()
	mon.ObserveAC(0, 0, 4, 4, false)
	mon.ObserveAC(0, 1, 4, 7, false)
	got := violationMonitors(mon.Finish())
	if got["ac-validity"] == 0 || got["ac-convergence"] == 0 {
		t.Errorf("control run should breach validity and convergence: %v", mon.Violations())
	}
}

// monCtx is a minimal memory.Context carrying a process id, standing in
// for sim.Proc in monitor unit tests.
type monCtx struct{ id int }

func (c monCtx) Step()           {}
func (c monCtx) Exclusive() bool { return true }
func (c monCtx) ID() int         { return c.id }

// liarMaxer forwards to a real max register but returns a doctored stale
// value on one designated read — the minimal faulty implementation the
// monitor must catch.
type liarMaxer struct {
	inner memory.Maxer[int]
	lieOn int
	reads int
}

func (l *liarMaxer) WriteMax(ctx memory.Context, key uint64, payload int) {
	l.inner.WriteMax(ctx, key, payload)
}

func (l *liarMaxer) ReadMax(ctx memory.Context) (uint64, int, bool) {
	k, v, ok := l.inner.ReadMax(ctx)
	if l.reads == l.lieOn {
		l.reads++
		return 1, 1, true // stale: a max register can never run backwards
	}
	l.reads++
	return k, v, ok
}

// TestMonitoredMaxerCatchesStaleRead is the expected-failure test
// guarding against vacuous monitors: a max register that runs backwards
// MUST produce a maxreg-monotonic violation, both from the online floor
// check and from the linearize.Check pass at Finish.
func TestMonitoredMaxerCatchesStaleRead(t *testing.T) {
	mon := NewMonitor()
	m := NewMonitoredMaxer[int](&liarMaxer{inner: memory.NewMaxRegister[int](), lieOn: 1}, mon)
	ctx := monCtx{id: 0}
	m.WriteMax(ctx, 5, 5)
	if k, _, _ := m.ReadMax(ctx); k != 5 { // read 0: truthful
		t.Fatalf("truthful read = %d", k)
	}
	m.WriteMax(ctx, 7, 7)
	m.ReadMax(ctx) // read 1: lies with key 1 < completed write 7
	m.Finish()
	got := violationMonitors(mon.Violations())
	if got["maxreg-monotonic"] == 0 {
		t.Fatalf("backwards max register not reported: %v", mon.Violations())
	}
}

func TestMonitoredMaxerCatchesPerPidRegression(t *testing.T) {
	// The second lie targets the per-process monotone-reads invariant:
	// pid 1 reads 9 then 1, with no intervening completed-write floor at 9
	// for... the floor check also fires; assert at least the violation
	// mentions process 1 going backwards.
	mon := NewMonitor()
	inner := memory.NewMaxRegister[int]()
	m := NewMonitoredMaxer[int](&liarMaxer{inner: inner, lieOn: 1}, mon)
	ctx := monCtx{id: 1}
	m.WriteMax(ctx, 9, 9)
	m.ReadMax(ctx) // truthful: 9
	m.ReadMax(ctx) // lies: 1
	m.Finish()
	vs := mon.Violations()
	if len(vs) == 0 {
		t.Fatal("regressing reads not reported")
	}
	found := false
	for _, v := range vs {
		if v.Monitor == "maxreg-monotonic" && strings.Contains(v.Detail, "process 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-process violation naming process 1: %v", vs)
	}
}

func TestMonitoredMaxerCleanInner(t *testing.T) {
	// An honest max register under concurrent-free use must stay silent.
	mon := NewMonitor()
	m := NewMonitoredMaxer[int](memory.NewMaxRegister[int](), mon)
	for pid := 0; pid < 3; pid++ {
		ctx := monCtx{id: pid}
		for i := 0; i < 5; i++ {
			m.WriteMax(ctx, uint64(10*i+pid), 10*i+pid)
			m.ReadMax(ctx)
		}
	}
	m.Finish()
	if vs := mon.Violations(); len(vs) != 0 {
		t.Errorf("honest max register reported: %v", vs)
	}
}

func TestReproValidateAndRoundTrip(t *testing.T) {
	s := mustSchedule(t, 3, []Event{{Kind: StaleRead, Pid: 0, Op: 1, Arg: 1}})
	r := &Repro{
		N:          3,
		Sched:      "round-robin",
		SchedSeed:  7,
		AlgSeed:    8,
		Workload:   "maxreg-probe",
		Fault:      s,
		Violations: []Violation{{Monitor: "maxreg-monotonic", Detail: "test"}},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecodeRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Schema != SchemaRepro || r2.N != 3 || r2.Fault.Len() != 1 || len(r2.Violations) != 1 {
		t.Errorf("round trip lost fields: %+v", r2)
	}

	bad := *r
	bad.Violations = nil
	if _, err := bad.Encode(); err == nil {
		t.Error("repro without violations accepted")
	}
	bad = *r
	bad.N = 5 // schedule targets 3
	bad.Schema = SchemaRepro
	if err := bad.Validate(); err == nil {
		t.Error("repro with process-count mismatch accepted")
	}
	if _, err := DecodeRepro([]byte(`{"schema":"nope"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}
