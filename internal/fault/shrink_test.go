package fault

import "testing"

func TestShrinkToSingleCulprit(t *testing.T) {
	// 20 events, exactly one of which matters: the shrinker must isolate it
	// and halve its magnitude to the floor.
	var events []Event
	for i := 0; i < 19; i++ {
		events = append(events, Event{Kind: Stutter, Pid: i % 4, Slot: int64(i), Arg: 3})
	}
	culprit := Event{Kind: StaleRead, Pid: 2, Op: 7, Arg: 8}
	events = append(events, culprit)
	s := mustSchedule(t, 4, events)

	calls := 0
	repro := func(cand *Schedule) bool {
		calls++
		for _, e := range cand.Events() {
			// Any stale read of pid 2 on op 7 reproduces, regardless of depth:
			// magnitude minimization should then drive Arg to 0.
			if e.Kind == StaleRead && e.Pid == 2 && e.Op == 7 {
				return true
			}
		}
		return false
	}
	got := Shrink(s, 10_000, repro)
	if got.Len() != 1 {
		t.Fatalf("shrunk to %d events, want 1: %+v", got.Len(), got.Events())
	}
	e := got.Events()[0]
	if e.Kind != StaleRead || e.Pid != 2 || e.Op != 7 {
		t.Fatalf("wrong culprit survived: %+v", e)
	}
	if e.Arg != 0 {
		t.Errorf("magnitude not minimized: arg = %d", e.Arg)
	}
	if calls == 0 {
		t.Fatal("repro never invoked")
	}
}

func TestShrinkDeterministic(t *testing.T) {
	var events []Event
	for i := 0; i < 12; i++ {
		events = append(events, Event{Kind: Stall, Pid: i % 3, Slot: int64(10 * i), Arg: 4})
	}
	s := mustSchedule(t, 3, events)
	repro := func(cand *Schedule) bool {
		// Needs at least two stalls of pid 1 to reproduce.
		n := 0
		for _, e := range cand.Events() {
			if e.Pid == 1 {
				n++
			}
		}
		return n >= 2
	}
	a := Shrink(s, 10_000, repro)
	b := Shrink(s, 10_000, repro)
	da, _ := a.Encode()
	db, _ := b.Encode()
	if string(da) != string(db) {
		t.Errorf("shrink is nondeterministic:\n%s\nvs\n%s", da, db)
	}
	if a.Len() != 2 {
		t.Errorf("shrunk to %d events, want 2", a.Len())
	}
	if !repro(a) {
		t.Error("shrunk schedule does not reproduce")
	}
}

func TestShrinkBudgetExhaustion(t *testing.T) {
	var events []Event
	for i := 0; i < 16; i++ {
		events = append(events, Event{Kind: Stutter, Pid: 0, Slot: int64(i), Arg: 2})
	}
	s := mustSchedule(t, 1, events)
	always := func(*Schedule) bool { return true }
	// Zero budget: nothing tried, input returned as-is.
	if got := Shrink(s, 0, always); got.Len() != s.Len() {
		t.Errorf("zero-budget shrink changed the schedule: %d events", got.Len())
	}
	// A tiny budget still returns something that reproduces.
	got := Shrink(s, 3, always)
	if got == nil || !always(got) {
		t.Fatal("budgeted shrink lost the repro")
	}
	if got.Len() >= s.Len() {
		t.Errorf("3 tries should delete at least one chunk: %d events", got.Len())
	}
}

func TestShrinkNilAndEmpty(t *testing.T) {
	if got := Shrink(nil, 100, func(*Schedule) bool { return true }); got != nil {
		t.Error("nil input should pass through")
	}
	empty := mustSchedule(t, 2, nil)
	if got := Shrink(empty, 100, func(*Schedule) bool { return true }); got.Len() != 0 {
		t.Error("empty input should pass through")
	}
}
