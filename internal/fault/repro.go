package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaRepro is the schema tag of serialized repro artifacts.
const SchemaRepro = "conciliator-fault-repro/v1"

// Repro is a minimal, self-contained reproduction of a safety violation
// or non-termination: everything a replayer needs to re-execute the
// failing trial bit-for-bit. A controlled run is a pure function of
// (workload, schedule source, algorithm seed, fault schedule), so no
// recorded slots are necessary — the four seeds-and-schedules fields
// regenerate the identical execution.
type Repro struct {
	Schema string `json:"schema"`
	// N is the process count.
	N int `json:"n"`
	// Sched names the schedule source kind (sched.Kind.String()).
	Sched string `json:"sched"`
	// SchedSeed seeds the schedule source.
	SchedSeed uint64 `json:"sched_seed"`
	// AlgSeed seeds the per-process algorithm randomness.
	AlgSeed uint64 `json:"alg_seed"`
	// MaxSlots is the run's slot budget (0 = simulator default).
	MaxSlots int64 `json:"max_slots,omitempty"`
	// Workload names the trial body; the experiment package's replayer
	// resolves it.
	Workload string `json:"workload"`
	// Fault is the (typically shrunk) fault schedule.
	Fault *Schedule `json:"fault"`
	// Violations are the monitor firings the original run produced, for
	// the replayer to confirm.
	Violations []Violation `json:"violations"`

	// SavedPath is where Save last wrote the artifact; informational
	// only, never serialized.
	SavedPath string `json:"-"`
}

// Validate checks the artifact is well-formed enough to replay.
func (r *Repro) Validate() error {
	if r.Schema != SchemaRepro {
		return fmt.Errorf("fault: repro schema %q, want %q", r.Schema, SchemaRepro)
	}
	if r.N <= 0 {
		return fmt.Errorf("fault: repro has non-positive process count %d", r.N)
	}
	if r.Workload == "" {
		return fmt.Errorf("fault: repro names no workload")
	}
	if r.Fault == nil {
		return fmt.Errorf("fault: repro carries no fault schedule")
	}
	if r.Fault.N() != r.N {
		return fmt.Errorf("fault: repro is for %d processes but its schedule targets %d", r.N, r.Fault.N())
	}
	if len(r.Violations) == 0 {
		return fmt.Errorf("fault: repro records no violations to reproduce")
	}
	return r.Fault.Validate()
}

// Encode serializes the artifact.
func (r *Repro) Encode() ([]byte, error) {
	if r.Schema == "" {
		r.Schema = SchemaRepro
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeRepro parses and validates a serialized artifact.
func DecodeRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("fault: parsing repro: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Save writes the artifact to path, creating parent directories.
func (r *Repro) Save(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadRepro reads and validates an artifact from path.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRepro(data)
}
