// Package fault is the fault-injection substrate: it stresses the
// reproduction under failure modes the paper's proofs do not cover and
// pairs every injected fault with a safety monitor and a counterexample
// shrinker, so a violation is never just a red number — it is a minimal,
// replayable artifact.
//
// The paper's guarantees (Algorithms 1-3, adopt-commit coherence) are
// proved on atomic registers, unit-cost snapshots, and clean permanent
// crashes, which is exactly what internal/memory and the sched crash
// sources implement. This package relaxes those assumptions along two
// axes:
//
//   - Register semantics: regular reads (a read overlapping a write may
//     return the previous value), safe reads (a read overlapping a write
//     may return any stale value, or the null value), and
//     bounded-staleness snapshot scans. Hadzilacos-Hu-Toueg (2020) show
//     randomized consensus is materially different on regular registers;
//     these faults let us observe which guarantees survive.
//   - Process faults beyond permanent crash: stutters (a process's next k
//     granted steps become no-ops), stalls (the scheduler starves a pid
//     for a window), and crash-recovery with amnesia (local state reset,
//     shared writes persist).
//
// A fault schedule is an explicit, finite list of events addressed by
// the deterministic clocks the simulator already exposes — the global
// slot clock for process faults, per-process read/scan operation indices
// for semantic faults. Explicit events make the schedule a pure value:
// generation from a seeded Plan, JSON round-tripping, replay, and
// delta-debugging shrinks all operate on the same representation, and a
// run is a pure function of (algorithm seed, schedule source, fault
// schedule).
//
// Injection is zero-cost when disabled: the memory substrate consults
// its fault hooks only while at least one faulted run is active (a
// single atomic load per operation otherwise), and the simulator driver
// takes its fault branches only when a run carries a schedule.
package fault

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Kind identifies one fault event family.
type Kind uint8

const (
	// Stutter makes the target's next Arg granted slots no-ops: the
	// process is scheduled but executes nothing (a slow or wedged
	// process, as seen by the schedule).
	Stutter Kind = iota + 1
	// Stall starves the target for Arg slots starting at Slot: the
	// scheduler's grants to it are consumed without running it.
	Stall
	// CrashRecover crashes the target at Slot and restarts it with
	// amnesia: the process body re-runs from the top with reset local
	// state (fresh stack and private randomness) while every shared
	// write it made persists.
	CrashRecover
	// StaleRead weakens the target's Op-th read-class operation: the
	// read returns the value Arg writes back in the object's history
	// (Arg = 0 returns the null value, modeling a safe register's
	// arbitrary result during an overlapping write).
	StaleRead
	// StaleScan weakens the target's Op-th snapshot scan: every
	// component reads Arg writes stale (bounded staleness).
	StaleScan
)

// String returns the event-family name used in JSON and flags.
func (k Kind) String() string {
	switch k {
	case Stutter:
		return "stutter"
	case Stall:
		return "stall"
	case CrashRecover:
		return "crash-recovery"
	case StaleRead:
		return "stale-read"
	case StaleScan:
		return "stale-scan"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a Kind from its String form.
func KindByName(name string) (Kind, bool) {
	for _, k := range []Kind{Stutter, Stall, CrashRecover, StaleRead, StaleScan} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// kindJSON bridges Kind to its stable string form in artifacts.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the stable string form.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	kk, ok := KindByName(s)
	if !ok {
		return fmt.Errorf("fault: unknown kind %q", s)
	}
	*k = kk
	return nil
}

// Event is one injected fault. Process faults (Stutter, Stall,
// CrashRecover) are addressed by the global slot clock; semantic faults
// (StaleRead, StaleScan) are addressed by the target process's
// read-class or scan operation index, which the injector counts.
type Event struct {
	Kind Kind  `json:"kind"`
	Pid  int   `json:"pid"`
	Slot int64 `json:"slot,omitempty"` // process faults: fires when the slot clock reaches Slot
	Op   int64 `json:"op,omitempty"`   // semantic faults: fires on the Pid's Op-th read/scan (0-indexed)
	Arg  int64 `json:"arg,omitempty"`  // stutter/stall length, or staleness depth (0 = null read)
}

// slotAddressed reports whether the event fires off the slot clock.
func (e Event) slotAddressed() bool {
	return e.Kind == Stutter || e.Kind == Stall || e.Kind == CrashRecover
}

// Schedule is an explicit fault schedule for n processes: the unit of
// generation, injection, serialization, replay, and shrinking.
type Schedule struct {
	n      int
	events []Event
}

// scheduleJSON is the serialized form; SchemaFault names it.
type scheduleJSON struct {
	Schema string  `json:"schema"`
	N      int     `json:"n"`
	Events []Event `json:"events"`
}

// SchemaFault is the schema tag of serialized fault schedules.
const SchemaFault = "conciliator-fault/v1"

// NewSchedule builds a normalized schedule over n processes, validating
// every event. The input slice is copied.
func NewSchedule(n int, events []Event) (*Schedule, error) {
	s := &Schedule{n: n, events: append([]Event(nil), events...)}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// N returns the process count the schedule targets.
func (s *Schedule) N() int { return s.n }

// Events returns a copy of the event list.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.events) }

// normalize sorts events into the canonical order: slot-addressed events
// by (Slot, Pid, Kind, Arg), then op-addressed events by (Pid, Op, Kind,
// Arg). Canonical order makes byte-identical round-trips well-defined
// and the injector's cursors O(1).
func (s *Schedule) normalize() {
	sort.SliceStable(s.events, func(a, b int) bool {
		ea, eb := s.events[a], s.events[b]
		sa, sb := ea.slotAddressed(), eb.slotAddressed()
		if sa != sb {
			return sa
		}
		if sa {
			if ea.Slot != eb.Slot {
				return ea.Slot < eb.Slot
			}
			if ea.Pid != eb.Pid {
				return ea.Pid < eb.Pid
			}
		} else {
			if ea.Pid != eb.Pid {
				return ea.Pid < eb.Pid
			}
			if ea.Op != eb.Op {
				return ea.Op < eb.Op
			}
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		return ea.Arg < eb.Arg
	})
}

// Validate checks every event for well-formedness: known kind, pid in
// range, non-negative clocks, and kind-appropriate arguments. The
// injector refuses invalid schedules, so a malformed artifact fails with
// a descriptive error instead of panicking the driver.
func (s *Schedule) Validate() error {
	if s.n <= 0 {
		return fmt.Errorf("fault: schedule has non-positive process count %d", s.n)
	}
	for i, e := range s.events {
		switch e.Kind {
		case Stutter, Stall, CrashRecover, StaleRead, StaleScan:
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Pid < 0 || e.Pid >= s.n {
			return fmt.Errorf("fault: event %d (%s) targets pid %d outside [0, %d)", i, e.Kind, e.Pid, s.n)
		}
		if e.Slot < 0 || e.Op < 0 || e.Arg < 0 {
			return fmt.Errorf("fault: event %d (%s) has a negative field (slot=%d op=%d arg=%d)",
				i, e.Kind, e.Slot, e.Op, e.Arg)
		}
		switch e.Kind {
		case Stutter, Stall:
			if e.Arg < 1 {
				return fmt.Errorf("fault: event %d (%s) needs a positive length, got %d", i, e.Kind, e.Arg)
			}
		case StaleScan:
			if e.Arg < 1 {
				return fmt.Errorf("fault: event %d (stale-scan) needs a positive depth, got %d", i, e.Arg)
			}
		}
	}
	return nil
}

// MarshalJSON serializes the schedule in the same schema-tagged form
// Encode uses, so a Schedule can be embedded in larger artifacts
// (Repro) directly.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(scheduleJSON{Schema: SchemaFault, N: s.n, Events: s.events})
}

// UnmarshalJSON parses the schema-tagged form, validating it.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	dec, err := Decode(data)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}

// Encode serializes the schedule; Decode(Encode(s)) equals s
// byte-for-byte once normalized.
func (s *Schedule) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(scheduleJSON{Schema: SchemaFault, N: s.n, Events: s.events}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a serialized schedule, validating schema and events.
func Decode(data []byte) (*Schedule, error) {
	var raw scheduleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("fault: parsing schedule: %w", err)
	}
	if raw.Schema != SchemaFault {
		return nil, fmt.Errorf("fault: schedule schema %q, want %q", raw.Schema, SchemaFault)
	}
	return NewSchedule(raw.N, raw.Events)
}

// Semantics selects the register-semantics axis of a Plan.
type Semantics uint8

const (
	// SemAtomic keeps every read linearizable (the paper's model).
	SemAtomic Semantics = iota + 1
	// SemRegular lets reads overlapping a write return the previous
	// value (depth-1 staleness) and scans observe depth-1-stale
	// components.
	SemRegular
	// SemSafe lets reads overlapping a write return any recorded stale
	// value or the null value, and scans observe deeper staleness.
	SemSafe
)

// String returns the axis name used in flags and tables.
func (s Semantics) String() string {
	switch s {
	case SemAtomic:
		return "atomic"
	case SemRegular:
		return "regular"
	case SemSafe:
		return "safe"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// SemanticsByName parses a Semantics from its String form.
func SemanticsByName(name string) (Semantics, bool) {
	for _, s := range []Semantics{SemAtomic, SemRegular, SemSafe} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// ProcFault selects the process-fault axis of a Plan.
type ProcFault uint8

const (
	// ProcNone injects no process faults.
	ProcNone ProcFault = iota + 1
	// ProcStutter injects Stutter events.
	ProcStutter
	// ProcStall injects Stall events.
	ProcStall
	// ProcCrashRecover injects CrashRecover events.
	ProcCrashRecover
)

// String returns the axis name used in flags and tables.
func (p ProcFault) String() string {
	switch p {
	case ProcNone:
		return "none"
	case ProcStutter:
		return "stutter"
	case ProcStall:
		return "stall"
	case ProcCrashRecover:
		return "crash-recovery"
	default:
		return fmt.Sprintf("ProcFault(%d)", int(p))
	}
}

// ProcFaultByName parses a ProcFault from its String form.
func ProcFaultByName(name string) (ProcFault, bool) {
	for _, p := range []ProcFault{ProcNone, ProcStutter, ProcStall, ProcCrashRecover} {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Plan generates a random fault schedule for one matrix cell,
// deterministic in Seed. The zero value of every knob picks a default
// sized for the repository's consensus trials.
type Plan struct {
	// N is the process count (required).
	N int
	// Seed drives every random choice.
	Seed uint64
	// Semantics is the register-semantics axis (default SemAtomic).
	Semantics Semantics
	// Proc is the process-fault axis (default ProcNone).
	Proc ProcFault
	// SlotHorizon bounds the slots at which process faults fire
	// (default 2048).
	SlotHorizon int64
	// OpHorizon bounds the per-process operation index at which
	// semantic faults fire (default 128).
	OpHorizon int64
	// ProcEvents is the number of process-fault events (default
	// max(1, N/2)).
	ProcEvents int
	// ReadEvents is the number of semantic fault events (default 2*N).
	ReadEvents int
	// MaxArg bounds stutter/stall lengths and safe-mode staleness
	// depths (default 8).
	MaxArg int64
}

func (p Plan) withDefaults() Plan {
	if p.Semantics == 0 {
		p.Semantics = SemAtomic
	}
	if p.Proc == 0 {
		p.Proc = ProcNone
	}
	if p.SlotHorizon <= 0 {
		p.SlotHorizon = 2048
	}
	if p.OpHorizon <= 0 {
		p.OpHorizon = 128
	}
	if p.ProcEvents <= 0 {
		p.ProcEvents = max(1, p.N/2)
	}
	if p.ReadEvents <= 0 {
		p.ReadEvents = 2 * p.N
	}
	if p.MaxArg <= 0 {
		p.MaxArg = 8
	}
	return p
}

// Generate materializes the plan into an explicit schedule. Both axes
// draw from disjoint forks of Seed, so changing one axis does not
// reshuffle the other's events.
func (p Plan) Generate() (*Schedule, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("fault: Plan.N must be positive, got %d", p.N)
	}
	p = p.withDefaults()
	var events []Event

	if p.Proc != ProcNone {
		rng := xrand.New(p.Seed).ForkNamed(0x9c0c)
		kind := map[ProcFault]Kind{ProcStutter: Stutter, ProcStall: Stall, ProcCrashRecover: CrashRecover}[p.Proc]
		for i := 0; i < p.ProcEvents; i++ {
			e := Event{
				Kind: kind,
				Pid:  rng.Intn(p.N),
				Slot: int64(rng.Uint64n(uint64(p.SlotHorizon))),
			}
			if kind != CrashRecover {
				e.Arg = 1 + int64(rng.Uint64n(uint64(p.MaxArg)))
			}
			events = append(events, e)
		}
	}

	if p.Semantics != SemAtomic {
		rng := xrand.New(p.Seed).ForkNamed(0x5afe)
		for i := 0; i < p.ReadEvents; i++ {
			e := Event{
				Pid: rng.Intn(p.N),
				Op:  int64(rng.Uint64n(uint64(p.OpHorizon))),
			}
			// One in four semantic events weakens a scan; the rest
			// weaken plain reads.
			if rng.Intn(4) == 0 {
				e.Kind = StaleScan
				e.Arg = 1
				if p.Semantics == SemSafe {
					e.Arg = 1 + int64(rng.Uint64n(uint64(p.MaxArg)))
				}
			} else {
				e.Kind = StaleRead
				e.Arg = 1
				if p.Semantics == SemSafe {
					// Depth 0 is the safe-register null result.
					e.Arg = int64(rng.Uint64n(uint64(p.MaxArg + 1)))
				}
			}
			events = append(events, e)
		}
	}

	return NewSchedule(p.N, events)
}
