package fault

// Shrink reduces a failing fault schedule to a smaller one that still
// fails, in the delta-debugging style: repro must return true when the
// violation reproduces under the candidate schedule. The search first
// deletes event chunks (halves, then quarters, down to single events,
// repeating at granularity one until a fixed point), then minimizes the
// surviving events' magnitudes (stutter/stall lengths and staleness
// depths) by halving toward their floors. Event clocks (Slot, Op) are
// left untouched: moving a fault in time changes which execution it
// perturbs, which is not a reduction.
//
// budget caps the number of repro invocations; when it runs out the
// best schedule found so far is returned. Shrink never returns nil for
// a non-nil input and the result always still satisfies repro (the
// input itself is assumed to).
//
// The search is deterministic: same input schedule, same repro
// behavior, same result — so a shrunk artifact is as replayable as the
// schedule it came from.
func Shrink(s *Schedule, budget int, repro func(*Schedule) bool) *Schedule {
	if s == nil || s.Len() == 0 {
		return s
	}
	n := s.n
	cur := s.Events()
	best := s
	calls := 0
	try := func(events []Event) *Schedule {
		if calls >= budget {
			return nil
		}
		calls++
		cand, err := NewSchedule(n, events)
		if err != nil || !repro(cand) {
			return nil
		}
		return cand
	}

	// Phase 1: chunk deletion.
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		reduced := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if sc := try(cand); sc != nil {
				cur, best = sc.Events(), sc
				reduced = true
				// Keep start in place: the next chunk slid into it.
			} else {
				start = end
			}
		}
		if calls >= budget {
			return best
		}
		if chunk == 1 {
			if !reduced {
				break
			}
			// Single-event deletions still landing: go around again.
			continue
		}
		chunk /= 2
	}

	// Phase 2: magnitude minimization. Stutter/stall lengths and
	// stale-scan depths floor at 1; stale-read depths floor at 0 (the
	// null read).
	for i := 0; i < len(cur); i++ {
		floor := int64(1)
		if cur[i].Kind == StaleRead {
			floor = 0
		}
		for cur[i].Arg > floor {
			cand := append([]Event(nil), cur...)
			next := cand[i].Arg / 2
			if next < floor {
				next = floor
			}
			cand[i].Arg = next
			sc := try(cand)
			if sc == nil {
				break
			}
			// NewSchedule re-sorts, but only Arg changed and Arg is the
			// final sort key, so index i still addresses the same event.
			cur, best = sc.Events(), sc
		}
		if calls >= budget {
			break
		}
	}
	return best
}
