package fault

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/linearize"
	"github.com/oblivious-consensus/conciliator/internal/memory"
)

// Violation is one safety-monitor firing. Monitor names are stable
// strings used in reports and repro artifacts:
//
//	agreement        two finished processes decided different values
//	validity         a decided value was nobody's input
//	ac-coherence     an adopt-commit phase with a commit returned a
//	                 different value to someone
//	ac-validity      an adopt-commit returned a value nobody proposed
//	                 to it
//	ac-convergence   an adopt-commit adopted although all proposals
//	                 were equal (equivalently: adopt without conflict)
//	maxreg-monotonic a max register ran backwards
//	nontermination   the slot budget fired
//	panic            a process body panicked
type Violation struct {
	Monitor string `json:"monitor"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string { return v.Monitor + ": " + v.Detail }

// acObs is one completed adopt-commit Propose.
type acObs struct {
	pid    int
	in     int
	out    int
	commit bool
}

// acPhase accumulates one adopt-commit phase's observations. proposed
// holds every STARTED proposal's value, obs only completed Proposes: a
// crash-recovery fault can abort a Propose whose value already reached
// shared state, and such a value legitimately raises conflicts and can
// be returned to others — so convergence and validity must be judged
// against the started set, while coherence (all commits equal) needs
// only completions.
type acPhase struct {
	proposed map[int]bool
	obs      []acObs
}

// Monitor checks the paper's safety properties over one consensus trial:
// final agreement and validity, plus per-phase adopt-commit coherence,
// validity, and convergence from the Propose observations an
// adoptcommit.Checked wrapper feeds it. It is deliberately property-
// based, not implementation-based: the same checks apply whether the
// run was atomic or faulted, which is what makes the fault sweep an
// oracle rather than a tautology.
//
// A Monitor serves one controlled run; the engine's sequentiality means
// no locking is needed.
type Monitor struct {
	phases     []*acPhase
	violations []Violation
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

func (m *Monitor) phase(k int) *acPhase {
	for len(m.phases) <= k {
		m.phases = append(m.phases, &acPhase{proposed: make(map[int]bool)})
	}
	return m.phases[k]
}

// ObserveACPropose records a STARTED adopt-commit Propose at the given
// phase — wire it from the Completed=false observations of
// adoptcommit.NewChecked. Under crash-recovery faults some of these
// never complete, yet their values still count as proposed.
func (m *Monitor) ObserveACPropose(phase, pid, in int) {
	m.phase(phase).proposed[in] = true
}

// ObserveAC records one completed adopt-commit Propose at the given
// phase; wire it through adoptcommit.NewChecked. The input is also
// added to the phase's proposed set, so a monitor fed only completions
// degrades gracefully rather than misjudging validity.
func (m *Monitor) ObserveAC(phase, pid, in, out int, commit bool) {
	ph := m.phase(phase)
	ph.proposed[in] = true
	ph.obs = append(ph.obs, acObs{pid: pid, in: in, out: out, commit: commit})
}

// Report appends a violation directly; used by the trial harness for
// the nontermination and panic monitors.
func (m *Monitor) Report(monitor, format string, args ...any) {
	m.violations = append(m.violations, Violation{Monitor: monitor, Detail: fmt.Sprintf(format, args...)})
}

// CheckOutcome checks final agreement (all finished processes decided
// the same value) and validity (the decision is some process's input).
// inputs[i] is process i's consensus input, outs[i] its decision, and
// finished[i] whether it decided.
func (m *Monitor) CheckOutcome(inputs, outs []int, finished []bool) {
	valid := make(map[int]bool, len(inputs))
	for _, in := range inputs {
		valid[in] = true
	}
	first := -1
	for i := range outs {
		if !finished[i] {
			continue
		}
		if !valid[outs[i]] {
			m.Report("validity", "process %d decided %d, which no process proposed", i, outs[i])
		}
		if first < 0 {
			first = i
			continue
		}
		if outs[i] != outs[first] {
			m.Report("agreement", "process %d decided %d but process %d decided %d", first, outs[first], i, outs[i])
		}
	}
}

// Finish runs the per-phase adopt-commit checks and returns every
// violation the monitor accumulated.
func (m *Monitor) Finish() []Violation {
	for phase, ph := range m.phases {
		obs := ph.obs
		if len(obs) == 0 {
			continue
		}
		proposed := ph.proposed
		committed := false
		var commitVal int
		for _, o := range obs {
			if !o.commit {
				continue
			}
			if committed && o.out != commitVal {
				m.Report("ac-coherence", "phase %d: commits of both %d and %d", phase, commitVal, o.out)
			}
			committed, commitVal = true, o.out
		}
		for _, o := range obs {
			if !proposed[o.out] {
				m.Report("ac-validity", "phase %d: process %d got back %d, which nobody proposed", phase, o.pid, o.out)
			}
			if committed && o.out != commitVal {
				m.Report("ac-coherence", "phase %d: %d committed but process %d got %d", phase, commitVal, o.pid, o.out)
			}
			if !o.commit && len(proposed) == 1 {
				m.Report("ac-convergence", "phase %d: all proposals were %d yet process %d adopted", phase, o.in, o.pid)
			}
		}
	}
	return m.violations
}

// Violations returns what has been reported so far without running the
// Finish checks.
func (m *Monitor) Violations() []Violation { return m.violations }

// pidOf extracts the calling process id from a Context that carries one
// (the simulator's process handle does).
func pidOf(ctx memory.Context) int {
	if p, ok := ctx.(interface{ ID() int }); ok {
		return p.ID()
	}
	return 0
}

// MonitoredMaxer wraps a memory.Maxer with the max-register
// monotonicity monitor. The first monitorHistoryLimit operations are
// recorded into a linearize history and checked against
// MaxRegisterSemantics at Finish; beyond the window (and alongside it)
// two online invariants valid for any linearizable max register are
// enforced per operation:
//
//   - a read returns a key at least as large as every write that
//     completed before the read began, and
//   - one process's successive reads never decrease.
//
// Keys must fit in int64.
type MonitoredMaxer[T any] struct {
	inner memory.Maxer[T]
	mon   *Monitor
	rec   linearize.Recorder

	maxDone  uint64 // largest key of a completed WriteMax
	anyDone  bool
	lastRead map[int]uint64
}

// monitorHistoryLimit keeps recorded histories inside linearize.Check's
// 64-op window.
const monitorHistoryLimit = 64

var _ memory.Maxer[int] = (*MonitoredMaxer[int])(nil)

// NewMonitoredMaxer wraps inner, reporting violations into mon.
func NewMonitoredMaxer[T any](inner memory.Maxer[T], mon *Monitor) *MonitoredMaxer[T] {
	m := &MonitoredMaxer[T]{inner: inner, mon: mon, lastRead: make(map[int]uint64)}
	m.rec.SetLimit(monitorHistoryLimit)
	return m
}

// WriteMax implements memory.Maxer.
func (m *MonitoredMaxer[T]) WriteMax(ctx memory.Context, key uint64, payload T) {
	start := m.rec.Begin()
	m.inner.WriteMax(ctx, key, payload)
	m.rec.EndWrite(pidOf(ctx), int64(key), start)
	if !m.anyDone || key > m.maxDone {
		m.maxDone, m.anyDone = key, true
	}
}

// ReadMax implements memory.Maxer.
func (m *MonitoredMaxer[T]) ReadMax(ctx memory.Context) (uint64, T, bool) {
	// Writes completed before the read begins are a lower bound on any
	// linearizable read's result; writes overlapping the read are not.
	floorSet, floor := m.anyDone, m.maxDone
	start := m.rec.Begin()
	k, payload, ok := m.inner.ReadMax(ctx)
	var out int64
	if ok {
		out = int64(k)
	}
	m.rec.EndRead(pidOf(ctx), out, ok, start)

	pid := pidOf(ctx)
	if floorSet && (!ok || k < floor) {
		m.mon.Report("maxreg-monotonic",
			"process %d read max %d (ok=%v) after a write of %d completed", pid, k, ok, floor)
	}
	if last, seen := m.lastRead[pid]; seen && ok && k < last {
		m.mon.Report("maxreg-monotonic",
			"process %d read max %d after previously reading %d", pid, k, last)
	}
	if ok {
		m.lastRead[pid] = k
	}
	return k, payload, ok
}

// Finish runs the linearizability check over the recorded window (only
// when nothing was dropped — a truncated history could cite a write the
// checker never sees) and reports a violation if no witness
// linearization exists.
func (m *MonitoredMaxer[T]) Finish() {
	if m.rec.Dropped() > 0 {
		return
	}
	hist := m.rec.History()
	ok, err := linearize.Check(linearize.MaxRegisterSemantics{}, hist)
	if err != nil {
		m.mon.Report("maxreg-monotonic", "linearize check failed to run: %v", err)
		return
	}
	if !ok {
		m.mon.Report("maxreg-monotonic", "max-register history of %d ops has no linearization", len(hist))
	}
}
