package fault

import "testing"

func mustSchedule(t *testing.T, n int, events []Event) *Schedule {
	t.Helper()
	s, err := NewSchedule(n, events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewInjectorValidates(t *testing.T) {
	s := mustSchedule(t, 4, []Event{{Kind: Stutter, Pid: 3, Slot: 1, Arg: 1}})
	if _, err := NewInjector(s, 4); err != nil {
		t.Fatal(err)
	}
	// A schedule for 4 processes cannot drive a 2-process run: pid 3 has no
	// target.
	if _, err := NewInjector(s, 2); err == nil {
		t.Error("injector accepted process-count mismatch")
	}
}

func TestInjectorStutterAndStall(t *testing.T) {
	s := mustSchedule(t, 2, []Event{
		{Kind: Stutter, Pid: 0, Slot: 2, Arg: 2},
		{Kind: Stall, Pid: 1, Slot: 4, Arg: 3},
	})
	inj, err := NewInjector(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Before the stutter's slot nothing is wasted.
	inj.Advance(1)
	if inj.Wasted(0, 0) || inj.Wasted(1, 0) {
		t.Fatal("fault fired before its slot")
	}
	// From slot 2 the next two of pid 0's slots are wasted, then it runs.
	inj.Advance(2)
	if !inj.Wasted(0, 1) || !inj.Wasted(0, 2) {
		t.Fatal("stutter did not waste 2 slots")
	}
	if inj.Wasted(0, 3) {
		t.Fatal("stutter overshot its length")
	}
	// The stall starves pid 1 for slots in [4, 4+3) by the slot clock and
	// does not decrement with use.
	inj.Advance(4)
	for slot := int64(4); slot < 7; slot++ {
		if !inj.Wasted(1, slot) {
			t.Fatalf("stall did not waste slot %d", slot)
		}
	}
	if inj.Wasted(1, 7) {
		t.Fatal("stall outlived its window")
	}
	c := inj.Counts()
	if c.StutterSlots != 2 || c.StallSlots != 3 {
		t.Errorf("counts = %+v", c)
	}
}

func TestInjectorRestartQueue(t *testing.T) {
	s := mustSchedule(t, 3, []Event{
		{Kind: CrashRecover, Pid: 2, Slot: 5},
		{Kind: CrashRecover, Pid: 0, Slot: 5},
		{Kind: CrashRecover, Pid: 1, Slot: 9},
	})
	inj, err := NewInjector(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.TakeRestart(); ok {
		t.Fatal("restart before its slot")
	}
	inj.Advance(5)
	// Normalized order: same slot sorts by pid.
	if pid, ok := inj.TakeRestart(); !ok || pid != 0 {
		t.Fatalf("first restart = %d, %v", pid, ok)
	}
	if pid, ok := inj.TakeRestart(); !ok || pid != 2 {
		t.Fatalf("second restart = %d, %v", pid, ok)
	}
	if _, ok := inj.TakeRestart(); ok {
		t.Fatal("spurious third restart")
	}
	inj.Advance(20) // delivery is catch-up, not exact-match
	if pid, ok := inj.TakeRestart(); !ok || pid != 1 {
		t.Fatalf("late restart = %d, %v", pid, ok)
	}
	if got := inj.Counts().Restarts; got != 3 {
		t.Errorf("restart count = %d", got)
	}
}

func TestInjectorStaleRead(t *testing.T) {
	s := mustSchedule(t, 2, []Event{
		{Kind: StaleRead, Pid: 0, Op: 2, Arg: 1}, // depth 1: previous value
		{Kind: StaleRead, Pid: 0, Op: 3, Arg: 0}, // depth 0: null read
		{Kind: StaleRead, Pid: 1, Op: 0, Arg: 5}, // deeper than history: null
	})
	inj, err := NewInjector(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := "reg"
	inj.OnWrite(key, 10)
	inj.OnWrite(key, 20)

	// Ops 0 and 1 of pid 0 are clean.
	for op := 0; op < 2; op++ {
		if _, hit := inj.ReadFault(0, key); hit {
			t.Fatalf("op %d faulted early", op)
		}
	}
	// Op 2 returns the previous value.
	if v, hit := inj.ReadFault(0, key); !hit || v.(int) != 10 {
		t.Fatalf("op 2 = %v, %v; want 10, true", v, hit)
	}
	// Op 3 is the null read.
	if v, hit := inj.ReadFault(0, key); !hit || v != nil {
		t.Fatalf("op 3 = %v, %v; want nil, true", v, hit)
	}
	// Depth beyond recorded history degrades to the null read (legal for a
	// safe register).
	if v, hit := inj.ReadFault(1, key); !hit || v != nil {
		t.Fatalf("deep read = %v, %v; want nil, true", v, hit)
	}
	// Per-process op counters are independent: pid 1's counter is past its
	// event, pid 0 has no more events.
	if _, hit := inj.ReadFault(0, key); hit {
		t.Fatal("pid 0 faulted past its events")
	}
	c := inj.Counts()
	if c.StaleReads != 3 {
		t.Errorf("stale read count = %d", c.StaleReads)
	}
}

func TestInjectorScanDepthAndStaleAt(t *testing.T) {
	s := mustSchedule(t, 1, []Event{
		{Kind: StaleScan, Pid: 0, Op: 1, Arg: 2},
	})
	inj, err := NewInjector(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	obj := "snap"
	type comp struct{ i int }
	k0 := comp{0}
	inj.OnWrite(k0, "a")
	inj.OnWrite(k0, "b")
	inj.OnWrite(k0, "c")

	if d := inj.ScanDepth(0, obj); d != 0 {
		t.Fatalf("scan op 0 depth = %d", d)
	}
	if d := inj.ScanDepth(0, obj); d != 2 {
		t.Fatalf("scan op 1 depth = %d", d)
	}
	// StaleAt walks the per-key write history backwards.
	if v, ok := inj.StaleAt(k0, 1); !ok || v.(string) != "b" {
		t.Errorf("StaleAt depth 1 = %v, %v", v, ok)
	}
	if v, ok := inj.StaleAt(k0, 2); !ok || v.(string) != "a" {
		t.Errorf("StaleAt depth 2 = %v, %v", v, ok)
	}
	// A component never written, or depth past its history, reads null.
	if _, ok := inj.StaleAt(comp{9}, 1); ok {
		t.Error("StaleAt on unwritten key hit")
	}
	if _, ok := inj.StaleAt(k0, 3); ok {
		t.Error("StaleAt beyond history hit")
	}
	if c := inj.Counts(); c.StaleScans != 1 {
		t.Errorf("stale scan count = %d", c.StaleScans)
	}
}

func TestRingEviction(t *testing.T) {
	// Values older than the ring capacity are evicted and read as null;
	// values within it are exact.
	var r ring
	for i := 0; i < histCap+10; i++ {
		r.push(i)
	}
	if v, ok := r.staleAt(1); !ok || v.(int) != histCap+8 {
		t.Errorf("staleAt(1) = %v, %v", v, ok)
	}
	if v, ok := r.staleAt(int64(histCap) - 1); !ok || v.(int) != 10 {
		t.Errorf("staleAt(cap-1) = %v, %v", v, ok)
	}
	if _, ok := r.staleAt(int64(histCap)); ok {
		t.Error("staleAt(cap) should be evicted")
	}
	var nilRing *ring
	if _, ok := nilRing.staleAt(1); ok {
		t.Error("nil ring hit")
	}
}
