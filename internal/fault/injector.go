package fault

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/metrics"
)

// Injector-side metrics: how many faults of each family actually fired.
// Nil (free no-ops) until a metrics registry is installed.
var (
	mStutterSlots *metrics.Counter
	mStallSlots   *metrics.Counter
	mRestarts     *metrics.Counter
	mStaleReads   *metrics.Counter
	mStaleScans   *metrics.Counter
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mStutterSlots = r.Counter("fault.injected.stutter_slots")
		mStallSlots = r.Counter("fault.injected.stall_slots")
		mRestarts = r.Counter("fault.injected.restarts")
		mStaleReads = r.Counter("fault.injected.stale_reads")
		mStaleScans = r.Counter("fault.injected.stale_scans")
	})
}

// Counts reports how many faults an injector actually delivered during
// one run. Events whose clocks were never reached (slot past the run's
// end, op index past the process's last read) do not count.
type Counts struct {
	StutterSlots int64 `json:"stutter_slots"`
	StallSlots   int64 `json:"stall_slots"`
	Restarts     int64 `json:"restarts"`
	StaleReads   int64 `json:"stale_reads"`
	StaleScans   int64 `json:"stale_scans"`
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.StutterSlots += other.StutterSlots
	c.StallSlots += other.StallSlots
	c.Restarts += other.Restarts
	c.StaleReads += other.StaleReads
	c.StaleScans += other.StaleScans
}

// Total returns the number of delivered faults across all families.
func (c Counts) Total() int64 {
	return c.StutterSlots + c.StallSlots + c.Restarts + c.StaleReads + c.StaleScans
}

// histCap bounds the per-object write history the injector retains for
// stale reads. A safe read whose staleness depth reaches past the ring
// observes the null value, which is within a safe register's contract.
const histCap = 64

// ring is a bounded write history for one shared object (or one snapshot
// component): the last histCap recorded values plus the total count, so
// "d writes ago" is answerable without unbounded memory.
type ring struct {
	vals  [histCap]any
	total int64
}

func (h *ring) push(v any) {
	h.vals[h.total%histCap] = v
	h.total++
}

// staleAt returns the value d writes before the latest (d=1 is the value
// the latest write replaced). It reports false — "unwritten" — when the
// object had fewer writes than d+1 or the ring has evicted that far back.
func (h *ring) staleAt(d int64) (any, bool) {
	if h == nil || d <= 0 {
		return nil, false
	}
	idx := h.total - 1 - d
	if idx < 0 || idx < h.total-histCap {
		return nil, false
	}
	return h.vals[idx%histCap], true
}

// procState is the injector's per-process bookkeeping.
type procState struct {
	stutter    int64 // granted slots still to waste
	stallUntil int64 // slots before this index are starved

	readEvents []Event // StaleRead events, sorted by Op
	readCur    int
	readOps    int64 // read-class operations performed so far

	scanEvents []Event // StaleScan events, sorted by Op
	scanCur    int
	scanOps    int64 // scan operations performed so far
}

// Injector interprets one fault Schedule over one controlled run. The
// simulator driver consults it at every slot (Advance, TakeRestart,
// Wasted) and the memory substrate consults it on every read-class
// operation through the memory.Faulter capability. It is single-run,
// single-goroutine state: the controlled engine runs one process at a
// time, which is the only mode faults support.
type Injector struct {
	n int

	slotEvents []Event // process faults, sorted by Slot
	slotCur    int
	restarts   []int // pids with a pending crash-recovery, FIFO

	procs  []procState
	hist   map[any]*ring
	counts Counts
}

// NewInjector builds an injector for schedule s over n processes,
// refusing schedules that are invalid or sized for a different n.
func NewInjector(s *Schedule, n int) (*Injector, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.n != n {
		return nil, fmt.Errorf("fault: schedule targets %d processes, run has %d", s.n, n)
	}
	inj := &Injector{
		n:     n,
		procs: make([]procState, n),
		hist:  make(map[any]*ring),
	}
	for _, e := range s.events {
		switch e.Kind {
		case Stutter, Stall, CrashRecover:
			inj.slotEvents = append(inj.slotEvents, e)
		case StaleRead:
			ps := &inj.procs[e.Pid]
			ps.readEvents = append(ps.readEvents, e)
		case StaleScan:
			ps := &inj.procs[e.Pid]
			ps.scanEvents = append(ps.scanEvents, e)
		}
	}
	// Schedule normalization already ordered slot events by Slot and
	// per-pid op events by Op, and appending preserved those orders.
	return inj, nil
}

// Advance delivers every process fault whose slot clock has been
// reached. The driver calls it once per slot, before drawing a pid.
func (inj *Injector) Advance(slot int64) {
	for inj.slotCur < len(inj.slotEvents) && inj.slotEvents[inj.slotCur].Slot <= slot {
		e := inj.slotEvents[inj.slotCur]
		inj.slotCur++
		switch e.Kind {
		case Stutter:
			inj.procs[e.Pid].stutter += e.Arg
		case Stall:
			if until := e.Slot + e.Arg; until > inj.procs[e.Pid].stallUntil {
				inj.procs[e.Pid].stallUntil = until
			}
		case CrashRecover:
			inj.restarts = append(inj.restarts, e.Pid)
		}
	}
}

// TakeRestart pops the next pending crash-recovery target, if any. The
// driver restarts that process with amnesia before running the slot.
func (inj *Injector) TakeRestart() (int, bool) {
	if len(inj.restarts) == 0 {
		return 0, false
	}
	pid := inj.restarts[0]
	inj.restarts = inj.restarts[1:]
	inj.counts.Restarts++
	mRestarts.Inc()
	return pid, true
}

// Wasted reports whether the slot granted to pid is consumed by a
// stutter or stall: the slot is spent (it counts against the budget and
// the adversary's schedule) but the process does not run.
func (inj *Injector) Wasted(pid int, slot int64) bool {
	ps := &inj.procs[pid]
	if slot < ps.stallUntil {
		inj.counts.StallSlots++
		mStallSlots.Inc()
		return true
	}
	if ps.stutter > 0 {
		ps.stutter--
		inj.counts.StutterSlots++
		mStutterSlots.Inc()
		return true
	}
	return false
}

// OnWrite records v as the newest value of the shared object (or
// snapshot component) identified by key. Stale reads are answered from
// this history.
func (inj *Injector) OnWrite(key any, v any) {
	h := inj.hist[key]
	if h == nil {
		h = &ring{}
		inj.hist[key] = h
	}
	h.push(v)
}

// ReadFault counts one read-class operation by pid and, if a StaleRead
// event fires at this operation index, returns the substitute result:
// hit=false reads normally; hit=true with stale==nil observes "never
// written"; otherwise stale is the value the event's depth selects from
// the object's history.
func (inj *Injector) ReadFault(pid int, key any) (stale any, hit bool) {
	ps := &inj.procs[pid]
	op := ps.readOps
	ps.readOps++
	for ps.readCur < len(ps.readEvents) && ps.readEvents[ps.readCur].Op < op {
		ps.readCur++
	}
	if ps.readCur == len(ps.readEvents) || ps.readEvents[ps.readCur].Op != op {
		return nil, false
	}
	e := ps.readEvents[ps.readCur]
	ps.readCur++
	inj.counts.StaleReads++
	mStaleReads.Inc()
	if e.Arg == 0 {
		// Depth 0 is the safe-register null result.
		return nil, true
	}
	v, ok := inj.hist[key].staleAt(e.Arg)
	if !ok {
		return nil, true
	}
	return v, true
}

// ScanDepth counts one scan operation by pid and returns the staleness
// depth a StaleScan event imposes on it, or 0 for an atomic scan.
func (inj *Injector) ScanDepth(pid int, obj any) int {
	ps := &inj.procs[pid]
	op := ps.scanOps
	ps.scanOps++
	for ps.scanCur < len(ps.scanEvents) && ps.scanEvents[ps.scanCur].Op < op {
		ps.scanCur++
	}
	if ps.scanCur == len(ps.scanEvents) || ps.scanEvents[ps.scanCur].Op != op {
		return 0
	}
	e := ps.scanEvents[ps.scanCur]
	ps.scanCur++
	inj.counts.StaleScans++
	mStaleScans.Inc()
	return int(e.Arg)
}

// StaleAt answers "the value depth writes back" for the object or
// component identified by key; ok=false means unwritten at that depth.
func (inj *Injector) StaleAt(key any, depth int) (any, bool) {
	return inj.hist[key].staleAt(int64(depth))
}

// Counts returns the faults delivered so far.
func (inj *Injector) Counts() Counts { return inj.counts }
