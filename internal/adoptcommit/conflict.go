package adoptcommit

import (
	"fmt"
	"hash/fnv"

	"github.com/oblivious-consensus/conciliator/internal/memory"
)

// ConflictDetector is the building block of register-based adopt-commit:
// each process calls Check once with its value. Check returns true ("no
// conflict") subject to:
//
//   - If every Check has the same input, every Check returns true.
//   - No two Checks with different inputs both return true, regardless of
//     interleaving.
//
// The second property is the load-bearing one: it makes the value written
// to an adopt-commit object's clean register unique.
type ConflictDetector[V comparable] interface {
	Check(ctx memory.Context, v V) bool
	// StepBound bounds the steps of one Check.
	StepBound() int
}

// FlagsCD is a k-valued single-digit conflict detector over values encoded
// as indices in [0, k): write your own flag, then read the other k-1. If
// any other flag is set, report conflict. Correctness of the asymmetric
// case: if p ok'd value a and q ok'd value b != a, then p wrote flag[a]
// before reading flag[b] clear, so q wrote flag[b] after p's read, hence
// q's read of flag[a] came after p's write and saw it — contradiction.
//
// Cost is k steps, so FlagsCD alone is only sensible for tiny k; DigitCD
// composes binary FlagsCDs for larger domains.
type FlagsCD struct {
	flags *memory.RegisterArray[struct{}]
}

var _ ConflictDetector[int] = (*FlagsCD)(nil)

// NewFlagsCD returns a conflict detector over values 0..k-1.
func NewFlagsCD(k int) *FlagsCD {
	if k < 2 {
		panic("adoptcommit: FlagsCD needs at least two values")
	}
	return &FlagsCD{flags: memory.NewRegisterArray[struct{}](k)}
}

// Check implements ConflictDetector. v must be in [0, k).
func (c *FlagsCD) Check(ctx memory.Context, v int) bool {
	c.flags.At(v).Write(ctx, struct{}{})
	ok := true
	for i := 0; i < c.flags.Len(); i++ {
		if i == v {
			continue
		}
		if _, set := c.flags.At(i).Read(ctx); set {
			// Keep reading: steps are bounded either way and finishing
			// the collect keeps Check's cost schedule-independent.
			ok = false
		}
	}
	return ok
}

// StepBound implements ConflictDetector.
func (c *FlagsCD) StepBound() int { return c.flags.Len() }

// Encoder injectively maps protocol values to fixed-width bit strings for
// digit decomposition. Injectivity on the values actually proposed is
// required for correctness.
type Encoder[V comparable] struct {
	// Bits is the encoding width; Encode must return values < 2^Bits.
	Bits int
	// Encode maps a value to its code.
	Encode func(V) uint64
}

// IdentityEncoder encodes small non-negative integers as themselves using
// the given width.
func IdentityEncoder(bits int) Encoder[int] {
	return Encoder[int]{Bits: bits, Encode: func(v int) uint64 { return uint64(v) }}
}

// HashEncoder encodes arbitrary values through their fmt representation
// and 64-bit FNV-1a. It is injective only with overwhelming probability
// (collision probability about 2^-64 per pair), which is a documented
// simulation-grade substitution for enumerating the value universe.
func HashEncoder[V comparable]() Encoder[V] {
	return Encoder[V]{
		Bits: 64,
		Encode: func(v V) uint64 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%v", v)
			return h.Sum64()
		},
	}
}

// DigitCD decomposes values into binary digits and runs one two-flag
// FlagsCD per digit: two different values differ in at least one digit,
// and that digit's detector catches them. Cost is 2*Bits steps, i.e.
// O(log m) for an m-value universe — the classical bound this repository
// substitutes for the Aspnes–Ellen O(log m / log log m) object (see
// DESIGN.md).
type DigitCD[V comparable] struct {
	enc    Encoder[V]
	digits []*FlagsCD
}

var _ ConflictDetector[string] = (*DigitCD[string])(nil)

// NewDigitCD returns a digit-decomposed conflict detector for the encoded
// domain.
func NewDigitCD[V comparable](enc Encoder[V]) *DigitCD[V] {
	if enc.Bits < 1 || enc.Bits > 64 {
		panic("adoptcommit: encoder bits out of range [1, 64]")
	}
	d := &DigitCD[V]{enc: enc, digits: make([]*FlagsCD, enc.Bits)}
	for i := range d.digits {
		d.digits[i] = NewFlagsCD(2)
	}
	return d
}

// Check implements ConflictDetector.
func (d *DigitCD[V]) Check(ctx memory.Context, v V) bool {
	code := d.enc.Encode(v)
	if d.enc.Bits < 64 && code >= 1<<uint(d.enc.Bits) {
		panic("adoptcommit: encoded value exceeds encoder width")
	}
	ok := true
	for i, digit := range d.digits {
		bit := int((code >> uint(i)) & 1)
		if !digit.Check(ctx, bit) {
			ok = false
		}
	}
	return ok
}

// StepBound implements ConflictDetector.
func (d *DigitCD[V]) StepBound() int { return 2 * d.enc.Bits }
