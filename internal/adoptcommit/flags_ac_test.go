package adoptcommit

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestFlagsACSequential(t *testing.T) {
	obj := NewFlagsAC(3)
	outs := runAC(t, obj, []int{2, 2, 2}, sched.NewRoundRobin(3))
	checkACProperties(t, []int{2, 2, 2}, outs, "flags all same")

	obj2 := NewFlagsAC(3)
	outs2 := runAC(t, obj2, []int{0, 1, 2}, sched.NewRoundRobin(3))
	checkACProperties(t, []int{0, 1, 2}, outs2, "flags distinct")
}

func TestFlagsACExhaustiveTwoProcs(t *testing.T) {
	// k=2: Propose costs CD(2) + 3 = 5 steps.
	for _, inputs := range [][]int{{0, 1}, {1, 1}, {0, 0}} {
		inputs := inputs
		t.Run(fmt.Sprintf("inputs %v", inputs), func(t *testing.T) {
			exhaustive(t, func() Object[int] { return NewFlagsAC(2) }, inputs)
		})
	}
}

func TestFlagsACRandomizedThreeValues(t *testing.T) {
	rng := xrand.New(21)
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(10)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(3)
		}
		obj := NewFlagsAC(3)
		outs := runAC(t, obj, inputs, sched.NewRandom(n, xrand.New(rng.Uint64())))
		checkACProperties(t, inputs, outs, fmt.Sprintf("trial %d", trial))
	}
}

func TestFlagsACStepBound(t *testing.T) {
	for _, k := range []int{2, 5, 16} {
		obj := NewFlagsAC(k)
		if got, want := obj.StepBound(), k+3; got != want {
			t.Errorf("k=%d: StepBound %d, want %d", k, got, want)
		}
		ctx := &countingCtx{}
		obj.Propose(ctx, 0, k-1)
		if ctx.steps > k+3 {
			t.Errorf("k=%d: propose used %d steps", k, ctx.steps)
		}
	}
}
