package adoptcommit

import (
	"errors"
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// TestSnapshotACSafeUnderEveryPrefix model-checks crash safety: for every
// interleaving of two Propose calls AND every prefix of it (the remaining
// steps simply never scheduled — i.e., both processes may crash at any
// point), the outcomes of whichever processes finished must satisfy the
// adopt-commit safety properties. This covers the cases randomized crash
// tests can miss: a committer whose witness crashed mid-operation.
func TestSnapshotACSafeUnderEveryPrefix(t *testing.T) {
	inputsSets := [][]int{{0, 1}, {0, 0}, {1, 0}}
	for _, inputs := range inputsSets {
		inputs := inputs
		t.Run(fmt.Sprintf("inputs %v", inputs), func(t *testing.T) {
			for _, slots := range sched.AllInterleavings([]int{4, 4}) {
				for cut := 0; cut <= len(slots); cut++ {
					prefix := slots[:cut]
					obj := NewSnapshotAC[int](2)
					outs, finished, _, err := sim.Collect(
						sched.NewExplicit(2, prefix),
						sim.Config{AlgSeed: 1},
						func(p *sim.Proc) acOutcome[int] {
							d, v := obj.Propose(p, p.ID(), inputs[p.ID()])
							return acOutcome[int]{dec: d, val: v}
						})
					// Truncated schedules legitimately exhaust with
					// processes unfinished; anything else is a bug.
					if err != nil && !errors.Is(err, sim.ErrScheduleExhausted) {
						t.Fatal(err)
					}
					var done []acOutcome[int]
					var doneInputs []int
					for i, out := range outs {
						if finished[i] {
							done = append(done, out)
							doneInputs = append(doneInputs, inputs[i])
						}
					}
					if len(done) == 0 {
						continue
					}
					// Validity and single-committed-value still apply to
					// the survivors; convergence applies only if every
					// PROPOSED input was the same, which with a crashed
					// partner we cannot assert (its phase-1 write may
					// have landed), so check only safety.
					inputSet := map[int]bool{inputs[0]: true, inputs[1]: true}
					committed := make(map[int]bool)
					for _, o := range done {
						if !inputSet[o.val] {
							t.Fatalf("prefix %v of %v: invalid output %v", prefix, slots, o.val)
						}
						if o.dec == Commit {
							committed[o.val] = true
						}
					}
					if len(committed) > 1 {
						t.Fatalf("prefix %v of %v: two values committed", prefix, slots)
					}
					if len(committed) == 1 {
						for _, o := range done {
							if !committed[o.val] {
								t.Fatalf("prefix %v of %v: coherence violated among survivors", prefix, slots)
							}
						}
					}
				}
			}
		})
	}
}

// TestRegisterACSafeUnderEveryPrefix is the same prefix model check for
// the register-based binary adopt-commit.
func TestRegisterACSafeUnderEveryPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("prefix model check skipped in -short mode")
	}
	inputs := []int{0, 1}
	for _, slots := range sched.AllInterleavings([]int{5, 5}) {
		for cut := 0; cut <= len(slots); cut++ {
			prefix := slots[:cut]
			obj := NewBinaryAC()
			outs, finished, _, err := sim.Collect(
				sched.NewExplicit(2, prefix),
				sim.Config{AlgSeed: 1},
				func(p *sim.Proc) acOutcome[int] {
					d, v := obj.Propose(p, p.ID(), inputs[p.ID()])
					return acOutcome[int]{dec: d, val: v}
				})
			if err != nil && !errors.Is(err, sim.ErrScheduleExhausted) {
				t.Fatal(err)
			}
			committed := make(map[int]bool)
			var done []acOutcome[int]
			for i, out := range outs {
				if finished[i] {
					done = append(done, out)
					if out.dec == Commit {
						committed[out.val] = true
					}
				}
			}
			if len(committed) > 1 {
				t.Fatalf("prefix %v of %v: two values committed", prefix, slots)
			}
			if len(committed) == 1 {
				for _, o := range done {
					if !committed[o.val] {
						t.Fatalf("prefix %v of %v: coherence violated", prefix, slots)
					}
				}
			}
			for _, o := range done {
				if o.val != 0 && o.val != 1 {
					t.Fatalf("prefix %v: invalid output %d", prefix, o.val)
				}
			}
		}
	}
}
