package adoptcommit

import "github.com/oblivious-consensus/conciliator/internal/memory"

// RegisterAC is an adopt-commit object in the plain multi-writer register
// model, built from a conflict detector plus two registers following the
// Aspnes–Ellen modular decomposition (adopt-commit = conflict detector +
// O(1) registers):
//
//	Propose(v):
//	  if CD.Check(v) fails:            // conflict observed
//	      dirty.Write(true)            // announce before looking
//	      if clean register holds w: return (adopt, w)
//	      return (adopt, v)
//	  clean.Write(v)                   // unique: only CD-ok values land here
//	  if dirty set or clean != v: return (adopt, clean)
//	  return (commit, v)
//
// Why coherence holds: the conflict-detector property makes all CD-ok
// values equal, so the clean register only ever contains one value v*. A
// committer wrote clean=v*, then read dirty clear. A conflicting process
// writes dirty before reading clean; if its clean read found nothing, that
// read — and hence its dirty write — preceded the committer's clean write,
// so the committer's later dirty read would have seen the mark and it
// could not have committed. The package tests check this exhaustively
// over all interleavings for small configurations.
type RegisterAC[V comparable] struct {
	cd    ConflictDetector[V]
	clean *memory.Register[V]
	dirty *memory.Register[struct{}]
}

var _ Object[int] = (*RegisterAC[int])(nil)

// NewRegisterAC returns a register-model adopt-commit object built on the
// given conflict detector.
func NewRegisterAC[V comparable](cd ConflictDetector[V]) *RegisterAC[V] {
	return &RegisterAC[V]{
		cd:    cd,
		clean: memory.NewRegister[V](),
		dirty: memory.NewRegister[struct{}](),
	}
}

// NewBinaryAC returns the cheapest register-model adopt-commit object for
// values {0, 1} (cost 5 register steps), used by Algorithm 3's combine
// stage.
func NewBinaryAC() *RegisterAC[int] {
	return NewRegisterAC[int](NewDigitCD(IdentityEncoder(1)))
}

// NewHashAC returns a register-model adopt-commit object for arbitrary
// comparable values via the 64-bit hash encoder.
func NewHashAC[V comparable]() *RegisterAC[V] {
	return NewRegisterAC(NewDigitCD(HashEncoder[V]()))
}

// NewFlagsAC returns a register-model adopt-commit object for values in
// [0, k) using the single-digit k-ary conflict detector: k+3 steps per
// Propose, which beats the binary-digit decomposition only for tiny k.
func NewFlagsAC(k int) *RegisterAC[int] {
	return NewRegisterAC[int](NewFlagsCD(k))
}

// Propose implements Object. pid is ignored: the object is anonymous,
// like the paper's register-model adopt-commit objects.
func (a *RegisterAC[V]) Propose(ctx memory.Context, _ int, v V) (dec Decision, out V) {
	before := proposeStart(mRegPropose, ctx)
	defer func() { meterPropose(mRegPropose, ctx, before, dec) }()
	if !a.cd.Check(ctx, v) {
		a.dirty.Write(ctx, struct{}{})
		if w, ok := a.clean.Read(ctx); ok {
			return Adopt, w
		}
		return Adopt, v
	}
	a.clean.Write(ctx, v)
	_, conflicted := a.dirty.Read(ctx)
	w, _ := a.clean.Read(ctx) // own write guarantees presence
	if conflicted || w != v {
		return Adopt, w
	}
	return Commit, v
}

// StepBound implements Object.
func (a *RegisterAC[V]) StepBound() int { return a.cd.StepBound() + 3 }
