package adoptcommit

import "github.com/oblivious-consensus/conciliator/internal/metrics"

// Per-phase step attribution for adopt-commit objects. All instruments
// are nil (free no-ops) until a metrics registry is installed. Propose
// step costs are measured as deltas of the caller's step counter when
// the memory.Context exposes one (sim.Proc does); outcome counters
// record how often proposals commit versus adopt.
var (
	mRegPropose  *metrics.Histogram // adoptcommit.register.propose_steps
	mSnapPropose *metrics.Histogram // adoptcommit.snapshot.propose_steps
	mCommits     *metrics.Counter   // adoptcommit.commit
	mAdopts      *metrics.Counter   // adoptcommit.adopt
)

func init() {
	metrics.OnEnable(func(r *metrics.Registry) {
		mRegPropose = r.Histogram("adoptcommit.register.propose_steps")
		mSnapPropose = r.Histogram("adoptcommit.snapshot.propose_steps")
		mCommits = r.Counter("adoptcommit.commit")
		mAdopts = r.Counter("adoptcommit.adopt")
	})
}

// stepper is satisfied by contexts that count their own steps
// (sim.Proc); memory.Free does not, and such calls skip the step
// histograms.
type stepper interface{ Steps() int64 }

// meterPropose records the decision outcome and, when the context
// counts steps, the phase's step cost.
func meterPropose(h *metrics.Histogram, ctx any, before int64, dec Decision) {
	if dec == Commit {
		mCommits.Inc()
	} else {
		mAdopts.Inc()
	}
	if h == nil {
		return
	}
	if s, ok := ctx.(stepper); ok {
		h.Observe(s.Steps() - before)
	}
}

// proposeStart captures the caller's step counter when metering is on.
func proposeStart(h *metrics.Histogram, ctx any) int64 {
	if h == nil {
		return 0
	}
	if s, ok := ctx.(stepper); ok {
		return s.Steps()
	}
	return 0
}
