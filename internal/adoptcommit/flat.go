package adoptcommit

// This file compiles the two adopt-commit objects used by the flat
// consensus machine (internal/consensus) to dense step-function cores:
// the object's shared state lives in small flat structs, and each
// process's progress through one Propose is an explicit cursor advanced
// one shared-memory operation per Step call. The contract is observable
// equivalence with RegisterAC/SnapshotAC — same operation count, same
// visibility, same decision rule under every interleaving — which the
// cross-engine identity tests and FuzzFlatVsCoroutine pin.

// FlatACCursor is one process's progress through one flat adopt-commit
// Propose. The zero value is the start state; reuse by assigning the
// zero value.
type FlatACCursor struct {
	// PC is the index of the next operation.
	PC int8
	// OK records the conflict-detector verdict (FlatBinaryAC) or the
	// phase-1 clean verdict (FlatSnapshotAC).
	OK bool
	// Conflicted records the dirty-register read on the commit path
	// (FlatBinaryAC only).
	Conflicted bool
}

// FlatBinaryAC is the dense image of NewBinaryAC: a RegisterAC over the
// one-digit binary conflict detector (one FlagsCD(2)), restricted to
// values {0, 1}. Propose costs 4 operations on the conflict path and 5
// on the commit path, exactly like the original:
//
//	op 0: write own CD flag        op 2': dirty.Write   (conflict path)
//	op 1: read the other CD flag   op 3': clean.Read → adopt
//	op 2: clean.Write(v)           (clean path)
//	op 3: dirty.Read
//	op 4: clean.Read → commit iff undisturbed
type FlatBinaryAC struct {
	flag     [2]bool
	clean    int64
	cleanSet bool
	dirty    bool
}

// Reset empties the object for reuse.
func (a *FlatBinaryAC) Reset() {
	a.flag[0], a.flag[1] = false, false
	a.cleanSet, a.dirty = false, false
}

// Step executes cur's next operation of Propose(v) for a value in
// {0, 1}. It returns done=true when the Propose completed, with commit
// and out carrying the decision; before that, commit and out are
// meaningless.
func (a *FlatBinaryAC) Step(cur *FlatACCursor, v int64) (done, commit bool, out int64) {
	switch cur.PC {
	case 0: // conflict detector: write own flag
		a.flag[v] = true
		cur.OK = true
	case 1: // conflict detector: read the other flag
		if a.flag[1-v] {
			cur.OK = false
		}
	case 2:
		if cur.OK {
			a.clean, a.cleanSet = v, true
		} else {
			a.dirty = true
		}
	case 3:
		if cur.OK {
			cur.Conflicted = a.dirty
		} else {
			// Conflict path: read clean and adopt what it holds (or keep
			// v if it is still empty).
			if a.cleanSet {
				return true, false, a.clean
			}
			return true, false, v
		}
	case 4:
		// Commit path: re-read clean. Own write guarantees presence.
		w := a.clean
		if cur.Conflicted || w != v {
			return true, false, w
		}
		return true, true, v
	}
	cur.PC++
	return false, false, 0
}

// StepBound returns the operation bound of one Propose.
func (a *FlatBinaryAC) StepBound() int { return 5 }

// FlatSnapshotAC is the dense image of SnapshotAC: two n-component
// unit-cost snapshots held as flat slices. Propose costs exactly 4
// operations (update, scan, update, scan), like the original.
type FlatSnapshotAC struct {
	n      int
	p1val  []int64
	p1ok   []bool
	p2val  []int64
	p2clean []bool
	p2ok   []bool
}

// NewFlatSnapshotAC returns an empty flat snapshot adopt-commit object
// for n processes.
func NewFlatSnapshotAC(n int) *FlatSnapshotAC {
	return &FlatSnapshotAC{
		n:      n,
		p1val:  make([]int64, n),
		p1ok:   make([]bool, n),
		p2val:  make([]int64, n),
		p2clean: make([]bool, n),
		p2ok:   make([]bool, n),
	}
}

// Reset empties the object for reuse.
func (a *FlatSnapshotAC) Reset() {
	for i := 0; i < a.n; i++ {
		a.p1ok[i] = false
		a.p2ok[i] = false
	}
}

// Step executes cur's next operation of Propose(v) by process pid. The
// scan loops mirror SnapshotAC.Propose exactly, including the
// last-clean-entry-wins rule of the phase-2 scan.
func (a *FlatSnapshotAC) Step(cur *FlatACCursor, pid int, v int64) (done, commit bool, out int64) {
	switch cur.PC {
	case 0: // phase-1 update
		a.p1val[pid], a.p1ok[pid] = v, true
	case 1: // phase-1 scan: clean iff only own value visible
		cur.OK = true
		for i := 0; i < a.n; i++ {
			if a.p1ok[i] && a.p1val[i] != v {
				cur.OK = false
				break
			}
		}
	case 2: // phase-2 update of (v, clean)
		a.p2val[pid], a.p2clean[pid], a.p2ok[pid] = v, cur.OK, true
	case 3: // phase-2 scan and decision
		var (
			sawClean   bool
			cleanValue int64
			allCleanV  = true
		)
		for i := 0; i < a.n; i++ {
			if !a.p2ok[i] {
				continue
			}
			if a.p2clean[i] {
				sawClean = true
				cleanValue = a.p2val[i]
			}
			if !a.p2clean[i] || a.p2val[i] != v {
				allCleanV = false
			}
		}
		if cur.OK && allCleanV {
			return true, true, v
		}
		if sawClean {
			return true, false, cleanValue
		}
		return true, false, v
	}
	cur.PC++
	return false, false, 0
}

// StepBound returns the operation count of one Propose.
func (a *FlatSnapshotAC) StepBound() int { return 4 }
