package adoptcommit

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

type acOutcome[V comparable] struct {
	dec Decision
	val V
}

// runAC executes one Propose per process under the given schedule source
// and returns the outcomes of processes that finished.
func runAC[V comparable](t *testing.T, obj Object[V], inputs []V, src sched.Source) []acOutcome[V] {
	t.Helper()
	outs, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: 1}, func(p *sim.Proc) acOutcome[V] {
		d, v := obj.Propose(p, p.ID(), inputs[p.ID()])
		return acOutcome[V]{dec: d, val: v}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var done []acOutcome[V]
	for i, out := range outs {
		if finished[i] {
			done = append(done, out)
		}
	}
	return done
}

// checkACProperties asserts validity, coherence, convergence, and
// adopt-implies-conflict on a set of outcomes.
func checkACProperties[V comparable](t *testing.T, inputs []V, outs []acOutcome[V], label string) {
	t.Helper()
	inputSet := make(map[V]bool, len(inputs))
	for _, v := range inputs {
		inputSet[v] = true
	}
	allSame := true
	for _, v := range inputs {
		if v != inputs[0] {
			allSame = false
			break
		}
	}
	var (
		committed    map[V]bool = make(map[V]bool)
		adoptedCount int
	)
	for _, o := range outs {
		if !inputSet[o.val] {
			t.Fatalf("%s: validity violated: output %v not an input of %v", label, o.val, inputs)
		}
		switch o.dec {
		case Commit:
			committed[o.val] = true
		case Adopt:
			adoptedCount++
		default:
			t.Fatalf("%s: invalid decision %v", label, o.dec)
		}
	}
	if len(committed) > 1 {
		t.Fatalf("%s: two different values committed: %v", label, committed)
	}
	if len(committed) == 1 {
		var cv V
		for v := range committed {
			cv = v
		}
		for _, o := range outs {
			if o.val != cv {
				t.Fatalf("%s: coherence violated: commit %v but some process returned (%v, %v)", label, cv, o.dec, o.val)
			}
		}
	}
	if allSame {
		for _, o := range outs {
			if o.dec != Commit || o.val != inputs[0] {
				t.Fatalf("%s: convergence violated: all inputs %v but got (%v, %v)", label, inputs[0], o.dec, o.val)
			}
		}
	}
	if adoptedCount > 0 && allSame {
		t.Fatalf("%s: adopt returned although all inputs agree (adopt-implies-conflict)", label)
	}
}

// exhaustive model checks an object constructor over every interleaving of
// stepBound operations per process.
func exhaustive[V comparable](t *testing.T, mk func() Object[V], inputs []V) {
	t.Helper()
	n := len(inputs)
	counts := make([]int, n)
	for i := range counts {
		counts[i] = mk().StepBound()
	}
	schedules := sched.AllInterleavings(counts)
	for _, slots := range schedules {
		obj := mk()
		outs := runAC(t, obj, inputs, sched.NewExplicit(n, slots))
		if len(outs) != n {
			t.Fatalf("schedule %v: only %d of %d processes finished", slots, len(outs), n)
		}
		checkACProperties(t, inputs, outs, fmt.Sprintf("schedule %v", slots))
	}
}

func TestSnapshotACSequential(t *testing.T) {
	tests := []struct {
		name   string
		inputs []int
	}{
		{name: "all same", inputs: []int{5, 5, 5}},
		{name: "two values", inputs: []int{1, 2, 1}},
		{name: "all distinct", inputs: []int{1, 2, 3}},
		{name: "single process", inputs: []int{9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			obj := NewSnapshotAC[int](len(tt.inputs))
			outs := runAC(t, obj, tt.inputs, sched.NewRoundRobin(len(tt.inputs)))
			checkACProperties(t, tt.inputs, outs, tt.name)
		})
	}
}

func TestSnapshotACSoloCommits(t *testing.T) {
	obj := NewSnapshotAC[string](1)
	d, v := obj.Propose(memory.Free, 0, "only")
	if d != Commit || v != "only" {
		t.Fatalf("solo propose = (%v, %q)", d, v)
	}
}

func TestSnapshotACExhaustiveTwoProcs(t *testing.T) {
	for _, inputs := range [][]int{{0, 1}, {0, 0}, {1, 0}, {1, 1}} {
		inputs := inputs
		t.Run(fmt.Sprintf("inputs %v", inputs), func(t *testing.T) {
			exhaustive(t, func() Object[int] { return NewSnapshotAC[int](2) }, inputs)
		})
	}
}

func TestSnapshotACExhaustiveThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-process check skipped in -short mode")
	}
	for _, inputs := range [][]int{{0, 1, 1}, {0, 1, 2}, {2, 2, 2}} {
		inputs := inputs
		t.Run(fmt.Sprintf("inputs %v", inputs), func(t *testing.T) {
			exhaustive(t, func() Object[int] { return NewSnapshotAC[int](3) }, inputs)
		})
	}
}

func TestRegisterACSequential(t *testing.T) {
	tests := []struct {
		name   string
		inputs []int
	}{
		{name: "all same", inputs: []int{1, 1, 1}},
		{name: "binary split", inputs: []int{0, 1, 0}},
		{name: "single", inputs: []int{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			obj := NewBinaryAC()
			outs := runAC(t, obj, tt.inputs, sched.NewRoundRobin(len(tt.inputs)))
			checkACProperties(t, tt.inputs, outs, tt.name)
		})
	}
}

func TestRegisterACExhaustiveTwoProcs(t *testing.T) {
	for _, inputs := range [][]int{{0, 1}, {0, 0}, {1, 0}, {1, 1}} {
		inputs := inputs
		t.Run(fmt.Sprintf("inputs %v", inputs), func(t *testing.T) {
			exhaustive(t, func() Object[int] { return NewBinaryAC() }, inputs)
		})
	}
}

func TestRegisterACExhaustiveThreeProcsSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled 3-process check skipped in -short mode")
	}
	// Full enumeration for 3 processes x 5 steps is ~750k schedules;
	// sample random interleavings instead.
	rng := xrand.New(77)
	inputsSets := [][]int{{0, 1, 1}, {0, 0, 1}, {1, 0, 1}}
	for _, inputs := range inputsSets {
		for trial := 0; trial < 2000; trial++ {
			slots := randomInterleaving(rng, []int{5, 5, 5})
			obj := NewBinaryAC()
			outs := runAC(t, obj, inputs, sched.NewExplicit(3, slots))
			checkACProperties(t, inputs, outs, fmt.Sprintf("inputs %v schedule %v", inputs, slots))
		}
	}
}

func randomInterleaving(rng *xrand.Rand, counts []int) []int {
	var pool []int
	for pid, c := range counts {
		for i := 0; i < c; i++ {
			pool = append(pool, pid)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool
}

func TestHashACRandomizedManyProcesses(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(15)
		inputs := make([]string, n)
		universe := []string{"alpha", "beta", "gamma"}
		for i := range inputs {
			inputs[i] = universe[rng.Intn(len(universe))]
		}
		obj := NewHashAC[string]()
		src := sched.NewRandom(n, xrand.New(rng.Uint64()))
		outs := runAC(t, obj, inputs, src)
		checkACProperties(t, inputs, outs, fmt.Sprintf("trial %d inputs %v", trial, inputs))
	}
}

func TestSnapshotACRandomizedManyProcesses(t *testing.T) {
	rng := xrand.New(33)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(15)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(3)
		}
		obj := NewSnapshotAC[int](n)
		src := sched.NewRandom(n, xrand.New(rng.Uint64()))
		outs := runAC(t, obj, inputs, src)
		checkACProperties(t, inputs, outs, fmt.Sprintf("trial %d inputs %v", trial, inputs))
	}
}

func TestACUnderCrashSchedules(t *testing.T) {
	// Safety must hold even when half the processes crash mid-protocol.
	rng := xrand.New(35)
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(8)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		obj := NewSnapshotAC[int](n)
		src := sched.NewCrashHalf(n, xrand.New(rng.Uint64()))
		outs := runAC(t, obj, inputs, src)
		// Crashed processes produce no outcome; properties must hold on
		// the survivors.
		checkACProperties(t, inputs, outs, fmt.Sprintf("crash trial %d", trial))
	}
}

func TestStepBounds(t *testing.T) {
	tests := []struct {
		name string
		mk   func() Object[int]
		n    int
	}{
		{name: "snapshot", mk: func() Object[int] { return NewSnapshotAC[int](3) }, n: 3},
		{name: "binary register", mk: func() Object[int] { return NewBinaryAC() }, n: 3},
		{name: "digit register", mk: func() Object[int] {
			return NewRegisterAC[int](NewDigitCD(IdentityEncoder(4)))
		}, n: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			obj := tt.mk()
			bound := obj.StepBound()
			for pid := 0; pid < tt.n; pid++ {
				ctx := &countingCtx{}
				obj.Propose(ctx, pid, pid%2)
				if ctx.steps > bound {
					t.Fatalf("pid %d used %d steps, bound %d", pid, ctx.steps, bound)
				}
			}
		})
	}
}

func TestDecisionString(t *testing.T) {
	if Adopt.String() != "adopt" || Commit.String() != "commit" {
		t.Fatal("decision names wrong")
	}
	if Decision(0).String() != "invalid" {
		t.Fatal("zero decision should stringify as invalid")
	}
}

type countingCtx struct{ steps int }

func (c *countingCtx) Step() { c.steps++ }

func (c *countingCtx) Exclusive() bool { return false }
