// Package adoptcommit implements adopt-commit objects, the
// agreement-detection half of the paper's consensus recipe (Section 1.2):
// conciliators create agreement with constant probability, adopt-commit
// objects detect it and let processes decide safely.
//
// An adopt-commit object supports a single Propose(v) operation per
// process returning (commit, v') or (adopt, v') subject to:
//
//   - Termination: every Propose finishes in a bounded number of steps.
//   - Validity: v' is the input of some Propose.
//   - Convergence: if all inputs equal v, every Propose returns
//     (commit, v).
//   - Coherence: if some Propose returns (commit, v), every Propose
//     returns (commit, v) or (adopt, v).
//
// All implementations here additionally guarantee the property Theorem 3's
// validity argument relies on: (adopt, v) is returned only when two
// different input values were actually proposed ("adopt implies
// conflict").
//
// Two implementations are provided, matching the two models in the paper:
// SnapshotAC uses O(1) unit-cost snapshot operations (Gafni-style, the
// object behind Corollary 1), and RegisterAC uses a proposal register plus
// a conflict detector (the modular decomposition of Aspnes–Ellen, the
// object behind Corollaries 2 and 3; see DESIGN.md for the cost
// substitution).
package adoptcommit

import "github.com/oblivious-consensus/conciliator/internal/memory"

// Decision is the tag of an adopt-commit outcome.
type Decision int

const (
	// Adopt instructs the caller to carry v' into the next phase without
	// deciding.
	Adopt Decision = iota + 1
	// Commit instructs the caller to decide v' immediately.
	Commit
)

// String returns the lower-case tag name used in traces.
func (d Decision) String() string {
	switch d {
	case Adopt:
		return "adopt"
	case Commit:
		return "commit"
	default:
		return "invalid"
	}
}

// Object is a single-use adopt-commit object: each process calls Propose
// at most once.
type Object[V comparable] interface {
	// Propose runs the adopt-commit protocol for process pid with input
	// v. Implementations that do not need process identities (the
	// register-based ones, matching the paper's anonymous objects) ignore
	// pid.
	Propose(ctx memory.Context, pid int, v V) (Decision, V)

	// StepBound returns an upper bound on the number of shared-memory
	// steps one Propose costs, used by the experiment harness.
	StepBound() int
}
