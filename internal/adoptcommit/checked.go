package adoptcommit

import "github.com/oblivious-consensus/conciliator/internal/memory"

// Observation is one Propose event as seen by a Checked wrapper. Every
// Propose is reported twice: once at entry (Completed=false) and once at
// return (Completed=true). The entry report matters under
// crash-recovery faults: an aborted Propose never returns, but its value
// may already have reached the object's shared state — where it can
// raise conflict flags or be adopted by others — so safety monitors must
// count it among the phase's proposals. Out and Dec are meaningful only
// when Completed is true.
type Observation[V comparable] struct {
	Pid       int
	In        V
	Completed bool
	Out       V
	Dec       Decision
}

// Checked wraps an adopt-commit object and reports every Propose to a
// callback, so external safety monitors can validate coherence,
// convergence, validity, and adopt-implies-conflict over the observed
// history without touching the object's own step accounting. The
// callback runs outside the wrapped object's operations and must not
// perform shared-memory steps.
type Checked[V comparable] struct {
	inner  Object[V]
	report func(Observation[V])
}

var _ Object[int] = (*Checked[int])(nil)

// NewChecked wraps inner; report may be nil, making the wrapper
// transparent.
func NewChecked[V comparable](inner Object[V], report func(Observation[V])) *Checked[V] {
	return &Checked[V]{inner: inner, report: report}
}

// Propose implements Object.
func (c *Checked[V]) Propose(ctx memory.Context, pid int, v V) (Decision, V) {
	if c.report != nil {
		c.report(Observation[V]{Pid: pid, In: v})
	}
	dec, out := c.inner.Propose(ctx, pid, v)
	if c.report != nil {
		c.report(Observation[V]{Pid: pid, In: v, Completed: true, Out: out, Dec: dec})
	}
	return dec, out
}

// StepBound implements Object.
func (c *Checked[V]) StepBound() int { return c.inner.StepBound() }
