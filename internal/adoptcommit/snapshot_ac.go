package adoptcommit

import "github.com/oblivious-consensus/conciliator/internal/memory"

// SnapshotAC is the Gafni-style adopt-commit object from unit-cost
// snapshots used by Corollary 1: two update/scan phases, O(1) snapshot
// operations per Propose.
//
// Phase 1 announces the input and scans; a process whose scan shows only
// its own value is "clean". Phase 2 announces (value, clean) and scans
// again. A process commits only if its phase-2 scan contains exclusively
// (v, clean) entries for its own v.
//
// Correctness sketch (tested exhaustively over all interleavings for
// small n in this package):
//
//   - At most one value ever gets a clean mark: phase-1 scans of a single
//     snapshot object are totally ordered, and the later of two clean
//     scans would contain the earlier writer's different value.
//   - If p commits v, any q's phase-2 scan either contains p's (v, clean)
//     entry, or q's scan precedes it, in which case p's scan contains q's
//     entry — which must then be (v, clean), so q sees its own clean entry
//     for v. Either way q returns v.
type SnapshotAC[V comparable] struct {
	phase1 *memory.Snapshot[V]
	phase2 *memory.Snapshot[cleanMark[V]]
}

type cleanMark[V comparable] struct {
	value V
	clean bool
}

var _ Object[int] = (*SnapshotAC[int])(nil)

// NewSnapshotAC returns an adopt-commit object for n processes in the
// unit-cost snapshot model.
func NewSnapshotAC[V comparable](n int) *SnapshotAC[V] {
	return &SnapshotAC[V]{
		phase1: memory.NewSnapshot[V](n),
		phase2: memory.NewSnapshot[cleanMark[V]](n),
	}
}

// Propose implements Object. It costs exactly 4 snapshot steps.
func (a *SnapshotAC[V]) Propose(ctx memory.Context, pid int, v V) (dec Decision, out V) {
	before := proposeStart(mSnapPropose, ctx)
	defer func() { meterPropose(mSnapPropose, ctx, before, dec) }()
	a.phase1.Update(ctx, pid, v)
	clean := true
	for _, e := range a.phase1.ScanScratch(ctx) {
		if e.OK && e.Value != v {
			clean = false
			break
		}
	}

	a.phase2.Update(ctx, pid, cleanMark[V]{value: v, clean: clean})
	var (
		sawClean   bool
		cleanValue V
		allCleanV  = true
	)
	for _, e := range a.phase2.ScanScratch(ctx) {
		if !e.OK {
			continue
		}
		if e.Value.clean {
			// Uniqueness of the clean value makes "last one wins" safe;
			// assert-by-construction is covered in the tests.
			sawClean = true
			cleanValue = e.Value.value
		}
		if !e.Value.clean || e.Value.value != v {
			allCleanV = false
		}
	}

	if clean && allCleanV {
		return Commit, v
	}
	if sawClean {
		return Adopt, cleanValue
	}
	return Adopt, v
}

// StepBound implements Object.
func (a *SnapshotAC[V]) StepBound() int { return 4 }
