package adoptcommit

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

func TestFlagsCDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 2")
		}
	}()
	NewFlagsCD(1)
}

func TestFlagsCDAllSameOK(t *testing.T) {
	cd := NewFlagsCD(4)
	for i := 0; i < 5; i++ {
		if !cd.Check(memory.Free, 2) {
			t.Fatal("same-value check reported conflict")
		}
	}
}

func TestFlagsCDSequentialConflict(t *testing.T) {
	cd := NewFlagsCD(3)
	if !cd.Check(memory.Free, 0) {
		t.Fatal("first check conflicted")
	}
	if cd.Check(memory.Free, 1) {
		t.Fatal("second check with different value passed")
	}
}

func TestFlagsCDNoTwoDifferentOKsExhaustive(t *testing.T) {
	// Model check the two-process, two-distinct-values case over all
	// interleavings of the k steps each check takes.
	for _, k := range []int{2, 3} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			counts := []int{k, k}
			for _, slots := range sched.AllInterleavings(counts) {
				cd := NewFlagsCD(k)
				oks, finished, _, err := sim.Collect(sched.NewExplicit(2, slots), sim.Config{AlgSeed: 1}, func(p *sim.Proc) bool {
					return cd.Check(p, p.ID()) // process i checks value i
				})
				if err != nil {
					t.Fatalf("schedule %v: %v", slots, err)
				}
				if !finished[0] || !finished[1] {
					t.Fatalf("schedule %v: processes did not finish", slots)
				}
				if oks[0] && oks[1] {
					t.Fatalf("schedule %v: two different values both passed", slots)
				}
			}
		})
	}
}

func TestFlagsCDSameValueConcurrentAlwaysOK(t *testing.T) {
	for _, slots := range sched.AllInterleavings([]int{2, 2}) {
		cd := NewFlagsCD(2)
		oks, _, _, err := sim.Collect(sched.NewExplicit(2, slots), sim.Config{AlgSeed: 1}, func(p *sim.Proc) bool {
			return cd.Check(p, 1)
		})
		if err != nil {
			t.Fatalf("schedule %v: %v", slots, err)
		}
		if !oks[0] || !oks[1] {
			t.Fatalf("schedule %v: same-value checks conflicted", slots)
		}
	}
}

func TestDigitCDEncoderValidation(t *testing.T) {
	for _, bits := range []int{0, 65, -1} {
		bits := bits
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewDigitCD(Encoder[int]{Bits: bits, Encode: func(v int) uint64 { return uint64(v) }})
		}()
	}
}

func TestDigitCDOverflowPanics(t *testing.T) {
	cd := NewDigitCD(IdentityEncoder(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-width code")
		}
	}()
	cd.Check(memory.Free, 4)
}

func TestDigitCDSequential(t *testing.T) {
	cd := NewDigitCD(IdentityEncoder(4))
	if !cd.Check(memory.Free, 5) {
		t.Fatal("first check conflicted")
	}
	if !cd.Check(memory.Free, 5) {
		t.Fatal("repeat of same value conflicted")
	}
	if cd.Check(memory.Free, 9) {
		t.Fatal("different value passed after 5")
	}
}

func TestDigitCDNoTwoDifferentOKsExhaustive(t *testing.T) {
	// Two processes, values differing in one or several digits; steps per
	// check = 2*bits.
	const bits = 2
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 3}, {2, 3}}
	for _, pair := range pairs {
		pair := pair
		t.Run(fmt.Sprintf("values %v", pair), func(t *testing.T) {
			for _, slots := range sched.AllInterleavings([]int{2 * bits, 2 * bits}) {
				cd := NewDigitCD(IdentityEncoder(bits))
				oks, _, _, err := sim.Collect(sched.NewExplicit(2, slots), sim.Config{AlgSeed: 1}, func(p *sim.Proc) bool {
					return cd.Check(p, pair[p.ID()])
				})
				if err != nil {
					t.Fatalf("schedule %v: %v", slots, err)
				}
				if oks[0] && oks[1] {
					t.Fatalf("schedule %v values %v: both passed", slots, pair)
				}
			}
		})
	}
}

func TestDigitCDCostScalesWithBits(t *testing.T) {
	for _, bits := range []int{1, 8, 16, 64} {
		cd := NewDigitCD(Encoder[uint64]{Bits: bits, Encode: func(v uint64) uint64 { return v }})
		ctx := &countingCtx{}
		cd.Check(ctx, 0)
		if ctx.steps != 2*bits {
			t.Errorf("bits=%d: check cost %d, want %d", bits, ctx.steps, 2*bits)
		}
		if cd.StepBound() != 2*bits {
			t.Errorf("bits=%d: StepBound %d", bits, cd.StepBound())
		}
	}
}

func TestHashEncoderDeterministicAndSpread(t *testing.T) {
	enc := HashEncoder[string]()
	if enc.Bits != 64 {
		t.Fatalf("Bits = %d", enc.Bits)
	}
	if enc.Encode("x") != enc.Encode("x") {
		t.Fatal("hash encoder not deterministic")
	}
	if err := quick.Check(func(a, b string) bool {
		if a == b {
			return enc.Encode(a) == enc.Encode(b)
		}
		return enc.Encode(a) != enc.Encode(b) // collision: astronomically unlikely
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityEncoder(t *testing.T) {
	enc := IdentityEncoder(8)
	if enc.Bits != 8 {
		t.Fatalf("Bits = %d", enc.Bits)
	}
	if enc.Encode(200) != 200 {
		t.Fatal("identity encoder mangled value")
	}
}
