package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different seeds collided %d/64 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// The child's stream must not simply replay the parent's.
	matches := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 1 {
		t.Fatalf("fork stream tracked parent %d/64 times", matches)
	}
}

func TestForkDeterministic(t *testing.T) {
	c1 := New(9).Fork()
	c2 := New(9).Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("forked children of equal parents diverged at draw %d", i)
		}
	}
}

func TestForkNamedDistinct(t *testing.T) {
	a := New(5).ForkNamed(1)
	b := New(5).ForkNamed(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("named forks with different labels collided %d/64 times", same)
	}
}

func TestSeedNamedMatchesForkNamed(t *testing.T) {
	// The contract incarnation reseeding depends on: a stored SeedNamed
	// value rebuilds exactly the stream ForkNamed would have produced,
	// and ForkNamedInto is the allocation-free spelling of the same.
	for _, label := range []uint64{0, 1, 0xa190, ^uint64(0)} {
		a := New(New(9).SeedNamed(label))
		b := New(9).ForkNamed(label)
		var c Rand
		New(9).ForkNamedInto(label, &c)
		for i := 0; i < 64; i++ {
			av := a.Uint64()
			if bv := b.Uint64(); av != bv {
				t.Fatalf("label %#x draw %d: New(SeedNamed) %d != ForkNamed %d", label, i, av, bv)
			}
			if cv := c.Uint64(); av != cv {
				t.Fatalf("label %#x draw %d: New(SeedNamed) %d != ForkNamedInto %d", label, i, av, cv)
			}
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint64) bool {
		n = n%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	const (
		n      = 10
		draws  = 100000
		expect = draws / n
	)
	r := New(11)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c-expect)) > 0.05*float64(expect) {
			t.Errorf("value %d drawn %d times, want about %d", v, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want about 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) hit rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	const (
		n     = 5
		draws = 50000
	)
	r := New(29)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expect := draws / n
	for v, c := range counts {
		if math.Abs(float64(c-expect)) > 0.08*float64(expect) {
			t.Errorf("Perm first element %d seen %d times, want about %d", v, c, expect)
		}
	}
}

func TestShuffleMatchesPermMechanics(t *testing.T) {
	a := New(31)
	b := New(31)
	n := 20
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	a.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
	p := b.Perm(n)
	for i := range p {
		if s[i] != p[i] {
			t.Fatalf("Shuffle and Perm diverge at %d: %v vs %v", i, s, p)
		}
	}
}

func TestBitsLengthAndMask(t *testing.T) {
	r := New(37)
	tests := []struct {
		k         int
		wantWords int
	}{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, tt := range tests {
		w := r.Bits(tt.k)
		if len(w) != tt.wantWords {
			t.Errorf("Bits(%d): %d words, want %d", tt.k, len(w), tt.wantWords)
			continue
		}
		if rem := tt.k % 64; rem != 0 && len(w) > 0 {
			if w[len(w)-1]>>rem != 0 {
				t.Errorf("Bits(%d): tail bits not masked", tt.k)
			}
		}
	}
}

func TestBitsNegative(t *testing.T) {
	if got := New(1).Bits(-3); got != nil {
		t.Fatalf("Bits(-3) = %v, want nil", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
