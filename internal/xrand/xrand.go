// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The protocols in this repository require two properties that math/rand
// does not make convenient:
//
//   - Reproducibility across runs given a single 64-bit seed, so that every
//     experiment is replayable from (algorithm seed, adversary seed).
//   - Cheap forking of independent streams, so that each process, each
//     persona, and the adversary draw from provably disjoint randomness.
//     Independence of the adversary stream from the algorithm streams is
//     what makes the simulated adversary oblivious.
//
// The generator is xoshiro256** seeded through SplitMix64, the standard
// pairing recommended by the xoshiro authors. It is not cryptographically
// secure and does not need to be.
package xrand

import "math/bits"

// Rand is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; fork independent streams with Fork instead of
// sharing one Rand across goroutines.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed reinitializes r in place exactly as New(seed) would, without
// allocating. It exists so pooled simulator state can reuse Rand values
// across runs.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 outputs are zero
	// for at most one input each, so force a safe state if all four
	// outputs collide with zero.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Fork returns a new generator whose stream is independent of the
// receiver's future output. The child is seeded from the parent's stream,
// so forking is itself deterministic.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

// ForkNamed returns a child stream decorrelated by a caller-supplied label
// in addition to the parent's stream. Useful when the same parent must
// yield reproducible children regardless of draw order elsewhere.
func (r *Rand) ForkNamed(label uint64) *Rand {
	return New(r.SeedNamed(label))
}

// ForkNamedInto seeds into with the same stream ForkNamed(label) would
// return, reusing into's storage instead of allocating.
func (r *Rand) ForkNamedInto(label uint64, into *Rand) {
	into.Reseed(r.SeedNamed(label))
}

// SeedNamed draws the seed ForkNamed(label) would use without building
// the child. Callers that must later re-derive related streams (e.g.
// per-incarnation reseeds keyed off one process's base seed) store this
// value; New(SeedNamed(label)) is exactly ForkNamed(label).
func (r *Rand) SeedNamed(label uint64) uint64 {
	return r.Uint64() ^ mix(label)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random bit.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, as rand.Shuffle does.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bits returns k independent random bits packed little-endian into a
// []uint64 of length ceil(k/64).
func (r *Rand) Bits(k int) []uint64 {
	if k <= 0 {
		return nil
	}
	words := make([]uint64, (k+63)/64)
	for i := range words {
		words[i] = r.Uint64()
	}
	// Mask the tail so equality on the slice equals equality on the bits.
	if rem := k % 64; rem != 0 {
		words[len(words)-1] &= (1 << rem) - 1
	}
	return words
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	return state, mix(state)
}

// mix is the SplitMix64 output function, also used to decorrelate labels.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
