// Package trace provides execution-capture utilities: a recording
// schedule source that allows any controlled run to be replayed exactly
// (the debugging workflow for probabilistic protocols), and a small
// concurrency-safe event log used when instrumenting runs.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// RecordingSource wraps a schedule source and records every slot it
// emits, so the exact schedule of a run — including one produced by a
// stateful random source — can be replayed later as an explicit schedule.
type RecordingSource struct {
	inner sched.Source
	slots []int
}

var _ sched.Source = (*RecordingSource)(nil)

// Record wraps src.
func Record(src sched.Source) *RecordingSource {
	return &RecordingSource{inner: src}
}

// N implements sched.Source.
func (r *RecordingSource) N() int { return r.inner.N() }

// Next implements sched.Source, recording the emitted slot.
func (r *RecordingSource) Next() int {
	id := r.inner.Next()
	if id != sched.Exhausted {
		r.slots = append(r.slots, id)
	}
	return id
}

// Alive forwards crash-awareness when the inner source provides it.
func (r *RecordingSource) Alive(pid int) bool {
	if ca, ok := r.inner.(sched.CrashAware); ok {
		return ca.Alive(pid)
	}
	return true
}

// Slots returns a copy of the recorded schedule so far.
func (r *RecordingSource) Slots() []int {
	out := make([]int, len(r.slots))
	copy(out, r.slots)
	return out
}

// Replay returns an explicit schedule reproducing the recorded run.
func (r *RecordingSource) Replay() *sched.Explicit {
	return sched.NewExplicit(r.inner.N(), r.Slots())
}

// Event is one recorded protocol event.
type Event struct {
	// Proc is the process id the event belongs to (-1 for global).
	Proc int
	// Round is the protocol round, when meaningful (-1 otherwise).
	Round int
	// What describes the event.
	What string
}

// String renders the event.
func (e Event) String() string {
	switch {
	case e.Proc < 0:
		return e.What
	case e.Round < 0:
		return fmt.Sprintf("p%d: %s", e.Proc, e.What)
	default:
		return fmt.Sprintf("p%d r%d: %s", e.Proc, e.Round, e.What)
	}
}

// Log is an append-only, concurrency-safe event log.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add appends an event.
func (l *Log) Add(proc, round int, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Proc: proc, Round: round, What: fmt.Sprintf(format, args...)})
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// String renders the log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
