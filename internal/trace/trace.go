// Package trace provides execution-capture utilities: a recording
// schedule source that allows any controlled run to be replayed exactly
// (the debugging workflow for probabilistic protocols), and a small
// concurrency-safe event log used when instrumenting runs.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// RecordingSource wraps a schedule source and records every slot it
// emits — and, for crash-aware sources, the slot at which each process
// was first observed dead — so the exact schedule of a run, including one
// produced by a stateful random source with crashes, can be replayed
// later. A RecordingSource deliberately does not implement sched.Skipper:
// bulk-skipped slots would bypass recording, so recorded runs take the
// slot-at-a-time path.
type RecordingSource struct {
	inner sched.Source
	ca    sched.CrashAware // nil when inner is not crash-aware
	slots []int
	// deadAt[pid] is the number of recorded slots after which pid was
	// first observed dead, or -1 while alive. Deaths are driven by the
	// slot clock, so checking after every emitted slot captures them at
	// exactly the granularity the simulator can observe.
	deadAt []int
}

var _ sched.Source = (*RecordingSource)(nil)

// Record wraps src.
func Record(src sched.Source) *RecordingSource {
	r := &RecordingSource{inner: src}
	if ca, ok := src.(sched.CrashAware); ok {
		r.ca = ca
		r.deadAt = make([]int, src.N())
		for pid := range r.deadAt {
			r.deadAt[pid] = -1
		}
		r.observeDeaths()
	}
	return r
}

// N implements sched.Source.
func (r *RecordingSource) N() int { return r.inner.N() }

// Next implements sched.Source, recording the emitted slot.
func (r *RecordingSource) Next() int {
	id := r.inner.Next()
	if id != sched.Exhausted {
		r.slots = append(r.slots, id)
		if r.ca != nil {
			r.observeDeaths()
		}
	}
	return id
}

func (r *RecordingSource) observeDeaths() {
	for pid, d := range r.deadAt {
		if d < 0 && !r.ca.Alive(pid) {
			r.deadAt[pid] = len(r.slots)
		}
	}
}

// Alive forwards crash-awareness when the inner source provides it.
func (r *RecordingSource) Alive(pid int) bool {
	if r.ca != nil {
		return r.ca.Alive(pid)
	}
	return true
}

// Slots returns a copy of the recorded schedule so far.
func (r *RecordingSource) Slots() []int {
	out := make([]int, len(r.slots))
	copy(out, r.slots)
	return out
}

// DeadSlots returns a copy of the recorded death slots (the slot count
// after which each process was first observed dead; -1 = never died),
// or nil when the inner source is not crash-aware. Together with Slots
// and N this is everything needed to rebuild the replay externally via
// NewReplay.
func (r *RecordingSource) DeadSlots() []int {
	if r.deadAt == nil {
		return nil
	}
	out := make([]int, len(r.deadAt))
	copy(out, r.deadAt)
	return out
}

// Replay returns a schedule source reproducing the recorded run. When the
// recording came from a crash-aware source the result is crash-aware too,
// reporting each process dead from the recorded slot onward — without
// this, replaying a crashed run would end in ErrScheduleExhausted (or
// grant crashed processes extra steps) instead of reproducing the
// original Result.
func (r *RecordingSource) Replay() sched.Source {
	if r.ca == nil {
		return sched.NewExplicit(r.inner.N(), r.Slots())
	}
	deadAt := make([]int, len(r.deadAt))
	copy(deadAt, r.deadAt)
	return &ReplaySource{n: r.inner.N(), slots: r.Slots(), deadAt: deadAt}
}

// ReplaySource replays a recorded crash schedule: the explicit slot list
// plus the recorded death slot of each process. Its crash clock is the
// number of slots consumed, mirroring the recording's granularity.
type ReplaySource struct {
	n      int
	slots  []int
	pos    int
	deadAt []int // first-observed-dead slot count per pid; -1 = never died
}

// NewReplay reconstructs a ReplaySource from externally stored recording
// data (the Slots/DeadSlots of a RecordingSource, typically round-tripped
// through a file). Unlike RecordingSource.Replay, whose inputs are
// internally consistent by construction, stored recordings can be
// hand-edited or truncated — so everything is validated here, returning a
// descriptive error instead of letting the simulator driver index out of
// range mid-run. deadAt may be nil for a crash-free recording; otherwise
// it must hold one entry per process, each -1 (never died) or a slot
// count within the recording.
func NewReplay(n int, slots, deadAt []int) (*ReplaySource, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: replay needs a positive process count, got %d", n)
	}
	for i, pid := range slots {
		if pid < 0 || pid >= n {
			return nil, fmt.Errorf("trace: replay slot %d grants pid %d, want [0,%d)", i, pid, n)
		}
	}
	slotsCopy := make([]int, len(slots))
	copy(slotsCopy, slots)
	var deadCopy []int
	if deadAt != nil {
		if len(deadAt) != n {
			return nil, fmt.Errorf("trace: replay has %d death slots for %d processes", len(deadAt), n)
		}
		deadCopy = make([]int, n)
		for pid, d := range deadAt {
			switch {
			case d < -1:
				return nil, fmt.Errorf("trace: process %d has invalid death slot %d (want -1 or >= 0)", pid, d)
			case d > len(slots):
				return nil, fmt.Errorf("trace: process %d dies after slot %d but the recording holds only %d slots (truncated?)", pid, d, len(slots))
			}
			deadCopy[pid] = d
		}
	} else {
		deadCopy = make([]int, n)
		for pid := range deadCopy {
			deadCopy[pid] = -1
		}
	}
	return &ReplaySource{n: n, slots: slotsCopy, deadAt: deadCopy}, nil
}

var (
	_ sched.Source     = (*ReplaySource)(nil)
	_ sched.CrashAware = (*ReplaySource)(nil)
	_ sched.Skipper    = (*ReplaySource)(nil)
)

// N implements sched.Source.
func (s *ReplaySource) N() int { return s.n }

// Next implements sched.Source; returns Exhausted once the recording ends.
func (s *ReplaySource) Next() int {
	if s.pos >= len(s.slots) {
		return sched.Exhausted
	}
	id := s.slots[s.pos]
	s.pos++
	return id
}

// Alive implements sched.CrashAware from the recorded death slots.
func (s *ReplaySource) Alive(pid int) bool {
	d := s.deadAt[pid]
	return d < 0 || s.pos < d
}

// SkipWhile implements sched.Skipper. The slot clock is advanced before
// pred runs and rewound on rejection, so pred observes Alive exactly as
// it would through a draw-then-check Next sequence — matching how the
// original (stash-based) crash sources behave under bulk skipping.
func (s *ReplaySource) SkipWhile(pred func(pid int) bool) int64 {
	var skipped int64
	for s.pos < len(s.slots) {
		pid := s.slots[s.pos]
		s.pos++
		if !pred(pid) {
			s.pos--
			return skipped
		}
		skipped++
	}
	return skipped
}

// Event is one recorded protocol event.
type Event struct {
	// Proc is the process id the event belongs to (-1 for global).
	Proc int
	// Round is the protocol round, when meaningful (-1 otherwise).
	Round int
	// What describes the event.
	What string
}

// String renders the event.
func (e Event) String() string {
	switch {
	case e.Proc < 0:
		return e.What
	case e.Round < 0:
		return fmt.Sprintf("p%d: %s", e.Proc, e.What)
	default:
		return fmt.Sprintf("p%d r%d: %s", e.Proc, e.Round, e.What)
	}
}

// Log is an append-only, concurrency-safe event log.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add appends an event.
func (l *Log) Add(proc, round int, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Proc: proc, Round: round, What: fmt.Sprintf(format, args...)})
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// String renders the log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
