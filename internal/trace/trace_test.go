package trace

import (
	"strings"
	"sync"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestRecordingSourceDelegates(t *testing.T) {
	rec := Record(sched.NewRoundRobin(3))
	if rec.N() != 3 {
		t.Fatalf("N = %d", rec.N())
	}
	want := []int{0, 1, 2, 0}
	for i, w := range want {
		if got := rec.Next(); got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
	slots := rec.Slots()
	if len(slots) != 4 {
		t.Fatalf("recorded %d slots", len(slots))
	}
	for i, w := range want {
		if slots[i] != w {
			t.Fatalf("recorded slot %d = %d", i, slots[i])
		}
	}
	// Slots must be a copy.
	slots[0] = 99
	if rec.Slots()[0] == 99 {
		t.Fatal("Slots aliases internal state")
	}
}

func TestRecordingSourceDoesNotRecordExhausted(t *testing.T) {
	rec := Record(sched.NewExplicit(2, []int{0, 1}))
	for i := 0; i < 5; i++ {
		rec.Next()
	}
	if got := len(rec.Slots()); got != 2 {
		t.Fatalf("recorded %d slots, want 2", got)
	}
}

func TestRecordingSourceAlive(t *testing.T) {
	rec := Record(sched.NewRoundRobin(2))
	if !rec.Alive(0) || !rec.Alive(1) {
		t.Fatal("plain source should report all alive")
	}
	crash := Record(sched.NewCrashHalf(4, xrand.New(1)))
	// Drain past the cutoff, then at least one process must be dead.
	for i := 0; i < 1000; i++ {
		crash.Next()
	}
	dead := 0
	for pid := 0; pid < 4; pid++ {
		if !crash.Alive(pid) {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("%d dead, want 2", dead)
	}
}

func TestReplayReproducesRun(t *testing.T) {
	// Record a run under a random schedule, then replay it and verify
	// the observable execution is identical.
	body := func(order *[]int) sim.Body {
		reg := memory.NewRegister[int]()
		return func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				reg.Write(p, p.ID())
				*order = append(*order, p.ID())
			}
		}
	}

	var first []int
	rec := Record(sched.NewRandom(4, xrand.New(99)))
	if _, err := sim.RunControlled(rec, body(&first), sim.Config{AlgSeed: 1}); err != nil {
		t.Fatal(err)
	}

	var second []int
	if _, err := sim.RunControlled(rec.Replay(), body(&second), sim.Config{AlgSeed: 1}); err != nil {
		t.Fatal(err)
	}

	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at op %d", i)
		}
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{Event{Proc: -1, Round: -1, What: "global"}, "global"},
		{Event{Proc: 2, Round: -1, What: "op"}, "p2: op"},
		{Event{Proc: 1, Round: 3, What: "adopt"}, "p1 r3: adopt"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(w, i, "event %d", i)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	s := l.String()
	if !strings.Contains(s, "p0 r0: event 0") {
		t.Fatal("rendered log missing expected line")
	}
	// Events must be a copy.
	evs := l.Events()
	evs[0].What = "mutated"
	if l.Events()[0].What == "mutated" {
		t.Fatal("Events aliases internal state")
	}
}

func TestReplayCrashHalfReproducesResult(t *testing.T) {
	// Recording a run under a crash schedule and replaying it must (a)
	// terminate — the replay needs the recorded crash set, or the driver
	// waits for crashed processes and dies on schedule exhaustion — and
	// (b) reproduce the original Result exactly.
	for seed := uint64(1); seed <= 20; seed++ {
		body := func(p *sim.Proc) {
			reg := p.ID() // a few steps of per-process work
			_ = reg
			for i := 0; i < 10+p.ID(); i++ {
				p.Step()
			}
		}
		rec := Record(sched.NewCrashHalf(8, xrand.New(seed)))
		orig, err := sim.RunControlled(rec, body, sim.Config{AlgSeed: seed})
		if err != nil {
			t.Fatalf("seed %d: recording run failed: %v", seed, err)
		}
		replayed, err := sim.RunControlled(rec.Replay(), body, sim.Config{AlgSeed: seed})
		if err != nil {
			t.Fatalf("seed %d: replay failed: %v", seed, err)
		}
		if orig.TotalSteps != replayed.TotalSteps || orig.Slots != replayed.Slots {
			t.Fatalf("seed %d: totals diverge: orig steps=%d slots=%d, replay steps=%d slots=%d",
				seed, orig.TotalSteps, orig.Slots, replayed.TotalSteps, replayed.Slots)
		}
		for pid := range orig.Steps {
			if orig.Steps[pid] != replayed.Steps[pid] {
				t.Fatalf("seed %d: process %d steps %d vs %d", seed, pid, orig.Steps[pid], replayed.Steps[pid])
			}
			if orig.Finished[pid] != replayed.Finished[pid] {
				t.Fatalf("seed %d: process %d finished %v vs %v", seed, pid, orig.Finished[pid], replayed.Finished[pid])
			}
		}
	}
}

func TestReplayWithoutCrashesIsPlainExplicit(t *testing.T) {
	// Crash-free recordings replay as a plain explicit schedule, which the
	// simulator can drive down its fast (wide-window) path.
	rec := Record(sched.NewRoundRobin(3))
	if _, err := sim.RunControlled(rec, func(p *sim.Proc) {
		p.Step()
	}, sim.Config{AlgSeed: 4}); err != nil {
		t.Fatal(err)
	}
	src := rec.Replay()
	if _, ok := src.(*sched.Explicit); !ok {
		t.Fatalf("crash-free Replay returned %T, want *sched.Explicit", src)
	}
	if _, ok := src.(sched.CrashAware); ok {
		t.Fatal("crash-free replay must not be crash-aware")
	}
}

func TestNewReplayValidates(t *testing.T) {
	// A stored recording can be hand-edited or truncated; NewReplay must
	// reject every malformed shape with a descriptive error rather than
	// handing the simulator a source that indexes out of range mid-run.
	tests := []struct {
		name   string
		n      int
		slots  []int
		deadAt []int
		want   string
	}{
		{"zero processes", 0, nil, nil, "process count"},
		{"pid out of range", 2, []int{0, 1, 2}, nil, "pid 2"},
		{"negative pid", 2, []int{0, -1}, nil, "pid -1"},
		{"death slots length", 2, []int{0, 1}, []int{-1}, "death slots"},
		{"invalid death slot", 2, []int{0, 1}, []int{-5, -1}, "invalid death slot"},
		{"death past recording", 2, []int{0, 1}, []int{3, -1}, "truncated"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewReplay(tt.n, tt.slots, tt.deadAt)
			if err == nil {
				t.Fatal("malformed recording accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestNewReplayTruncatedRecording(t *testing.T) {
	// Record a real crash run, externalize it, then hand-truncate the slot
	// list below a recorded death: rebuilding the replay must fail with a
	// descriptive error, and the untruncated data must rebuild a source
	// that reproduces the original run exactly.
	n := 4
	rec := Record(sched.NewCrashSet(sched.NewRandom(n, xrand.New(7)), []int{1, 2}, 10, 8))
	body := func(p *sim.Proc) int64 {
		for i := 0; i < 12; i++ {
			p.Step()
		}
		return p.Steps()
	}
	_, _, res, err := sim.Collect(rec, sim.Config{AlgSeed: 3}, body)
	if err != nil {
		t.Fatal(err)
	}
	slots, deadAt := rec.Slots(), rec.DeadSlots()
	if deadAt == nil {
		t.Fatal("crash-aware recording has no death slots")
	}
	maxDead := -1
	for _, d := range deadAt {
		if d > maxDead {
			maxDead = d
		}
	}
	if maxDead < 1 {
		t.Fatalf("no recorded death to truncate below: %v", deadAt)
	}

	if _, err := NewReplay(n, slots[:maxDead-1], deadAt); err == nil {
		t.Fatal("truncated recording accepted")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncation error not descriptive: %v", err)
	}

	src, err := NewReplay(n, slots, deadAt)
	if err != nil {
		t.Fatal(err)
	}
	_, _, replayed, err := sim.Collect(src, sim.Config{AlgSeed: 3}, body)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.TotalSteps != res.TotalSteps {
		t.Errorf("replay steps = %d, recorded %d", replayed.TotalSteps, res.TotalSteps)
	}
	for pid := range res.Finished {
		if res.Finished[pid] != replayed.Finished[pid] {
			t.Errorf("process %d finished: %v vs %v", pid, res.Finished[pid], replayed.Finished[pid])
		}
	}

	// DeadSlots must be a copy, and nil for a crash-free recording.
	deadAt[0] = 99
	if rec.DeadSlots()[0] == 99 {
		t.Error("DeadSlots aliases internal state")
	}
	if Record(sched.NewRoundRobin(2)).DeadSlots() != nil {
		t.Error("crash-free recording reports death slots")
	}
}
