// Package tas implements a sifting test-and-set in the style of
// Alistarh–Aspnes [1], the protocol whose sift rounds inspired
// Algorithm 2 (and which the paper's conclusions compare against).
//
// Each sifting round uses one register: a process either writes it (with
// probability p_i) and survives, or reads it and survives only if the
// register is still empty — otherwise it loses immediately and returns
// false. This is exactly the paper's observation about the difference
// between the two problems: a test-and-set loser can leave as soon as it
// knows *someone* is still in the game, whereas a conciliator participant
// must adopt a specific value and keep going.
//
// After the sifting rounds an expected O(1) contenders remain; the
// implementation resolves them with an id-consensus tie-break (built from
// this repository's own consensus protocol), so exactly one process wins.
package tas

import (
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// Config parameterizes the sifting test-and-set.
type Config struct {
	// Rounds overrides the number of sifting rounds (0 = ceil(log log n)
	// + 4, matching the Alistarh–Aspnes depth plus slack rounds).
	Rounds int

	// Probs overrides the per-round write probabilities (default: the
	// same tuned schedule as Algorithm 2, which is where it came from).
	Probs []float64
}

// TestAndSet is a single-use randomized test-and-set object for n
// processes: each process calls Acquire at most once and exactly one
// caller wins.
type TestAndSet struct {
	n      int
	rounds int
	probs  []float64
	regs   *memory.RegisterArray[struct{}]
	tie    *consensus.Protocol[int]

	entered   []atomic.Int64 // contenders entering each round
	finalists atomic.Int64
}

// New returns a sifting test-and-set instance for n processes.
func New(n int, cfg Config) *TestAndSet {
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = conciliator.SifterRounds(n, 0.5)
	}
	if rounds < 1 {
		rounds = 1
	}
	probs := conciliator.SifterProbs(n, rounds)
	if len(cfg.Probs) > 0 {
		for i := range probs {
			if i < len(cfg.Probs) {
				probs[i] = cfg.Probs[i]
			} else {
				probs[i] = cfg.Probs[len(cfg.Probs)-1]
			}
		}
	}
	return &TestAndSet{
		n:       n,
		rounds:  rounds,
		probs:   probs,
		regs:    memory.NewRegisterArray[struct{}](rounds),
		tie:     consensus.NewRegister[int](n),
		entered: make([]atomic.Int64, rounds+1),
	}
}

// Rounds returns the number of sifting rounds.
func (t *TestAndSet) Rounds() int { return t.rounds }

// Acquire runs the protocol for process p and reports whether it won.
func (t *TestAndSet) Acquire(p *sim.Proc) bool {
	for i := 0; i < t.rounds; i++ {
		t.entered[i].Add(1)
		if p.Rng().Bernoulli(t.probs[i]) {
			t.regs.At(i).Write(p, struct{}{})
			continue
		}
		if _, taken := t.regs.At(i).Read(p); taken {
			return false // someone is still contending; safe to lose
		}
	}
	t.entered[t.rounds].Add(1)
	t.finalists.Add(1)
	// Tie-break among the remaining contenders: consensus on contender
	// ids; the elected id wins.
	return t.tie.Propose(p, p.ID()) == p.ID()
}

// ContendersPerRound returns how many processes entered each sifting
// round (index 0 = everyone who called Acquire), plus the number of
// finalists as the last entry.
func (t *TestAndSet) ContendersPerRound() []int64 {
	out := make([]int64, len(t.entered))
	for i := range t.entered {
		out[i] = t.entered[i].Load()
	}
	return out
}

// Finalists returns how many processes survived every sifting round.
func (t *TestAndSet) Finalists() int64 { return t.finalists.Load() }
