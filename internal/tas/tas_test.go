package tas

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func runTAS(t *testing.T, ts *TestAndSet, n int, src sched.Source, seed uint64) ([]bool, []bool) {
	t.Helper()
	wins, finished, _, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) bool {
		return ts.Acquire(p)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return wins, finished
}

func countWinners(wins, finished []bool) int {
	w := 0
	for i := range wins {
		if finished[i] && wins[i] {
			w++
		}
	}
	return w
}

func TestExactlyOneWinner(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(32)
		ts := New(n, Config{})
		wins, finished := runTAS(t, ts, n, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		for i := range finished {
			if !finished[i] {
				t.Fatalf("trial %d: process %d did not finish", trial, i)
			}
		}
		if w := countWinners(wins, finished); w != 1 {
			t.Fatalf("trial %d n=%d: %d winners, want exactly 1", trial, n, w)
		}
	}
}

func TestAtMostOneWinnerUnderCrashes(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		ts := New(n, Config{})
		wins, finished := runTAS(t, ts, n, sched.NewCrashHalf(n, xrand.New(rng.Uint64())), rng.Uint64())
		if w := countWinners(wins, finished); w > 1 {
			t.Fatalf("trial %d: %d winners", trial, w)
		}
	}
}

func TestSingleProcessWins(t *testing.T) {
	ts := New(1, Config{})
	wins, finished := runTAS(t, ts, 1, sched.NewRoundRobin(1), 7)
	if !finished[0] || !wins[0] {
		t.Fatal("single process must win")
	}
}

func TestContendersDecayAcrossRounds(t *testing.T) {
	// The sifting rounds must shrink the contender set: finalists should
	// be far fewer than n on average (Alistarh–Aspnes expect O(1)).
	const n, trials = 256, 20
	rng := xrand.New(11)
	var totalFinalists int64
	for trial := 0; trial < trials; trial++ {
		ts := New(n, Config{})
		runTAS(t, ts, n, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		entered := ts.ContendersPerRound()
		if entered[0] != n {
			t.Fatalf("round 0 contenders %d, want %d", entered[0], n)
		}
		for i := 1; i < len(entered); i++ {
			if entered[i] > entered[i-1] {
				t.Fatalf("contenders increased between rounds %d and %d: %v", i-1, i, entered)
			}
		}
		totalFinalists += ts.Finalists()
	}
	if avg := float64(totalFinalists) / trials; avg > 16 {
		t.Fatalf("average finalists %v, want far fewer than n=%d", avg, n)
	}
}

func TestRoundsConfig(t *testing.T) {
	ts := New(64, Config{Rounds: 3})
	if ts.Rounds() != 3 {
		t.Fatalf("Rounds = %d", ts.Rounds())
	}
	ts = New(64, Config{Rounds: -5})
	if ts.Rounds() < 1 {
		t.Fatalf("Rounds = %d", ts.Rounds())
	}
}

func TestCustomProbsStillOneWinner(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(16)
		ts := New(n, Config{Probs: []float64{0.5}})
		wins, finished := runTAS(t, ts, n, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		if w := countWinners(wins, finished); w != 1 {
			t.Fatalf("trial %d: %d winners", trial, w)
		}
	}
}

func TestWinnerUnderEveryScheduleKind(t *testing.T) {
	const n = 16
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			ts := New(n, Config{})
			wins, finished := runTAS(t, ts, n, sched.New(kind, n, 99), 17)
			w := countWinners(wins, finished)
			crashes := false
			for _, f := range finished {
				if !f {
					crashes = true
				}
			}
			if crashes {
				if w > 1 {
					t.Fatalf("%d winners with crashes", w)
				}
			} else if w != 1 {
				t.Fatalf("%d winners, want 1 (%s)", w, fmt.Sprint(kind))
			}
		})
	}
}

func TestConcurrentModeOneWinner(t *testing.T) {
	const n = 32
	ts := New(n, Config{})
	wins, _, err := sim.CollectConcurrent(n, sim.Config{AlgSeed: 19}, func(p *sim.Proc) bool {
		return ts.Acquire(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	w := 0
	for _, won := range wins {
		if won {
			w++
		}
	}
	if w != 1 {
		t.Fatalf("%d winners in concurrent mode", w)
	}
}
