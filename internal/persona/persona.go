// Package persona implements the paper's persona abstraction: an input
// value bundled with every coin flip the protocols will ever make on its
// behalf.
//
// Because the oblivious adversary cannot observe register contents or
// process states, a process may pre-generate a sequence of random bits,
// attach them to its input value, and let the bundle propagate as other
// processes adopt the value. All carriers of a persona then behave
// identically in every round, which makes the number of surviving distinct
// personae — rather than the number of processes — the progress measure in
// the paper's analysis (Sections 2 and 3).
//
// A Persona is immutable after creation and is shared by pointer, so two
// processes "hold the same persona" exactly when they hold the same
// *Persona. Survivor counting is therefore pointer-set cardinality.
package persona

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Persona is an input value plus all pre-drawn randomness:
//
//   - priorities: one priority per round of the snapshot conciliator
//     (Algorithm 1, line 3).
//   - write bits: one Bernoulli(p_i) choice per round of the sifting
//     conciliator (Algorithm 2, chooseWrite).
//   - coin: the single shared-coin bit used by Algorithm 3's combine stage.
//
// Origin is the id of the creating process. The paper notes the id is
// carried only to make independently generated personae distinct in the
// analysis; the algorithms never branch on it. We keep it for exactly that
// purpose (and for debugging output).
type Persona[V comparable] struct {
	value      V
	origin     int
	priorities []uint64
	writeBits  []bool
	coin       bool
}

// Config controls how much pre-drawn randomness a persona carries and from
// which distributions.
type Config struct {
	// PriorityRounds is the number of per-round priorities to draw
	// (Algorithm 1's R).
	PriorityRounds int

	// PriorityBound, when nonzero, draws priorities uniformly from
	// {1, ..., PriorityBound}, matching the paper's range of
	// ceil(R n^2 / epsilon). When zero, priorities are full-width uniform
	// uint64 values (collision probability per pair 2^-64, far below any
	// epsilon/R n^2 budget in practice).
	PriorityBound uint64

	// WriteProbs gives the per-round write probabilities p_i for the
	// sifting conciliator; one write bit is drawn per entry.
	WriteProbs []float64
}

// New creates a persona for value owned by process origin, drawing all
// randomness from rng.
func New[V comparable](value V, origin int, rng *xrand.Rand, cfg Config) *Persona[V] {
	p := &Persona[V]{
		value:  value,
		origin: origin,
		coin:   rng.Bool(),
	}
	if cfg.PriorityRounds > 0 {
		p.priorities = make([]uint64, cfg.PriorityRounds)
		for i := range p.priorities {
			if cfg.PriorityBound > 0 {
				p.priorities[i] = 1 + rng.Uint64n(cfg.PriorityBound)
			} else {
				p.priorities[i] = rng.Uint64()
			}
		}
	}
	if len(cfg.WriteProbs) > 0 {
		p.writeBits = make([]bool, len(cfg.WriteProbs))
		for i, prob := range cfg.WriteProbs {
			p.writeBits[i] = rng.Bernoulli(prob)
		}
	}
	return p
}

// Value returns the persona's input value.
func (p *Persona[V]) Value() V { return p.value }

// WithValue returns a copy of p carrying value v instead, sharing all
// pre-drawn randomness. It supports the paper's footnote-2 indirection,
// where the protocol circulates value-less personae and resolves the
// winner's value through a per-process board at the end. The copy is a
// distinct pointer; callers doing survivor accounting should only apply
// WithValue after the rounds being counted.
func WithValue[V comparable](p *Persona[V], v V) *Persona[V] {
	cp := *p
	cp.value = v
	return &cp
}

// Origin returns the id of the process that created the persona.
func (p *Persona[V]) Origin() int { return p.origin }

// Coin returns the persona's shared-coin bit as 0 or 1.
func (p *Persona[V]) Coin() int {
	if p.coin {
		return 1
	}
	return 0
}

// Priority returns the persona's priority for round i (0-based). It panics
// if the persona was created without enough priority rounds, which would
// indicate a protocol configuration bug rather than a runtime condition.
func (p *Persona[V]) Priority(i int) uint64 {
	return p.priorities[i]
}

// PriorityRounds returns how many priority rounds were pre-drawn.
func (p *Persona[V]) PriorityRounds() int { return len(p.priorities) }

// WriteBit reports the pre-drawn chooseWrite decision for round i
// (0-based).
func (p *Persona[V]) WriteBit(i int) bool {
	return p.writeBits[i]
}

// WriteRounds returns how many write bits were pre-drawn.
func (p *Persona[V]) WriteRounds() int { return len(p.writeBits) }

// String renders the persona for traces.
func (p *Persona[V]) String() string {
	return fmt.Sprintf("persona{value=%v origin=%d coin=%d}", p.value, p.origin, p.Coin())
}

// Distinct counts the number of distinct personae among ps, ignoring nils.
// This is the paper's Y_i when applied to the survivors of round i.
func Distinct[V comparable](ps []*Persona[V]) int {
	seen := make(map[*Persona[V]]struct{}, len(ps))
	for _, p := range ps {
		if p != nil {
			seen[p] = struct{}{}
		}
	}
	return len(seen)
}

// Excess returns max(Distinct(ps)-1, 0), the paper's X_i.
func Excess[V comparable](ps []*Persona[V]) int {
	if d := Distinct(ps); d > 0 {
		return d - 1
	}
	return 0
}
