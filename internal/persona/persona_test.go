package persona

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestNewCarriesValueAndOrigin(t *testing.T) {
	rng := xrand.New(1)
	p := New("hello", 7, rng, Config{PriorityRounds: 3, WriteProbs: []float64{0.5, 0.5}})
	if p.Value() != "hello" {
		t.Errorf("Value = %q", p.Value())
	}
	if p.Origin() != 7 {
		t.Errorf("Origin = %d", p.Origin())
	}
	if p.PriorityRounds() != 3 {
		t.Errorf("PriorityRounds = %d", p.PriorityRounds())
	}
	if p.WriteRounds() != 2 {
		t.Errorf("WriteRounds = %d", p.WriteRounds())
	}
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Config{PriorityRounds: 5, WriteProbs: []float64{0.1, 0.9, 0.5}}
	a := New(42, 0, xrand.New(99), cfg)
	b := New(42, 0, xrand.New(99), cfg)
	for i := 0; i < 5; i++ {
		if a.Priority(i) != b.Priority(i) {
			t.Fatalf("priority %d differs", i)
		}
	}
	for i := 0; i < 3; i++ {
		if a.WriteBit(i) != b.WriteBit(i) {
			t.Fatalf("write bit %d differs", i)
		}
	}
	if a.Coin() != b.Coin() {
		t.Fatal("coin differs")
	}
}

func TestPriorityBoundRespected(t *testing.T) {
	rng := xrand.New(3)
	if err := quick.Check(func(raw uint16) bool {
		bound := uint64(raw%1000) + 1
		p := New(0, 0, rng, Config{PriorityRounds: 8, PriorityBound: bound})
		for i := 0; i < 8; i++ {
			if pr := p.Priority(i); pr < 1 || pr > bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoinIsBalanced(t *testing.T) {
	rng := xrand.New(5)
	ones := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		ones += New(0, 0, rng, Config{}).Coin()
	}
	rate := float64(ones) / trials
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("coin rate %v", rate)
	}
}

func TestWriteBitRate(t *testing.T) {
	rng := xrand.New(7)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		p := New(0, 0, rng, Config{WriteProbs: []float64{0.2}})
		if p.WriteBit(0) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("write bit rate %v, want about 0.2", rate)
	}
}

func TestPriorityWithoutRoundsPanics(t *testing.T) {
	p := New(0, 0, xrand.New(1), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading missing priority")
		}
	}()
	p.Priority(0)
}

func TestDistinctCountsPointers(t *testing.T) {
	rng := xrand.New(9)
	a := New(1, 0, rng, Config{})
	b := New(1, 1, rng, Config{}) // same value, different persona
	tests := []struct {
		name string
		give []*Persona[int]
		want int
	}{
		{name: "empty", give: nil, want: 0},
		{name: "all nil", give: []*Persona[int]{nil, nil}, want: 0},
		{name: "single", give: []*Persona[int]{a}, want: 1},
		{name: "duplicated pointer", give: []*Persona[int]{a, a, a}, want: 1},
		{name: "same value distinct personae", give: []*Persona[int]{a, b}, want: 2},
		{name: "mixed with nil", give: []*Persona[int]{a, nil, b, a}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distinct(tt.give); got != tt.want {
				t.Errorf("Distinct = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestExcess(t *testing.T) {
	rng := xrand.New(11)
	a := New(1, 0, rng, Config{})
	b := New(2, 1, rng, Config{})
	if got := Excess[int](nil); got != 0 {
		t.Errorf("Excess(nil) = %d", got)
	}
	if got := Excess([]*Persona[int]{a}); got != 0 {
		t.Errorf("Excess(single) = %d", got)
	}
	if got := Excess([]*Persona[int]{a, b}); got != 1 {
		t.Errorf("Excess(two) = %d", got)
	}
}

func TestDuplicatePriorityRareWithFullWidth(t *testing.T) {
	// With full-width priorities, collisions across 1000 personae in one
	// round should essentially never happen.
	rng := xrand.New(13)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		p := New(i, i, rng, Config{PriorityRounds: 1})
		pr := p.Priority(0)
		if seen[pr] {
			t.Fatal("full-width priority collision")
		}
		seen[pr] = true
	}
}

func TestStringMentionsValue(t *testing.T) {
	p := New("xyz", 3, xrand.New(1), Config{})
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestWithValue(t *testing.T) {
	rng := xrand.New(17)
	p := New("", 4, rng, Config{PriorityRounds: 3, WriteProbs: []float64{0.5, 0.5}})
	q := WithValue(p, "resolved")
	if q == p {
		t.Fatal("WithValue must return a distinct pointer")
	}
	if q.Value() != "resolved" {
		t.Fatalf("Value = %q", q.Value())
	}
	if q.Origin() != p.Origin() || q.Coin() != p.Coin() {
		t.Fatal("WithValue lost identity fields")
	}
	for i := 0; i < 3; i++ {
		if q.Priority(i) != p.Priority(i) {
			t.Fatalf("priority %d not shared", i)
		}
	}
	for i := 0; i < 2; i++ {
		if q.WriteBit(i) != p.WriteBit(i) {
			t.Fatalf("write bit %d not shared", i)
		}
	}
	if p.Value() != "" {
		t.Fatal("WithValue mutated the original")
	}
}
