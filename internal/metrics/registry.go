package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// Registry owns a namespace of instruments. Get-or-create lookups take a
// mutex, so instrumented packages resolve their instruments once (at
// OnEnable time) and cache the pointers; per-operation paths never touch
// the registry itself.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Bucket is one non-empty histogram bucket: Count observations were
// <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile from the buckets: the value returned
// is the inclusive upper bound of the bucket holding the nearest-rank
// element, i.e. correct to within the bucket's power-of-two resolution.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	uppers := make([]int64, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		uppers[i], counts[i] = b.Le, b.Count
	}
	return stats.BucketQuantile(uppers, counts, q)
}

// Snapshot is a point-in-time copy of a whole registry, suitable for
// JSON encoding (the payload of the conciliator-metrics/v1 record) and
// for diffing around a workload.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Sub returns the change from prev to s: counter and histogram values
// are subtracted (zero results dropped); gauges keep their current
// value, as instantaneous readings have no meaningful delta.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out.Counters[name] = d
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d := subHist(h, prev.Histograms[name])
		if d.Count != 0 {
			out.Histograms[name] = d
		}
	}
	return out
}

// subHist subtracts two bucket lists keyed by upper bound.
func subHist(cur, prev HistogramSnapshot) HistogramSnapshot {
	prevAt := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Le] = b.Count
	}
	out := HistogramSnapshot{Count: cur.Count - prev.Count, Sum: cur.Sum - prev.Sum}
	for _, b := range cur.Buckets {
		if d := b.Count - prevAt[b.Le]; d != 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: b.Le, Count: d})
		}
	}
	return out
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SumCounters adds up every counter whose name starts with one of the
// given prefixes. Reconciliation checks use it to compare, e.g., all
// "memory." operation counts against the simulator's step total.
func (s Snapshot) SumCounters(prefixes ...string) int64 {
	var total int64
	for name, v := range s.Counters {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				total += v
				break
			}
		}
	}
	return total
}

// Text renders the snapshot as an aligned two-section table (counters,
// then histograms with mean and bucket-resolution quantiles), the
// "stats table" view experiments print after a run.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		w := 7 // len("counter")
		for _, name := range s.CounterNames() {
			if len(name) > w {
				w = len(name)
			}
		}
		fmt.Fprintf(&b, "%-*s  %s\n", w, "counter", "value")
		for _, name := range s.CounterNames() {
			fmt.Fprintf(&b, "%-*s  %d\n", w, name, s.Counters[name])
		}
	}
	if len(s.Histograms) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		w := 9 // len("histogram")
		for _, name := range s.HistogramNames() {
			if len(name) > w {
				w = len(name)
			}
		}
		fmt.Fprintf(&b, "%-*s  %10s  %12s  %10s  %10s  %10s\n", w, "histogram", "count", "mean", "p50", "p95", "max")
		for _, name := range s.HistogramNames() {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "%-*s  %10d  %12.2f  %10d  %10d  %10d\n",
				w, name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(1))
		}
	}
	return b.String()
}
