// Package metrics is the simulator's observability layer: a low-overhead
// registry of named counters, gauges, and bounded power-of-two-bucket
// histograms, safe under both the deterministic controlled scheduler and
// the free-running concurrent mode.
//
// # Design
//
// The whole layer hangs off a single process-wide registry pointer
// (SetDefault / Default). Instrumented packages cache the instruments
// they need in package-level variables assigned by an OnEnable hook, so
// the hot-path cost is:
//
//   - metrics disabled: one nil check per instrumented operation (every
//     instrument method is a no-op on a nil receiver);
//   - metrics enabled: one nil check plus one sharded atomic add.
//
// Counters are sharded across cache-line-padded cells indexed by a cheap
// goroutine-affine hash, so concurrent-mode processes hammering the same
// counter do not serialize on one cache line. Reads (Value, Snapshot) sum
// the shards; they are intended for reporting, not for synchronization.
//
// SetDefault must be called before the runs it should observe start (the
// cached package-level instruments are plain pointers, ordered by the
// happens-before edge of starting the run's goroutines).
package metrics

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards is the number of counter cells; a power of two so the shard
// index is a mask. 32 cells * 64 bytes = 2 KiB per counter, paid only
// while metrics are enabled.
const numShards = 32

// cell is one cache-line-padded counter shard.
type cell struct {
	n atomic.Int64
	_ [56]byte // pad to 64 bytes so shards never share a line
}

// shardIdx derives a goroutine-affine shard index from the address of a
// stack variable. Goroutine stacks are spread across the address space,
// so concurrent writers usually land on different cells; the controlled
// scheduler (one running goroutine at a time) is unaffected either way.
func shardIdx() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (numShards - 1))
}

// Counter is a monotonically increasing sharded counter. All methods are
// safe on a nil receiver (no-ops / zero), which is what instrumented
// packages rely on when metrics are disabled.
type Counter struct {
	shards [numShards]cell
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (no-op on a nil receiver).
func (c *Counter) Add(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.shards[shardIdx()].n.Add(d)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Process-wide default registry plus the enable hooks instrumented
// packages register at init time.
var (
	defReg  atomic.Pointer[Registry]
	hooksMu sync.Mutex
	hooks   []func(*Registry)
)

// Default returns the process-wide registry, or nil when metrics are
// disabled (the default). A nil Registry hands out nil instruments, so
// callers may chain without checking: metrics.Default().Counter("x") is
// a valid no-op counter when disabled.
func Default() *Registry { return defReg.Load() }

// Enabled reports whether a default registry is installed.
func Enabled() bool { return defReg.Load() != nil }

// SetDefault installs r as the process-wide registry (nil disables
// metrics again) and runs every OnEnable hook with it. Call it before
// starting the runs it should observe; instruments cached by hooks are
// published to run goroutines by the happens-before edge of spawning
// them.
func SetDefault(r *Registry) {
	hooksMu.Lock()
	defer hooksMu.Unlock()
	defReg.Store(r)
	for _, h := range hooks {
		h(r)
	}
}

// OnEnable registers a hook that (re)binds a package's cached
// instruments whenever the default registry changes. If a registry is
// already installed the hook runs immediately. Instrumented packages
// call this from init() with a hook that tolerates a nil registry.
func OnEnable(hook func(*Registry)) {
	hooksMu.Lock()
	defer hooksMu.Unlock()
	hooks = append(hooks, hook)
	if r := defReg.Load(); r != nil {
		hook(r)
	}
}
