package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterShardsSum(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	var wg sync.WaitGroup
	const workers, each = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if again := r.Counter("ops"); again != c {
		t.Fatal("Counter must be get-or-create, not create-always")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.snapshot()
	// Expected buckets: le=0 (the 0), le=1 (two 1s), le=3 (2 and 3),
	// le=7 (4), le=127 (100), le=2^41-1 (1<<40).
	want := map[int64]int64{0: 1, 1: 2, 3: 2, 7: 1, 127: 1, 1<<41 - 1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d (all: %+v)", b.Le, b.Count, want[b.Le], s.Buckets)
		}
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1); q != 1<<41-1 {
		t.Fatalf("max bucket = %d", q)
	}
	if m := s.Mean(); m < 1 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := New()
	r.Counter("a").Add(10)
	r.Histogram("h").Observe(5)
	before := r.Snapshot()
	r.Counter("a").Add(7)
	r.Counter("b").Inc()
	r.Histogram("h").Observe(5)
	r.Histogram("h").Observe(600)
	d := r.Snapshot().Sub(before)
	if d.Counters["a"] != 7 || d.Counters["b"] != 1 {
		t.Fatalf("counter delta = %+v", d.Counters)
	}
	if h := d.Histograms["h"]; h.Count != 2 || h.Sum != 605 {
		t.Fatalf("histogram delta = %+v", h)
	}
	// Unchanged counters are dropped from the delta.
	r2 := New()
	r2.Counter("same").Add(3)
	s := r2.Snapshot()
	if d := r2.Snapshot().Sub(s); len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Fatalf("no-op delta not empty: %+v", d)
	}
}

func TestSumCountersByPrefix(t *testing.T) {
	r := New()
	r.Counter("memory.register.read").Add(3)
	r.Counter("memory.snapshot.scan").Add(4)
	r.Counter("sim.steps").Add(99)
	s := r.Snapshot()
	if got := s.SumCounters("memory."); got != 7 {
		t.Fatalf("SumCounters = %d, want 7", got)
	}
	if got := s.SumCounters("memory.", "sim."); got != 106 {
		t.Fatalf("SumCounters = %d, want 106", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-5)
	r.Histogram("h").Observe(9)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 2 || back.Gauges["g"] != -5 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestTextTable(t *testing.T) {
	r := New()
	r.Counter("memory.register.write").Add(12)
	h := r.Histogram("sim.run_steps")
	h.Observe(100)
	h.Observe(200)
	out := r.Snapshot().Text()
	for _, want := range []string{"memory.register.write", "12", "sim.run_steps", "p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestOnEnableHookRebinding(t *testing.T) {
	defer SetDefault(nil)
	var cached *Counter
	OnEnable(func(r *Registry) { cached = r.Counter("hooked") })
	if cached != nil {
		t.Fatal("hook ran with instruments before any registry was set")
	}
	r := New()
	SetDefault(r)
	if cached == nil {
		t.Fatal("hook did not bind on SetDefault")
	}
	cached.Inc()
	if r.Snapshot().Counters["hooked"] != 1 {
		t.Fatal("cached counter not wired to registry")
	}
	SetDefault(nil)
	if cached != nil {
		t.Fatal("hook did not unbind on SetDefault(nil)")
	}
	if !EnabledIs(false) {
		t.Fatal("Enabled() should be false after SetDefault(nil)")
	}
}

// EnabledIs makes the final assertion readable.
func EnabledIs(want bool) bool { return Enabled() == want }
